#!/usr/bin/env python3
"""Diff two PATHCAS_BENCH_JSON files and flag throughput/latency regressions.

Every bench driver appends one JSON object per trial when PATHCAS_BENCH_JSON
is set (schema: docs/BENCHMARKING.md). This tool joins two such files on the
trial identity — (experiment, algo, threads, shards, batch, combine_window,
key_range, dist, mix, arrival, qdepth, deadline_ns, update_pct, rq_pct,
rq_size); rows from files predating a field join on its default (shards=1,
batch=1, combine_window=0, arrival="closed", qdepth=0, deadline_ns=0, i.e.
closed-loop / no admission control) — averages duplicate rows (re-runs), and
reports three per-cell deltas:

  * `mops`  — fails when throughput DROPS by more than --threshold-pct;
  * `goodput_mops` — fails when goodput (ops completed within the admission
    deadline per second) DROPS by more than --threshold-pct. Only gated
    where both files carry the field, so baselines predating admission
    control keep working.
  * `p99_ns` — fails when the overall p99 op latency RISES by more than
    --threshold-pct. Only gated where both files carry the field (trials run
    with PATHCAS_BENCH_LATENCY=1), so baselines predating latency recording
    keep working.

Rows carrying the full admission accounting (ops_offered / ops_admitted /
ops_shed / ops_rejected) are also checked for the accounting identity
`offered == admitted + shed + rejected`; a violating row is a parse error
(exit 2) — it means the emitting driver miscounted, and any comparison
against it would be meaningless.

The repo's CI runs it as a soft gate (--threshold-pct 15) against the
committed BENCH_baseline.json, regenerated from the same pinned smoke
configs by scripts/bench_baseline.sh: absolute throughput and latency are
machine-dependent, but the 15% margin on the pinned 2-thread smokes absorbs
runner noise while still tripping on real commit-path regressions
(docs/BENCHMARKING.md, "Comparing runs"). Re-baseline after any intentional
perf change.

Usage:
  scripts/bench_compare.py BASELINE.json NEW.json [--threshold-pct 25]
      [--p99-threshold-pct 100] [--min-mops 0.01] [--min-p99-ns 50]

Exit codes: 0 ok, 1 regression past threshold, 2 usage/parse error.
"""

import argparse
import json
import sys
from collections import defaultdict

KEY_FIELDS = (
    "experiment",
    "algo",
    "threads",
    "shards",
    "batch",
    "combine_window",
    "key_range",
    "dist",
    "mix",
    "arrival",
    "qdepth",
    "deadline_ns",
    "update_pct",
    "rq_pct",
    "rq_size",
)

# Fields absent from older bench files join on a default instead of erroring
# (the committed baseline may predate them).
DEFAULT_FIELDS = {
    "shards": 1,
    "batch": 1,
    "combine_window": 0,
    "arrival": "closed",
    "qdepth": 0,
    "deadline_ns": 0,
}

# Admission accounting (docs/BENCHMARKING.md, "Overload and goodput"): when a
# row carries all four counters they must satisfy the identity.
ACCOUNTING_FIELDS = ("ops_offered", "ops_admitted", "ops_shed", "ops_rejected")


def load(path):
    """Return {trial-key: (mean mops, mean p99_ns or None, mean goodput_mops
    or None)} for a bench file."""
    mops_sums = defaultdict(float)
    mops_counts = defaultdict(int)
    p99_sums = defaultdict(float)
    p99_counts = defaultdict(int)
    good_sums = defaultdict(float)
    good_counts = defaultdict(int)
    try:
        with open(path, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as e:
                    print(f"{path}:{lineno}: bad JSON: {e}", file=sys.stderr)
                    sys.exit(2)
                try:
                    key = tuple(
                        row[k] if k not in DEFAULT_FIELDS
                        else row.get(k, DEFAULT_FIELDS[k])
                        for k in KEY_FIELDS
                    )
                    mops = float(row["mops"])
                except KeyError as e:
                    print(f"{path}:{lineno}: missing field {e}", file=sys.stderr)
                    sys.exit(2)
                if all(k in row for k in ACCOUNTING_FIELDS):
                    offered, admitted, shed, rejected = (
                        int(row[k]) for k in ACCOUNTING_FIELDS
                    )
                    if offered != admitted + shed + rejected:
                        print(
                            f"{path}:{lineno}: admission accounting identity "
                            f"violated: offered={offered} != "
                            f"admitted={admitted} + shed={shed} + "
                            f"rejected={rejected}",
                            file=sys.stderr,
                        )
                        sys.exit(2)
                mops_sums[key] += mops
                mops_counts[key] += 1
                if "p99_ns" in row:
                    p99_sums[key] += float(row["p99_ns"])
                    p99_counts[key] += 1
                if "goodput_mops" in row:
                    good_sums[key] += float(row["goodput_mops"])
                    good_counts[key] += 1
    except OSError as e:
        print(f"cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for k in mops_sums:
        p99 = p99_sums[k] / p99_counts[k] if p99_counts[k] else None
        good = good_sums[k] / good_counts[k] if good_counts[k] else None
        out[k] = (mops_sums[k] / mops_counts[k], p99, good)
    return out


def fmt_key(key):
    d = dict(zip(KEY_FIELDS, key))
    # qdepth/deadline are already embedded in the arrival label when set
    # (poisson:<rate>:q<depth>:d<ns>), so the label stays compact.
    return (
        f"{d['experiment']}/{d['algo']} t={d['threads']} s={d['shards']} "
        f"b={d['batch']} cw={d['combine_window']} "
        f"{d['dist']} {d['mix']} {d['arrival']} range={d['key_range']} "
        f"u={d['update_pct']}%"
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument(
        "--threshold-pct",
        type=float,
        default=25.0,
        help="fail when any cell's mops drops — or its p99_ns rises — by "
        "more than this percentage (default: %(default)s)",
    )
    ap.add_argument(
        "--p99-threshold-pct",
        type=float,
        default=None,
        help="separate failure threshold for the p99 leg (default: same as "
        "--threshold-pct). Sampled tail quantiles on shared hardware swing "
        "far more run-to-run than mean throughput — one scheduler "
        "preemption lands in the p99 bucket — so a looser p99 bar keeps "
        "the gate sensitive to genuine blowups (saturation is 100x+) "
        "without tripping on scheduler noise",
    )
    ap.add_argument(
        "--min-mops",
        type=float,
        default=0.01,
        help="ignore cells whose baseline throughput is below this (too "
        "noisy to compare; default: %(default)s)",
    )
    ap.add_argument(
        "--min-p99-ns",
        type=float,
        default=50.0,
        help="skip the latency gate for cells whose baseline p99 is below "
        "this many ns (sub-bucket noise; default: %(default)s)",
    )
    args = ap.parse_args()
    if args.p99_threshold_pct is None:
        args.p99_threshold_pct = args.threshold_pct

    base = load(args.baseline)
    new = load(args.new)
    if not base:
        print(f"{args.baseline}: no trials", file=sys.stderr)
        sys.exit(2)
    if not new:
        print(f"{args.new}: no trials", file=sys.stderr)
        sys.exit(2)

    shared = sorted(set(base) & set(new))
    only_base = sorted(set(base) - set(new))
    only_new = sorted(set(new) - set(base))

    regressions = []
    print(f"{'mops%':>8} {'good%':>8} {'p99%':>8}  {'base':>9}  {'new':>9}  "
          "trial")
    for key in shared:
        (b, b_p99, b_good), (n, n_p99, n_good) = base[key], new[key]
        if b < args.min_mops:
            continue
        delta = (n - b) / b * 100.0
        p99_delta = None
        if (
            b_p99 is not None
            and n_p99 is not None
            and b_p99 >= args.min_p99_ns
        ):
            p99_delta = (n_p99 - b_p99) / b_p99 * 100.0
        # Goodput gates like throughput: a drop means deadline-meeting work
        # was lost (more shedding, slower service, or both).
        good_delta = None
        if (
            b_good is not None
            and n_good is not None
            and b_good >= args.min_mops
        ):
            good_delta = (n_good - b_good) / b_good * 100.0
        why = []
        if delta < -args.threshold_pct:
            why.append(f"mops {delta:+.1f}%")
        if good_delta is not None and good_delta < -args.threshold_pct:
            why.append(f"goodput {good_delta:+.1f}%")
        if p99_delta is not None and p99_delta > args.p99_threshold_pct:
            why.append(f"p99 {p99_delta:+.1f}%")
        marker = "  << REGRESSION" if why else ""
        if why:
            regressions.append((key, ", ".join(why)))
        p99_col = f"{p99_delta:+8.1f}" if p99_delta is not None else f"{'-':>8}"
        good_col = (f"{good_delta:+8.1f}" if good_delta is not None
                    else f"{'-':>8}")
        print(f"{delta:+8.1f} {good_col} {p99_col}  {b:9.3f}  {n:9.3f}  "
              f"{fmt_key(key)}{marker}")

    for key in only_base:
        print(f"    gone                    {base[key][0]:9.3f}  {'-':>9}  "
              f"{fmt_key(key)}")
    for key in only_new:
        print(f"     new                    {'-':>9}  {new[key][0]:9.3f}  "
              f"{fmt_key(key)}")

    if not shared:
        print("no overlapping trials between the two files", file=sys.stderr)
        sys.exit(2)

    if regressions:
        print(
            f"\n{len(regressions)} cell(s) regressed past "
            f"{args.threshold_pct:.0f}%:",
            file=sys.stderr,
        )
        for key, why in regressions:
            print(f"  {fmt_key(key)}: {why}", file=sys.stderr)
        sys.exit(1)
    print(f"\nok: {len(shared)} cell(s) within {args.threshold_pct:.0f}%")


if __name__ == "__main__":
    main()
