#!/usr/bin/env python3
"""Diff two PATHCAS_BENCH_JSON files and flag throughput regressions.

Every bench driver appends one JSON object per trial when PATHCAS_BENCH_JSON
is set (schema: docs/BENCHMARKING.md). This tool joins two such files on the
trial identity — (experiment, algo, threads, shards, batch, combine_window,
key_range, dist, mix, update_pct, rq_pct, rq_size); rows from files
predating a field join on its default (shards=1, batch=1,
combine_window=0) — averages duplicate rows (re-runs), and reports the
per-cell `mops` delta. It exits nonzero when any cell regresses by more
than --threshold-pct. The repo's CI runs it as a soft gate
(--threshold-pct 15) against the committed BENCH_baseline.json, regenerated
from the same pinned smoke configs by scripts/bench_baseline.sh: absolute
throughput is machine-dependent, but the 15% margin on the pinned 2-thread
smokes absorbs runner noise while still tripping on real commit-path
regressions (docs/BENCHMARKING.md, "Comparing runs"). Re-baseline after any
intentional perf change.

Usage:
  scripts/bench_compare.py BASELINE.json NEW.json [--threshold-pct 25]
      [--min-mops 0.01]

Exit codes: 0 ok, 1 regression past threshold, 2 usage/parse error.
"""

import argparse
import json
import sys
from collections import defaultdict

KEY_FIELDS = (
    "experiment",
    "algo",
    "threads",
    "shards",
    "batch",
    "combine_window",
    "key_range",
    "dist",
    "mix",
    "update_pct",
    "rq_pct",
    "rq_size",
)

# Fields absent from older bench files join on a default instead of erroring
# (the committed baseline may predate them).
DEFAULT_FIELDS = {"shards": 1, "batch": 1, "combine_window": 0}


def load(path):
    """Return {trial-key: mean mops} for a JSON Lines bench file."""
    sums = defaultdict(float)
    counts = defaultdict(int)
    try:
        with open(path, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as e:
                    print(f"{path}:{lineno}: bad JSON: {e}", file=sys.stderr)
                    sys.exit(2)
                try:
                    key = tuple(
                        row[k] if k not in DEFAULT_FIELDS
                        else row.get(k, DEFAULT_FIELDS[k])
                        for k in KEY_FIELDS
                    )
                    mops = float(row["mops"])
                except KeyError as e:
                    print(f"{path}:{lineno}: missing field {e}", file=sys.stderr)
                    sys.exit(2)
                sums[key] += mops
                counts[key] += 1
    except OSError as e:
        print(f"cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    return {k: sums[k] / counts[k] for k in sums}


def fmt_key(key):
    d = dict(zip(KEY_FIELDS, key))
    return (
        f"{d['experiment']}/{d['algo']} t={d['threads']} s={d['shards']} "
        f"b={d['batch']} cw={d['combine_window']} "
        f"{d['dist']} {d['mix']} range={d['key_range']} u={d['update_pct']}%"
    )


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument(
        "--threshold-pct",
        type=float,
        default=25.0,
        help="fail when any cell's mops drops by more than this percentage "
        "(default: %(default)s)",
    )
    ap.add_argument(
        "--min-mops",
        type=float,
        default=0.01,
        help="ignore cells whose baseline throughput is below this (too "
        "noisy to compare; default: %(default)s)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    new = load(args.new)
    if not base:
        print(f"{args.baseline}: no trials", file=sys.stderr)
        sys.exit(2)
    if not new:
        print(f"{args.new}: no trials", file=sys.stderr)
        sys.exit(2)

    shared = sorted(set(base) & set(new))
    only_base = sorted(set(base) - set(new))
    only_new = sorted(set(new) - set(base))

    regressions = []
    print(f"{'delta%':>8}  {'base':>9}  {'new':>9}  trial")
    for key in shared:
        b, n = base[key], new[key]
        if b < args.min_mops:
            continue
        delta = (n - b) / b * 100.0
        marker = ""
        if delta < -args.threshold_pct:
            marker = "  << REGRESSION"
            regressions.append((key, b, n, delta))
        print(f"{delta:+8.1f}  {b:9.3f}  {n:9.3f}  {fmt_key(key)}{marker}")

    for key in only_base:
        print(f"    gone  {base[key]:9.3f}  {'-':>9}  {fmt_key(key)}")
    for key in only_new:
        print(f"     new  {'-':>9}  {new[key]:9.3f}  {fmt_key(key)}")

    if not shared:
        print("no overlapping trials between the two files", file=sys.stderr)
        sys.exit(2)

    if regressions:
        print(
            f"\n{len(regressions)} cell(s) regressed past "
            f"{args.threshold_pct:.0f}%:",
            file=sys.stderr,
        )
        for key, b, n, delta in regressions:
            print(f"  {fmt_key(key)}: {b:.3f} -> {n:.3f} ({delta:+.1f}%)",
                  file=sys.stderr)
        sys.exit(1)
    print(f"\nok: {len(shared)} cell(s) within {args.threshold_pct:.0f}%")


if __name__ == "__main__":
    main()
