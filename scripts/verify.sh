#!/usr/bin/env sh
# One-shot tier-1 verification: configure + build + test.
# Mirrors the command recorded in ROADMAP.md:
#   cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
#
# Usage: scripts/verify.sh [extra cmake args...]
#   e.g. scripts/verify.sh -DPATHCAS_ENABLE_RTM=ON
set -eu

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B build -S . "$@"
cmake --build build -j "$JOBS"
cd build && ctest --output-on-failure -j "$JOBS"
