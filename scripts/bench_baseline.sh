#!/usr/bin/env bash
# Regenerate the committed bench baseline (BENCH_baseline.json) from the
# exact pinned smoke configs CI gates against (.github/workflows/ci.yml:
# "Gate against committed bench baseline"). Run from the repo root on the
# reference machine after an intentional perf change, then commit the
# refreshed file:
#
#   scripts/bench_baseline.sh [build-dir]   # default build dir: ./build
#
# The gate (scripts/bench_compare.py --threshold-pct 15) joins rows on the
# full workload identity — experiment, algo, threads, shards, batch,
# combine_window, key_range, dist, mix, arrival, qdepth, deadline_ns,
# update_pct, rq_pct, rq_size — so the baseline must come from these configs
# verbatim; a drifted
# config shows up as unmatched rows, not a bogus pass. Latency recording is
# on (PATHCAS_BENCH_LATENCY=1) so the rows carry p50/p99/p999 columns and
# the gate covers p99 latency alongside throughput.
set -euo pipefail

build_dir="${1:-build}"
out="BENCH_baseline.json"
# bench_compare.py averages rows with identical trial identity, so repeated
# passes tighten the baseline's noisy columns (p99 especially) without any
# schema change. Override with BASELINE_REPEATS=1 for a quick refresh.
repeats="${BASELINE_REPEATS:-3}"

for bench in skew_sweep batch_commit cache_workload overload_profile; do
  if [[ ! -x "$build_dir/bench/$bench" ]]; then
    echo "error: $build_dir/bench/$bench not built (cmake --build $build_dir)" >&2
    exit 1
  fi
done

rm -f "$out"

for ((rep = 0; rep < repeats; ++rep)); do
  PATHCAS_BENCH_THREADS=2 \
  PATHCAS_BENCH_DIST=zipfian:0.99 \
  PATHCAS_BENCH_MIX=ycsb-b \
  PATHCAS_BENCH_SHARDS=1,4 \
  PATHCAS_BENCH_LATENCY=1 \
  PATHCAS_BENCH_JSON="$out" \
    "$build_dir/bench/skew_sweep" >/dev/null

  PATHCAS_BENCH_THREADS=2 \
  PATHCAS_BENCH_BATCH=1,8 \
  PATHCAS_BENCH_SHARDS=1,4 \
  PATHCAS_BENCH_LATENCY=1 \
  PATHCAS_BENCH_JSON="$out" \
    "$build_dir/bench/batch_commit" >/dev/null

  PATHCAS_BENCH_THREADS=2 \
  PATHCAS_BENCH_DIST=zipfian:0.99 \
  PATHCAS_BENCH_LATENCY=1 \
  PATHCAS_BENCH_JSON="$out" \
    "$build_dir/bench/cache_workload" >/dev/null

  # PATHCAS_BENCH_CAPACITY pins the capacity probe so the derived open-loop
  # arrival labels — part of the bench_compare join key — match CI's verbatim.
  PATHCAS_BENCH_THREADS=2 \
  PATHCAS_BENCH_BATCH=1,64 \
  PATHCAS_BENCH_SHARDS=2 \
  PATHCAS_BENCH_CAPACITY=400000 \
  PATHCAS_BENCH_QDEPTH=256 \
  PATHCAS_BENCH_DEADLINE=2000000 \
  PATHCAS_BENCH_JSON="$out" \
    "$build_dir/bench/overload_profile" >/dev/null
done

echo "wrote $(wc -l <"$out") baseline rows to $out ($repeats repeats)"
