// Batched & combined commits: how much does amortizing descriptor
// publication across many logical ops buy, and which mechanism earns it?
// Three cells, one per toggle, so the JSON artifact attributes the win:
//
//   wide-descriptor  PathCAS BST/AVL with driver-side update batching
//                    (TrialConfig.batch ∈ PATHCAS_BENCH_BATCH, default
//                    1,8,64,256,1024). batch=1 is the per-op k=1 fast-path
//                    baseline; batch≥2 nets the window per key, then routes
//                    the sorted run through updateBatch (BST: one mixed
//                    traversal, one wide KCAS per chunk) or
//                    eraseBatch+insertBatch (AVL). Rows: combine_window=0.
//   combining        sharded frontends with per-shard flat combining
//                    (Config::combineWindow 1 vs 32) under per-op
//                    submissions (batch=1): the combiner merges concurrent
//                    same-shard ops into one wide commit. Rows keyed by
//                    combine_window × shards.
//   staging-merge    KCAS-level micro: the k=8 descending-address commit
//                    shape on KcasDomain with Policy::kStagingMerge on vs
//                    off (append + one merge vs per-entry shifting insert).
//                    Synthesized rows (algo kcas-stage-*) at threads=1.
//
// Default workload: zipfian:0.99 keys (the acceptance regime — hot runs
// make batched traversal sharing matter), u100 mix (every op is an update;
// reads don't exercise the commit path). PATHCAS_BENCH_DIST /
// PATHCAS_BENCH_MIX override as usual; PATHCAS_BENCH_SHARDS scopes the
// combining cell. The trailing summary prints the attribution ratios the
// acceptance bar reads (best batch≥8 speedup over batch=1 per tree).
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_helpers.hpp"
#include "kcas/kcas.hpp"

using namespace pathcas;
using namespace pathcas::bench;
using namespace pathcas::testing;

namespace {

/// batch_commit's CSV schema: identification (incl. batch width and combine
/// window — the two axes under attribution) + throughput, both submitted
/// and applied. Under window netting, submitted mops counts annihilated ops
/// that never executed; the attribution ratios below use applied mops so a
/// wider window cannot claim credit for work it skipped.
void printBatchCsv(const std::string& experiment, const std::string& algo,
                   const TrialConfig& cfg, const TrialResult& r) {
  std::printf("csv,%s,%s,%d,%d,%d,%d,%lld,%s,%s,%.3f,%.3f,%llu,%llu,%.1f\n",
              experiment.c_str(), algo.c_str(), cfg.threads, cfg.shards,
              cfg.batch, cfg.combineWindow,
              static_cast<long long>(cfg.keyRange), cfg.dist.label().c_str(),
              cfg.mix.c_str(), r.mops, r.mopsApplied,
              static_cast<unsigned long long>(r.totalOps),
              static_cast<unsigned long long>(r.opsApplied), r.nsPerOp);
}

/// Cell 1: wide-descriptor attribution. Per-tree peak *applied* Mops keyed
/// by batch width; batch=1 is the per-op baseline the speedups are quoted
/// against (at batch=1 applied == submitted).
template <typename Adapter>
void sweepBatch(const std::vector<int>& threads,
                const std::vector<int>& batches, const TrialConfig& base,
                std::map<int, double>* peaks) {
  for (int b : batches) {
    TrialConfig cfg = base;
    cfg.batch = b;
    std::printf("%-22s  (batch %d)\n", (Adapter::name() + ":").c_str(), b);
    double cellPeak = 0.0;
    sweepThreads<Adapter>(
        "batch_commit", threads, cfg,
        [&cellPeak](const std::string& experiment, const std::string& algo,
                    const TrialConfig& c, const TrialResult& r) {
          printBatchCsv(experiment, algo, c, r);
          cellPeak = std::max(cellPeak, r.mopsApplied);
        });
    (*peaks)[b] = cellPeak;
  }
}

/// Cell 2: combining attribution. Window 1 = direct per-op commits (the
/// combiner path disabled); window 32 = flat combining. Applied Mops keyed
/// by (shards, window).
template <typename Adapter>
void sweepCombine(const std::vector<int>& threads, const TrialConfig& base,
                  std::map<std::pair<int, int>, double>* peaks) {
  for (int nshards : defaultShards()) {
    for (int window : {1, 32}) {
      TrialConfig cfg = base;
      cfg.shards = nshards;
      cfg.combineWindow = window;
      std::printf("%-22s  (shards %d, window %d)\n",
                  (Adapter::name() + ":").c_str(), nshards, window);
      double cellPeak = 0.0;
      sweepThreads<Adapter>(
          "batch_commit", threads, cfg,
          [&cellPeak](const std::string& experiment, const std::string& algo,
                      const TrialConfig& c, const TrialResult& r) {
            printBatchCsv(experiment, algo, c, r);
            cellPeak = std::max(cellPeak, r.mopsApplied);
          });
      (*peaks)[{nshards, window}] = cellPeak;
    }
  }
}

/// Cell 3: staging-merge attribution, below the structures. The k=8
/// descending-address commit (every shifting insert moves the whole staged
/// prefix) on the tuned policy with the merge toggle flipped. Emits the same
/// CSV/JSON rows as the structure cells so the artifact is self-contained.
template <bool Merge>
double stagingMicro(const char* algo) {
  using Dom = k::KcasDomain<64, 64, k::KcasPolicy<true, true, 8, Merge>>;
  auto* dom = new Dom();  // too large for the stack
  k::AtomicWord wide[8];
  for (auto& w : wide) w.store(k::encodeVal(0));
  const std::uint64_t n = 400000;
  StopWatch sw;
  const std::uint64_t c0 = rdtsc();
  std::uint64_t v = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    dom->begin();
    for (int j = 7; j >= 0; --j)
      dom->addEntry(&wide[j], k::encodeVal(v), k::encodeVal(v + 1));
    if (dom->execute(false) != k::ExecResult::kSucceeded) std::abort();
    ++v;
  }
  const std::uint64_t c1 = rdtsc();
  const double sec = sw.elapsedSeconds();
  delete dom;

  TrialConfig cfg;
  cfg.threads = 1;
  cfg.keyRange = 8;
  cfg.mix = "kcas-k8";
  cfg.batch = 8;
  TrialResult r{};
  r.totalOps = n;
  r.opsOffered = n;  // closed loop: offered == executed, nothing shed
  r.opsApplied = n;  // the micro submits no window, so every op executes
  r.minThreadOps = n;
  r.maxThreadOps = n;
  r.elapsedSec = sec;
  r.mops = sec > 0.0 ? static_cast<double>(n) / sec / 1e6 : 0.0;
  r.mopsApplied = r.mops;
  r.goodputMops = r.mops;
  r.cyclesPerOp =
      n > 0 ? static_cast<double>(c1 - c0) / static_cast<double>(n) : 0.0;
  r.nsPerOp = n > 0 ? TscCal::toNs(c1 - c0) / static_cast<double>(n) : 0.0;
  r.keysumOk = true;
  printBatchCsv("batch_commit", algo, cfg, r);
  jsonAppendTrial("batch_commit", algo, cfg, r);
  return r.mops;
}

}  // namespace

int main() {
  const auto threads = defaultThreads();
  const auto batches = defaultBatches();

  TrialConfig base = withUpdates({}, 100.0);  // 50% insert + 50% delete
  // Group commit targets the write-contended hot-range regime: a small key
  // range keeps the zipfian hot set dense in the tree, so sorted runs share
  // long path prefixes and window netting cancels a large fraction of the
  // ops. Large ranges spread the run across disjoint paths and the batch
  // degenerates to per-op traversals — that regime is skew_sweep's job.
  base.keyRange = 1 << 10;
  base.durationMs = scaledDurationMs(80, 2000);
  base.dist.kind = DistKind::kZipfian;
  base.dist.theta = 0.99;

  printHeader("Batch commit: " + describeWorkload(base) + ", keyrange " +
                  std::to_string(base.keyRange),
              threads);

  std::printf("-- wide-descriptor: driver batching, plain trees --\n");
  std::map<int, double> bstPeaks, avlPeaks;
  sweepBatch<PathCasBstAdapter<false>>(threads, batches, base, &bstPeaks);
  sweepBatch<PathCasAvlAdapter<false>>(threads, batches, base, &avlPeaks);

  std::printf("-- combining: sharded frontends, per-op submissions --\n");
  std::map<std::pair<int, int>, double> shBstPeaks, shAvlPeaks;
  sweepCombine<ShardedBstAdapter<>>(threads, base, &shBstPeaks);
  sweepCombine<ShardedAvlAdapter<>>(threads, base, &shAvlPeaks);

  std::printf("-- staging-merge: k=8 descending-address KCAS micro --\n");
  const double mergeMops = stagingMicro<true>("kcas-stage-merge");
  const double shiftMops = stagingMicro<false>("kcas-stage-shift");

  // Attribution summary: the ratios the acceptance bar and CI read.
  std::printf(
      "\n== attribution (peak APPLIED Mops over the thread sweep — "
      "netted-away ops earn no credit) ==\n");
  struct TreeRow {
    const char* name;
    const std::map<int, double>* peaks;
  } treeRows[] = {{"int-bst-pathcas", &bstPeaks},
                  {"int-avl-pathcas", &avlPeaks}};
  for (const auto& row : treeRows) {
    const auto b1 = row.peaks->find(1);
    if (b1 == row.peaks->end() || b1->second <= 0.0) continue;
    for (const auto& [b, mops] : *row.peaks) {
      if (b == 1) continue;
      std::printf("wide-descriptor  %-18s batch %3d vs 1: %5.2fx "
                  "(%.3f vs %.3f Mops)\n",
                  row.name, b, mops / b1->second, mops, b1->second);
    }
  }
  struct ShRow {
    const char* name;
    const std::map<std::pair<int, int>, double>* peaks;
  } shRows[] = {{"sharded-bst", &shBstPeaks}, {"sharded-avl", &shAvlPeaks}};
  for (const auto& row : shRows) {
    for (const auto& [key, mops] : *row.peaks) {
      const auto [nshards, window] = key;
      if (window == 1) continue;
      const auto direct = row.peaks->find({nshards, 1});
      if (direct == row.peaks->end() || direct->second <= 0.0) continue;
      std::printf("combining        %-18s shards %2d window %2d vs 1: %5.2fx "
                  "(%.3f vs %.3f Mops)\n",
                  row.name, nshards, window, mops / direct->second, mops,
                  direct->second);
    }
  }
  if (shiftMops > 0.0) {
    std::printf("staging-merge    kcas-k8            merge vs shift: %5.2fx "
                "(%.3f vs %.3f Mops)\n",
                mergeMops / shiftMops, mergeMops, shiftMops);
  }
  return 0;
}
