// Bulk-load bench: parallel ShardedMap::bulkLoad vs the serial shuffled
// insert loop it replaces (driver.hpp prefillHalf's legacy path), across
// shard count × worker thread count. The build is the same random half of
// the key range either way, so the resulting structures are identical
// (validated by size + keysum) and the numbers isolate construction cost:
// the serial path pays pointer-chasing inserts one at a time; bulkLoad
// partitions the sorted keys by shard, feeds each shard median-first
// (balanced), and spreads chunks over workers with per-shard affinity.
//
// Rows: human-readable + `grep '^csv,bulk_load'`
//   csv,bulk_load,<algo>,<threads>,<shards>,<keys>,<seconds>,<mkeys_per_s>,<speedup_vs_serial>
// plus PATHCAS_BENCH_JSON objects (mops carries Mkeys/s for this
// experiment; threads/shards identify the cell). Quick scale builds 2^17
// keys; PATHCAS_BENCH_SCALE=full builds 2^21 (~2M, the ISSUE's 1M+ floor).
#include <algorithm>

#include "bench_helpers.hpp"
#include "util/timing.hpp"

using namespace pathcas;
using namespace pathcas::bench;
using namespace pathcas::testing;

namespace {

/// The key subset every build uses: prefillHalf's shuffled random half of
/// [0, keyRange), same seed, so rows are comparable with trial prefills.
std::vector<std::int64_t> halfKeys(std::int64_t keyRange,
                                   std::uint64_t seed = 12345) {
  std::vector<std::int64_t> keys(static_cast<std::size_t>(keyRange));
  for (std::int64_t i = 0; i < keyRange; ++i)
    keys[static_cast<std::size_t>(i)] = i;
  Xoshiro256 rng(seed);
  for (std::size_t i = keys.size(); i > 1; --i)
    std::swap(keys[i - 1], keys[rng.nextBounded(i)]);
  keys.resize(static_cast<std::size_t>(keyRange / 2));
  return keys;
}

void printBulkCsv(const std::string& algo, const TrialConfig& cfg,
                  std::size_t nkeys, double seconds, double speedup) {
  std::printf("csv,bulk_load,%s,%d,%d,%zu,%.4f,%.3f,%.2f\n", algo.c_str(),
              cfg.threads, cfg.shards, nkeys, seconds,
              static_cast<double>(nkeys) / seconds / 1e6, speedup);
  std::fflush(stdout);
}

void emitJson(const std::string& algo, const TrialConfig& cfg,
              std::size_t nkeys, double seconds, bool ok) {
  TrialResult r;
  r.totalOps = nkeys;
  r.opsOffered = nkeys;  // closed loop: offered == executed, nothing shed
  r.elapsedSec = seconds;
  r.mops = static_cast<double>(nkeys) / seconds / 1e6;  // Mkeys/s here
  r.goodputMops = r.mops;
  r.inserts = nkeys;
  r.keysumOk = ok;
  jsonAppendTrial("bulk_load", algo, cfg, r);
}

/// One cell: build a fresh nshards-map from `shuffled`/`sorted` and return
/// the wall-clock seconds. threads == 0 means the serial insert baseline.
template <typename Adapter>
double buildCell(int nshards, int threads,
                 const std::vector<std::int64_t>& shuffled,
                 const std::vector<std::int64_t>& sorted,
                 std::int64_t expectSum) {
  TrialConfig cfg;
  cfg.shards = nshards;
  cfg.threads = std::max(1, threads);
  cfg.keyRange = static_cast<std::int64_t>(shuffled.size()) * 2;
  cfg.mix = "bulkload";
  Adapter a(cfg);
  StopWatch sw;
  std::int64_t sum = 0;
  if (threads == 0) {
    for (const std::int64_t k : shuffled) {
      if (a.insert(k, k)) sum += k;
    }
  } else {
    sum = a.bulkLoad(sorted, threads);
  }
  const double sec = sw.elapsedSeconds();
  const bool ok = sum == expectSum &&
                  a.size() == shuffled.size() && a.keySum() == expectSum;
  PATHCAS_CHECK(ok && "bulk load produced a different set than serial");
  const std::string algo =
      threads == 0 ? Adapter::name() + "-serial" : Adapter::name() + "-bulk";
  emitJson(algo, cfg, shuffled.size(), sec, ok);
  return sec;
}

}  // namespace

int main() {
  const std::int64_t keyRange = scaledKeys(1 << 17, 1 << 21);
  const auto shuffled = halfKeys(keyRange);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  std::int64_t expectSum = 0;
  for (const std::int64_t k : shuffled) expectSum += k;

  std::printf("== Bulk load: %zu keys (range %lld) ==\n", shuffled.size(),
              static_cast<long long>(keyRange));
  std::printf("%-24s %8s %8s %10s %12s %9s\n", "builder", "threads", "shards",
              "seconds", "Mkeys/s", "speedup");
  for (int nshards : defaultShards()) {
    TrialConfig id;
    id.shards = nshards;
    id.threads = 1;
    // Serial baseline: the pre-PR prefill loop (shuffled one-at-a-time
    // inserts on one thread) against the same shard count.
    const double serialSec = buildCell<ShardedBstAdapter<>>(
        nshards, /*threads=*/0, shuffled, sorted, expectSum);
    std::printf("%-24s %8d %8d %10.4f %12.3f %9s\n", "sharded-bst-serial", 1,
                nshards, serialSec,
                static_cast<double>(shuffled.size()) / serialSec / 1e6, "1.00");
    id.mix = "bulkload";
    printBulkCsv("sharded-bst-serial", id, shuffled.size(), serialSec, 1.0);
    for (int threads : defaultThreads()) {
      const double sec = buildCell<ShardedBstAdapter<>>(
          nshards, threads, shuffled, sorted, expectSum);
      TrialConfig cell = id;
      cell.threads = threads;
      const double speedup = serialSec / sec;
      std::printf("%-24s %8d %8d %10.4f %12.3f %9.2f\n", "sharded-bst-bulk",
                  threads, nshards, sec,
                  static_cast<double>(shuffled.size()) / sec / 1e6, speedup);
      printBulkCsv("sharded-bst-bulk", cell, shuffled.size(), sec, speedup);
    }
  }
  return 0;
}
