// Tail-latency serving profile: closed loop vs open loop (Poisson arrivals)
// over the main tree structures and the sharded frontend, with and without
// driver-side update batching.
//
// Each (structure, batch) cell first runs a CLOSED-loop trial with latency
// recording on; its measured throughput becomes the cell's capacity estimate.
// The cell then replays OPEN-loop trials at arrival rates derived from that
// capacity — 0.5x (uncontended), 0.9x (near saturation) and 1.1x (over
// saturation) — so the sweep lands on the interesting part of the latency
// curve regardless of what this machine's absolute throughput is. Per the
// coordinated-omission argument (bench_fw/latency.hpp), the closed-loop p99
// stays flat while the open-loop p99 blows up as the rate approaches
// capacity: closed-loop clients politely stop submitting when the structure
// stalls, open-loop clients keep the schedule and measure the backlog.
//
// Recording runs unsampled here (latSampleShift = 0): this bench reports
// latency, not throughput, so per-op rdtsc fidelity is worth its cost.
//
// Knobs: PATHCAS_BENCH_THREADS (the LAST count is used as the serving thread
// count — no thread sweep; the arrival sweep is the axis), PATHCAS_BENCH_DIST
// / _MIX as usual, PATHCAS_BENCH_BATCH for the batch axis (default "1,64").
// PATHCAS_BENCH_LATENCY and _ARRIVAL are ignored: both are this experiment's
// own axes.
//
// CSV schema (one row per cell):
//   csv,latency_profile,<algo>,<threads>,<batch>,<arrival>,<mops>,
//   <mops_applied>,<p50_ns>,<p99_ns>,<p999_ns>,<max_ns>,<sched_p99_ns>
// JSON rows (PATHCAS_BENCH_JSON) carry the full per-category breakdown.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_helpers.hpp"

using namespace pathcas;
using namespace pathcas::bench;
using namespace pathcas::testing;

namespace {

void printLatCsv(const std::string& algo, const TrialConfig& cfg,
                 const TrialResult& r) {
  std::printf("csv,latency_profile,%s,%d,%d,%s,%.3f,%.3f,%.0f,%.0f,%.0f,"
              "%.0f,%.0f\n",
              algo.c_str(), cfg.threads, cfg.batch,
              cfg.arrival.label().c_str(), r.mops, r.mopsApplied,
              r.lat.overall.p50Ns, r.lat.overall.p99Ns, r.lat.overall.p999Ns,
              r.lat.overall.maxNs, r.lat.of(OpCat::kSched).p99Ns);
}

void printCatRows(const TrialResult& r) {
  for (int c = 0; c < kNumOpCats; ++c) {
    const LatencySummary::Cat& cat = r.lat.cat[c];
    if (cat.count == 0) continue;
    std::printf("      %-7s n=%-9llu p50=%-9.0f p99=%-9.0f p999=%-9.0f "
                "max=%.0f ns\n",
                kOpCatNames[c], static_cast<unsigned long long>(cat.count),
                cat.p50Ns, cat.p99Ns, cat.p999Ns, cat.maxNs);
  }
}

template <typename Adapter>
TrialResult runLatCell(const TrialConfig& cfg) {
  const TrialResult r = runCell(
      [&cfg] {
        if constexpr (std::is_constructible_v<Adapter, const TrialConfig&>) {
          return std::make_unique<Adapter>(cfg);
        } else {
          return std::make_unique<Adapter>();
        }
      },
      cfg);
  std::printf("    %-18s %6.3f Mops  p50 %8.0f  p99 %8.0f  p999 %8.0f ns\n",
              cfg.arrival.label().c_str(), r.mops, r.lat.overall.p50Ns,
              r.lat.overall.p99Ns, r.lat.overall.p999Ns);
  printCatRows(r);
  printLatCsv(Adapter::name(), cfg, r);
  jsonAppendTrial("latency_profile", Adapter::name(), cfg, r);
  recl::EbrDomain::instance().drainAll();
  return r;
}

/// One (structure, batch) cell: closed-loop capacity probe, then the open
/// sweep at {0.5, 0.9, 1.1}x that capacity.
template <typename Adapter>
void profileCell(TrialConfig cfg) {
  std::printf("  %s  (batch %d)\n", Adapter::name().c_str(), cfg.batch);
  cfg.arrival = ArrivalSpec{};  // closed capacity probe
  const TrialResult closed = runLatCell<Adapter>(cfg);
  const double capacity = closed.mops * 1e6;  // submitted ops/sec
  if (capacity <= 0.0) return;
  for (double f : {0.5, 0.9, 1.1}) {
    TrialConfig oc = cfg;
    oc.arrival.open = true;
    // Round to whole ops/sec: the capacity estimate carries no sub-op/sec
    // information and integral rates keep the arrival labels readable.
    oc.arrival.ratePerSec = std::max(1.0, std::round(capacity * f));
    runLatCell<Adapter>(oc);
  }
}

template <typename Adapter>
void profileStructure(const TrialConfig& base,
                      const std::vector<int>& batches) {
  for (int b : batches) {
    // A batch axis only exists on structures with group commits; a batch>1
    // cell on anything else silently degenerates to per-op and would just
    // duplicate the batch=1 rows.
    if (b > 1 && !HasBatchOps<Adapter>) continue;
    TrialConfig cfg = base;
    cfg.batch = b;
    profileCell<Adapter>(cfg);
  }
}

}  // namespace

int main() {
  const auto threadList = defaultThreads();
  const int threads = threadList.back();

  TrialConfig base;
  base.threads = threads;
  base.keyRange = 1 << 16;
  base.durationMs = scaledDurationMs(150, 2000);
  base.latency = true;
  base.latSampleShift = 0;  // unsampled: latency fidelity over throughput
  base = withUpdates(base, 20.0);
  applyEnvDist(base);
  applyEnvMix(base);

  std::vector<int> batches = {1, 64};
  if (std::getenv("PATHCAS_BENCH_BATCH") != nullptr)
    batches = defaultBatches();

  std::printf("Latency profile: %s, %d serving threads, keyrange %lld\n",
              describeWorkload(base).c_str(), threads,
              static_cast<long long>(base.keyRange));
  std::printf("csv schema: csv,latency_profile,algo,threads,batch,arrival,"
              "mops,mops_applied,p50_ns,p99_ns,p999_ns,max_ns,sched_p99_ns\n");

  profileStructure<PathCasBstAdapter<false>>(base, batches);
  profileStructure<PathCasAvlAdapter<false>>(base, batches);
  profileStructure<ShardedBstAdapter<>>(base, batches);
  return 0;
}
