// Overload-protection goodput profile: what admission control buys when the
// offered load crosses capacity.
//
// Each (structure, batch) cell first runs a CLOSED-loop capacity probe
// (latency on, unsampled), then sweeps OPEN-loop offered loads at
// {0.5, 0.9, 1.1, 1.5, 2.0}x that capacity, each factor twice:
//
//   shed off  plain poisson:<rate> — the seed's open loop. Every arrival is
//             eventually executed, so past capacity the backlog (and the
//             measured p99, which starts at the scheduled arrival) grows
//             without bound for the duration of the trial.
//   shed on   poisson:<rate>:q<depth>:d<deadline> — bounded admission queue
//             plus deadline shedding (bench_fw/admission.hpp). Arrivals that
//             find the queue full are rejected; queued ops whose wait
//             exceeds the deadline are shed unexecuted. What remains — the
//             goodput — are ops that completed within the deadline, i.e.
//             responses a deadline-bound client was still waiting for.
//
// The point of the curve: past saturation the shed-off p99 explodes (it
// measures backlog, per the coordinated-omission argument) while the shed-on
// trial keeps executing near capacity with a bounded admitted p99 — the
// queue wait of an admitted op is at most the deadline, by construction.
//
// The deadline defaults to 5x the cell's 0.5x-load p99 (clamped to
// [10us, 50ms]) so it scales with the machine instead of hard-coding a
// latency class; PATHCAS_BENCH_DEADLINE pins it. For batched cells the flush
// deadline inherits the admission deadline (driver.hpp), exercising the
// adaptive partial-window flush under low per-worker arrival rates.
//
// Knobs: PATHCAS_BENCH_THREADS (last count = serving threads),
// PATHCAS_BENCH_BATCH (default "1,64"), PATHCAS_BENCH_QDEPTH (default 256),
// PATHCAS_BENCH_DEADLINE (ns; default derived), PATHCAS_BENCH_CAPACITY
// (ops/sec; pins the probe for join-stable CI rows), PATHCAS_BENCH_DIST /
// _MIX as usual. PATHCAS_BENCH_LATENCY and _ARRIVAL are ignored: both are
// this experiment's own axes.
//
// CSV schema (one row per trial):
//   csv,overload_profile,<algo>,<threads>,<batch>,<arrival>,<factor>,
//   <capacity_mops>,<mops>,<goodput_mops>,<ops_offered>,<ops_admitted>,
//   <ops_shed>,<ops_rejected>,<p50_ns>,<p99_ns>,<sched_p99_ns>,
//   <deadline_flushes>,<full_flushes>
// JSON rows (PATHCAS_BENCH_JSON) carry the full admission accounting.
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_helpers.hpp"

using namespace pathcas;
using namespace pathcas::bench;
using namespace pathcas::testing;

namespace {

constexpr double kFactors[] = {0.5, 0.9, 1.1, 1.5, 2.0};
constexpr std::int64_t kMinDeadlineNs = 10'000;       // 10us
constexpr std::int64_t kMaxDeadlineNs = 50'000'000;   // 50ms

std::int64_t envNs(const char* name, std::int64_t fallback) {
  if (const char* s = std::getenv(name)) {
    std::int64_t v = 0;
    if (bench::detail::parseInt64(s, &v) && v > 0) return v;
    std::fprintf(stderr, "ignoring malformed %s=\"%s\" (want a positive ns "
                 "count)\n", name, s);
  }
  return fallback;
}

void printOverloadCsv(const std::string& algo, const TrialConfig& cfg,
                      double factor, double capacityMops,
                      const TrialResult& r) {
  std::printf(
      "csv,overload_profile,%s,%d,%d,%s,%.2f,%.3f,%.3f,%.3f,%llu,%llu,%llu,"
      "%llu,%.0f,%.0f,%.0f,%llu,%llu\n",
      algo.c_str(), cfg.threads, cfg.batch, cfg.arrival.label().c_str(),
      factor, capacityMops, r.mops, r.goodputMops,
      static_cast<unsigned long long>(r.opsOffered),
      static_cast<unsigned long long>(r.totalOps),
      static_cast<unsigned long long>(r.opsShed),
      static_cast<unsigned long long>(r.opsRejected), r.lat.overall.p50Ns,
      r.lat.overall.p99Ns, r.lat.of(OpCat::kSched).p99Ns,
      static_cast<unsigned long long>(r.deadlineFlushes),
      static_cast<unsigned long long>(r.fullFlushes));
}

template <typename Adapter>
TrialResult runOverloadCell(const TrialConfig& cfg, double factor,
                            double capacityMops) {
  const TrialResult r = runCell(
      [&cfg] {
        if constexpr (std::is_constructible_v<Adapter, const TrialConfig&>) {
          return std::make_unique<Adapter>(cfg);
        } else {
          return std::make_unique<Adapter>();
        }
      },
      cfg);
  std::printf("    %-28s %6.3f Mops  good %6.3f  p99 %10.0f ns  "
              "shed %llu  rej %llu\n",
              cfg.arrival.label().c_str(), r.mops, r.goodputMops,
              r.lat.overall.p99Ns, static_cast<unsigned long long>(r.opsShed),
              static_cast<unsigned long long>(r.opsRejected));
  if (!r.shardSchedP99Ns.empty()) {
    std::printf("      shard sched p99 ns:");
    for (double v : r.shardSchedP99Ns) std::printf(" %.0f", v);
    std::printf("\n");
  }
  printOverloadCsv(Adapter::name(), cfg, factor, capacityMops, r);
  jsonAppendTrial("overload_profile", Adapter::name(), cfg, r);
  recl::EbrDomain::instance().drainAll();
  return r;
}

/// One (structure, batch) cell: closed capacity probe, 0.5x reference to
/// derive the deadline, then the factor sweep with shedding off and on.
/// Returns true when the cell's acceptance checks held (informational).
template <typename Adapter>
bool profileCell(TrialConfig cfg) {
  std::printf("  %s  (batch %d)\n", Adapter::name().c_str(), cfg.batch);
  cfg.arrival = ArrivalSpec{};  // closed capacity probe
  const TrialResult closed = runOverloadCell<Adapter>(cfg, 0.0, 0.0);
  double capacity = closed.mops * 1e6;  // submitted ops/sec
  if (const char* s = std::getenv("PATHCAS_BENCH_CAPACITY")) {
    // Pinned capacity: every arrival label (part of the JSON join key)
    // becomes machine-independent, so CI can gate the open-loop rows.
    std::int64_t v = 0;
    if (bench::detail::parseInt64(s, &v) && v > 0) capacity = static_cast<double>(v);
    else std::fprintf(stderr,
                      "ignoring malformed PATHCAS_BENCH_CAPACITY=\"%s\"\n", s);
  }
  if (capacity <= 0.0) return false;
  const double capacityMops = capacity / 1e6;

  auto rateFor = [capacity](double f) {
    return std::max(1.0, std::round(capacity * f));
  };

  // Shed-off reference at half load: its p99 is the uncontended service
  // latency the deadline is quoted against.
  TrialConfig ref = cfg;
  ref.arrival.open = true;
  ref.arrival.ratePerSec = rateFor(0.5);
  const TrialResult refR = runOverloadCell<Adapter>(ref, 0.5, capacityMops);
  std::int64_t deadlineNs =
      static_cast<std::int64_t>(std::llround(refR.lat.overall.p99Ns * 5.0));
  deadlineNs = std::clamp(deadlineNs, kMinDeadlineNs, kMaxDeadlineNs);
  deadlineNs = envNs("PATHCAS_BENCH_DEADLINE", deadlineNs);
  const std::int64_t qdepth = envNs("PATHCAS_BENCH_QDEPTH", 256);
  std::printf("    [deadline %lld ns, qdepth %lld]\n",
              static_cast<long long>(deadlineNs),
              static_cast<long long>(qdepth));

  std::map<double, TrialResult> shedOn, shedOff;
  shedOff[0.5] = refR;
  for (double f : kFactors) {
    if (f != 0.5) {
      TrialConfig off = cfg;
      off.arrival.open = true;
      off.arrival.ratePerSec = rateFor(f);
      shedOff[f] = runOverloadCell<Adapter>(off, f, capacityMops);
    }
    TrialConfig on = cfg;
    on.arrival.open = true;
    on.arrival.ratePerSec = rateFor(f);
    on.arrival.qdepth = static_cast<int>(qdepth);
    on.arrival.deadlineNs = deadlineNs;
    shedOn[f] = runOverloadCell<Adapter>(on, f, capacityMops);
  }

  // Acceptance (informational; printed, not fatal — CI gates on the JSON):
  //  - at 1.5x offered, admission keeps goodput >= 70% of capacity;
  //  - the admitted p99 stays <= 10x the 0.5x-load admitted p99;
  //  - shedding off shows the overload: p99 blows past the deadline.
  const TrialResult& hot = shedOn[1.5];
  const TrialResult& base = shedOn[0.5];
  const bool goodputOk = hot.goodputMops >= 0.7 * capacityMops;
  const bool p99Ok = base.lat.overall.p99Ns <= 0.0 ||
                     hot.lat.overall.p99Ns <= 10.0 * base.lat.overall.p99Ns;
  const bool blowupShown =
      shedOff[1.5].lat.overall.p99Ns > static_cast<double>(deadlineNs);
  std::printf("    acceptance: goodput@1.5x %.3f/%.3f Mops [%s]  "
              "p99@1.5x %.0f vs 10x %.0f ns [%s]  shed-off blowup [%s]\n",
              hot.goodputMops, 0.7 * capacityMops,
              goodputOk ? "ok" : "MISS", hot.lat.overall.p99Ns,
              10.0 * base.lat.overall.p99Ns, p99Ok ? "ok" : "MISS",
              blowupShown ? "ok" : "MISS");
  return goodputOk && p99Ok && blowupShown;
}

template <typename Adapter>
void profileStructure(const TrialConfig& base,
                      const std::vector<int>& batches) {
  for (int b : batches) {
    if (b > 1 && !HasBatchOps<Adapter>) continue;
    TrialConfig cfg = base;
    cfg.batch = b;
    profileCell<Adapter>(cfg);
  }
}

}  // namespace

int main() {
  const auto threadList = defaultThreads();
  const int threads = threadList.back();

  TrialConfig base;
  base.threads = threads;
  base.keyRange = 1 << 16;
  base.durationMs = scaledDurationMs(150, 2000);
  base.latency = true;
  base.latSampleShift = 0;  // unsampled: latency fidelity over throughput
  base = withUpdates(base, 20.0);
  applyEnvDist(base);
  applyEnvMix(base);

  std::vector<int> batches = {1, 64};
  if (std::getenv("PATHCAS_BENCH_BATCH") != nullptr)
    batches = defaultBatches();

  std::printf("Overload profile: %s, %d serving threads, keyrange %lld\n",
              describeWorkload(base).c_str(), threads,
              static_cast<long long>(base.keyRange));
  std::printf("csv schema: csv,overload_profile,algo,threads,batch,arrival,"
              "factor,capacity_mops,mops,goodput_mops,ops_offered,"
              "ops_admitted,ops_shed,ops_rejected,p50_ns,p99_ns,sched_p99_ns,"
              "deadline_flushes,full_flushes\n");

  profileStructure<PathCasBstAdapter<false>>(base, batches);
  {
    // Sharded frontend with combining: per-shard combiner-queueing p99s
    // (shard_sched_p99_ns) attribute the sched column under overload.
    TrialConfig sharded = base;
    sharded.shards = defaultShards().back();
    sharded.combineWindow = 8;
    profileStructure<ShardedBstAdapter<>>(sharded, batches);
  }
  return 0;
}
