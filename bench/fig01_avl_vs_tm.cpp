// Figure 1: "AVL trees using PathCAS vs state-of-the-art transactional
// memory. 10% updates, 1M key trees." (scaled; PATHCAS_BENCH_SCALE=full for
// paper-size key ranges). Expected shape: both PathCAS AVL variants well
// above every TM-based AVL, with TLE the closest competitor.
#include "bench_helpers.hpp"

using namespace pathcas;
using namespace pathcas::bench;
using namespace pathcas::testing;

int main() {
  TrialConfig base;
  base.keyRange = scaledKeys(1 << 17, 2 * 1000 * 1000);
  base.durationMs = scaledDurationMs(150, 3000);
  base = withUpdates(base, 10.0);
  const auto threads = defaultThreads();

  printHeader("Figure 1: AVL via PathCAS vs TM (10% updates, keyrange " +
                  std::to_string(base.keyRange) + ")",
              threads);
  sweepThreads<PathCasAvlAdapter<false>>("fig01", threads, base);
  sweepThreads<PathCasAvlAdapter<true>>("fig01", threads, base);
  sweepThreads<TmAvlAdapter<stm::TLE>>("fig01", threads, base);
  sweepThreads<TmAvlAdapter<stm::NOrec>>("fig01", threads, base);
  sweepThreads<TmAvlAdapter<stm::TL2>>("fig01", threads, base);
  sweepThreads<TmAvlAdapter<stm::GlobalLockTm>>("fig01", threads, base);
  return 0;
}
