// Figure 7 / §5.2: elastic-transaction external BST vs a hand-crafted
// lock-free external BST, 1% updates. The paper compares ext-bst-elastic
// against ext-bst-lf2 (Natarajan-Mittal) in Synchrobench; our lock-free
// proxy is the Ellen external BST (same family, middle of the paper's pack).
// Expected shape: the elastic tree is far below the hand-crafted tree at
// every thread count.
#include "bench_helpers.hpp"

using namespace pathcas;
using namespace pathcas::bench;
using namespace pathcas::testing;

int main() {
  TrialConfig base;
  base.keyRange = scaledKeys(1 << 17, 20 * 1000 * 1000);
  base.durationMs = scaledDurationMs(150, 3000);
  base = withUpdates(base, 1.0);
  const auto threads = defaultThreads();

  printHeader("Figure 7: elastic transactions vs lock-free external BST "
              "(1% updates, keyrange " +
                  std::to_string(base.keyRange) + ")",
              threads);
  sweepThreads<TmExtBstAdapter<stm::Elastic>>("fig07", threads, base);
  sweepThreads<EllenAdapter>("fig07", threads, base);
  return 0;
}
