// Ablation (§4.1): the validation-reduction optimizations — skip validation
// when contains/insert finds the key, and use exec instead of vexec for
// leaf/one-child deletions. Measured with the optimization on vs off across
// search-heavy and update-heavy mixes.
#include <cstdio>
#include <memory>

#include "bench_fw/driver.hpp"
#include "trees/int_bst_pathcas.hpp"

using namespace pathcas;
using namespace pathcas::bench;

namespace {

double cell(bool reduceValidation, const TrialConfig& cfg) {
  const TrialResult r = runCell(
      [&] {
        return std::make_unique<ds::IntBstPathCas<>>(
            ds::IntBstOptions{.reduceValidation = reduceValidation});
      },
      cfg);
  recl::EbrDomain::instance().drainAll();
  return r.mops;
}

}  // namespace

int main() {
  std::printf("\n== Ablation: §4.1 validation-reduction (int-bst-pathcas, "
              "4 threads) ==\n");
  std::printf("%-10s %14s %14s %9s\n", "updates", "optimized", "always-vexec",
              "speedup");
  for (double updates : {0.0, 1.0, 10.0, 50.0, 100.0}) {
    TrialConfig cfg;
    cfg.threads = 4;
    cfg.keyRange = scaledKeys(1 << 16, 1000 * 1000);
    cfg.durationMs = scaledDurationMs(120, 2000);
    cfg.insertFrac = updates / 200.0;
    cfg.deleteFrac = updates / 200.0;
    applyEnvDist(cfg);  // the update rate is this ablation's axis; dist only
    const double on = cell(true, cfg);
    const double off = cell(false, cfg);
    std::printf("%8.0f%% %14.3f %14.3f %8.2fx\n", updates, on, off,
                off > 0 ? on / off : 0.0);
    std::printf("csv,ablation_validation,%.0f,%.3f,%.3f,%s\n", updates, on,
                off, cfg.dist.label().c_str());
    std::fflush(stdout);
  }
  return 0;
}
