// Figure 3 (bottom row): balanced BSTs across update rates {1%, 10%, 100%}.
// Expected shape: int-avl-pathcas competitive at low update rates and within
// a modest factor at 100% updates; TM-based AVLs trail badly; the coarse
// (global-lock) AVL is the floor beyond 1 thread.
#include "bench_helpers.hpp"

using namespace pathcas;
using namespace pathcas::bench;
using namespace pathcas::testing;

int main() {
  const auto threads = defaultThreads();
  for (double updates : {1.0, 10.0, 100.0}) {
    TrialConfig base;
    base.keyRange = scaledKeys(1 << 17, 20 * 1000 * 1000);
    base.durationMs = scaledDurationMs(120, 3000);
    base = withUpdates(base, updates);
    printHeader("Figure 3 (balanced BSTs): " + std::to_string((int)updates) +
                    "% updates, keyrange " + std::to_string(base.keyRange),
                threads);
    sweepThreads<PathCasAvlAdapter<false>>("fig03b", threads, base);
    sweepThreads<PathCasAvlAdapter<true>>("fig03b", threads, base);
    sweepThreads<TmAvlAdapter<stm::TLE>>("fig03b", threads, base);
    sweepThreads<TmAvlAdapter<stm::NOrec>>("fig03b", threads, base);
    sweepThreads<TmAvlAdapter<stm::TL2>>("fig03b", threads, base);
    sweepThreads<TmAvlAdapter<stm::GlobalLockTm>>("fig03b", threads, base);
    // Sharded AVL frontend across PATHCAS_BENCH_SHARDS shard counts (the
    // `shards` JSON column distinguishes the rows).
    for (int nshards : defaultShards()) {
      TrialConfig cfg = base;
      cfg.shards = nshards;
      std::printf("%-22s  (shards %d)\n", "sharded:", nshards);
      sweepThreads<ShardedAvlAdapter<>>("fig03b", threads, cfg);
    }
  }
  return 0;
}
