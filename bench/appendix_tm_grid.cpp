// Appendix figures 18/19/24/25: TM-based unbalanced and balanced BSTs at
// 10% updates across key-range sizes, with abort rates. Reproduces the
// throughput rows plus the "abort rate (%)" series from the TM statistics.
#include <cstdio>

#include "bench_helpers.hpp"

using namespace pathcas;
using namespace pathcas::bench;
using namespace pathcas::testing;

namespace {

template <typename Adapter>
void sweepWithAborts(const std::string& exp, const std::vector<int>& threads,
                     const TrialConfig& base) {
  if (!mixSupported<Adapter>(base)) return;
  std::vector<double> mops, abortPct;
  for (int t : threads) {
    TrialConfig cfg = base;
    cfg.threads = t;
    auto set = std::make_unique<Adapter>();
    const std::int64_t prefillSum = prefillHalf(*set, cfg.keyRange);
    const auto s0 = set->tm->totalStats();
    const TrialResult r = runTrial(*set, cfg, prefillSum);
    const auto s1 = set->tm->totalStats();
    const double attempts = static_cast<double>((s1.commits - s0.commits) +
                                                (s1.aborts - s0.aborts));
    mops.push_back(r.mops);
    abortPct.push_back(
        attempts > 0 ? 100.0 * static_cast<double>(s1.aborts - s0.aborts) /
                           attempts
                     : 0.0);
    std::printf("csv,%s,%s,%d,%lld,%.3f,%.2f,%s,%s\n", exp.c_str(),
                Adapter::name().c_str(), t,
                static_cast<long long>(cfg.keyRange), r.mops,
                abortPct.back(), cfg.dist.label().c_str(), cfg.mix.c_str());
    set.reset();
    recl::EbrDomain::instance().drainAll();
  }
  printRow(Adapter::name() + " Mops", mops);
  printRow(Adapter::name() + " abort%", abortPct);
}

}  // namespace

int main() {
  const auto threads = defaultThreads();
  for (std::int64_t keyRange :
       {scaledKeys(1 << 13, 100 * 1000), scaledKeys(1 << 16, 1000 * 1000),
        scaledKeys(1 << 18, 10 * 1000 * 1000)}) {
    TrialConfig base;
    base.keyRange = keyRange;
    base.durationMs = scaledDurationMs(100, 2000);
    base = withUpdates(base, 10.0);
    // Applied here as well as inside sweepThreads, so the sweepWithAborts
    // (direct runTrial) rows run the same workload as the PathCAS rows. The
    // TM adapters have no rangeQuery, so a scan-bearing mix preset (ycsb-e)
    // skips them via mixSupported.
    applyEnvWorkload(base);

    printHeader("Appendix (Figs 18/24): TM-based unbalanced BSTs, keyrange " +
                    std::to_string(keyRange) + ", 10% updates",
                threads);
    sweepWithAborts<TmBstAdapter<stm::NOrec>>("figs18_24", threads, base);
    sweepWithAborts<TmBstAdapter<stm::TL2>>("figs18_24", threads, base);
    sweepWithAborts<TmBstAdapter<stm::TLE>>("figs18_24", threads, base);
    sweepThreads<PathCasBstAdapter<false>>("figs18_24", threads, base);

    printHeader("Appendix (Figs 19/25): TM-based balanced BSTs, keyrange " +
                    std::to_string(keyRange) + ", 10% updates",
                threads);
    sweepWithAborts<TmAvlAdapter<stm::NOrec>>("figs19_25", threads, base);
    sweepWithAborts<TmAvlAdapter<stm::TL2>>("figs19_25", threads, base);
    sweepWithAborts<TmAvlAdapter<stm::TLE>>("figs19_25", threads, base);
    sweepThreads<PathCasAvlAdapter<false>>("figs19_25", threads, base);
  }
  return 0;
}
