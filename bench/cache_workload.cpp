// Cache workload: hit-ratio × skew sweep for the KCAS-backed LRU/TTL cache
// (structs/lru_cache.hpp), the cross-structure composite where every
// mutation — hit promotion, insert, eviction, TTL collection — commits the
// hash index and the recency list in one KCAS. The grid crosses Zipfian θ
// (how concentrated the working set is) with the capacity FRACTION (cache
// capacity / key range): a skewed workload in a small cache still hits —
// the classic cache-sizing curve — while a uniform workload thrashes, and
// every miss-fill at capacity runs the widest descriptor in the repo (MCMS
// cold path: two bucket chains + four recency splices + mark + size anchor
// in one commit). YCSB-style cache-aside clients: lookup-heavy, fill on
// miss, a trickle of write-throughs and invalidations, 1-in-8 fills carrying
// a short TTL so the expiry path stays in the racing mix.
//
// Per cell: throughput plus hit/miss/expired/eviction accounting, a
// quiescent checkInvariants() (a bench run is also a correctness run), CSV
// rows (`grep '^csv,cache_workload'`), and — under PATHCAS_BENCH_JSON —
// one JSON object per trial carrying the standard identity + mops + latency
// fields bench_compare.py gates on, extended with the cache counters.
//
// Default grid: dist ∈ {uniform, zipfian:0.60, zipfian:0.90, zipfian:0.99}
// × capacity fraction ∈ {5%, 25%, 50%} × PATHCAS_BENCH_THREADS. Setting
// PATHCAS_BENCH_DIST collapses the distribution axis to that one spec (the
// CI smoke runs `zipfian:0.99`); PATHCAS_BENCH_LATENCY / _ARRIVAL / _SCALE /
// _JSON behave as everywhere else. The operation mix is the cache-aside
// loop itself (not a set mix), so PATHCAS_BENCH_MIX does not apply; the
// `mix` identity column carries the capacity fraction ("cache-cf25").
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_helpers.hpp"
#include "structs/lru_cache.hpp"

using namespace pathcas;
using namespace pathcas::bench;

namespace {

constexpr std::int64_t kLookupPct = 90;  // rest: 8% write-through, 2% inval
constexpr std::int64_t kWritePct = 8;
constexpr std::uint64_t kTtlNs = 5'000'000;  // 5ms; every 8th fill carries it

struct CacheCounters {
  std::uint64_t hits = 0, misses = 0, expired = 0;
  std::uint64_t fills = 0, evictions = 0, invals = 0;
  double hitPct() const {
    const std::uint64_t lookups = hits + misses + expired;
    return lookups ? 100.0 * static_cast<double>(hits) /
                         static_cast<double>(lookups)
                   : 0.0;
  }
};

/// One timed trial of the cache-aside loop. Mirrors driver.hpp's runTrial
/// (tsc pre-calibration, ready/go/stop handshake, sampled latency, optional
/// open-loop arrivals) but drives the cache interface — get with fill on
/// miss — instead of a set mix, and settles the hit/miss/evict accounting
/// the set driver has no notion of.
TrialResult runCacheTrial(const TrialConfig& cfg, std::int64_t capacity,
                          CacheCounters* out) {
  struct alignas(kNoFalseSharing) PerThread {
    std::uint64_t ops = 0, cycles = 0;
    CacheCounters c;
  };
  const double nsPerTick = TscCal::nsPerTick();  // calibrate pre-window
  const double ticksPerNs = 1.0 / nsPerTick;
  ds::LruTtlCache<> cache(static_cast<std::size_t>(capacity));

  // Warm prefill from the trial's own distribution, so the resident set is
  // the hot set and the timed window starts at steady-state hit ratio.
  SharedWorkloadState wstate(cfg.dist, cfg.keyRange);
  {
    KeyGen keys(cfg.dist, cfg.keyRange, &wstate, cfg.seed ^ 0xF111, 0, 1);
    for (std::int64_t i = 0; i < capacity * 4 && cache.size() < capacity;
         ++i) {
      const std::int64_t k = keys.next();
      cache.put(k, k * 2 + 1);
    }
  }
  ThreadRegistry::instance().deregisterThread();

  std::vector<PerThread> stats(static_cast<std::size_t>(cfg.threads));
  std::vector<LatencyRecorder> recs(
      cfg.latency ? static_cast<std::size_t>(cfg.threads) : 0);
  std::atomic<bool> go{false}, stop{false};
  std::atomic<int> ready{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      ThreadGuard tg;
      KeyGen keys(cfg.dist, cfg.keyRange, &wstate, cfg.seed, t, cfg.threads);
      Xoshiro256 rng(cfg.seed * 1000003 + static_cast<std::uint64_t>(t));
      PerThread& my = stats[static_cast<std::size_t>(t)];
      LatencyRecorder* rec =
          cfg.latency ? &recs[static_cast<std::size_t>(t)] : nullptr;
      const bool openLoop = cfg.arrival.open;
      ArrivalGen arrivals(
          openLoop ? cfg.arrival.ratePerSec / cfg.threads : 1.0, cfg.seed, t);
      const std::uint64_t sampleMask =
          (1ULL << static_cast<unsigned>(std::max(cfg.latSampleShift, 0))) -
          1;
      std::uint64_t sampleCtr = 0;

      // Every 8th fill carries the short TTL (per-thread stride: cheap and
      // deterministic), so expiry collection happens inside the timed mix.
      std::uint64_t fillCtr = 0;
      auto fill = [&](std::int64_t k) {
        const std::uint64_t ttl = (fillCtr++ & 7) == 0 ? kTtlNs : 0;
        const auto r = cache.put(k, k * 2 + 1, ttl);
        ++my.c.fills;
        if (r.evicted) ++my.c.evictions;
        if (r.inserted) keys.noteInsert(k);
      };

      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) cpuRelax();
      const std::uint64_t c0 = rdtsc();
      std::uint64_t nextArrival = c0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::int64_t k = keys.next();
        const std::uint64_t dice = rng.nextBounded(100);
        const bool sampled =
            rec != nullptr && (sampleCtr++ & sampleMask) == 0;
        std::uint64_t opStart = 0;
        if (openLoop) {
          nextArrival += static_cast<std::uint64_t>(arrivals.nextGapNs() *
                                                    ticksPerNs);
          std::uint64_t now = rdtsc();
          while (now < nextArrival &&
                 !stop.load(std::memory_order_relaxed)) {
            cpuRelax();
            now = rdtsc();
          }
          if (now < nextArrival) break;  // stopped while idle pre-arrival
          if (sampled) {
            rec->record(OpCat::kSched, now - nextArrival);
            opStart = nextArrival;
          }
        } else if (sampled) {
          opStart = rdtsc();
        }
        OpCat cat = OpCat::kFind;
        if (dice < kLookupPct) {
          // Cache-aside lookup: the fill on a miss is part of the same
          // logical op (and of its measured latency — that IS the cost a
          // missing client pays).
          std::int64_t v = 0;
          switch (cache.get(k, &v)) {
            case ds::CacheGet::kHit:
              ++my.c.hits;
              break;
            case ds::CacheGet::kMiss:
              ++my.c.misses;
              fill(k);
              break;
            case ds::CacheGet::kExpired:
              ++my.c.expired;
              fill(k);
              break;
          }
        } else if (dice < kLookupPct + kWritePct) {
          cat = OpCat::kInsert;  // write-through update
          fill(k);
        } else {
          cat = OpCat::kErase;  // invalidation
          if (cache.erase(k)) ++my.c.invals;
        }
        ++my.ops;
        if (sampled) rec->record(cat, rdtsc() - opStart);
      }
      my.cycles = rdtsc() - c0;
    });
  }
  while (ready.load() != cfg.threads) std::this_thread::yield();
  StopWatch sw;
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.durationMs));
  stop.store(true, std::memory_order_release);
  const double elapsed = sw.elapsedSeconds();
  for (auto& w : workers) w.join();

  TrialResult r;
  std::uint64_t cycles = 0;
  r.minThreadOps = stats.empty() ? 0 : stats.front().ops;
  for (const auto& s : stats) {
    r.totalOps += s.ops;
    r.minThreadOps = std::min(r.minThreadOps, s.ops);
    r.maxThreadOps = std::max(r.maxThreadOps, s.ops);
    cycles += s.cycles;
    out->hits += s.c.hits;
    out->misses += s.c.misses;
    out->expired += s.c.expired;
    out->fills += s.c.fills;
    out->evictions += s.c.evictions;
    out->invals += s.c.invals;
  }
  r.opsApplied = r.totalOps;
  r.opsOffered = r.totalOps;  // closed loop: offered == executed
  r.elapsedSec = elapsed;
  r.mops = static_cast<double>(r.totalOps) / elapsed / 1e6;
  r.mopsApplied = r.mops;
  r.goodputMops = r.mops;
  r.nsPerOp = r.totalOps ? TscCal::toNs(cycles) /
                               static_cast<double>(r.totalOps)
                         : 0.0;
  r.cyclesPerOp = r.totalOps ? static_cast<double>(cycles) /
                                   static_cast<double>(r.totalOps)
                             : 0.0;
  if (cfg.latency)
    r.lat = summarizeLatency(recs.data(), cfg.threads, nsPerTick);
  r.inserts = out->fills;
  r.deletes = out->invals;
  r.finds = out->hits + out->misses + out->expired;
  // A bench run is also a correctness run: the workers have joined, so the
  // composite invariants (hash set == list set, size honest, <= capacity)
  // are checkable quiescently.
  cache.checkInvariants();
  r.keysumOk = true;
  r.footprintBytes = cache.footprintBytes();
  return r;
}

/// Cache JSON row: the standard trial identity + throughput/latency fields
/// (exactly the names bench_compare.py joins and gates on) extended with
/// the cache accounting. Extra fields are ignored by older tooling.
void jsonAppendCacheTrial(const TrialConfig& cfg, std::int64_t capacity,
                          const TrialResult& r, const CacheCounters& c) {
  std::FILE* f = jsonSink();
  if (f == nullptr) return;
  const bool skewed = cfg.dist.kind == DistKind::kZipfian ||
                      cfg.dist.kind == DistKind::kLatest;
  std::fprintf(
      f,
      "{\"experiment\":\"cache_workload\",\"algo\":\"%s\",\"threads\":%d,"
      "\"shards\":%d,\"batch\":%d,\"combine_window\":%d,"
      "\"key_range\":%lld,\"dist\":\"%s\",\"theta\":%g,\"mix\":\"%s\","
      "\"arrival\":\"%s\",\"update_pct\":%.1f,\"rq_pct\":0.0,\"rq_size\":0,"
      "\"capacity\":%lld,"
      "\"mops\":%.4f,\"total_ops\":%llu,\"ns_per_op\":%.1f,"
      "\"hit_pct\":%.2f,\"hits\":%llu,\"misses\":%llu,\"expired\":%llu,"
      "\"fills\":%llu,\"evictions\":%llu,\"invalidations\":%llu,"
      "\"footprint_bytes\":%llu,\"elapsed_sec\":%.4f",
      ds::LruTtlCache<>::name(), cfg.threads, cfg.shards, cfg.batch,
      cfg.combineWindow, static_cast<long long>(cfg.keyRange),
      cfg.dist.label().c_str(), skewed ? cfg.dist.theta : 0.0,
      cfg.mix.c_str(), cfg.arrival.label().c_str(),
      static_cast<double>(100 - kLookupPct),
      static_cast<long long>(capacity), r.mops,
      static_cast<unsigned long long>(r.totalOps), r.nsPerOp, c.hitPct(),
      static_cast<unsigned long long>(c.hits),
      static_cast<unsigned long long>(c.misses),
      static_cast<unsigned long long>(c.expired),
      static_cast<unsigned long long>(c.fills),
      static_cast<unsigned long long>(c.evictions),
      static_cast<unsigned long long>(c.invals),
      static_cast<unsigned long long>(r.footprintBytes), r.elapsedSec);
  if (r.lat.valid) {
    std::fprintf(f,
                 ",\"p50_ns\":%.1f,\"p99_ns\":%.1f,\"p999_ns\":%.1f,"
                 "\"sched_p99_ns\":%.1f",
                 r.lat.overall.p50Ns, r.lat.overall.p99Ns,
                 r.lat.overall.p999Ns, r.lat.of(OpCat::kSched).p99Ns);
  }
  std::fprintf(f, "}\n");
  std::fflush(f);
}

void runCell(const TrialConfig& base, int threads, int cfPct) {
  TrialConfig cfg = base;
  cfg.threads = threads;
  cfg.mix = "cache-cf" + std::to_string(cfPct);
  const std::int64_t capacity =
      std::max<std::int64_t>(1, cfg.keyRange * cfPct / 100);
  CacheCounters c;
  const TrialResult r = runCacheTrial(cfg, capacity, &c);
  std::printf("  cf=%2d%% t=%-3d %8.3f Mops  hit %6.2f%%  "
              "(miss %llu, expired %llu, evict %llu)\n",
              cfPct, threads, r.mops, c.hitPct(),
              static_cast<unsigned long long>(c.misses),
              static_cast<unsigned long long>(c.expired),
              static_cast<unsigned long long>(c.evictions));
  // csv,cache_workload,algo,threads,keyrange,capacity,cf_pct,dist,theta,
  //     mops,hit_pct,hits,misses,expired,fills,evictions,invals,
  //     p50_ns,p99_ns,footprint_bytes
  std::printf("csv,cache_workload,%s,%d,%lld,%lld,%d,%s,%g,%.3f,%.2f,"
              "%llu,%llu,%llu,%llu,%llu,%llu,%.0f,%.0f,%llu\n",
              ds::LruTtlCache<>::name(), cfg.threads,
              static_cast<long long>(cfg.keyRange),
              static_cast<long long>(capacity), cfPct,
              cfg.dist.label().c_str(),
              cfg.dist.kind == DistKind::kZipfian ||
                      cfg.dist.kind == DistKind::kLatest
                  ? cfg.dist.theta
                  : 0.0,
              r.mops, c.hitPct(), static_cast<unsigned long long>(c.hits),
              static_cast<unsigned long long>(c.misses),
              static_cast<unsigned long long>(c.expired),
              static_cast<unsigned long long>(c.fills),
              static_cast<unsigned long long>(c.evictions),
              static_cast<unsigned long long>(c.invals),
              r.lat.overall.p50Ns, r.lat.overall.p99Ns,
              static_cast<unsigned long long>(r.footprintBytes));
  std::fflush(stdout);
  jsonAppendCacheTrial(cfg, capacity, r, c);
}

void runGrid(const std::vector<int>& threads, const TrialConfig& base) {
  std::printf("\n== cache workload: %s, keyrange %lld ==\n",
              base.dist.label().c_str(),
              static_cast<long long>(base.keyRange));
  for (int cfPct : {5, 25, 50}) {
    for (int t : threads) runCell(base, t, cfPct);
  }
}

}  // namespace

int main() {
  const auto threads = defaultThreads();
  TrialConfig base;
  base.keyRange = scaledKeys(1 << 14, 1 << 18);
  base.durationMs = scaledDurationMs(80, 1000);
  applyEnvLatency(base);
  applyEnvArrival(base);

  if (applyEnvDist(base)) {
    // Single-distribution mode (the CI smoke): just that spec's grid.
    runGrid(threads, base);
    return 0;
  }
  std::vector<DistSpec> grid;
  grid.push_back({});  // uniform: the thrash end of the curve
  for (double theta : {0.60, 0.90, 0.99}) {
    DistSpec d;
    d.kind = DistKind::kZipfian;
    d.theta = theta;
    grid.push_back(d);
  }
  for (const DistSpec& d : grid) {
    TrialConfig cfg = base;
    cfg.dist = d;
    runGrid(threads, cfg);
  }
  return 0;
}
