// Range-query mix sweep (index-scan style workloads): every ordered
// structure with a rangeQuery under mixes of point updates, point lookups
// and fixed-width range scans, across RQ ratio and RQ width. The PathCAS
// structures answer scans with validated (linearizable) snapshots; the
// hand-crafted external BSTs (ext-bst-lf / ext-bst-locks) only offer
// best-effort scans — the comparison is the point: validated scans at
// near-baseline cost is the capability this workload family buys.
//
// Emits the usual human-readable rows plus extended csv lines
// (`grep '^csv,rq_mix'`) and PATHCAS_BENCH_JSON objects carrying rq_pct,
// rq_size, rqs, rq_keys and rq_mops per trial.
#include "bench_helpers.hpp"

using namespace pathcas;
using namespace pathcas::bench;
using namespace pathcas::testing;

namespace {

/// rq_mix's extended CSV schema: the standard columns plus RQ ratio/width,
/// scan rate, scan count, keys returned, and — like every bench, even at the
/// uniform default — the dist/mix identification columns.
void printRqCsv(const std::string& experiment, const std::string& algo,
                const TrialConfig& cfg, const TrialResult& r) {
  const double rqPerSec =
      r.elapsedSec > 0.0 ? static_cast<double>(r.rqs) / r.elapsedSec : 0.0;
  std::printf("csv,%s,%s,%d,%lld,%.0f,%.0f,%lld,%.3f,%.0f,%llu,%llu,%s,%s\n",
              experiment.c_str(), algo.c_str(), cfg.threads,
              static_cast<long long>(cfg.keyRange),
              (cfg.insertFrac + cfg.deleteFrac) * 100.0, cfg.rqFrac * 100.0,
              static_cast<long long>(cfg.rqSize), r.mops, rqPerSec,
              static_cast<unsigned long long>(r.rqs),
              static_cast<unsigned long long>(r.rqKeys),
              cfg.dist.label().c_str(), cfg.mix.c_str());
}

template <typename Adapter>
void sweepRq(const std::vector<int>& threads, const TrialConfig& base) {
  // Dist only: the RQ ratio × width grid is this bench's own mix axis.
  sweepThreads<Adapter>("rq_mix", threads, base, printRqCsv,
                        EnvKnobs::kDistOnly);
}

}  // namespace

int main() {
  if (const char* m = std::getenv("PATHCAS_BENCH_MIX"); m != nullptr && *m)
    std::fprintf(stderr,
                 "rq_mix ignores PATHCAS_BENCH_MIX=%s: the RQ ratio/width "
                 "grid is the experiment\n",
                 m);
  const auto threads = defaultThreads();
  for (const double rqPct : {10.0, 50.0}) {
    for (const std::int64_t rqSize : {16LL, 256LL}) {
      TrialConfig base = withUpdates({}, 10.0);  // 5% insert + 5% delete
      base.rqFrac = rqPct / 100.0;
      base.rqSize = rqSize;
      base.mix = "u10-rq" + std::to_string(static_cast<int>(rqPct));
      base.keyRange = scaledKeys(1 << 14, 1 << 16);
      base.durationMs = scaledDurationMs(80, 2000);
      // The RQ ratio × width grid IS this bench's mix axis, so only the
      // distribution knob applies (a mix preset would collapse all six grid
      // cells to the same workload); headers then match what the cells run.
      applyEnvDist(base);
      printHeader("RQ mix: " + std::to_string(static_cast<int>(rqPct)) +
                      "% scans of width " + std::to_string(rqSize) +
                      ", 10% updates, keyrange " +
                      std::to_string(base.keyRange) + ", " +
                      describeWorkload(base),
                  threads);
      sweepRq<PathCasBstAdapter<false>>(threads, base);
      sweepRq<PathCasAvlAdapter<false>>(threads, base);
      sweepRq<SkipListAdapter>(threads, base);
      sweepRq<AbTreeAdapter>(threads, base);
      sweepRq<EllenAdapter>(threads, base);
      sweepRq<TicketAdapter>(threads, base);

      // The list's whole-prefix read set bounds it to small key ranges
      // (pathcas::kMaxVisited); sweep it in its own regime.
      TrialConfig listCfg = base;
      listCfg.keyRange = 256;
      listCfg.rqSize = std::min<std::int64_t>(rqSize, 64);
      std::printf("%-22s  (keyrange %lld, width %lld)\n", "list-pathcas:",
                  static_cast<long long>(listCfg.keyRange),
                  static_cast<long long>(listCfg.rqSize));
      sweepRq<ListAdapter>(threads, listCfg);
    }
  }
  return 0;
}
