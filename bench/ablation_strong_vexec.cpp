// Ablation (§3.5): strong vexec under the adversarial cross-visit workload
// of §3.4 — thread A visits X and adds Y while thread B visits Y and adds X.
// With plain bounded-retry vexec both can starve each other spuriously; the
// strong slow path (promote path to entries + sorted exec) guarantees
// progress (property P1). We report throughput and how often the strong
// path / retries were actually needed — the paper notes spurious failures
// are rare enough that the slow path almost never triggers in tree
// workloads, which this measures directly.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_fw/driver.hpp"
#include "pathcas/pathcas.hpp"

using namespace pathcas;

namespace {

struct Cell {
  casword<Version> ver;
  casword<std::int64_t> val;
};

struct Outcome {
  std::uint64_t successes = 0;
  std::uint64_t firstTryFailures = 0;
};

/// Each op: visit `visitIdx`, add to `addIdx` (the §3.4 cross pattern when
/// run by two thread groups with swapped roles).
Outcome run(bool strongFallback, int durationMs) {
  constexpr int kThreads = 4;
  std::vector<Cell> cells(2);
  std::atomic<bool> stop{false};
  std::vector<Outcome> outcomes(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadGuard tg;
      Cell& visitCell = cells[t % 2];
      Cell& addCell = cells[1 - (t % 2)];
      Outcome& out = outcomes[t];
      while (!stop.load(std::memory_order_relaxed)) {
        start();
        const Version vv = visitVer(visitCell.ver);
        if (isMarked(vv)) continue;
        const std::int64_t cur = addCell.val;
        const Version av = visitVer(addCell.ver);
        if (isMarked(av)) continue;
        add(addCell.val, cur, cur + 1);
        addVer(addCell.ver, av, verBump(av));
        bool ok;
        if (strongFallback) {
          ok = vexec();  // bounded retries, then promote-and-exec (P1)
        } else {
          // Plain vexec semantics: one shot, spurious failures included.
          ok = domain().execute(true) == k::ExecResult::kSucceeded;
        }
        if (ok) {
          ++out.successes;
        } else {
          ++out.firstTryFailures;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(durationMs));
  stop.store(true);
  for (auto& th : threads) th.join();
  Outcome total;
  for (const auto& o : outcomes) {
    total.successes += o.successes;
    total.firstTryFailures += o.firstTryFailures;
  }
  // Sanity: each success incremented exactly one counter.
  PATHCAS_CHECK(static_cast<std::int64_t>(total.successes) ==
                cells[0].val.load() + cells[1].val.load());
  return total;
}

}  // namespace

int main() {
  const int ms = bench::scaledDurationMs(300, 2000);
  std::printf("\n== Ablation: strong vexec on the §3.4 cross-visit/add "
              "workload (4 threads) ==\n");
  const Outcome weak = run(false, ms);
  const Outcome strong = run(true, ms);
  std::printf("%-28s %14s %18s\n", "mode", "successes/s", "failed attempts/s");
  std::printf("%-28s %14.0f %18.0f\n", "one-shot vexec",
              weak.successes * 1000.0 / ms,
              weak.firstTryFailures * 1000.0 / ms);
  std::printf("%-28s %14.0f %18.0f\n", "strong vexec (P1)",
              strong.successes * 1000.0 / ms,
              strong.firstTryFailures * 1000.0 / ms);
  std::printf("csv,ablation_strong_vexec,%llu,%llu,%llu,%llu\n",
              (unsigned long long)weak.successes,
              (unsigned long long)weak.firstTryFailures,
              (unsigned long long)strong.successes,
              (unsigned long long)strong.firstTryFailures);
  return 0;
}
