// Commit-path ablation (ISSUE 5): attributes the KCAS hot-path win to its
// three orthogonal optimizations by instantiating KcasDomain with every
// KcasPolicy toggle — degenerate k=1 fast paths, relaxed publication fences,
// hot/cold inline descriptor layout — one at a time and all together, and
// timing the four operation shapes the data structures actually commit:
//
//   exec_k1      one entry, no path      (stack/queue, strong-path k=1)
//   vexec_k1p1   one entry + one visit   (guarded single-word install)
//   exec_k4      four entries            (tree update, validation reduced)
//   vexec_k2p2   two entries + two visits (the BST insert shape)
//   exec_k8      eight entries, added in descending-address order (the
//                batched-commit shape; exercises the staging-merge toggle,
//                which replaces per-entry shifting insertion with
//                append + one merge at execute)
//
// Single-threaded by design: the attribution metric is uncontended
// cycles/op (docs/BENCHMARKING.md, "ablation_hotpath"). Contended behavior
// is covered by skew_sweep and the fig0x drivers.
//
// Knobs: PATHCAS_ABLATION_ITERS (default 1000000) — iterations per cell.
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "kcas/kcas.hpp"
#include "util/thread_registry.hpp"
#include "util/timing.hpp"

namespace {

using namespace pathcas;
using namespace pathcas::k;

std::uint64_t iters() {
  const char* s = std::getenv("PATHCAS_ABLATION_ITERS");
  const long v = s != nullptr ? std::atol(s) : 0;
  return v > 0 ? static_cast<std::uint64_t>(v) : 1000000;
}

struct CellResult {
  double nsPerOp;
  double cyclesPerOp;
};

/// Time `op` (called `n` times) with wall clock and rdtsc.
template <typename F>
CellResult timeCell(std::uint64_t n, F&& op) {
  StopWatch sw;
  const std::uint64_t c0 = rdtsc();
  for (std::uint64_t i = 0; i < n; ++i) op();
  const std::uint64_t c1 = rdtsc();
  const double sec = sw.elapsedSeconds();
  return {sec * 1e9 / static_cast<double>(n),
          static_cast<double>(c1 - c0) / static_cast<double>(n)};
}

constexpr int kOps = 5;
const char* const kOpNames[kOps] = {"exec_k1", "vexec_k1p1", "exec_k4",
                                    "vexec_k2p2", "exec_k8"};

/// Run the four operation shapes against a fresh domain built with Policy.
template <class Policy>
void runConfig(const char* config, CellResult (&out)[kOps]) {
  using Dom = KcasDomain<64, 64, Policy>;
  auto* dom = new Dom();  // too large for the stack; freed below
  const std::uint64_t n = iters();

  // Words: a guard version (even values only — the mark bit must stay
  // clear), and a handful of data/version words shaped like a tree node
  // neighbourhood.
  AtomicWord data[4], ver[4];
  for (auto& w : data) w.store(encodeVal(0));
  for (auto& w : ver) w.store(encodeVal(100));

  std::uint64_t v = 0;
  out[0] = timeCell(n, [&] {  // exec_k1
    dom->begin();
    dom->addEntry(&data[0], encodeVal(v), encodeVal(v + 1));
    if (dom->execute(false) != ExecResult::kSucceeded) std::abort();
    ++v;
  });

  v = 0;
  out[1] = timeCell(n, [&] {  // vexec_k1p1
    dom->begin();
    dom->addPath(&ver[0], encodeVal(100));
    dom->addEntry(&data[1], encodeVal(v), encodeVal(v + 1));
    if (dom->execute(true) != ExecResult::kSucceeded) std::abort();
    ++v;
  });

  v = 0;
  std::uint64_t vv = 100;
  out[2] = timeCell(n, [&] {  // exec_k4: 2 data + 2 version entries
    dom->begin();
    dom->addEntry(&data[2], encodeVal(v), encodeVal(v + 1));
    dom->addEntry(&data[3], encodeVal(v), encodeVal(v + 1));
    dom->addVerEntry(&ver[1], encodeVal(vv), encodeVal(vv + 2));
    dom->addVerEntry(&ver[2], encodeVal(vv), encodeVal(vv + 2));
    if (dom->execute(false) != ExecResult::kSucceeded) std::abort();
    ++v;
    vv += 2;
  });

  v = 0;
  vv = 100;
  data[2].store(encodeVal(0));
  ver[1].store(encodeVal(100));  // rewound: exec_k4 above bumped it
  out[3] = timeCell(n, [&] {  // vexec_k2p2: the BST insert shape
    dom->begin();
    dom->addPath(&ver[0], encodeVal(100));
    dom->addPath(&ver[3], encodeVal(100));
    dom->addEntry(&data[2], encodeVal(v), encodeVal(v + 1));
    dom->addVerEntry(&ver[1], encodeVal(vv), encodeVal(vv + 2));
    if (dom->execute(true) != ExecResult::kSucceeded) std::abort();
    ++v;
    vv += 2;
  });

  // exec_k8: the batched-commit shape. Descending address order is the
  // staging worst case — every shifting insert moves the whole prefix —
  // so this cell isolates what the merge-based sort (Policy::kStagingMerge)
  // buys wide commits.
  AtomicWord wide[8];
  for (auto& w : wide) w.store(encodeVal(0));
  v = 0;
  out[4] = timeCell(n, [&] {
    dom->begin();
    for (int i = 7; i >= 0; --i)
      dom->addEntry(&wide[i], encodeVal(v), encodeVal(v + 1));
    if (dom->execute(false) != ExecResult::kSucceeded) std::abort();
    ++v;
  });

  std::printf("%-22s", config);
  for (const auto& c : out) std::printf("  %8.1f", c.nsPerOp);
  std::printf("\n");
  for (int i = 0; i < kOps; ++i) {
    std::printf("csv,ablation_hotpath,%s,%s,%.2f,%.1f\n", config, kOpNames[i],
                out[i].nsPerOp, out[i].cyclesPerOp);
  }
  delete dom;
}

}  // namespace

int main() {
  ThreadGuard tg;
  std::printf("== ablation_hotpath: KcasPolicy attribution "
              "(%llu iters/cell, ns/op) ==\n",
              static_cast<unsigned long long>(iters()));
  std::printf("%-22s", "config");
  for (const char* op : kOpNames) std::printf("  %8s", op);
  std::printf("\n");

  CellResult base[kOps], fast[kOps], fence[kOps], layout[kOps], merge[kOps],
      tuned[kOps];
  runConfig<KcasPolicy<false, false, 0, false>>("baseline(legacy)", base);
  runConfig<KcasPolicy<true, false, 0, false>>("+fastpaths", fast);
  runConfig<KcasPolicy<false, true, 0, false>>("+fences", fence);
  runConfig<KcasPolicy<false, false, 8, false>>("+hotlayout", layout);
  runConfig<KcasPolicy<false, false, 0, true>>("+stagemerge", merge);
  runConfig<KcasPolicy<true, true, 8, true>>("tuned(all)", tuned);

  std::printf("\nspeedup vs baseline (x):\n%-22s", "config");
  for (const char* op : kOpNames) std::printf("  %8s", op);
  std::printf("\n");
  struct Row {
    const char* name;
    CellResult* cells;
  } rows[] = {{"+fastpaths", fast},
              {"+fences", fence},
              {"+hotlayout", layout},
              {"+stagemerge", merge},
              {"tuned(all)", tuned}};
  for (const auto& row : rows) {
    std::printf("%-22s", row.name);
    for (int i = 0; i < kOps; ++i)
      std::printf("  %8.2f", base[i].nsPerOp / row.cells[i].nsPerOp);
    std::printf("\n");
  }
  return 0;
}
