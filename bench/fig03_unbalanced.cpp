// Figure 3 (top row): unbalanced BSTs across update rates {1%, 10%, 100%}.
// Paper machine: AMD, 10M keys; here scaled (PATHCAS_BENCH_SCALE=full for
// larger ranges). Expected shape: int-bst-pathcas leads or ties the
// hand-crafted external BSTs, with the gap growing as the internal tree's
// lower average key depth pays off.
#include "bench_helpers.hpp"

using namespace pathcas;
using namespace pathcas::bench;
using namespace pathcas::testing;

int main() {
  const auto threads = defaultThreads();
  for (double updates : {1.0, 10.0, 100.0}) {
    TrialConfig base;
    base.keyRange = scaledKeys(1 << 17, 20 * 1000 * 1000);
    base.durationMs = scaledDurationMs(120, 3000);
    base = withUpdates(base, updates);
    printHeader("Figure 3 (unbalanced BSTs): " + std::to_string((int)updates) +
                    "% updates, keyrange " + std::to_string(base.keyRange),
                threads);
    sweepThreads<PathCasBstAdapter<false>>("fig03u", threads, base);
    sweepThreads<PathCasBstAdapter<true>>("fig03u", threads, base);
    sweepThreads<EllenAdapter>("fig03u", threads, base);
    sweepThreads<TicketAdapter>("fig03u", threads, base);
    // Sharded BST frontend across PATHCAS_BENCH_SHARDS shard counts (the
    // `shards` JSON column distinguishes the rows).
    for (int nshards : defaultShards()) {
      TrialConfig cfg = base;
      cfg.shards = nshards;
      std::printf("%-22s  (shards %d)\n", "sharded:", nshards);
      sweepThreads<ShardedBstAdapter<>>("fig03u", threads, cfg);
    }
  }
  return 0;
}
