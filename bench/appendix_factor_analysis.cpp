// Appendix figures 26/27: factor analysis — throughput, ns/op, page
// faults/op and average key depth for the unbalanced and balanced trees at
// {1%, 10%, 100%} updates. Hardware cache-miss counters are substituted by
// the structural drivers (avg key depth, footprint) per the deviations
// section of PAPER.md.
#include <sys/resource.h>

#include <cstdio>

#include "bench_helpers.hpp"

using namespace pathcas;
using namespace pathcas::bench;
using namespace pathcas::testing;

namespace {

long pageFaults() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_minflt + ru.ru_majflt;
}

template <typename Adapter>
void analyze(const TrialConfig& cfg, double updates) {
  auto set = std::make_unique<Adapter>();
  const std::int64_t prefillSum = prefillHalf(*set, cfg.keyRange);
  const long pf0 = pageFaults();
  const TrialResult r = runTrial(*set, cfg, prefillSum);
  const long pf1 = pageFaults();
  std::printf("%-22s %6.0f%% %10.3f %12.1f %12.6f %10.2f %10.2f\n",
              Adapter::name().c_str(), updates, r.mops, r.nsPerOp,
              static_cast<double>(pf1 - pf0) /
                  static_cast<double>(r.totalOps ? r.totalOps : 1),
              set->avgKeyDepth(),
              static_cast<double>(set->footprintBytes()) / (1024.0 * 1024.0));
  std::fflush(stdout);
  set.reset();
  recl::EbrDomain::instance().drainAll();
}

}  // namespace

int main() {
  TrialConfig probe;
  applyEnvDist(probe);  // the update rate is this figure's axis; dist only
  std::printf(
      "\n== Appendix (Figs 26/27): factor analysis, 4 threads, dist=%s ==\n",
      probe.dist.label().c_str());
  std::printf("%-22s %7s %10s %12s %12s %10s %10s\n", "algorithm", "upd",
              "Mops/s", "ns/op", "faults/op", "avg depth", "mem MiB");
  for (double updates : {1.0, 10.0, 100.0}) {
    TrialConfig cfg;
    cfg.threads = 4;
    cfg.keyRange = scaledKeys(1 << 16, 1000 * 1000);
    cfg.durationMs = scaledDurationMs(120, 2000);
    cfg = withUpdates(cfg, updates);
    applyEnvDist(cfg);
    // Unbalanced (Fig 26).
    analyze<PathCasBstAdapter<false>>(cfg, updates);
    analyze<EllenAdapter>(cfg, updates);
    analyze<TicketAdapter>(cfg, updates);
    // Balanced (Fig 27).
    analyze<PathCasAvlAdapter<false>>(cfg, updates);
    analyze<TmAvlAdapter<stm::NOrec>>(cfg, updates);
    analyze<TmAvlAdapter<stm::TL2>>(cfg, updates);
  }
  return 0;
}
