// Skew sweep: Zipf theta × thread count across all seven ordered structures
// (beyond the paper, which evaluates uniform keys only). Skewed keys
// concentrate updates on a few hot nodes, which is exactly the regime where
// PathCAS's validate-then-kcas design must pay retries/strong-path work —
// uniform sweeps hide it. Alongside throughput, each cell reports the
// per-thread op-count imbalance (max/min) and the structure footprint, so
// skew-induced serialization and allocation imbalance are visible. The
// sharded frontends (service/sharded_map.hpp) join the sweep across
// PATHCAS_BENCH_SHARDS shard counts — the skew-relief counterpart to the
// plain structures' hot-set serialization.
//
// Default grid: dist ∈ {uniform, zipfian:0.60, zipfian:0.90, zipfian:0.99,
// hotspot:0.2:0.8} × PATHCAS_BENCH_THREADS, at the default u10 mix. Setting
// PATHCAS_BENCH_DIST and/or PATHCAS_BENCH_MIX collapses the grid to that one
// workload (the CI smoke trial runs `PATHCAS_BENCH_DIST=zipfian:0.99
// PATHCAS_BENCH_MIX=ycsb-b`). Rows land in the usual outputs: human-readable,
// `grep '^csv,skew_sweep'`, and PATHCAS_BENCH_JSON objects carrying dist,
// theta, mix, ops_min_thread/ops_max_thread and footprint_bytes.
#include "bench_helpers.hpp"

using namespace pathcas;
using namespace pathcas::bench;
using namespace pathcas::testing;

namespace {

/// skew_sweep's CSV schema: identification (incl. shard count — 1 for the
/// plain structures) + throughput + the two skew-visibility columns
/// (thread-op imbalance, footprint).
void printSkewCsv(const std::string& experiment, const std::string& algo,
                  const TrialConfig& cfg, const TrialResult& r) {
  const double imbalance =
      r.minThreadOps > 0 ? static_cast<double>(r.maxThreadOps) /
                               static_cast<double>(r.minThreadOps)
                         : 0.0;
  std::printf("csv,%s,%s,%d,%d,%lld,%s,%g,%s,%.3f,%llu,%llu,%.2f,%llu\n",
              experiment.c_str(), algo.c_str(), cfg.threads, cfg.shards,
              static_cast<long long>(cfg.keyRange), cfg.dist.label().c_str(),
              cfg.dist.kind == DistKind::kZipfian ||
                      cfg.dist.kind == DistKind::kLatest
                  ? cfg.dist.theta
                  : 0.0,
              cfg.mix.c_str(), r.mops,
              static_cast<unsigned long long>(r.minThreadOps),
              static_cast<unsigned long long>(r.maxThreadOps), imbalance,
              static_cast<unsigned long long>(r.footprintBytes));
}

template <typename Adapter>
void sweepSkew(const std::vector<int>& threads, const TrialConfig& base) {
  sweepThreads<Adapter>("skew_sweep", threads, base, printSkewCsv);
}

void runGrid(const std::vector<int>& threads, const TrialConfig& base) {
  printHeader("Skew sweep: " + describeWorkload(base) + ", keyrange " +
                  std::to_string(base.keyRange),
              threads);
  sweepSkew<PathCasBstAdapter<false>>(threads, base);
  sweepSkew<PathCasAvlAdapter<false>>(threads, base);
  sweepSkew<SkipListAdapter>(threads, base);
  sweepSkew<AbTreeAdapter>(threads, base);
  sweepSkew<EllenAdapter>(threads, base);
  sweepSkew<TicketAdapter>(threads, base);

  // Sharded frontends (service/sharded_map.hpp): the skew-relief
  // experiment. The Zipfian generator scrambles hot ranks across the key
  // space, so range partitioning splits the hot set and each shard's
  // private KCAS/EBR domains stop hot-key retries from rippling across the
  // whole structure. Shard counts: PATHCAS_BENCH_SHARDS (default 1,2,4,8);
  // the `shards` CSV/JSON column identifies each row.
  for (int nshards : defaultShards()) {
    TrialConfig cfg = base;
    cfg.shards = nshards;
    std::printf("%-22s  (shards %d)\n", "sharded:", nshards);
    sweepSkew<ShardedBstAdapter<>>(threads, cfg);
    sweepSkew<ShardedAvlAdapter<>>(threads, cfg);
  }

  // The list's whole-prefix read set bounds it to small key ranges
  // (pathcas::kMaxVisited); sweep it in its own regime.
  TrialConfig listCfg = base;
  listCfg.keyRange = 256;
  listCfg.rqSize = std::min<std::int64_t>(listCfg.rqSize, 64);
  std::printf("%-22s  (keyrange %lld)\n", "list-pathcas:",
              static_cast<long long>(listCfg.keyRange));
  sweepSkew<ListAdapter>(threads, listCfg);
}

}  // namespace

int main() {
  const auto threads = defaultThreads();
  TrialConfig base = withUpdates({}, 10.0);  // 5% insert + 5% delete
  base.keyRange = scaledKeys(1 << 14, 1 << 20);
  base.durationMs = scaledDurationMs(80, 2000);

  applyEnvMix(base);  // PATHCAS_BENCH_MIX may override the mix in any mode
  if (applyEnvDist(base)) {
    // Single-workload mode: the env names one distribution, so run just it
    // (sweepThreads re-applies the same override per cell, idempotently).
    runGrid(threads, base);
    return 0;
  }
  // No (well-formed) PATHCAS_BENCH_DIST: run the built-in distribution grid.
  // A malformed value warns once and is otherwise ignored, so the grid's
  // per-cell dist settings run untouched.
  std::vector<DistSpec> grid;
  grid.push_back({});  // uniform
  for (double theta : {0.60, 0.90, 0.99}) {
    DistSpec d;
    d.kind = DistKind::kZipfian;
    d.theta = theta;
    grid.push_back(d);
  }
  {
    DistSpec d;
    d.kind = DistKind::kHotspot;
    grid.push_back(d);  // 80% of ops on the hottest 20% of keys
  }
  for (const DistSpec& d : grid) {
    TrialConfig cfg = base;
    cfg.dist = d;
    runGrid(threads, cfg);
  }
  return 0;
}
