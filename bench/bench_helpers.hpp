// Shared plumbing for the figure-reproduction benches: thread sweeps over an
// adapter type, EBR drain between cells, and CSV emission alongside the
// human-readable rows.
//
// Knobs (full reference: docs/BENCHMARKING.md):
//   PATHCAS_BENCH_THREADS  comma-separated thread counts for the sweep
//                          (default "1,2,4,8"; each must be in [1, 256])
//   PATHCAS_BENCH_SCALE    "quick" (default) or "full" for paper-scale key
//                          ranges and durations (driver.hpp)
//   PATHCAS_BENCH_DIST     key distribution override (uniform | zipfian:θ |
//                          hotspot:kf:of | latest[:θ] | seq) — applied to
//                          every sweep by sweepThreads (driver.hpp,
//                          applyEnvWorkload)
//   PATHCAS_BENCH_MIX      operation-mix preset override (ycsb-a/b/c/e,
//                          u0/u1/u10/u50/u100)
//   PATHCAS_BENCH_SHARDS   comma-separated shard counts for the sharded-
//                          frontend sweeps (default "1,2,4,8")
//   PATHCAS_BENCH_BATCH    comma-separated update-batch widths for benches
//                          with a batch axis (default "1,8,64,256,1024";
//                          1 = per-op k=1 fast-path baseline)
//   PATHCAS_BENCH_LATENCY  "1"/"on" records per-op latency histograms and
//                          reports p50/p99/p999/max ns per category
//                          (driver.hpp, bench_fw/latency.hpp)
//   PATHCAS_BENCH_ARRIVAL  arrival process: "closed" (default) or
//                          "poisson:<opsPerSec>" open loop, where latency
//                          runs from each op's scheduled arrival
//   PATHCAS_BENCH_JSON     JSON Lines sink, one object per trial
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "bench_fw/adapters.hpp"
#include "bench_fw/driver.hpp"
#include "recl/ebr.hpp"

namespace pathcas::bench {

/// Parse a comma-separated int list with every element in [1, maxValue].
/// Returns false (leaving *out untouched beyond scratch) on any malformed
/// input, so callers can fall back to their default and warn once.
inline bool parseIntList(const char* s, int maxValue, std::vector<int>* out) {
  std::vector<int> vals;
  int cur = 0;
  bool haveDigit = false;
  for (const char* p = s;; ++p) {
    if (*p >= '0' && *p <= '9') {
      cur = cur * 10 + (*p - '0');
      haveDigit = true;
      if (cur > maxValue) return false;
    } else if (*p == ',' || *p == '\0') {
      if (!haveDigit || cur < 1) return false;
      vals.push_back(cur);
      cur = 0;
      haveDigit = false;
      if (*p == '\0') break;
    } else {
      return false;
    }
  }
  if (vals.empty()) return false;
  *out = std::move(vals);
  return true;
}

/// Thread counts for each sweep: PATHCAS_BENCH_THREADS ("4" or "1,2,4,8,16")
/// when set and well-formed, else {1, 2, 4, 8}.
inline std::vector<int> defaultThreads() {
  if (const char* s = std::getenv("PATHCAS_BENCH_THREADS")) {
    std::vector<int> out;
    if (parseIntList(s, kMaxThreads, &out)) return out;
    std::fprintf(stderr,
                 "ignoring malformed PATHCAS_BENCH_THREADS=\"%s\" "
                 "(want e.g. \"1,2,4,8\", counts in [1, %d])\n",
                 s, kMaxThreads);
  }
  return {1, 2, 4, 8};
}

/// Shard counts for the sharded-frontend sweeps: PATHCAS_BENCH_SHARDS
/// ("1,4") when set and well-formed, else {1, 2, 4, 8}. Capped at
/// kMaxThreads — more shards than registerable threads is never useful.
inline std::vector<int> defaultShards() {
  if (const char* s = std::getenv("PATHCAS_BENCH_SHARDS")) {
    std::vector<int> out;
    if (parseIntList(s, kMaxThreads, &out)) return out;
    std::fprintf(stderr,
                 "ignoring malformed PATHCAS_BENCH_SHARDS=\"%s\" "
                 "(want e.g. \"1,2,4,8\", counts in [1, %d])\n",
                 s, kMaxThreads);
  }
  return {1, 2, 4, 8};
}

/// Update-batch widths for benches with a batch axis (bench/batch_commit):
/// PATHCAS_BENCH_BATCH ("1,16") when set and well-formed, else
/// {1, 8, 64, 256, 1024}. Width 1 is the per-op k=1 fast-path baseline
/// every speedup is quoted against. Widths beyond the trees' chunk size
/// (IntBstOptions::batchOpsPerCommit) still pay off: the driver nets
/// duplicate keys across the whole window before submitting, and under a
/// skewed distribution the netted fraction grows with the window. Capped
/// at 4096 — past that the flush's sort dominates any further netting.
inline std::vector<int> defaultBatches() {
  if (const char* s = std::getenv("PATHCAS_BENCH_BATCH")) {
    std::vector<int> out;
    if (parseIntList(s, 4096, &out)) return out;
    std::fprintf(stderr,
                 "ignoring malformed PATHCAS_BENCH_BATCH=\"%s\" "
                 "(want e.g. \"1,8,64\", widths in [1, 4096])\n",
                 s);
  }
  return {1, 8, 64, 256, 1024};
}

/// Per-cell CSV emitter, swappable per experiment (the sweep loop itself —
/// fresh structure per cell, JSON emission, EBR drain between cells — is
/// shared and must not be duplicated).
using CsvPrinter = std::function<void(
    const std::string& experiment, const std::string& algo,
    const TrialConfig& cfg, const TrialResult& r)>;

/// The default `csv,<experiment>,...` schema shared by the figure benches;
/// trailing dist/mix/batch/arrival columns keep CSV rows self-describing
/// under the PATHCAS_BENCH_DIST / _MIX / _BATCH / _ARRIVAL overrides, and
/// the latency columns (p50/p99/p999 ns over all op categories, sched p99)
/// are zero unless PATHCAS_BENCH_LATENCY enabled recording.
inline void printStandardCsv(const std::string& experiment,
                             const std::string& algo, const TrialConfig& cfg,
                             const TrialResult& r) {
  std::printf("csv,%s,%s,%d,%lld,%.0f,%.3f,%llu,%llu,%.1f,%s,%s,%d,%s,"
              "%.0f,%.0f,%.0f,%.0f\n",
              experiment.c_str(), algo.c_str(), cfg.threads,
              static_cast<long long>(cfg.keyRange),
              (cfg.insertFrac + cfg.deleteFrac) * 100.0, r.mops,
              static_cast<unsigned long long>(r.totalOps),
              static_cast<unsigned long long>(r.opsApplied), r.nsPerOp,
              cfg.dist.label().c_str(), cfg.mix.c_str(), cfg.batch,
              cfg.arrival.label().c_str(), r.lat.overall.p50Ns,
              r.lat.overall.p99Ns, r.lat.overall.p999Ns,
              r.lat.of(OpCat::kSched).p99Ns);
}

/// Which environment workload knobs a sweep honours: benches whose mix is
/// the experiment's own axis (rq_mix's RQ grid) take only the distribution.
enum class EnvKnobs { kDistAndMix, kDistOnly };

/// True if `Adapter` can run cfg's operation mix. A scan-bearing mix
/// (PATHCAS_BENCH_MIX=ycsb-e) on a structure without rangeQuery — the
/// TM/MCMS baselines — is reported and skipped, rather than letting the
/// driver's rqFrac assertion kill the whole sweep half-done.
template <typename Adapter>
bool mixSupported(const TrialConfig& cfg) {
  if constexpr (!HasRangeQuery<Adapter>) {
    if (cfg.rqFrac > 0.0) {
      std::fprintf(stderr,
                   "skipping %s: mix \"%s\" has %.0f%% scans but the "
                   "structure has no rangeQuery\n",
                   Adapter::name().c_str(), cfg.mix.c_str(),
                   cfg.rqFrac * 100.0);
      std::printf("%-22s  (skipped: no rangeQuery for mix %s)\n",
                  Adapter::name().c_str(), cfg.mix.c_str());
      return false;
    }
  }
  return true;
}

/// Run `Adapter` across thread counts; prints a row and a CSV block line per
/// cell. Returns Mops per thread count. The PATHCAS_BENCH_DIST /
/// PATHCAS_BENCH_MIX environment overrides are applied to the base config
/// here, so every bench built on sweepThreads honours them for free.
template <typename Adapter>
std::vector<double> sweepThreads(const std::string& experiment,
                                 const std::vector<int>& threads,
                                 TrialConfig base,
                                 const CsvPrinter& csv = printStandardCsv,
                                 EnvKnobs knobs = EnvKnobs::kDistAndMix) {
  if (knobs == EnvKnobs::kDistOnly)
    applyEnvDist(base);
  else
    applyEnvWorkload(base);
  if (!mixSupported<Adapter>(base)) return {};
  std::vector<double> mops;
  for (int t : threads) {
    TrialConfig cfg = base;
    cfg.threads = t;
    // Adapters constructible from the TrialConfig (the sharded frontends)
    // get it, so cfg.shards / cfg.keyRange shape the instance; the rest
    // default-construct as before.
    const TrialResult r = runCell(
        [&cfg] {
          if constexpr (std::is_constructible_v<Adapter,
                                                const TrialConfig&>) {
            return std::make_unique<Adapter>(cfg);
          } else {
            return std::make_unique<Adapter>();
          }
        },
        cfg);
    mops.push_back(r.mops);
    csv(experiment, Adapter::name(), cfg, r);
    jsonAppendTrial(experiment, Adapter::name(), cfg, r);
    recl::EbrDomain::instance().drainAll();
  }
  printRow(Adapter::name(), mops);
  return mops;
}

/// Update-rate helper: the paper's U% updates = U/2% insert + U/2% delete.
/// Names the mix accordingly ("u10" for 10%).
inline TrialConfig withUpdates(TrialConfig cfg, double updatePercent) {
  cfg.insertFrac = updatePercent / 200.0;
  cfg.deleteFrac = updatePercent / 200.0;
  char name[32];
  if (updatePercent == static_cast<double>(static_cast<int>(updatePercent)))
    std::snprintf(name, sizeof name, "u%d", static_cast<int>(updatePercent));
  else
    std::snprintf(name, sizeof name, "u%g", updatePercent);
  cfg.mix = name;
  return cfg;
}

}  // namespace pathcas::bench
