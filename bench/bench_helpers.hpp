// Shared plumbing for the figure-reproduction benches: thread sweeps over an
// adapter type, EBR drain between cells, and CSV emission alongside the
// human-readable rows (EXPERIMENTS.md records the CSV).
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_fw/adapters.hpp"
#include "bench_fw/driver.hpp"
#include "recl/ebr.hpp"

namespace pathcas::bench {

inline std::vector<int> defaultThreads() { return {1, 2, 4, 8}; }

/// Run `Adapter` across thread counts; prints a row and a CSV block line per
/// cell. Returns Mops per thread count.
template <typename Adapter>
std::vector<double> sweepThreads(const std::string& experiment,
                                 const std::vector<int>& threads,
                                 TrialConfig base) {
  std::vector<double> mops;
  for (int t : threads) {
    TrialConfig cfg = base;
    cfg.threads = t;
    const TrialResult r =
        runCell([] { return std::make_unique<Adapter>(); }, cfg);
    mops.push_back(r.mops);
    std::printf(
        "csv,%s,%s,%d,%lld,%.0f,%.3f,%llu,%llu\n", experiment.c_str(),
        Adapter::name().c_str(), t, static_cast<long long>(cfg.keyRange),
        (cfg.insertFrac + cfg.deleteFrac) * 100.0, r.mops,
        static_cast<unsigned long long>(r.totalOps),
        static_cast<unsigned long long>(r.cyclesPerOp));
    recl::EbrDomain::instance().drainAll();
  }
  printRow(Adapter::name(), mops);
  return mops;
}

/// Update-rate helper: the paper's U% updates = U/2% insert + U/2% delete.
inline TrialConfig withUpdates(TrialConfig cfg, double updatePercent) {
  cfg.insertFrac = updatePercent / 200.0;
  cfg.deleteFrac = updatePercent / 200.0;
  return cfg;
}

}  // namespace pathcas::bench
