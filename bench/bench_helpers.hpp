// Shared plumbing for the figure-reproduction benches: thread sweeps over an
// adapter type, EBR drain between cells, and CSV emission alongside the
// human-readable rows.
//
// Knobs (see README.md "Benchmark knobs"):
//   PATHCAS_BENCH_THREADS  comma-separated thread counts for the sweep
//                          (default "1,2,4,8"; each must be in [1, 256])
//   PATHCAS_BENCH_SCALE    "quick" (default) or "full" for paper-scale key
//                          ranges and durations (driver.hpp)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_fw/adapters.hpp"
#include "bench_fw/driver.hpp"
#include "recl/ebr.hpp"

namespace pathcas::bench {

/// Thread counts for each sweep: PATHCAS_BENCH_THREADS ("4" or "1,2,4,8,16")
/// when set and well-formed, else {1, 2, 4, 8}.
inline std::vector<int> defaultThreads() {
  if (const char* s = std::getenv("PATHCAS_BENCH_THREADS")) {
    std::vector<int> out;
    int cur = 0;
    bool haveDigit = false, ok = true;
    for (const char* p = s;; ++p) {
      if (*p >= '0' && *p <= '9') {
        cur = cur * 10 + (*p - '0');
        haveDigit = true;
        if (cur > kMaxThreads) {
          ok = false;
          cur = kMaxThreads + 1;  // clamp: further digits must not overflow
        }
      } else if (*p == ',' || *p == '\0') {
        if (!haveDigit || cur < 1) ok = false;
        out.push_back(cur);
        cur = 0;
        haveDigit = false;
        if (*p == '\0') break;
      } else {
        ok = false;
        break;
      }
    }
    if (ok && !out.empty()) return out;
    std::fprintf(stderr,
                 "ignoring malformed PATHCAS_BENCH_THREADS=\"%s\" "
                 "(want e.g. \"1,2,4,8\", counts in [1, %d])\n",
                 s, kMaxThreads);
  }
  return {1, 2, 4, 8};
}

/// Per-cell CSV emitter, swappable per experiment (the sweep loop itself —
/// fresh structure per cell, JSON emission, EBR drain between cells — is
/// shared and must not be duplicated).
using CsvPrinter = std::function<void(
    const std::string& experiment, const std::string& algo,
    const TrialConfig& cfg, const TrialResult& r)>;

/// The default `csv,<experiment>,...` schema shared by the figure benches.
inline void printStandardCsv(const std::string& experiment,
                             const std::string& algo, const TrialConfig& cfg,
                             const TrialResult& r) {
  std::printf("csv,%s,%s,%d,%lld,%.0f,%.3f,%llu,%llu\n", experiment.c_str(),
              algo.c_str(), cfg.threads, static_cast<long long>(cfg.keyRange),
              (cfg.insertFrac + cfg.deleteFrac) * 100.0, r.mops,
              static_cast<unsigned long long>(r.totalOps),
              static_cast<unsigned long long>(r.cyclesPerOp));
}

/// Run `Adapter` across thread counts; prints a row and a CSV block line per
/// cell. Returns Mops per thread count.
template <typename Adapter>
std::vector<double> sweepThreads(const std::string& experiment,
                                 const std::vector<int>& threads,
                                 TrialConfig base,
                                 const CsvPrinter& csv = printStandardCsv) {
  std::vector<double> mops;
  for (int t : threads) {
    TrialConfig cfg = base;
    cfg.threads = t;
    const TrialResult r =
        runCell([] { return std::make_unique<Adapter>(); }, cfg);
    mops.push_back(r.mops);
    csv(experiment, Adapter::name(), cfg, r);
    jsonAppendTrial(experiment, Adapter::name(), cfg, r);
    recl::EbrDomain::instance().drainAll();
  }
  printRow(Adapter::name(), mops);
  return mops;
}

/// Update-rate helper: the paper's U% updates = U/2% insert + U/2% delete.
inline TrialConfig withUpdates(TrialConfig cfg, double updatePercent) {
  cfg.insertFrac = updatePercent / 200.0;
  cfg.deleteFrac = updatePercent / 200.0;
  return cfg;
}

}  // namespace pathcas::bench
