// Microbenchmarks (google-benchmark) for the primitives themselves: casword
// read overhead vs a plain atomic load, KCAS cost as a function of width,
// visit+validate cost as a function of path length, EBR pin cost, and the
// node-allocation baselines (NodePool alloc+recycle vs malloc new+delete,
// the cost a pooled structure removes from every update). Not a paper
// figure; establishes the engineering baselines the architecture notes
// (docs/ARCHITECTURE.md) reference.
#include <benchmark/benchmark.h>

#include "pathcas/pathcas.hpp"
#include "recl/ebr.hpp"
#include "recl/pool.hpp"
#include "util/thread_registry.hpp"

namespace {

using namespace pathcas;

struct BenchNode {
  casword<Version> ver;
  casword<std::int64_t> val;
};

void BM_PlainAtomicLoad(benchmark::State& state) {
  std::atomic<std::int64_t> x{42};
  for (auto _ : state) {
    benchmark::DoNotOptimize(x.load(std::memory_order_acquire));
  }
}
BENCHMARK(BM_PlainAtomicLoad);

void BM_CaswordRead(benchmark::State& state) {
  casword<std::int64_t> x(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(x.load());
  }
}
BENCHMARK(BM_CaswordRead);

void BM_KcasWidthSweep(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  std::vector<BenchNode> nodes(static_cast<std::size_t>(k));
  for (auto _ : state) {
    start();
    for (int i = 0; i < k; ++i) {
      const std::int64_t v = nodes[i].val;
      add(nodes[i].val, v, v + 1);
    }
    benchmark::DoNotOptimize(exec());
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_KcasWidthSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_VisitValidateSweep(benchmark::State& state) {
  const int pathLen = static_cast<int>(state.range(0));
  std::vector<BenchNode> nodes(static_cast<std::size_t>(pathLen));
  for (auto _ : state) {
    start();
    for (int i = 0; i < pathLen; ++i) visitVer(nodes[i].ver);
    benchmark::DoNotOptimize(validate());
  }
  state.SetItemsProcessed(state.iterations() * pathLen);
}
BENCHMARK(BM_VisitValidateSweep)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// The degenerate-fast-path counters (ISSUE 5): a k=1 exec commits with one
// CAS (no descriptor publication), a k=1-with-one-visit vexec with one DCSS.
// Compare against BM_KcasWidthSweep/1 history and bench/ablation_hotpath for
// the before/after attribution.
void BM_ExecK1(benchmark::State& state) {
  BenchNode n;
  for (auto _ : state) {
    start();
    const std::int64_t v = n.val;
    add(n.val, v, v + 1);
    benchmark::DoNotOptimize(exec());
  }
}
BENCHMARK(BM_ExecK1);

void BM_VexecK1Path(benchmark::State& state) {
  BenchNode guard, target;
  for (auto _ : state) {
    start();
    benchmark::DoNotOptimize(visit(&guard));
    const std::int64_t v = target.val;
    add(target.val, v, v + 1);
    benchmark::DoNotOptimize(vexec());
  }
}
BENCHMARK(BM_VexecK1Path);

// Raw DCSS publication + install + completion cost (the unit phase 1 pays
// per entry, and the whole commit of the k=1-with-path fast path).
void BM_DcssPublish(benchmark::State& state) {
  k::AtomicWord guard{k::encodeVal(7)}, target{k::encodeVal(0)};
  auto& dom = k::DefaultDomain::instance();
  std::uint64_t v = 0;
  for (auto _ : state) {
    bool committed = false;
    benchmark::DoNotOptimize(
        dom.dcss(&guard, k::encodeVal(7), &target, k::encodeVal(v),
                 k::encodeVal(v + 1), &committed));
    benchmark::DoNotOptimize(committed);
    ++v;
  }
}
BENCHMARK(BM_DcssPublish);

void BM_VexecOneVisitOneAdd(benchmark::State& state) {
  BenchNode parent, target;
  for (auto _ : state) {
    start();
    benchmark::DoNotOptimize(visit(&parent));
    const std::int64_t v = target.val;
    const Version tv = target.ver.load();
    add(target.val, v, v + 1);
    addVer(target.ver, tv, verBump(tv));
    benchmark::DoNotOptimize(vexec());
  }
}
BENCHMARK(BM_VexecOneVisitOneAdd);

void BM_EbrPin(benchmark::State& state) {
  auto& domain = recl::EbrDomain::instance();
  for (auto _ : state) {
    auto g = domain.pin();
    benchmark::DoNotOptimize(&g);
  }
}
BENCHMARK(BM_EbrPin);

// A node shaped like the BST's (five 8-byte words), so the allocation
// baselines measure what the structures actually pay per update.
struct AllocBenchNode {
  std::uint64_t ver, key, val, left, right;
  AllocBenchNode(std::uint64_t k, std::uint64_t v)
      : ver(0), key(k), val(v), left(0), right(0) {}
};

void BM_MallocNewDelete(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto* n = new AllocBenchNode(i, i);
    benchmark::DoNotOptimize(n);
    delete n;
    ++i;
  }
}
BENCHMARK(BM_MallocNewDelete);

void BM_PoolAllocRecycle(benchmark::State& state) {
  static recl::NodePool<AllocBenchNode> pool;
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto* n = pool.alloc(i, i);
    benchmark::DoNotOptimize(n);
    pool.destroy(n);
    ++i;
  }
}
BENCHMARK(BM_PoolAllocRecycle);

// The full update-path memory cost: allocate from the pool, retire through
// EBR, and let expiry recycle the slot back — what insert+erase pairs pay.
void BM_PoolRetireRecycleCycle(benchmark::State& state) {
  static recl::NodePool<AllocBenchNode> pool;
  auto& domain = recl::EbrDomain::instance();
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto g = domain.pin();
    auto* n = pool.alloc(i, i);
    benchmark::DoNotOptimize(n);
    domain.retire(n, pool);
    ++i;
  }
}
BENCHMARK(BM_PoolRetireRecycleCycle);

void BM_HtmEmulatedTransaction(benchmark::State& state) {
  BenchNode n;
  for (auto _ : state) {
    start();
    const std::int64_t v = n.val;
    add(n.val, v, v + 1);
    benchmark::DoNotOptimize(execFast());
  }
}
BENCHMARK(BM_HtmEmulatedTransaction);

}  // namespace

BENCHMARK_MAIN();
