// Figure 5: "Detailed analysis for 100% updates" — per-operation cycles,
// average key depth and memory footprint for the main trees. The paper's
// argument: int-bst-pathcas executes MORE instructions per op yet FEWER
// cycles and LLC misses, because the internal tree is shallower and smaller
// than the external baselines. We reproduce the structural drivers (avg key
// depth, footprint) plus calibrated ns/op.
#include <cstdio>

#include "bench_helpers.hpp"

using namespace pathcas;
using namespace pathcas::bench;
using namespace pathcas::testing;

namespace {

template <typename Adapter>
void analyze(const TrialConfig& cfg) {
  auto set = std::make_unique<Adapter>();
  const std::int64_t prefillSum = prefillHalf(*set, cfg.keyRange);
  const TrialResult r = runTrial(*set, cfg, prefillSum);
  std::printf("%-22s %10.3f %12.1f %10.2f %12.2f  %s %s\n",
              Adapter::name().c_str(), r.mops, r.nsPerOp,
              set->avgKeyDepth(),
              static_cast<double>(set->footprintBytes()) / (1024.0 * 1024.0),
              cfg.dist.label().c_str(), cfg.mix.c_str());
  std::fflush(stdout);
  jsonAppendTrial("fig05_analysis", Adapter::name(), cfg, r);
  set.reset();
  recl::EbrDomain::instance().drainAll();
}

}  // namespace

int main() {
  TrialConfig cfg;
  cfg.threads = 4;
  cfg.keyRange = scaledKeys(1 << 17, 20 * 1000 * 1000);
  cfg.durationMs = scaledDurationMs(250, 5000);
  cfg = withUpdates(cfg, 100.0);  // 50% insert / 50% delete
  applyEnvWorkload(cfg);  // fig05 drives runTrial itself, so apply explicitly

  std::printf(
      "\n== Figure 5: detailed analysis, %d threads, keyrange %lld, %s ==\n",
      cfg.threads, static_cast<long long>(cfg.keyRange),
      describeWorkload(cfg).c_str());
  std::printf("%-22s %10s %12s %10s %12s  %s\n", "algorithm", "Mops/s",
              "ns/op", "avg depth", "mem (MiB)", "dist mix");
  analyze<EllenAdapter>(cfg);
  analyze<TicketAdapter>(cfg);
  analyze<PathCasBstAdapter<false>>(cfg);
  analyze<TmAvlAdapter<stm::NOrec>>(cfg);
  analyze<TmAvlAdapter<stm::TL2>>(cfg);
  analyze<PathCasAvlAdapter<false>>(cfg);
  return 0;
}
