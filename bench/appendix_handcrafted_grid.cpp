// Appendix figures 21-23: hand-crafted unbalanced and balanced BSTs across
// the full {1%, 10%, 100%} × {small, medium, large keyrange} grid.
#include "bench_helpers.hpp"

using namespace pathcas;
using namespace pathcas::bench;
using namespace pathcas::testing;

int main() {
  const auto threads = defaultThreads();
  for (std::int64_t keyRange :
       {scaledKeys(1 << 13, 100 * 1000), scaledKeys(1 << 16, 1000 * 1000),
        scaledKeys(1 << 18, 10 * 1000 * 1000)}) {
    for (double updates : {1.0, 10.0, 100.0}) {
      TrialConfig base;
      base.keyRange = keyRange;
      base.durationMs = scaledDurationMs(80, 2000);
      base = withUpdates(base, updates);
      printHeader("Appendix (Figs 21-23): handcrafted trees, keyrange " +
                      std::to_string(keyRange) + ", " +
                      std::to_string((int)updates) + "% updates",
                  threads);
      sweepThreads<PathCasBstAdapter<false>>("figs21_23", threads, base);
      sweepThreads<EllenAdapter>("figs21_23", threads, base);
      sweepThreads<TicketAdapter>("figs21_23", threads, base);
      sweepThreads<PathCasAvlAdapter<false>>("figs21_23", threads, base);
      sweepThreads<TmAvlAdapter<stm::GlobalLockTm>>("figs21_23", threads,
                                                    base);
    }
  }
  return 0;
}
