// Figure 6: internal BST with PathCAS vs MCMS+ (HTM path) vs MCMS- (pure
// software), 100% updates and 100% searches. Expected shape: PathCAS orders
// of magnitude above both MCMS variants beyond a couple of threads — on the
// software path MCMS writes descriptors into every node of the search path
// (including near the root), collapsing under contention.
#include <cstdio>

#include "bench_helpers.hpp"

using namespace pathcas;
using namespace pathcas::bench;
using namespace pathcas::testing;

namespace {

template <typename Adapter>
double oneCell(const TrialConfig& cfg) {
  const TrialResult r =
      runCell([] { return std::make_unique<Adapter>(); }, cfg);
  jsonAppendTrial("fig06_mcms", Adapter::name(), cfg, r);
  recl::EbrDomain::instance().drainAll();
  return r.mops;
}

}  // namespace

int main() {
  TrialConfig base;
  // Paper: 100,000 keys. Scaled down so MCMS path compares stay within the
  // KCAS entry budget (2 per level) even for unlucky random BST depths.
  base.keyRange = scaledKeys(1 << 13, 100 * 1000);
  base.durationMs = scaledDurationMs(120, 2000);
  // The update-vs-search column groups ARE this figure's mix axis, so only
  // the distribution knob applies (a PATHCAS_BENCH_MIX preset could also
  // leak scan fractions into structures without rangeQuery).
  applyEnvDist(base);
  if (const char* m = std::getenv("PATHCAS_BENCH_MIX"); m != nullptr && *m)
    std::fprintf(stderr,
                 "fig06_mcms ignores PATHCAS_BENCH_MIX=%s: the u100/u0 "
                 "columns are the experiment\n",
                 m);
  std::printf(
      "\n== Figure 6: PathCAS vs MCMS internal BST, keyrange %lld, "
      "dist=%s ==\n",
      static_cast<long long>(base.keyRange), base.dist.label().c_str());
  std::printf("%-9s | %-30s | %-30s\n", "", "100% update", "100% search");
  std::printf("%-9s | %9s %9s %9s | %9s %9s %9s\n", "threads", "PathCAS",
              "MCMS+", "MCMS-", "PathCAS", "MCMS+", "MCMS-");
  for (int t : defaultThreads()) {
    TrialConfig upd = withUpdates(base, 100.0);
    upd.threads = t;
    TrialConfig srch = withUpdates(base, 0.0);
    srch.threads = t;
    const double pcU = oneCell<PathCasBstAdapter<false>>(upd);
    const double mpU = oneCell<McmsBstAdapter<true>>(upd);
    const double mmU = oneCell<McmsBstAdapter<false>>(upd);
    const double pcS = oneCell<PathCasBstAdapter<false>>(srch);
    const double mpS = oneCell<McmsBstAdapter<true>>(srch);
    const double mmS = oneCell<McmsBstAdapter<false>>(srch);
    std::printf("%-9d | %9.2f %9.2f %9.2f | %9.2f %9.2f %9.2f\n", t, pcU,
                mpU, mmU, pcS, mpS, mmS);
    std::printf("csv,fig06,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%s\n", t, pcU,
                mpU, mmU, pcS, mpS, mmS, base.dist.label().c_str());
    std::fflush(stdout);
  }
  return 0;
}
