// Appendix H: dynamic connectivity throughput. Random link/cut/connected
// mixes over a forest of small components (component sizes are bounded by
// the PathCAS read-set budget; see docs/ARCHITECTURE.md). No paper figure gives
// absolute numbers for this structure — the appendix claims lock-freedom
// and correctness; this bench demonstrates it scales with mostly-read mixes.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_helpers.hpp"
#include "structs/dynconn_pathcas.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"

using namespace pathcas;
using namespace pathcas::bench;

namespace {

double runMix(int threads, int vertices, int queryPct, int durationMs) {
  ds::DynConnPathCas graph(vertices);
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> ops(static_cast<std::size_t>(threads), 0);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ThreadGuard tg;
      Xoshiro256 rng(17 + static_cast<std::uint64_t>(t));
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const int v = static_cast<int>(rng.nextBounded(vertices));
        int w = static_cast<int>(rng.nextBounded(vertices));
        if (w == v) w = (w + 1) % vertices;
        const auto dice = rng.nextBounded(100);
        if (dice < static_cast<std::uint64_t>(queryPct)) {
          (void)graph.connected(v, w);
        } else if (dice % 2 == 0) {
          graph.link(v, w);
        } else {
          graph.cut(v, w);
        }
        ++n;
      }
      ops[static_cast<std::size_t>(t)] = n;
    });
  }
  StopWatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(durationMs));
  stop.store(true);
  for (auto& th : workers) th.join();
  const double sec = sw.elapsedSeconds();
  graph.checkInvariants();
  std::uint64_t total = 0;
  for (auto n : ops) total += n;
  return static_cast<double>(total) / sec / 1e6;
}

}  // namespace

int main() {
  const int durationMs = scaledDurationMs(150, 1000);
  // 32 vertices keeps worst-case cut visit counts (2x tour + adjacency)
  // comfortably inside the PathCAS read-set budget (see header comment).
  const int vertices = 32;
  std::printf("\n== Appendix H: dynamic connectivity (Euler-tour lists), "
              "%d vertices ==\n",
              vertices);
  std::printf("%-14s", "query%");
  for (int t : defaultThreads()) std::printf("  t=%-8d", t);
  std::printf("   (Mops/s)\n");
  for (int queryPct : {90, 50, 10}) {
    std::printf("%-14d", queryPct);
    for (int t : defaultThreads()) {
      const double mops = runMix(t, vertices, queryPct, durationMs);
      std::printf("  %-10.3f", mops);
      std::fflush(stdout);
      recl::EbrDomain::instance().drainAll();
    }
    std::printf("\n");
  }
  return 0;
}
