// Building your own structure with the raw PathCAS API.
//
// The paper's recipe (§6): "visit each node that will be read or written,
// then add and exec the necessary modifications". Here we build a tiny
// multi-account ledger supporting atomic transfers between ANY number of
// accounts plus validated snapshots — something a single CAS cannot do and
// a hand-rolled lock-free design would make painful.
//
//   build/examples/custom_structure
#include <cstdio>
#include <thread>
#include <vector>

#include "pathcas/pathcas.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"

namespace {

struct Account {
  pathcas::casword<pathcas::Version> ver;  // required by visit()
  pathcas::casword<std::int64_t> balance;
};

constexpr int kAccounts = 8;
constexpr std::int64_t kOpening = 1000;

Account gLedger[kAccounts];

/// Atomically move `amount` along a chain of accounts: the first account is
/// debited, the last credited, and every intermediate account is *pinned*
/// (its version is validated and locked) so the transfer only commits if the
/// whole route was stable. All-or-nothing, any chain length. Note the
/// PathCAS contract: one add() per distinct address, so we stage net deltas.
bool transferChain(const std::vector<int>& chain, std::int64_t amount) {
  using namespace pathcas;
  if (chain.front() == chain.back()) return true;  // degenerate cycle: no-op
  for (;;) {
    start();
    // Net effect per distinct account along the route.
    std::vector<std::pair<int, std::int64_t>> net;
    auto bump = [&](int acct, std::int64_t delta) {
      for (auto& [id, d] : net) {
        if (id == acct) {
          d += delta;
          return;
        }
      }
      net.push_back({acct, delta});
    };
    for (int id : chain) bump(id, 0);
    bump(chain.front(), -amount);
    bump(chain.back(), +amount);

    bool retry = false;
    bool viable = true;
    for (auto& [id, delta] : net) {
      Account& a = gLedger[id];
      const Version v = visit(&a);
      if (isMarked(v)) {
        retry = true;
        break;
      }
      const std::int64_t bal = a.balance;
      if (bal + delta < 0) {
        viable = false;
        break;
      }
      if (delta != 0) {
        add(a.balance, bal, bal + delta);
        addVer(a.ver, v, verBump(v));
      } else {
        addVer(a.ver, v, v);  // pin an intermediate without changing it
      }
    }
    if (retry) continue;
    if (!viable) return false;
    if (vexec()) return true;  // atomic iff no visited account changed
  }
}

/// Validated snapshot of the whole ledger (atomic read of all accounts).
std::int64_t snapshotTotal() {
  using namespace pathcas;
  for (;;) {
    start();
    std::int64_t total = 0;
    for (Account& a : gLedger) {
      visit(&a);
      total += a.balance;
    }
    if (validate()) return total;  // the whole array was read atomically
  }
}

}  // namespace

int main() {
  for (Account& a : gLedger) a.balance.setInitial(kOpening);

  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([t] {
      pathcas::ThreadGuard guard;
      pathcas::Xoshiro256 rng(t + 1);
      for (int i = 0; i < 20000; ++i) {
        // Random 3-hop chain.
        const int a = static_cast<int>(rng.nextBounded(kAccounts));
        const int b = (a + 1 + static_cast<int>(rng.nextBounded(kAccounts - 1))) % kAccounts;
        const int c = (b + 1 + static_cast<int>(rng.nextBounded(kAccounts - 1))) % kAccounts;
        transferChain({a, b, c}, static_cast<std::int64_t>(rng.nextBounded(5)));
      }
    });
  }
  // Auditor thread: snapshots must always balance, even mid-transfer.
  threads.emplace_back([] {
    pathcas::ThreadGuard guard;
    for (int i = 0; i < 5000; ++i) {
      const std::int64_t total = snapshotTotal();
      if (total != kOpening * kAccounts) {
        std::printf("AUDIT FAILURE: %lld\n", static_cast<long long>(total));
        std::abort();
      }
    }
  });
  for (auto& th : threads) th.join();

  std::printf("final balances:");
  std::int64_t total = 0;
  for (Account& a : gLedger) {
    const std::int64_t b = a.balance.load();
    std::printf(" %lld", static_cast<long long>(b));
    total += b;
  }
  std::printf("\ntotal = %lld (opening total %lld) — every audit snapshot "
              "balanced\n",
              static_cast<long long>(total),
              static_cast<long long>(kOpening * kAccounts));
  return 0;
}
