// Scenario: tracking connectivity of an overlay network whose links flap.
// A monitoring plane asks "can A still reach B?" while link up/down events
// stream in from other threads — exactly the dynamic-connectivity problem
// appendix H solves with PathCAS Euler-tour lists.
//
//   build/examples/network_connectivity
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "structs/dynconn_pathcas.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"

namespace {
constexpr int kRouters = 32;
}

int main() {
  pathcas::ds::DynConnPathCas network(kRouters);

  // Bring up a spanning backbone: a chain through all routers.
  {
    pathcas::ThreadGuard guard;
    for (int i = 0; i + 1 < kRouters; ++i) network.link(i, i + 1);
  }
  std::printf("backbone up: router 0 reaches %d: %s\n", kRouters - 1,
              network.connected(0, kRouters - 1) ? "yes" : "no");

  // Two event threads flap random backbone links; one monitor thread polls.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> flaps{0}, probes{0}, reachable{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      pathcas::ThreadGuard guard;
      pathcas::Xoshiro256 rng(11 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const int i = static_cast<int>(rng.nextBounded(kRouters - 1));
        if (network.cut(i, i + 1)) {     // link down...
          network.link(i, i + 1);        // ...and restored
          flaps.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&] {
    pathcas::ThreadGuard guard;
    pathcas::Xoshiro256 rng(99);
    for (int i = 0; i < 20000; ++i) {
      const int a = static_cast<int>(rng.nextBounded(kRouters));
      const int b = static_cast<int>(rng.nextBounded(kRouters));
      probes.fetch_add(1);
      if (network.connected(a, b)) reachable.fetch_add(1);
    }
    stop.store(true);
  });
  for (auto& th : threads) th.join();

  std::printf("while links flapped %llu times, the monitor issued %llu "
              "probes (%.1f%% reachable)\n",
              static_cast<unsigned long long>(flaps.load()),
              static_cast<unsigned long long>(probes.load()),
              100.0 * static_cast<double>(reachable.load()) /
                  static_cast<double>(probes.load()));
  network.checkInvariants();
  std::printf("final state consistent; router 0 reaches %d: %s\n",
              kRouters - 1,
              network.connected(0, kRouters - 1) ? "yes" : "no");
  return 0;
}
