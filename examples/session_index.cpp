// Scenario: a web tier's in-memory session index — the search-heavy ordered
// index workload the paper's introduction motivates. Lookups dominate
// (~95%), with a steady trickle of logins (inserts) and expirations
// (deletes). The index must answer "is this session live, and what is its
// user id" with high throughput from many server threads.
//
// The index owns its whole memory/synchronization stack through a
// per-instance recl::DomainSet (private KCAS domain + EBR domain + node
// pool) instead of the process-global singletons: every thread touching the
// tree opens a k::ScopedDomain on the set's KCAS domain, and at shutdown the
// stack tears down to exactly zero leaked nodes — asserted below, so this
// example doubles as the DomainSet lifecycle smoke test.
//
//   build/examples/session_index
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "kcas/domain.hpp"
#include "recl/domain_set.hpp"
#include "trees/int_avl_pathcas.hpp"
#include "util/defs.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"
#include "util/timing.hpp"

namespace {

constexpr std::int64_t kSessionSpace = 1 << 18;
constexpr int kServerThreads = 4;
constexpr int kRunMs = 500;

using SessionTree = pathcas::ds::IntAvlPathCas<std::int64_t, std::int64_t>;

}  // namespace

int main() {
  // The index's private stack. Declared before the tree (and destroyed
  // after it), so the tree's nodes return to pools that are still alive.
  pathcas::recl::DomainSet set;
  {
    SessionTree sessions({}, set.ebr(),
                         &set.pool<typename SessionTree::Node>());

    // Seed with half the session space "already logged in". Like every
    // other access, seeding runs under the set's KCAS domain.
    {
      pathcas::k::ScopedDomain scope(set.kcas());
      pathcas::Xoshiro256 rng(1);
      for (std::int64_t i = 0; i < kSessionSpace / 2; ++i) {
        const auto sid =
            static_cast<std::int64_t>(rng.nextBounded(kSessionSpace));
        sessions.insert(sid, /*userId=*/sid * 7);
      }
    }

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> lookups{0}, hits{0}, logins{0}, expiries{0};

    std::vector<std::thread> servers;
    for (int t = 0; t < kServerThreads; ++t) {
      servers.emplace_back([&, t] {
        pathcas::ThreadGuard guard;
        pathcas::k::ScopedDomain scope(set.kcas());
        pathcas::Xoshiro256 rng(100 + t);
        while (!stop.load(std::memory_order_relaxed)) {
          const auto sid =
              static_cast<std::int64_t>(rng.nextBounded(kSessionSpace));
          const auto dice = rng.nextBounded(100);
          if (dice < 95) {  // session lookup
            if (sessions.get(sid).has_value()) hits.fetch_add(1);
            lookups.fetch_add(1);
          } else if (dice < 98) {  // login
            if (sessions.insert(sid, sid * 7)) logins.fetch_add(1);
          } else {  // expiry
            if (sessions.erase(sid)) expiries.fetch_add(1);
          }
        }
      });
    }

    pathcas::StopWatch sw;
    std::this_thread::sleep_for(std::chrono::milliseconds(kRunMs));
    stop.store(true);
    for (auto& s : servers) s.join();
    const double sec = sw.elapsedSeconds();

    const auto total = lookups.load() + logins.load() + expiries.load();
    std::printf("session index: %.2f M ops/s across %d threads\n",
                static_cast<double>(total) / sec / 1e6, kServerThreads);
    std::printf("  lookups   %10llu (%.1f%% hit rate)\n",
                static_cast<unsigned long long>(lookups.load()),
                100.0 * static_cast<double>(hits.load()) /
                    static_cast<double>(lookups.load() ? lookups.load() : 1));
    std::printf("  logins    %10llu\n",
                static_cast<unsigned long long>(logins.load()));
    std::printf("  expiries  %10llu\n",
                static_cast<unsigned long long>(expiries.load()));
    {
      pathcas::k::ScopedDomain scope(set.kcas());
      std::printf("  live sessions now: %llu\n",
                  static_cast<unsigned long long>(sessions.size()));
    }
    // Expired sessions sit in EBR limbo; recycle them (all workers have
    // joined, so the set is quiescent), then let the tree destructor return
    // every remaining node to the set's pool.
    set.drain();
  }
  // Lifecycle invariant: with the tree gone and limbo drained, the set's
  // pools account for every node — zero leaks.
  PATHCAS_CHECK(set.liveNodes() == 0);
  std::printf("  domain-set teardown: 0 leaked nodes\n");
  return 0;
}
