// Scenario: a web tier's in-memory session index — the search-heavy ordered
// index workload the paper's introduction motivates. Lookups dominate
// (~95%), with a steady trickle of logins (inserts) and expirations
// (deletes). The index must answer "is this session live, and what is its
// user id" with high throughput from many server threads.
//
//   build/examples/session_index
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "trees/int_avl_pathcas.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"
#include "util/timing.hpp"

namespace {

constexpr std::int64_t kSessionSpace = 1 << 18;
constexpr int kServerThreads = 4;
constexpr int kRunMs = 500;

}  // namespace

int main() {
  pathcas::ds::IntAvlPathCas<std::int64_t, std::int64_t> sessions;

  // Seed with half the session space "already logged in".
  {
    pathcas::Xoshiro256 rng(1);
    for (std::int64_t i = 0; i < kSessionSpace / 2; ++i) {
      const auto sid =
          static_cast<std::int64_t>(rng.nextBounded(kSessionSpace));
      sessions.insert(sid, /*userId=*/sid * 7);
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> lookups{0}, hits{0}, logins{0}, expiries{0};

  std::vector<std::thread> servers;
  for (int t = 0; t < kServerThreads; ++t) {
    servers.emplace_back([&, t] {
      pathcas::ThreadGuard guard;
      pathcas::Xoshiro256 rng(100 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto sid =
            static_cast<std::int64_t>(rng.nextBounded(kSessionSpace));
        const auto dice = rng.nextBounded(100);
        if (dice < 95) {  // session lookup
          if (sessions.get(sid).has_value()) hits.fetch_add(1);
          lookups.fetch_add(1);
        } else if (dice < 98) {  // login
          if (sessions.insert(sid, sid * 7)) logins.fetch_add(1);
        } else {  // expiry
          if (sessions.erase(sid)) expiries.fetch_add(1);
        }
      }
    });
  }

  pathcas::StopWatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(kRunMs));
  stop.store(true);
  for (auto& s : servers) s.join();
  const double sec = sw.elapsedSeconds();

  const auto total = lookups.load() + logins.load() + expiries.load();
  std::printf("session index: %.2f M ops/s across %d threads\n",
              static_cast<double>(total) / sec / 1e6, kServerThreads);
  std::printf("  lookups   %10llu (%.1f%% hit rate)\n",
              static_cast<unsigned long long>(lookups.load()),
              100.0 * static_cast<double>(hits.load()) /
                  static_cast<double>(lookups.load() ? lookups.load() : 1));
  std::printf("  logins    %10llu\n",
              static_cast<unsigned long long>(logins.load()));
  std::printf("  expiries  %10llu\n",
              static_cast<unsigned long long>(expiries.load()));
  std::printf("  live sessions now: %llu\n",
              static_cast<unsigned long long>(sessions.size()));
  return 0;
}
