// Scenario: a web tier's in-memory session index — the search-heavy ordered
// index workload the paper's introduction motivates, now with the reverse
// question every real session table also answers: not just "which user owns
// session sid" but "which session does user uid hold". Earlier revisions
// hand-rolled that as two independent trees updated back to back, and had to
// tolerate windows where a login was visible in one index but not the other.
// structs/multi_index_map.hpp deletes that logic: every login/logout commits
// the sid→uid tree AND the uid→sid tree in ONE KCAS, so the two indexes can
// never disagree — getChecked() proves it per lookup by validating both
// search paths as one atomic snapshot.
//
// The composite owns its whole memory/synchronization stack through a
// per-instance recl::DomainSet; at shutdown ~MultiIndexMap drains limbo and
// aborts unless every node is accounted for, so this example doubles as the
// DomainSet lifecycle smoke test (zero-leak teardown asserted below).
//
//   build/examples/session_index
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "structs/multi_index_map.hpp"
#include "util/defs.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"
#include "util/timing.hpp"

namespace {

constexpr std::int64_t kSessionSpace = 1 << 18;
constexpr int kServerThreads = 4;
constexpr int kRunMs = 500;

// uid = sid * 7: injective, so the secondary index's uniqueness rule never
// rejects a login.
constexpr std::int64_t uidOf(std::int64_t sid) { return sid * 7; }

using SessionIndex = pathcas::ds::MultiIndexMap<std::int64_t, std::int64_t>;

}  // namespace

int main() {
  {
    SessionIndex sessions;

    // Seed with half the session space "already logged in". The composite
    // manages its own KCAS domain scoping internally.
    {
      pathcas::Xoshiro256 rng(1);
      for (std::int64_t i = 0; i < kSessionSpace / 2; ++i) {
        const auto sid =
            static_cast<std::int64_t>(rng.nextBounded(kSessionSpace));
        sessions.insert(sid, uidOf(sid));
      }
    }

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> lookups{0}, hits{0}, reverse{0}, logins{0},
        expiries{0};

    std::vector<std::thread> servers;
    for (int t = 0; t < kServerThreads; ++t) {
      servers.emplace_back([&, t] {
        pathcas::ThreadGuard guard;
        pathcas::Xoshiro256 rng(100 + t);
        while (!stop.load(std::memory_order_relaxed)) {
          const auto sid =
              static_cast<std::int64_t>(rng.nextBounded(kSessionSpace));
          const auto dice = rng.nextBounded(100);
          if (dice < 75) {  // session lookup: sid → uid
            if (sessions.get(sid).has_value()) hits.fetch_add(1);
            lookups.fetch_add(1);
          } else if (dice < 90) {  // reverse lookup: uid → sid
            const auto back = sessions.getByValue(uidOf(sid));
            if (back.has_value() && *back != sid) {
              std::fprintf(stderr, "index divergence: uid %lld -> sid %lld\n",
                           static_cast<long long>(uidOf(sid)),
                           static_cast<long long>(*back));
              std::abort();
            }
            reverse.fetch_add(1);
          } else if (dice < 95) {  // checked lookup: both paths, one snapshot
            (void)sessions.getChecked(sid);  // aborts if the indexes diverge
            lookups.fetch_add(1);
          } else if (dice < 98) {  // login: both indexes in one KCAS
            if (sessions.insert(sid, uidOf(sid))) logins.fetch_add(1);
          } else {  // expiry: both indexes in one KCAS
            if (sessions.erase(sid)) expiries.fetch_add(1);
          }
        }
      });
    }

    pathcas::StopWatch sw;
    std::this_thread::sleep_for(std::chrono::milliseconds(kRunMs));
    stop.store(true);
    for (auto& s : servers) s.join();
    const double sec = sw.elapsedSeconds();

    const auto total =
        lookups.load() + reverse.load() + logins.load() + expiries.load();
    std::printf("session index: %.2f M ops/s across %d threads\n",
                static_cast<double>(total) / sec / 1e6, kServerThreads);
    std::printf("  lookups   %10llu (%.1f%% hit rate)\n",
                static_cast<unsigned long long>(lookups.load()),
                100.0 * static_cast<double>(hits.load()) /
                    static_cast<double>(lookups.load() ? lookups.load() : 1));
    std::printf("  reverse   %10llu\n",
                static_cast<unsigned long long>(reverse.load()));
    std::printf("  logins    %10llu\n",
                static_cast<unsigned long long>(logins.load()));
    std::printf("  expiries  %10llu\n",
                static_cast<unsigned long long>(expiries.load()));

    // Quiescent: both trees structurally sound, pair sets mirrored.
    sessions.checkInvariants();
    std::printf("  live sessions now: %llu (bijection checked)\n",
                static_cast<unsigned long long>(sessions.size()));

    // Every session is one node in each index; after a drain the composite's
    // DomainSet must account for exactly those, plus the two pool-allocated
    // routing sentinels (min/max roots) each tree holds for its lifetime.
    sessions.drain();
    PATHCAS_CHECK(sessions.liveNodes() == 2 * sessions.size() + 4);
  }
  // ~MultiIndexMap just ran its built-in zero-leak teardown check (drain +
  // liveNodes() == 0 abort); reaching this line IS the assertion.
  std::printf("  domain-set teardown: 0 leaked nodes\n");
  return 0;
}
