// Quickstart: a concurrent ordered map in ten lines.
//
// IntAvlPathCas is the paper's headline data structure — an internal,
// lock-free, relaxed-AVL tree built on the PathCAS primitive. It behaves
// like an ordered set/map with insertIfAbsent semantics and is safe to use
// from any number of threads.
//
//   build/examples/quickstart
#include <cstdio>
#include <thread>
#include <vector>

#include "trees/int_avl_pathcas.hpp"
#include "util/thread_registry.hpp"

int main() {
  pathcas::ds::IntAvlPathCas<std::int64_t, std::int64_t> map;

  // Four threads insert disjoint key blocks concurrently.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&map, t] {
      pathcas::ThreadGuard guard;  // registers the thread with the runtime
      for (std::int64_t k = t * 1000; k < (t + 1) * 1000; ++k) {
        map.insert(k, k * 10);
      }
    });
  }
  for (auto& th : threads) th.join();

  std::printf("size after concurrent inserts: %llu (expected 4000)\n",
              static_cast<unsigned long long>(map.size()));
  std::printf("contains(1234) = %s\n", map.contains(1234) ? "yes" : "no");
  std::printf("get(1234)      = %lld (expected 12340)\n",
              static_cast<long long>(map.get(1234).value()));

  map.erase(1234);
  std::printf("after erase, contains(1234) = %s\n",
              map.contains(1234) ? "yes" : "no");

  // The tree converges to a strict AVL shape once quiescent.
  map.rebalanceToConvergence();
  const auto stats = map.checkInvariants(/*requireStrictBalance=*/true);
  std::printf("height %llu for %llu keys (log2 ~ %.1f)\n",
              static_cast<unsigned long long>(stats.height),
              static_cast<unsigned long long>(stats.size), 11.97);
  return 0;
}
