// Generic (typed) test suite run against EVERY concurrent-set implementation
// in the repository: the PathCAS trees (software and fast-path), all four TM
// backends' internal BST/AVL, the elastic external BST, both MCMS variants,
// the hand-crafted Ellen / ticket-lock external BSTs, and the sharded
// service frontend (service/sharded_map.hpp) at shard counts {1, 2, 8} —
// the fixed-shard adapters partition a 256-key space, so the suite's keys
// land astride shard boundaries — and the cross-structure multi-index map
// composite (every mutation a two-tree KCAS; values here are distinct per
// key, so its secondary-uniqueness rule never rejects a set-style insert).
//
// Covers: empty-set behaviour, insert/erase/contains semantics against a
// std::set oracle, duplicate handling, interleaved grow/shrink cycles, and a
// concurrent keysum stress (setbench-style validation).
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "bench_fw/adapters.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"

namespace pathcas::testing {
namespace {

template <typename Adapter>
class SetTest : public ::testing::Test {};

using AllSets = ::testing::Types<
    PathCasBstAdapter<false>, PathCasBstAdapter<true>,
    PathCasAvlAdapter<false>, PathCasAvlAdapter<true>, SkipListAdapter,
    ListAdapter, AbTreeAdapter, EllenAdapter,
    TicketAdapter, TmBstAdapter<stm::NOrec>, TmBstAdapter<stm::TL2>,
    TmBstAdapter<stm::TLE>, TmBstAdapter<stm::GlobalLockTm>,
    TmBstAdapter<stm::Elastic>, TmAvlAdapter<stm::NOrec>,
    TmAvlAdapter<stm::TL2>, TmAvlAdapter<stm::TLE>,
    TmAvlAdapter<stm::GlobalLockTm>, TmExtBstAdapter<stm::Elastic>,
    TmExtBstAdapter<stm::NOrec>, McmsBstAdapter<false>, McmsBstAdapter<true>,
    ShardedBstAdapter<1>, ShardedBstAdapter<2>, ShardedBstAdapter<8>,
    ShardedAvlAdapter<2>, MultiIndexMapAdapter>;

class SetNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    std::string n = T::name();
    for (auto& c : n) {
      if (c == '-') c = '_';
      if (c == '+') c = 'P';
    }
    return n;
  }
};

TYPED_TEST_SUITE(SetTest, AllSets, SetNames);

TYPED_TEST(SetTest, EmptySet) {
  TypeParam s;
  EXPECT_FALSE(s.contains(1));
  EXPECT_FALSE(s.erase(1));
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.keySum(), 0);
}

TYPED_TEST(SetTest, SingleElementLifecycle) {
  TypeParam s;
  EXPECT_TRUE(s.insert(42, 420));
  EXPECT_TRUE(s.contains(42));
  EXPECT_FALSE(s.insert(42, 999));  // insertIfAbsent semantics
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.keySum(), 42);
  EXPECT_TRUE(s.erase(42));
  EXPECT_FALSE(s.contains(42));
  EXPECT_FALSE(s.erase(42));
  EXPECT_EQ(s.size(), 0u);
}

TYPED_TEST(SetTest, GrowAndShrinkCycles) {
  TypeParam s;
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (Key k = 0; k < 128; ++k) EXPECT_TRUE(s.insert(k, k));
    EXPECT_EQ(s.size(), 128u);
    for (Key k = 0; k < 128; k += 2) EXPECT_TRUE(s.erase(k));
    EXPECT_EQ(s.size(), 64u);
    for (Key k = 1; k < 128; k += 2) EXPECT_TRUE(s.contains(k));
    for (Key k = 0; k < 128; k += 2) EXPECT_FALSE(s.contains(k));
    for (Key k = 1; k < 128; k += 2) EXPECT_TRUE(s.erase(k));
    EXPECT_EQ(s.size(), 0u);
  }
  s.checkInvariants();
}

TYPED_TEST(SetTest, RandomOpsMatchOracle) {
  TypeParam s;
  std::set<Key> oracle;
  Xoshiro256 rng(31337);
  for (int i = 0; i < 6000; ++i) {
    const Key k = static_cast<Key>(rng.nextBounded(200));
    switch (rng.nextBounded(3)) {
      case 0:
        ASSERT_EQ(s.insert(k, k), oracle.insert(k).second) << "op " << i;
        break;
      case 1:
        ASSERT_EQ(s.erase(k), oracle.erase(k) > 0) << "op " << i;
        break;
      default:
        ASSERT_EQ(s.contains(k), oracle.count(k) > 0) << "op " << i;
    }
  }
  EXPECT_EQ(s.size(), oracle.size());
  std::int64_t sum = 0;
  for (auto k : oracle) sum += k;
  EXPECT_EQ(s.keySum(), sum);
  s.checkInvariants();
}

TYPED_TEST(SetTest, ConcurrentKeysumInvariant) {
  TypeParam s;
  constexpr int kThreads = 4;
  constexpr int kOps = 2500;
  constexpr Key kRange = 128;
  std::int64_t prefillSum = 0;
  {
    Xoshiro256 rng(5);
    for (int i = 0; i < kRange / 2; ++i) {
      const Key k = static_cast<Key>(rng.nextBounded(kRange));
      if (s.insert(k, k)) prefillSum += k;
    }
  }
  std::vector<std::thread> workers;
  std::vector<std::int64_t> deltas(kThreads, 0);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      ThreadGuard tg;
      Xoshiro256 rng(900 + w);
      std::int64_t delta = 0;
      for (int i = 0; i < kOps; ++i) {
        const Key k = static_cast<Key>(rng.nextBounded(kRange));
        switch (rng.nextBounded(4)) {
          case 0:
            if (s.insert(k, k)) delta += k;
            break;
          case 1:
            if (s.erase(k)) delta -= k;
            break;
          default:
            (void)s.contains(k);
        }
      }
      deltas[w] = delta;
    });
  }
  for (auto& th : workers) th.join();
  std::int64_t expected = prefillSum;
  for (auto d : deltas) expected += d;
  EXPECT_EQ(s.keySum(), expected);
  s.checkInvariants();
}

TYPED_TEST(SetTest, ConcurrentDisjointRangesStayDisjoint) {
  TypeParam s;
  constexpr int kThreads = 4;
  constexpr Key kPerThread = 64;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      ThreadGuard tg;
      const Key base = static_cast<Key>(w) * kPerThread;
      // Shuffled insertion order: keeps unbalanced trees at their expected
      // logarithmic depth (MCMS full-path validation has a bounded entry
      // budget; degenerate chains are out of contract for it).
      std::vector<Key> keys;
      for (Key k = base; k < base + kPerThread; ++k) keys.push_back(k);
      Xoshiro256 rng(123 + static_cast<std::uint64_t>(w));
      for (std::size_t i = keys.size(); i > 1; --i)
        std::swap(keys[i - 1], keys[rng.nextBounded(i)]);
      for (Key k : keys) {
        ASSERT_TRUE(s.insert(k, k));
      }
      for (Key k = base; k < base + kPerThread; ++k) {
        ASSERT_TRUE(s.contains(k));
      }
      for (Key k = base; k < base + kPerThread; k += 2) {
        ASSERT_TRUE(s.erase(k));
      }
    });
  }
  for (auto& th : workers) th.join();
  EXPECT_EQ(s.size(), kThreads * kPerThread / 2);
  s.checkInvariants();
}

}  // namespace
}  // namespace pathcas::testing
