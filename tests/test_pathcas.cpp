// Tests for the PathCAS primitive itself: casword encoding, the
// start/read/add/visit/validate/exec/vexec lifecycle, marking semantics,
// the strong-vexec slow path, the HTM fast path (emulated backend, with
// abort injection), and multi-threaded snapshot atomicity.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "pathcas/pathcas.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"

namespace pathcas {
namespace {

struct TNode {
  casword<Version> ver;
  casword<std::int64_t> val;
  casword<TNode*> next;
};

TEST(Casword, SignedRoundTripIncludingNegatives) {
  casword<std::int64_t> w;
  for (std::int64_t v : {0LL, 1LL, -1LL, -123456789LL, (1LL << 60),
                         -(1LL << 60)}) {
    w.setInitial(v);
    EXPECT_EQ(w.load(), v);
    EXPECT_EQ(static_cast<std::int64_t>(w), v);  // implicit read()
  }
}

TEST(Casword, PointerRoundTripIncludingNull) {
  casword<TNode*> w;
  EXPECT_EQ(w.load(), nullptr);  // default-initialized to T{}
  TNode n;
  w.setInitial(&n);
  EXPECT_EQ(w.load(), &n);
  w.setInitial(nullptr);
  EXPECT_EQ(w.load(), nullptr);
}

TEST(Casword, EnumRoundTrip) {
  enum class Color : int { kRed = 0, kBlue = 7 };
  casword<Color> w;
  w.setInitial(Color::kBlue);
  EXPECT_EQ(w.load(), Color::kBlue);
}

TEST(Casword, ArrowOperatorChainsThroughPointers) {
  TNode a, b;
  a.val.setInitial(17);
  b.next.setInitial(&a);
  casword<TNode*> head;
  head.setInitial(&b);
  EXPECT_EQ(head->next->val.load(), 17);
}

TEST(Version, MarkHelpers) {
  EXPECT_FALSE(isMarked(0));
  EXPECT_FALSE(isMarked(2));
  EXPECT_TRUE(isMarked(1));
  EXPECT_TRUE(isMarked(verMark(4)));
  EXPECT_FALSE(isMarked(verBump(4)));
  EXPECT_EQ(verBump(4), 6u);
  EXPECT_EQ(verMark(4), 5u);
}

TEST(PathCas, ExecChangesAddedAddresses) {
  TNode n;
  n.val.setInitial(10);
  start();
  add(n.val, std::int64_t{10}, std::int64_t{20});
  EXPECT_TRUE(exec());
  EXPECT_EQ(n.val.load(), 20);
}

TEST(PathCas, ExecFailsOnStaleOld) {
  TNode n;
  n.val.setInitial(10);
  start();
  add(n.val, std::int64_t{11}, std::int64_t{20});
  EXPECT_FALSE(exec());
  EXPECT_EQ(n.val.load(), 10);
}

TEST(PathCas, VisitThenValidateUnchanged) {
  TNode n;
  start();
  const Version v = visit(&n);
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(validate());
}

TEST(PathCas, ValidateFailsAfterVersionBump) {
  TNode n;
  start();
  visit(&n);
  n.ver.setInitial(2);  // someone changed the node after our visit
  EXPECT_FALSE(validate());
}

TEST(PathCas, ValidateFailsOnVisitedMarkedNode) {
  TNode n;
  n.ver.setInitial(verMark(0));
  start();
  const Version v = visit(&n);
  EXPECT_TRUE(isMarked(v));  // visit returns the mark with the version
  EXPECT_FALSE(validate());
}

TEST(PathCas, VexecSucceedsWhenPathQuiet) {
  TNode parent, child;
  parent.val.setInitial(1);
  start();
  const Version pv = visit(&parent);
  add(parent.val, std::int64_t{1}, std::int64_t{2});
  addVer(parent.ver, pv, verBump(pv));
  EXPECT_TRUE(vexec());
  EXPECT_EQ(parent.val.load(), 2);
  EXPECT_EQ(parent.ver.load(), verBump(pv));
}

TEST(PathCas, VexecFailsGenuinelyWhenVisitedNodeChanged) {
  TNode a, b;
  b.val.setInitial(5);
  start();
  visit(&a);
  const Version bv = visit(&b);
  add(b.val, std::int64_t{5}, std::int64_t{6});
  addVer(b.ver, bv, verBump(bv));
  a.ver.setInitial(2);  // a changes after being visited
  EXPECT_FALSE(vexec());
  EXPECT_EQ(b.val.load(), 5);  // nothing happened
}

TEST(PathCas, VexecWithoutVisitsBehavesLikeExec) {
  TNode n;
  n.val.setInitial(3);
  start();
  add(n.val, std::int64_t{3}, std::int64_t{4});
  EXPECT_TRUE(vexec());
  EXPECT_EQ(n.val.load(), 4);
}

TEST(PathCas, ExecIgnoresVisitedNodes) {
  TNode a, n;
  n.val.setInitial(3);
  start();
  visit(&a);
  a.ver.setInitial(2);  // would fail validation...
  add(n.val, std::int64_t{3}, std::int64_t{4});
  EXPECT_TRUE(exec());  // ...but exec drops the path (§3.3)
  EXPECT_EQ(n.val.load(), 4);
}

TEST(PathCas, MarkingUnlinkPattern) {
  // The delete pattern: bump+mark the removed node, bump the parent.
  TNode parent, victim;
  parent.next.setInitial(&victim);
  start();
  const Version pv = visit(&parent);
  const Version cv = visit(&victim);
  add(parent.next, &victim, static_cast<TNode*>(nullptr));
  addVer(parent.ver, pv, verBump(pv));
  addVer(victim.ver, cv, verMark(cv));
  EXPECT_TRUE(vexec());
  EXPECT_EQ(parent.next.load(), nullptr);
  EXPECT_TRUE(isMarked(victim.ver.load()));
  // A later operation that visited the victim cannot commit.
  start();
  visit(&victim);
  EXPECT_FALSE(validate());
}

// ---------------------------------------------------------------------------
// HTM fast path (emulated backend).
// ---------------------------------------------------------------------------

TEST(PathCasFast, ExecFastCommitsViaTransaction) {
  htm::resetStats();
  TNode n;
  n.val.setInitial(10);
  start();
  add(n.val, std::int64_t{10}, std::int64_t{20});
  EXPECT_TRUE(execFast());
  EXPECT_EQ(n.val.load(), 20);
  EXPECT_GE(htm::totalStats().commits, 1u);
}

TEST(PathCasFast, ExecFastFailsGenuinelyWithoutFallback) {
  htm::resetStats();
  TNode n;
  n.val.setInitial(10);
  start();
  add(n.val, std::int64_t{11}, std::int64_t{20});
  EXPECT_FALSE(execFast());
  EXPECT_EQ(n.val.load(), 10);
  EXPECT_EQ(htm::totalStats().fallbacks, 0u);  // kOld abort: no slow path
}

TEST(PathCasFast, VexecFastValidatesPath) {
  TNode a, n;
  n.val.setInitial(1);
  start();
  visit(&a);
  const Version nv = visit(&n);
  add(n.val, std::int64_t{1}, std::int64_t{2});
  addVer(n.ver, nv, verBump(nv));
  a.ver.setInitial(2);  // visited node changed
  EXPECT_FALSE(vexecFast());
  EXPECT_EQ(n.val.load(), 1);
}

TEST(PathCasFast, AbortInjectionFallsBackToSoftwarePath) {
  htm::resetStats();
  htm::setAbortInjection(1.0);  // every transaction attempt aborts
  TNode n;
  n.val.setInitial(10);
  start();
  add(n.val, std::int64_t{10}, std::int64_t{20});
  EXPECT_TRUE(execFast());  // must still succeed via the software path
  EXPECT_EQ(n.val.load(), 20);
  htm::setAbortInjection(0.0);
  const auto s = htm::totalStats();
  EXPECT_GE(s.fallbacks, 1u);
  EXPECT_GE(s.aborts, static_cast<std::uint64_t>(policy::kHtmRetries));
}

// ---------------------------------------------------------------------------
// Concurrency.
// ---------------------------------------------------------------------------

// Snapshot atomicity: writers transfer between node pairs under vexec with
// version bumps; readers visit both nodes, read both values, and validate.
// Every validated snapshot must preserve the conservation invariant.
TEST(PathCasConcurrent, ValidatedSnapshotsAreAtomic) {
  constexpr int kNodes = 6;
  constexpr std::int64_t kInitial = 100;
  std::vector<TNode> nodes(kNodes);
  for (auto& n : nodes) n.val.setInitial(kInitial);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> validatedSnapshots{0};

  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      ThreadGuard tg;
      Xoshiro256 rng(77 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const int i = static_cast<int>(rng.nextBounded(kNodes));
        int j = static_cast<int>(rng.nextBounded(kNodes));
        if (j == i) j = (j + 1) % kNodes;
        start();
        const Version vi = visitVer(nodes[i].ver);
        const Version vj = visitVer(nodes[j].ver);
        if (isMarked(vi) || isMarked(vj)) continue;
        const std::int64_t a = nodes[i].val;
        const std::int64_t b = nodes[j].val;
        if (a == 0) continue;
        add(nodes[i].val, a, a - 1);
        add(nodes[j].val, b, b + 1);
        addVer(nodes[i].ver, vi, verBump(vi));
        addVer(nodes[j].ver, vj, verBump(vj));
        vexec();
      }
    });
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      ThreadGuard tg;
      Xoshiro256 rng(991 + t);
      for (int iter = 0; iter < 30000; ++iter) {
        const int i = static_cast<int>(rng.nextBounded(kNodes));
        int j = static_cast<int>(rng.nextBounded(kNodes));
        if (j == i) j = (j + 1) % kNodes;
        start();
        visitVer(nodes[i].ver);
        visitVer(nodes[j].ver);
        const std::int64_t a = nodes[i].val;
        const std::int64_t b = nodes[j].val;
        if (validate()) {
          // A validated two-node snapshot existed atomically; since every
          // writer moves value between exactly two nodes, each node's value
          // must be within the global bounds and the total over a validated
          // *full* snapshot is checked below.
          ASSERT_GE(a, 0);
          ASSERT_GE(b, 0);
          ASSERT_LE(a + b, kInitial * kNodes);
          validatedSnapshots.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // Full-array validated snapshot: total must be exactly conserved.
      for (int attempts = 0; attempts < 1000000; ++attempts) {
        start();
        std::int64_t total = 0;
        for (auto& n : nodes) {
          visitVer(n.ver);
          total += n.val;
        }
        if (validate()) {
          ASSERT_EQ(total, kInitial * kNodes);
          break;
        }
      }
    });
  }
  for (auto& r : readers) r.join();
  stop.store(true);
  for (auto& w : writers) w.join();
  std::int64_t total = 0;
  for (auto& n : nodes) total += n.val.load();
  EXPECT_EQ(total, kInitial * kNodes);
  EXPECT_GT(validatedSnapshots.load(), 0u);
}

// The §3.4 adversarial scenario: t1 visits A and adds B; t2 visits B and
// adds A. With strong vexec (P1), the system as a whole keeps making
// progress: we assert global throughput, not per-operation success.
TEST(PathCasConcurrent, CrossVisitAddMakesProgress) {
  TNode A, B;
  A.val.setInitial(0);
  B.val.setInitial(0);
  std::atomic<std::uint64_t> successes{0};
  auto worker = [&](TNode& visitNode, TNode& addNode, int seed) {
    ThreadGuard tg;
    Xoshiro256 rng(seed);
    for (int i = 0; i < 3000; ++i) {
      for (int attempt = 0; attempt < 1000; ++attempt) {
        start();
        const Version vv = visitVer(visitNode.ver);
        if (isMarked(vv)) break;
        const std::int64_t cur = addNode.val;
        const Version av = visitVer(addNode.ver);
        if (isMarked(av)) break;
        add(addNode.val, cur, cur + 1);
        addVer(addNode.ver, av, verBump(av));
        if (vexec()) {
          successes.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
    }
  };
  std::thread t1([&] { worker(A, B, 1); });
  std::thread t2([&] { worker(B, A, 2); });
  t1.join();
  t2.join();
  EXPECT_EQ(successes.load(),
            static_cast<std::uint64_t>(A.val.load() + B.val.load()));
  EXPECT_GT(successes.load(), 0u);
}

// Fast path under concurrency with abort injection: transactions and the
// software fallback (which serializes on the htm global lock) interleave;
// multi-word updates must stay atomic. Note all updaters use the fast-path
// API — mixing execFast and plain exec on the same words is unsupported
// (a structure is either fast-path-enabled or software-only).
TEST(PathCasConcurrent, FastPathAndFallbackInteroperate) {
  htm::resetStats();
  htm::setAbortInjection(0.3);  // ~30% of attempts divert to the fallback
  constexpr int kWords = 4;
  std::vector<TNode> nodes(kWords);
  std::vector<std::thread> threads;
  constexpr int kThreads = 4, kOps = 2500;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ThreadGuard tg;
      for (int i = 0; i < kOps; ++i) {
        for (;;) {
          start();
          std::int64_t olds[kWords];
          for (int j = 0; j < kWords; ++j) {
            olds[j] = nodes[j].val;
            add(nodes[j].val, olds[j], olds[j] + 1);
          }
          if (execFast()) break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  htm::setAbortInjection(0.0);
  EXPECT_GT(htm::totalStats().fallbacks, 0u);
  for (int j = 0; j < kWords; ++j) {
    EXPECT_EQ(nodes[j].val.load(),
              static_cast<std::int64_t>(kThreads) * kOps);
  }
}

}  // namespace
}  // namespace pathcas
