// Tests for the PathCAS primitive itself: casword encoding, the
// start/read/add/visit/validate/exec/vexec lifecycle, marking semantics,
// the strong-vexec slow path, the HTM fast path (emulated backend, with
// abort injection), and multi-threaded snapshot atomicity.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "pathcas/pathcas.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"

namespace pathcas {
namespace {

struct TNode {
  casword<Version> ver;
  casword<std::int64_t> val;
  casword<TNode*> next;
};

TEST(Casword, SignedRoundTripIncludingNegatives) {
  casword<std::int64_t> w;
  for (std::int64_t v : {0LL, 1LL, -1LL, -123456789LL, (1LL << 60),
                         -(1LL << 60)}) {
    w.setInitial(v);
    EXPECT_EQ(w.load(), v);
    EXPECT_EQ(static_cast<std::int64_t>(w), v);  // implicit read()
  }
}

TEST(Casword, PointerRoundTripIncludingNull) {
  casword<TNode*> w;
  EXPECT_EQ(w.load(), nullptr);  // default-initialized to T{}
  TNode n;
  w.setInitial(&n);
  EXPECT_EQ(w.load(), &n);
  w.setInitial(nullptr);
  EXPECT_EQ(w.load(), nullptr);
}

TEST(Casword, EnumRoundTrip) {
  enum class Color : int { kRed = 0, kBlue = 7 };
  casword<Color> w;
  w.setInitial(Color::kBlue);
  EXPECT_EQ(w.load(), Color::kBlue);
}

TEST(Casword, ArrowOperatorChainsThroughPointers) {
  TNode a, b;
  a.val.setInitial(17);
  b.next.setInitial(&a);
  casword<TNode*> head;
  head.setInitial(&b);
  EXPECT_EQ(head->next->val.load(), 17);
}

TEST(Version, MarkHelpers) {
  EXPECT_FALSE(isMarked(0));
  EXPECT_FALSE(isMarked(2));
  EXPECT_TRUE(isMarked(1));
  EXPECT_TRUE(isMarked(verMark(4)));
  EXPECT_FALSE(isMarked(verBump(4)));
  EXPECT_EQ(verBump(4), 6u);
  EXPECT_EQ(verMark(4), 5u);
}

TEST(PathCas, ExecChangesAddedAddresses) {
  TNode n;
  n.val.setInitial(10);
  start();
  add(n.val, std::int64_t{10}, std::int64_t{20});
  EXPECT_TRUE(exec());
  EXPECT_EQ(n.val.load(), 20);
}

TEST(PathCas, ExecFailsOnStaleOld) {
  TNode n;
  n.val.setInitial(10);
  start();
  add(n.val, std::int64_t{11}, std::int64_t{20});
  EXPECT_FALSE(exec());
  EXPECT_EQ(n.val.load(), 10);
}

TEST(PathCas, VisitThenValidateUnchanged) {
  TNode n;
  start();
  const Version v = visit(&n);
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(validate());
}

TEST(PathCas, ValidateFailsAfterVersionBump) {
  TNode n;
  start();
  visit(&n);
  n.ver.setInitial(2);  // someone changed the node after our visit
  EXPECT_FALSE(validate());
}

TEST(PathCas, ValidateFailsOnVisitedMarkedNode) {
  TNode n;
  n.ver.setInitial(verMark(0));
  start();
  const Version v = visit(&n);
  EXPECT_TRUE(isMarked(v));  // visit returns the mark with the version
  EXPECT_FALSE(validate());
}

TEST(PathCas, VexecSucceedsWhenPathQuiet) {
  TNode parent, child;
  parent.val.setInitial(1);
  start();
  const Version pv = visit(&parent);
  add(parent.val, std::int64_t{1}, std::int64_t{2});
  addVer(parent.ver, pv, verBump(pv));
  EXPECT_TRUE(vexec());
  EXPECT_EQ(parent.val.load(), 2);
  EXPECT_EQ(parent.ver.load(), verBump(pv));
}

TEST(PathCas, VexecFailsGenuinelyWhenVisitedNodeChanged) {
  TNode a, b;
  b.val.setInitial(5);
  start();
  visit(&a);
  const Version bv = visit(&b);
  add(b.val, std::int64_t{5}, std::int64_t{6});
  addVer(b.ver, bv, verBump(bv));
  a.ver.setInitial(2);  // a changes after being visited
  EXPECT_FALSE(vexec());
  EXPECT_EQ(b.val.load(), 5);  // nothing happened
}

TEST(PathCas, VexecWithoutVisitsBehavesLikeExec) {
  TNode n;
  n.val.setInitial(3);
  start();
  add(n.val, std::int64_t{3}, std::int64_t{4});
  EXPECT_TRUE(vexec());
  EXPECT_EQ(n.val.load(), 4);
}

TEST(PathCas, ExecIgnoresVisitedNodes) {
  TNode a, n;
  n.val.setInitial(3);
  start();
  visit(&a);
  a.ver.setInitial(2);  // would fail validation...
  add(n.val, std::int64_t{3}, std::int64_t{4});
  EXPECT_TRUE(exec());  // ...but exec drops the path (§3.3)
  EXPECT_EQ(n.val.load(), 4);
}

TEST(PathCas, MarkingUnlinkPattern) {
  // The delete pattern: bump+mark the removed node, bump the parent.
  TNode parent, victim;
  parent.next.setInitial(&victim);
  start();
  const Version pv = visit(&parent);
  const Version cv = visit(&victim);
  add(parent.next, &victim, static_cast<TNode*>(nullptr));
  addVer(parent.ver, pv, verBump(pv));
  addVer(victim.ver, cv, verMark(cv));
  EXPECT_TRUE(vexec());
  EXPECT_EQ(parent.next.load(), nullptr);
  EXPECT_TRUE(isMarked(victim.ver.load()));
  // A later operation that visited the victim cannot commit.
  start();
  visit(&victim);
  EXPECT_FALSE(validate());
}

// ---------------------------------------------------------------------------
// validateVisited(): the read-only sibling of vexec (range scans).
// ---------------------------------------------------------------------------

TEST(ValidateVisited, SucceedsOnQuietPath) {
  TNode a, b;
  start();
  visit(&a);
  visit(&b);
  EXPECT_TRUE(validateVisited());
}

TEST(ValidateVisited, FailsGenuinelyWhenVisitedNodeChanged) {
  TNode a, b;
  start();
  visit(&a);
  visit(&b);
  b.ver.setInitial(2);  // someone changed b after our visit
  EXPECT_FALSE(validateVisited());
}

TEST(ValidateVisited, FailsOnVisitedMarkedNode) {
  // A node already marked when visited can never validate — and must be
  // rejected even via the strong path (which skips validation).
  TNode a;
  a.ver.setInitial(verMark(0));
  start();
  visit(&a);
  EXPECT_FALSE(validateVisited());
}

// ---------------------------------------------------------------------------
// The §3.5 spurious-failure path: a visited node held by an in-flight KCAS
// descriptor must cause bounded retries and then strong-path resolution —
// never a false conflict report.
// ---------------------------------------------------------------------------

// Install a fabricated KCAS descriptor reference on `w`'s underlying word.
// The (tid, seq) pair is deliberately stale (no descriptor ever reaches this
// sequence number), so helpers that chase it read a mismatched sequence and
// treat the operation as completed — exactly how a long-gone-but-still-
// installed lock looks to validation. Returns the displaced word.
k::word_t installStaleDescriptor(casword<Version>& w) {
  const k::word_t ref = k::packRef(k::kTagKcas, /*tid=*/0, /*seq=*/1ULL << 40);
  const k::word_t saved = w.addr()->load(std::memory_order_acquire);
  w.addr()->store(ref, std::memory_order_release);
  return saved;
}

TEST(StrongPath, VexecRetriesThenSucceedsViaStrongPathNotFalseConflict) {
  TNode visited, target;
  target.val.setInitial(1);
  std::atomic<bool> staged{false}, installed{false};
  bool result = false;
  bool promoted = false;
  std::thread worker([&] {
    ThreadGuard tg;
    start();
    visitVer(visited.ver);
    add(target.val, std::int64_t{1}, std::int64_t{2});
    staged.store(true, std::memory_order_release);
    while (!installed.load(std::memory_order_acquire))
      std::this_thread::yield();
    // The descriptor parks on visited.ver: every optimistic validation now
    // fails spuriously. vexec must retry, escalate to the strong path, spin
    // there helping the (stale) blocker, and succeed once it clears — NOT
    // report a conflict for an operation nothing genuinely invalidated.
    result = vexec();
    // Strong-path fingerprint: the visited path was promoted to entries
    // (⟨visited.ver, v, v⟩ joins ⟨target.val, 1, 2⟩) and the path cleared.
    promoted =
        domain().numStagedPath() == 0 && domain().numStagedEntries() == 2;
  });
  while (!staged.load(std::memory_order_acquire)) std::this_thread::yield();
  const k::word_t saved = installStaleDescriptor(visited.ver);
  installed.store(true, std::memory_order_release);
  // Long enough for kVexecRetries optimistic replays to exhaust and the
  // strong path to be spinning on the descriptor.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  visited.ver.addr()->store(saved, std::memory_order_release);
  worker.join();
  EXPECT_TRUE(result);
  EXPECT_TRUE(promoted);
  EXPECT_EQ(target.val.load(), 2);
  EXPECT_EQ(visited.ver.load(), 0u);  // strong path locks v -> v: no change
}

TEST(StrongPath, ValidateVisitedResolvesDescriptorBlockViaStrongPath) {
  // Same scenario for the read-only path: a scan whose visited set is
  // blocked by a descriptor must not starve — validateVisited escalates to
  // the strong path and confirms the snapshot once the blocker clears.
  TNode visited, other;
  std::atomic<bool> staged{false}, installed{false};
  bool result = false;
  std::thread worker([&] {
    ThreadGuard tg;
    start();
    visitVer(visited.ver);
    visitVer(other.ver);
    staged.store(true, std::memory_order_release);
    while (!installed.load(std::memory_order_acquire))
      std::this_thread::yield();
    result = validateVisited();
  });
  while (!staged.load(std::memory_order_acquire)) std::this_thread::yield();
  const k::word_t saved = installStaleDescriptor(visited.ver);
  installed.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  visited.ver.addr()->store(saved, std::memory_order_release);
  worker.join();
  EXPECT_TRUE(result);
  EXPECT_EQ(visited.ver.load(), 0u);
  EXPECT_EQ(other.ver.load(), 0u);
}

TEST(StrongPath, MarkedVisitedNodePlusDescriptorIsGenuineFailure) {
  // Regression for the promote-over-mark hazard: one visited node is
  // already marked (genuine conflict) while ANOTHER visited node holds a
  // descriptor (spurious symptom). The retry loop sees the descriptor and
  // would escalate — but the strong path skips validation, so without the
  // stagedMarkDoomed() guard it would happily lock the marked version at
  // its marked value and commit an update against an unlinked node.
  TNode markedNode, blockedNode, target;
  markedNode.ver.setInitial(verMark(0));
  target.val.setInitial(5);
  std::atomic<bool> staged{false}, installed{false};
  bool result = true;
  std::thread worker([&] {
    ThreadGuard tg;
    start();
    visitVer(markedNode.ver);  // records an already-marked version
    visitVer(blockedNode.ver);
    add(target.val, std::int64_t{5}, std::int64_t{6});
    staged.store(true, std::memory_order_release);
    while (!installed.load(std::memory_order_acquire))
      std::this_thread::yield();
    result = vexec();
  });
  while (!staged.load(std::memory_order_acquire)) std::this_thread::yield();
  const k::word_t saved = installStaleDescriptor(blockedNode.ver);
  installed.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  blockedNode.ver.addr()->store(saved, std::memory_order_release);
  worker.join();
  EXPECT_FALSE(result);                 // genuine failure, not a commit
  EXPECT_EQ(target.val.load(), 5);      // nothing was written
}

// ---------------------------------------------------------------------------
// HTM fast path (emulated backend).
// ---------------------------------------------------------------------------

TEST(PathCasFast, ExecFastCommitsViaTransaction) {
  htm::resetStats();
  TNode n;
  n.val.setInitial(10);
  start();
  add(n.val, std::int64_t{10}, std::int64_t{20});
  EXPECT_TRUE(execFast());
  EXPECT_EQ(n.val.load(), 20);
  EXPECT_GE(htm::totalStats().commits, 1u);
}

TEST(PathCasFast, ExecFastFailsGenuinelyWithoutFallback) {
  htm::resetStats();
  TNode n;
  n.val.setInitial(10);
  start();
  add(n.val, std::int64_t{11}, std::int64_t{20});
  EXPECT_FALSE(execFast());
  EXPECT_EQ(n.val.load(), 10);
  EXPECT_EQ(htm::totalStats().fallbacks, 0u);  // kOld abort: no slow path
}

TEST(PathCasFast, VexecFastValidatesPath) {
  TNode a, n;
  n.val.setInitial(1);
  start();
  visit(&a);
  const Version nv = visit(&n);
  add(n.val, std::int64_t{1}, std::int64_t{2});
  addVer(n.ver, nv, verBump(nv));
  a.ver.setInitial(2);  // visited node changed
  EXPECT_FALSE(vexecFast());
  EXPECT_EQ(n.val.load(), 1);
}

TEST(PathCasFast, AbortInjectionFallsBackToSoftwarePath) {
  htm::resetStats();
  htm::setAbortInjection(1.0);  // every transaction attempt aborts
  TNode n;
  n.val.setInitial(10);
  start();
  add(n.val, std::int64_t{10}, std::int64_t{20});
  EXPECT_TRUE(execFast());  // must still succeed via the software path
  EXPECT_EQ(n.val.load(), 20);
  htm::setAbortInjection(0.0);
  const auto s = htm::totalStats();
  EXPECT_GE(s.fallbacks, 1u);
  EXPECT_GE(s.aborts, static_cast<std::uint64_t>(policy::kHtmRetries));
}

// ---------------------------------------------------------------------------
// Concurrency.
// ---------------------------------------------------------------------------

// Snapshot atomicity: writers transfer between node pairs under vexec with
// version bumps; readers visit both nodes, read both values, and validate.
// Every validated snapshot must preserve the conservation invariant.
TEST(PathCasConcurrent, ValidatedSnapshotsAreAtomic) {
  constexpr int kNodes = 6;
  constexpr std::int64_t kInitial = 100;
  std::vector<TNode> nodes(kNodes);
  for (auto& n : nodes) n.val.setInitial(kInitial);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> validatedSnapshots{0};

  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      ThreadGuard tg;
      Xoshiro256 rng(77 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const int i = static_cast<int>(rng.nextBounded(kNodes));
        int j = static_cast<int>(rng.nextBounded(kNodes));
        if (j == i) j = (j + 1) % kNodes;
        start();
        const Version vi = visitVer(nodes[i].ver);
        const Version vj = visitVer(nodes[j].ver);
        if (isMarked(vi) || isMarked(vj)) continue;
        const std::int64_t a = nodes[i].val;
        const std::int64_t b = nodes[j].val;
        if (a == 0) continue;
        add(nodes[i].val, a, a - 1);
        add(nodes[j].val, b, b + 1);
        addVer(nodes[i].ver, vi, verBump(vi));
        addVer(nodes[j].ver, vj, verBump(vj));
        vexec();
      }
    });
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      ThreadGuard tg;
      Xoshiro256 rng(991 + t);
      for (int iter = 0; iter < 30000; ++iter) {
        const int i = static_cast<int>(rng.nextBounded(kNodes));
        int j = static_cast<int>(rng.nextBounded(kNodes));
        if (j == i) j = (j + 1) % kNodes;
        start();
        visitVer(nodes[i].ver);
        visitVer(nodes[j].ver);
        const std::int64_t a = nodes[i].val;
        const std::int64_t b = nodes[j].val;
        if (validate()) {
          // A validated two-node snapshot existed atomically; since every
          // writer moves value between exactly two nodes, each node's value
          // must be within the global bounds and the total over a validated
          // *full* snapshot is checked below.
          ASSERT_GE(a, 0);
          ASSERT_GE(b, 0);
          ASSERT_LE(a + b, kInitial * kNodes);
          validatedSnapshots.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // Full-array validated snapshot: total must be exactly conserved.
      for (int attempts = 0; attempts < 1000000; ++attempts) {
        start();
        std::int64_t total = 0;
        for (auto& n : nodes) {
          visitVer(n.ver);
          total += n.val;
        }
        if (validate()) {
          ASSERT_EQ(total, kInitial * kNodes);
          break;
        }
      }
    });
  }
  for (auto& r : readers) r.join();
  stop.store(true);
  for (auto& w : writers) w.join();
  std::int64_t total = 0;
  for (auto& n : nodes) total += n.val.load();
  EXPECT_EQ(total, kInitial * kNodes);
  EXPECT_GT(validatedSnapshots.load(), 0u);
}

// The §3.4 adversarial scenario: t1 visits A and adds B; t2 visits B and
// adds A. With strong vexec (P1), the system as a whole keeps making
// progress: we assert global throughput, not per-operation success.
TEST(PathCasConcurrent, CrossVisitAddMakesProgress) {
  TNode A, B;
  A.val.setInitial(0);
  B.val.setInitial(0);
  std::atomic<std::uint64_t> successes{0};
  auto worker = [&](TNode& visitNode, TNode& addNode, int seed) {
    ThreadGuard tg;
    Xoshiro256 rng(seed);
    for (int i = 0; i < 3000; ++i) {
      for (int attempt = 0; attempt < 1000; ++attempt) {
        start();
        const Version vv = visitVer(visitNode.ver);
        if (isMarked(vv)) break;
        const std::int64_t cur = addNode.val;
        const Version av = visitVer(addNode.ver);
        if (isMarked(av)) break;
        add(addNode.val, cur, cur + 1);
        addVer(addNode.ver, av, verBump(av));
        if (vexec()) {
          successes.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
    }
  };
  std::thread t1([&] { worker(A, B, 1); });
  std::thread t2([&] { worker(B, A, 2); });
  t1.join();
  t2.join();
  EXPECT_EQ(successes.load(),
            static_cast<std::uint64_t>(A.val.load() + B.val.load()));
  EXPECT_GT(successes.load(), 0u);
}

// Fast path under concurrency with abort injection: transactions and the
// software fallback (which serializes on the htm global lock) interleave;
// multi-word updates must stay atomic. Note all updaters use the fast-path
// API — mixing execFast and plain exec on the same words is unsupported
// (a structure is either fast-path-enabled or software-only).
TEST(PathCasConcurrent, FastPathAndFallbackInteroperate) {
  htm::resetStats();
  htm::setAbortInjection(0.3);  // ~30% of attempts divert to the fallback
  constexpr int kWords = 4;
  std::vector<TNode> nodes(kWords);
  std::vector<std::thread> threads;
  constexpr int kThreads = 4, kOps = 2500;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ThreadGuard tg;
      for (int i = 0; i < kOps; ++i) {
        for (;;) {
          start();
          std::int64_t olds[kWords];
          for (int j = 0; j < kWords; ++j) {
            olds[j] = nodes[j].val;
            add(nodes[j].val, olds[j], olds[j] + 1);
          }
          if (execFast()) break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  htm::setAbortInjection(0.0);
  EXPECT_GT(htm::totalStats().fallbacks, 0u);
  for (int j = 0; j < kWords; ++j) {
    EXPECT_EQ(nodes[j].val.load(),
              static_cast<std::int64_t>(kThreads) * kOps);
  }
}

}  // namespace
}  // namespace pathcas
