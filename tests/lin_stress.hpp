// The windowed linearizability stress harness shared by the range-query
// suites (test_rq_linearizable.cpp for the plain structures,
// test_sharded_map.cpp for the sharded service frontend): worker threads
// hammer a tiny key space with racing insert/erase/contains/rangeQuery in
// barrier-separated rounds, recording timestamped results; the checker
// (lin_check.hpp) then verifies that EVERY window admits a sequential
// interleaving — in particular that every range-query result is consistent
// with some instantaneous abstract set, which is exactly the atomic-snapshot
// guarantee rangeQuery claims.
//
// Test-only header (uses gtest assertions).
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstdint>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "lin_check.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"

namespace pathcas::testing {

/// Run the stress against an already-constructed set (callers pick the
/// construction — default adapter, sharded map with chosen shard count, ...).
/// `keySpace` <= 64 (LinState is a 64-bit membership mask); all keys drawn
/// from [0, keySpace).
template <typename SetT>
void runRqLinStress(SetT& set, int threads, int rounds, std::int64_t keySpace,
                    std::uint64_t seed) {
  ASSERT_LE(keySpace, 64);  // LinState is a 64-bit membership mask
  std::atomic<std::uint64_t> clock{0};
  std::vector<RecordedOp> history(
      static_cast<std::size_t>(rounds * threads));
  std::barrier barrier(threads);

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ThreadGuard tg;
      Xoshiro256 rng(seed * 1000003 + static_cast<std::uint64_t>(t));
      std::vector<std::pair<std::int64_t, std::int64_t>> buf;
      for (int r = 0; r < rounds; ++r) {
        barrier.arrive_and_wait();  // all of round r-1 completed
        RecordedOp rec;
        const std::int64_t k = static_cast<std::int64_t>(
            rng.nextBounded(static_cast<std::uint64_t>(keySpace)));
        const std::uint64_t dice = rng.nextBounded(100);
        if (dice < 35) {
          rec.kind = OpKind::kInsert;
          rec.a = k;
          rec.inv = clock.fetch_add(1);
          rec.boolResult = set.insert(k, k);
        } else if (dice < 70) {
          rec.kind = OpKind::kErase;
          rec.a = k;
          rec.inv = clock.fetch_add(1);
          rec.boolResult = set.erase(k);
        } else if (dice < 80) {
          rec.kind = OpKind::kContains;
          rec.a = k;
          rec.inv = clock.fetch_add(1);
          rec.boolResult = set.contains(k);
        } else {
          rec.kind = OpKind::kRangeQuery;
          rec.a = k;
          rec.b = k + static_cast<std::int64_t>(rng.nextBounded(
                          static_cast<std::uint64_t>(keySpace - k)));
          buf.clear();
          rec.inv = clock.fetch_add(1);
          set.rangeQuery(rec.a, rec.b, buf);
          for (const auto& [bk, bv] : buf) {
            EXPECT_EQ(bk, bv);  // torn-value detector: we only insert (k, k)
            rec.keysResult.push_back(bk);
          }
        }
        rec.res = clock.fetch_add(1);
        history[static_cast<std::size_t>(r * threads + t)] = std::move(rec);
      }
    });
  }
  for (auto& w : workers) w.join();

  // Replay window by window, threading the set of possible abstract states.
  std::set<LinState> states = {0};
  for (int r = 0; r < rounds; ++r) {
    const std::vector<RecordedOp> window(
        history.begin() + static_cast<std::ptrdiff_t>(r * threads),
        history.begin() + static_cast<std::ptrdiff_t>((r + 1) * threads));
    states = linearizeWindow(window, states);
    ASSERT_FALSE(states.empty())
        << "history not linearizable at window " << r << ": "
        << describeWindow(window);
  }

  // The structure's actual final contents must be one of the candidates.
  std::vector<std::pair<std::int64_t, std::int64_t>> finalKeys;
  set.rangeQuery(0, keySpace - 1, finalKeys);
  LinState finalMask = 0;
  for (const auto& [fk, fv] : finalKeys) finalMask |= LinState{1} << fk;
  EXPECT_TRUE(states.count(finalMask))
      << "final contents (mask " << finalMask
      << ") not among the linearizable outcomes";
}

}  // namespace pathcas::testing
