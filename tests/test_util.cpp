// Unit tests for the utility substrate: PRNG quality basics, padding
// geometry, lock mutual exclusion, thread-registry id management.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "util/backoff.hpp"
#include "util/locks.hpp"
#include "util/padding.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"
#include "util/timing.hpp"

namespace pathcas {
namespace {

TEST(Rand, SplitmixDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

TEST(Rand, XoshiroDistinctSeedsDistinctStreams) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rand, BoundedStaysInBounds) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.nextBounded(bound), bound);
  }
}

TEST(Rand, BoundedRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr int kBuckets = 8, kSamples = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.nextBounded(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kSamples / kBuckets * 0.9);
    EXPECT_LT(c, kSamples / kBuckets * 1.1);
  }
}

TEST(Rand, DoubleInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.nextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// Zipfian/hotspot/latest generator coverage lives in tests/test_workload.cpp
// (the generators moved to src/bench_fw/workload.hpp).

TEST(Padding, GeometryIsPaddedAndAligned) {
  EXPECT_EQ(sizeof(Padded<char>) % kNoFalseSharing, 0u);
  EXPECT_EQ(sizeof(Padded<std::uint64_t[40]>) % kNoFalseSharing, 0u);
  Padded<int> arr[4];
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&arr[i]) % kNoFalseSharing, 0u);
  }
}

template <typename Lock>
void mutualExclusionTest() {
  Lock lock;
  std::int64_t counter = 0;
  constexpr int kThreads = 4, kIters = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.lock();
        ++counter;  // data race iff the lock is broken
        lock.unlock();
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIters);
}

TEST(Locks, TatasMutualExclusion) { mutualExclusionTest<TatasLock>(); }
TEST(Locks, TicketMutualExclusion) { mutualExclusionTest<TicketLock>(); }
TEST(Locks, SeqLockMutualExclusion) { mutualExclusionTest<SeqLock>(); }

TEST(Locks, TatasTryLock) {
  TatasLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_TRUE(lock.isLocked());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Locks, SeqLockReadersSeeConsistentPairs) {
  SeqLock lock;
  std::uint64_t a = 0, b = 0;  // invariant under the lock: a == b
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (std::uint64_t i = 1; !stop.load(); ++i) {
      lock.lock();
      a = i;
      b = i;
      lock.unlock();
    }
  });
  for (int i = 0; i < 20000; ++i) {
    std::uint64_t v1, ra, rb;
    do {
      v1 = lock.beginRead();
      ra = a;
      rb = b;
    } while (!lock.validateRead(v1));
    ASSERT_EQ(ra, rb);
  }
  stop.store(true);
  writer.join();
}

TEST(Locks, SeqLockVersionAdvancesByTwoPerCriticalSection) {
  SeqLock lock;
  const auto v0 = lock.rawVersion();
  lock.lock();
  EXPECT_EQ(lock.rawVersion(), v0 + 1);
  lock.unlock();
  EXPECT_EQ(lock.rawVersion(), v0 + 2);
}

TEST(ThreadRegistry, IdsAreDenseAndRecycled) {
  std::set<int> seen;
  std::mutex mu;
  {
    std::vector<std::thread> ts;
    for (int i = 0; i < 8; ++i) {
      ts.emplace_back([&] {
        ThreadGuard guard;
        std::lock_guard<std::mutex> g(mu);
        seen.insert(guard.tid());
      });
    }
    for (auto& t : ts) t.join();
  }
  for (int id : seen) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, kMaxThreads);
  }
  // After deregistration the same small pool of ids is reused.
  std::set<int> seen2;
  {
    std::vector<std::thread> ts;
    for (int i = 0; i < 8; ++i) {
      ts.emplace_back([&] {
        ThreadGuard guard;
        std::lock_guard<std::mutex> g(mu);
        seen2.insert(guard.tid());
      });
    }
    for (auto& t : ts) t.join();
  }
  EXPECT_LE(*std::max_element(seen2.begin(), seen2.end()),
            *std::max_element(seen.begin(), seen.end()) + 8);
}

TEST(ThreadRegistry, TidStableWithinThread) {
  const int a = ThreadRegistry::tid();
  const int b = ThreadRegistry::tid();
  EXPECT_EQ(a, b);
}

TEST(Timing, StopWatchMonotone) {
  StopWatch sw;
  const double t1 = sw.elapsedSeconds();
  const double t2 = sw.elapsedSeconds();
  EXPECT_GE(t2, t1);
  EXPECT_GE(t1, 0.0);
}

TEST(Backoff, PauseTerminates) {
  Backoff bo(1, 16);
  for (int i = 0; i < 10; ++i) bo.pause();
  bo.reset();
  bo.pause();
  SUCCEED();
}

}  // namespace
}  // namespace pathcas
