// Tests for the KCAS substrate: word encoding, single- and multi-threaded
// KCAS semantics, helping via readEncoded, the validation phase at the
// descriptor level, and the degenerate k=1 fast paths (plain-CAS and
// DCSS-guarded commits) racing descriptor-based operations — including a
// lin_check.hpp-driven linearizability stress that mixes every commit
// flavour (fast A, fast B, validation-only, general) on shared words.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <set>
#include <thread>
#include <vector>

#include "kcas/kcas.hpp"
#include "kcas/word.hpp"
#include "lin_check.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"

namespace pathcas::k {
namespace {

TEST(Word, TagsAreDisjoint) {
  EXPECT_TRUE(isDcss(kTagDcss));
  EXPECT_TRUE(isKcas(kTagKcas));
  EXPECT_FALSE(isDescriptor(encodeVal(12345)));
  EXPECT_FALSE(isDescriptor(0));
}

TEST(Word, ValueRoundTrip) {
  for (word_t v : {0ULL, 1ULL, 42ULL, (1ULL << 61) - 1}) {
    EXPECT_EQ(decodeVal(encodeVal(v)), v);
    EXPECT_FALSE(isDescriptor(encodeVal(v)));
  }
}

TEST(Word, RefPackingRoundTrip) {
  for (int tid : {0, 1, 17, kMaxThreads - 1}) {
    for (std::uint64_t seq : {0ULL, 1ULL, 123456789ULL, (1ULL << 45)}) {
      const word_t r = packRef(kTagKcas, tid, seq);
      EXPECT_TRUE(isKcas(r));
      EXPECT_EQ(refTid(r), tid);
      EXPECT_EQ(refSeq(r), seq);
    }
  }
}

TEST(Word, SeqStatePacking) {
  const word_t ss = packSeqState(77, State::kSucceeded);
  EXPECT_EQ(seqOf(ss), 77u);
  EXPECT_EQ(stateOf(ss), State::kSucceeded);
}

using Domain = KcasDomain<16, 32>;

class KcasTest : public ::testing::Test {
 protected:
  Domain domain;  // isolated domain per test
  static word_t load(AtomicWord& w) { return decodeVal(w.load()); }
  static void store(AtomicWord& w, word_t v) { w.store(encodeVal(v)); }
};

TEST_F(KcasTest, SingleWordSucceeds) {
  AtomicWord a;
  store(a, 5);
  domain.begin();
  domain.addEntry(&a, encodeVal(5), encodeVal(9));
  EXPECT_EQ(domain.execute(false), ExecResult::kSucceeded);
  EXPECT_EQ(load(a), 9u);
}

TEST_F(KcasTest, SingleWordFailsOnWrongOld) {
  AtomicWord a;
  store(a, 5);
  domain.begin();
  domain.addEntry(&a, encodeVal(6), encodeVal(9));
  EXPECT_NE(domain.execute(false), ExecResult::kSucceeded);
  EXPECT_EQ(load(a), 5u);
}

TEST_F(KcasTest, MultiWordAllOrNothing) {
  AtomicWord w[4];
  for (int i = 0; i < 4; ++i) store(w[i], 10 + i);
  // One stale old value: nothing may change.
  domain.begin();
  for (int i = 0; i < 4; ++i)
    domain.addEntry(&w[i], encodeVal(i == 2 ? 99 : 10 + i), encodeVal(50 + i));
  EXPECT_NE(domain.execute(false), ExecResult::kSucceeded);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(load(w[i]), 10u + i);
  // All correct: everything changes.
  domain.begin();
  for (int i = 0; i < 4; ++i)
    domain.addEntry(&w[i], encodeVal(10 + i), encodeVal(50 + i));
  EXPECT_EQ(domain.execute(false), ExecResult::kSucceeded);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(load(w[i]), 50u + i);
}

TEST_F(KcasTest, UnsortedArgumentsAreSortedInternally) {
  AtomicWord w[3];
  for (int i = 0; i < 3; ++i) store(w[i], i);
  domain.begin();
  domain.addEntry(&w[2], encodeVal(2), encodeVal(12));
  domain.addEntry(&w[0], encodeVal(0), encodeVal(10));
  domain.addEntry(&w[1], encodeVal(1), encodeVal(11));
  EXPECT_EQ(domain.execute(false), ExecResult::kSucceeded);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(load(w[i]), 10u + i);
}

TEST_F(KcasTest, ReadEncodedSeesLogicalValue) {
  AtomicWord a;
  store(a, 7);
  EXPECT_EQ(decodeVal(domain.readEncoded(&a)), 7u);
}

TEST_F(KcasTest, ZeroEntryExecuteSucceeds) {
  domain.begin();
  EXPECT_EQ(domain.execute(false), ExecResult::kSucceeded);
}

TEST_F(KcasTest, ValidationFailsWhenVersionChanged) {
  AtomicWord target, ver;
  store(target, 1);
  store(ver, 100);
  domain.begin();
  domain.addEntry(&target, encodeVal(1), encodeVal(2));
  domain.addPath(&ver, encodeVal(100));
  store(ver, 102);  // concurrent change between visit and execute
  EXPECT_NE(domain.execute(true), ExecResult::kSucceeded);
  EXPECT_EQ(load(target), 1u);
}

TEST_F(KcasTest, ValidationFailsOnMarkedVersion) {
  AtomicWord target, ver;
  store(target, 1);
  store(ver, 101);  // bit 0 set: marked
  domain.begin();
  domain.addEntry(&target, encodeVal(1), encodeVal(2));
  domain.addPath(&ver, encodeVal(101));
  EXPECT_NE(domain.execute(true), ExecResult::kSucceeded);
  EXPECT_EQ(load(target), 1u);
}

TEST_F(KcasTest, ValidationPassesWhenUnchanged) {
  AtomicWord target, ver;
  store(target, 1);
  store(ver, 100);
  domain.begin();
  domain.addEntry(&target, encodeVal(1), encodeVal(2));
  domain.addPath(&ver, encodeVal(100));
  EXPECT_EQ(domain.execute(true), ExecResult::kSucceeded);
  EXPECT_EQ(load(target), 2u);
}

TEST_F(KcasTest, OwnLockedVersionPassesValidation) {
  // The parent pattern: a node is both visited and has its version entry
  // added; during phase 1 the version word holds OUR reference, which
  // Algorithm 2 line 3 treats as valid.
  AtomicWord ver;
  store(ver, 100);
  domain.begin();
  domain.addEntry(&ver, encodeVal(100), encodeVal(102));
  domain.addPath(&ver, encodeVal(100));
  EXPECT_EQ(domain.execute(true), ExecResult::kSucceeded);
  EXPECT_EQ(load(ver), 102u);
}

TEST_F(KcasTest, PromotePathToEntriesLocksVersions) {
  AtomicWord target, ver;
  store(target, 1);
  store(ver, 100);
  domain.begin();
  domain.addEntry(&target, encodeVal(1), encodeVal(2));
  domain.addPath(&ver, encodeVal(100));
  domain.promotePathToEntries();
  EXPECT_EQ(domain.numStagedPath(), 0);
  EXPECT_EQ(domain.numStagedEntries(), 2);
  EXPECT_EQ(domain.execute(false), ExecResult::kSucceeded);
  EXPECT_EQ(load(target), 2u);
  EXPECT_EQ(load(ver), 100u);  // version "changed" to itself
}

TEST_F(KcasTest, PromoteSkipsVersionsWithRealEntries) {
  AtomicWord ver;
  store(ver, 100);
  domain.begin();
  domain.addEntry(&ver, encodeVal(100), encodeVal(102));
  domain.addPath(&ver, encodeVal(100));
  domain.promotePathToEntries();
  EXPECT_EQ(domain.numStagedEntries(), 1);  // no self-conflicting duplicate
  EXPECT_EQ(domain.execute(false), ExecResult::kSucceeded);
  EXPECT_EQ(load(ver), 102u);
}

TEST_F(KcasTest, WideUnsortedStagingSortsOnExecute) {
  // More entries than the sorted-staging bound (8), added in descending
  // address order: the MCMS-shaped append path must defer-sort on execute
  // so helpers still lock in one global order.
  constexpr int kWide = 12;
  AtomicWord w[kWide];
  for (word_t i = 0; i < kWide; ++i) store(w[i], i);
  domain.begin();
  for (int i = kWide - 1; i >= 0; --i)
    domain.addEntry(&w[i], encodeVal(static_cast<word_t>(i)),
                    encodeVal(static_cast<word_t>(100 + i)));
  EXPECT_EQ(domain.execute(false), ExecResult::kSucceeded);
  for (word_t i = 0; i < kWide; ++i) EXPECT_EQ(load(w[i]), 100u + i);
}

TEST_F(KcasTest, PromoteMergesWidePathSkippingDuplicates) {
  // Wide visited set incl. a duplicate visit and a slot aliasing the real
  // entry: the sort-dedup-merge must keep one promoted entry per distinct
  // version word and none for the aliased address.
  constexpr int kVers = 10;
  AtomicWord target, vers[kVers];
  store(target, 1);
  for (word_t i = 0; i < kVers; ++i) store(vers[i], 100 + 2 * i);
  domain.begin();
  domain.addEntry(&target, encodeVal(1), encodeVal(2));
  for (word_t i = 0; i < kVers; ++i)
    domain.addPath(&vers[i], encodeVal(100 + 2 * i));
  domain.addPath(&vers[3], encodeVal(106));  // node visited twice
  domain.addPath(&target, encodeVal(1));     // aliases the real entry
  domain.promotePathToEntries();
  EXPECT_EQ(domain.numStagedPath(), 0);
  EXPECT_EQ(domain.numStagedEntries(), 1 + kVers);
  EXPECT_EQ(domain.execute(false), ExecResult::kSucceeded);
  EXPECT_EQ(load(target), 2u);
  for (word_t i = 0; i < kVers; ++i) EXPECT_EQ(load(vers[i]), 100u + 2 * i);
}

TEST_F(KcasTest, StagingPreservedAcrossFailedExecute) {
  AtomicWord a;
  store(a, 5);
  domain.begin();
  domain.addEntry(&a, encodeVal(4), encodeVal(9));
  EXPECT_NE(domain.execute(false), ExecResult::kSucceeded);
  // Replay (§3.5: spurious retries reuse the exact same arguments).
  store(a, 4);
  EXPECT_EQ(domain.execute(false), ExecResult::kSucceeded);
  EXPECT_EQ(load(a), 9u);
}

// ---------------------------------------------------------------------------
// Degenerate fast paths (k=1), deterministic coverage. Note SingleWord* and
// ZeroEntryExecuteSucceeds above already route through the fast paths.
// ---------------------------------------------------------------------------

TEST_F(KcasTest, K1PathFastPathCommitsWhenGuardHolds) {
  AtomicWord target, ver;
  store(target, 1);
  store(ver, 100);
  domain.begin();
  domain.addEntry(&target, encodeVal(1), encodeVal(2));
  domain.addPath(&ver, encodeVal(100));
  EXPECT_EQ(domain.execute(true), ExecResult::kSucceeded);
  EXPECT_EQ(load(target), 2u);
  EXPECT_EQ(load(ver), 100u);
}

TEST_F(KcasTest, K1PathFastPathFailsWhenGuardMoved) {
  AtomicWord target, ver;
  store(target, 1);
  store(ver, 100);
  domain.begin();
  domain.addEntry(&target, encodeVal(1), encodeVal(2));
  domain.addPath(&ver, encodeVal(100));
  store(ver, 102);  // version bumped between visit and commit
  EXPECT_EQ(domain.execute(true), ExecResult::kFailedValidation);
  EXPECT_EQ(load(target), 1u);
}

TEST_F(KcasTest, K1PathFastPathFailsOnMarkedGuard) {
  AtomicWord target, ver;
  store(target, 1);
  store(ver, 101);  // bit 0 set: visited node was already unlinked
  domain.begin();
  domain.addEntry(&target, encodeVal(1), encodeVal(2));
  domain.addPath(&ver, encodeVal(101));
  EXPECT_EQ(domain.execute(true), ExecResult::kFailedValidation);
  EXPECT_EQ(load(target), 1u);
}

TEST_F(KcasTest, K1PathFastPathValueMismatchIsGenuine) {
  AtomicWord target, ver;
  store(target, 7);
  store(ver, 100);
  domain.begin();
  domain.addEntry(&target, encodeVal(1), encodeVal(2));
  domain.addPath(&ver, encodeVal(100));
  EXPECT_EQ(domain.execute(true), ExecResult::kFailedValue);
  EXPECT_EQ(load(target), 7u);
}

TEST_F(KcasTest, K1PathAliasingEntryIsSubsumedByTheCas) {
  // Path slot on the same word as the single entry: the entry's old-value
  // check is the only constraint (Algorithm 2 accepts our own lock), so the
  // fast path must not double-require the path expectation.
  AtomicWord ver;
  store(ver, 100);
  domain.begin();
  domain.addEntry(&ver, encodeVal(100), encodeVal(102));
  domain.addPath(&ver, encodeVal(100));
  EXPECT_EQ(domain.execute(true), ExecResult::kSucceeded);
  EXPECT_EQ(load(ver), 102u);
}

TEST_F(KcasTest, ValidationOnlyExecuteUsesReadPass) {
  // k=0 with a path: the degenerate validation-only commit.
  AtomicWord ver;
  store(ver, 100);
  domain.begin();
  domain.addPath(&ver, encodeVal(100));
  EXPECT_EQ(domain.execute(true), ExecResult::kSucceeded);
  domain.begin();
  domain.addPath(&ver, encodeVal(98));
  EXPECT_EQ(domain.execute(true), ExecResult::kFailedValidation);
}

TEST_F(KcasTest, DcssReportsOutcome) {
  AtomicWord guard, target;
  store(guard, 5);
  store(target, 10);
  // Guard holds: swap commits, outcome true.
  bool committed = false;
  EXPECT_EQ(domain.dcss(&guard, encodeVal(5), &target, encodeVal(10),
                        encodeVal(11), &committed),
            encodeVal(10));
  EXPECT_TRUE(committed);
  EXPECT_EQ(load(target), 11u);
  // Guard mismatch: descriptor installs, decision reverts, outcome false.
  committed = true;
  EXPECT_EQ(domain.dcss(&guard, encodeVal(6), &target, encodeVal(11),
                        encodeVal(12), &committed),
            encodeVal(11));
  EXPECT_FALSE(committed);
  EXPECT_EQ(load(target), 11u);
  // Target mismatch: no install, seen value returned, outcome untouched.
  committed = true;
  EXPECT_EQ(domain.dcss(&guard, encodeVal(5), &target, encodeVal(99),
                        encodeVal(100), &committed),
            encodeVal(11));
  EXPECT_EQ(load(target), 11u);
}

// ---------------------------------------------------------------------------
// Concurrency: atomicity and lock-freedom smoke under oversubscription.
// ---------------------------------------------------------------------------

// Writers atomically increment K counters together; the counters must remain
// equal at every successful read-snapshot and at the end.
TEST_F(KcasTest, ConcurrentCountersStayInSync) {
  constexpr int kWords = 5, kThreads = 4, kOpsPerThread = 4000;
  AtomicWord w[kWords];
  for (auto& x : w) store(x, 0);
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> successes{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ThreadGuard tg;
      for (int i = 0; i < kOpsPerThread; ++i) {
        for (;;) {
          domain.begin();
          word_t olds[kWords];
          for (int j = 0; j < kWords; ++j) {
            olds[j] = decodeVal(domain.readEncoded(&w[j]));
            domain.addEntry(&w[j], encodeVal(olds[j]), encodeVal(olds[j] + 1));
          }
          if (domain.execute(false) == ExecResult::kSucceeded) {
            successes.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(successes.load(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  for (int j = 0; j < kWords; ++j) {
    EXPECT_EQ(load(w[j]), static_cast<word_t>(kThreads) * kOpsPerThread);
  }
}

// Transfer test: writers move amounts between random account pairs keeping
// the total constant; concurrent readers take two-account snapshots via
// validated reads (path over a shared version word would be PathCAS; here we
// verify the raw KCAS keeps totals).
TEST_F(KcasTest, ConcurrentTransfersPreserveTotal) {
  constexpr int kAccounts = 8, kThreads = 4, kOps = 4000;
  constexpr word_t kInitial = 1000;
  AtomicWord acct[kAccounts];
  for (auto& a : acct) store(a, kInitial);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadGuard tg;
      pathcas::Xoshiro256 rng(1000 + t);
      for (int i = 0; i < kOps; ++i) {
        const int from = static_cast<int>(rng.nextBounded(kAccounts));
        int to = static_cast<int>(rng.nextBounded(kAccounts));
        if (to == from) to = (to + 1) % kAccounts;
        domain.begin();
        const word_t f = decodeVal(domain.readEncoded(&acct[from]));
        const word_t g = decodeVal(domain.readEncoded(&acct[to]));
        if (f == 0) continue;
        domain.addEntry(&acct[from], encodeVal(f), encodeVal(f - 1));
        domain.addEntry(&acct[to], encodeVal(g), encodeVal(g + 1));
        domain.execute(false);  // failure is fine; atomicity is the point
      }
    });
  }
  for (auto& th : threads) th.join();
  word_t total = 0;
  for (auto& a : acct) total += load(a);
  EXPECT_EQ(total, kInitial * kAccounts);
}

// Readers must never observe a descriptor or a torn multi-word state:
// writers set all words to the same value atomically; readers snapshot all
// words in one KCAS-read pass and re-check stability via a version word.
TEST_F(KcasTest, ReadersNeverSeeDescriptors) {
  constexpr int kWords = 4;
  AtomicWord w[kWords];
  for (auto& x : w) store(x, 0);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    ThreadGuard tg;
    for (word_t v = 1; !stop.load(); ++v) {
      domain.begin();
      for (int j = 0; j < kWords; ++j)
        domain.addEntry(&w[j], encodeVal(v - 1), encodeVal(v));
      ASSERT_EQ(domain.execute(false), ExecResult::kSucceeded);
    }
  });
  {
    ThreadGuard tg;
    for (int i = 0; i < 30000; ++i) {
      const word_t raw = domain.readEncoded(&w[i % kWords]);
      ASSERT_FALSE(isDescriptor(raw));
    }
  }
  stop.store(true);
  writer.join();
}

// ---------------------------------------------------------------------------
// Descriptor-injection races against the k=1 fast paths: a fast-path commit
// repeatedly lands on words that hold live KCAS/DCSS descriptors published
// by a concurrent general-path writer, so it must help them to completion
// (never spin, never tear). Counters encode who did what: X's low half is
// only ever incremented by the general-path writer (which keeps it equal to
// Y), the high half only by the fast path.
// ---------------------------------------------------------------------------

TEST_F(KcasTest, K1FastPathVsConcurrentHelper) {
  constexpr word_t kHigh = 1u << 20;
  constexpr int kOps = 20000;
  AtomicWord x, y;
  store(x, 0);
  store(y, 0);
  std::thread general([&] {
    ThreadGuard tg;
    for (int i = 0; i < kOps; ++i) {
      for (;;) {
        const word_t xv = decodeVal(domain.readEncoded(&x));
        const word_t yv = decodeVal(domain.readEncoded(&y));
        ASSERT_EQ(xv % kHigh, yv);  // snapshot may be stale but never torn low
        domain.begin();
        domain.addEntry(&x, encodeVal(xv), encodeVal(xv + 1));
        domain.addEntry(&y, encodeVal(yv), encodeVal(yv + 1));
        if (domain.execute(false) == ExecResult::kSucceeded) break;
      }
    }
  });
  {
    ThreadGuard tg;
    for (int i = 0; i < kOps; ++i) {
      for (;;) {
        const word_t xv = decodeVal(domain.readEncoded(&x));
        domain.begin();
        domain.addEntry(&x, encodeVal(xv), encodeVal(xv + kHigh));
        if (domain.execute(false) == ExecResult::kSucceeded) break;
      }
    }
  }
  general.join();
  EXPECT_EQ(load(x) / kHigh, static_cast<word_t>(kOps));   // fast-path ops
  EXPECT_EQ(load(x) % kHigh, static_cast<word_t>(kOps));   // general ops
  EXPECT_EQ(load(y), static_cast<word_t>(kOps));
}

TEST_F(KcasTest, K1PathFastPathVsGuardChurnAndPromotion) {
  // Fast-path B writer: increments X's low half guarded on version V being
  // unchanged. Churn writer: bumps V and X's high half together through the
  // general path. Every fast-path failure is classified and, to also cover
  // the §3.5 escalation against the fast paths, periodically resolved by
  // promoting the path and locking V (strong path) instead of re-validating.
  constexpr word_t kHigh = 1u << 20;
  constexpr int kOps = 15000;
  AtomicWord x, v;
  store(x, 0);
  store(v, 100);
  std::thread churn([&] {
    ThreadGuard tg;
    for (int i = 0; i < kOps; ++i) {
      for (;;) {
        const word_t xv = decodeVal(domain.readEncoded(&x));
        const word_t vv = decodeVal(domain.readEncoded(&v));
        domain.begin();
        domain.addEntry(&x, encodeVal(xv), encodeVal(xv + kHigh));
        domain.addVerEntry(&v, encodeVal(vv), encodeVal(vv + 2));
        if (domain.execute(false) == ExecResult::kSucceeded) break;
      }
    }
  });
  {
    ThreadGuard tg;
    Xoshiro256 rng(42);
    for (int i = 0; i < kOps; ++i) {
      for (int attempt = 0;; ++attempt) {
        const word_t vv = decodeVal(domain.readEncoded(&v));
        const word_t xv = decodeVal(domain.readEncoded(&x));
        domain.begin();
        domain.addPath(&v, encodeVal(vv));
        domain.addEntry(&x, encodeVal(xv), encodeVal(xv + 1));
        const bool strong = attempt > 0 && rng.nextBounded(4) == 0;
        if (strong) {
          // §3.5 strong path: lock the visited version instead of
          // validating it (never mark-doomed here: versions stay even).
          ASSERT_FALSE(domain.stagedMarkDoomed());
          domain.promotePathToEntries();
          ASSERT_EQ(domain.numStagedPath(), 0);
          if (domain.execute(false) == ExecResult::kSucceeded) break;
        } else {
          const ExecResult r = domain.execute(true);
          if (r == ExecResult::kSucceeded) break;
          // kFailedValue means X itself moved (churn committed); validation
          // failures mean V moved or was locked. Either way: re-read, retry.
        }
      }
    }
  }
  churn.join();
  EXPECT_EQ(load(x) / kHigh, static_cast<word_t>(kOps));
  EXPECT_EQ(load(x) % kHigh, static_cast<word_t>(kOps));
  EXPECT_EQ(load(v), 100u + 2u * kOps);
}

}  // namespace
}  // namespace pathcas::k

// ---------------------------------------------------------------------------
// Linearizability stress (tests/lin_check.hpp) over a tiny set implemented
// directly on the KCAS commit flavours, so every fast-path variant races
// every other on shared words:
//   insert      — k=1 entry + 1 path guard            (fast path B)
//   erase, odd  — plain k=1 CAS                        (fast path A)
//   erase, even — k=2 with a version bump              (general path)
//   contains, even — k=0 validated read                (validation-only)
//   contains, odd  — helping read                      (readEncoded)
// Barrier-separated rounds + the window checker prove every interleaving
// the race actually produced was linearizable.
// ---------------------------------------------------------------------------

namespace pathcas::testing {
namespace {

using namespace pathcas::k;

class FastPathLinSet {
 public:
  using Domain = KcasDomain<16, 32>;

  FastPathLinSet() {
    for (auto& w : val_) w.store(encodeVal(0));
    gver_.store(encodeVal(100));
  }

  bool insert(std::int64_t key) {
    auto& w = val_[key];
    for (;;) {
      const word_t g = dom_.readEncoded(&gver_);
      dom_.begin();
      dom_.addPath(&gver_, g);
      dom_.addEntry(&w, encodeVal(0), encodeVal(1));
      switch (dom_.execute(true)) {
        case ExecResult::kSucceeded:
          return true;
        case ExecResult::kFailedValue:
          return false;  // already present at the commit attempt
        case ExecResult::kFailedValidation:
          break;  // guard moved or was locked: re-read and retry
      }
    }
  }

  bool erase(std::int64_t key) {
    auto& w = val_[key];
    if (key % 2 == 1) {
      // Fast path A: the erase is one CAS.
      dom_.begin();
      dom_.addEntry(&w, encodeVal(1), encodeVal(0));
      return dom_.execute(false) == ExecResult::kSucceeded;
    }
    // General path: remove the key and bump the shared guard atomically.
    for (;;) {
      const word_t g = dom_.readEncoded(&gver_);
      dom_.begin();
      dom_.addEntry(&w, encodeVal(1), encodeVal(0));
      dom_.addVerEntry(&gver_, g, encodeVal(decodeVal(g) + 2));
      if (dom_.execute(false) == ExecResult::kSucceeded) return true;
      // Failure is ambiguous (key gone, or the guard moved): a raw read of
      // the key decides, and is itself a linearization point.
      if (decodeVal(dom_.readEncoded(&w)) == 0) return false;
    }
  }

  bool contains(std::int64_t key) {
    auto& w = val_[key];
    if (key % 2 == 1) return decodeVal(dom_.readEncoded(&w)) != 0;
    for (;;) {
      const word_t g = dom_.readEncoded(&gver_);
      const bool present = decodeVal(dom_.readEncoded(&w)) != 0;
      dom_.begin();
      dom_.addPath(&gver_, g);
      if (dom_.execute(true) == ExecResult::kSucceeded) return present;
    }
  }

 private:
  Domain dom_;
  AtomicWord val_[64];
  AtomicWord gver_;
};

TEST(KcasFastPathLinearizable, MixedCommitFlavours) {
  constexpr int kThreads = 3, kRounds = 2500;
  constexpr std::int64_t kKeySpace = 8;
  FastPathLinSet set;
  std::atomic<std::uint64_t> clock{0};
  std::vector<RecordedOp> history(
      static_cast<std::size_t>(kRounds * kThreads));
  std::barrier barrier(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      ThreadGuard tg;
      Xoshiro256 rng(7000 + static_cast<std::uint64_t>(t));
      for (int r = 0; r < kRounds; ++r) {
        barrier.arrive_and_wait();
        RecordedOp rec;
        const std::int64_t k = static_cast<std::int64_t>(
            rng.nextBounded(static_cast<std::uint64_t>(kKeySpace)));
        const std::uint64_t dice = rng.nextBounded(100);
        rec.a = k;
        rec.inv = clock.fetch_add(1);
        if (dice < 40) {
          rec.kind = OpKind::kInsert;
          rec.boolResult = set.insert(k);
        } else if (dice < 80) {
          rec.kind = OpKind::kErase;
          rec.boolResult = set.erase(k);
        } else {
          rec.kind = OpKind::kContains;
          rec.boolResult = set.contains(k);
        }
        rec.res = clock.fetch_add(1);
        history[static_cast<std::size_t>(r * kThreads + t)] = std::move(rec);
      }
    });
  }
  for (auto& w : workers) w.join();

  std::set<LinState> states = {0};
  for (int r = 0; r < kRounds; ++r) {
    const std::vector<RecordedOp> window(
        history.begin() + static_cast<std::ptrdiff_t>(r * kThreads),
        history.begin() + static_cast<std::ptrdiff_t>((r + 1) * kThreads));
    states = linearizeWindow(window, states);
    ASSERT_FALSE(states.empty())
        << "history not linearizable at window " << r << ": "
        << describeWindow(window);
  }
  LinState finalMask = 0;
  for (std::int64_t k = 0; k < kKeySpace; ++k) {
    if (set.contains(k)) finalMask |= LinState{1} << k;
  }
  EXPECT_TRUE(states.count(finalMask))
      << "final contents not among the linearizable outcomes";
}

}  // namespace
}  // namespace pathcas::testing
