// Tests for the KCAS substrate: word encoding, single- and multi-threaded
// KCAS semantics, helping via readEncoded, and the validation phase at the
// descriptor level.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "kcas/kcas.hpp"
#include "kcas/word.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"

namespace pathcas::k {
namespace {

TEST(Word, TagsAreDisjoint) {
  EXPECT_TRUE(isDcss(kTagDcss));
  EXPECT_TRUE(isKcas(kTagKcas));
  EXPECT_FALSE(isDescriptor(encodeVal(12345)));
  EXPECT_FALSE(isDescriptor(0));
}

TEST(Word, ValueRoundTrip) {
  for (word_t v : {0ULL, 1ULL, 42ULL, (1ULL << 61) - 1}) {
    EXPECT_EQ(decodeVal(encodeVal(v)), v);
    EXPECT_FALSE(isDescriptor(encodeVal(v)));
  }
}

TEST(Word, RefPackingRoundTrip) {
  for (int tid : {0, 1, 17, kMaxThreads - 1}) {
    for (std::uint64_t seq : {0ULL, 1ULL, 123456789ULL, (1ULL << 45)}) {
      const word_t r = packRef(kTagKcas, tid, seq);
      EXPECT_TRUE(isKcas(r));
      EXPECT_EQ(refTid(r), tid);
      EXPECT_EQ(refSeq(r), seq);
    }
  }
}

TEST(Word, SeqStatePacking) {
  const word_t ss = packSeqState(77, State::kSucceeded);
  EXPECT_EQ(seqOf(ss), 77u);
  EXPECT_EQ(stateOf(ss), State::kSucceeded);
}

using Domain = KcasDomain<16, 32>;

class KcasTest : public ::testing::Test {
 protected:
  Domain domain;  // isolated domain per test
  static word_t load(AtomicWord& w) { return decodeVal(w.load()); }
  static void store(AtomicWord& w, word_t v) { w.store(encodeVal(v)); }
};

TEST_F(KcasTest, SingleWordSucceeds) {
  AtomicWord a;
  store(a, 5);
  domain.begin();
  domain.addEntry(&a, encodeVal(5), encodeVal(9));
  EXPECT_EQ(domain.execute(false), ExecResult::kSucceeded);
  EXPECT_EQ(load(a), 9u);
}

TEST_F(KcasTest, SingleWordFailsOnWrongOld) {
  AtomicWord a;
  store(a, 5);
  domain.begin();
  domain.addEntry(&a, encodeVal(6), encodeVal(9));
  EXPECT_NE(domain.execute(false), ExecResult::kSucceeded);
  EXPECT_EQ(load(a), 5u);
}

TEST_F(KcasTest, MultiWordAllOrNothing) {
  AtomicWord w[4];
  for (int i = 0; i < 4; ++i) store(w[i], 10 + i);
  // One stale old value: nothing may change.
  domain.begin();
  for (int i = 0; i < 4; ++i)
    domain.addEntry(&w[i], encodeVal(i == 2 ? 99 : 10 + i), encodeVal(50 + i));
  EXPECT_NE(domain.execute(false), ExecResult::kSucceeded);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(load(w[i]), 10u + i);
  // All correct: everything changes.
  domain.begin();
  for (int i = 0; i < 4; ++i)
    domain.addEntry(&w[i], encodeVal(10 + i), encodeVal(50 + i));
  EXPECT_EQ(domain.execute(false), ExecResult::kSucceeded);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(load(w[i]), 50u + i);
}

TEST_F(KcasTest, UnsortedArgumentsAreSortedInternally) {
  AtomicWord w[3];
  for (int i = 0; i < 3; ++i) store(w[i], i);
  domain.begin();
  domain.addEntry(&w[2], encodeVal(2), encodeVal(12));
  domain.addEntry(&w[0], encodeVal(0), encodeVal(10));
  domain.addEntry(&w[1], encodeVal(1), encodeVal(11));
  EXPECT_EQ(domain.execute(false), ExecResult::kSucceeded);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(load(w[i]), 10u + i);
}

TEST_F(KcasTest, ReadEncodedSeesLogicalValue) {
  AtomicWord a;
  store(a, 7);
  EXPECT_EQ(decodeVal(domain.readEncoded(&a)), 7u);
}

TEST_F(KcasTest, ZeroEntryExecuteSucceeds) {
  domain.begin();
  EXPECT_EQ(domain.execute(false), ExecResult::kSucceeded);
}

TEST_F(KcasTest, ValidationFailsWhenVersionChanged) {
  AtomicWord target, ver;
  store(target, 1);
  store(ver, 100);
  domain.begin();
  domain.addEntry(&target, encodeVal(1), encodeVal(2));
  domain.addPath(&ver, encodeVal(100));
  store(ver, 102);  // concurrent change between visit and execute
  EXPECT_NE(domain.execute(true), ExecResult::kSucceeded);
  EXPECT_EQ(load(target), 1u);
}

TEST_F(KcasTest, ValidationFailsOnMarkedVersion) {
  AtomicWord target, ver;
  store(target, 1);
  store(ver, 101);  // bit 0 set: marked
  domain.begin();
  domain.addEntry(&target, encodeVal(1), encodeVal(2));
  domain.addPath(&ver, encodeVal(101));
  EXPECT_NE(domain.execute(true), ExecResult::kSucceeded);
  EXPECT_EQ(load(target), 1u);
}

TEST_F(KcasTest, ValidationPassesWhenUnchanged) {
  AtomicWord target, ver;
  store(target, 1);
  store(ver, 100);
  domain.begin();
  domain.addEntry(&target, encodeVal(1), encodeVal(2));
  domain.addPath(&ver, encodeVal(100));
  EXPECT_EQ(domain.execute(true), ExecResult::kSucceeded);
  EXPECT_EQ(load(target), 2u);
}

TEST_F(KcasTest, OwnLockedVersionPassesValidation) {
  // The parent pattern: a node is both visited and has its version entry
  // added; during phase 1 the version word holds OUR reference, which
  // Algorithm 2 line 3 treats as valid.
  AtomicWord ver;
  store(ver, 100);
  domain.begin();
  domain.addEntry(&ver, encodeVal(100), encodeVal(102));
  domain.addPath(&ver, encodeVal(100));
  EXPECT_EQ(domain.execute(true), ExecResult::kSucceeded);
  EXPECT_EQ(load(ver), 102u);
}

TEST_F(KcasTest, PromotePathToEntriesLocksVersions) {
  AtomicWord target, ver;
  store(target, 1);
  store(ver, 100);
  domain.begin();
  domain.addEntry(&target, encodeVal(1), encodeVal(2));
  domain.addPath(&ver, encodeVal(100));
  domain.promotePathToEntries();
  EXPECT_EQ(domain.numStagedPath(), 0);
  EXPECT_EQ(domain.numStagedEntries(), 2);
  EXPECT_EQ(domain.execute(false), ExecResult::kSucceeded);
  EXPECT_EQ(load(target), 2u);
  EXPECT_EQ(load(ver), 100u);  // version "changed" to itself
}

TEST_F(KcasTest, PromoteSkipsVersionsWithRealEntries) {
  AtomicWord ver;
  store(ver, 100);
  domain.begin();
  domain.addEntry(&ver, encodeVal(100), encodeVal(102));
  domain.addPath(&ver, encodeVal(100));
  domain.promotePathToEntries();
  EXPECT_EQ(domain.numStagedEntries(), 1);  // no self-conflicting duplicate
  EXPECT_EQ(domain.execute(false), ExecResult::kSucceeded);
  EXPECT_EQ(load(ver), 102u);
}

TEST_F(KcasTest, StagingPreservedAcrossFailedExecute) {
  AtomicWord a;
  store(a, 5);
  domain.begin();
  domain.addEntry(&a, encodeVal(4), encodeVal(9));
  EXPECT_NE(domain.execute(false), ExecResult::kSucceeded);
  // Replay (§3.5: spurious retries reuse the exact same arguments).
  store(a, 4);
  EXPECT_EQ(domain.execute(false), ExecResult::kSucceeded);
  EXPECT_EQ(load(a), 9u);
}

// ---------------------------------------------------------------------------
// Concurrency: atomicity and lock-freedom smoke under oversubscription.
// ---------------------------------------------------------------------------

// Writers atomically increment K counters together; the counters must remain
// equal at every successful read-snapshot and at the end.
TEST_F(KcasTest, ConcurrentCountersStayInSync) {
  constexpr int kWords = 5, kThreads = 4, kOpsPerThread = 4000;
  AtomicWord w[kWords];
  for (auto& x : w) store(x, 0);
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> successes{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ThreadGuard tg;
      for (int i = 0; i < kOpsPerThread; ++i) {
        for (;;) {
          domain.begin();
          word_t olds[kWords];
          for (int j = 0; j < kWords; ++j) {
            olds[j] = decodeVal(domain.readEncoded(&w[j]));
            domain.addEntry(&w[j], encodeVal(olds[j]), encodeVal(olds[j] + 1));
          }
          if (domain.execute(false) == ExecResult::kSucceeded) {
            successes.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(successes.load(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  for (int j = 0; j < kWords; ++j) {
    EXPECT_EQ(load(w[j]), static_cast<word_t>(kThreads) * kOpsPerThread);
  }
}

// Transfer test: writers move amounts between random account pairs keeping
// the total constant; concurrent readers take two-account snapshots via
// validated reads (path over a shared version word would be PathCAS; here we
// verify the raw KCAS keeps totals).
TEST_F(KcasTest, ConcurrentTransfersPreserveTotal) {
  constexpr int kAccounts = 8, kThreads = 4, kOps = 4000;
  constexpr word_t kInitial = 1000;
  AtomicWord acct[kAccounts];
  for (auto& a : acct) store(a, kInitial);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ThreadGuard tg;
      pathcas::Xoshiro256 rng(1000 + t);
      for (int i = 0; i < kOps; ++i) {
        const int from = static_cast<int>(rng.nextBounded(kAccounts));
        int to = static_cast<int>(rng.nextBounded(kAccounts));
        if (to == from) to = (to + 1) % kAccounts;
        domain.begin();
        const word_t f = decodeVal(domain.readEncoded(&acct[from]));
        const word_t g = decodeVal(domain.readEncoded(&acct[to]));
        if (f == 0) continue;
        domain.addEntry(&acct[from], encodeVal(f), encodeVal(f - 1));
        domain.addEntry(&acct[to], encodeVal(g), encodeVal(g + 1));
        domain.execute(false);  // failure is fine; atomicity is the point
      }
    });
  }
  for (auto& th : threads) th.join();
  word_t total = 0;
  for (auto& a : acct) total += load(a);
  EXPECT_EQ(total, kInitial * kAccounts);
}

// Readers must never observe a descriptor or a torn multi-word state:
// writers set all words to the same value atomically; readers snapshot all
// words in one KCAS-read pass and re-check stability via a version word.
TEST_F(KcasTest, ReadersNeverSeeDescriptors) {
  constexpr int kWords = 4;
  AtomicWord w[kWords];
  for (auto& x : w) store(x, 0);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    ThreadGuard tg;
    for (word_t v = 1; !stop.load(); ++v) {
      domain.begin();
      for (int j = 0; j < kWords; ++j)
        domain.addEntry(&w[j], encodeVal(v - 1), encodeVal(v));
      ASSERT_EQ(domain.execute(false), ExecResult::kSucceeded);
    }
  });
  {
    ThreadGuard tg;
    for (int i = 0; i < 30000; ++i) {
      const word_t raw = domain.readEncoded(&w[i % kWords]);
      ASSERT_FALSE(isDescriptor(raw));
    }
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace pathcas::k
