// Tests for the PathCAS relaxed AVL tree: oracle semantics, rotation
// correctness (all four cases), parent-pointer and height invariants,
// balance convergence (Bougé), and concurrent keysum stress.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "trees/int_avl_pathcas.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"

namespace pathcas::ds {
namespace {

using Avl = IntAvlPathCas<std::int64_t, std::int64_t>;

TEST(IntAvl, EmptyTreeBasics) {
  Avl t;
  EXPECT_FALSE(t.contains(5));
  EXPECT_FALSE(t.erase(5));
  EXPECT_EQ(t.size(), 0u);
}

TEST(IntAvl, InsertContainsErase) {
  Avl t;
  EXPECT_TRUE(t.insert(10, 100));
  EXPECT_TRUE(t.contains(10));
  EXPECT_FALSE(t.insert(10, 200));
  EXPECT_EQ(t.get(10).value(), 100);
  EXPECT_TRUE(t.erase(10));
  EXPECT_FALSE(t.contains(10));
  t.checkInvariants(/*requireStrictBalance=*/true);
}

// Ascending insertion triggers repeated left-rotations (the classic AVL
// stress); the result must be logarithmic in height.
TEST(IntAvl, AscendingInsertionsStayBalanced) {
  Avl t;
  constexpr std::int64_t kN = 1024;
  for (std::int64_t k = 0; k < kN; ++k) ASSERT_TRUE(t.insert(k, k));
  t.rebalanceToConvergence();
  const TreeStats s = t.checkInvariants(/*requireStrictBalance=*/true);
  EXPECT_EQ(s.size, static_cast<std::uint64_t>(kN));
  // Strict AVL height bound: 1.44 * log2(n) + 2.
  EXPECT_LE(s.height, static_cast<std::uint64_t>(1.45 * std::log2(kN) + 2));
}

TEST(IntAvl, DescendingInsertionsStayBalanced) {
  Avl t;
  constexpr std::int64_t kN = 1024;
  for (std::int64_t k = kN; k > 0; --k) ASSERT_TRUE(t.insert(k, k));
  t.rebalanceToConvergence();
  const TreeStats s = t.checkInvariants(true);
  EXPECT_LE(s.height, static_cast<std::uint64_t>(1.45 * std::log2(kN) + 2));
}

// Zig-zag insertion orders exercise the double rotations.
TEST(IntAvl, ZigZagInsertionsExerciseDoubleRotations) {
  Avl t;
  // Insert pattern that creates left-right and right-left shapes.
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 256; ++i) {
    keys.push_back(1000 - i * 3);
    keys.push_back(i * 3 + 1);
    keys.push_back(i * 3 + 2);
  }
  std::set<std::int64_t> oracle;
  for (auto k : keys) ASSERT_EQ(t.insert(k, k), oracle.insert(k).second);
  t.rebalanceToConvergence();
  const TreeStats s = t.checkInvariants(true);
  EXPECT_EQ(s.size, oracle.size());
}

TEST(IntAvl, DeletionsKeepInvariants) {
  Avl t;
  std::set<std::int64_t> oracle;
  for (std::int64_t k = 0; k < 512; ++k) {
    t.insert(k, k);
    oracle.insert(k);
  }
  Xoshiro256 rng(17);
  for (int i = 0; i < 400; ++i) {
    const std::int64_t k = static_cast<std::int64_t>(rng.nextBounded(512));
    ASSERT_EQ(t.erase(k), oracle.erase(k) > 0);
  }
  t.rebalanceToConvergence();
  const TreeStats s = t.checkInvariants(true);
  EXPECT_EQ(s.size, oracle.size());
}

TEST(IntAvl, RandomOpsMatchOracle) {
  Avl t;
  std::set<std::int64_t> oracle;
  Xoshiro256 rng(99);
  for (int i = 0; i < 20000; ++i) {
    const std::int64_t k = static_cast<std::int64_t>(rng.nextBounded(400));
    switch (rng.nextBounded(3)) {
      case 0:
        ASSERT_EQ(t.insert(k, k * 3), oracle.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(t.erase(k), oracle.erase(k) > 0);
        break;
      default:
        ASSERT_EQ(t.contains(k), oracle.count(k) > 0);
    }
    if (i % 5000 == 4999) t.checkInvariants();  // relaxed invariants mid-run
  }
  t.rebalanceToConvergence();
  const TreeStats s = t.checkInvariants(true);
  EXPECT_EQ(s.size, oracle.size());
  std::vector<std::int64_t> keys;
  t.forEach([&](std::int64_t k, std::int64_t v) {
    keys.push_back(k);
    EXPECT_EQ(v, k * 3);
  });
  EXPECT_TRUE(
      std::equal(keys.begin(), keys.end(), oracle.begin(), oracle.end()));
}

TEST(IntAvl, HeightTracksLogOfSizeUnderChurn) {
  Avl t;
  Xoshiro256 rng(5);
  constexpr std::int64_t kRange = 4096;
  for (int i = 0; i < 40000; ++i) {
    const std::int64_t k = static_cast<std::int64_t>(rng.nextBounded(kRange));
    if (rng.nextBounded(2)) {
      t.insert(k, k);
    } else {
      t.erase(k);
    }
  }
  t.rebalanceToConvergence();
  const TreeStats s = t.checkInvariants(true);
  if (s.size > 16) {
    EXPECT_LE(s.height, static_cast<std::uint64_t>(
                            1.45 * std::log2(double(s.size)) + 3));
  }
}

// ---------------------------------------------------------------------------
// Concurrency.
// ---------------------------------------------------------------------------

struct AvlStressParams {
  int threads;
  int opsPerThread;
  std::int64_t keyRange;
  bool useHtmFastPath;
};

class IntAvlStress : public ::testing::TestWithParam<AvlStressParams> {};

TEST_P(IntAvlStress, KeysumInvariantHolds) {
  const auto p = GetParam();
  Avl t(IntBstOptions{.useHtmFastPath = p.useHtmFastPath});
  std::int64_t prefillSum = 0;
  {
    Xoshiro256 rng(1);
    for (std::int64_t i = 0; i < p.keyRange / 2; ++i) {
      const auto k = static_cast<std::int64_t>(rng.nextBounded(p.keyRange));
      if (t.insert(k, k)) prefillSum += k;
    }
  }
  std::vector<std::thread> workers;
  std::vector<std::int64_t> deltas(p.threads, 0);
  for (int w = 0; w < p.threads; ++w) {
    workers.emplace_back([&, w] {
      ThreadGuard tg;
      Xoshiro256 rng(200 + w);
      std::int64_t delta = 0;
      for (int i = 0; i < p.opsPerThread; ++i) {
        const auto k = static_cast<std::int64_t>(rng.nextBounded(p.keyRange));
        switch (rng.nextBounded(4)) {
          case 0:
            if (t.insert(k, k)) delta += k;
            break;
          case 1:
            if (t.erase(k)) delta -= k;
            break;
          default:
            (void)t.contains(k);
        }
      }
      deltas[w] = delta;
    });
  }
  for (auto& th : workers) th.join();
  std::int64_t expected = prefillSum;
  for (auto d : deltas) expected += d;
  // Relaxed invariants must hold immediately (order, parents, no marked
  // reachable nodes)...
  const TreeStats stats = t.checkInvariants(false);
  EXPECT_EQ(stats.keySum, expected);
  // ...and the tree must converge to a strict AVL tree once quiescent.
  t.rebalanceToConvergence();
  t.checkInvariants(true);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IntAvlStress,
    ::testing::Values(AvlStressParams{2, 6000, 64, false},
                      AvlStressParams{4, 4000, 16, false},
                      AvlStressParams{4, 4000, 2048, false},
                      AvlStressParams{8, 1500, 256, false},
                      AvlStressParams{4, 2500, 256, true}),
    [](const auto& info) {
      const auto& p = info.param;
      return "t" + std::to_string(p.threads) + "_k" +
             std::to_string(p.keyRange) + (p.useHtmFastPath ? "_htm" : "");
    });

TEST(IntAvlConcurrent, StablePresentKeysAlwaysFound) {
  Avl t;
  const std::vector<std::int64_t> stable = {100, 200, 300, 400, 500};
  for (auto k : stable) ASSERT_TRUE(t.insert(k, k));
  std::atomic<bool> stop{false};
  std::vector<std::thread> churn;
  for (int w = 0; w < 3; ++w) {
    churn.emplace_back([&, w] {
      ThreadGuard tg;
      Xoshiro256 rng(31 + w);
      while (!stop.load(std::memory_order_relaxed)) {
        std::int64_t k = static_cast<std::int64_t>(rng.nextBounded(600));
        if (k % 100 == 0) ++k;
        if (rng.nextBounded(2)) {
          t.insert(k, k);
        } else {
          t.erase(k);
        }
      }
    });
  }
  {
    ThreadGuard tg;
    for (int i = 0; i < 15000; ++i) {
      ASSERT_TRUE(t.contains(stable[i % stable.size()]));
    }
  }
  stop.store(true);
  for (auto& th : churn) th.join();
  t.checkInvariants(false);
}

}  // namespace
}  // namespace pathcas::ds
