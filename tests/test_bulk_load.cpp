// Parallel bulk load (ShardedMap::bulkLoad): the parallel build must be
// indistinguishable from the serial insert loop it replaces — same size,
// same keysum, identical ascending iteration — for every shard count ×
// worker count, including the degenerate inputs (empty, single key,
// duplicate-laden slices). Also checks the returned keysum contract (sum of
// keys actually inserted, duplicates counted once) that the bench driver's
// prefill validation depends on, and that the build lands balanced enough
// for the plain BST (median-first insertion order).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "bench_fw/adapters.hpp"
#include "service/sharded_map.hpp"
#include "trees/int_bst_pathcas.hpp"
#include "util/rand.hpp"

namespace pathcas::testing {
namespace {

using BstMap = service::ShardedMap<ds::IntBstPathCas<Key, Val>>;

/// Reference build: serial one-at-a-time inserts of the same input.
struct Reference {
  std::uint64_t size = 0;
  std::int64_t keySum = 0;
  std::vector<Key> ascending;
};

Reference referenceOf(const std::vector<Key>& keys) {
  Reference ref;
  std::set<Key> s(keys.begin(), keys.end());
  for (const Key k : s) {
    ref.keySum += k;
    ref.ascending.push_back(k);
  }
  ref.size = s.size();
  return ref;
}

void expectEquivalent(const BstMap& map, const Reference& ref,
                      std::int64_t returnedSum) {
  EXPECT_EQ(returnedSum, ref.keySum) << "bulkLoad keysum contract";
  EXPECT_EQ(map.size(), ref.size);
  EXPECT_EQ(map.keySum(), ref.keySum);
  std::vector<Key> seen;
  map.forEach([&seen](Key k, Val v) {
    EXPECT_EQ(k, v);  // bulkLoad inserts (k, k)
    seen.push_back(k);
  });
  EXPECT_EQ(seen, ref.ascending) << "iteration order/content mismatch";
  map.checkInvariants();
}

TEST(BulkLoad, EquivalentToSerialAcrossShardAndThreadCounts) {
  // A random ~60% subset of [0, 512), sorted — typical prefill shape.
  std::vector<Key> keys;
  Xoshiro256 rng(0xB111);
  for (Key k = 0; k < 512; ++k) {
    if (rng.nextBounded(100) < 60) keys.push_back(k);
  }
  const Reference ref = referenceOf(keys);
  for (int nshards : {1, 2, 3, 8}) {
    for (int nthreads : {1, 2, 4}) {
      BstMap map(nshards, 512);
      const std::int64_t sum = map.bulkLoad(keys, nthreads);
      SCOPED_TRACE("shards=" + std::to_string(nshards) +
                   " threads=" + std::to_string(nthreads));
      expectEquivalent(map, ref, sum);
    }
  }
}

TEST(BulkLoad, EmptyInput) {
  for (int nthreads : {1, 4}) {
    BstMap map(4, 64);
    EXPECT_EQ(map.bulkLoad({}, nthreads), 0);
    EXPECT_EQ(map.size(), 0u);
    map.checkInvariants();
  }
}

TEST(BulkLoad, SingleKey) {
  for (int nthreads : {1, 4}) {
    BstMap map(4, 64);
    EXPECT_EQ(map.bulkLoad({17}, nthreads), 17);
    EXPECT_EQ(map.size(), 1u);
    EXPECT_TRUE(map.contains(17));
    map.checkInvariants();
  }
}

TEST(BulkLoad, DuplicateInputSlices) {
  // Sorted input with heavy duplication, including runs that straddle shard
  // boundaries (keySpace 16 over 4 shards: boundaries at 4, 8, 12).
  const std::vector<Key> keys = {0, 0, 0, 3, 3, 4, 4, 4, 4,  7,  8,
                                 8, 9, 11, 12, 12, 12, 15, 15, 15, 15};
  ASSERT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  const Reference ref = referenceOf(keys);
  for (int nshards : {1, 4}) {
    for (int nthreads : {1, 3}) {
      BstMap map(nshards, 16);
      const std::int64_t sum = map.bulkLoad(keys, nthreads);
      SCOPED_TRACE("shards=" + std::to_string(nshards) +
                   " threads=" + std::to_string(nthreads));
      expectEquivalent(map, ref, sum);
    }
  }
}

TEST(BulkLoad, NonEmptyOnTopOfExistingContents) {
  // bulkLoad is additive: keys already present are skipped (insertIfAbsent)
  // and excluded from the returned keysum.
  BstMap map(2, 64);
  ASSERT_TRUE(map.insert(10, 10));
  ASSERT_TRUE(map.insert(40, 40));
  const std::int64_t sum = map.bulkLoad({5, 10, 40, 50}, 2);
  EXPECT_EQ(sum, 5 + 50);
  EXPECT_EQ(map.size(), 4u);
  EXPECT_EQ(map.keySum(), 5 + 10 + 40 + 50);
  map.checkInvariants();
}

TEST(BulkLoad, MedianFirstOrderKeepsBstShallow) {
  // A full sorted load of one shard must NOT degenerate into a chain: the
  // median-first order keeps the plain BST near log2(n) average depth.
  constexpr Key kN = 1024;
  std::vector<Key> keys;
  for (Key k = 0; k < kN; ++k) keys.push_back(k);
  service::ShardedMap<ds::IntBstPathCas<Key, Val>> map(1, kN);
  ASSERT_EQ(map.bulkLoad(keys, 1), (kN - 1) * kN / 2);
  EXPECT_EQ(map.size(), static_cast<std::uint64_t>(kN));
  // A sorted serial insert would average ~kN/2 (512) depth; the balanced
  // build averages ~log2(1024) = 10. Generous slack for chunk interleaving.
  EXPECT_LT(map.shardStats(0).avgKeyDepth, 20.0);
  map.checkInvariants();
}

TEST(BulkLoad, ParallelBuildStaysShallowPerShard) {
  // Same bound under multiple shards and workers: chunk stealing must not
  // reorder a shard's feed badly enough to degenerate any shard's tree.
  constexpr Key kN = 4096;
  std::vector<Key> keys;
  for (Key k = 0; k < kN; ++k) keys.push_back(k);
  service::ShardedMap<ds::IntBstPathCas<Key, Val>> map(4, kN);
  ASSERT_EQ(map.bulkLoad(keys, 4), (kN - 1) * kN / 2);
  for (int s = 0; s < 4; ++s) {
    EXPECT_LT(map.shardStats(s).avgKeyDepth, 22.0) << "shard " << s;
  }
  map.checkInvariants();
}

}  // namespace
}  // namespace pathcas::testing
