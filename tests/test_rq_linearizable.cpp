// Linearizability stress for validated range queries (tests/lin_check.hpp):
// worker threads hammer a tiny key space with racing insert/erase/contains/
// rangeQuery in barrier-separated rounds, recording timestamped results; the
// checker then verifies that EVERY window admits a sequential interleaving —
// in particular that every range-query result is consistent with some
// instantaneous abstract set, which is exactly the atomic-snapshot guarantee
// rangeQuery claims. Runs against all five PathCAS ordered structures.
//
// Also contains direct unit tests of the checker itself (it must accept
// known-linearizable windows and reject known-broken ones — a checker that
// accepts everything would make the stress vacuous).
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "lin_check.hpp"
#include "structs/abtree_pathcas.hpp"
#include "structs/list_pathcas.hpp"
#include "structs/skiplist_pathcas.hpp"
#include "trees/int_avl_pathcas.hpp"
#include "trees/int_bst_pathcas.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"

namespace pathcas::testing {
namespace {

// ---------------------------------------------------------------------------
// Checker self-tests.
// ---------------------------------------------------------------------------

RecordedOp op(OpKind kind, std::int64_t a, bool result, std::uint64_t inv,
              std::uint64_t res) {
  RecordedOp o;
  o.kind = kind;
  o.a = a;
  o.boolResult = result;
  o.inv = inv;
  o.res = res;
  return o;
}

RecordedOp rq(std::int64_t lo, std::int64_t hi,
              std::vector<std::int64_t> keys, std::uint64_t inv,
              std::uint64_t res) {
  RecordedOp o;
  o.kind = OpKind::kRangeQuery;
  o.a = lo;
  o.b = hi;
  o.keysResult = std::move(keys);
  o.inv = inv;
  o.res = res;
  return o;
}

TEST(LinCheck, AcceptsSequentialHistory) {
  const std::set<LinState> pre = {0};
  // insert(3)=T strictly before contains(3)=T.
  const auto post = linearizeWindow(
      {op(OpKind::kInsert, 3, true, 0, 1), op(OpKind::kContains, 3, true, 2, 3)},
      pre);
  ASSERT_EQ(post.size(), 1u);
  EXPECT_EQ(*post.begin(), LinState{1} << 3);
}

TEST(LinCheck, RejectsResultImpossibleInRealTimeOrder) {
  const std::set<LinState> pre = {0};
  // contains(3)=F strictly AFTER insert(3)=T completed: not linearizable.
  const auto post = linearizeWindow(
      {op(OpKind::kInsert, 3, true, 0, 1),
       op(OpKind::kContains, 3, false, 2, 3)},
      pre);
  EXPECT_TRUE(post.empty());
}

TEST(LinCheck, AcceptsEitherOrderWhenConcurrent) {
  const std::set<LinState> pre = {0};
  // Same two ops, overlapping: contains may linearize first. Both final
  // states include key 3 (insert always commits).
  const auto post = linearizeWindow(
      {op(OpKind::kInsert, 3, true, 0, 3),
       op(OpKind::kContains, 3, false, 1, 2)},
      pre);
  ASSERT_EQ(post.size(), 1u);
  EXPECT_EQ(*post.begin(), LinState{1} << 3);
}

TEST(LinCheck, RangeQueryMustMatchSomeInstantaneousState) {
  // State {1, 4}; concurrent erase(1) and rq[0,7]. The scan may see
  // {1,4} or {4} — but never a half-applied {1} or {}.
  const std::set<LinState> pre = {(LinState{1} << 1) | (LinState{1} << 4)};
  EXPECT_FALSE(linearizeWindow({op(OpKind::kErase, 1, true, 0, 3),
                                rq(0, 7, {1, 4}, 1, 2)},
                               pre)
                   .empty());
  EXPECT_FALSE(linearizeWindow({op(OpKind::kErase, 1, true, 0, 3),
                                rq(0, 7, {4}, 1, 2)},
                               pre)
                   .empty());
  EXPECT_TRUE(linearizeWindow({op(OpKind::kErase, 1, true, 0, 3),
                               rq(0, 7, {1}, 1, 2)},
                              pre)
                  .empty());
  EXPECT_TRUE(linearizeWindow({op(OpKind::kErase, 1, true, 0, 3),
                               rq(0, 7, {}, 1, 2)},
                              pre)
                  .empty());
}

TEST(LinCheck, ThreadsCandidateStatesAcrossWindows) {
  // Window 1: concurrent insert(2)=T / erase(2)=T. From the empty set only
  // insert→erase is consistent (the erase's success forces it to follow the
  // insert), so the candidate set collapses back to {∅}.
  std::set<LinState> states = {0};
  states = linearizeWindow({op(OpKind::kInsert, 2, true, 0, 3),
                            op(OpKind::kErase, 2, true, 1, 2)},
                           states);
  EXPECT_EQ(states, (std::set<LinState>{0}));
  // Window 2: contains(2)=T is therefore impossible...
  EXPECT_TRUE(
      linearizeWindow({op(OpKind::kContains, 2, true, 4, 5)}, states).empty());
  // ...while contains(2)=F threads through unchanged.
  states = linearizeWindow({op(OpKind::kContains, 2, false, 4, 5)}, states);
  EXPECT_EQ(states, (std::set<LinState>{0}));
}

// ---------------------------------------------------------------------------
// The stress harness.
// ---------------------------------------------------------------------------

template <typename SetT>
void runRqLinStress(int threads, int rounds, std::int64_t keySpace,
                    std::uint64_t seed) {
  ASSERT_LE(keySpace, 64);  // LinState is a 64-bit membership mask
  SetT set;
  std::atomic<std::uint64_t> clock{0};
  std::vector<RecordedOp> history(
      static_cast<std::size_t>(rounds * threads));
  std::barrier barrier(threads);

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ThreadGuard tg;
      Xoshiro256 rng(seed * 1000003 + static_cast<std::uint64_t>(t));
      std::vector<std::pair<std::int64_t, std::int64_t>> buf;
      for (int r = 0; r < rounds; ++r) {
        barrier.arrive_and_wait();  // all of round r-1 completed
        RecordedOp rec;
        const std::int64_t k = static_cast<std::int64_t>(
            rng.nextBounded(static_cast<std::uint64_t>(keySpace)));
        const std::uint64_t dice = rng.nextBounded(100);
        if (dice < 35) {
          rec.kind = OpKind::kInsert;
          rec.a = k;
          rec.inv = clock.fetch_add(1);
          rec.boolResult = set.insert(k, k);
        } else if (dice < 70) {
          rec.kind = OpKind::kErase;
          rec.a = k;
          rec.inv = clock.fetch_add(1);
          rec.boolResult = set.erase(k);
        } else if (dice < 80) {
          rec.kind = OpKind::kContains;
          rec.a = k;
          rec.inv = clock.fetch_add(1);
          rec.boolResult = set.contains(k);
        } else {
          rec.kind = OpKind::kRangeQuery;
          rec.a = k;
          rec.b = k + static_cast<std::int64_t>(rng.nextBounded(
                          static_cast<std::uint64_t>(keySpace - k)));
          buf.clear();
          rec.inv = clock.fetch_add(1);
          set.rangeQuery(rec.a, rec.b, buf);
          for (const auto& [bk, bv] : buf) {
            EXPECT_EQ(bk, bv);  // torn-value detector: we only insert (k, k)
            rec.keysResult.push_back(bk);
          }
        }
        rec.res = clock.fetch_add(1);
        history[static_cast<std::size_t>(r * threads + t)] = std::move(rec);
      }
    });
  }
  for (auto& w : workers) w.join();

  // Replay window by window, threading the set of possible abstract states.
  std::set<LinState> states = {0};
  for (int r = 0; r < rounds; ++r) {
    const std::vector<RecordedOp> window(
        history.begin() + static_cast<std::ptrdiff_t>(r * threads),
        history.begin() + static_cast<std::ptrdiff_t>((r + 1) * threads));
    states = linearizeWindow(window, states);
    ASSERT_FALSE(states.empty())
        << "history not linearizable at window " << r << ": "
        << describeWindow(window);
  }

  // The structure's actual final contents must be one of the candidates.
  std::vector<std::pair<std::int64_t, std::int64_t>> finalKeys;
  set.rangeQuery(0, keySpace - 1, finalKeys);
  LinState finalMask = 0;
  for (const auto& [fk, fv] : finalKeys) finalMask |= LinState{1} << fk;
  EXPECT_TRUE(states.count(finalMask))
      << "final contents (mask " << finalMask
      << ") not among the linearizable outcomes";
}

template <typename SetT>
class RqLinearizable : public ::testing::Test {};

using RqSets =
    ::testing::Types<ds::IntBstPathCas<>, ds::IntAvlPathCas<>,
                     ds::SkipListPathCas<>, ds::ListPathCas<>,
                     ds::AbTreePathCas<>>;

class RqSetNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    std::string n = T::name();
    for (auto& c : n) {
      if (c == '-') c = '_';
    }
    return n;
  }
};

TYPED_TEST_SUITE(RqLinearizable, RqSets, RqSetNames);

TYPED_TEST(RqLinearizable, WindowedHistoryUnderChurn) {
  runRqLinStress<TypeParam>(/*threads=*/4, /*rounds=*/2500, /*keySpace=*/8,
                            /*seed=*/0x5eed0001);
}

TYPED_TEST(RqLinearizable, HighContentionTinyKeySpace) {
  runRqLinStress<TypeParam>(/*threads=*/3, /*rounds=*/2500, /*keySpace=*/3,
                            /*seed=*/0x5eed0002);
}

}  // namespace
}  // namespace pathcas::testing
