// Linearizability stress for validated range queries: the shared windowed
// harness (tests/lin_stress.hpp, checker in tests/lin_check.hpp) run against
// all five PathCAS ordered structures. The sharded service frontend gets the
// same treatment in test_sharded_map.cpp.
//
// Also contains direct unit tests of the checker itself (it must accept
// known-linearizable windows and reject known-broken ones — a checker that
// accepts everything would make the stress vacuous).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "lin_check.hpp"
#include "lin_stress.hpp"
#include "structs/abtree_pathcas.hpp"
#include "structs/list_pathcas.hpp"
#include "structs/skiplist_pathcas.hpp"
#include "trees/int_avl_pathcas.hpp"
#include "trees/int_bst_pathcas.hpp"

namespace pathcas::testing {
namespace {

// ---------------------------------------------------------------------------
// Checker self-tests.
// ---------------------------------------------------------------------------

RecordedOp op(OpKind kind, std::int64_t a, bool result, std::uint64_t inv,
              std::uint64_t res) {
  RecordedOp o;
  o.kind = kind;
  o.a = a;
  o.boolResult = result;
  o.inv = inv;
  o.res = res;
  return o;
}

RecordedOp rq(std::int64_t lo, std::int64_t hi,
              std::vector<std::int64_t> keys, std::uint64_t inv,
              std::uint64_t res) {
  RecordedOp o;
  o.kind = OpKind::kRangeQuery;
  o.a = lo;
  o.b = hi;
  o.keysResult = std::move(keys);
  o.inv = inv;
  o.res = res;
  return o;
}

TEST(LinCheck, AcceptsSequentialHistory) {
  const std::set<LinState> pre = {0};
  // insert(3)=T strictly before contains(3)=T.
  const auto post = linearizeWindow(
      {op(OpKind::kInsert, 3, true, 0, 1), op(OpKind::kContains, 3, true, 2, 3)},
      pre);
  ASSERT_EQ(post.size(), 1u);
  EXPECT_EQ(*post.begin(), LinState{1} << 3);
}

TEST(LinCheck, RejectsResultImpossibleInRealTimeOrder) {
  const std::set<LinState> pre = {0};
  // contains(3)=F strictly AFTER insert(3)=T completed: not linearizable.
  const auto post = linearizeWindow(
      {op(OpKind::kInsert, 3, true, 0, 1),
       op(OpKind::kContains, 3, false, 2, 3)},
      pre);
  EXPECT_TRUE(post.empty());
}

TEST(LinCheck, AcceptsEitherOrderWhenConcurrent) {
  const std::set<LinState> pre = {0};
  // Same two ops, overlapping: contains may linearize first. Both final
  // states include key 3 (insert always commits).
  const auto post = linearizeWindow(
      {op(OpKind::kInsert, 3, true, 0, 3),
       op(OpKind::kContains, 3, false, 1, 2)},
      pre);
  ASSERT_EQ(post.size(), 1u);
  EXPECT_EQ(*post.begin(), LinState{1} << 3);
}

TEST(LinCheck, RangeQueryMustMatchSomeInstantaneousState) {
  // State {1, 4}; concurrent erase(1) and rq[0,7]. The scan may see
  // {1,4} or {4} — but never a half-applied {1} or {}.
  const std::set<LinState> pre = {(LinState{1} << 1) | (LinState{1} << 4)};
  EXPECT_FALSE(linearizeWindow({op(OpKind::kErase, 1, true, 0, 3),
                                rq(0, 7, {1, 4}, 1, 2)},
                               pre)
                   .empty());
  EXPECT_FALSE(linearizeWindow({op(OpKind::kErase, 1, true, 0, 3),
                                rq(0, 7, {4}, 1, 2)},
                               pre)
                   .empty());
  EXPECT_TRUE(linearizeWindow({op(OpKind::kErase, 1, true, 0, 3),
                               rq(0, 7, {1}, 1, 2)},
                              pre)
                  .empty());
  EXPECT_TRUE(linearizeWindow({op(OpKind::kErase, 1, true, 0, 3),
                               rq(0, 7, {}, 1, 2)},
                              pre)
                  .empty());
}

TEST(LinCheck, ThreadsCandidateStatesAcrossWindows) {
  // Window 1: concurrent insert(2)=T / erase(2)=T. From the empty set only
  // insert→erase is consistent (the erase's success forces it to follow the
  // insert), so the candidate set collapses back to {∅}.
  std::set<LinState> states = {0};
  states = linearizeWindow({op(OpKind::kInsert, 2, true, 0, 3),
                            op(OpKind::kErase, 2, true, 1, 2)},
                           states);
  EXPECT_EQ(states, (std::set<LinState>{0}));
  // Window 2: contains(2)=T is therefore impossible...
  EXPECT_TRUE(
      linearizeWindow({op(OpKind::kContains, 2, true, 4, 5)}, states).empty());
  // ...while contains(2)=F threads through unchanged.
  states = linearizeWindow({op(OpKind::kContains, 2, false, 4, 5)}, states);
  EXPECT_EQ(states, (std::set<LinState>{0}));
}

// ---------------------------------------------------------------------------
// The stress (harness: tests/lin_stress.hpp).
// ---------------------------------------------------------------------------

template <typename SetT>
class RqLinearizable : public ::testing::Test {};

using RqSets =
    ::testing::Types<ds::IntBstPathCas<>, ds::IntAvlPathCas<>,
                     ds::SkipListPathCas<>, ds::ListPathCas<>,
                     ds::AbTreePathCas<>>;

class RqSetNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    std::string n = T::name();
    for (auto& c : n) {
      if (c == '-') c = '_';
    }
    return n;
  }
};

TYPED_TEST_SUITE(RqLinearizable, RqSets, RqSetNames);

TYPED_TEST(RqLinearizable, WindowedHistoryUnderChurn) {
  TypeParam set;
  runRqLinStress(set, /*threads=*/4, /*rounds=*/2500, /*keySpace=*/8,
                 /*seed=*/0x5eed0001);
}

TYPED_TEST(RqLinearizable, HighContentionTinyKeySpace) {
  TypeParam set;
  runRqLinStress(set, /*threads=*/3, /*rounds=*/2500, /*keySpace=*/3,
                 /*seed=*/0x5eed0002);
}

}  // namespace
}  // namespace pathcas::testing
