// A small-history linearizability checker for concurrent set histories with
// range queries, designed around the window discipline the RQ stress tests
// use:
//
//   * Worker threads run in barrier-separated ROUNDS: within a round every
//     thread performs exactly one operation (genuinely racing the others);
//     no thread starts round r+1 before all of round r's responses. Rounds
//     therefore form totally-ordered windows, and checking the whole history
//     reduces to checking one window at a time while threading the set of
//     still-possible abstract states across windows.
//   * Within a window, operations carry invocation/response timestamps drawn
//     from one global atomic counter; op A really-precedes op B iff
//     A.res < B.inv. (Timestamps under-approximate real-time order at worst,
//     which only ever ADMITS more interleavings — the checker stays sound:
//     it never reports a violation for a linearizable history.)
//   * The per-window check is the classic exhaustive search (Wing & Gong):
//     DFS over linearization orders respecting really-precedes, replaying
//     each candidate prefix against the abstract set and pruning on any
//     result mismatch. Windows are tiny (one op per thread), so the
//     factorial worst case is a handful of permutations.
//
// Abstract states are 64-bit membership masks, so key spaces are limited to
// [0, 64) — plenty for a checker whose power comes from contention on a tiny
// key space, and small enough to memoize (mask, state) pairs.
//
// A history passes iff after every window at least one abstract state
// remains possible. On failure the caller gets the offending window for
// diagnostics.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace pathcas::testing {

enum class OpKind { kInsert, kErase, kContains, kRangeQuery };

/// One completed operation, as recorded by a stress-test worker.
struct RecordedOp {
  OpKind kind = OpKind::kContains;
  std::int64_t a = 0;  // key (point ops) or range lower bound
  std::int64_t b = 0;  // range upper bound (range queries only)
  bool boolResult = false;                 // point ops
  std::vector<std::int64_t> keysResult;    // range queries: keys returned
  std::uint64_t inv = 0, res = 0;          // global-clock timestamps
};

/// Abstract set over keys [0, 64): bit k set <=> key k present.
using LinState = std::uint64_t;

namespace lin_detail {

/// Replay `op` against `state`. Returns false if the recorded result is
/// impossible from `state`; otherwise advances `state`.
inline bool applyOp(const RecordedOp& op, LinState& state) {
  const LinState bit = LinState{1} << op.a;
  switch (op.kind) {
    case OpKind::kInsert: {
      const bool expected = (state & bit) == 0;
      if (op.boolResult != expected) return false;
      state |= bit;
      return true;
    }
    case OpKind::kErase: {
      const bool expected = (state & bit) != 0;
      if (op.boolResult != expected) return false;
      state &= ~bit;
      return true;
    }
    case OpKind::kContains:
      return op.boolResult == ((state & bit) != 0);
    case OpKind::kRangeQuery: {
      std::size_t j = 0;
      for (std::int64_t k = op.a; k <= op.b; ++k) {
        if (state & (LinState{1} << k)) {
          if (j >= op.keysResult.size() || op.keysResult[j] != k) return false;
          ++j;
        }
      }
      return j == op.keysResult.size();
    }
  }
  return false;  // unreachable
}

inline void dfs(const std::vector<RecordedOp>& ops, std::uint32_t mask,
                LinState state, std::set<std::pair<std::uint32_t, LinState>>& seen,
                std::set<LinState>& out) {
  const std::uint32_t full = (1u << ops.size()) - 1;
  if (mask == full) {
    out.insert(state);
    return;
  }
  if (!seen.insert({mask, state}).second) return;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (mask & (1u << i)) continue;
    // ops[i] may linearize next only if no other pending op really-precedes
    // it (responded before ops[i] was invoked).
    bool blocked = false;
    for (std::size_t j = 0; j < ops.size() && !blocked; ++j) {
      if (j == i || (mask & (1u << j))) continue;
      blocked = ops[j].res < ops[i].inv;
    }
    if (blocked) continue;
    LinState next = state;
    if (applyOp(ops[i], next)) dfs(ops, mask | (1u << i), next, seen, out);
  }
}

}  // namespace lin_detail

/// Check one window of concurrent operations against every still-possible
/// pre-state; returns the set of possible post-states (empty = the history
/// is NOT linearizable up to and including this window).
inline std::set<LinState> linearizeWindow(const std::vector<RecordedOp>& ops,
                                          const std::set<LinState>& preStates) {
  std::set<LinState> post;
  for (const LinState pre : preStates) {
    std::set<std::pair<std::uint32_t, LinState>> seen;
    lin_detail::dfs(ops, 0, pre, seen, post);
  }
  return post;
}

/// Human-readable dump of a window, for failure diagnostics.
inline std::string describeWindow(const std::vector<RecordedOp>& ops) {
  std::string s;
  for (const RecordedOp& op : ops) {
    switch (op.kind) {
      case OpKind::kInsert:
        s += "insert(" + std::to_string(op.a) + ")=" +
             (op.boolResult ? "T" : "F");
        break;
      case OpKind::kErase:
        s += "erase(" + std::to_string(op.a) + ")=" +
             (op.boolResult ? "T" : "F");
        break;
      case OpKind::kContains:
        s += "contains(" + std::to_string(op.a) + ")=" +
             (op.boolResult ? "T" : "F");
        break;
      case OpKind::kRangeQuery: {
        s += "rq(" + std::to_string(op.a) + "," + std::to_string(op.b) + ")={";
        for (std::size_t i = 0; i < op.keysResult.size(); ++i) {
          if (i) s += ",";
          s += std::to_string(op.keysResult[i]);
        }
        s += "}";
        break;
      }
    }
    s += " [" + std::to_string(op.inv) + "," + std::to_string(op.res) + "]  ";
  }
  return s;
}

}  // namespace pathcas::testing
