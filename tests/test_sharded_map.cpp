// Sharded service frontend (src/service/sharded_map.hpp):
//   * partition function: monotone, total, boundary-exact, clamping;
//   * sequential semantics with keys placed astride shard boundaries;
//   * windowed linearizability stress (tests/lin_stress.hpp) with a key
//     space spread over several shards, so a large fraction of the racing
//     range queries exercise the two-phase cross-shard stitching protocol;
//   * cross-shard range-query windows vs a sequential oracle under churn:
//     one mutator thread streams timestamped inserts/erases while scanner
//     threads take wide windows; every scan must equal the oracle state
//     after some prefix of mutations consistent with the scan's interval —
//     the single-mutator specialization of linearizability that pins down
//     exactly the "no half-applied stitch" guarantee;
//   * zero-leak teardown via per-shard DomainSet counters.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "bench_fw/adapters.hpp"
#include "lin_stress.hpp"
#include "service/sharded_map.hpp"
#include "trees/int_avl_pathcas.hpp"
#include "trees/int_bst_pathcas.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"

namespace pathcas::testing {
namespace {

using BstMap = service::ShardedMap<ds::IntBstPathCas<Key, Val>>;
using AvlMap = service::ShardedMap<ds::IntAvlPathCas<Key, Val>>;

// ---------------------------------------------------------------------------
// Partition function.
// ---------------------------------------------------------------------------

TEST(ShardedMapPartition, BoundariesAndMonotonicity) {
  const BstMap map(4, 8);  // slices: [0,2) [2,4) [4,6) [6,8)
  EXPECT_EQ(map.shardOf(0), 0);
  EXPECT_EQ(map.shardOf(1), 0);
  EXPECT_EQ(map.shardOf(2), 1);
  EXPECT_EQ(map.shardOf(3), 1);
  EXPECT_EQ(map.shardOf(4), 2);
  EXPECT_EQ(map.shardOf(5), 2);
  EXPECT_EQ(map.shardOf(6), 3);
  EXPECT_EQ(map.shardOf(7), 3);
  // Out-of-range keys clamp to the boundary shards.
  EXPECT_EQ(map.shardOf(-5), 0);
  EXPECT_EQ(map.shardOf(8), 3);
  EXPECT_EQ(map.shardOf(1 << 20), 3);
}

TEST(ShardedMapPartition, MonotoneAndTotalForUnevenCounts) {
  // Shard counts that do not divide the key space: still monotone, every
  // shard non-empty, exact cover.
  for (int nshards : {1, 3, 5, 7}) {
    const BstMap map(nshards, 100);
    int prev = 0;
    std::vector<int> hits(static_cast<std::size_t>(nshards), 0);
    for (Key k = 0; k < 100; ++k) {
      const int s = map.shardOf(k);
      ASSERT_GE(s, prev) << "shardOf not monotone at key " << k;
      ASSERT_LT(s, nshards);
      prev = s;
      ++hits[static_cast<std::size_t>(s)];
    }
    for (int s = 0; s < nshards; ++s)
      EXPECT_GT(hits[static_cast<std::size_t>(s)], 0)
          << "empty slice for shard " << s << " of " << nshards;
  }
}

// ---------------------------------------------------------------------------
// Sequential semantics astride boundaries.
// ---------------------------------------------------------------------------

TEST(ShardedMap, PointOpsAcrossBoundaries) {
  BstMap map(4, 8);
  for (Key k = 0; k < 8; ++k) EXPECT_TRUE(map.insert(k, k * 10));
  for (Key k = 0; k < 8; ++k) {
    EXPECT_TRUE(map.contains(k));
    EXPECT_FALSE(map.insert(k, 0));  // insertIfAbsent
    const auto v = map.get(k);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, k * 10);
  }
  EXPECT_EQ(map.size(), 8u);
  EXPECT_EQ(map.keySum(), 0 + 1 + 2 + 3 + 4 + 5 + 6 + 7);
  for (int s = 0; s < 4; ++s) EXPECT_EQ(map.shardSize(s), 2u);
  map.checkInvariants();
  // Erase exactly the boundary keys (first key of each slice).
  for (Key k : {0, 2, 4, 6}) EXPECT_TRUE(map.erase(k));
  for (Key k : {0, 2, 4, 6}) EXPECT_FALSE(map.contains(k));
  for (Key k : {1, 3, 5, 7}) EXPECT_TRUE(map.contains(k));
  EXPECT_EQ(map.size(), 4u);
  map.checkInvariants();
}

TEST(ShardedMap, RangeQueryStitchesAscending) {
  BstMap map(4, 16);
  for (Key k = 0; k < 16; k += 2) ASSERT_TRUE(map.insert(k, k));
  std::vector<std::pair<Key, Val>> out;
  // Full-space window: crosses all three boundaries.
  EXPECT_EQ(map.rangeQuery(0, 15, out), 8u);
  ASSERT_EQ(out.size(), 8u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].first, static_cast<Key>(2 * i));
    EXPECT_EQ(out[i].second, static_cast<Key>(2 * i));
  }
  // Partial windows with endpoints inside different shards.
  out.clear();
  EXPECT_EQ(map.rangeQuery(3, 9, out), 3u);  // 4, 6, 8
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].first, 4);
  EXPECT_EQ(out[2].first, 8);
  // Empty and inverted windows.
  out.clear();
  EXPECT_EQ(map.rangeQuery(9, 9, out), 0u);
  EXPECT_EQ(map.rangeQuery(9, 3, out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(ShardedMap, SequentialOracleAcrossShardCounts) {
  for (int nshards : {1, 2, 5, 8}) {
    AvlMap map(nshards, 64);
    std::set<Key> oracle;
    Xoshiro256 rng(0xACE0 + static_cast<std::uint64_t>(nshards));
    for (int i = 0; i < 4000; ++i) {
      const Key k = static_cast<Key>(rng.nextBounded(64));
      switch (rng.nextBounded(4)) {
        case 0:
          ASSERT_EQ(map.insert(k, k), oracle.insert(k).second);
          break;
        case 1:
          ASSERT_EQ(map.erase(k), oracle.erase(k) > 0);
          break;
        case 2:
          ASSERT_EQ(map.contains(k), oracle.count(k) > 0);
          break;
        default: {
          const Key lo = static_cast<Key>(rng.nextBounded(64));
          const Key hi =
              lo + static_cast<Key>(rng.nextBounded(64 - static_cast<std::uint64_t>(lo)));
          std::vector<std::pair<Key, Val>> out;
          map.rangeQuery(lo, hi, out);
          std::vector<Key> expect;
          for (auto it = oracle.lower_bound(lo);
               it != oracle.end() && *it <= hi; ++it)
            expect.push_back(*it);
          ASSERT_EQ(out.size(), expect.size());
          for (std::size_t j = 0; j < out.size(); ++j)
            ASSERT_EQ(out[j].first, expect[j]);
        }
      }
    }
    EXPECT_EQ(map.size(), oracle.size());
    map.checkInvariants();
  }
}

// ---------------------------------------------------------------------------
// Windowed linearizability stress over the stitching protocol.
// ---------------------------------------------------------------------------

/// Thin set facade with the shard geometry the stress wants: keySpace 8 over
/// 4 shards means slice width 2, so ~all multi-key windows cross shards.
template <int NShards, std::int64_t KeySpace>
struct SmallShardedSet {
  BstMap map{NShards, KeySpace};
  bool insert(Key k, Val v) { return map.insert(k, v); }
  bool erase(Key k) { return map.erase(k); }
  bool contains(Key k) { return map.contains(k); }
  std::size_t rangeQuery(Key lo, Key hi, std::vector<std::pair<Key, Val>>& out) {
    return map.rangeQuery(lo, hi, out);
  }
};

TEST(ShardedMapLinearizable, WindowedHistoryUnderChurn) {
  SmallShardedSet<4, 8> set;
  runRqLinStress(set, /*threads=*/4, /*rounds=*/2500, /*keySpace=*/8,
                 /*seed=*/0x5eed0010);
  set.map.checkInvariants();
}

TEST(ShardedMapLinearizable, UnevenShardsTinyKeySpace) {
  // 3 shards over 8 keys: slices [0,3) [3,6) [6,8) — uneven widths.
  SmallShardedSet<3, 8> set;
  runRqLinStress(set, /*threads=*/4, /*rounds=*/2500, /*keySpace=*/8,
                 /*seed=*/0x5eed0011);
  set.map.checkInvariants();
}

// ---------------------------------------------------------------------------
// Cross-shard windows vs a sequential oracle under churn.
// ---------------------------------------------------------------------------

TEST(ShardedMap, CrossShardWindowsMatchMutationPrefix) {
  // One mutator streams timestamped mutations; scanners take wide windows.
  // With a single mutator, the abstract state is a totally-ordered sequence
  // of versions, and a linearizable scan must equal the state after A + the
  // first j concurrent mutations, where A = mutations completed before the
  // scan began and the concurrent run is those overlapping the scan.
  constexpr Key kKeySpace = 64;
  constexpr int kShards = 4;  // boundaries at 16, 32, 48
  constexpr int kMutations = 30000;
  constexpr int kScanners = 2;
  BstMap map(kShards, kKeySpace);

  struct Mutation {
    Key key = 0;
    bool insert = false;   // false: erase
    std::uint64_t inv = 0, res = 0;
  };
  struct Scan {
    Key lo = 0, hi = 0;
    std::vector<Key> keys;
    std::uint64_t inv = 0, res = 0;
  };
  std::atomic<std::uint64_t> clock{0};
  std::atomic<bool> stop{false};
  std::vector<Mutation> mutations;  // successful ones, in program order
  mutations.reserve(kMutations);
  std::vector<std::vector<Scan>> scans(kScanners);

  std::thread mutator([&] {
    ThreadGuard tg;
    Xoshiro256 rng(0xD00D);
    int done = 0;
    while (done < kMutations) {
      Mutation m;
      m.key = static_cast<Key>(rng.nextBounded(kKeySpace));
      m.insert = rng.nextBounded(2) == 0;
      m.inv = clock.fetch_add(1);
      const bool ok =
          m.insert ? map.insert(m.key, m.key) : map.erase(m.key);
      m.res = clock.fetch_add(1);
      if (ok) {
        mutations.push_back(m);
        ++done;
      }
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> scanners;
  for (int sc = 0; sc < kScanners; ++sc) {
    scanners.emplace_back([&, sc] {
      ThreadGuard tg;
      Xoshiro256 rng(0xBEEF + static_cast<std::uint64_t>(sc));
      std::vector<std::pair<Key, Val>> buf;
      while (!stop.load(std::memory_order_acquire)) {
        Scan s;
        // Bias windows wide so they straddle shard boundaries: lo in the
        // first half, hi in the last half of the key space.
        s.lo = static_cast<Key>(rng.nextBounded(kKeySpace / 2));
        s.hi = static_cast<Key>(kKeySpace / 2 + rng.nextBounded(kKeySpace / 2));
        buf.clear();
        s.inv = clock.fetch_add(1);
        map.rangeQuery(s.lo, s.hi, buf);
        s.res = clock.fetch_add(1);
        for (const auto& [k, v] : buf) {
          EXPECT_EQ(k, v);
          s.keys.push_back(k);
        }
        scans[static_cast<std::size_t>(sc)].push_back(std::move(s));
      }
    });
  }
  mutator.join();
  for (auto& t : scanners) t.join();

  // Replay: states[j] = membership mask after the first j mutations (the
  // mutator is sequential, so this is THE abstract history).
  std::vector<std::uint64_t> states(mutations.size() + 1, 0);
  for (std::size_t j = 0; j < mutations.size(); ++j) {
    const std::uint64_t bit = std::uint64_t{1} << mutations[j].key;
    states[j + 1] = mutations[j].insert ? (states[j] | bit)
                                        : (states[j] & ~bit);
  }
  std::size_t checked = 0, crossShard = 0;
  for (const auto& perScanner : scans) {
    for (const Scan& s : perScanner) {
      // Window mask of the scan result, and of each candidate state.
      std::uint64_t got = 0;
      for (const Key k : s.keys) got |= std::uint64_t{1} << k;
      std::uint64_t windowMask = 0;
      for (Key k = s.lo; k <= s.hi; ++k) windowMask |= std::uint64_t{1} << k;
      // Candidate prefix lengths: everything from "all mutations completed
      // before the scan" through "all mutations that began before it ended".
      std::size_t jLo = 0, jHi = 0;
      while (jLo < mutations.size() && mutations[jLo].res < s.inv) ++jLo;
      jHi = jLo;
      while (jHi < mutations.size() && mutations[jHi].inv < s.res) ++jHi;
      bool matched = false;
      for (std::size_t j = jLo; j <= jHi && !matched; ++j)
        matched = (states[j] & windowMask) == got;
      ASSERT_TRUE(matched)
          << "scan [" << s.lo << "," << s.hi << "] (inv " << s.inv << ", res "
          << s.res << ") matches no mutation prefix in [" << jLo << "," << jHi
          << "]";
      ++checked;
      if (map.shardOf(s.lo) != map.shardOf(s.hi)) ++crossShard;
    }
  }
  // The windows are built to straddle shards; make sure the test actually
  // exercised the stitching protocol.
  EXPECT_GT(checked, 0u);
  EXPECT_GT(crossShard, checked / 2);
  map.checkInvariants();
}

// ---------------------------------------------------------------------------
// Observability counters: cross-shard RQ retries and combiner-wait stats.
// ---------------------------------------------------------------------------

TEST(ShardedMapCounters, RqRetriesZeroQuiescent) {
  BstMap map(4, 64);
  for (Key k = 0; k < 64; k += 2) ASSERT_TRUE(map.insert(k, k));
  std::vector<std::pair<Key, Val>> out;
  // Quiescent cross-shard windows: the version-stamp validation must pass
  // on the first try every time — any retry here is a livelock bug, not
  // contention.
  for (int i = 0; i < 100; ++i) {
    out.clear();
    map.rangeQuery(0, 63, out);
    EXPECT_EQ(out.size(), 32u);
  }
  EXPECT_EQ(map.rqRetries(), 0u);
}

TEST(ShardedMapCounters, RqRetriesMonotoneUnderChurn) {
  // Retries under churn are timing-dependent, so this asserts only what is
  // deterministic: the counter never decreases, and scans stay correct
  // (every returned key was inserted with val == key).
  constexpr Key kKeySpace = 32;
  BstMap map(4, kKeySpace);
  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    ThreadGuard tg;
    Xoshiro256 rng(0xC0FFEE);
    while (!stop.load(std::memory_order_acquire)) {
      const Key k = static_cast<Key>(rng.nextBounded(kKeySpace));
      if (rng.nextBounded(2) == 0)
        map.insert(k, k);
      else
        map.erase(k);
    }
  });
  std::uint64_t prev = 0;
  std::vector<std::pair<Key, Val>> out;
  for (int i = 0; i < 2000; ++i) {
    out.clear();
    map.rangeQuery(0, kKeySpace - 1, out);
    for (const auto& [k, v] : out) EXPECT_EQ(k, v);
    const std::uint64_t now = map.rqRetries();
    ASSERT_GE(now, prev);
    prev = now;
  }
  stop.store(true, std::memory_order_release);
  mutator.join();
  map.checkInvariants();
}

TEST(ShardedMapCounters, CombineWaitCountsEveryUpdate) {
  // With combining + combineStats on, every insert/erase deposits exactly
  // one op slot and the serving combiner records exactly one wait sample —
  // so the per-shard histogram counts must sum to the number of update ops
  // (successful or not), and be zero with stats off.
  BstMap::Config cfg;
  cfg.combineWindow = 4;
  cfg.combineStats = true;
  BstMap map(4, 64, cfg);
  constexpr int kOps = 500;
  Xoshiro256 rng(0x57A75);
  for (int i = 0; i < kOps; ++i) {
    const Key k = static_cast<Key>(rng.nextBounded(64));
    if (rng.nextBounded(2) == 0)
      map.insert(k, k);
    else
      map.erase(k);
  }
  std::uint64_t total = 0;
  for (int s = 0; s < 4; ++s) total += map.shardSchedCount(s);
  EXPECT_EQ(total, static_cast<std::uint64_t>(kOps));
  EXPECT_EQ(map.shardSchedP99Ns().size(), 4u);
  map.checkInvariants();

  BstMap::Config off;
  off.combineWindow = 4;  // combining, but stats off: no samples recorded
  BstMap quiet(2, 64, off);
  for (Key k = 0; k < 16; ++k) quiet.insert(k, k);
  EXPECT_EQ(quiet.shardSchedCount(0) + quiet.shardSchedCount(1), 0u);
  EXPECT_TRUE(quiet.shardSchedP99Ns().empty());
}

// ---------------------------------------------------------------------------
// Teardown hygiene.
// ---------------------------------------------------------------------------

TEST(ShardedMap, DrainLeavesOnlyLiveNodes) {
  BstMap map(4, 256);
  for (Key k = 0; k < 256; ++k) ASSERT_TRUE(map.insert(k, k));
  for (Key k = 0; k < 256; k += 2) ASSERT_TRUE(map.erase(k));
  map.drain();  // quiescent: all limbo recycles into the shards' pools
  // 128 live keys + 2 sentinels per shard tree.
  EXPECT_EQ(map.liveNodes(), 128u + 2u * 4u);
  EXPECT_GT(map.footprintBytes(), 0u);
}

}  // namespace
}  // namespace pathcas::testing
