// Unit tests for the tail-latency subsystem: histogram bucket geometry and
// quantile extraction against an exact oracle (bench_fw/latency.hpp), the
// deterministic Poisson arrival generator and ArrivalSpec grammar
// (bench_fw/workload.hpp), and the instrumented driver end to end — closed
// and open loop, submitted-vs-applied accounting, and the stop-before-drain
// timed window (bench_fw/driver.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include "bench_fw/adapters.hpp"
#include "bench_fw/latency.hpp"
#include "bench_fw/workload.hpp"

namespace pathcas::bench {
namespace {

using testing::PathCasBstAdapter;

// ---------------------------------------------------------------------------
// Histogram geometry
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, BucketIndexIsExactBelowSubRange) {
  for (std::uint64_t v = 0; v < LatencyHistogram::kSub; ++v) {
    EXPECT_EQ(LatencyHistogram::bucketIndex(v), static_cast<int>(v));
    EXPECT_EQ(LatencyHistogram::bucketLowerBound(static_cast<int>(v)), v);
  }
}

TEST(LatencyHistogram, LowerBoundRoundTripsAndIndexIsMonotone) {
  // Every value must land in a bucket whose span contains it, and the index
  // must be monotone in the value. Probe powers of two and their neighbours
  // across the whole uint64 range — exactly where the octave math can be off
  // by one.
  std::vector<std::uint64_t> probes = {0, 1, 2, 15, 16, 17, 31, 32, 33};
  for (int e = 5; e < 64; ++e) {
    const std::uint64_t p = 1ULL << e;
    probes.push_back(p - 1);
    probes.push_back(p);
    probes.push_back(p + 1);
    probes.push_back(p + (p >> 1));  // mid-octave
  }
  probes.push_back(~0ULL);
  std::sort(probes.begin(), probes.end());
  int prevIdx = -1;
  for (std::uint64_t v : probes) {
    const int idx = LatencyHistogram::bucketIndex(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, LatencyHistogram::kNumBuckets);
    EXPECT_GE(idx, prevIdx) << "index not monotone at v=" << v;
    prevIdx = idx;
    const std::uint64_t lo = LatencyHistogram::bucketLowerBound(idx);
    EXPECT_LE(lo, v);
    if (idx + 1 < LatencyHistogram::kNumBuckets) {
      const std::uint64_t hi = LatencyHistogram::bucketLowerBound(idx + 1);
      EXPECT_GT(hi, v) << "v=" << v << " above its bucket span";
      // Relative bucket width <= 1/kSub (6.25%) beyond the exact region —
      // the resolution bound every quantile inherits.
      if (lo >= LatencyHistogram::kSub) {
        EXPECT_LE(static_cast<double>(hi - lo) / static_cast<double>(lo),
                  1.0 / static_cast<double>(LatencyHistogram::kSub) + 1e-12);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Quantiles vs an exact oracle
// ---------------------------------------------------------------------------

/// Exact oracle: the rank-ceil(q*n) order statistic (1-based), matching the
/// histogram's rank convention.
std::uint64_t exactQuantile(std::vector<std::uint64_t> sorted, double q) {
  const double target = q * static_cast<double>(sorted.size());
  std::size_t rank = static_cast<std::size_t>(target);
  if (static_cast<double>(rank) < target || rank == 0) ++rank;
  return sorted[rank - 1];
}

TEST(LatencyHistogram, QuantilesMatchOracleWithinBucketResolution) {
  // A latency-shaped sample: lognormal body plus a 1% far tail, spanning
  // several octaves, the regime the log-linear layout is built for.
  std::mt19937_64 rng(42);
  std::lognormal_distribution<double> body(8.0, 1.0);   // median ~3000
  std::uniform_int_distribution<std::uint64_t> tail(200000, 5000000);
  LatencyHistogram h;
  std::vector<std::uint64_t> vals;
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t v = (i % 100 == 99)
                                ? tail(rng)
                                : static_cast<std::uint64_t>(body(rng)) + 1;
    vals.push_back(v);
    h.record(v);
  }
  std::sort(vals.begin(), vals.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = static_cast<double>(exactQuantile(vals, q));
    const double got = h.quantile(q);
    // The oracle's sample sits inside the reported bucket; interpolation can
    // land anywhere within it, so the error is bounded by one bucket width
    // (1/16 relative) on either side.
    EXPECT_NEAR(got, exact, exact / 16.0 + 1.0) << "q=" << q;
  }
  EXPECT_EQ(h.count(), vals.size());
  EXPECT_EQ(h.maxValue(), vals.back());
  EXPECT_DOUBLE_EQ(h.quantile(1.0), static_cast<double>(vals.back()));
}

TEST(LatencyHistogram, EmptyAndSingleValue) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  h.record(12345);
  for (double q : {0.0, 0.5, 0.999, 1.0})
    EXPECT_DOUBLE_EQ(h.quantile(q), 12345.0) << "q=" << q;
}

TEST(LatencyHistogram, MergeEqualsCombinedRecording) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::uint64_t> d(1, 1u << 20);
  LatencyHistogram parts[3], combined;
  for (int i = 0; i < 30000; ++i) {
    const std::uint64_t v = d(rng);
    parts[i % 3].record(v);
    combined.record(v);
  }
  LatencyHistogram merged;
  for (const auto& p : parts) merged.merge(p);
  EXPECT_EQ(merged.count(), combined.count());
  EXPECT_EQ(merged.maxValue(), combined.maxValue());
  for (double q : {0.01, 0.5, 0.9, 0.99, 0.999, 1.0})
    EXPECT_DOUBLE_EQ(merged.quantile(q), combined.quantile(q)) << "q=" << q;
}

TEST(LatencyHistogram, DeterministicUnderReordering) {
  // Same multiset, three insertion orders -> identical counts and quantiles
  // (the property that makes cross-thread merging well-defined).
  std::vector<std::uint64_t> vals;
  std::mt19937_64 rng(99);
  std::lognormal_distribution<double> d(6.0, 2.0);
  for (int i = 0; i < 20000; ++i)
    vals.push_back(static_cast<std::uint64_t>(d(rng)) + 1);
  auto fill = [](const std::vector<std::uint64_t>& v) {
    LatencyHistogram h;
    for (std::uint64_t x : v) h.record(x);
    return h;
  };
  const LatencyHistogram a = fill(vals);
  std::sort(vals.begin(), vals.end());
  const LatencyHistogram b = fill(vals);
  std::reverse(vals.begin(), vals.end());
  const LatencyHistogram c = fill(vals);
  for (double q : {0.5, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), b.quantile(q));
    EXPECT_DOUBLE_EQ(a.quantile(q), c.quantile(q));
  }
}

TEST(LatencySummary, OverallExcludesSchedAndScalesByNsPerTick) {
  LatencyRecorder recs[2];
  recs[0].record(OpCat::kInsert, 100);
  recs[0].record(OpCat::kFind, 200);
  recs[1].record(OpCat::kErase, 300);
  recs[1].record(OpCat::kSched, 1000000);  // must not pollute `overall`
  const LatencySummary s = summarizeLatency(recs, 2, 2.0);
  EXPECT_TRUE(s.valid);
  EXPECT_EQ(s.overall.count, 3u);
  EXPECT_EQ(s.of(OpCat::kSched).count, 1u);
  EXPECT_DOUBLE_EQ(s.overall.maxNs, 300.0 * 2.0);
  EXPECT_DOUBLE_EQ(s.of(OpCat::kSched).maxNs, 1000000.0 * 2.0);
  EXPECT_LT(s.overall.p999Ns, 1000.0);  // sched's ms-scale sample excluded
}

// ---------------------------------------------------------------------------
// Arrival process
// ---------------------------------------------------------------------------

TEST(ArrivalSpecParse, RoundTripsAndValidates) {
  const char* good[] = {"closed", "poisson:1", "poisson:500000",
                        "poisson:1e6", "poisson:2500000.5"};
  for (const char* s : good) {
    ArrivalSpec spec;
    EXPECT_TRUE(ArrivalSpec::parse(s, &spec)) << s;
    ArrivalSpec again;
    EXPECT_TRUE(ArrivalSpec::parse(spec.label(), &again)) << spec.label();
    EXPECT_EQ(spec.open, again.open) << s;
    EXPECT_EQ(spec.ratePerSec, again.ratePerSec) << s;
  }
  const char* bad[] = {"",          "open",        "poisson",
                       "poisson:",  "poisson:0",   "poisson:-5",
                       "poisson:nan", "poisson:inf", "poisson:abc",
                       "closed:1",  "poisson:1:2"};
  for (const char* s : bad) {
    ArrivalSpec spec;
    EXPECT_FALSE(ArrivalSpec::parse(s, &spec)) << s;
  }
}

TEST(ArrivalGen, DeterministicPerSeedAndThread) {
  ArrivalGen a(1e6, 123, 0), b(1e6, 123, 0), c(1e6, 123, 1);
  bool anyDiff = false;
  for (int i = 0; i < 1000; ++i) {
    const double ga = a.nextGapNs();
    EXPECT_DOUBLE_EQ(ga, b.nextGapNs());
    if (ga != c.nextGapNs()) anyDiff = true;
  }
  EXPECT_TRUE(anyDiff) << "thread streams must not collide";
}

TEST(ArrivalGen, GapsAreExponentialChiSquare) {
  // Bucket 200k gaps into 20 equal-probability bins by the exponential
  // quantile function and chi-square against the uniform expectation. The
  // 0.999 critical value for 19 dof is 43.8; a wrong distribution (uniform
  // gaps, say) lands in the thousands.
  const double mean = 1000.0;  // rate 1e6/s -> 1000ns mean gap
  ArrivalGen gen(1e6, 42, 0);
  constexpr int kBins = 20;
  constexpr int kSamples = 200000;
  std::array<int, kBins> obs{};
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double g = gen.nextGapNs();
    ASSERT_GE(g, 0.0);
    sum += g;
    // CDF of Exp(mean): u = 1 - exp(-g/mean); bin by floor(u * kBins).
    const double u = 1.0 - std::exp(-g / mean);
    int bin = static_cast<int>(u * kBins);
    if (bin >= kBins) bin = kBins - 1;
    ++obs[static_cast<std::size_t>(bin)];
  }
  EXPECT_NEAR(sum / kSamples, mean, mean * 0.02);  // sample mean within 2%
  const double expect = static_cast<double>(kSamples) / kBins;
  double chi2 = 0.0;
  for (int o : obs) {
    const double d = static_cast<double>(o) - expect;
    chi2 += d * d / expect;
  }
  EXPECT_LT(chi2, 43.8) << "inter-arrival gaps are not exponential";
}

// ---------------------------------------------------------------------------
// Instrumented driver end to end
// ---------------------------------------------------------------------------

TrialResult runSmall(TrialConfig cfg) {
  cfg.keyRange = 1 << 10;
  cfg.durationMs = 50;
  cfg.insertFrac = 0.25;
  cfg.deleteFrac = 0.25;
  return runCell([] { return std::make_unique<PathCasBstAdapter<false>>(); },
                 cfg);
}

TEST(DriverLatency, ClosedLoopRecordsAllCategoriesAndTimedWindow) {
  TrialConfig cfg;
  cfg.threads = 2;
  cfg.latency = true;
  cfg.latSampleShift = 0;  // record every op: counts must balance exactly
  const TrialResult r = runSmall(cfg);
  ASSERT_TRUE(r.lat.valid);
  EXPECT_GT(r.totalOps, 0u);
  // Unbatched: every submitted op executes, and every op is recorded.
  EXPECT_EQ(r.opsApplied, r.totalOps);
  EXPECT_EQ(r.lat.overall.count, r.totalOps);
  EXPECT_EQ(r.lat.of(OpCat::kSched).count, 0u) << "no queueing in closed loop";
  EXPECT_GT(r.lat.of(OpCat::kInsert).count, 0u);
  EXPECT_GT(r.lat.of(OpCat::kErase).count, 0u);
  EXPECT_GT(r.lat.of(OpCat::kFind).count, 0u);
  // Quantile ordering and sane magnitudes (an op takes >= tens of ns).
  EXPECT_GT(r.lat.overall.p50Ns, 0.0);
  EXPECT_LE(r.lat.overall.p50Ns, r.lat.overall.p99Ns);
  EXPECT_LE(r.lat.overall.p99Ns, r.lat.overall.p999Ns);
  EXPECT_LE(r.lat.overall.p999Ns, r.lat.overall.maxNs);
  // The timed window is go->stop: ~durationMs, not stretched by join/drain,
  // and the drain tail is accounted separately and non-negative.
  EXPECT_GE(r.elapsedSec, 0.045);
  EXPECT_LT(r.elapsedSec, 1.0);
  EXPECT_GE(r.drainSec, 0.0);
  // ns_per_op is calibrated wall time per op — consistent with throughput
  // within calibration + scheduling slop on a shared box.
  const double wallNsPerOp =
      r.elapsedSec * 1e9 * cfg.threads / static_cast<double>(r.totalOps);
  EXPECT_NEAR(r.nsPerOp, wallNsPerOp, wallNsPerOp * 0.5);
}

TEST(DriverLatency, SampledRecordingCountsRoughlyOneInEight) {
  TrialConfig cfg;
  cfg.threads = 1;
  cfg.latency = true;
  cfg.latSampleShift = 3;  // the default: every 8th op
  const TrialResult r = runSmall(cfg);
  ASSERT_TRUE(r.lat.valid);
  const double frac = static_cast<double>(r.lat.overall.count) /
                      static_cast<double>(r.totalOps);
  EXPECT_NEAR(frac, 1.0 / 8.0, 0.01);
}

TEST(DriverLatency, OpenLoopMeasuresQueueingDelay) {
  TrialConfig cfg;
  cfg.threads = 1;
  cfg.latency = true;
  cfg.latSampleShift = 0;
  cfg.arrival.open = true;
  cfg.arrival.ratePerSec = 50000;  // far below capacity: mostly idle
  const TrialResult r = runSmall(cfg);
  ASSERT_TRUE(r.lat.valid);
  EXPECT_GT(r.lat.of(OpCat::kSched).count, 0u);
  EXPECT_GT(r.lat.overall.count, 0u);
  // Throughput tracks the offered rate, not capacity: ~50k ops/sec over
  // ~50ms is ~2500 ops. The load-bearing bound is the upper one — an open
  // loop must land far below what the closed loop would do (hundreds of
  // thousands). The lower bound only proves the worker made progress; keep
  // it loose, since on a box busy running the rest of the suite the worker
  // can lose most of its timeslices to the scheduler.
  EXPECT_LT(r.totalOps, 25000u);
  EXPECT_GT(r.totalOps, 100u);
}

TEST(DriverLatency, BatchedTrialSplitsSubmittedFromApplied) {
  TrialConfig cfg;
  cfg.threads = 2;
  cfg.latency = true;
  cfg.latSampleShift = 0;
  cfg.batch = 64;
  cfg.dist.kind = DistKind::kZipfian;  // skew -> window netting actually fires
  cfg.dist.theta = 0.99;
  const TrialResult r = runSmall(cfg);
  ASSERT_TRUE(r.lat.valid);
  EXPECT_GT(r.totalOps, 0u);
  // Netting may only ever reduce: applied <= submitted, and under zipfian
  // skew on a 1k key range some window ops must annihilate.
  EXPECT_LT(r.opsApplied, r.totalOps);
  // Every op still completes and records — annihilated ops complete at their
  // window's flush.
  EXPECT_EQ(r.lat.overall.count, r.totalOps);
  EXPECT_LE(r.mopsApplied, r.mops);
}

TEST(DriverLatency, RecordingOffLeavesSummaryInvalid) {
  TrialConfig cfg;
  cfg.threads = 1;
  const TrialResult r = runSmall(cfg);
  EXPECT_FALSE(r.lat.valid);
  EXPECT_EQ(r.lat.overall.count, 0u);
  EXPECT_GT(r.totalOps, 0u);
  EXPECT_EQ(r.opsApplied, r.totalOps);
}

}  // namespace
}  // namespace pathcas::bench
