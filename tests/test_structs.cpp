// Tests for the extension structures built with PathCAS (the paper's
// conclusion list): sorted list, hash table, skip list, stack and queue.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "structs/hash_pathcas.hpp"
#include "structs/list_pathcas.hpp"
#include "structs/skiplist_pathcas.hpp"
#include "structs/stack_queue_pathcas.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"

namespace pathcas::ds {
namespace {

// ---------------------------------------------------------------------------
// Sorted list / hash map / skip list share set semantics: run them through
// one typed suite plus structure-specific checks.
// ---------------------------------------------------------------------------

template <typename S>
class PcSetTest : public ::testing::Test {};

struct ListTag {
  using Set = ListPathCas<>;
  static Set make() { return Set{}; }
};

using PcSets = ::testing::Types<ListPathCas<std::int64_t, std::int64_t>,
                                HashMapPathCas<std::int64_t, std::int64_t>,
                                SkipListPathCas<std::int64_t, std::int64_t>>;

class PcSetNames {
 public:
  template <typename T>
  static std::string GetName(int i) {
    return i == 0 ? "list" : (i == 1 ? "hash" : "skiplist");
  }
};

TYPED_TEST_SUITE(PcSetTest, PcSets, PcSetNames);

TYPED_TEST(PcSetTest, Lifecycle) {
  TypeParam s;
  EXPECT_FALSE(s.contains(7));
  EXPECT_TRUE(s.insert(7, 70));
  EXPECT_FALSE(s.insert(7, 71));
  EXPECT_TRUE(s.contains(7));
  EXPECT_EQ(s.get(7).value(), 70);
  EXPECT_TRUE(s.erase(7));
  EXPECT_FALSE(s.erase(7));
  EXPECT_EQ(s.size(), 0u);
}

TYPED_TEST(PcSetTest, OracleRandomOps) {
  TypeParam s;
  std::set<std::int64_t> oracle;
  Xoshiro256 rng(1);
  for (int i = 0; i < 8000; ++i) {
    const std::int64_t k = static_cast<std::int64_t>(rng.nextBounded(150));
    switch (rng.nextBounded(3)) {
      case 0:
        ASSERT_EQ(s.insert(k, k), oracle.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(s.erase(k), oracle.erase(k) > 0);
        break;
      default:
        ASSERT_EQ(s.contains(k), oracle.count(k) > 0);
    }
  }
  EXPECT_EQ(s.size(), oracle.size());
  std::int64_t sum = 0;
  for (auto k : oracle) sum += k;
  EXPECT_EQ(s.keySum(), sum);
}

TYPED_TEST(PcSetTest, ConcurrentKeysum) {
  TypeParam s;
  constexpr int kThreads = 4, kOps = 2000;
  constexpr std::int64_t kRange = 96;
  std::vector<std::thread> workers;
  std::vector<std::int64_t> deltas(kThreads, 0);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      ThreadGuard tg;
      Xoshiro256 rng(50 + w);
      std::int64_t d = 0;
      for (int i = 0; i < kOps; ++i) {
        const std::int64_t k =
            static_cast<std::int64_t>(rng.nextBounded(kRange));
        switch (rng.nextBounded(4)) {
          case 0:
            if (s.insert(k, k)) d += k;
            break;
          case 1:
            if (s.erase(k)) d -= k;
            break;
          default:
            (void)s.contains(k);
        }
      }
      deltas[w] = d;
    });
  }
  for (auto& th : workers) th.join();
  std::int64_t expected = 0;
  for (auto d : deltas) expected += d;
  EXPECT_EQ(s.keySum(), expected);
}

TEST(SkipList, TowersLinkAtomically) {
  SkipListPathCas<> s;
  for (std::int64_t k = 0; k < 512; ++k) ASSERT_TRUE(s.insert(k, k));
  s.checkInvariants();
  for (std::int64_t k = 0; k < 512; k += 2) ASSERT_TRUE(s.erase(k));
  s.checkInvariants();
  EXPECT_EQ(s.size(), 256u);
}

TEST(HashMap, SpreadsAcrossBuckets) {
  HashMapPathCas<> h(64);
  for (std::int64_t k = 0; k < 2048; ++k) ASSERT_TRUE(h.insert(k, k));
  EXPECT_EQ(h.size(), 2048u);
  for (std::int64_t k = 0; k < 2048; ++k) ASSERT_TRUE(h.contains(k));
  for (std::int64_t k = 0; k < 2048; k += 3) ASSERT_TRUE(h.erase(k));
  EXPECT_EQ(h.size(), 2048u - (2048 + 2) / 3);
}

// ---------------------------------------------------------------------------
// Stack.
// ---------------------------------------------------------------------------

TEST(Stack, LifoOrderSingleThread) {
  StackPathCas<> s;
  EXPECT_FALSE(s.pop().has_value());
  for (std::int64_t i = 0; i < 100; ++i) s.push(i);
  EXPECT_EQ(s.size(), 100u);
  for (std::int64_t i = 99; i >= 0; --i) EXPECT_EQ(s.pop().value(), i);
  EXPECT_TRUE(s.empty());
}

TEST(Stack, ConcurrentPushPopConservesElements) {
  StackPathCas<> s;
  constexpr int kThreads = 4, kPerThread = 3000;
  std::atomic<std::int64_t> poppedSum{0};
  std::atomic<std::uint64_t> poppedCount{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      ThreadGuard tg;
      Xoshiro256 rng(7 + w);
      for (int i = 0; i < kPerThread; ++i) {
        if (rng.nextBounded(2)) {
          s.push(static_cast<std::int64_t>(w * kPerThread + i));
        } else if (auto v = s.pop()) {
          poppedSum.fetch_add(*v, std::memory_order_relaxed);
          poppedCount.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Track pushes to verify conservation.
  for (auto& th : workers) th.join();
  std::int64_t remainingSum = 0;
  std::uint64_t remaining = 0;
  while (auto v = s.pop()) {
    remainingSum += *v;
    ++remaining;
  }
  // Every pushed value is either popped or remaining; compute pushed sums.
  std::int64_t pushedSum = 0;
  std::uint64_t pushed = 0;
  // Re-derive from the deterministic RNG streams.
  for (int w = 0; w < kThreads; ++w) {
    Xoshiro256 rng(7 + w);
    for (int i = 0; i < kPerThread; ++i) {
      // One nextBounded per worker iteration in both branches, so the
      // replayed stream aligns with the worker's exactly.
      if (rng.nextBounded(2)) {
        pushedSum += static_cast<std::int64_t>(w * kPerThread + i);
        ++pushed;
      }
    }
  }
  EXPECT_EQ(poppedCount.load() + remaining, pushed);
  EXPECT_EQ(poppedSum.load() + remainingSum, pushedSum);
}

// ---------------------------------------------------------------------------
// Queue.
// ---------------------------------------------------------------------------

TEST(Queue, FifoOrderSingleThread) {
  QueuePathCas<> q;
  EXPECT_FALSE(q.dequeue().has_value());
  for (std::int64_t i = 0; i < 100; ++i) q.enqueue(i);
  EXPECT_EQ(q.size(), 100u);
  for (std::int64_t i = 0; i < 100; ++i) EXPECT_EQ(q.dequeue().value(), i);
  EXPECT_TRUE(q.empty());
}

TEST(Queue, PerProducerOrderPreserved) {
  // MPMC: each producer enqueues an increasing sequence tagged with its id;
  // consumers must observe each producer's values in order.
  QueuePathCas<> q;
  constexpr int kProducers = 2, kConsumers = 2, kPerProducer = 4000;
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  std::vector<std::vector<std::int64_t>> consumed(kConsumers);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      ThreadGuard tg;
      for (std::int64_t i = 0; i < kPerProducer; ++i) {
        q.enqueue((static_cast<std::int64_t>(p) << 32) | i);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      ThreadGuard tg;
      while (!done.load(std::memory_order_acquire) || !q.empty()) {
        if (auto v = q.dequeue()) consumed[c].push_back(*v);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  done.store(true, std::memory_order_release);
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();

  std::uint64_t total = 0;
  std::vector<std::int64_t> lastSeen[kConsumers];
  for (int c = 0; c < kConsumers; ++c) {
    total += consumed[c].size();
    std::int64_t last[kProducers];
    std::fill(last, last + kProducers, -1);
    for (auto v : consumed[c]) {
      const int p = static_cast<int>(v >> 32);
      const std::int64_t seq = v & 0xffffffff;
      EXPECT_GT(seq, last[p]) << "per-producer FIFO violated";
      last[p] = seq;
    }
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kProducers) * kPerProducer);
}

}  // namespace
}  // namespace pathcas::ds
