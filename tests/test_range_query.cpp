// Range-query edge cases and race coverage:
//  * typed edge-case suite over the five validated (PathCAS) ordered
//    structures: empty structures, reversed bounds, lo==hi point windows,
//    boundary inclusivity, full-table scans against a std::map oracle, and
//    append (no-clear) output semantics;
//  * quiescent exactness of the best-effort scans on the two hand-crafted
//    external BST baselines;
//  * seeded concurrent races with deterministic thread counts: scans racing
//    AVL rotations and abtree leaf splits must always return sorted,
//    duplicate-free, in-range, untorn snapshots.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "structs/abtree_pathcas.hpp"
#include "structs/list_pathcas.hpp"
#include "structs/skiplist_pathcas.hpp"
#include "trees/ellen_bst.hpp"
#include "trees/int_avl_pathcas.hpp"
#include "trees/int_bst_pathcas.hpp"
#include "trees/ticket_bst.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"

namespace pathcas::testing {
namespace {

using K = std::int64_t;
using V = std::int64_t;
using Out = std::vector<std::pair<K, V>>;

template <typename SetT>
class RangeQueryTest : public ::testing::Test {};

using RqSets =
    ::testing::Types<ds::IntBstPathCas<>, ds::IntAvlPathCas<>,
                     ds::SkipListPathCas<>, ds::ListPathCas<>,
                     ds::AbTreePathCas<>>;

class RqSetNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    std::string n = T::name();
    for (auto& c : n) {
      if (c == '-') c = '_';
    }
    return n;
  }
};

TYPED_TEST_SUITE(RangeQueryTest, RqSets, RqSetNames);

TYPED_TEST(RangeQueryTest, EmptyStructureAndEmptyWindows) {
  TypeParam s;
  Out out;
  EXPECT_EQ(s.rangeQuery(0, 100, out), 0u);
  EXPECT_EQ(s.rangeQuery(5, 5, out), 0u);
  EXPECT_EQ(s.rangeQuery(10, 2, out), 0u);  // reversed bounds: empty range
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(s.insert(7, 70));
  EXPECT_EQ(s.rangeQuery(8, 100, out), 0u);  // non-empty set, empty window
  EXPECT_EQ(s.rangeQuery(0, 6, out), 0u);
  EXPECT_TRUE(out.empty());
}

TYPED_TEST(RangeQueryTest, PointWindowLoEqualsHi) {
  TypeParam s;
  ASSERT_TRUE(s.insert(5, 50));
  ASSERT_TRUE(s.insert(6, 60));
  Out out;
  EXPECT_EQ(s.rangeQuery(5, 5, out), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (std::pair<K, V>{5, 50}));
  out.clear();
  EXPECT_EQ(s.rangeQuery(4, 4, out), 0u);  // absent key
  EXPECT_TRUE(out.empty());
}

TYPED_TEST(RangeQueryTest, BoundsAreInclusive) {
  TypeParam s;
  for (K k = 10; k <= 20; ++k) ASSERT_TRUE(s.insert(k, k * 10));
  Out out;
  EXPECT_EQ(s.rangeQuery(10, 20, out), 11u);
  EXPECT_EQ(out.front(), (std::pair<K, V>{10, 100}));
  EXPECT_EQ(out.back(), (std::pair<K, V>{20, 200}));
  out.clear();
  EXPECT_EQ(s.rangeQuery(11, 19, out), 9u);
  EXPECT_EQ(out.front().first, 11);
  EXPECT_EQ(out.back().first, 19);
}

TYPED_TEST(RangeQueryTest, AppendsWithoutClearing) {
  TypeParam s;
  ASSERT_TRUE(s.insert(1, 10));
  ASSERT_TRUE(s.insert(2, 20));
  Out out;
  EXPECT_EQ(s.rangeQuery(1, 1, out), 1u);
  EXPECT_EQ(s.rangeQuery(2, 2, out), 1u);  // appends after the previous hit
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].first, 1);
  EXPECT_EQ(out[1].first, 2);
}

TYPED_TEST(RangeQueryTest, FullTableScanMatchesOracleUnderChurn) {
  TypeParam s;
  std::map<K, V> oracle;
  Xoshiro256 rng(424242);
  constexpr K kRange = 200;  // well inside the kMaxVisited scan contract
  for (int i = 0; i < 4000; ++i) {
    const K k = static_cast<K>(rng.nextBounded(kRange));
    if (rng.nextBounded(2)) {
      EXPECT_EQ(s.insert(k, k * 3), oracle.emplace(k, k * 3).second);
    } else {
      EXPECT_EQ(s.erase(k), oracle.erase(k) > 0);
    }
    if (i % 500 == 0) {
      Out out;
      ASSERT_EQ(s.rangeQuery(0, kRange - 1, out), oracle.size());
      auto it = oracle.begin();
      for (const auto& kv : out) {
        ASSERT_EQ(kv.first, it->first);
        ASSERT_EQ(kv.second, it->second);
        ++it;
      }
    }
  }
  // Final full-table scan, plus sub-range spot checks against the oracle.
  Out out;
  ASSERT_EQ(s.rangeQuery(0, kRange - 1, out), oracle.size());
  for (const auto& [lo, hi] :
       std::vector<std::pair<K, K>>{{0, 50}, {73, 91}, {150, kRange - 1}}) {
    Out sub;
    std::size_t expected = 0;
    for (auto it = oracle.lower_bound(lo);
         it != oracle.end() && it->first <= hi; ++it)
      ++expected;
    EXPECT_EQ(s.rangeQuery(lo, hi, sub), expected);
  }
}

// ---------------------------------------------------------------------------
// Best-effort baselines: quiescent scans are exact.
// ---------------------------------------------------------------------------

template <typename BaselineT>
void quiescentBaselineScan() {
  BaselineT s;
  std::map<K, V> oracle;
  Xoshiro256 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const K k = static_cast<K>(rng.nextBounded(300));
    if (rng.nextBounded(3) != 0) {
      EXPECT_EQ(s.insert(k, k + 1), oracle.emplace(k, k + 1).second);
    } else {
      EXPECT_EQ(s.erase(k), oracle.erase(k) > 0);
    }
  }
  Out out;
  EXPECT_EQ(s.rangeQuery(0, 299, out), oracle.size());
  auto it = oracle.begin();
  for (const auto& kv : out) {
    ASSERT_EQ(kv.first, it->first);
    ASSERT_EQ(kv.second, it->second);
    ++it;
  }
  Out sub;
  EXPECT_EQ(s.rangeQuery(100, 99, sub), 0u);  // reversed bounds
  EXPECT_EQ(s.rangeQuery(1000, 2000, sub), 0u);
}

TEST(RangeQueryBaselines, EllenBstQuiescentScanIsExact) {
  quiescentBaselineScan<ds::EllenBst<>>();
}

TEST(RangeQueryBaselines, TicketBstQuiescentScanIsExact) {
  quiescentBaselineScan<ds::TicketBst<>>();
}

// ---------------------------------------------------------------------------
// Scans racing structural maintenance (seeded, deterministic thread counts).
// Every validated scan — even mid-rotation / mid-split — must be sorted,
// duplicate-free, within bounds, and untorn (val == 3 * key invariant).
// ---------------------------------------------------------------------------

template <typename SetT>
void scanRacesWriters(std::uint64_t seed) {
  SetT s;
  constexpr K kRange = 256;
  constexpr int kWriters = 2, kScanners = 2, kWriterOps = 40000;
  for (K k = 0; k < kRange; k += 2) ASSERT_TRUE(s.insert(k, k * 3));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scans{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      ThreadGuard tg;
      Xoshiro256 rng(seed + static_cast<std::uint64_t>(w));
      for (int i = 0; i < kWriterOps; ++i) {
        const K k = static_cast<K>(rng.nextBounded(kRange));
        if (rng.nextBounded(2)) {
          s.insert(k, k * 3);
        } else {
          s.erase(k);
        }
      }
      stop.store(true, std::memory_order_release);
    });
  }
  std::vector<std::thread> scanners;
  for (int r = 0; r < kScanners; ++r) {
    scanners.emplace_back([&, r] {
      ThreadGuard tg;
      Xoshiro256 rng(seed * 31 + static_cast<std::uint64_t>(r));
      Out out;
      while (!stop.load(std::memory_order_acquire)) {
        const K lo = static_cast<K>(rng.nextBounded(kRange));
        const K hi =
            lo + static_cast<K>(rng.nextBounded(
                     static_cast<std::uint64_t>(kRange - lo)));
        out.clear();
        const std::size_t n = s.rangeQuery(lo, hi, out);
        ASSERT_EQ(n, out.size());
        K prev = lo - 1;
        for (const auto& [k, v] : out) {
          ASSERT_GT(k, prev) << "unsorted or duplicate key in scan";
          ASSERT_LE(k, hi);
          ASSERT_GE(k, lo);
          ASSERT_EQ(v, k * 3) << "torn (key, value) pair in scan";
          prev = k;
        }
        scans.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : writers) t.join();
  for (auto& t : scanners) t.join();
  EXPECT_GT(scans.load(), 100u);  // the scanners actually ran against churn
}

TEST(RangeQueryRaces, AvlScanRacesRebalance) {
  // AVL rotations retarget pointers mid-scan; validation must catch them.
  scanRacesWriters<ds::IntAvlPathCas<>>(0xA71);
}

TEST(RangeQueryRaces, AbtreeScanRacesLeafSplits) {
  // Copy-on-write leaf replacement + blind splits race the scan's descent.
  scanRacesWriters<ds::AbTreePathCas<>>(0xAB7);
}

TEST(RangeQueryRaces, BstScanRacesTwoChildDeletes) {
  // Internal-BST two-child deletion rewrites keys/values in place (succ
  // relocation) — the torn-pair assertion is the sharp edge here.
  scanRacesWriters<ds::IntBstPathCas<>>(0xB57);
}

TEST(RangeQueryRaces, SkiplistScanRacesTowerUnlinks) {
  scanRacesWriters<ds::SkipListPathCas<>>(0x5C1);
}

}  // namespace
}  // namespace pathcas::testing
