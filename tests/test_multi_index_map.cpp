// Composite-invariant battery for the multi-index map
// (structs/multi_index_map.hpp): a primary (key → value) tree and a unique
// secondary (value → key) tree committed together, one KCAS per update. The
// checked property is that the two indexes NEVER observably diverge:
//   1. oracle fuzz against a pair of sequential std::maps (insert rejected
//      on either a taken key or a taken value; erase/eraseByValue remove the
//      pair from both sides; range queries over both indexes agree);
//   2. the agreement scanner: getChecked() snapshots BOTH search paths in
//      one validated op and aborts if the secondary disagrees with the
//      primary — threads run it continuously mid-churn;
//   3. the shared lin_check.hpp windowed stress (runRqLinStress): composite
//      insert/erase histories must linearize window by window, range
//      queries included;
//   4. quiescent checkInvariants(): both trees structurally sound plus the
//      cross-index bijection (identical pair sets, mirrored).
// Zero-leak teardown is built into ~MultiIndexMap (drain + liveNodes()==0
// abort), exercised by every test's destructor.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "lin_stress.hpp"
#include "structs/multi_index_map.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"

namespace pathcas::testing {
namespace {

using Map = ds::MultiIndexMap<>;

TEST(MultiIndexMap, BasicInsertLookupErase) {
  Map m;
  EXPECT_TRUE(m.insert(1, 100));
  EXPECT_FALSE(m.insert(1, 200));  // key taken
  EXPECT_FALSE(m.insert(2, 100));  // value taken (secondary uniqueness)
  EXPECT_TRUE(m.insert(2, 200));

  EXPECT_EQ(m.get(1), std::optional<std::int64_t>(100));
  EXPECT_EQ(m.getByValue(100), std::optional<std::int64_t>(1));
  EXPECT_EQ(m.getChecked(1), std::optional<std::int64_t>(100));
  EXPECT_TRUE(m.contains(2));
  EXPECT_FALSE(m.contains(3));
  EXPECT_EQ(m.getChecked(3), std::nullopt);
  EXPECT_EQ(m.size(), 2u);

  EXPECT_TRUE(m.erase(1));
  EXPECT_FALSE(m.erase(1));
  EXPECT_EQ(m.getByValue(100), std::nullopt);  // both sides gone atomically

  EXPECT_TRUE(m.eraseByValue(200));
  EXPECT_FALSE(m.eraseByValue(200));
  EXPECT_FALSE(m.contains(2));
  EXPECT_EQ(m.size(), 0u);
  m.checkInvariants();
}

TEST(MultiIndexMap, RangeQueriesOverBothIndexes) {
  Map m;
  // Values deliberately reverse the key order so the two indexes sort
  // differently.
  for (std::int64_t k = 0; k < 10; ++k) ASSERT_TRUE(m.insert(k, 100 - k));

  std::vector<std::pair<std::int64_t, std::int64_t>> byKey;
  EXPECT_EQ(m.rangeQuery(2, 5, byKey), 4u);
  ASSERT_EQ(byKey.size(), 4u);
  for (std::size_t i = 0; i < byKey.size(); ++i) {
    EXPECT_EQ(byKey[i].first, static_cast<std::int64_t>(2 + i));
    EXPECT_EQ(byKey[i].second, 100 - byKey[i].first);
  }

  std::vector<std::pair<std::int64_t, std::int64_t>> byVal;
  EXPECT_EQ(m.rangeQueryByValue(95, 98, byVal), 4u);  // values 95..98
  ASSERT_EQ(byVal.size(), 4u);
  for (std::size_t i = 0; i < byVal.size(); ++i) {
    EXPECT_EQ(byVal[i].first, static_cast<std::int64_t>(95 + i));
    EXPECT_EQ(byVal[i].second, 100 - byVal[i].first);  // (value, key) pairs
  }
  m.checkInvariants();
}

// ---------------------------------------------------------------------------
// Oracle fuzz vs a pair of sequential maps.
// ---------------------------------------------------------------------------

TEST(MultiIndexMap, OracleFuzzMatchesSequentialModel) {
  constexpr std::int64_t kKeys = 96;
  constexpr std::int64_t kValBase = 1'000;
  constexpr std::int64_t kVals = 64;  // < kKeys: value collisions are common
  constexpr int kOps = 40'000;
  Map m;
  std::map<std::int64_t, std::int64_t> fwd;
  std::map<std::int64_t, std::int64_t> rev;
  Xoshiro256 rng(0x317ull);

  for (int i = 0; i < kOps; ++i) {
    const std::int64_t k = static_cast<std::int64_t>(rng.nextBounded(kKeys));
    const std::int64_t v =
        kValBase + static_cast<std::int64_t>(rng.nextBounded(kVals));
    const std::uint64_t dice = rng.nextBounded(100);
    if (dice < 40) {
      const bool want = !fwd.count(k) && !rev.count(v);
      ASSERT_EQ(m.insert(k, v), want) << "op " << i;
      if (want) {
        fwd[k] = v;
        rev[v] = k;
      }
    } else if (dice < 60) {
      const auto it = fwd.find(k);
      ASSERT_EQ(m.erase(k), it != fwd.end()) << "op " << i;
      if (it != fwd.end()) {
        rev.erase(it->second);
        fwd.erase(it);
      }
    } else if (dice < 75) {
      const auto it = rev.find(v);
      ASSERT_EQ(m.eraseByValue(v), it != rev.end()) << "op " << i;
      if (it != rev.end()) {
        fwd.erase(it->second);
        rev.erase(it);
      }
    } else if (dice < 90) {
      const auto it = fwd.find(k);
      const auto got = m.getChecked(k);
      ASSERT_EQ(got.has_value(), it != fwd.end()) << "op " << i;
      if (got.has_value()) {
        ASSERT_EQ(*got, it->second) << "op " << i;
      }
      const auto back = m.getByValue(v);
      const auto rit = rev.find(v);
      ASSERT_EQ(back.has_value(), rit != rev.end()) << "op " << i;
      if (back.has_value()) {
        ASSERT_EQ(*back, rit->second) << "op " << i;
      }
    } else {
      std::int64_t lo = static_cast<std::int64_t>(rng.nextBounded(kKeys));
      std::int64_t hi = lo + static_cast<std::int64_t>(
                                 rng.nextBounded(kKeys - lo));
      std::vector<std::pair<std::int64_t, std::int64_t>> got;
      m.rangeQuery(lo, hi, got);
      std::vector<std::pair<std::int64_t, std::int64_t>> want(
          fwd.lower_bound(lo), fwd.upper_bound(hi));
      ASSERT_EQ(got, want) << "op " << i;
    }
    ASSERT_EQ(m.size(), fwd.size()) << "op " << i;
    if (i % 2'000 == 0) m.checkInvariants();
  }
  m.checkInvariants();
}

// ---------------------------------------------------------------------------
// The agreement scanner: getChecked() mid-churn. Churners keep the bijection
// k <-> k + kOffset; scanners snapshot both paths in one validated op. Any
// observable divergence aborts inside getChecked (PATHCAS_CHECK).
// ---------------------------------------------------------------------------

TEST(MultiIndexMapConcurrent, ScannerNeverObservesDivergence) {
  constexpr std::int64_t kKeys = 64;
  constexpr std::int64_t kOffset = 10'000;
  constexpr int kChurners = 4;
  constexpr int kScanners = 2;
  constexpr int kOpsPerThread = 40'000;
  Map m;

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kChurners; ++t) {
    workers.emplace_back([&, t] {
      ThreadGuard tg;
      Xoshiro256 rng(0xD17ull + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::int64_t k =
            static_cast<std::int64_t>(rng.nextBounded(kKeys));
        const std::uint64_t dice = rng.nextBounded(100);
        if (dice < 45) {
          m.insert(k, k + kOffset);
        } else if (dice < 80) {
          m.erase(k);
        } else {
          m.eraseByValue(k + kOffset);
        }
      }
      stop.store(true, std::memory_order_release);
    });
  }
  for (int t = 0; t < kScanners; ++t) {
    workers.emplace_back([&, t] {
      ThreadGuard tg;
      Xoshiro256 rng(0x5CA11ull + static_cast<std::uint64_t>(t));
      std::uint64_t scans = 0;
      while (!stop.load(std::memory_order_acquire) || scans < 1'000) {
        const std::int64_t k =
            static_cast<std::int64_t>(rng.nextBounded(kKeys));
        // One atomic snapshot of both search paths; aborts on divergence.
        const auto v = m.getChecked(k);
        if (v.has_value()) {
          EXPECT_EQ(*v, k + kOffset);
        }
        // The reverse direction through the secondary index.
        const auto back = m.getByValue(k + kOffset);
        if (back.has_value()) {
          EXPECT_EQ(*back, k);
        }
        ++scans;
      }
    });
  }
  for (auto& w : workers) w.join();
  m.checkInvariants();  // quiescent bijection check
  m.drain();
}

// ---------------------------------------------------------------------------
// Shared windowed linearizability stress (same harness as the plain ordered
// structures): composite insert/erase/contains/rangeQuery histories over a
// tiny key space must admit a sequential interleaving in every window.
// ---------------------------------------------------------------------------

TEST(MultiIndexMapLin, WindowedStress) {
  Map m;
  runRqLinStress(m, /*threads=*/4, /*rounds=*/2500, /*keySpace=*/8,
                 /*seed=*/0x313ull);
}

}  // namespace
}  // namespace pathcas::testing
