// Unit tests for the overload-protection subsystem: the ArrivalSpec
// qdepth/deadline grammar (bench_fw/workload.hpp), the bounded admission
// queue and adaptive flush policy as pure logic over a hand-fed clock
// (bench_fw/admission.hpp), deterministic replay of shed decisions on the
// pinned virtual clock (util/timing.hpp, TtlClock), and the driver end to
// end — the accounting identity offered == admitted + shed + rejected,
// goodput, and the cold-window flush-deadline regression at ~1 op/s per
// window (bench_fw/driver.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench_fw/adapters.hpp"
#include "bench_fw/admission.hpp"
#include "bench_fw/workload.hpp"
#include "util/rand.hpp"
#include "util/timing.hpp"

namespace pathcas::bench {
namespace {

using testing::PathCasBstAdapter;

/// Restore the process-wide real clock even when a test fails mid-way — a
/// pinned virtual clock would otherwise poison every later trial in the
/// binary.
struct RealClockGuard {
  ~RealClockGuard() { TtlClock::useReal(); }
};

// ---------------------------------------------------------------------------
// ArrivalSpec grammar: qdepth / deadline suffixes
// ---------------------------------------------------------------------------

TEST(ArrivalSpecAdmission, ParsesAndRoundTripsSuffixes) {
  struct Case {
    const char* s;
    int qdepth;
    std::int64_t deadlineNs;
  };
  const Case good[] = {
      {"poisson:500000", 0, 0},
      {"poisson:500000:q64", 64, 0},
      {"poisson:500000:d2000000", 0, 2000000},
      {"poisson:500000:q64:d2000000", 64, 2000000},
      {"poisson:1e6:d250000:q8", 8, 250000},  // order-free
  };
  for (const Case& c : good) {
    ArrivalSpec spec;
    ASSERT_TRUE(ArrivalSpec::parse(c.s, &spec)) << c.s;
    EXPECT_TRUE(spec.open) << c.s;
    EXPECT_EQ(spec.qdepth, c.qdepth) << c.s;
    EXPECT_EQ(spec.deadlineNs, c.deadlineNs) << c.s;
    // label() must round-trip to an identical spec.
    ArrivalSpec again;
    ASSERT_TRUE(ArrivalSpec::parse(spec.label(), &again)) << spec.label();
    EXPECT_EQ(again.qdepth, c.qdepth) << spec.label();
    EXPECT_EQ(again.deadlineNs, c.deadlineNs) << spec.label();
    EXPECT_EQ(again.label(), spec.label());
  }
  const char* bad[] = {
      "poisson:1:q0",      // zero qdepth
      "poisson:1:d0",      // zero deadline
      "poisson:1:q",       // missing value
      "poisson:1:d",       //
      "poisson:1:q-3",     // negative
      "poisson:1:x5",      // unknown field
      "poisson:1:q2:q3",   // duplicate field
      "poisson:1:d5:d6",   //
      "poisson:1:q2.5",    // non-integral
      "closed:q1",         // closed takes no suffixes
      "poisson:1:2",       // legacy bad case stays bad
  };
  for (const char* s : bad) {
    ArrivalSpec spec;
    EXPECT_FALSE(ArrivalSpec::parse(s, &spec)) << s;
  }
}

// ---------------------------------------------------------------------------
// AdmissionQueue: pure logic over caller timestamps
// ---------------------------------------------------------------------------

TEST(AdmissionQueue, RejectsWhenFull) {
  AdmissionQueue q(2, 0);
  EXPECT_TRUE(q.offer(10));
  EXPECT_TRUE(q.offer(20));
  EXPECT_FALSE(q.offer(30));  // bound hit: rejected, not enqueued
  EXPECT_EQ(q.offered(), 3u);
  EXPECT_EQ(q.rejected(), 1u);
  EXPECT_EQ(q.size(), 2u);
  std::uint64_t a = 0;
  EXPECT_EQ(q.pop(25, &a), AdmissionQueue::Pop::kAdmit);
  EXPECT_EQ(a, 10u);  // FIFO, and the arrival instant comes back out
  EXPECT_TRUE(q.offer(40));  // a pop freed a slot
  EXPECT_EQ(q.rejected(), 1u);
}

TEST(AdmissionQueue, ShedsExactlyPastDeadline) {
  AdmissionQueue q(0, 100);  // unbounded queue, 100ns deadline
  ASSERT_TRUE(q.offer(1000));
  ASSERT_TRUE(q.offer(1000));
  ASSERT_TRUE(q.offer(1000));
  std::uint64_t a = 0;
  // Wait == deadline admits (the client is still waiting at the deadline);
  // deadline + 1 sheds.
  EXPECT_EQ(q.pop(1100, &a), AdmissionQueue::Pop::kAdmit);
  EXPECT_EQ(q.pop(1101, &a), AdmissionQueue::Pop::kShed);
  // nowNs before the arrival (clock skew between workers' reads) admits.
  EXPECT_EQ(q.pop(999, &a), AdmissionQueue::Pop::kAdmit);
  EXPECT_EQ(q.pop(999, &a), AdmissionQueue::Pop::kEmpty);
  EXPECT_EQ(q.admitted(), 2u);
  EXPECT_EQ(q.shed(), 1u);
}

TEST(AdmissionQueue, ShedRemainingKeepsIdentity) {
  AdmissionQueue q(4, 50);
  for (int i = 0; i < 6; ++i) q.offer(static_cast<std::uint64_t>(i));
  std::uint64_t a = 0;
  (void)q.pop(1000, &a);  // arrival 0, wait ~1000 > 50: shed
  (void)q.pop(10, &a);    // arrival 1, wait 9 <= 50: admit
  q.shedRemaining();      // 2 left in queue
  EXPECT_EQ(q.offered(), 6u);
  EXPECT_EQ(q.admitted() + q.shed() + q.rejected(), q.offered());
  EXPECT_EQ(q.size(), 0u);
}

TEST(AdmissionQueue, FuzzIdentityHoldsUnderRandomScripts) {
  // Random offer/pop interleavings with a monotone clock: whatever the
  // schedule, after shedRemaining the identity is exact.
  Xoshiro256 rng(20260809);
  for (int trial = 0; trial < 50; ++trial) {
    const int qdepth = static_cast<int>(rng.nextBounded(8));  // 0 = unbounded
    const std::int64_t deadline =
        static_cast<std::int64_t>(rng.nextBounded(200));  // 0 = never shed
    AdmissionQueue q(qdepth, deadline);
    std::uint64_t now = 1;
    std::uint64_t admitted = 0;
    for (int step = 0; step < 1000; ++step) {
      now += rng.nextBounded(100);
      if (rng.nextBounded(2) == 0) {
        (void)q.offer(now);
      } else {
        std::uint64_t a = 0;
        if (q.pop(now, &a) == AdmissionQueue::Pop::kAdmit) {
          ++admitted;
          ASSERT_LE(a, now + 0u);
          if (deadline > 0) {
            ASSERT_LE(now - a, static_cast<std::uint64_t>(deadline));
          }
        }
      }
    }
    q.shedRemaining();
    EXPECT_EQ(q.admitted(), admitted);
    EXPECT_EQ(q.offered(), q.admitted() + q.shed() + q.rejected())
        << "qdepth=" << qdepth << " deadline=" << deadline;
  }
}

// ---------------------------------------------------------------------------
// Deterministic shedding on the pinned virtual clock
// ---------------------------------------------------------------------------

/// Replay a fixed arrival/service script against an AdmissionQueue driven by
/// the virtual clock and return the admit/shed/reject decision sequence.
std::vector<int> replayScript() {
  std::vector<int> decisions;  // 0 = rejected at offer, 1 = admit, 2 = shed
  TtlClock::set(1'000);
  AdmissionQueue q(2, 100);
  const std::uint64_t arrivals[] = {1'000, 1'010, 1'020, 1'030, 1'200, 1'210};
  std::size_t next = 0;
  // Service loop: every iteration advances the virtual clock by a fixed
  // 150ns "service time", offers everything due, then pops once.
  for (int iter = 0; iter < 6; ++iter) {
    const std::uint64_t now = TtlClock::nowNs();
    while (next < std::size(arrivals) && arrivals[next] <= now) {
      if (!q.offer(arrivals[next])) decisions.push_back(0);
      ++next;
    }
    std::uint64_t a = 0;
    switch (q.pop(now, &a)) {
      case AdmissionQueue::Pop::kAdmit: decisions.push_back(1); break;
      case AdmissionQueue::Pop::kShed: decisions.push_back(2); break;
      case AdmissionQueue::Pop::kEmpty: break;
    }
    TtlClock::advance(150);
  }
  q.shedRemaining();
  return decisions;
}

TEST(AdmissionVirtualClock, ShedDecisionsReplayIdentically) {
  RealClockGuard rcg;
  const std::vector<int> first = replayScript();
  const std::vector<int> second = replayScript();
  EXPECT_EQ(first, second) << "same script, same clock, same decisions";
  // And the exact hand-computed sequence:
  //   iter0 t=1000: offer 1000; pop -> ADMIT (wait 0)
  //   iter1 t=1150: offer 1010,1020 -> queue full, 1030 REJECTED;
  //                 pop 1010 -> wait 140 > 100 -> SHED
  //   iter2 t=1300: offer 1200 (queue [1020,1200]), 1210 due too but the
  //                 queue is full again -> REJECTED; pop 1020 -> wait 280
  //                 -> SHED
  //   iter3 t=1450: pop 1200 -> wait 250 -> SHED
  //   iter4 t=1600: queue empty -> nothing
  //   iter5 t=1750: queue empty -> nothing
  const std::vector<int> expected = {1, 0, 2, 0, 2, 2};
  EXPECT_EQ(first, expected);
}

// ---------------------------------------------------------------------------
// AdaptiveFlushPolicy
// ---------------------------------------------------------------------------

TEST(AdaptiveFlushPolicy, ShrinksOnDeadlineGrowsOnFull) {
  AdaptiveFlushPolicy p(64, 1000);
  EXPECT_TRUE(p.timed());
  EXPECT_EQ(p.window(), 64u);
  p.noteDeadline();
  EXPECT_EQ(p.window(), 32u);
  p.noteDeadline();
  p.noteDeadline();
  p.noteDeadline();
  p.noteDeadline();
  EXPECT_EQ(p.window(), 2u);
  p.noteDeadline();
  EXPECT_EQ(p.window(), 2u) << "floor at min(2, max)";
  p.noteFull();
  EXPECT_EQ(p.window(), 4u);
  for (int i = 0; i < 10; ++i) p.noteFull();
  EXPECT_EQ(p.window(), 64u) << "ceiling at the configured max";
  EXPECT_EQ(p.deadlineFlushes(), 6u);
  EXPECT_EQ(p.fullFlushes(), 11u);
}

TEST(AdaptiveFlushPolicy, DeadlineExpiryTracksOldestOp) {
  AdaptiveFlushPolicy p(8, 100);
  p.windowOpened(1000);
  EXPECT_FALSE(p.deadlineExpired(1099));
  EXPECT_TRUE(p.deadlineExpired(1100));  // aged exactly to the deadline
  AdaptiveFlushPolicy untimed(8, 0);
  EXPECT_FALSE(untimed.timed());
  untimed.windowOpened(1000);
  EXPECT_FALSE(untimed.deadlineExpired(1'000'000'000));
}

// ---------------------------------------------------------------------------
// Driver end to end
// ---------------------------------------------------------------------------

TrialResult runSmall(TrialConfig cfg) {
  cfg.keyRange = 1 << 10;
  cfg.durationMs = 50;
  cfg.insertFrac = 0.25;
  cfg.deleteFrac = 0.25;
  return runCell([] { return std::make_unique<PathCasBstAdapter<false>>(); },
                 cfg);
}

TEST(DriverAdmission, ClosedLoopIdentityIsTrivial) {
  TrialConfig cfg;
  cfg.threads = 2;
  const TrialResult r = runSmall(cfg);
  EXPECT_EQ(r.opsOffered, r.totalOps);
  EXPECT_EQ(r.opsShed, 0u);
  EXPECT_EQ(r.opsRejected, 0u);
  // No deadline: goodput IS throughput.
  EXPECT_DOUBLE_EQ(r.goodputMops, r.mops);
}

TEST(DriverAdmission, OverloadShedsAndKeepsIdentity) {
  TrialConfig cfg;
  cfg.threads = 2;
  cfg.latency = true;
  cfg.latSampleShift = 0;
  cfg.arrival.open = true;
  cfg.arrival.ratePerSec = 20e6;  // far past capacity: forced overload
  cfg.arrival.qdepth = 64;
  cfg.arrival.deadlineNs = 200'000;  // 200us
  const TrialResult r = runSmall(cfg);
  // The trial itself enforces the identity via PATHCAS_CHECK; re-assert it
  // here so a future refactor that drops the in-driver check still fails.
  EXPECT_EQ(r.opsOffered, r.totalOps + r.opsShed + r.opsRejected);
  EXPECT_GT(r.totalOps, 0u);
  // 20M ops/s against a 2-thread tree: the bounded queue must reject (it
  // holds 64 of a multi-ms backlog) and the deadline must shed.
  EXPECT_GT(r.opsRejected, 0u);
  EXPECT_GT(r.opsShed, 0u);
  EXPECT_TRUE(r.keysumOk);
  // Every admitted op was popped within the deadline, so its recorded queue
  // wait is bounded by deadline plus one service time — far below the
  // multi-second backlog the shed-off loop would record. Allow generous
  // scheduler slop; the load-bearing claim is "bounded, not backlog".
  ASSERT_TRUE(r.lat.valid);
  EXPECT_GT(r.lat.of(OpCat::kSched).count, 0u);
  EXPECT_LT(r.lat.of(OpCat::kSched).p99Ns, 50e6)
      << "admitted queue waits must not grow into the shed-off backlog";
  // Goodput counts only deadline-meeting completions.
  EXPECT_LE(r.goodputMops, r.mops + 1e-9);
}

TEST(DriverAdmission, ColdWindowFlushesAtDeadline) {
  // Regression: before the flush deadline, a batch>1 open-loop trial at a
  // very low rate buffered its first update and then sat on it until the
  // stop-time drain — the op's latency was the remaining trial length. With
  // the adaptive flush the partial window must flush once its oldest op ages
  // past the (virtual) deadline, while the trial is still running.
  RealClockGuard rcg;
  // The discriminator: the pre-fix worker only ever flushed on a FULL
  // window or at the stop-time drain, and neither increments
  // deadlineFlushes — a 64-wide window at a 10-virtual-ms update gap
  // cannot fill mid-trial, so the hang behavior yields deadlineFlushes ==
  // 0 deterministically. Any positive count proves a partial window left
  // while the trial was still running. (A latency-based bound is NOT used
  // here: the advancer free-runs ahead of the worker, so a scheduler
  // preemption of the worker inflates buffered-op ages in virtual ns
  // arbitrarily even with the fix in place.) One attempt can come up empty
  // on a heavily loaded machine — the worker can lose the CPU between
  // opening a window and the trial's real-time stop — so the test retries
  // a few independent short trials; the hang behavior fails ALL of them.
  TrialResult r{};
  std::uint64_t vSpan = 0;
  for (int attempt = 0; attempt < 5 && r.deadlineFlushes == 0; ++attempt) {
    TtlClock::useVirtual(1'000'000'000);
    std::atomic<bool> advancing{true};
    // Virtual time tracks 10x measured real time (re-anchored each wakeup,
    // NOT a fixed increment per sleep — under CPU contention sleep_for
    // overruns and a fixed increment would stall virtual time, starving
    // the trial of arrivals). The driver's stop flag is real-time
    // (sleep_for in runTrial), so the ~50ms trial reliably spans a few
    // hundred virtual milliseconds: dozens of arrivals, many 5ms deadline
    // cycles.
    std::thread advancer([&advancing] {
      const auto t0 = std::chrono::steady_clock::now();
      std::uint64_t advanced = 0;
      while (advancing.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        const std::uint64_t target =
            10u * static_cast<std::uint64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
        TtlClock::advance(target - advanced);
        advanced = target;
      }
    });
    TrialConfig cfg;
    cfg.threads = 1;
    cfg.batch = 64;
    cfg.latency = true;
    cfg.latSampleShift = 0;
    cfg.arrival.open = true;
    // Mean arrival gap 10 virtual ms, mean update gap ~20 (half the mix is
    // updates) — a 64-op window takes ~1.3 virtual SECONDS to fill, far
    // past the 5ms flush deadline, so the first flush must be
    // deadline-triggered.
    cfg.arrival.ratePerSec = 100.0;
    cfg.flushDeadlineNs = 5'000'000;  // 5 virtual ms
    const std::uint64_t v0 = TtlClock::nowNs();
    r = runSmall(cfg);
    vSpan = TtlClock::nowNs() - v0;
    advancing.store(false, std::memory_order_relaxed);
    advancer.join();
    TtlClock::useReal();
  }
  EXPECT_GT(r.totalOps, 0u);
  EXPECT_GT(vSpan, 0u);
  // Once the adaptive width has shrunk to 2, a lucky short gap may
  // legitimately fill a window, so fullFlushes is not asserted zero.
  EXPECT_GT(r.deadlineFlushes, 0u)
      << "cold window never deadline-flushed in any attempt; buffered ops "
         "waited for the drain";
  ASSERT_TRUE(r.lat.valid);
}

}  // namespace
}  // namespace pathcas::bench
