// Unit tests for the TM baselines themselves (independent of the trees):
// atomicity (bank-transfer invariant), write-read coherence inside a
// transaction, abort/retry behaviour, and opacity-style snapshot checks.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "stm/elastic.hpp"
#include "stm/glock.hpp"
#include "stm/norec.hpp"
#include "stm/tl2.hpp"
#include "stm/tle.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"

namespace pathcas::stm {
namespace {

template <typename TM>
class TmTest : public ::testing::Test {
 protected:
  TM tm;
};

using AllTms = ::testing::Types<NOrec, TL2, TLE, GlobalLockTm, Elastic>;

class TmNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    return T::name();
  }
};

TYPED_TEST_SUITE(TmTest, AllTms, TmNames);

TYPED_TEST(TmTest, ReadYourOwnWrites) {
  tmword<std::int64_t> x(5);
  this->tm.atomically([&](auto& tx) {
    EXPECT_EQ(tx.read(x), 5);
    tx.write(x, 9);
    EXPECT_EQ(tx.read(x), 9);  // must see the buffered write
    tx.write(x, 11);
    EXPECT_EQ(tx.read(x), 11);
  });
  EXPECT_EQ(tmword<std::int64_t>::unpack(x.raw().load()), 11);
}

TYPED_TEST(TmTest, ReadOnlyTransactionReturnsValue) {
  tmword<std::int64_t> x(7);
  const auto v =
      this->tm.atomically([&](auto& tx) { return tx.read(x); });
  EXPECT_EQ(v, 7);
}

TYPED_TEST(TmTest, VoidBodyCommits) {
  tmword<std::int64_t> x(0);
  this->tm.atomically([&](auto& tx) { tx.write(x, 3); });
  EXPECT_EQ(tmword<std::int64_t>::unpack(x.raw().load()), 3);
}

TYPED_TEST(TmTest, PointerPayloadRoundTrip) {
  int dummy;
  tmword<int*> p(nullptr);
  this->tm.atomically([&](auto& tx) {
    EXPECT_EQ(tx.read(p), nullptr);
    tx.write(p, &dummy);
  });
  const auto v = this->tm.atomically([&](auto& tx) { return tx.read(p); });
  EXPECT_EQ(v, &dummy);
}

TYPED_TEST(TmTest, BankTransferInvariant) {
  constexpr int kAccounts = 10;
  constexpr std::int64_t kInitial = 1000;
  constexpr int kThreads = 4, kOps = 4000;
  std::vector<tmword<std::int64_t>> accounts(kAccounts);
  for (auto& a : accounts) a.setInitial(kInitial);

  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      ThreadGuard tg;
      Xoshiro256 rng(42 + w);
      for (int i = 0; i < kOps; ++i) {
        const int from = static_cast<int>(rng.nextBounded(kAccounts));
        int to = static_cast<int>(rng.nextBounded(kAccounts));
        if (to == from) to = (to + 1) % kAccounts;
        const auto amount = static_cast<std::int64_t>(rng.nextBounded(10));
        this->tm.atomically([&](auto& tx) {
          const std::int64_t f = tx.read(accounts[from]);
          if (f < amount) return;
          tx.write(accounts[from], f - amount);
          tx.write(accounts[to], tx.read(accounts[to]) + amount);
        });
      }
    });
  }
  for (auto& th : workers) th.join();
  std::int64_t total = 0;
  for (auto& a : accounts)
    total += tmword<std::int64_t>::unpack(a.raw().load());
  EXPECT_EQ(total, kInitial * kAccounts);
}

// Readers taking whole-array snapshots must always observe the conserved
// total (snapshot atomicity / opacity-by-validation).
TYPED_TEST(TmTest, SnapshotsObserveConservedTotal) {
  constexpr int kAccounts = 6;
  constexpr std::int64_t kInitial = 50;
  std::vector<tmword<std::int64_t>> accounts(kAccounts);
  for (auto& a : accounts) a.setInitial(kInitial);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    ThreadGuard tg;
    Xoshiro256 rng(3);
    while (!stop.load(std::memory_order_relaxed)) {
      const int i = static_cast<int>(rng.nextBounded(kAccounts));
      const int j = (i + 1) % kAccounts;
      this->tm.atomically([&](auto& tx) {
        const auto a = tx.read(accounts[i]);
        if (a == 0) return;
        tx.write(accounts[i], a - 1);
        tx.write(accounts[j], tx.read(accounts[j]) + 1);
      });
    }
  });
  {
    ThreadGuard tg;
    for (int iter = 0; iter < 5000; ++iter) {
      const auto total = this->tm.atomically([&](auto& tx) {
        std::int64_t sum = 0;
        for (auto& a : accounts) sum += tx.read(a);
        return sum;
      });
      ASSERT_EQ(total, kInitial * kAccounts);
    }
  }
  stop.store(true);
  writer.join();
}

TEST(NOrecSpecific, CommitsAndAbortsAreCounted) {
  NOrec tm;
  tmword<std::int64_t> x(0);
  for (int i = 0; i < 10; ++i) {
    tm.atomically([&](auto& tx) { tx.write(x, tx.read(x) + 1); });
  }
  EXPECT_GE(tm.totalStats().commits, 10u);
}

TEST(ElasticSpecific, ElasticReadsDropOutOfReadSet) {
  // A long read-only prefix followed by one write: changes *behind* the
  // window (to earlier-read locations) must not abort the commit. We
  // simulate by writing to an early location from the same thread between
  // transactions — with a plain TL2 this pattern aborts when interleaved;
  // here we just assert a long traversal + write commits (smoke; the real
  // interleaving coverage is in the tree stress tests).
  Elastic tm;
  constexpr int kN = 100;
  std::vector<tmword<std::int64_t>> arr(kN);
  for (int i = 0; i < kN; ++i) arr[i].setInitial(i);
  const auto last = tm.atomically([&](auto& tx) {
    std::int64_t v = 0;
    for (int i = 0; i < kN; ++i) v = tx.read(arr[i]);  // elastic traversal
    tx.write(arr[kN - 1], v + 1);                      // harden + commit
    return v;
  });
  EXPECT_EQ(last, kN - 1);
  EXPECT_EQ(tmword<std::int64_t>::unpack(arr[kN - 1].raw().load()), kN);
}

}  // namespace
}  // namespace pathcas::stm
