// Batched group commits (insertBatch/eraseBatch/updateBatch): sequential
// semantics against a std::map oracle under randomized batch/point
// interleavings, chunk-split determinism (outcomes must not depend on
// batchOpsPerCommit), graceful degradation when the staging budget
// overflows on deep trees, the mixed-run two-child/deferred erase shapes,
// and windowed linearizability stress mixing batched submissions with
// racing single-op commits — on the plain trees and on the sharded
// frontend (including with the flat combiner enabled), so one suite covers
// every layer a batch can commit through.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <barrier>
#include <cstdint>
#include <map>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "bench_fw/adapters.hpp"
#include "lin_check.hpp"
#include "service/sharded_map.hpp"
#include "trees/int_avl_pathcas.hpp"
#include "trees/int_bst_pathcas.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"

namespace pathcas::testing {
namespace {

using Bst = ds::IntBstPathCas<std::int64_t, std::int64_t>;
using Avl = ds::IntAvlPathCas<std::int64_t, std::int64_t>;
using BstMap = service::ShardedMap<Bst>;

constexpr std::size_t kMaxW = 160;  // widest batch any test submits

/// Sorted distinct key run drawn from [0, keySpace), width 1..maxW.
std::vector<std::int64_t> randomRun(Xoshiro256& rng, std::int64_t keySpace,
                                    std::size_t maxW) {
  const std::size_t w = 1 + rng.nextBounded(maxW);
  std::set<std::int64_t> picked;
  for (std::size_t i = 0; i < w; ++i)
    picked.insert(static_cast<std::int64_t>(
        rng.nextBounded(static_cast<std::uint64_t>(keySpace))));
  return {picked.begin(), picked.end()};
}

/// Randomized batch/point interleaving vs a std::map oracle. Batch keys are
/// distinct, so each op's expected outcome is independent of its batch
/// siblings: outcome[i] must equal what a per-op call would have returned
/// against the pre-batch state with the earlier batch ops applied — which,
/// for distinct keys, is just the pre-batch state.
template <typename Tree, bool HasUpdate>
void runBatchOracleFuzz(const ds::IntBstOptions& opt, std::int64_t keySpace,
                        int steps, std::uint64_t seed) {
  Tree t(opt);
  std::map<std::int64_t, std::int64_t> oracle;
  Xoshiro256 rng(seed);
  bool out[kMaxW];
  bool ins[kMaxW];

  for (int step = 0; step < steps; ++step) {
    const std::uint64_t action = rng.nextBounded(HasUpdate ? 6 : 5);
    const std::int64_t k = static_cast<std::int64_t>(
        rng.nextBounded(static_cast<std::uint64_t>(keySpace)));
    switch (action) {
      case 0:
        EXPECT_EQ(t.insert(k, k), oracle.emplace(k, k).second);
        break;
      case 1:
        EXPECT_EQ(t.erase(k), oracle.erase(k) != 0);
        break;
      case 2:
        EXPECT_EQ(t.contains(k), oracle.count(k) != 0);
        break;
      case 3: {  // insertBatch
        const auto run = randomRun(rng, keySpace, 100);
        std::size_t n = t.insertBatch(run.data(), run.data(), run.size(), out);
        std::size_t expect = 0;
        for (std::size_t i = 0; i < run.size(); ++i) {
          EXPECT_EQ(out[i], oracle.emplace(run[i], run[i]).second)
              << "insertBatch key " << run[i];
          expect += out[i];
        }
        EXPECT_EQ(n, expect);
        break;
      }
      case 4: {  // eraseBatch
        const auto run = randomRun(rng, keySpace, 100);
        std::size_t n = t.eraseBatch(run.data(), run.size(), out);
        std::size_t expect = 0;
        for (std::size_t i = 0; i < run.size(); ++i) {
          EXPECT_EQ(out[i], oracle.erase(run[i]) != 0)
              << "eraseBatch key " << run[i];
          expect += out[i];
        }
        EXPECT_EQ(n, expect);
        break;
      }
      default: {  // updateBatch (mixed run)
        if constexpr (HasUpdate) {
          const auto run = randomRun(rng, keySpace, 100);
          for (std::size_t i = 0; i < run.size(); ++i)
            ins[i] = rng.nextBounded(2) != 0;
          std::size_t n =
              t.updateBatch(run.data(), run.data(), ins, run.size(), out);
          std::size_t expect = 0;
          for (std::size_t i = 0; i < run.size(); ++i) {
            const bool want = ins[i] ? oracle.emplace(run[i], run[i]).second
                                     : oracle.erase(run[i]) != 0;
            EXPECT_EQ(out[i], want)
                << (ins[i] ? "mixed insert key " : "mixed erase key ")
                << run[i];
            expect += out[i];
          }
          EXPECT_EQ(n, expect);
        }
        break;
      }
    }
    if (step % 64 == 0) {
      const auto stats = t.checkInvariants();
      ASSERT_EQ(stats.size, oracle.size()) << "at step " << step;
    }
  }
  // Final full sweep: exact contents, not just aggregates.
  const auto stats = t.checkInvariants();
  ASSERT_EQ(stats.size, oracle.size());
  std::int64_t oracleSum = 0;
  for (const auto& [ok, ov] : oracle) oracleSum += ok;
  EXPECT_EQ(stats.keySum, oracleSum);
  auto it = oracle.begin();
  t.forEach([&](std::int64_t fk, std::int64_t fv) {
    ASSERT_NE(it, oracle.end());
    EXPECT_EQ(fk, it->first);
    EXPECT_EQ(fv, it->second);
    ++it;
  });
  EXPECT_EQ(it, oracle.end());
}

TEST(BatchOps, BstOracleFuzz) {
  runBatchOracleFuzz<Bst, true>({}, 512, 1200, 0xBA7C1);
}

TEST(BatchOps, BstOracleFuzzSmallKeySpace) {
  // Tiny key space: nearly every batch op hits occupied keys, so erase runs
  // constantly land on internal (incl. two-child) nodes and mixed runs
  // exercise the defer/swap decisions instead of the easy leaf cases.
  runBatchOracleFuzz<Bst, true>({}, 48, 1500, 0xBA7C2);
}

TEST(BatchOps, AvlOracleFuzz) {
  runBatchOracleFuzz<Avl, false>({}, 512, 1200, 0xBA7C3);
}

TEST(BatchOps, ChunkWidthDeterminism) {
  // Outcomes and final contents must not depend on batchOpsPerCommit: the
  // split-in-half retry ladder reaches width 1 for every chunk width, so a
  // replayed identical op sequence must agree bit-for-bit across widths.
  const std::uint64_t kSeed = 0x5EED5;
  const int kSteps = 600;
  std::vector<std::vector<bool>> firstOutcomes;
  std::vector<std::pair<std::int64_t, std::int64_t>> firstContents;
  bool first = true;
  for (int chunk : {1, 2, 3, 7, 32, 128}) {
    Bst t(ds::IntBstOptions{.batchOpsPerCommit = chunk});
    Xoshiro256 rng(kSeed);
    bool out[kMaxW];
    bool ins[kMaxW];
    std::vector<std::vector<bool>> outcomes;
    for (int step = 0; step < kSteps; ++step) {
      const auto run = randomRun(rng, 256, 100);
      const std::uint64_t kind = rng.nextBounded(3);
      for (std::size_t i = 0; i < run.size(); ++i)
        ins[i] = rng.nextBounded(2) != 0;
      if (kind == 0) {
        t.insertBatch(run.data(), run.data(), run.size(), out);
      } else if (kind == 1) {
        t.eraseBatch(run.data(), run.size(), out);
      } else {
        t.updateBatch(run.data(), run.data(), ins, run.size(), out);
      }
      outcomes.emplace_back(out, out + run.size());
    }
    std::vector<std::pair<std::int64_t, std::int64_t>> contents;
    t.rangeQuery(0, 255, contents);
    t.checkInvariants();
    if (first) {
      firstOutcomes = std::move(outcomes);
      firstContents = std::move(contents);
      first = false;
    } else {
      EXPECT_EQ(outcomes, firstOutcomes) << "chunk width " << chunk;
      EXPECT_EQ(contents, firstContents) << "chunk width " << chunk;
    }
  }
}

TEST(BatchOps, DeepChainOverflowSplitsToPerOp) {
  // Sequential inserts build a right-spine chain ~460 deep — deep enough
  // that staging a whole batch blows the shared staging budget
  // (kBatchStageBudget) and the run must split down to per-op commits,
  // while still within what per-op path validation supports.
  constexpr std::int64_t kDepth = 460;
  Bst t;
  std::map<std::int64_t, std::int64_t> oracle;
  for (std::int64_t k = 0; k < kDepth; k += 2) {
    ASSERT_TRUE(t.insert(k, k));
    oracle.emplace(k, k);
  }
  bool out[kMaxW];
  // Insert the odd keys near the bottom of the chain: every staged op
  // carries the full ~460-node path, so even a 2-op chunk overflows.
  std::vector<std::int64_t> ins;
  for (std::int64_t k = kDepth - 101; k < kDepth; k += 2) ins.push_back(k);
  t.insertBatch(ins.data(), ins.data(), ins.size(), out);
  for (std::size_t i = 0; i < ins.size(); ++i) {
    EXPECT_TRUE(out[i]) << "deep insert key " << ins[i];
    oracle.emplace(ins[i], ins[i]);
  }
  // Mixed run at depth: erase the evens back out, re-check the odds.
  std::vector<std::int64_t> mix;
  std::vector<char> isIns;
  for (std::int64_t k = kDepth - 100; k < kDepth; ++k) {
    mix.push_back(k);
    isIns.push_back(k % 2 == 0 ? 0 : 1);  // erase evens, re-insert odds
  }
  bool flags[kMaxW];
  for (std::size_t i = 0; i < mix.size(); ++i) flags[i] = isIns[i] != 0;
  t.updateBatch(mix.data(), mix.data(), flags, mix.size(), out);
  for (std::size_t i = 0; i < mix.size(); ++i) {
    const bool want = flags[i] ? oracle.emplace(mix[i], mix[i]).second
                               : oracle.erase(mix[i]) != 0;
    EXPECT_EQ(out[i], want) << "deep mixed key " << mix[i];
  }
  const auto stats = t.checkInvariants();
  EXPECT_EQ(stats.size, oracle.size());
}

TEST(BatchOps, MixedRunTwoChildAndDeferredErase) {
  /*        50
   *      /    \
   *    30      70
   *   /  \    /  \
   *  20  40  60  80
   *     /  \
   *    35  45        */
  Bst t;
  for (std::int64_t k : {50, 30, 70, 20, 40, 60, 80, 35, 45})
    ASSERT_TRUE(t.insert(k, k));
  // One mixed run: erase 30 (two children) and 70 (two children), insert 33
  // into 30's subtree and 75 into 70's, erase absent 55. The insert into a
  // to-be-erased node's subtree forces the deferred path (the two-child
  // swap may not run when a child of the victim was staged).
  const std::int64_t keys[] = {30, 33, 55, 70, 75};
  const std::int64_t vals[] = {30, 33, 55, 70, 75};
  const bool flags[] = {false, true, false, false, true};
  bool out[5];
  t.updateBatch(keys, vals, flags, 5, out);
  EXPECT_TRUE(out[0]);   // 30 erased
  EXPECT_TRUE(out[1]);   // 33 inserted
  EXPECT_FALSE(out[2]);  // 55 was absent
  EXPECT_TRUE(out[3]);   // 70 erased
  EXPECT_TRUE(out[4]);   // 75 inserted
  const auto stats = t.checkInvariants();
  EXPECT_EQ(stats.size, 9u);
  for (std::int64_t k : {50, 20, 40, 60, 80, 35, 45, 33, 75})
    EXPECT_TRUE(t.contains(k)) << k;
  EXPECT_FALSE(t.contains(30));
  EXPECT_FALSE(t.contains(70));
}

// ---------------------------------------------------------------------
// Windowed linearizability stress with batched submissions racing
// single-op commits. One submitter thread issues a batch of kBatchW
// distinct-key ops per round; point threads race insert/erase/contains/
// rangeQuery against it. Every logical op of a batch is recorded with the
// batch call's invocation/response span — they are genuinely concurrent
// with each other and with the point ops, which is exactly what the
// checker verifies a sequential witness for.
// ---------------------------------------------------------------------

enum class BatchKind {
  kMixed,   // updateBatch with random per-op insert/erase flags
  kTwoRun,  // alternate insertBatch / eraseBatch rounds
};

template <typename SetT>
void runBatchLinStress(SetT& set, BatchKind kind, int rounds,
                       std::int64_t keySpace, std::uint64_t seed) {
  ASSERT_LE(keySpace, 64);
  constexpr int kPointThreads = 2;
  constexpr std::size_t kBatchW = 3;
  const int nThreads = kPointThreads + 1;  // thread 0 submits batches
  std::atomic<std::uint64_t> clock{0};
  std::barrier barrier(nThreads);
  // hist[t][r]: the logical ops thread t completed in round r.
  std::vector<std::vector<std::vector<RecordedOp>>> hist(
      static_cast<std::size_t>(nThreads));
  for (auto& h : hist) h.resize(static_cast<std::size_t>(rounds));

  std::vector<std::thread> workers;
  for (int t = 0; t < nThreads; ++t) {
    workers.emplace_back([&, t] {
      ThreadGuard tg;
      Xoshiro256 rng(seed * 1000003 + static_cast<std::uint64_t>(t));
      std::vector<std::pair<std::int64_t, std::int64_t>> buf;
      for (int r = 0; r < rounds; ++r) {
        barrier.arrive_and_wait();
        auto& recs = hist[static_cast<std::size_t>(t)]
                         [static_cast<std::size_t>(r)];
        if (t == 0) {  // batch submitter
          std::set<std::int64_t> picked;
          while (picked.size() < kBatchW)
            picked.insert(static_cast<std::int64_t>(
                rng.nextBounded(static_cast<std::uint64_t>(keySpace))));
          std::int64_t keys[kBatchW];
          std::int64_t vals[kBatchW];
          bool flags[kBatchW];
          bool out[kBatchW] = {};
          std::size_t i = 0;
          for (const std::int64_t k : picked) {
            keys[i] = k;
            vals[i] = k;
            flags[i] = rng.nextBounded(2) != 0;
            ++i;
          }
          const bool insertRound = (r % 2) == 0;
          const std::uint64_t inv = clock.fetch_add(1);
          if (kind == BatchKind::kMixed) {
            if constexpr (requires {
                            set.updateBatch(keys, vals, flags, kBatchW, out);
                          }) {
              set.updateBatch(keys, vals, flags, kBatchW, out);
            }
          } else if (insertRound) {
            set.insertBatch(keys, vals, kBatchW, out);
          } else {
            set.eraseBatch(keys, kBatchW, out);
          }
          const std::uint64_t res = clock.fetch_add(1);
          for (std::size_t j = 0; j < kBatchW; ++j) {
            RecordedOp rec;
            const bool isIns =
                kind == BatchKind::kMixed ? flags[j] : insertRound;
            rec.kind = isIns ? OpKind::kInsert : OpKind::kErase;
            rec.a = keys[j];
            rec.boolResult = out[j];
            rec.inv = inv;
            rec.res = res;
            recs.push_back(std::move(rec));
          }
        } else {  // racing point ops
          RecordedOp rec;
          const std::int64_t k = static_cast<std::int64_t>(
              rng.nextBounded(static_cast<std::uint64_t>(keySpace)));
          const std::uint64_t dice = rng.nextBounded(100);
          if (dice < 35) {
            rec.kind = OpKind::kInsert;
            rec.a = k;
            rec.inv = clock.fetch_add(1);
            rec.boolResult = set.insert(k, k);
          } else if (dice < 70) {
            rec.kind = OpKind::kErase;
            rec.a = k;
            rec.inv = clock.fetch_add(1);
            rec.boolResult = set.erase(k);
          } else if (dice < 85) {
            rec.kind = OpKind::kContains;
            rec.a = k;
            rec.inv = clock.fetch_add(1);
            rec.boolResult = set.contains(k);
          } else {
            rec.kind = OpKind::kRangeQuery;
            rec.a = k;
            rec.b = k + static_cast<std::int64_t>(rng.nextBounded(
                            static_cast<std::uint64_t>(keySpace - k)));
            buf.clear();
            rec.inv = clock.fetch_add(1);
            set.rangeQuery(rec.a, rec.b, buf);
            for (const auto& [bk, bv] : buf) {
              EXPECT_EQ(bk, bv);  // torn-value detector
              rec.keysResult.push_back(bk);
            }
          }
          rec.res = clock.fetch_add(1);
          recs.push_back(std::move(rec));
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  std::set<LinState> states = {0};
  for (int r = 0; r < rounds; ++r) {
    std::vector<RecordedOp> window;
    for (int t = 0; t < nThreads; ++t) {
      const auto& recs =
          hist[static_cast<std::size_t>(t)][static_cast<std::size_t>(r)];
      window.insert(window.end(), recs.begin(), recs.end());
    }
    states = linearizeWindow(window, states);
    ASSERT_FALSE(states.empty())
        << "history not linearizable at window " << r << ": "
        << describeWindow(window);
  }

  std::vector<std::pair<std::int64_t, std::int64_t>> finalKeys;
  set.rangeQuery(0, keySpace - 1, finalKeys);
  LinState finalMask = 0;
  for (const auto& [fk, fv] : finalKeys) finalMask |= LinState{1} << fk;
  EXPECT_TRUE(states.count(finalMask))
      << "final contents (mask " << finalMask
      << ") not among the linearizable outcomes";
}

TEST(BatchOps, LinStressBstMixedBatches) {
  PathCasBstAdapter<false> set;
  runBatchLinStress(set, BatchKind::kMixed, 250, 16, 0x11A1);
}

TEST(BatchOps, LinStressBstTwoRunBatches) {
  PathCasBstAdapter<false> set;
  runBatchLinStress(set, BatchKind::kTwoRun, 250, 16, 0x11A2);
}

TEST(BatchOps, LinStressAvlTwoRunBatches) {
  PathCasAvlAdapter<false> set;
  runBatchLinStress(set, BatchKind::kTwoRun, 250, 16, 0x11A3);
}

TEST(BatchOps, LinStressShardedBatches) {
  for (int nshards : {1, 3}) {
    BstMap map(nshards, 16);
    SCOPED_TRACE("shards=" + std::to_string(nshards));
    runBatchLinStress(map, BatchKind::kTwoRun, 250, 16,
                      0x11B0 + static_cast<std::uint64_t>(nshards));
  }
}

TEST(BatchOps, LinStressShardedCombining) {
  // Batched submissions AND the flat combiner active on the same shards:
  // batch slices take the combiner lock while point ops route through
  // publication slots — the two commit paths must still compose into one
  // linearizable history.
  BstMap::Config cfg;
  cfg.combineWindow = 8;
  BstMap map(2, 16, cfg);
  runBatchLinStress(map, BatchKind::kTwoRun, 250, 16, 0x11C0);
}

}  // namespace
}  // namespace pathcas::testing
