// Tests for the relaxed (a,b)-tree built with PathCAS: leaf splits,
// copy-on-write updates, oracle semantics and concurrent keysum stress.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "structs/abtree_pathcas.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"

namespace pathcas::ds {
namespace {

using AbTree = AbTreePathCas<std::int64_t, std::int64_t, 8>;

TEST(AbTree, EmptyTree) {
  AbTree t;
  EXPECT_FALSE(t.contains(1));
  EXPECT_FALSE(t.erase(1));
  EXPECT_EQ(t.size(), 0u);
}

TEST(AbTree, FillOneLeafThenSplit) {
  AbTree t;
  for (std::int64_t k = 0; k < 8; ++k) EXPECT_TRUE(t.insert(k, k * 10));
  EXPECT_EQ(t.size(), 8u);   // exactly one full leaf
  EXPECT_TRUE(t.insert(8, 80));  // forces the blind split
  EXPECT_EQ(t.size(), 9u);
  for (std::int64_t k = 0; k <= 8; ++k) {
    EXPECT_TRUE(t.contains(k));
    EXPECT_EQ(t.get(k).value(), k * 10);
  }
  t.checkInvariants();
}

TEST(AbTree, ManySplitsKeepOrder) {
  AbTree t;
  for (std::int64_t k = 0; k < 2000; ++k) ASSERT_TRUE(t.insert(k, k));
  EXPECT_EQ(t.size(), 2000u);
  t.checkInvariants();
  for (std::int64_t k = 1999; k >= 0; --k) ASSERT_TRUE(t.contains(k));
}

TEST(AbTree, RandomOpsMatchOracle) {
  AbTree t;
  std::set<std::int64_t> oracle;
  Xoshiro256 rng(4242);
  for (int i = 0; i < 20000; ++i) {
    const std::int64_t k = static_cast<std::int64_t>(rng.nextBounded(500));
    switch (rng.nextBounded(3)) {
      case 0:
        ASSERT_EQ(t.insert(k, k), oracle.insert(k).second) << i;
        break;
      case 1:
        ASSERT_EQ(t.erase(k), oracle.erase(k) > 0) << i;
        break;
      default:
        ASSERT_EQ(t.contains(k), oracle.count(k) > 0) << i;
    }
  }
  EXPECT_EQ(t.size(), oracle.size());
  std::int64_t sum = 0;
  for (auto k : oracle) sum += k;
  EXPECT_EQ(t.keySum(), sum);
  t.checkInvariants();
}

struct AbStressParams {
  int threads;
  int ops;
  std::int64_t range;
};

class AbTreeStress : public ::testing::TestWithParam<AbStressParams> {};

TEST_P(AbTreeStress, ConcurrentKeysumInvariant) {
  const auto p = GetParam();
  AbTree t;
  std::vector<std::thread> workers;
  std::vector<std::int64_t> deltas(p.threads, 0);
  for (int w = 0; w < p.threads; ++w) {
    workers.emplace_back([&, w] {
      ThreadGuard tg;
      Xoshiro256 rng(777 + w);
      std::int64_t d = 0;
      for (int i = 0; i < p.ops; ++i) {
        const auto k = static_cast<std::int64_t>(rng.nextBounded(p.range));
        switch (rng.nextBounded(4)) {
          case 0:
            if (t.insert(k, k)) d += k;
            break;
          case 1:
            if (t.erase(k)) d -= k;
            break;
          default:
            (void)t.contains(k);
        }
      }
      deltas[w] = d;
    });
  }
  for (auto& th : workers) th.join();
  std::int64_t expected = 0;
  for (auto d : deltas) expected += d;
  EXPECT_EQ(t.keySum(), expected);
  t.checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(Sweep, AbTreeStress,
                         ::testing::Values(AbStressParams{2, 6000, 64},
                                           AbStressParams{4, 3000, 512},
                                           AbStressParams{8, 1500, 4096}),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param.threads) +
                                  "_k" + std::to_string(info.param.range);
                         });

}  // namespace
}  // namespace pathcas::ds
