// Tests for the DEBRA-style epoch-based reclamation domain: deferred frees,
// epoch advancement, guard nesting, and a concurrent use-after-retire stress
// that fails (under ASan or via canary values) if EBR frees too early.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "recl/ebr.hpp"

namespace pathcas::recl {
namespace {

struct Canary {
  static std::atomic<int> liveCount;
  std::uint64_t magic = kMagic;
  std::atomic<std::uint64_t> payload{0};
  static constexpr std::uint64_t kMagic = 0xfeedfacecafebeefULL;
  Canary() { liveCount.fetch_add(1); }
  ~Canary() {
    EXPECT_EQ(magic, kMagic) << "double free or corruption";
    magic = 0;
    liveCount.fetch_sub(1);
  }
};
std::atomic<int> Canary::liveCount{0};

TEST(Ebr, RetiredNodeNotFreedWhileGuardHeld) {
  EbrDomain domain;
  auto* c = new Canary();
  {
    auto g = domain.pin();
    domain.retire(c);
    // Force many epoch-advance opportunities; our own pin blocks them all
    // from freeing the current bag.
    for (int i = 0; i < 1000; ++i) {
      auto g2 = domain.pin();  // nested: must not unpin the outer guard
      (void)g2;
    }
    EXPECT_EQ(c->magic, Canary::kMagic);  // still alive
  }
  // After unpinning, pins from this thread advance epochs and free the bag.
  for (int i = 0; i < 1000; ++i) {
    auto g = domain.pin();
    (void)g;
  }
  EXPECT_EQ(Canary::liveCount.load(), 0);
}

TEST(Ebr, DrainAllFreesEverythingWhenQuiescent) {
  EbrDomain domain;
  for (int i = 0; i < 100; ++i) {
    auto g = domain.pin();
    domain.retire(new Canary());
  }
  EXPECT_GT(Canary::liveCount.load(), 0);
  domain.drainAll();
  EXPECT_EQ(Canary::liveCount.load(), 0);
  EXPECT_EQ(domain.retiredCount(), 100u);
}

TEST(Ebr, EpochAdvancesWhenAllThreadsQuiescent) {
  EbrDomain domain;
  const auto e0 = domain.epoch();
  for (std::uint64_t i = 0; i < 200; ++i) {
    auto g = domain.pin();
    (void)g;
  }
  EXPECT_GT(domain.epoch(), e0);
}

TEST(Ebr, PinnedStragglerBlocksAdvance) {
  EbrDomain domain;
  std::atomic<bool> pinned{false}, release{false};
  std::thread straggler([&] {
    ThreadGuard tg;
    auto g = domain.pin();
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();
  const auto e0 = domain.epoch();
  for (int i = 0; i < 500; ++i) {
    auto g = domain.pin();
    (void)g;
  }
  // The straggler is pinned in an old epoch: at most one advance can happen.
  EXPECT_LE(domain.epoch(), e0 + 1);
  release.store(true);
  straggler.join();
}

// Readers traverse a one-slot "structure" while an updater swaps and retires
// nodes. If EBR freed early, readers would dereference freed memory (caught
// by the canary magic check and/or ASan).
TEST(Ebr, ConcurrentRetireStress) {
  EbrDomain domain;
  std::atomic<Canary*> slot{new Canary()};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      ThreadGuard tg;
      while (!stop.load(std::memory_order_relaxed)) {
        auto g = domain.pin();
        Canary* c = slot.load(std::memory_order_acquire);
        ASSERT_EQ(c->magic, Canary::kMagic);
        c->payload.fetch_add(1, std::memory_order_relaxed);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  {
    ThreadGuard tg;
    // Run at least 20k swaps, and keep going (bounded) until readers have
    // observably interleaved — on a single core they may be scheduled late.
    for (int i = 0; i < 2000000 &&
                    (i < 20000 || reads.load(std::memory_order_relaxed) < 1000);
         ++i) {
      auto g = domain.pin();
      Canary* fresh = new Canary();
      Canary* old = slot.exchange(fresh, std::memory_order_acq_rel);
      domain.retire(old);
      if (i % 256 == 0) std::this_thread::yield();
    }
  }
  stop.store(true);
  for (auto& r : readers) r.join();
  domain.drainAll();
  EXPECT_EQ(Canary::liveCount.load(), 1);  // only the final slot occupant
  delete slot.load();
  EXPECT_GT(reads.load(), 0u);
}

TEST(Ebr, FreedCountEventuallyCatchesUp) {
  EbrDomain domain;
  {
    ThreadGuard tg;
    for (int i = 0; i < 500; ++i) {
      auto g = domain.pin();
      domain.retire(new Canary());
    }
    for (int i = 0; i < 2000; ++i) {
      auto g = domain.pin();
      (void)g;
    }
  }
  EXPECT_GT(domain.freedCount(), 0u);
  domain.drainAll();
  EXPECT_EQ(domain.freedCount(), domain.retiredCount());
}

}  // namespace
}  // namespace pathcas::recl
