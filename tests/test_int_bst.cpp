// Tests for the PathCAS internal BST: sequential semantics against a
// std::set oracle, structural invariants, and concurrent stress with the
// setbench-style keysum validation (sum of keys successfully inserted minus
// keys successfully deleted must equal the final tree keysum).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "trees/int_bst_pathcas.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"

namespace pathcas::ds {
namespace {

using Bst = IntBstPathCas<std::int64_t, std::int64_t>;

TEST(IntBst, EmptyTreeBasics) {
  Bst t;
  EXPECT_FALSE(t.contains(5));
  EXPECT_FALSE(t.erase(5));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.get(5).has_value());
}

TEST(IntBst, InsertContainsErase) {
  Bst t;
  EXPECT_TRUE(t.insert(10, 100));
  EXPECT_TRUE(t.contains(10));
  EXPECT_FALSE(t.insert(10, 200));  // insertIfAbsent
  EXPECT_EQ(t.get(10).value(), 100);
  EXPECT_TRUE(t.erase(10));
  EXPECT_FALSE(t.contains(10));
  EXPECT_FALSE(t.erase(10));
  EXPECT_EQ(t.size(), 0u);
}

TEST(IntBst, LeafOneChildTwoChildDeletions) {
  Bst t;
  /*        50
   *      /    \
   *    30      70
   *   /  \    /
   *  20  40  60      */
  for (std::int64_t k : {50, 30, 70, 20, 40, 60}) EXPECT_TRUE(t.insert(k, k));
  EXPECT_TRUE(t.erase(20));  // leaf
  t.checkInvariants();
  EXPECT_TRUE(t.erase(70));  // one child (60)
  t.checkInvariants();
  EXPECT_TRUE(t.erase(30));  // one child now (40)
  t.checkInvariants();
  EXPECT_TRUE(t.erase(50));  // two children (40, 60): successor promotion
  t.checkInvariants();
  EXPECT_FALSE(t.contains(50));
  EXPECT_TRUE(t.contains(40));
  EXPECT_TRUE(t.contains(60));
  EXPECT_EQ(t.size(), 2u);
}

TEST(IntBst, TwoChildDeleteWhereSuccessorIsRightChild) {
  Bst t;
  /*    50
   *   /  \
   *  30    70   (succ of 50 is 70, the right child: succP == curr)
   *          \
   *           80     */
  for (std::int64_t k : {50, 30, 70, 80}) EXPECT_TRUE(t.insert(k, k));
  EXPECT_TRUE(t.erase(50));
  t.checkInvariants();
  EXPECT_TRUE(t.contains(70));
  EXPECT_TRUE(t.contains(80));
  EXPECT_TRUE(t.contains(30));
  EXPECT_EQ(t.size(), 3u);
}

TEST(IntBst, TwoChildDeleteWithDeepSuccessorHavingRightChild) {
  Bst t;
  /*      50
   *    /    \
   *  30      90
   *         /
   *       60       (succ of 50; has a right child 70)
   *         \
   *          70    */
  for (std::int64_t k : {50, 30, 90, 60, 70}) EXPECT_TRUE(t.insert(k, k));
  EXPECT_TRUE(t.erase(50));
  t.checkInvariants();
  for (std::int64_t k : {30, 60, 70, 90}) EXPECT_TRUE(t.contains(k));
  EXPECT_EQ(t.size(), 4u);
}

TEST(IntBst, ValuesFollowSuccessorPromotion) {
  Bst t;
  t.insert(50, 500);
  t.insert(30, 300);
  t.insert(70, 700);
  t.erase(50);
  EXPECT_EQ(t.get(70).value(), 700);
  EXPECT_EQ(t.get(30).value(), 300);
}

TEST(IntBst, NegativeKeys) {
  Bst t;
  for (std::int64_t k : {-5, -50, 0, 17, -1}) EXPECT_TRUE(t.insert(k, k));
  for (std::int64_t k : {-5, -50, 0, 17, -1}) EXPECT_TRUE(t.contains(k));
  EXPECT_EQ(t.keySum(), -5 - 50 + 0 + 17 - 1);
  EXPECT_TRUE(t.erase(-50));
  EXPECT_FALSE(t.contains(-50));
  t.checkInvariants();
}

TEST(IntBst, RandomOpsMatchOracle) {
  Bst t;
  std::set<std::int64_t> oracle;
  Xoshiro256 rng(2024);
  for (int i = 0; i < 20000; ++i) {
    const std::int64_t k = static_cast<std::int64_t>(rng.nextBounded(300));
    switch (rng.nextBounded(3)) {
      case 0:
        ASSERT_EQ(t.insert(k, k * 2), oracle.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(t.erase(k), oracle.erase(k) > 0);
        break;
      default:
        ASSERT_EQ(t.contains(k), oracle.count(k) > 0);
    }
  }
  const TreeStats stats = t.checkInvariants();
  EXPECT_EQ(stats.size, oracle.size());
  std::int64_t oracleSum = 0;
  for (auto k : oracle) oracleSum += k;
  EXPECT_EQ(stats.keySum, oracleSum);
  // In-order traversal matches oracle order and values.
  std::vector<std::int64_t> keys;
  t.forEach([&](std::int64_t k, std::int64_t v) {
    keys.push_back(k);
    EXPECT_EQ(v, k * 2);
  });
  EXPECT_TRUE(std::equal(keys.begin(), keys.end(), oracle.begin(),
                         oracle.end()));
}

TEST(IntBst, AscendingAndDescendingInsertions) {
  Bst t;
  for (std::int64_t k = 0; k < 300; ++k) EXPECT_TRUE(t.insert(k, k));
  for (std::int64_t k = -1; k > -300; --k) EXPECT_TRUE(t.insert(k, k));
  const TreeStats s = t.checkInvariants();
  EXPECT_EQ(s.size, 599u);
  EXPECT_EQ(s.height, 300u);  // degenerate chains, still correct
  for (std::int64_t k = -299; k < 300; ++k) EXPECT_TRUE(t.erase(k));
  EXPECT_EQ(t.size(), 0u);
}

TEST(IntBst, ReducedValidationOffStillCorrect) {
  Bst t(IntBstOptions{.reduceValidation = false});
  std::set<std::int64_t> oracle;
  Xoshiro256 rng(7);
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t k = static_cast<std::int64_t>(rng.nextBounded(100));
    if (rng.nextBounded(2)) {
      ASSERT_EQ(t.insert(k, k), oracle.insert(k).second);
    } else {
      ASSERT_EQ(t.erase(k), oracle.erase(k) > 0);
    }
  }
  EXPECT_EQ(t.size(), oracle.size());
}

// ---------------------------------------------------------------------------
// Concurrency.
// ---------------------------------------------------------------------------

struct StressParams {
  int threads;
  int opsPerThread;
  std::int64_t keyRange;
  bool useHtmFastPath;
};

class IntBstStress : public ::testing::TestWithParam<StressParams> {};

TEST_P(IntBstStress, KeysumInvariantHolds) {
  const StressParams p = GetParam();
  Bst t(IntBstOptions{.useHtmFastPath = p.useHtmFastPath});
  // Prefill half the key range so deletes hit.
  std::int64_t prefillSum = 0;
  {
    Xoshiro256 rng(1);
    for (std::int64_t i = 0; i < p.keyRange / 2; ++i) {
      const auto k = static_cast<std::int64_t>(rng.nextBounded(p.keyRange));
      if (t.insert(k, k)) prefillSum += k;
    }
  }
  std::vector<std::thread> workers;
  std::vector<std::int64_t> deltas(p.threads, 0);
  for (int w = 0; w < p.threads; ++w) {
    workers.emplace_back([&, w] {
      ThreadGuard tg;
      Xoshiro256 rng(100 + w);
      std::int64_t delta = 0;
      for (int i = 0; i < p.opsPerThread; ++i) {
        const auto k = static_cast<std::int64_t>(rng.nextBounded(p.keyRange));
        switch (rng.nextBounded(4)) {
          case 0:
            if (t.insert(k, k)) delta += k;
            break;
          case 1:
            if (t.erase(k)) delta -= k;
            break;
          default: {
            // contains result must be a plausible boolean; correctness of
            // the snapshot is enforced by the validated-search design.
            (void)t.contains(k);
          }
        }
      }
      deltas[w] = delta;
    });
  }
  for (auto& th : workers) th.join();
  std::int64_t expected = prefillSum;
  for (auto d : deltas) expected += d;
  const TreeStats stats = t.checkInvariants();  // also checks BST order
  EXPECT_EQ(stats.keySum, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IntBstStress,
    ::testing::Values(StressParams{2, 8000, 64, false},
                      StressParams{4, 5000, 16, false},   // high contention
                      StressParams{4, 5000, 2048, false},
                      StressParams{8, 2000, 256, false},
                      StressParams{4, 3000, 256, true}),  // HTM fast path
    [](const auto& info) {
      const StressParams& p = info.param;
      return "t" + std::to_string(p.threads) + "_k" +
             std::to_string(p.keyRange) + (p.useHtmFastPath ? "_htm" : "");
    });

// Concurrent contains must never report a key absent while it is
// continuously present (the Fig. 2 scenario is excluded by validation).
TEST(IntBstConcurrent, StablePresentKeysAlwaysFound) {
  Bst t;
  const std::vector<std::int64_t> stable = {100, 200, 300, 400, 500};
  for (auto k : stable) ASSERT_TRUE(t.insert(k, k));
  std::atomic<bool> stop{false};
  // Churn threads insert/delete keys around (but never equal to) the stable
  // keys, forcing constant restructuring including two-child deletions.
  std::vector<std::thread> churn;
  for (int w = 0; w < 3; ++w) {
    churn.emplace_back([&, w] {
      ThreadGuard tg;
      Xoshiro256 rng(7 + w);
      while (!stop.load(std::memory_order_relaxed)) {
        std::int64_t k = static_cast<std::int64_t>(rng.nextBounded(600));
        if (k % 100 == 0) ++k;  // avoid the stable keys
        if (rng.nextBounded(2)) {
          t.insert(k, k);
        } else {
          t.erase(k);
        }
      }
    });
  }
  {
    ThreadGuard tg;
    for (int i = 0; i < 20000; ++i) {
      ASSERT_TRUE(t.contains(stable[i % stable.size()]));
    }
  }
  stop.store(true);
  for (auto& th : churn) th.join();
  t.checkInvariants();
}

}  // namespace
}  // namespace pathcas::ds
