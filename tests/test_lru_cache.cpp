// Composite-invariant battery for the KCAS-backed LRU/TTL cache
// (structs/lru_cache.hpp). The cache's claim is cross-structure atomicity:
// every mutation — hit promotion, insert, eviction, TTL collection — commits
// the hash index and the recency list in ONE KCAS. The battery checks that
// claim four ways:
//   1. oracle fuzz against a sequential unordered_map + list model under the
//      virtual TTL clock (capacity never exceeded, hit promotes to MRU, the
//      evicted key is the true LRU, expired entries are never returned);
//   2. deterministic TTL unit tests (no sleeps — TtlClock is pinned);
//   3. multi-thread churn with quiescent checkInvariants() between rounds
//      (hash set == list set, links agree, size honest);
//   4. a lin_check.hpp windowed stress: with capacity == keySpace and TTL 0
//      the cache IS a map (the size anchor in the eviction commit makes
//      spurious below-capacity evictions impossible), so put/erase/contains
//      histories must linearize window by window.
// Zero-leak teardown is a built-in: ~LruTtlCache drains its owned DomainSet
// and aborts unless every allocation is accounted for — every test exercises
// it by destruction.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstdint>
#include <list>
#include <optional>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "lin_check.hpp"
#include "structs/lru_cache.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"
#include "util/timing.hpp"

namespace pathcas::testing {
namespace {

using Cache = ds::LruTtlCache<>;
using ds::CacheGet;

// ---------------------------------------------------------------------------
// Sequential oracle: unordered_map + std::list with the exact advertised
// semantics. front() of the list is MRU, back() is LRU.
// ---------------------------------------------------------------------------

class ModelCache {
 public:
  struct Put {
    bool updated = false;
    bool inserted = false;
    bool evicted = false;
    std::int64_t victim = 0;
  };

  explicit ModelCache(std::size_t cap) : cap_(cap) {}

  Put put(std::int64_t k, std::int64_t v, std::uint64_t ttlNs,
          std::uint64_t now) {
    Put res;
    const std::uint64_t exp = ttlNs == 0 ? 0 : now + ttlNs;
    auto it = map_.find(k);
    if (it != map_.end()) {
      // Present — even if its TTL lapsed but was never collected.
      it->second.val = v;
      it->second.exp = exp;
      touch(it);
      res.updated = true;
      return res;
    }
    if (map_.size() >= cap_) {
      res.evicted = true;
      res.victim = rec_.back();
      map_.erase(rec_.back());
      rec_.pop_back();
    }
    rec_.push_front(k);
    map_[k] = Entry{v, exp, rec_.begin()};
    res.inserted = true;
    return res;
  }

  CacheGet get(std::int64_t k, std::uint64_t now, std::int64_t* out) {
    auto it = map_.find(k);
    if (it == map_.end()) return CacheGet::kMiss;
    if (expired(it->second, now)) {
      rec_.erase(it->second.it);
      map_.erase(it);
      return CacheGet::kExpired;  // lazily collected, like the real thing
    }
    *out = it->second.val;
    touch(it);
    return CacheGet::kHit;
  }

  CacheGet peek(std::int64_t k, std::uint64_t now, std::int64_t* out) const {
    auto it = map_.find(k);
    if (it == map_.end()) return CacheGet::kMiss;
    if (expired(it->second, now)) return CacheGet::kExpired;
    *out = it->second.val;
    return CacheGet::kHit;
  }

  bool erase(std::int64_t k) {
    auto it = map_.find(k);
    if (it == map_.end()) return false;
    rec_.erase(it->second.it);
    map_.erase(it);
    return true;
  }

  std::size_t purgeExpired(std::uint64_t now) {
    std::size_t n = 0;
    for (auto it = map_.begin(); it != map_.end();) {
      if (expired(it->second, now)) {
        rec_.erase(it->second.it);
        it = map_.erase(it);
        ++n;
      } else {
        ++it;
      }
    }
    return n;
  }

  std::size_t size() const { return map_.size(); }
  std::vector<std::int64_t> recency() const {
    return {rec_.begin(), rec_.end()};
  }

 private:
  struct Entry {
    std::int64_t val;
    std::uint64_t exp;  // 0 = never
    std::list<std::int64_t>::iterator it;
  };
  static bool expired(const Entry& e, std::uint64_t now) {
    return e.exp != 0 && e.exp <= now;
  }
  void touch(std::unordered_map<std::int64_t, Entry>::iterator it) {
    rec_.erase(it->second.it);
    rec_.push_front(it->first);
    it->second.it = rec_.begin();
  }

  std::size_t cap_;
  std::list<std::int64_t> rec_;  // front = MRU
  std::unordered_map<std::int64_t, Entry> map_;
};

/// Pins the virtual clock for TTL determinism; restores real time on exit so
/// later tests (and the bench smokes) see the tsc again.
class LruCacheTtl : public ::testing::Test {
 protected:
  void SetUp() override { TtlClock::useVirtual(1'000); }
  void TearDown() override { TtlClock::useReal(); }
};

// ---------------------------------------------------------------------------
// Sequential semantics.
// ---------------------------------------------------------------------------

TEST(LruCache, BasicPutGetErase) {
  Cache c(4);
  EXPECT_EQ(c.size(), 0);
  EXPECT_EQ(c.capacity(), 4);
  EXPECT_FALSE(c.get(1).has_value());

  auto r = c.put(1, 10);
  EXPECT_TRUE(r.inserted);
  EXPECT_FALSE(r.updated);
  EXPECT_FALSE(r.evicted);
  EXPECT_EQ(c.get(1), std::optional<std::int64_t>(10));
  EXPECT_TRUE(c.contains(1));

  r = c.put(1, 11);  // refresh
  EXPECT_TRUE(r.updated);
  EXPECT_FALSE(r.inserted);
  EXPECT_EQ(c.get(1), std::optional<std::int64_t>(11));
  EXPECT_EQ(c.size(), 1);

  EXPECT_TRUE(c.erase(1));
  EXPECT_FALSE(c.erase(1));
  EXPECT_EQ(c.size(), 0);
  EXPECT_FALSE(c.contains(1));
  EXPECT_GT(c.footprintBytes(), 0u);
  c.checkInvariants();
}

TEST(LruCache, HitPromotesToMruAndEvictionTakesTrueLru) {
  Cache c(3);
  c.put(1, 1);
  c.put(2, 2);
  c.put(3, 3);
  EXPECT_EQ(c.recencyKeys(), (std::vector<std::int64_t>{3, 2, 1}));

  std::int64_t v = 0;
  EXPECT_EQ(c.get(1, &v), CacheGet::kHit);  // promotes 1
  EXPECT_EQ(c.recencyKeys(), (std::vector<std::int64_t>{1, 3, 2}));

  EXPECT_EQ(c.get(1, &v), CacheGet::kHit);  // already MRU: commit-free path
  EXPECT_EQ(c.recencyKeys(), (std::vector<std::int64_t>{1, 3, 2}));

  EXPECT_EQ(c.peek(2, &v), CacheGet::kHit);  // peek must NOT promote
  EXPECT_EQ(c.recencyKeys(), (std::vector<std::int64_t>{1, 3, 2}));

  const auto r = c.put(4, 4);  // full: 2 is now the true LRU
  EXPECT_TRUE(r.inserted);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.victim, 2);
  EXPECT_FALSE(c.contains(2));
  EXPECT_EQ(c.recencyKeys(), (std::vector<std::int64_t>{4, 1, 3}));
  EXPECT_EQ(c.size(), 3);
  c.checkInvariants();
}

TEST(LruCache, CapacityOneAndTwoEvictionAliases) {
  // capacity 1 hits the single-entry splice (victim == displaced MRU);
  // capacity 2 hits the vp == m two-element case. Both are the aliasing
  // branches the Bumps dedupe exists for.
  Cache one(1);
  EXPECT_TRUE(one.put(7, 70).inserted);
  const auto r1 = one.put(8, 80);
  EXPECT_TRUE(r1.evicted);
  EXPECT_EQ(r1.victim, 7);
  EXPECT_EQ(one.size(), 1);
  EXPECT_EQ(one.get(8), std::optional<std::int64_t>(80));
  EXPECT_FALSE(one.contains(7));
  one.checkInvariants();

  Cache two(2);
  two.put(1, 1);
  two.put(2, 2);
  const auto r2 = two.put(3, 3);
  EXPECT_TRUE(r2.evicted);
  EXPECT_EQ(r2.victim, 1);
  EXPECT_EQ(two.recencyKeys(), (std::vector<std::int64_t>{3, 2}));
  two.checkInvariants();
}

// ---------------------------------------------------------------------------
// TTL under the virtual clock — no sleeps anywhere.
// ---------------------------------------------------------------------------

TEST_F(LruCacheTtl, ExpiredEntriesAreNeverReturned) {
  Cache c(4);
  c.put(1, 10, /*ttlNs=*/100);
  c.put(2, 20);  // no TTL

  std::int64_t v = 0;
  TtlClock::advance(99);  // now = 1'099 < 1'100: still live
  EXPECT_EQ(c.get(1, &v), CacheGet::kHit);
  EXPECT_EQ(v, 10);

  TtlClock::advance(2);  // now = 1'101 >= deadline
  EXPECT_EQ(c.peek(1, &v), CacheGet::kExpired);  // observed, NOT collected
  EXPECT_EQ(c.size(), 2);
  EXPECT_EQ(c.get(1, &v), CacheGet::kExpired);  // lazily collected
  EXPECT_EQ(c.size(), 1);
  EXPECT_EQ(c.get(1, &v), CacheGet::kMiss);  // gone for good
  EXPECT_FALSE(c.contains(1));
  EXPECT_EQ(c.peek(2, &v), CacheGet::kHit);  // TTL-free entry unaffected
  c.checkInvariants();
}

TEST_F(LruCacheTtl, PutRefreshesAnExpiredEntryInPlace) {
  Cache c(4);
  c.put(5, 50, /*ttlNs=*/10);
  TtlClock::advance(20);
  std::int64_t v = 0;
  EXPECT_EQ(c.peek(5, &v), CacheGet::kExpired);
  const auto r = c.put(5, 51, /*ttlNs=*/100);  // present (uncollected): refresh
  EXPECT_TRUE(r.updated);
  EXPECT_FALSE(r.inserted);
  EXPECT_EQ(c.get(5), std::optional<std::int64_t>(51));
  EXPECT_EQ(c.size(), 1);
}

TEST_F(LruCacheTtl, PurgeExpiredCollectsExactlyTheLapsed) {
  Cache c(8);
  c.put(1, 1, /*ttlNs=*/10);
  c.put(2, 2, /*ttlNs=*/1'000);
  c.put(3, 3);  // never expires
  c.put(4, 4, /*ttlNs=*/10);
  TtlClock::advance(50);
  EXPECT_EQ(c.purgeExpired(), 2u);  // 1 and 4
  EXPECT_EQ(c.size(), 2);
  EXPECT_TRUE(c.contains(2));
  EXPECT_TRUE(c.contains(3));
  EXPECT_EQ(c.purgeExpired(), 0u);  // idempotent
  TtlClock::advance(10'000);
  EXPECT_EQ(c.purgeExpired(/*maxVictims=*/1), 1u);  // bounded sweep
  EXPECT_EQ(c.size(), 1);
  EXPECT_TRUE(c.contains(3));
  c.checkInvariants();
}

// ---------------------------------------------------------------------------
// Oracle fuzz: every op's result, the size, and the full recency order must
// match the sequential model at all times.
// ---------------------------------------------------------------------------

TEST_F(LruCacheTtl, OracleFuzzMatchesSequentialModel) {
  constexpr std::size_t kCap = 16;
  constexpr std::int64_t kKeys = 48;
  constexpr int kOps = 60'000;
  Cache c(kCap);
  ModelCache m(kCap);
  Xoshiro256 rng(0xCAC4Eull);

  for (int i = 0; i < kOps; ++i) {
    const std::int64_t k =
        static_cast<std::int64_t>(rng.nextBounded(kKeys));
    const std::uint64_t dice = rng.nextBounded(100);
    const std::uint64_t now = TtlClock::nowNs();
    if (dice < 40) {
      const std::int64_t v = static_cast<std::int64_t>(rng.next() >> 8);
      // A third of puts carry a short TTL so expiry interleaves with LRU.
      const std::uint64_t ttl = dice % 3 == 0 ? 50 + rng.nextBounded(200) : 0;
      const auto got = c.put(k, v, ttl);
      const auto want = m.put(k, v, ttl, now);
      ASSERT_EQ(got.updated, want.updated) << "op " << i;
      ASSERT_EQ(got.inserted, want.inserted) << "op " << i;
      ASSERT_EQ(got.evicted, want.evicted) << "op " << i;
      if (want.evicted) {
        ASSERT_EQ(got.victim, want.victim)
            << "op " << i << ": evicted key is not the true LRU";
      }
    } else if (dice < 65) {
      std::int64_t got = 0, want = 0;
      const auto gotR = c.get(k, &got);
      const auto wantR = m.get(k, now, &want);
      ASSERT_EQ(gotR, wantR) << "op " << i << " key " << k;
      if (gotR == CacheGet::kHit) {
        ASSERT_EQ(got, want) << "op " << i;
      }
    } else if (dice < 80) {
      std::int64_t got = 0, want = 0;
      const auto gotR = c.peek(k, &got);
      const auto wantR = m.peek(k, now, &want);
      ASSERT_EQ(gotR, wantR) << "op " << i << " key " << k;
      if (gotR == CacheGet::kHit) {
        ASSERT_EQ(got, want) << "op " << i;
      }
    } else if (dice < 95) {
      ASSERT_EQ(c.erase(k), m.erase(k)) << "op " << i << " key " << k;
    } else {
      ASSERT_EQ(c.purgeExpired(), m.purgeExpired(now)) << "op " << i;
    }
    if (dice % 7 == 0) TtlClock::advance(1 + rng.nextBounded(40));

    ASSERT_EQ(static_cast<std::size_t>(c.size()), m.size()) << "op " << i;
    ASSERT_LE(c.size(), c.capacity()) << "op " << i << ": capacity exceeded";
    if (i % 1'000 == 0) {
      ASSERT_EQ(c.recencyKeys(), m.recency()) << "op " << i;
      c.checkInvariants();
    }
  }
  ASSERT_EQ(c.recencyKeys(), m.recency());
  c.checkInvariants();
}

// ---------------------------------------------------------------------------
// Concurrent churn: structural invariants must hold at every quiescent point.
// ---------------------------------------------------------------------------

TEST(LruCacheConcurrent, ChurnKeepsCompositeInvariants) {
  constexpr std::size_t kCap = 64;
  constexpr std::int64_t kKeys = 128;
  const int threads = 8;
  constexpr int kOpsPerThread = 30'000;
  Cache c(kCap);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t, round] {
        ThreadGuard tg;
        Xoshiro256 rng(0xC0FFEEull * (round + 1) +
                       static_cast<std::uint64_t>(t));
        std::int64_t v = 0;
        for (int i = 0; i < kOpsPerThread; ++i) {
          const std::int64_t k =
              static_cast<std::int64_t>(rng.nextBounded(kKeys));
          const std::uint64_t dice = rng.nextBounded(100);
          if (dice < 35) {
            const std::uint64_t ttl = dice % 5 == 0 ? 1'000 : 0;  // 1µs TTLs
            c.put(k, k * 2 + 1, ttl);
          } else if (dice < 70) {
            const auto r = c.get(k, &v);
            if (r == CacheGet::kHit) {
              EXPECT_EQ(v, k * 2 + 1);  // torn-value detector
            }
          } else if (dice < 90) {
            c.erase(k);
          } else if (dice < 99) {
            std::int64_t pv = 0;
            if (c.peek(k, &pv) == CacheGet::kHit) {
              EXPECT_EQ(pv, k * 2 + 1);
            }
          } else {
            c.purgeExpired(4);
          }
          EXPECT_LE(c.size(), c.capacity());
        }
      });
    }
    for (auto& w : workers) w.join();
    c.checkInvariants();  // quiescent: hash set == list set, size honest
    c.drain();
  }
}

// ---------------------------------------------------------------------------
// Windowed linearizability: with capacity == keySpace and no TTL the cache
// is exactly a map (the eviction path can never fire: a commit only evicts
// when the size anchor proves fullness, and full here means every key is
// present so no put can miss). put/erase/contains histories must therefore
// linearize window by window under lin_check's membership-mask replay.
// ---------------------------------------------------------------------------

TEST(LruCacheLin, WindowedStressPureMapSemantics) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 2'500;
  constexpr std::int64_t kKeySpace = 8;
  Cache cache(static_cast<std::size_t>(kKeySpace));

  std::atomic<std::uint64_t> clock{0};
  std::vector<RecordedOp> history(
      static_cast<std::size_t>(kRounds * kThreads));
  std::barrier barrier(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      ThreadGuard tg;
      Xoshiro256 rng(0x11CAC4Eull + static_cast<std::uint64_t>(t));
      for (int r = 0; r < kRounds; ++r) {
        barrier.arrive_and_wait();
        RecordedOp rec;
        const std::int64_t k = static_cast<std::int64_t>(
            rng.nextBounded(static_cast<std::uint64_t>(kKeySpace)));
        const std::uint64_t dice = rng.nextBounded(100);
        if (dice < 40) {
          // put == map insert: inserted <=> the key was absent. The value is
          // always k so refreshes are invisible to the membership mask.
          rec.kind = OpKind::kInsert;
          rec.a = k;
          rec.inv = clock.fetch_add(1);
          rec.boolResult = cache.put(k, k).inserted;
        } else if (dice < 75) {
          rec.kind = OpKind::kErase;
          rec.a = k;
          rec.inv = clock.fetch_add(1);
          rec.boolResult = cache.erase(k);
        } else if (dice < 90) {
          rec.kind = OpKind::kContains;
          rec.a = k;
          rec.inv = clock.fetch_add(1);
          rec.boolResult = cache.contains(k);
        } else {
          // Promoting read: membership-wise identical to contains (TTL 0
          // means kExpired is unreachable), but it commits recency splices,
          // keeping the promotion KCAS in the racing mix.
          rec.kind = OpKind::kContains;
          rec.a = k;
          std::int64_t v = 0;
          rec.inv = clock.fetch_add(1);
          rec.boolResult = cache.get(k, &v) == CacheGet::kHit;
          if (rec.boolResult) {
            EXPECT_EQ(v, k);
          }
        }
        rec.res = clock.fetch_add(1);
        history[static_cast<std::size_t>(r * kThreads + t)] = std::move(rec);
      }
    });
  }
  for (auto& w : workers) w.join();

  std::set<LinState> states = {0};
  for (int r = 0; r < kRounds; ++r) {
    const std::vector<RecordedOp> window(
        history.begin() + static_cast<std::ptrdiff_t>(r * kThreads),
        history.begin() + static_cast<std::ptrdiff_t>((r + 1) * kThreads));
    states = linearizeWindow(window, states);
    ASSERT_FALSE(states.empty())
        << "cache history not linearizable at window " << r << ": "
        << describeWindow(window);
  }

  // The cache's actual final contents must be a linearizable outcome.
  LinState finalMask = 0;
  for (std::int64_t k = 0; k < kKeySpace; ++k) {
    if (cache.peek(k) == CacheGet::kHit) finalMask |= LinState{1} << k;
  }
  EXPECT_TRUE(states.count(finalMask))
      << "final contents (mask " << finalMask
      << ") not among the linearizable outcomes";
  cache.checkInvariants();
}

}  // namespace
}  // namespace pathcas::testing
