// Tests for the type-segregated node pool (recl/pool.hpp) and its
// integration with EBR: single-thread reuse semantics, cross-thread
// retire→recycle flow, spill/refill between local caches and global shards,
// stats accounting, drain under quiescence, and a multi-threaded
// insert/erase churn test asserting retired-node memory is recycled (not
// leaked) over many EBR epochs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "recl/ebr.hpp"
#include "recl/pool.hpp"
#include "trees/int_bst_pathcas.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"

namespace pathcas::recl {
namespace {

struct TestNode {
  std::uint64_t a;
  std::uint64_t b;
  std::uint64_t pad[3];  // BST-node-sized
  TestNode(std::uint64_t x, std::uint64_t y) : a(x), b(y), pad{} {}
};

TEST(Pool, SingleThreadReuseIsLifoAndConstructs) {
  NodePool<TestNode> pool;
  TestNode* n1 = pool.alloc(1, 2);
  EXPECT_EQ(n1->a, 1u);
  EXPECT_EQ(n1->b, 2u);
  pool.destroy(n1);
  // LIFO: the freshest (cache-warm) slot is handed out first, and the
  // constructor runs again on the recycled memory.
  TestNode* n2 = pool.alloc(7, 8);
  EXPECT_EQ(static_cast<void*>(n2), static_cast<void*>(n1));
  EXPECT_EQ(n2->a, 7u);
  EXPECT_EQ(n2->b, 8u);
  pool.destroy(n2);

  const PoolStats s = pool.stats();
  EXPECT_EQ(s.fresh, 1u);
  EXPECT_EQ(s.reused, 1u);
  EXPECT_EQ(s.recycled, 2u);
  EXPECT_EQ(pool.liveCount(), 0u);
}

TEST(Pool, StatsAccounting) {
  NodePool<TestNode> pool;
  constexpr int kN = 100;
  std::vector<TestNode*> nodes;
  for (int i = 0; i < kN; ++i)
    nodes.push_back(pool.alloc(static_cast<std::uint64_t>(i), 0));
  EXPECT_EQ(pool.stats().fresh, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(pool.liveCount(), static_cast<std::uint64_t>(kN));
  EXPECT_EQ(pool.freeCount(), 0u);
  EXPECT_EQ(pool.footprintBytes(),
            static_cast<std::uint64_t>(kN) * NodePool<TestNode>::slotSize());
  for (auto* n : nodes) pool.destroy(n);
  EXPECT_EQ(pool.liveCount(), 0u);
  EXPECT_EQ(pool.freeCount(), static_cast<std::uint64_t>(kN));
  // Memory is retained (recycled), not returned: footprint is unchanged.
  EXPECT_EQ(pool.footprintBytes(),
            static_cast<std::uint64_t>(kN) * NodePool<TestNode>::slotSize());
  // Reallocating reuses every slot without touching the heap.
  for (int i = 0; i < kN; ++i)
    nodes[static_cast<std::size_t>(i)] = pool.alloc(0, 0);
  EXPECT_EQ(pool.stats().fresh, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(pool.stats().reused, static_cast<std::uint64_t>(kN));
  for (auto* n : nodes) pool.destroy(n);
}

TEST(Pool, SpillToShardsAndCrossThreadRefill) {
  NodePool<TestNode> pool;
  // Thread A frees far more than the local cap: the overflow spills to the
  // global shards.
  std::thread a([&] {
    ThreadGuard tg;
    std::vector<TestNode*> nodes;
    for (int i = 0; i < 2000; ++i) nodes.push_back(pool.alloc(0, 0));
    for (auto* n : nodes) pool.destroy(n);
  });
  a.join();
  EXPECT_GT(pool.stats().spills, 0u);
  // Thread B allocates more than any local cache can hold: at least one
  // allocation must refill a whole chain from the shards — and none may
  // touch the heap, since the pool already holds 2000 free slots.
  std::thread b([&] {
    ThreadGuard tg;
    std::vector<TestNode*> nodes;
    for (int i = 0; i < 600; ++i) nodes.push_back(pool.alloc(0, 0));
    EXPECT_GT(pool.stats().refills, 0u);
    EXPECT_GT(pool.stats().reused, 0u);
    for (auto* n : nodes) pool.destroy(n);
  });
  b.join();
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.fresh, 2000u);  // B allocated without any fresh memory
}

TEST(Pool, EbrRetireRecyclesIntoPoolInsteadOfFreeing) {
  NodePool<TestNode> pool;  // declared before the domain: outlives its limbo
  EbrDomain domain;
  TestNode* n = pool.alloc(42, 0);
  {
    auto g = domain.pin();
    domain.retire(n, pool);
  }
  EXPECT_EQ(pool.stats().recycled, 0u);  // still in limbo
  for (int i = 0; i < 1000; ++i) {
    auto g = domain.pin();
    (void)g;
  }
  EXPECT_EQ(domain.freedCount(), 1u);
  EXPECT_EQ(pool.stats().recycled, 1u);  // recycled, not deleted
  // The expired slot is immediately reusable by this (the retiring) thread.
  TestNode* again = pool.alloc(0, 0);
  EXPECT_EQ(static_cast<void*>(again), static_cast<void*>(n));
  pool.destroy(again);
}

TEST(Pool, CrossThreadRetireRecycleFlow) {
  NodePool<TestNode> pool;
  EbrDomain domain;
  std::atomic<TestNode*> handoff{nullptr};
  // A allocates and publishes; B consumes, retires, and — being the
  // retiring thread — receives the recycled slot for its next allocation.
  std::thread a([&] {
    ThreadGuard tg;
    handoff.store(pool.alloc(1, 2), std::memory_order_release);
  });
  a.join();
  std::thread b([&] {
    ThreadGuard tg;
    TestNode* n = handoff.load(std::memory_order_acquire);
    {
      auto g = domain.pin();
      domain.retire(n, pool);
    }
    for (int i = 0; i < 1000; ++i) {
      auto g = domain.pin();
      (void)g;
    }
    EXPECT_EQ(pool.stats().recycled, 1u);
    TestNode* again = pool.alloc(0, 0);
    EXPECT_EQ(static_cast<void*>(again), static_cast<void*>(n));
    pool.destroy(again);
  });
  b.join();
  EXPECT_EQ(pool.liveCount(), 0u);
}

TEST(Pool, DrainUnderQuiescenceReleasesAllFreeMemory) {
  NodePool<TestNode> pool;
  std::vector<TestNode*> nodes;
  for (int i = 0; i < 1500; ++i) nodes.push_back(pool.alloc(0, 0));
  // Free from a second thread too, so both local caches and shards hold
  // memory at drain time.
  std::thread t([&] {
    ThreadGuard tg;
    for (std::size_t i = 0; i < 700; ++i) pool.destroy(nodes[i]);
  });
  t.join();
  for (std::size_t i = 700; i < nodes.size(); ++i) pool.destroy(nodes[i]);
  EXPECT_EQ(pool.freeCount(), 1500u);
  pool.drainQuiescent();
  EXPECT_EQ(pool.freeCount(), 0u);
  EXPECT_EQ(pool.footprintBytes(), 0u);
  EXPECT_EQ(pool.stats().drained, 1500u);
  // The pool is still usable after a drain.
  TestNode* n = pool.alloc(0, 0);
  pool.destroy(n);
}

// Multi-threaded insert/erase churn on the PathCAS BST with a dedicated
// pool: over many EBR epochs, retired nodes must be recycled back into
// allocations (recycle counter grows) and the pool's footprint must stay
// bounded by the working set, not grow with the operation count.
//
// Hermeticity matters here: every counter asserted below belongs to THIS
// test's pool and domain — never to the process-global defaultPool<> /
// EbrDomain::instance() — so the exact-accounting assertions hold no matter
// which other suites share the process (in-process ctest shards, combined
// binaries). The ASSERTs at the top pin that baseline.
TEST(PoolChurn, RetiredMemoryIsRecycledNotLeaked) {
  using Tree = ds::IntBstPathCas<std::int64_t, std::int64_t>;
  NodePool<Tree::Node> pool;  // declared before the domain: outlives limbo
  EbrDomain domain;
  ASSERT_EQ(pool.stats().fresh + pool.stats().reused, 0u);
  ASSERT_EQ(domain.retiredCount(), 0u);
  {
    Tree tree({}, domain, &pool);
    constexpr int kThreads = 4;
    constexpr std::int64_t kKeyRange = 256;
    constexpr int kOpsPerThread = 100000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        ThreadGuard tg;
        Xoshiro256 rng(0x9e3779b9 + static_cast<std::uint64_t>(t));
        for (int i = 0; i < kOpsPerThread; ++i) {
          const auto k = static_cast<std::int64_t>(
              rng.nextBounded(static_cast<std::uint64_t>(kKeyRange)));
          if (rng.next() & 1) {
            tree.insert(k, k);
          } else {
            tree.erase(k);
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    domain.drainAll();  // quiescent: flush every limbo bag into the pool

    const PoolStats s = pool.stats();
    // Every node EBR expired was recycled into the pool, none deleted.
    EXPECT_GT(domain.freedCount(), 1000u);
    EXPECT_GE(s.recycled, domain.freedCount());
    // Steady state runs on recycled memory: reuse dominates fresh
    // allocation. (Fresh is bounded by the live set plus the EBR limbo
    // high-water mark — under this contention epochs advance slowly, so the
    // high-water is thousands of nodes, but it is a *bound*, not growth
    // proportional to the ~400k updates performed.)
    EXPECT_GT(s.reused, s.fresh);
    EXPECT_LT(s.fresh, static_cast<std::uint64_t>(kThreads) * kOpsPerThread /
                           4);
    // Exact live accounting: reachable keys + the two sentinels.
    EXPECT_EQ(pool.liveCount(), tree.size() + 2);
    tree.checkInvariants();
  }
  // Tree destroyed: every node is back in the pool.
  EXPECT_EQ(pool.liveCount(), 0u);
}

}  // namespace
}  // namespace pathcas::recl
