// Unit tests for the workload-generation subsystem (bench_fw/workload.hpp):
// distribution shape (Zipfian chi-square, hotspot ratio bounds, latest
// recency, sequential coverage), deterministic replay from a fixed seed, the
// incremental zeta table, spec parsing, and the operation-mix presets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "bench_fw/workload.hpp"

namespace pathcas::bench {
namespace {

/// Collect `samples` keys from a fresh generator.
std::vector<std::int64_t> draw(const DistSpec& spec, std::int64_t keyRange,
                               std::uint64_t seed, int tid, int nthreads,
                               int samples) {
  SharedWorkloadState shared(spec, keyRange);
  KeyGen gen(spec, keyRange, &shared, seed, tid, nthreads);
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) out.push_back(gen.next());
  return out;
}

TEST(DistSpecParse, RoundTripsAndValidates) {
  const char* good[] = {"uniform",       "zipfian",          "zipfian:0.99",
                        "zipfian:0.995", "zipfian:0.5",      "zipfian:0.99:ranked",
                        "zipfian:0.1234567",                 "hotspot",
                        "hotspot:0.1",   "hotspot:0.1:0.9",
                        "hotspot:0.333333333:0.9",           "hotspot:0.125:0.875",
                        "latest",        "latest:0.8",       "seq"};
  for (const char* s : good) {
    DistSpec spec;
    EXPECT_TRUE(DistSpec::parse(s, &spec)) << s;
    // label() round-trips to the bit-identical spec (std::to_chars shortest
    // representation, exact for any double).
    DistSpec again;
    EXPECT_TRUE(DistSpec::parse(spec.label(), &again)) << spec.label();
    EXPECT_EQ(spec.kind, again.kind);
    EXPECT_EQ(spec.theta, again.theta) << s;
    EXPECT_EQ(spec.hotKeyFrac, again.hotKeyFrac) << s;
    EXPECT_EQ(spec.hotOpFrac, again.hotOpFrac) << s;
    EXPECT_EQ(spec.scramble, again.scramble) << s;
  }
  const char* bad[] = {"", "zipf", "zipfian:1.0", "zipfian:-0.1",
                       "zipfian:abc", "zipfian:nan", "zipfian:inf",
                       "hotspot:0", "hotspot:1.5", "hotspot:nan:0.8",
                       "hotspot:0.2:0", "uniform:1", "latest:1.0",
                       "latest:nan", "seq:2", "zipfian:0.9:scrambled"};
  for (const char* s : bad) {
    DistSpec spec;
    EXPECT_FALSE(DistSpec::parse(s, &spec)) << s;
  }
}

TEST(Zipfian, IncrementalZetaMatchesDirect) {
  // forRange resumes partial sums from the largest known n; the accumulation
  // order matches compute(), so the results are bit-identical.
  const double theta = 0.77;  // unlikely to be cached by another test
  const ZipfianParams small = ZipfianParams::forRange(1000, theta);
  const ZipfianParams big = ZipfianParams::forRange(5000, theta);  // extends
  const ZipfianParams smallAgain = ZipfianParams::forRange(1000, theta);
  EXPECT_EQ(small.zetan, ZipfianParams::compute(1000, theta).zetan);
  EXPECT_EQ(big.zetan, ZipfianParams::compute(5000, theta).zetan);
  EXPECT_EQ(small.zetan, smallAgain.zetan);  // smaller-n lookups still exact
  EXPECT_LT(small.zetan, big.zetan);
}

TEST(Zipfian, FrequencyRankChiSquareSanity) {
  // Unscrambled ranks: key i should appear with probability (1/(i+1)^θ)/ζ.
  // Gray's CDF inversion is an approximation (exact for ranks 0-1, a few
  // percent off elsewhere — most visibly +13% on ranks 2-3 at this n/theta),
  // so a p-value-style chi-square bound against the exact analytic masses
  // cannot hold. Instead the bound is calibrated to separate the
  // approximation bias from real shape bugs: over geometric rank buckets at
  // this fixed seed, the correct sampler scores chi2 ~530 while the nearest
  // failure mode measured (theta off by just 0.09) scores ~2500, a
  // mis-parsed/uniform stream ~300000. The 1200 gate sits >2x from both
  // sides.
  constexpr std::int64_t kN = 100;
  constexpr int kSamples = 200000;
  constexpr double kTheta = 0.99;
  DistSpec spec;
  spec.kind = DistKind::kZipfian;
  spec.theta = kTheta;
  spec.scramble = false;
  std::vector<int> freq(kN, 0);
  for (const std::int64_t k : draw(spec, kN, 42, 0, 1, kSamples)) {
    ASSERT_GE(k, 0);
    ASSERT_LT(k, kN);
    ++freq[static_cast<std::size_t>(k)];
  }
  const ZipfianParams p = ZipfianParams::compute(kN, kTheta);
  // Buckets: {0}, {1}, [2,3], [4,7], [8,15], [16,31], [32,63], [64,99].
  const std::int64_t bounds[] = {1, 2, 4, 8, 16, 32, 64, 100};
  double chi2 = 0.0;
  std::int64_t lo = 0;
  for (const std::int64_t hi : bounds) {
    double expct = 0.0;
    std::int64_t obs = 0;
    for (std::int64_t i = lo; i < hi; ++i) {
      expct +=
          kSamples / (std::pow(static_cast<double>(i + 1), kTheta) * p.zetan);
      obs += freq[static_cast<std::size_t>(i)];
    }
    const double d = static_cast<double>(obs) - expct;
    chi2 += d * d / expct;
    // Per-bucket sanity too: within 15% of the analytic mass everywhere.
    EXPECT_NEAR(static_cast<double>(obs) / expct, 1.0, 0.15)
        << "bucket [" << lo << "," << hi << ")";
    lo = hi;
  }
  EXPECT_LT(chi2, 1200.0) << "Zipfian sample frequencies diverge from the "
                             "analytic rank distribution";
  // And the gross shape: popularity decreasing along ranks.
  EXPECT_GT(freq[0], freq[9]);
  EXPECT_GT(freq[9], freq[99]);
}

TEST(Zipfian, ScrambleSpreadsHotKeysButPreservesSkew) {
  constexpr std::int64_t kN = 1000;
  constexpr int kSamples = 50000;
  DistSpec spec;
  spec.kind = DistKind::kZipfian;  // default: scrambled
  std::map<std::int64_t, int> freq;
  for (const std::int64_t k : draw(spec, kN, 7, 0, 1, kSamples)) ++freq[k];
  // Skew preserved: the most popular key absorbs a large share...
  int maxFreq = 0;
  for (const auto& [k, f] : freq) maxFreq = std::max(maxFreq, f);
  EXPECT_GT(maxFreq, kSamples / 20);
  // ...but the top keys are no longer clustered at the low end of the space.
  std::vector<std::pair<int, std::int64_t>> byFreq;
  for (const auto& [k, f] : freq) byFreq.push_back({f, k});
  std::sort(byFreq.rbegin(), byFreq.rend());
  std::int64_t maxTopKey = 0;
  for (int i = 0; i < 10 && i < static_cast<int>(byFreq.size()); ++i)
    maxTopKey = std::max(maxTopKey, byFreq[static_cast<std::size_t>(i)].second);
  EXPECT_GT(maxTopKey, kN / 4);
}

TEST(Hotspot, RatioBounds) {
  constexpr std::int64_t kN = 1000;
  constexpr int kSamples = 100000;
  DistSpec spec;
  spec.kind = DistKind::kHotspot;  // defaults: 20% of keys get 80% of ops
  int hot = 0;
  std::vector<int> freq(kN, 0);
  for (const std::int64_t k : draw(spec, kN, 3, 0, 1, kSamples)) {
    ASSERT_GE(k, 0);
    ASSERT_LT(k, kN);
    hot += (k < kN / 5);
    ++freq[static_cast<std::size_t>(k)];
  }
  const double hotFrac = static_cast<double>(hot) / kSamples;
  EXPECT_GT(hotFrac, 0.78);
  EXPECT_LT(hotFrac, 0.82);
  // Within each region the distribution is uniform: every cold key drawn.
  for (std::int64_t k = kN / 5; k < kN; ++k)
    EXPECT_GT(freq[static_cast<std::size_t>(k)], 0) << "cold key " << k;
}

TEST(Latest, SkewsTowardRecentInserts) {
  constexpr std::int64_t kN = 10000;
  DistSpec spec;
  spec.kind = DistKind::kLatest;
  SharedWorkloadState shared(spec, kN);
  KeyGen gen(spec, kN, &shared, 11, 0, 1);
  gen.noteInsert(9000);  // anchor moves to the "newest" key
  int near = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const std::int64_t k = gen.next();
    ASSERT_GE(k, 0);
    ASSERT_LT(k, kN);
    near += (k > 9000 - 100 && k <= 9000);
  }
  // theta=0.99 over 10k ranks: the 100 most recent keys absorb roughly half
  // of all draws (analytically ~49%); demand well above the uniform 1%.
  EXPECT_GT(near, kSamples / 3);
}

TEST(Sequential, PerThreadStridesCoverDisjointResidues) {
  constexpr std::int64_t kN = 64;
  constexpr int kThreads = 4;
  DistSpec spec;
  spec.kind = DistKind::kSequential;
  SharedWorkloadState shared(spec, kN);
  for (int t = 0; t < kThreads; ++t) {
    KeyGen gen(spec, kN, &shared, 1, t, kThreads);
    for (int i = 0; i < 2 * kN; ++i) {
      const std::int64_t k = gen.next();
      EXPECT_EQ(k % kThreads, t);  // thread t owns residue class t
      EXPECT_GE(k, 0);
      EXPECT_LT(k, kN);
    }
  }
}

TEST(Replay, FixedSeedReplaysExactly) {
  // The acceptance-critical property: (seed, tid) determines the sequence,
  // for every distribution kind.
  const char* specs[] = {"uniform", "zipfian:0.9", "zipfian:0.9:ranked",
                         "hotspot:0.2:0.8", "latest:0.9", "seq"};
  for (const char* s : specs) {
    DistSpec spec;
    ASSERT_TRUE(DistSpec::parse(s, &spec));
    const auto a = draw(spec, 4096, 1234, 2, 4, 10000);
    const auto b = draw(spec, 4096, 1234, 2, 4, 10000);
    EXPECT_EQ(a, b) << s << ": same (seed, tid) must replay exactly";
    const auto c = draw(spec, 4096, 1234, 3, 4, 10000);
    EXPECT_NE(a, c) << s << ": distinct tids must get distinct streams";
  }
}

TEST(MixPresets, RatiosSumToOneAndNamesResolve) {
  for (const MixSpec& m : mixPresets()) {
    const double reads = 1.0 - m.insertFrac - m.deleteFrac - m.rqFrac;
    EXPECT_GE(m.insertFrac, 0.0) << m.name;
    EXPECT_GE(m.deleteFrac, 0.0) << m.name;
    EXPECT_GE(m.rqFrac, 0.0) << m.name;
    EXPECT_GE(reads, -1e-12) << m.name << ": fracs exceed 1";
    // insert + delete + rq + implicit reads == 1 by construction.
    EXPECT_NEAR(m.insertFrac + m.deleteFrac + m.rqFrac + std::max(reads, 0.0),
                1.0, 1e-12)
        << m.name;
    MixSpec found;
    EXPECT_TRUE(findMix(m.name, &found));
    EXPECT_EQ(std::string(found.name), m.name);
  }
  MixSpec nope;
  EXPECT_FALSE(findMix("ycsb-z", &nope));
  EXPECT_FALSE(findMix("", &nope));
  // The update-rate presets keep the structure stationary (insert == delete).
  for (const char* name : {"ycsb-a", "ycsb-b", "ycsb-e", "u10", "u100"}) {
    MixSpec m;
    ASSERT_TRUE(findMix(name, &m));
    EXPECT_EQ(m.insertFrac, m.deleteFrac) << name;
  }
}

}  // namespace
}  // namespace pathcas::bench
