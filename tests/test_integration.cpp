// Cross-module integration tests:
//  * memory-reclamation accounting through a full tree-churn lifecycle
//    (nodes retired == nodes freed once quiescent: no leaks, no double
//    frees under the shared EBR domain),
//  * HTM abort-injection sweep over the fast-path tree (failure injection:
//    the structure must stay correct at any abort rate),
//  * concurrent use of MULTIPLE structures sharing one PathCAS domain and
//    one EBR domain (helping and reclamation must not interfere).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "htm/htm.hpp"
#include "recl/ebr.hpp"
#include "structs/skiplist_pathcas.hpp"
#include "trees/int_avl_pathcas.hpp"
#include "trees/int_bst_pathcas.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"

namespace pathcas {
namespace {

TEST(Integration, TreeChurnReclaimsEverything) {
  // Dedicated pool AND domain (pool first: it must outlive the domain's
  // limbo records naming it): with the process-global defaultPool the
  // reclamation counters would mix in other suites' churn whenever tests
  // share a process, making the exact-accounting assertions below flaky.
  recl::NodePool<ds::IntBstPathCas<>::Node> pool;
  recl::EbrDomain domain;  // private domain so counts are exact
  const auto retired0 = domain.retiredCount();
  {
    ds::IntBstPathCas<> tree(ds::IntBstOptions{}, domain, &pool);
    Xoshiro256 rng(1);
    for (int i = 0; i < 30000; ++i) {
      const auto k = static_cast<std::int64_t>(rng.nextBounded(256));
      if (rng.nextBounded(2)) {
        tree.insert(k, k);
      } else {
        tree.erase(k);
      }
    }
    tree.checkInvariants();
  }  // remaining nodes freed by the destructor (not via retire)
  domain.drainAll();
  EXPECT_EQ(domain.freedCount(), domain.retiredCount());
  EXPECT_GT(domain.retiredCount(), retired0);  // deletions actually retired
  // Every retire was recycled into OUR pool, and nothing is still live.
  EXPECT_GE(pool.stats().recycled, domain.freedCount());
  EXPECT_EQ(pool.liveCount(), 0u);
}

class AbortInjectionSweep : public ::testing::TestWithParam<double> {};

TEST_P(AbortInjectionSweep, FastPathTreeCorrectUnderInjectedAborts) {
  htm::setAbortInjection(GetParam());
  ds::IntAvlPathCas<> tree(ds::IntBstOptions{.useHtmFastPath = true});
  constexpr int kThreads = 4, kOps = 1500;
  std::vector<std::thread> workers;
  std::vector<std::int64_t> deltas(kThreads, 0);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      ThreadGuard tg;
      Xoshiro256 rng(10 + w);
      std::int64_t d = 0;
      for (int i = 0; i < kOps; ++i) {
        const auto k = static_cast<std::int64_t>(rng.nextBounded(128));
        if (rng.nextBounded(2)) {
          if (tree.insert(k, k)) d += k;
        } else {
          if (tree.erase(k)) d -= k;
        }
      }
      deltas[w] = d;
    });
  }
  for (auto& th : workers) th.join();
  htm::setAbortInjection(0.0);
  std::int64_t expected = 0;
  for (auto d : deltas) expected += d;
  EXPECT_EQ(tree.keySum(), expected);
  tree.checkInvariants(false);
}

INSTANTIATE_TEST_SUITE_P(Rates, AbortInjectionSweep,
                         ::testing::Values(0.0, 0.05, 0.5, 1.0),
                         [](const auto& info) {
                           return "p" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

// Two different structures hammered concurrently: they share the global
// KCAS domain (helping may cross structures via per-thread descriptors) and
// the global EBR domain. Each structure's own invariant must hold.
TEST(Integration, MultipleStructuresShareOneDomain) {
  ds::IntBstPathCas<> tree;
  ds::SkipListPathCas<> skiplist;
  constexpr int kThreads = 4, kOps = 2500;
  std::vector<std::thread> workers;
  std::vector<std::int64_t> treeDeltas(kThreads, 0), listDeltas(kThreads, 0);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      ThreadGuard tg;
      Xoshiro256 rng(99 + w);
      for (int i = 0; i < kOps; ++i) {
        const auto k = static_cast<std::int64_t>(rng.nextBounded(128));
        if (rng.nextBounded(2)) {
          // Interleave operations on both structures from the same thread,
          // reusing the same per-thread descriptor back-to-back.
          if (tree.insert(k, k)) treeDeltas[w] += k;
          if (skiplist.erase(k)) listDeltas[w] -= k;
        } else {
          if (skiplist.insert(k, k)) listDeltas[w] += k;
          if (tree.erase(k)) treeDeltas[w] -= k;
        }
      }
    });
  }
  for (auto& th : workers) th.join();
  std::int64_t treeExpected = 0, listExpected = 0;
  for (int w = 0; w < kThreads; ++w) {
    treeExpected += treeDeltas[w];
    listExpected += listDeltas[w];
  }
  EXPECT_EQ(tree.keySum(), treeExpected);
  EXPECT_EQ(skiplist.keySum(), listExpected);
  tree.checkInvariants();
  skiplist.checkInvariants();
}

// Version-number wrap scaffolding (§C.2): versions advance by 2 per change;
// confirm a node churned many times keeps validating correctly with large
// version values (no sign/encoding issues near high bit usage).
TEST(Integration, LargeVersionValuesRoundTrip) {
  casword<Version> ver;
  ver.setInitial((1ULL << 52) + 4);  // far beyond any realistic churn
  start();
  const Version v = visitVer(ver);
  EXPECT_EQ(v, (1ULL << 52) + 4);
  EXPECT_TRUE(validate());
  addVer(ver, v, verBump(v));
  EXPECT_TRUE(exec());
  EXPECT_EQ(ver.load(), (1ULL << 52) + 6);
}

}  // namespace
}  // namespace pathcas
