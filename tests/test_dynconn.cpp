// Tests for appendix H: dynamic connectivity on forests via Euler-tour
// lists. Oracle = union-find rebuilt from the live edge set (cut requires a
// full recompute, so the oracle maintains the edge list and recomputes).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "structs/dynconn_pathcas.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"

namespace pathcas::ds {
namespace {

/// Simple recompute-from-scratch oracle for forests.
class ForestOracle {
 public:
  explicit ForestOracle(int n) : n_(n) {}
  bool connected(int v, int w) {
    const auto r = roots();
    return r[static_cast<std::size_t>(v)] == r[static_cast<std::size_t>(w)];
  }
  bool link(int v, int w) {
    if (connected(v, w)) return false;
    edges_.insert(key(v, w));
    return true;
  }
  bool cut(int v, int w) { return edges_.erase(key(v, w)) > 0; }

 private:
  static std::pair<int, int> key(int v, int w) {
    return {std::min(v, w), std::max(v, w)};
  }
  std::vector<int> roots() const {
    std::vector<int> parent(static_cast<std::size_t>(n_));
    std::iota(parent.begin(), parent.end(), 0);
    auto find = [&](int x) {
      while (parent[static_cast<std::size_t>(x)] != x)
        x = parent[static_cast<std::size_t>(x)];
      return x;
    };
    for (const auto& [a, b] : edges_) {
      const int ra = find(a), rb = find(b);
      if (ra != rb) parent[static_cast<std::size_t>(ra)] = rb;
    }
    for (int i = 0; i < n_; ++i)
      parent[static_cast<std::size_t>(i)] =
          find(parent[static_cast<std::size_t>(i)]);
    return parent;
  }
  int n_;
  std::set<std::pair<int, int>> edges_;
};

TEST(DynConn, SingletonsDisconnected) {
  DynConnPathCas g(4);
  EXPECT_TRUE(g.connected(0, 0));
  EXPECT_FALSE(g.connected(0, 1));
  EXPECT_FALSE(g.cut(0, 1));
  g.checkInvariants();
}

TEST(DynConn, LinkConnectsAndCutDisconnects) {
  DynConnPathCas g(4);
  EXPECT_TRUE(g.link(0, 1));
  EXPECT_TRUE(g.connected(0, 1));
  EXPECT_FALSE(g.link(0, 1));  // already connected
  g.checkInvariants();
  EXPECT_TRUE(g.link(1, 2));
  EXPECT_TRUE(g.connected(0, 2));  // transitive
  EXPECT_FALSE(g.connected(0, 3));
  g.checkInvariants();
  EXPECT_TRUE(g.cut(0, 1));
  EXPECT_FALSE(g.connected(0, 2));
  EXPECT_TRUE(g.connected(1, 2));
  g.checkInvariants();
  EXPECT_FALSE(g.cut(0, 1));  // already gone
}

TEST(DynConn, CycleCreationRejected) {
  DynConnPathCas g(3);
  EXPECT_TRUE(g.link(0, 1));
  EXPECT_TRUE(g.link(1, 2));
  EXPECT_FALSE(g.link(0, 2));  // would close a cycle
  g.checkInvariants();
}

TEST(DynConn, ChainBuildAndTearDown) {
  constexpr int kN = 24;
  DynConnPathCas g(kN);
  for (int i = 0; i + 1 < kN; ++i) ASSERT_TRUE(g.link(i, i + 1));
  EXPECT_TRUE(g.connected(0, kN - 1));
  g.checkInvariants();
  // Cut in the middle: two halves.
  ASSERT_TRUE(g.cut(kN / 2 - 1, kN / 2));
  EXPECT_FALSE(g.connected(0, kN - 1));
  EXPECT_TRUE(g.connected(0, kN / 2 - 1));
  EXPECT_TRUE(g.connected(kN / 2, kN - 1));
  g.checkInvariants();
  // Tear down everything.
  for (int i = 0; i + 1 < kN; ++i) {
    if (i != kN / 2 - 1) {
      ASSERT_TRUE(g.cut(i, i + 1));
    }
  }
  for (int i = 1; i < kN; ++i) EXPECT_FALSE(g.connected(0, i));
  g.checkInvariants();
}

TEST(DynConn, StarGraph) {
  constexpr int kN = 16;
  DynConnPathCas g(kN);
  for (int i = 1; i < kN; ++i) ASSERT_TRUE(g.link(0, i));
  for (int i = 1; i < kN; ++i)
    for (int j = 1; j < kN; ++j) EXPECT_TRUE(g.connected(i, j));
  g.checkInvariants();
  ASSERT_TRUE(g.cut(0, 5));
  EXPECT_FALSE(g.connected(5, 7));
  EXPECT_TRUE(g.connected(3, 7));
  g.checkInvariants();
}

TEST(DynConn, RandomOpsMatchOracle) {
  constexpr int kN = 12;
  DynConnPathCas g(kN);
  ForestOracle oracle(kN);
  Xoshiro256 rng(2025);
  for (int i = 0; i < 4000; ++i) {
    const int v = static_cast<int>(rng.nextBounded(kN));
    int w = static_cast<int>(rng.nextBounded(kN));
    if (w == v) w = (w + 1) % kN;
    switch (rng.nextBounded(3)) {
      case 0:
        ASSERT_EQ(g.link(v, w), oracle.link(v, w)) << "op " << i;
        break;
      case 1:
        ASSERT_EQ(g.cut(v, w), oracle.cut(v, w)) << "op " << i;
        break;
      default:
        ASSERT_EQ(g.connected(v, w), oracle.connected(v, w)) << "op " << i;
    }
  }
  g.checkInvariants();
}

// Concurrent smoke: threads work on disjoint vertex blocks so every op's
// oracle outcome is deterministic per thread.
TEST(DynConn, ConcurrentDisjointBlocks) {
  constexpr int kThreads = 4, kPerBlock = 8;
  DynConnPathCas g(kThreads * kPerBlock);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      ThreadGuard tg;
      const int base = t * kPerBlock;
      ForestOracle oracle(kPerBlock);
      Xoshiro256 rng(77 + t);
      for (int i = 0; i < 1500; ++i) {
        const int v = static_cast<int>(rng.nextBounded(kPerBlock));
        int w = static_cast<int>(rng.nextBounded(kPerBlock));
        if (w == v) w = (w + 1) % kPerBlock;
        switch (rng.nextBounded(3)) {
          case 0:
            ASSERT_EQ(g.link(base + v, base + w), oracle.link(v, w));
            break;
          case 1:
            ASSERT_EQ(g.cut(base + v, base + w), oracle.cut(v, w));
            break;
          default:
            ASSERT_EQ(g.connected(base + v, base + w), oracle.connected(v, w));
        }
      }
    });
  }
  for (auto& th : workers) th.join();
  g.checkInvariants();
}

// Concurrent shared-component stress: all threads link/cut within one vertex
// universe; outcomes are nondeterministic, so we only assert internal
// consistency (no crashes, invariants hold at quiescence, connected() is
// symmetric at quiescence).
TEST(DynConn, ConcurrentSharedUniverseStaysConsistent) {
  constexpr int kN = 10, kThreads = 4;
  DynConnPathCas g(kN);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      ThreadGuard tg;
      Xoshiro256 rng(5 + t);
      for (int i = 0; i < 800; ++i) {
        const int v = static_cast<int>(rng.nextBounded(kN));
        int w = static_cast<int>(rng.nextBounded(kN));
        if (w == v) w = (w + 1) % kN;
        switch (rng.nextBounded(3)) {
          case 0:
            g.link(v, w);
            break;
          case 1:
            g.cut(v, w);
            break;
          default:
            (void)g.connected(v, w);
        }
      }
    });
  }
  for (auto& th : workers) th.join();
  g.checkInvariants();
  for (int v = 0; v < kN; ++v) {
    for (int w = v + 1; w < kN; ++w) {
      EXPECT_EQ(g.connected(v, w), g.connected(w, v));
    }
  }
}

}  // namespace
}  // namespace pathcas::ds
