// casword<T>: the annotated field type for PathCAS-managed memory (§4,
// "Implicit read()"). Wrapping a node field's type in casword<> makes every
// load go through the PathCAS read() function (which helps in-flight
// operations), and statically prevents unsafe plain writes to fields that
// PathCAS may be modifying concurrently.
//
// T may be a pointer, an integral type, or an enum; values are stored shifted
// left by 2 (see kcas/word.hpp). Signed values round-trip via arithmetic
// shift; unsigned values must fit in 61 bits (checked in debug builds).
#pragma once

#include <cstdint>
#include <type_traits>

#include "kcas/domain.hpp"
#include "kcas/kcas.hpp"
#include "kcas/word.hpp"

namespace pathcas {

namespace detail {

template <typename T>
inline constexpr bool kCaswordCompatible =
    std::is_pointer_v<T> || std::is_integral_v<T> || std::is_enum_v<T>;

template <typename T>
k::word_t encode(T v) {
  static_assert(kCaswordCompatible<T>);
  if constexpr (std::is_pointer_v<T>) {
    return static_cast<k::word_t>(reinterpret_cast<std::uintptr_t>(v)) << 2;
  } else {
    const auto raw = static_cast<k::word_t>(static_cast<std::int64_t>(v));
    if constexpr (std::is_unsigned_v<std::decay_t<T>>) {
      PATHCAS_DCHECK(static_cast<k::word_t>(v) < (1ULL << 61));
    }
    return raw << 2;
  }
}

template <typename T>
T decode(k::word_t w) {
  static_assert(kCaswordCompatible<T>);
  PATHCAS_DCHECK(!k::isDescriptor(w));
  // Arithmetic shift restores sign bits for signed payloads.
  const auto v = static_cast<std::int64_t>(w) >> 2;
  if constexpr (std::is_pointer_v<T>) {
    return reinterpret_cast<T>(static_cast<std::uintptr_t>(v));
  } else {
    return static_cast<T>(v);
  }
}

}  // namespace detail

template <typename T>
class casword {
  static_assert(detail::kCaswordCompatible<T>);

 public:
  casword() : word_(detail::encode(T{})) {}
  explicit casword(T v) : word_(detail::encode(v)) {}

  casword(const casword&) = delete;
  casword& operator=(const casword&) = delete;

  /// The PathCAS read(): helps any operation found in the word, through the
  /// calling thread's current domain (kcas/domain.hpp) — a descriptor
  /// reference is only meaningful in the domain that produced it, so reads
  /// of a sharded structure must run under the owning shard's ScopedDomain.
  T load() const {
    return detail::decode<T>(k::currentDomain().readEncoded(
        const_cast<k::AtomicWord*>(&word_)));
  }
  operator T() const { return load(); }  // NOLINT(google-explicit-constructor)

  /// Arrow access for pointer payloads: node->left->key etc.
  T operator->() const
    requires std::is_pointer_v<T>
  {
    return load();
  }

  /// Plain initializing store. ONLY safe while the enclosing node is not yet
  /// published (e.g. constructing a node before the vexec that links it).
  void setInitial(T v) {
    word_.store(detail::encode(v), std::memory_order_release);
  }

  /// Underlying word, for add()/visit() and the HTM fast path.
  k::AtomicWord* addr() { return &word_; }
  const k::AtomicWord* addr() const { return &word_; }

 private:
  k::AtomicWord word_;
};

}  // namespace pathcas
