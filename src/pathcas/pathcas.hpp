// The PathCAS primitive (§3): the user-facing start / read / add / visit /
// validate / exec / vexec interface, the strong-vexec slow path (§3.5), and
// the HTM fast path (Algorithm 7) over the htm facade.
//
// Typical data-structure update (cf. Algorithm 4):
//
//   pathcas::start();
//   ... traverse, calling pathcas::visit(node) on every node read ...
//   pathcas::add(parent->left, expectedChild, newChild);
//   pathcas::addVer(parent->ver, v, v + 2);       // version increment
//   if (pathcas::vexec()) return true;            // atomic iff path unchanged
//
// Read-only multi-node snapshot (a range scan):
//
//   pathcas::start();
//   ... traverse, visit every node examined, collect matching keys ...
//   if (pathcas::validateVisited()) return keys;  // atomic snapshot
//   ... else discard and re-traverse ...
//
// validateVisited() is vexec without the writes: bounded optimistic retries,
// then the §3.5 strong path over the visited set, so scans inherit P1's
// no-spurious-failure guarantee. The visited set is bounded by kMaxVisited.
//
// Version-number convention (§3.3): every node carries a
// casword<std::uint64_t> named `ver`; bit 0 is the mark bit. Live updates
// increment by 2; unlink+mark adds 1 (kVerMark helpers below).
//
// All functions operate on the calling thread's (reused) descriptor in the
// process-wide KcasDomain.
//
// Usage requirements:
//  * Threads register with ThreadRegistry lazily on first use; at most
//    kMaxThreads (256) may be registered at once. Short-lived worker threads
//    should hold a pathcas::ThreadGuard so their ids recycle.
//  * A staged operation (start/add/addVer/visit) lives in the calling
//    thread's private staging area: one in-flight operation per thread, and
//    the exec()/vexec() that consumes it must run on the staging thread.
//    start() discards any previously staged state.
//  * Lifetime of targets: a casword handed to add()/visit() must stay mapped
//    until no helper can still hold a descriptor reference to it. Unlink a
//    node and mark its version in the same vexec, then retire it through
//    recl::EbrDomain::retire(p, pool) — never delete or recycle directly;
//    when the grace period expires the node's slot is handed back to its
//    recl::NodePool for reuse (recl/pool.hpp). Traverse only while pinned
//    by a recl::Guard. Nodes that were never published (a spare built for
//    an insert that lost, a replacement staged in a failed vexec) may be
//    recycled immediately with NodePool::destroy().
#pragma once

#include <cstdint>

#include "htm/htm.hpp"
#include "kcas/domain.hpp"
#include "kcas/kcas.hpp"
#include "pathcas/casword.hpp"
#include "util/backoff.hpp"

namespace pathcas {

using Version = std::uint64_t;

inline bool isMarked(Version v) { return v & 1; }
/// A version bumped for a surviving (modified) node.
inline Version verBump(Version v) { return v + 2; }
/// A version bumped+marked for a node being unlinked.
inline Version verMark(Version v) { return v + 1; }

/// Concept for nodes usable with visit(): any type with a `ver` casword.
template <typename Node>
concept Versioned = requires(Node n) {
  { n.ver } -> std::convertible_to<const casword<Version>&>;
};

/// The KCAS domain this thread's PathCAS calls operate on: the innermost
/// active k::ScopedDomain, falling back to the process-wide default
/// (kcas/domain.hpp). Sharded structures scope each operation to the owning
/// shard's domain; everything else keeps the paper's single-domain setup.
inline k::DefaultDomain& domain() { return k::currentDomain(); }

/// Begin gathering arguments for a PathCAS (wait-free).
inline void start() { domain().begin(); }

/// read(addr): returns the logical value, helping in-flight operations.
/// (casword<T>'s implicit conversion calls this; provided for explicitness.)
template <typename T>
T read(const casword<T>& w) {
  return w.load();
}

/// add(addr, old, new): stage an address to be changed atomically (wait-free).
template <typename T>
void add(casword<T>& w, T oldV, T newV) {
  domain().addEntry(w.addr(), detail::encode(oldV), detail::encode(newV));
}

/// Stage a *version word* change. Semantically identical to add(); version
/// entries are additionally written first by the HTM fast path so that
/// concurrent validated readers racing an emulated transaction always
/// observe the version bump before any data write (see docs/ARCHITECTURE.md,
/// "HTM emulation").
inline void addVer(casword<Version>& w, Version oldV, Version newV) {
  domain().addVerEntry(w.addr(), detail::encode(oldV), detail::encode(newV));
}

/// visit(n): record n's version in the path; returns the version observed
/// (mark bit included, as in the paper).
inline Version visitVer(const casword<Version>& ver) {
  auto* addr = const_cast<k::AtomicWord*>(ver.addr());
  const k::word_t enc = domain().readEncoded(addr);
  domain().addPath(addr, enc);
  return detail::decode<Version>(enc);
}

template <Versioned Node>
Version visit(Node* n) {
  return visitVer(n->ver);
}

/// Prefetch the node a casword<Node*> currently points at (PATHCAS_PREFETCH
/// in util/defs.hpp). The pointer is sampled with a raw relaxed load — it may
/// be mid-flight or immediately stale — which is fine for a hint: traversals
/// must still re-read the child through the casword AFTER visiting its
/// parent (the version must be recorded before any dependent data read), and
/// a word holding a descriptor is simply skipped.
template <typename T>
inline void prefetch(const casword<T*>& w) {
  const k::word_t raw = w.addr()->load(std::memory_order_relaxed);
  if (!k::isDescriptor(raw)) {
    PATHCAS_PREFETCH(reinterpret_cast<const void*>(
        static_cast<std::int64_t>(raw) >> 2));
  }
}

/// validate(): true iff no visited node has changed (or was marked) since it
/// was visited. May fail spuriously (visited node locked by an in-flight
/// operation).
inline bool validate() { return domain().validateStaged(); }

/// Capacity of one operation's visited set. Traversals that would visit more
/// nodes (e.g. a range scan wider than ~kMaxVisited keys, or a full walk of
/// a list longer than that) are out of contract, exactly as in the paper's
/// footnote 2: bound the scan, or over-allocate the domain.
inline constexpr int kMaxVisited = k::DefaultDomain::kMaxPath;

namespace policy {
/// Bounded retries for spuriously-failed vexec before the strong slow path.
inline constexpr int kVexecRetries = 3;
/// Bounded transaction attempts before the fast path gives up (Alg. 7).
inline constexpr int kHtmRetries = 5;
}  // namespace policy

namespace fastpath {

/// One transaction attempt of Algorithm 7 over the staged operation.
/// Returns kNone (committed), kOld (genuine failure), or a retryable code.
htm::Abort attempt(bool withValidation);

}  // namespace fastpath

namespace detail_exec {

/// Shared execution core. fast=true adds the HTM fast path in front and
/// serializes the software fallback on the htm global lock (required for the
/// emulated backend; harmless with real RTM).
inline k::ExecResult executeOnce(bool withValidation, bool fast) {
  if (fast) {
    for (int tries = 0; tries < policy::kHtmRetries; ++tries) {
      const htm::Abort a = fastpath::attempt(withValidation);
      if (a == htm::Abort::kNone) return k::ExecResult::kSucceeded;
      if (a == htm::Abort::kOld) return k::ExecResult::kFailedValue;
      if (a == htm::Abort::kDescriptor) break;  // slow path resolves it
    }
    htm::noteFallback();
    htm::globalLock().lock();
    const k::ExecResult r = domain().execute(withValidation);
    htm::globalLock().unlock();
    return r;
  }
  return domain().execute(withValidation);
}

inline bool vexecImpl(bool fast) {
  Backoff backoff;
  for (int attempt = 0; attempt <= policy::kVexecRetries; ++attempt) {
    const k::ExecResult r = executeOnce(/*withValidation=*/true, fast);
    if (r == k::ExecResult::kSucceeded) return true;
    if (r == k::ExecResult::kFailedValue) return false;
    // Validation failed. Distinguish genuine (a visited version changed:
    // another operation succeeded; P1 satisfied by returning false) from
    // spurious (a visited node merely held a descriptor).
    if (!domain().validateStaged() && !domain().pathBlockedByDescriptor())
      return false;
    backoff.pause();
  }
  // A marked visited version can never validate; the strong path below
  // skips validation, so committing would link into an unlinked node.
  if (domain().stagedMarkDoomed()) return false;
  // Strong vexec (§3.5): promote all visited ⟨node,ver⟩ pairs to
  // ⟨node.ver, v, v⟩ entries and run a plain exec, locking the versions of
  // every visited node instead of validating them. Sorting (inside execute)
  // restores lock-freedom's global order; duplicates with real entries are
  // dropped in favour of the real entry.
  domain().promotePathToEntries();
  return executeOnce(/*withValidation=*/false, fast) ==
         k::ExecResult::kSucceeded;
}

/// Read-only counterpart of vexecImpl for operations with no staged entries
/// (range scans): establish that the visited set was atomic, without
/// modifying anything. Optimistic validation with bounded retries; if every
/// failure was spurious (a visited node merely held a descriptor), fall back
/// to the §3.5 strong path — promote the path to ⟨ver, v, v⟩ entries and run
/// a plain exec, which momentarily locks every visited version at its
/// observed value. Success proves all visited versions held simultaneously
/// at the exec's linearization point, so scans cannot starve behind a stream
/// of spurious conflicts. `fast` must match the structure's update mode
/// (HTM-fast-path structures must serialize the fallback on the htm global
/// lock, like their updates do).
inline bool validateVisitedImpl(bool fast) {
  Backoff backoff;
  for (int attempt = 0; attempt <= policy::kVexecRetries; ++attempt) {
    if (domain().validateStaged()) return true;
    // Genuine failure (a visited version changed or was marked): the caller
    // must re-traverse. Note the descriptor probe races the validation — a
    // blocking descriptor may resolve in between, in which case we return a
    // conservative false and the caller retries; never a false positive.
    if (!domain().pathBlockedByDescriptor()) return false;
    backoff.pause();
  }
  if (domain().stagedMarkDoomed()) return false;
  domain().promotePathToEntries();
  return executeOnce(/*withValidation=*/false, fast) ==
         k::ExecResult::kSucceeded;
}

}  // namespace detail_exec

/// exec(): KCAS over the added addresses; visited nodes are NOT validated.
inline bool exec() {
  domain().clearPath();
  return detail_exec::executeOnce(false, false) == k::ExecResult::kSucceeded;
}

/// vexec(): exec only if no visited node changed. Spurious validation
/// failures are retried a bounded number of times, then resolved through the
/// strong slow path, guaranteeing property P1 (§3.5).
inline bool vexec() { return detail_exec::vexecImpl(false); }

/// validateVisited(): vexec's read-only sibling, for operations that stage
/// no entries (range scans, multi-key reads). Returns true iff the visited
/// set formed an atomic snapshot: optimistic validate with bounded retries,
/// then the §3.5 strong path (lock every visited version at its observed
/// value via a plain exec), so scans cannot starve on spurious conflicts.
/// False means a visited node genuinely changed — re-traverse and retry.
/// Note: consumes the staged operation (the strong path may rewrite the
/// staging area); call start() before the next traversal, as usual.
inline bool validateVisited() { return detail_exec::validateVisitedImpl(false); }

/// Fast-path variants used by the *-pathcas+ data structures: an HTM (or
/// emulated-HTM) transaction attempts the whole operation first.
inline bool execFast() {
  domain().clearPath();
  return detail_exec::executeOnce(false, true) == k::ExecResult::kSucceeded;
}
inline bool vexecFast() { return detail_exec::vexecImpl(true); }
inline bool validateVisitedFast() {
  return detail_exec::validateVisitedImpl(true);
}

namespace fastpath {

inline htm::Abort attempt(bool withValidation) {
  auto& dom = domain();
  return htm::run([&](htm::Tx& tx) {
    // Validation (Algorithm 7 line 4): raw reads; any descriptor forces the
    // slow path (we cannot know the logical value), any changed version is a
    // genuine failure.
    if (withValidation) {
      dom.forEachStagedPath([&](k::AtomicWord* addr, k::word_t expected) {
        const k::word_t cur = k::DefaultDomain::loadRaw(addr);
        if (k::isDescriptor(cur)) tx.abort(htm::Abort::kDescriptor);
        if (cur != expected || (k::decodeVal(expected) & 1))
          tx.abort(htm::Abort::kOld);
      });
    }
    // Check every added address holds its old value (lines 5-10).
    dom.forEachStagedEntry([&](k::AtomicWord* addr, k::word_t oldEnc,
                               k::word_t, bool) {
      const k::word_t cur = k::DefaultDomain::loadRaw(addr);
      if (cur == oldEnc) return;
      tx.abort(k::isDescriptor(cur) ? htm::Abort::kDescriptor
                                    : htm::Abort::kOld);
    });
    // Write new values (lines 11-13); version words first so concurrent
    // validated readers racing the emulated transaction fail validation
    // rather than observing a torn state.
    for (const bool versionPass : {true, false}) {
      dom.forEachStagedEntry([&](k::AtomicWord* addr, k::word_t,
                                 k::word_t newEnc, bool isVer) {
        if (isVer == versionPass) {
          addr->store(newEnc, std::memory_order_release);
        }
      });
    }
  });
}

}  // namespace fastpath

}  // namespace pathcas
