// Scoped KCAS-domain selection: which KcasDomain instance the free-function
// PathCAS API (pathcas::start/add/visit/...) and casword<T>::load() operate
// on for the calling thread.
//
// Historically every call site hard-wired DefaultDomain::instance(), i.e. one
// process-global domain. The sharded service layer (src/service/) gives each
// shard its OWN domain — descriptor tables, staging, DCSS descriptors — so
// that shards never contend on each other's descriptor cache lines and a
// (tid, seq) descriptor reference is only ever resolved against the domain
// that produced it. The selection is thread-local and RAII-scoped:
//
//   k::ScopedDomain scope(shard.kcas());   // enter the shard's domain
//   tree.insert(k, v);                     // all PathCAS calls inside use it
//   // scope exit restores the previous selection (nesting-safe)
//
// With no scope active, currentDomain() falls back to the process-wide
// DefaultDomain::instance(), so all pre-existing single-domain code is
// unchanged in behaviour and cost (one TLS load + a predictable branch).
//
// Correctness rule (see docs/ARCHITECTURE.md, "Sharded service layer"): a
// given structure instance must ALWAYS be operated under the same domain —
// helpers resolve descriptor references against the current domain's tables,
// so mixing domains on one structure would hand a helper another operation's
// descriptor. The sharded map enforces this by construction (every call on a
// shard's tree is wrapped in that shard's ScopedDomain).
#pragma once

#include "kcas/kcas.hpp"

namespace pathcas::k {

namespace detail {
/// The calling thread's active domain; nullptr = the process default.
/// Written only by ScopedDomain.
inline thread_local DefaultDomain* tlsCurrentDomain = nullptr;
}  // namespace detail

/// Domain the calling thread's PathCAS operations currently target.
inline DefaultDomain& currentDomain() {
  DefaultDomain* d = detail::tlsCurrentDomain;
  if (PATHCAS_UNLIKELY(d != nullptr)) return *d;
  return DefaultDomain::instance();
}

/// RAII selection of `domain` as the calling thread's current domain.
/// Nestable (restores the previous selection on destruction); must not
/// straddle a suspension point that migrates threads (plain TLS).
class ScopedDomain {
 public:
  explicit ScopedDomain(DefaultDomain& domain)
      : prev_(detail::tlsCurrentDomain) {
    detail::tlsCurrentDomain = &domain;
  }
  ~ScopedDomain() { detail::tlsCurrentDomain = prev_; }
  ScopedDomain(const ScopedDomain&) = delete;
  ScopedDomain& operator=(const ScopedDomain&) = delete;

 private:
  DefaultDomain* prev_;
};

}  // namespace pathcas::k
