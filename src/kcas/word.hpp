// Word encoding for KCAS/PathCAS-managed memory.
//
// Every word that can be modified by KCAS/PathCAS is a 64-bit atomic whose
// low two bits are a tag:
//   00  — an application value, shifted left by 2 (62-bit payload)
//   01  — a reference to a DCSS descriptor
//   10  — a reference to a KCAS/PathCAS descriptor
//
// Descriptor references follow the Arbel-Raviv & Brown "reuse, don't recycle"
// scheme: instead of a heap pointer, a reference packs the owning thread's id
// and the descriptor's sequence number:
//      [ seq : 46 | tid : 16 | tag : 2 ]
// Each thread owns exactly one descriptor of each kind, reused across
// operations; the sequence number makes every reference unique per operation,
// so a helper holding a stale reference (a) fails sequence validation when it
// reads descriptor fields, and (b) fails every CAS whose expected value is the
// stale reference. No descriptor is ever allocated or freed at runtime.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/defs.hpp"

namespace pathcas::k {

using word_t = std::uint64_t;
using AtomicWord = std::atomic<word_t>;

inline constexpr word_t kTagDcss = 0x1;
inline constexpr word_t kTagKcas = 0x2;
inline constexpr word_t kTagMask = 0x3;

inline constexpr int kTidBits = 16;
inline constexpr int kRefShift = 2 + kTidBits;
static_assert(kMaxThreads <= (1 << kTidBits));

inline bool isDcss(word_t w) { return (w & kTagMask) == kTagDcss; }
inline bool isKcas(word_t w) { return (w & kTagMask) == kTagKcas; }
inline bool isDescriptor(word_t w) { return (w & kTagMask) != 0; }

/// Application values occupy 62 bits. Keys/pointers/versions all fit: x86-64
/// canonical pointers are <= 57 bits and version numbers wrap at 2^62 (the
/// paper's ABA analysis, §C.2, applies unchanged).
inline constexpr word_t encodeVal(word_t v) { return v << 2; }
inline constexpr word_t decodeVal(word_t w) { return w >> 2; }

inline word_t packRef(word_t tag, int tid, std::uint64_t seq) {
  return (seq << kRefShift) | (static_cast<word_t>(tid) << 2) | tag;
}
inline int refTid(word_t w) {
  return static_cast<int>((w >> 2) & ((1u << kTidBits) - 1));
}
inline std::uint64_t refSeq(word_t w) { return w >> kRefShift; }

/// Descriptor status word: [ seq : 62 | state : 2 ]. Used by the KCAS
/// descriptor's seqState and, since the commit-path overhaul, by the DCSS
/// descriptor's seqStatus (where the state half records the decision when
/// the owner asked for outcome reporting — see KcasDomain::dcss).
enum class State : std::uint64_t { kUndecided = 0, kSucceeded = 1, kFailed = 2 };

inline word_t packSeqState(std::uint64_t seq, State s) {
  return (seq << 2) | static_cast<word_t>(s);
}
inline std::uint64_t seqOf(word_t ss) { return ss >> 2; }
inline State stateOf(word_t ss) { return static_cast<State>(ss & 3); }

}  // namespace pathcas::k
