// Lock-free multi-word CAS with search-path validation — the engine under
// PathCAS.
//
// This is the Harris-Fraser-Pratt (HFP) KCAS algorithm with two extensions:
//  1. the Arbel-Raviv & Brown descriptor-reuse transformation (per-thread
//     reusable descriptors referenced by (tid, seq) tagged words; see
//     word.hpp), and
//  2. the paper's validation phase (the "two red lines" of Algorithm 1): a
//     descriptor additionally carries a `path` of ⟨version-word, expected⟩
//     pairs which are re-checked after all entry addresses are locked and
//     before the operation's status is decided.
//
// The user-facing start/read/add/visit/validate/exec/vexec interface lives in
// pathcas/pathcas.hpp; this layer exposes owner-side argument staging, the
// helping machinery, and a plain KCAS (no path) used by the MCMS baseline.
//
// ---------------------------------------------------------------------------
// Commit-path engineering (docs/ARCHITECTURE.md, "Commit-path fast paths &
// memory-order discipline"). Three orthogonal optimizations, each toggleable
// through the KcasPolicy template parameter so bench/ablation_hotpath.cpp can
// attribute the win per optimization:
//
//  * Degenerate fast paths (Policy::kDegenerateFastPaths). A staged op with
//    exactly one entry and no path commits with a single CAS — no descriptor
//    publication, no DCSS, nothing a helper could ever observe. One entry
//    plus one visited version commits with a single DCSS whose guard word is
//    the visited version (check-version-and-swap is exactly the k=1/p=1
//    vexec semantic). Contention (a descriptor in the way) falls back to the
//    general descriptor-based path, preserving lock-freedom.
//
//  * Fence discipline (Policy::kRelaxedPublication). Descriptor fields are
//    published with relaxed stores capped by one release fence instead of a
//    seq_cst seq bump plus per-field release stores; phase-2 unlock CASes
//    drop from seq_cst to acq_rel. Per-site justifications sit next to each
//    ordering below — the gist is that the (tid, seq) validation protocol
//    already makes stale reads harmless, so publication only needs the
//    minimal release edges the protocol consumes.
//
//  * Hot/cold descriptor layout (Policy::kInlineEntries). KcasDesc keeps its
//    first kInlineEntries entry/path slots in a packed structure-of-arrays
//    header next to seqState and the counts, with the MCMS-sized remainder
//    in a cold overflow region, so a helper processing a tree-sized op (k ≤
//    4) touches a couple of leading cache lines instead of striding an
//    array-of-structs sized for k = 512. The owner-private Staging area gets
//    the same split (small ops stay within one page), entries are kept
//    address-sorted by insertion at addEntry() time (ops stage ≤ 4 entries,
//    so a shifting insert beats the per-execute std::sort it replaces), and
//    a thread-local (domain, tid, pointers) cache lets begin/addEntry/visit
//    skip the ThreadRegistry::tid() resolution and Padded-array indexing on
//    every call.
// ---------------------------------------------------------------------------
//
// Thread model: any thread calling into this class is registered with
// ThreadRegistry (registration happens lazily on the first call; worker
// threads should hold a ThreadGuard so ids recycle). A thread performs at
// most one KCAS operation at a time (the staging area is per-thread), but
// may help any number of other operations while reading.
//
// Ownership/lifetime: KcasDomain::instance() is a process-lifetime singleton
// whose descriptor tables are statically sized by kMaxThreads — no
// descriptor is ever heap-allocated or freed. The AtomicWords passed to
// addEntry()/addPath() are owned by the caller and must remain mapped until
// no helper can still hold a (tid, seq) reference that resolves to them;
// data structures guarantee this by retiring nodes through recl::EbrDomain,
// which recycles each expired node's memory into its owning recl::NodePool
// (never freeing or overwriting it before the grace period ends). Helpers
// may therefore dereference a node's words during the whole grace period;
// after it, the slot may be reused for a new node of the same type.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "kcas/word.hpp"
#include "util/defs.hpp"
#include "util/padding.hpp"
#include "util/thread_registry.hpp"

namespace pathcas::k {

/// Result of an owner's execute() — helpers do not consume results.
enum class ExecResult {
  kSucceeded,
  kFailedValue,       // some added address held an unexpected value (genuine)
  kFailedValidation,  // a visited node changed or was locked (maybe spurious)
};

/// Compile-time switches for the commit-path optimizations (see the header
/// comment). Each one is independently toggleable so the ablation benchmark
/// can attribute wins; production code uses TunedPolicy.
template <bool DegenerateFastPaths, bool RelaxedPublication, int InlineSlots,
          bool StagingMerge = true>
struct KcasPolicy {
  /// k=1 ops bypass descriptor publication (plain CAS / single DCSS).
  static constexpr bool kDegenerateFastPaths = DegenerateFastPaths;
  /// Relaxed field publication capped by one release fence; acq_rel unlocks.
  static constexpr bool kRelaxedPublication = RelaxedPublication;
  /// Entry/path slots kept inline in the hot descriptor header (0 = all
  /// slots live in the cold region, approximating the pre-split layout).
  static constexpr int kInlineEntries = InlineSlots;
  /// Sorted staging via append + one tail-merge past k<=4 instead of a
  /// per-entry shifting insert (quadratic for 5..kInline-entry ops) or a
  /// full per-execute sort. Off reproduces the PR 5 staging exactly.
  static constexpr bool kStagingMerge = StagingMerge;
};

/// Everything on: what DefaultDomain (and therefore every structure) runs.
using TunedPolicy = KcasPolicy<true, true, 8>;
/// Everything off: the pre-optimization engine, kept as the ablation
/// baseline (seq_cst publication, descriptor for every op, flat layout,
/// per-execute full sort).
using LegacyPolicy = KcasPolicy<false, false, 0, false>;

// Defaults sized for the widest users: MCMS-style full-path compares need
// ~2 entries per tree level; PathCAS visits need one path slot per level.
// Exceeding either bound is a checked error (the paper's footnote 2:
// over-allocate, or use structures with a known practical height bound).
template <int MaxEntries = 512, int MaxPath = 512, class Policy = TunedPolicy>
class KcasDomain {
 public:
  static constexpr int kMaxEntries = MaxEntries;
  static constexpr int kMaxPath = MaxPath;

  /// Process-wide domain. All data structures in this repo share it (one
  /// operation per thread at a time, as in the paper's implementation).
  static KcasDomain& instance() {
    static KcasDomain domain;
    return domain;
  }

  // ----------------------------------------------------------------------
  // Owner-side argument staging (wait-free; the paper's start/add/visit).
  // ----------------------------------------------------------------------

  /// Begin staging a new operation for the calling thread.
  void begin() {
    Staging& st = *slots().st;
    st.numEntries = 0;
    st.numPath = 0;
    st.sortedPrefix = 0;
  }

  /// Stage ⟨addr, old, new⟩ (already-encoded words).
  void addEntry(AtomicWord* addr, word_t oldEnc, word_t newEnc) {
    addEntryImpl(addr, oldEnc, newEnc, /*isVersionWord=*/false);
  }

  /// Stage a version-word change. Identical semantics; flagged so the HTM
  /// fast path can write version words before data words.
  void addVerEntry(AtomicWord* addr, word_t oldEnc, word_t newEnc) {
    addEntryImpl(addr, oldEnc, newEnc, /*isVersionWord=*/true);
  }

  /// Stage a visited version word and the (encoded) value observed.
  void addPath(AtomicWord* verAddr, word_t expectedEnc) {
    Staging& st = *slots().st;
    PATHCAS_CHECK(st.numPath < MaxPath);
    st.pathAt(st.numPath++) = StagedPath{verAddr, expectedEnc};
  }

  int numStagedEntries() { return slots().st->numEntries; }
  int numStagedPath() { return slots().st->numPath; }
  /// numEntries + numPath through one TLS lookup: the batch-staging budget
  /// probe runs once per visited node, so the two separate accessors would
  /// pay the slots() indirection twice per hop on the hottest tree path.
  int stagedFootprint() {
    const Staging& st = *slots().st;
    return st.numEntries + st.numPath;
  }

  /// Drop the staged path (exec = vexec without validation, §3.3).
  void clearPath() { slots().st->numPath = 0; }

  /// Strong vexec support (§3.5): convert every staged ⟨node, ver⟩ pair into
  /// a ⟨node.ver, v, v⟩ entry (skipping version words that already have a
  /// real entry, e.g. a visited parent whose version is being incremented,
  /// and duplicate visits of the same node — first observation wins, as
  /// before), then clear the path. The subsequent execute(false) locks the
  /// versions instead of validating them.
  ///
  /// Implementation is a sorted merge: stable-sort a copy of the path,
  /// dedup adjacent slots, and merge it with the (sorted) entries —
  /// O((n+p)·log) overall, replacing the O(p·n + p²) scans this used to do,
  /// so PATHCAS_CHECKed debug builds are no longer quadratic in path length
  /// and a kMaxVisited-wide scan's escalation stays cheap.
  void promotePathToEntries() {
    Staging& st = *slots().st;
    if (st.sortedPrefix != st.numEntries) sortEntries(st);
    const int np = st.numPath;
    StagedPath paths[MaxPath];
    for (int i = 0; i < np; ++i) paths[i] = st.pathAt(i);
    std::stable_sort(paths, paths + np,
                     [](const StagedPath& a, const StagedPath& b) {
                       return a.addr < b.addr;
                     });
    const int n = st.numEntries;
    StagedEntry merged[MaxEntries];
    int out = 0, ei = 0;
    for (int i = 0; i < np; ++i) {
      if (i > 0 && paths[i].addr == paths[i - 1].addr) continue;  // revisit
      while (ei < n && st.entry(ei).addr < paths[i].addr)
        merged[out++] = st.entry(ei++);
      if (ei < n && st.entry(ei).addr == paths[i].addr) continue;  // real entry
      PATHCAS_CHECK(out < MaxEntries - (n - ei));
      merged[out++] = StagedEntry{paths[i].addr, paths[i].expectedEnc,
                                  paths[i].expectedEnc,
                                  /*isVersionWord=*/true};
    }
    while (ei < n) merged[out++] = st.entry(ei++);
    for (int i = 0; i < out; ++i) st.entry(i) = merged[i];
    st.numEntries = out;
    st.sortedPrefix = out;
    st.numPath = 0;
  }

  /// True iff the staged operation can never pass validation no matter how
  /// many times it is replayed: a visited version was already marked when it
  /// was recorded, or a staged version-word entry expects a marked old value
  /// (no legitimate operation stages one — marking is always old-unmarked →
  /// new-marked). The strong path (§3.5) skips validation entirely, so its
  /// callers must reject such operations as genuine failures first;
  /// otherwise a ⟨ver, v, v⟩ lock on a marked version would "validate" a
  /// node that was already unlinked.
  bool stagedMarkDoomed() {
    Staging& st = *slots().st;
    for (int i = 0; i < st.numPath; ++i) {
      if (decodeVal(st.pathAt(i).expectedEnc) & 1) return true;
    }
    for (int i = 0; i < st.numEntries; ++i) {
      const StagedEntry& e = st.entry(i);
      if (e.isVersionWord && (decodeVal(e.oldEnc) & 1)) return true;
    }
    return false;
  }

  /// True iff some staged path word currently holds a descriptor reference
  /// (i.e. the last validation failure may have been spurious, §3.5).
  bool pathBlockedByDescriptor() {
    Staging& st = *slots().st;
    for (int i = 0; i < st.numPath; ++i) {
      if (isDescriptor(st.pathAt(i).addr->load(std::memory_order_acquire)))
        return true;
    }
    return false;
  }

  /// Iterate the staged operation (HTM fast path). f(addr, old, new, isVer).
  /// Entries are visited in address order (the sorted-staging invariant),
  /// which the fast path's two write passes are insensitive to.
  template <typename F>
  void forEachStagedEntry(F&& f) {
    Staging& st = *slots().st;
    for (int i = 0; i < st.numEntries; ++i) {
      const StagedEntry& e = st.entry(i);
      f(e.addr, e.oldEnc, e.newEnc, e.isVersionWord);
    }
  }
  /// f(addr, expectedEnc) over the staged path.
  template <typename F>
  void forEachStagedPath(F&& f) {
    Staging& st = *slots().st;
    for (int i = 0; i < st.numPath; ++i) {
      const StagedPath& p = st.pathAt(i);
      f(p.addr, p.expectedEnc);
    }
  }

  /// Owner-side read-only validation of the staged path (the paper's
  /// validate()). May fail spuriously when a visited node is locked by
  /// another in-flight operation.
  bool validateStaged() { return validateStagedOn(*slots().st); }

  // ----------------------------------------------------------------------
  // Execution.
  // ----------------------------------------------------------------------

  /// Publish the staged operation and run it to completion (helping as
  /// needed). Staging is preserved, so a spuriously failed vexec can be
  /// replayed verbatim (§3.5). `withValidation` distinguishes vexec (true)
  /// from exec (false).
  ExecResult execute(bool withValidation) {
    TlsSlots& s = slots();
    Staging& st = *s.st;
    const int nPath = withValidation ? st.numPath : 0;

    if constexpr (Policy::kDegenerateFastPaths) {
      // Degenerate shapes commit without publishing a descriptor. Safe
      // because nothing partial is ever observable: a single CAS (or single
      // DCSS) is atomic on its own, so there is no helper protocol to
      // participate in and no state a concurrent thread could complete.
      if (st.numEntries == 0) {
        // Validation-only op (or a no-op). A single read pass over the path
        // is exactly what the general path's validateDesc would do — it
        // takes no locks when there are no entries.
        if (nPath == 0) return ExecResult::kSucceeded;
        return validateStagedOn(st) ? ExecResult::kSucceeded
                                    : ExecResult::kFailedValidation;
      }
      if (st.numEntries == 1) {
        if (nPath == 0) return execK1(st);
        if (nPath == 1) {
          ExecResult r;
          if (execK1Path(st, r)) return r;
          // Contention budget exhausted: resolve through the general path.
        }
      }
    }

    KcasDesc& des = *s.des;

    // Entries must be address-sorted before publication: the lock-freedom
    // argument (appendix C) relies on every helper locking addresses in one
    // global order. Small ops maintained the invariant at addEntry time;
    // append-mode staging restores it here, once (a tail-sort + merge with
    // the sorted prefix, or the legacy full sort — see sortEntries).
    if (st.sortedPrefix != st.numEntries) sortEntries(st);

    // Reuse protocol (Arbel-Raviv & Brown): advance seqState FIRST — any
    // helper of the previous operation that later reads a freshly written
    // field is forced to also observe the new seq and discard it — then
    // publish the fields, then hand out the reference via phase-1 installs.
    //
    // Ordering, tuned flavour: the seq bump itself is relaxed and the field
    // stores are relaxed; the single release fence between them is what
    // carries both required edges. (1) Stale-helper safety: a helper's
    // acquire load that observes any post-fence field store synchronizes
    // with the fence (fence-atomic synchronization), making the pre-fence
    // seq bump visible to its readField freshness re-check. (2) Fresh-helper
    // safety: a helper only learns `ref` from a phase-1 install CAS, which
    // is seq_cst and sequenced after every field store, so all fields (and
    // the undecided seqState the DCSS guard compares) are visible to it.
    // Nothing here needs seq_cst: no thread can act on this operation until
    // the install publishes it.
    const std::uint64_t seq =
        seqOf(des.seqState.load(std::memory_order_relaxed)) + 1;
    des.seqState.store(packSeqState(seq, State::kUndecided),
                       Policy::kRelaxedPublication ? std::memory_order_relaxed
                                                   : std::memory_order_seq_cst);
    if constexpr (Policy::kRelaxedPublication) {
      std::atomic_thread_fence(std::memory_order_release);
    }
    // Legacy flavour: per-field release stores (each one redundantly carries
    // the edge the single fence provides above).
    constexpr std::memory_order po = Policy::kRelaxedPublication
                                         ? std::memory_order_relaxed
                                         : std::memory_order_release;
    for (int i = 0; i < st.numEntries; ++i) {
      const StagedEntry& e = st.entry(i);
      des.entryAddr(i).store(reinterpret_cast<word_t>(e.addr), po);
      des.entryOldv(i).store(e.oldEnc, po);
      des.entryNewv(i).store(e.newEnc, po);
    }
    for (int i = 0; i < nPath; ++i) {
      const StagedPath& p = st.pathAt(i);
      des.pathAddr(i).store(reinterpret_cast<word_t>(p.addr), po);
      des.pathExpected(i).store(p.expectedEnc, po);
    }
    des.numEntries.store(static_cast<std::uint32_t>(st.numEntries), po);
    des.numPath.store(static_cast<std::uint32_t>(nPath), po);

    const word_t ref = packRef(kTagKcas, s.tid, seq);
    return help(ref, /*isOwner=*/true);
  }

  /// KCASRead: read an application value (encoded), helping any operation
  /// found in the word. Never returns a descriptor reference.
  word_t readEncoded(AtomicWord* addr) {
    for (;;) {
      const word_t w = addr->load(std::memory_order_acquire);
      if (PATHCAS_LIKELY(!isDescriptor(w))) return w;
      if (isKcas(w)) {
        help(w, /*isOwner=*/false);
      } else {
        helpDcss(w);
      }
    }
  }

  /// Raw load without helping: used by validateDesc (Algorithm 2 reads
  /// version words raw so that our own lock reads as "ours") and by
  /// HTM-fast-path code that must abort on descriptors.
  static word_t loadRaw(AtomicWord* addr) {
    return addr->load(std::memory_order_acquire);
  }

  // ----------------------------------------------------------------------
  // DCSS (double-compare single-swap), software, per HFP. In the general
  // KCAS path addr1 is a KCAS descriptor's seqState and exp1 the undecided
  // status for its seq, confining installations of KCAS references to
  // undecided operations (no resurrection of completed operations). The
  // k=1-with-path fast path reuses it with addr1 = a visited version word.
  // Public so the DCSS microbenchmark (BM_DcssPublish) and the fast-path
  // injection tests can drive it directly; not part of the structure-facing
  // API.
  // ----------------------------------------------------------------------

  /// Perform DCSS as the owner (using the calling thread's DCSS descriptor).
  /// Returns the (raw) value seen at addr2: exp2 indicates the descriptor
  /// was installed and the DCSS ran to completion; any other value is
  /// returned for the caller to dispatch on (application value => entry
  /// failure, KCAS ref => help). When installed, *outcome (if non-null)
  /// reports whether the swap committed new2 (addr1 held exp1 at the
  /// decision point) or reverted to exp2.
  ///
  /// Passing a non-null outcome switches the descriptor into
  /// decision-recording mode: every completer CASes its addr1 verdict into
  /// seqStatus and swings addr2 per the recorded (first) verdict, so the
  /// owner can read the authoritative outcome afterwards. The general KCAS
  /// path passes nullptr and skips that extra CAS — it re-examines memory
  /// anyway, divergent helper verdicts are harmless there (only the first
  /// swing of addr2 can succeed), and the entry-lock DCSS is hot enough
  /// that one more lock-prefixed op per entry is measurable.
  word_t dcss(AtomicWord* a1, word_t e1, AtomicWord* a2, word_t e2, word_t n2,
              bool* outcome = nullptr) {
    TlsSlots& s = slots();
    DcssDesc& d = *s.dcss;
    // Same publication protocol as execute(): bump-to-undecided first (which
    // doubles as the decision word), one release fence, relaxed fields. A
    // helper can only decide this operation after obtaining `ref` from the
    // install CAS below, which is seq_cst and publishes everything.
    const std::uint64_t seq =
        seqOf(d.seqStatus.load(std::memory_order_relaxed)) + 1;
    d.seqStatus.store(packSeqState(seq, State::kUndecided),
                      Policy::kRelaxedPublication ? std::memory_order_relaxed
                                                  : std::memory_order_seq_cst);
    if constexpr (Policy::kRelaxedPublication) {
      std::atomic_thread_fence(std::memory_order_release);
    }
    constexpr std::memory_order po = Policy::kRelaxedPublication
                                         ? std::memory_order_relaxed
                                         : std::memory_order_release;
    d.addr1.store(reinterpret_cast<word_t>(a1), po);
    d.exp1.store(e1, po);
    d.addr2.store(reinterpret_cast<word_t>(a2), po);
    d.exp2.store(e2, po);
    d.new2.store(n2, po);
    d.recordDecision.store(outcome != nullptr ? 1 : 0, po);
    const word_t ref = packRef(kTagDcss, s.tid, seq);
    for (;;) {
      word_t seen = e2;
      if (a2->compare_exchange_strong(seen, ref,
                                      std::memory_order_seq_cst)) {
        completeDcss(d, ref, a1, e1, a2, e2, n2, outcome != nullptr);
        // The owner has not reused the descriptor, so seqStatus still
        // carries this operation's decided state.
        if (outcome != nullptr) {
          *outcome = stateOf(d.seqStatus.load(std::memory_order_acquire)) ==
                     State::kSucceeded;
        }
        return e2;
      }
      if (isDcss(seen)) {
        helpDcss(seen);
        continue;
      }
      return seen;
    }
  }

 private:
  struct StagedEntry {
    AtomicWord* addr;
    word_t oldEnc;
    word_t newEnc;
    bool isVersionWord;
  };
  struct StagedPath {
    AtomicWord* addr;
    word_t expectedEnc;
  };

  // Inline ("hot") slot count shared by the descriptor and staging layouts.
  static constexpr int kInline = Policy::kInlineEntries;
  static constexpr int kHotSlots = kInline > 0 ? kInline : 1;
  static constexpr int kColdEntrySlots =
      MaxEntries > kInline ? MaxEntries - kInline : 1;
  static constexpr int kColdPathSlots =
      MaxPath > kInline ? MaxPath - kInline : 1;

  /// Owner-private staging area; never read by other threads. Hot/cold
  /// split: a tree-sized op (≤ kInline entries and path slots) lives
  /// entirely in the leading bytes — one or two cache lines, one page —
  /// instead of having its path slots sizeof(entries[MaxEntries]) away.
  /// Entries [0, sortedPrefix) are address-sorted (addEntryImpl's shifting
  /// insert maintains it up to kShiftBound entries); anything past the
  /// prefix was appended out of order, and execute/promote restore the
  /// full-sorted invariant once per op (sortEntries: with the staging-merge
  /// policy a tail-sort plus one inplace_merge against the prefix, O(t log
  /// t + n); legacy a full O(n log n) sort). The sorted invariant is what
  /// the lock-freedom argument needs (one global locking order) and what
  /// lets promotePathToEntries and the duplicate-address debug check use
  /// binary search / a merge instead of O(n²) scans.
  struct Staging {
    std::int32_t numEntries = 0;
    std::int32_t numPath = 0;
    std::int32_t sortedPrefix = 0;
    StagedEntry hotEntries[kHotSlots];
    StagedPath hotPath[kHotSlots];
    StagedEntry coldEntries[kColdEntrySlots];
    StagedPath coldPath[kColdPathSlots];

    StagedEntry& entry(int i) {
      if constexpr (kInline > 0) {
        return i < kInline ? hotEntries[i] : coldEntries[i - kInline];
      } else {
        return coldEntries[i];
      }
    }
    StagedPath& pathAt(int i) {
      if constexpr (kInline > 0) {
        return i < kInline ? hotPath[i] : coldPath[i - kInline];
      } else {
        return coldPath[i];
      }
    }
    /// First index whose entry address is >= addr (entries are sorted).
    int lowerBound(const AtomicWord* addr) {
      int lo = 0, hi = numEntries;
      while (lo < hi) {
        const int mid = (lo + hi) / 2;
        if (entry(mid).addr < addr) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return lo;
    }
  };

  /// Shared descriptor fields. Helpers read these concurrently with the
  /// owner's reuse of the descriptor for a later operation, hence every
  /// field is an atomic and every helper read is validated against seqState
  /// (readField below).
  ///
  /// Layout: hot header first — seqState, the counts, and kInline entry/path
  /// slots as structure-of-arrays (addr[]/oldv[]/newv[], so phase 1 streams
  /// addr+oldv without dragging newv lines in, and phase 2 streams newv) —
  /// then the cold overflow region for MCMS-sized ops. A k ≤ 4 helper
  /// touches the first handful of cache lines instead of striding an
  /// array-of-structs laid out for k = MaxEntries.
  struct alignas(kCacheLine) KcasDesc {
    std::atomic<word_t> seqState{packSeqState(0, State::kUndecided)};
    std::atomic<std::uint32_t> numEntries{0}, numPath{0};
    // Hot SoA slots.
    AtomicWord hotAddr[kHotSlots], hotOldv[kHotSlots], hotNewv[kHotSlots];
    AtomicWord hotPathAddr[kHotSlots], hotPathExp[kHotSlots];
    // Cold overflow.
    AtomicWord coldAddr[kColdEntrySlots], coldOldv[kColdEntrySlots],
        coldNewv[kColdEntrySlots];
    AtomicWord coldPathAddr[kColdPathSlots], coldPathExp[kColdPathSlots];

    AtomicWord& entryAddr(int i) { return pick(hotAddr, coldAddr, i); }
    AtomicWord& entryOldv(int i) { return pick(hotOldv, coldOldv, i); }
    AtomicWord& entryNewv(int i) { return pick(hotNewv, coldNewv, i); }
    AtomicWord& pathAddr(int i) { return pick(hotPathAddr, coldPathAddr, i); }
    AtomicWord& pathExpected(int i) { return pick(hotPathExp, coldPathExp, i); }

   private:
    template <int H, int C>
    static AtomicWord& pick(AtomicWord (&hot)[H], AtomicWord (&cold)[C],
                            int i) {
      if constexpr (kInline > 0) {
        return i < kInline ? hot[i] : cold[i - kInline];
      } else {
        return cold[i];
      }
    }
  };

  /// DCSS descriptor. seqStatus packs [seq | state] (same encoding as a KCAS
  /// seqState): the seq half is the reuse-validation tag; the state half is
  /// the operation's decision word when recordDecision is set. Recording the
  /// decision in the descriptor (instead of each helper acting on its own
  /// read of addr1) gives every completer the same verdict and lets the
  /// owner learn the outcome after the fact — which the k=1-with-path fast
  /// path needs to distinguish "committed" from "reverted because the guard
  /// moved". The general path leaves recordDecision off and skips the extra
  /// CAS (see dcss()).
  struct DcssDesc {
    std::atomic<word_t> seqStatus{packSeqState(0, State::kFailed)};
    AtomicWord addr1{0}, exp1{0}, addr2{0}, exp2{0}, new2{0};
    AtomicWord recordDecision{0};
  };

  /// Thread-local fast-access cache: resolved once per (domain, tid) pair,
  /// so the staging hot path is a TLS load plus one predictable branch
  /// instead of a ThreadRegistry::tid() call and three Padded-array
  /// indexings per begin/addEntry/visit. Revalidated against both the
  /// domain identity (tests build private domains) and the tid (ThreadGuard
  /// recycles ids across threads).
  struct TlsSlots {
    const KcasDomain* dom = nullptr;
    int tid = -1;
    Staging* st = nullptr;
    KcasDesc* des = nullptr;
    DcssDesc* dcss = nullptr;
  };

  TlsSlots& slots() {
    TlsSlots& s = tlsSlots_;
    const int t = ThreadRegistry::tid();
    if (PATHCAS_UNLIKELY(s.dom != this || s.tid != t)) {
      s.dom = this;
      s.tid = t;
      s.st = &staging_[t].value;
      s.des = &descs_[t].value;
      s.dcss = &dcssDescs_[t].value;
    }
    return s;
  }

  /// Staged ops stay address-sorted by shifting insert up to kShiftBound
  /// entries; past it staging degrades to plain appends and
  /// execute()/promote() restore the invariant once. With the staging-merge
  /// policy the shift bound is 4 — every tree/list/queue op (k ≤ 4) pays a
  /// tiny shifting insert and NO sort, while wider ops (a mid-size k=5..8
  /// op, an MCMS compare set, or a batched tree commit appending dozens of
  /// entries) append in O(1) each and pay one tail-sort + merge at execute.
  /// Shifting all the way to kInline (the PR 5 behavior, kept as the
  /// ablation baseline) is quadratic in moves exactly in that 5..8 range.
  /// With the layout toggle off the legacy bound is 0, i.e. pure
  /// append+sort.
  static constexpr int kShiftBound =
      Policy::kStagingMerge ? (MaxEntries < 4 ? MaxEntries : 4) : kInline;

  void addEntryImpl(AtomicWord* addr, word_t oldEnc, word_t newEnc,
                    bool isVersionWord) {
    Staging& st = *slots().st;
    PATHCAS_CHECK(st.numEntries < MaxEntries);
    if (st.sortedPrefix != st.numEntries || st.numEntries >= kShiftBound) {
#ifndef NDEBUG
      // Debug duplicate scan, linear like the old engine's (the sorted
      // prefix no longer covers the appended tail).
      for (int i = 0; i < st.numEntries; ++i)
        PATHCAS_DCHECK(st.entry(i).addr != addr &&
                       "address added twice (undefined per the paper)");
#endif
      st.entry(st.numEntries++) = StagedEntry{addr, oldEnc, newEnc,
                                              isVersionWord};
      return;
    }
    const int pos = st.lowerBound(addr);
    PATHCAS_DCHECK(!(pos < st.numEntries && st.entry(pos).addr == addr) &&
                   "address added twice (undefined per the paper)");
    for (int j = st.numEntries; j > pos; --j) st.entry(j) = st.entry(j - 1);
    st.entry(pos) = StagedEntry{addr, oldEnc, newEnc, isVersionWord};
    ++st.numEntries;
    ++st.sortedPrefix;
  }

  /// Restore the sorted-entry invariant after append-mode staging. The
  /// hot/cold split is not contiguous, so work on a flat copy and write
  /// back. Staging-merge policy: only the appended tail is sorted, then
  /// merged once with the already-sorted prefix — O(t log t + n) for a
  /// t-entry tail, which is what makes batch-append staging (one append
  /// per entry, one merge per commit) cheaper than per-entry shifting.
  /// Legacy policy: the old engine's full O(n log n) sort.
  static void sortEntries(Staging& st) {
    StagedEntry tmp[MaxEntries];
    const int n = st.numEntries;
    for (int i = 0; i < n; ++i) tmp[i] = st.entry(i);
    const auto byAddr = [](const StagedEntry& a, const StagedEntry& b) {
      return a.addr < b.addr;
    };
    if constexpr (Policy::kStagingMerge) {
      std::sort(tmp + st.sortedPrefix, tmp + n, byAddr);
      std::inplace_merge(tmp, tmp + st.sortedPrefix, tmp + n, byAddr);
    } else {
      std::sort(tmp, tmp + n, byAddr);
    }
    for (int i = 0; i < n; ++i) st.entry(i) = tmp[i];
    st.sortedPrefix = n;
  }

  static bool validateStagedOn(Staging& st) {
    for (int i = 0; i < st.numPath; ++i) {
      const StagedPath& p = st.pathAt(i);
      const word_t cur = p.addr->load(std::memory_order_acquire);
      if (isDescriptor(cur)) return false;
      if (cur != p.expectedEnc) return false;
      if (decodeVal(cur) & 1) return false;  // visited node was marked
    }
    return true;
  }

  // ----------------------------------------------------------------------
  // Degenerate fast paths. Neither publishes the KCAS descriptor, so no
  // helper can ever observe a partial operation — atomicity is the CAS's
  // (or the DCSS's) own.
  // ----------------------------------------------------------------------

  /// k=1, no path: the operation IS a single CAS. Helping any descriptor
  /// found in the word preserves lock-freedom (each retry implies another
  /// operation completed); a plain-value mismatch is a genuine failure.
  ExecResult execK1(Staging& st) {
    const StagedEntry& e = st.entry(0);
    for (;;) {
      word_t seen = e.oldEnc;
      // seq_cst: this CAS is the whole operation's linearization point,
      // matching the strength of the general path's status-decision CAS.
      if (e.addr->compare_exchange_strong(seen, e.newEnc,
                                          std::memory_order_seq_cst)) {
        return ExecResult::kSucceeded;
      }
      if (isKcas(seen)) {
        help(seen, /*isOwner=*/false);
        continue;
      }
      if (isDcss(seen)) {
        helpDcss(seen);
        continue;
      }
      return ExecResult::kFailedValue;
    }
  }

  /// k=1 with one visited version: check-version-and-swap, which is exactly
  /// one DCSS (guard = the visited version word). Returns false when the
  /// contention budget is exhausted — the caller then runs the general
  /// descriptor path, preserving lock-freedom. Returns true with `r` set
  /// otherwise.
  ///
  /// Linearizability: the DCSS decision point atomically observes
  /// ⟨guard == expected, entry == old⟩ and swings the entry, which is the
  /// k=1/p=1 vexec semantic verbatim. The optimistic pre-validation below
  /// is a cheap genuine-failure filter only — versions are monotonic, so a
  /// changed version can never validate again; correctness rests on the
  /// DCSS alone.
  bool execK1Path(Staging& st, ExecResult& r) {
    const StagedEntry& e = st.entry(0);
    const StagedPath& p = st.pathAt(0);
    if (p.addr == e.addr) {
      // A path slot aliasing the single entry is subsumed by the entry CAS:
      // the general path locks the word and Algorithm 2 accepts its own
      // lock, so the entry's old-value check is the only constraint.
      r = execK1(st);
      return true;
    }
    if (decodeVal(p.expectedEnc) & 1) {
      // Visited node was already marked: can never validate (the general
      // path's validateDesc rejects it the same way).
      r = ExecResult::kFailedValidation;
      return true;
    }
    for (int attempt = 0; attempt < kFastPathRetries; ++attempt) {
      const word_t pcur = p.addr->load(std::memory_order_acquire);
      if (isDescriptor(pcur)) return false;  // guard locked: general path
      if (pcur != p.expectedEnc) {
        r = ExecResult::kFailedValidation;  // genuine: versions are monotonic
        return true;
      }
      bool committed = false;
      const word_t seen =
          dcss(p.addr, p.expectedEnc, e.addr, e.oldEnc, e.newEnc, &committed);
      if (seen == e.oldEnc) {
        // Installed and completed. Not committed means the guard moved
        // between the install and the decision — genuine or spurious is
        // resolved by the caller's validate/blocked probes, exactly as for
        // a general-path validation failure.
        r = committed ? ExecResult::kSucceeded : ExecResult::kFailedValidation;
        return true;
      }
      if (isKcas(seen)) {
        help(seen, /*isOwner=*/false);
        continue;  // dcss() already resolves DCSS descriptors internally
      }
      r = ExecResult::kFailedValue;  // entry held a different application value
      return true;
    }
    return false;
  }

  /// Validated helper read: the field value is only meaningful if the
  /// descriptor still belongs to operation `seq` after the read. The
  /// acquire on the field load is load-bearing: reading a value the owner
  /// stored after its release fence synchronizes with that fence, so the
  /// freshness re-check is guaranteed to observe the owner's seq bump.
  template <typename Atomic, typename V>
  static bool readField(const std::atomic<word_t>& seqState, std::uint64_t seq,
                        const Atomic& field, V& out) {
    out = static_cast<V>(field.load(std::memory_order_acquire));
    return seqOf(seqState.load(std::memory_order_acquire)) == seq;
  }

  /// Second half of DCSS, run by owner and helpers alike: decide by reading
  /// addr1, then swing addr2 from the descriptor reference to new2 or back
  /// to exp2. Without decision recording (`record` false, the general KCAS
  /// path) completers race on their own addr1 reads, per HFP — only the
  /// first swing CAS can succeed, so divergent verdicts are harmless. With
  /// recording, the first verdict is CASed into seqStatus and every
  /// completer swings per the recorded state, so the owner can read the
  /// authoritative outcome afterwards.
  void completeDcss(DcssDesc& d, word_t ref, AtomicWord* a1, word_t e1,
                    AtomicWord* a2, word_t e2, word_t n2, bool record) {
    const std::uint64_t seq = refSeq(ref);
    word_t ss = d.seqStatus.load(std::memory_order_acquire);
    if (seqOf(ss) != seq) return;  // already completed; reference is stale
    bool succeeded;
    if (!record) {
      // seq_cst load: the decision point of the DCSS.
      succeeded = a1->load(std::memory_order_seq_cst) == e1;
    } else {
      if (stateOf(ss) == State::kUndecided) {
        // seq_cst load: the decision point of the DCSS (and, through the
        // fast path, of a whole k=1 vexec).
        const State decided = (a1->load(std::memory_order_seq_cst) == e1)
                                  ? State::kSucceeded
                                  : State::kFailed;
        word_t expected = packSeqState(seq, State::kUndecided);
        d.seqStatus.compare_exchange_strong(expected,
                                            packSeqState(seq, decided),
                                            std::memory_order_seq_cst);
        ss = d.seqStatus.load(std::memory_order_acquire);
        if (seqOf(ss) != seq) return;  // owner finished and moved on
      }
      succeeded = stateOf(ss) == State::kSucceeded;
    }
    word_t expected = ref;
    // acq_rel suffices (tuned): the release half publishes nothing beyond
    // what the install already released, and the swung-in value is either
    // exp2 (already public) or new2 (a KCAS ref whose fields the owner
    // released before calling dcss — the helper's acquire of `ref` chains
    // the edge). Legacy keeps seq_cst.
    a2->compare_exchange_strong(expected, succeeded ? n2 : e2,
                                Policy::kRelaxedPublication
                                    ? std::memory_order_acq_rel
                                    : std::memory_order_seq_cst);
  }

  /// Help a DCSS found in memory via its tagged reference.
  void helpDcss(word_t ref) {
    DcssDesc& d = dcssDescs_[refTid(ref)].value;
    const std::uint64_t seq = refSeq(ref);
    word_t a1raw, e1, a2raw, e2, n2, record;
    a1raw = d.addr1.load(std::memory_order_acquire);
    e1 = d.exp1.load(std::memory_order_acquire);
    a2raw = d.addr2.load(std::memory_order_acquire);
    e2 = d.exp2.load(std::memory_order_acquire);
    n2 = d.new2.load(std::memory_order_acquire);
    record = d.recordDecision.load(std::memory_order_acquire);
    // Freshness: if any load above returned a later operation's value, this
    // check observes the later seq (acquire-load/release-fence pairing, see
    // readField) and we bail; the operation already completed.
    if (seqOf(d.seqStatus.load(std::memory_order_acquire)) != seq) return;
    completeDcss(d, ref, reinterpret_cast<AtomicWord*>(a1raw), e1,
                 reinterpret_cast<AtomicWord*>(a2raw), e2, n2, record != 0);
  }

  // ----------------------------------------------------------------------
  // KCAS help (Algorithm 1). Owner and helpers run the same code; only the
  // owner's return value is meaningful.
  // ----------------------------------------------------------------------

  ExecResult help(word_t ref, bool isOwner) {
    KcasDesc& des = descs_[refTid(ref)].value;
    const std::uint64_t seq = refSeq(ref);
    const word_t undecided = packSeqState(seq, State::kUndecided);

    word_t ss = des.seqState.load(std::memory_order_acquire);
    if (seqOf(ss) != seq) return ExecResult::kFailedValue;  // stale (helper)

    // Whether *this* helper locally observed a genuine value mismatch. Used
    // only by the owner to classify failures (§3.5): a failure with no local
    // value mismatch is possibly spurious and worth retrying / escalating to
    // the strong path.
    bool sawValueMismatch = false;
    if (stateOf(ss) == State::kUndecided) {
      // Phase 1: lock every entry address via DCSS, in sorted order.
      State newState = State::kSucceeded;
      std::uint32_t n;
      if (!readField(des.seqState, seq, des.numEntries, n))
        return done(ref, isOwner);
      for (std::uint32_t i = 0; i < n && newState == State::kSucceeded; ++i) {
        word_t addrRaw, oldv;
        if (!readField(des.seqState, seq, des.entryAddr(i), addrRaw) ||
            !readField(des.seqState, seq, des.entryOldv(i), oldv)) {
          return done(ref, isOwner);
        }
        auto* addr = reinterpret_cast<AtomicWord*>(addrRaw);
        for (;;) {
          const word_t seen = dcss(&des.seqState, undecided, addr, oldv, ref);
          if (seen == oldv || seen == ref) break;  // locked (by us or another)
          if (isKcas(seen)) {
            help(seen, /*isOwner=*/false);
            continue;
          }
          // Unexpected application value: the operation must fail.
          newState = State::kFailed;
          sawValueMismatch = true;
          break;
        }
      }
      // Phase 1b (the paper's extension): validate visited nodes.
      if (newState == State::kSucceeded) {
        std::uint32_t np;
        if (!readField(des.seqState, seq, des.numPath, np))
          return done(ref, isOwner);
        if (np > 0 && !validateDesc(des, seq, ref, np)) {
          newState = State::kFailed;
        }
      }
      word_t expected = undecided;
      // seq_cst: the operation's linearization point (status decision).
      des.seqState.compare_exchange_strong(expected,
                                           packSeqState(seq, newState),
                                           std::memory_order_seq_cst);
    }

    // Phase 2: unlock all entry addresses according to the decided state.
    const ExecResult r = done(ref, isOwner);
    if (isOwner && r != ExecResult::kSucceeded && !sawValueMismatch) {
      // Misclassifying a genuine failure as retryable only costs one extra
      // attempt (the retry then observes the value mismatch directly).
      return ExecResult::kFailedValidation;
    }
    return r;
  }

  /// Phase 2 + result extraction. Safe to call at any point after the
  /// operation's state is decided (or the descriptor went stale).
  ExecResult done(word_t ref, [[maybe_unused]] bool isOwner) {
    KcasDesc& des = descs_[refTid(ref)].value;
    const std::uint64_t seq = refSeq(ref);
    const word_t ss = des.seqState.load(std::memory_order_acquire);
    if (seqOf(ss) != seq) {
      PATHCAS_DCHECK(!isOwner);
      return ExecResult::kFailedValue;  // stale helper; result irrelevant
    }
    const State st = stateOf(ss);
    PATHCAS_DCHECK(st != State::kUndecided || !isOwner);
    if (st == State::kUndecided) return ExecResult::kFailedValue;
    const bool succeeded = (st == State::kSucceeded);
    std::uint32_t n;
    if (!readField(des.seqState, seq, des.numEntries, n))
      return succeeded ? ExecResult::kSucceeded : ExecResult::kFailedValue;
    for (std::uint32_t i = 0; i < n; ++i) {
      word_t addrRaw, oldv, newv;
      if (!readField(des.seqState, seq, des.entryAddr(i), addrRaw) ||
          !readField(des.seqState, seq, des.entryOldv(i), oldv) ||
          !readField(des.seqState, seq, des.entryNewv(i), newv)) {
        break;  // stale: the owner finished phase 2 already
      }
      auto* addr = reinterpret_cast<AtomicWord*>(addrRaw);
      word_t expected = ref;
      // Unlock CAS. acq_rel suffices (tuned): the release half publishes
      // the operation's writes to subsequent readers of this word; nothing
      // after this CAS in program order is part of the protocol, and the
      // decision the swing depends on was read through the acquire on
      // seqState above. Seq_cst bought nothing but a fence. Legacy keeps it.
      addr->compare_exchange_strong(expected, succeeded ? newv : oldv,
                                    Policy::kRelaxedPublication
                                        ? std::memory_order_acq_rel
                                        : std::memory_order_seq_cst);
    }
    return succeeded ? ExecResult::kSucceeded : ExecResult::kFailedValue;
  }

  /// Algorithm 2. Raw (non-helping) reads: our own lock on a version word
  /// reads as `ref` and passes; any other descriptor fails validation.
  bool validateDesc(KcasDesc& des, std::uint64_t seq, word_t ref,
                    std::uint32_t np) {
    for (std::uint32_t i = 0; i < np; ++i) {
      word_t addrRaw, expected;
      if (!readField(des.seqState, seq, des.pathAddr(i), addrRaw) ||
          !readField(des.seqState, seq, des.pathExpected(i), expected)) {
        return false;  // stale helper: fail conservatively; CAS will no-op
      }
      const word_t cur =
          reinterpret_cast<AtomicWord*>(addrRaw)->load(std::memory_order_acquire);
      if (cur == ref) continue;              // locked for *our* operation
      if (isDescriptor(cur)) return false;   // locked for a different one
      if (cur != expected) return false;     // version changed
      if (decodeVal(expected) & 1) return false;  // node was already marked
    }
    return true;
  }

  /// Fast-path contention budget before deferring to the general path.
  static constexpr int kFastPathRetries = 4;

  static inline thread_local TlsSlots tlsSlots_{};

  Padded<KcasDesc> descs_[kMaxThreads];
  Padded<DcssDesc> dcssDescs_[kMaxThreads];
  Padded<Staging> staging_[kMaxThreads];
};

/// The domain all PathCAS data structures in this repository share.
using DefaultDomain = KcasDomain<>;

}  // namespace pathcas::k
