// Lock-free multi-word CAS with search-path validation — the engine under
// PathCAS.
//
// This is the Harris-Fraser-Pratt (HFP) KCAS algorithm with two extensions:
//  1. the Arbel-Raviv & Brown descriptor-reuse transformation (per-thread
//     reusable descriptors referenced by (tid, seq) tagged words; see
//     word.hpp), and
//  2. the paper's validation phase (the "two red lines" of Algorithm 1): a
//     descriptor additionally carries a `path` of ⟨version-word, expected⟩
//     pairs which are re-checked after all entry addresses are locked and
//     before the operation's status is decided.
//
// The user-facing start/read/add/visit/validate/exec/vexec interface lives in
// pathcas/pathcas.hpp; this layer exposes owner-side argument staging, the
// helping machinery, and a plain KCAS (no path) used by the MCMS baseline.
//
// Thread model: any thread calling into this class is registered with
// ThreadRegistry (registration happens lazily on the first call; worker
// threads should hold a ThreadGuard so ids recycle). A thread performs at
// most one KCAS operation at a time (the staging area is per-thread), but
// may help any number of other operations while reading.
//
// Ownership/lifetime: KcasDomain::instance() is a process-lifetime singleton
// whose descriptor tables are statically sized by kMaxThreads — no
// descriptor is ever heap-allocated or freed. The AtomicWords passed to
// addEntry()/addPath() are owned by the caller and must remain mapped until
// no helper can still hold a (tid, seq) reference that resolves to them;
// data structures guarantee this by retiring nodes through recl::EbrDomain,
// which recycles each expired node's memory into its owning recl::NodePool
// (never freeing or overwriting it before the grace period ends). Helpers
// may therefore dereference a node's words during the whole grace period;
// after it, the slot may be reused for a new node of the same type.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "kcas/word.hpp"
#include "util/defs.hpp"
#include "util/padding.hpp"
#include "util/thread_registry.hpp"

namespace pathcas::k {

/// Result of an owner's execute() — helpers do not consume results.
enum class ExecResult {
  kSucceeded,
  kFailedValue,       // some added address held an unexpected value (genuine)
  kFailedValidation,  // a visited node changed or was locked (maybe spurious)
};

// Defaults sized for the widest users: MCMS-style full-path compares need
// ~2 entries per tree level; PathCAS visits need one path slot per level.
// Exceeding either bound is a checked error (the paper's footnote 2:
// over-allocate, or use structures with a known practical height bound).
template <int MaxEntries = 512, int MaxPath = 512>
class KcasDomain {
 public:
  static constexpr int kMaxEntries = MaxEntries;
  static constexpr int kMaxPath = MaxPath;

  /// Process-wide domain. All data structures in this repo share it (one
  /// operation per thread at a time, as in the paper's implementation).
  static KcasDomain& instance() {
    static KcasDomain domain;
    return domain;
  }

  // ----------------------------------------------------------------------
  // Owner-side argument staging (wait-free; the paper's start/add/visit).
  // ----------------------------------------------------------------------

  /// Begin staging a new operation for the calling thread.
  void begin() {
    Staging& st = staging();
    st.numEntries = 0;
    st.numPath = 0;
  }

  /// Stage ⟨addr, old, new⟩ (already-encoded words).
  void addEntry(AtomicWord* addr, word_t oldEnc, word_t newEnc) {
    addEntryImpl(addr, oldEnc, newEnc, /*isVersionWord=*/false);
  }

  /// Stage a version-word change. Identical semantics; flagged so the HTM
  /// fast path can write version words before data words.
  void addVerEntry(AtomicWord* addr, word_t oldEnc, word_t newEnc) {
    addEntryImpl(addr, oldEnc, newEnc, /*isVersionWord=*/true);
  }

  /// Stage a visited version word and the (encoded) value observed.
  void addPath(AtomicWord* verAddr, word_t expectedEnc) {
    Staging& st = staging();
    PATHCAS_CHECK(st.numPath < MaxPath);
    st.path[st.numPath++] = StagedPath{verAddr, expectedEnc};
  }

  int numStagedEntries() { return staging().numEntries; }
  int numStagedPath() { return staging().numPath; }

  /// Drop the staged path (exec = vexec without validation, §3.3).
  void clearPath() { staging().numPath = 0; }

  /// Strong vexec support (§3.5): convert every staged ⟨node, ver⟩ pair into
  /// a ⟨node.ver, v, v⟩ entry (skipping version words that already have a
  /// real entry, e.g. a visited parent whose version is being incremented),
  /// then clear the path. The subsequent execute(false) locks the versions
  /// instead of validating them.
  void promotePathToEntries() {
    Staging& st = staging();
    for (int i = 0; i < st.numPath; ++i) {
      bool hasRealEntry = false;
      for (int j = 0; j < st.numEntries && !hasRealEntry; ++j)
        hasRealEntry = (st.entries[j].addr == st.path[i].addr);
      if (!hasRealEntry) {
        bool duplicatePath = false;
        for (int j = 0; j < i && !duplicatePath; ++j)
          duplicatePath = (st.path[j].addr == st.path[i].addr);
        if (!duplicatePath)
          addEntryImpl(st.path[i].addr, st.path[i].expectedEnc,
                       st.path[i].expectedEnc, /*isVersionWord=*/true);
      }
    }
    st.numPath = 0;
  }

  /// True iff the staged operation can never pass validation no matter how
  /// many times it is replayed: a visited version was already marked when it
  /// was recorded, or a staged version-word entry expects a marked old value
  /// (no legitimate operation stages one — marking is always old-unmarked →
  /// new-marked). The strong path (§3.5) skips validation entirely, so its
  /// callers must reject such operations as genuine failures first;
  /// otherwise a ⟨ver, v, v⟩ lock on a marked version would "validate" a
  /// node that was already unlinked.
  bool stagedMarkDoomed() {
    Staging& st = staging();
    for (int i = 0; i < st.numPath; ++i) {
      if (decodeVal(st.path[i].expectedEnc) & 1) return true;
    }
    for (int i = 0; i < st.numEntries; ++i) {
      if (st.entries[i].isVersionWord && (decodeVal(st.entries[i].oldEnc) & 1))
        return true;
    }
    return false;
  }

  /// True iff some staged path word currently holds a descriptor reference
  /// (i.e. the last validation failure may have been spurious, §3.5).
  bool pathBlockedByDescriptor() {
    Staging& st = staging();
    for (int i = 0; i < st.numPath; ++i) {
      if (isDescriptor(st.path[i].addr->load(std::memory_order_acquire)))
        return true;
    }
    return false;
  }

  /// Iterate the staged operation (HTM fast path). f(addr, old, new, isVer).
  template <typename F>
  void forEachStagedEntry(F&& f) {
    Staging& st = staging();
    for (int i = 0; i < st.numEntries; ++i)
      f(st.entries[i].addr, st.entries[i].oldEnc, st.entries[i].newEnc,
        st.entries[i].isVersionWord);
  }
  /// f(addr, expectedEnc) over the staged path.
  template <typename F>
  void forEachStagedPath(F&& f) {
    Staging& st = staging();
    for (int i = 0; i < st.numPath; ++i)
      f(st.path[i].addr, st.path[i].expectedEnc);
  }

  /// Owner-side read-only validation of the staged path (the paper's
  /// validate()). May fail spuriously when a visited node is locked by
  /// another in-flight operation.
  bool validateStaged() {
    Staging& st = staging();
    for (int i = 0; i < st.numPath; ++i) {
      const word_t cur = st.path[i].addr->load(std::memory_order_acquire);
      if (isDescriptor(cur)) return false;
      if (cur != st.path[i].expectedEnc) return false;
      if (decodeVal(cur) & 1) return false;  // visited node was marked
    }
    return true;
  }

  // ----------------------------------------------------------------------
  // Execution.
  // ----------------------------------------------------------------------

  /// Publish the staged operation and run it to completion (helping as
  /// needed). Staging is preserved, so a spuriously failed vexec can be
  /// replayed verbatim (§3.5). `withValidation` distinguishes vexec (true)
  /// from exec (false).
  ExecResult execute(bool withValidation) {
    const int tid = ThreadRegistry::tid();
    Staging& st = staging_[tid].value;
    KcasDesc& des = descs_[tid].value;

    // Entries must be address-sorted: the lock-freedom argument (appendix C)
    // relies on every helper locking addresses in one global order.
    std::sort(st.entries, st.entries + st.numEntries,
              [](const StagedEntry& a, const StagedEntry& b) {
                return a.addr < b.addr;
              });

    // Reuse protocol: bump seq first (invalidating any stale helper), then
    // write fields with release so a helper whose seq check passes is
    // guaranteed to have read this operation's fields.
    const std::uint64_t seq = seqOf(des.seqState.load(std::memory_order_relaxed)) + 1;
    des.seqState.store(packSeqState(seq, State::kUndecided),
                       std::memory_order_seq_cst);
    for (int i = 0; i < st.numEntries; ++i) {
      des.entries[i].addr.store(reinterpret_cast<word_t>(st.entries[i].addr),
                                std::memory_order_release);
      des.entries[i].oldv.store(st.entries[i].oldEnc, std::memory_order_release);
      des.entries[i].newv.store(st.entries[i].newEnc, std::memory_order_release);
    }
    const int nPath = withValidation ? st.numPath : 0;
    for (int i = 0; i < nPath; ++i) {
      des.path[i].addr.store(reinterpret_cast<word_t>(st.path[i].addr),
                             std::memory_order_release);
      des.path[i].expected.store(st.path[i].expectedEnc,
                                 std::memory_order_release);
    }
    des.numEntries.store(static_cast<std::uint32_t>(st.numEntries),
                         std::memory_order_release);
    des.numPath.store(static_cast<std::uint32_t>(nPath),
                      std::memory_order_release);

    const word_t ref = packRef(kTagKcas, tid, seq);
    return help(ref, /*isOwner=*/true);
  }

  /// KCASRead: read an application value (encoded), helping any operation
  /// found in the word. Never returns a descriptor reference.
  word_t readEncoded(AtomicWord* addr) {
    for (;;) {
      const word_t w = addr->load(std::memory_order_acquire);
      if (PATHCAS_LIKELY(!isDescriptor(w))) return w;
      if (isKcas(w)) {
        help(w, /*isOwner=*/false);
      } else {
        helpDcss(w);
      }
    }
  }

  /// Raw load without helping: used by validateDesc (Algorithm 2 reads
  /// version words raw so that our own lock reads as "ours") and by
  /// HTM-fast-path code that must abort on descriptors.
  static word_t loadRaw(AtomicWord* addr) {
    return addr->load(std::memory_order_acquire);
  }

 private:
  struct StagedEntry {
    AtomicWord* addr;
    word_t oldEnc;
    word_t newEnc;
    bool isVersionWord;
  };
  struct StagedPath {
    AtomicWord* addr;
    word_t expectedEnc;
  };
  /// Owner-private staging area; never read by other threads.
  struct Staging {
    int numEntries = 0;
    int numPath = 0;
    StagedEntry entries[MaxEntries];
    StagedPath path[MaxPath];
  };

  /// Shared descriptor fields. Helpers read these concurrently with the
  /// owner's reuse of the descriptor for a later operation, hence every
  /// field is an atomic and every helper read is validated against seqState
  /// (readField below).
  struct Entry {
    AtomicWord addr{0}, oldv{0}, newv{0};
  };
  struct PathEntry {
    AtomicWord addr{0}, expected{0};
  };
  struct KcasDesc {
    std::atomic<word_t> seqState{packSeqState(0, State::kUndecided)};
    std::atomic<std::uint32_t> numEntries{0}, numPath{0};
    Entry entries[MaxEntries];
    PathEntry path[MaxPath];
  };
  struct DcssDesc {
    std::atomic<std::uint64_t> seq{0};
    AtomicWord addr1{0}, exp1{0}, addr2{0}, exp2{0}, new2{0};
  };

  Staging& staging() { return staging_[ThreadRegistry::tid()].value; }

  void addEntryImpl(AtomicWord* addr, word_t oldEnc, word_t newEnc,
                    bool isVersionWord) {
    Staging& st = staging();
    PATHCAS_CHECK(st.numEntries < MaxEntries);
#ifndef NDEBUG
    for (int i = 0; i < st.numEntries; ++i)
      PATHCAS_DCHECK(st.entries[i].addr != addr &&
                     "address added twice (undefined per the paper)");
#endif
    st.entries[st.numEntries++] =
        StagedEntry{addr, oldEnc, newEnc, isVersionWord};
  }

  /// Validated helper read: the field value is only meaningful if the
  /// descriptor still belongs to operation `seq` after the read.
  template <typename Atomic, typename V>
  static bool readField(const std::atomic<word_t>& seqState, std::uint64_t seq,
                        const Atomic& field, V& out) {
    out = static_cast<V>(field.load(std::memory_order_acquire));
    return seqOf(seqState.load(std::memory_order_acquire)) == seq;
  }

  // ----------------------------------------------------------------------
  // DCSS (double-compare single-swap), software, per HFP. addr1 is always a
  // KCAS descriptor's seqState and exp1 the undecided status for its seq;
  // this confines installations of KCAS references to undecided operations
  // (no resurrection of completed operations).
  // ----------------------------------------------------------------------

  /// Perform DCSS as the owner (using the calling thread's DCSS descriptor).
  /// Returns the (raw) value seen at addr2: exp2 indicates the swap
  /// happened-or-was-superseded; any other value is returned for the caller
  /// to dispatch on (application value => entry failure, KCAS ref => help).
  word_t dcss(AtomicWord* a1, word_t e1, AtomicWord* a2, word_t e2,
              word_t n2) {
    const int tid = ThreadRegistry::tid();
    DcssDesc& d = dcssDescs_[tid].value;
    const std::uint64_t seq = d.seq.load(std::memory_order_relaxed) + 1;
    d.seq.store(seq, std::memory_order_seq_cst);
    d.addr1.store(reinterpret_cast<word_t>(a1), std::memory_order_release);
    d.exp1.store(e1, std::memory_order_release);
    d.addr2.store(reinterpret_cast<word_t>(a2), std::memory_order_release);
    d.exp2.store(e2, std::memory_order_release);
    d.new2.store(n2, std::memory_order_release);
    const word_t ref = packRef(kTagDcss, tid, seq);
    for (;;) {
      word_t seen = e2;
      if (a2->compare_exchange_strong(seen, ref, std::memory_order_seq_cst)) {
        completeDcss(ref, a1, e1, a2, e2, n2);
        return e2;
      }
      if (isDcss(seen)) {
        helpDcss(seen);
        continue;
      }
      return seen;
    }
  }

  /// Second half of DCSS, run by owner and helpers alike: decide by reading
  /// addr1, then swing addr2 from the descriptor reference to new2 or back
  /// to exp2. Multiple helpers race; the reference's uniqueness makes all
  /// but the first CAS fail harmlessly.
  static void completeDcss(word_t ref, AtomicWord* a1, word_t e1,
                           AtomicWord* a2, word_t e2, word_t n2) {
    word_t expected = ref;
    if (a1->load(std::memory_order_seq_cst) == e1) {
      a2->compare_exchange_strong(expected, n2, std::memory_order_seq_cst);
    } else {
      a2->compare_exchange_strong(expected, e2, std::memory_order_seq_cst);
    }
  }

  /// Help a DCSS found in memory via its tagged reference.
  void helpDcss(word_t ref) {
    DcssDesc& d = dcssDescs_[refTid(ref)].value;
    const std::uint64_t seq = refSeq(ref);
    auto fresh = [&] {
      return d.seq.load(std::memory_order_acquire) == seq;
    };
    word_t a1raw, e1, a2raw, e2, n2;
    a1raw = d.addr1.load(std::memory_order_acquire);
    e1 = d.exp1.load(std::memory_order_acquire);
    a2raw = d.addr2.load(std::memory_order_acquire);
    e2 = d.exp2.load(std::memory_order_acquire);
    n2 = d.new2.load(std::memory_order_acquire);
    if (!fresh()) return;  // operation already completed; reference is stale
    completeDcss(ref, reinterpret_cast<AtomicWord*>(a1raw), e1,
                 reinterpret_cast<AtomicWord*>(a2raw), e2, n2);
  }

  // ----------------------------------------------------------------------
  // KCAS help (Algorithm 1). Owner and helpers run the same code; only the
  // owner's return value is meaningful.
  // ----------------------------------------------------------------------

  ExecResult help(word_t ref, bool isOwner) {
    KcasDesc& des = descs_[refTid(ref)].value;
    const std::uint64_t seq = refSeq(ref);
    const word_t undecided = packSeqState(seq, State::kUndecided);

    word_t ss = des.seqState.load(std::memory_order_acquire);
    if (seqOf(ss) != seq) return ExecResult::kFailedValue;  // stale (helper)

    // Whether *this* helper locally observed a genuine value mismatch. Used
    // only by the owner to classify failures (§3.5): a failure with no local
    // value mismatch is possibly spurious and worth retrying / escalating to
    // the strong path.
    bool sawValueMismatch = false;
    if (stateOf(ss) == State::kUndecided) {
      // Phase 1: lock every entry address via DCSS, in sorted order.
      State newState = State::kSucceeded;
      std::uint32_t n;
      if (!readField(des.seqState, seq, des.numEntries, n))
        return done(ref, isOwner);
      for (std::uint32_t i = 0; i < n && newState == State::kSucceeded; ++i) {
        word_t addrRaw, oldv;
        if (!readField(des.seqState, seq, des.entries[i].addr, addrRaw) ||
            !readField(des.seqState, seq, des.entries[i].oldv, oldv)) {
          return done(ref, isOwner);
        }
        auto* addr = reinterpret_cast<AtomicWord*>(addrRaw);
        for (;;) {
          const word_t seen = dcss(&des.seqState, undecided, addr, oldv, ref);
          if (seen == oldv || seen == ref) break;  // locked (by us or another)
          if (isKcas(seen)) {
            help(seen, /*isOwner=*/false);
            continue;
          }
          // Unexpected application value: the operation must fail.
          newState = State::kFailed;
          sawValueMismatch = true;
          break;
        }
      }
      // Phase 1b (the paper's extension): validate visited nodes.
      if (newState == State::kSucceeded) {
        std::uint32_t np;
        if (!readField(des.seqState, seq, des.numPath, np))
          return done(ref, isOwner);
        if (np > 0 && !validateDesc(des, seq, ref, np)) {
          newState = State::kFailed;
        }
      }
      word_t expected = undecided;
      des.seqState.compare_exchange_strong(expected,
                                           packSeqState(seq, newState),
                                           std::memory_order_seq_cst);
    }

    // Phase 2: unlock all entry addresses according to the decided state.
    const ExecResult r = done(ref, isOwner);
    if (isOwner && r != ExecResult::kSucceeded && !sawValueMismatch) {
      // Misclassifying a genuine failure as retryable only costs one extra
      // attempt (the retry then observes the value mismatch directly).
      return ExecResult::kFailedValidation;
    }
    return r;
  }

  /// Phase 2 + result extraction. Safe to call at any point after the
  /// operation's state is decided (or the descriptor went stale).
  ExecResult done(word_t ref, [[maybe_unused]] bool isOwner) {
    KcasDesc& des = descs_[refTid(ref)].value;
    const std::uint64_t seq = refSeq(ref);
    const word_t ss = des.seqState.load(std::memory_order_acquire);
    if (seqOf(ss) != seq) {
      PATHCAS_DCHECK(!isOwner);
      return ExecResult::kFailedValue;  // stale helper; result irrelevant
    }
    const State st = stateOf(ss);
    PATHCAS_DCHECK(st != State::kUndecided || !isOwner);
    if (st == State::kUndecided) return ExecResult::kFailedValue;
    const bool succeeded = (st == State::kSucceeded);
    std::uint32_t n;
    if (!readField(des.seqState, seq, des.numEntries, n))
      return succeeded ? ExecResult::kSucceeded : ExecResult::kFailedValue;
    for (std::uint32_t i = 0; i < n; ++i) {
      word_t addrRaw, oldv, newv;
      if (!readField(des.seqState, seq, des.entries[i].addr, addrRaw) ||
          !readField(des.seqState, seq, des.entries[i].oldv, oldv) ||
          !readField(des.seqState, seq, des.entries[i].newv, newv)) {
        break;  // stale: the owner finished phase 2 already
      }
      auto* addr = reinterpret_cast<AtomicWord*>(addrRaw);
      word_t expected = ref;
      addr->compare_exchange_strong(expected, succeeded ? newv : oldv,
                                    std::memory_order_seq_cst);
    }
    return succeeded ? ExecResult::kSucceeded : ExecResult::kFailedValue;
  }

  /// Algorithm 2. Raw (non-helping) reads: our own lock on a version word
  /// reads as `ref` and passes; any other descriptor fails validation.
  bool validateDesc(KcasDesc& des, std::uint64_t seq, word_t ref,
                    std::uint32_t np) {
    for (std::uint32_t i = 0; i < np; ++i) {
      word_t addrRaw, expected;
      if (!readField(des.seqState, seq, des.path[i].addr, addrRaw) ||
          !readField(des.seqState, seq, des.path[i].expected, expected)) {
        return false;  // stale helper: fail conservatively; CAS will no-op
      }
      const word_t cur =
          reinterpret_cast<AtomicWord*>(addrRaw)->load(std::memory_order_acquire);
      if (cur == ref) continue;              // locked for *our* operation
      if (isDescriptor(cur)) return false;   // locked for a different one
      if (cur != expected) return false;     // version changed
      if (decodeVal(expected) & 1) return false;  // node was already marked
    }
    return true;
  }

  Padded<KcasDesc> descs_[kMaxThreads];
  Padded<DcssDesc> dcssDescs_[kMaxThreads];
  Padded<Staging> staging_[kMaxThreads];
};

/// The domain all PathCAS data structures in this repository share.
using DefaultDomain = KcasDomain<>;

}  // namespace pathcas::k
