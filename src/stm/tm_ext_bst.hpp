// Sequential *external* (leaf-oriented) BST over a TM backend — the shape of
// Synchrobench's `ext-bst-elastic` ("speculation-friendly" tree minus its
// background rebalancer), used for the Fig. 7 comparison. Keys live in the
// leaves; internal nodes hold routing keys. Insert replaces a leaf with a
// small internal subtree; delete unlinks a leaf and its parent.
//
// Ownership/lifetime: the tree owns its nodes; unlinked leaf/router pairs
// are retired through an injected recl::EbrDomain (default: the process-wide
// instance), so operations must run on registered threads (hold a
// ThreadGuard in worker threads). The destructor frees the whole tree after
// all operations have quiesced.
#pragma once

#include <cstdint>
#include <limits>

#include "recl/ebr.hpp"
#include "stm/common.hpp"
#include "util/defs.hpp"

namespace pathcas::stm {

template <typename TM, typename K = std::int64_t, typename V = std::int64_t>
class TmExternalBst {
 public:
  static constexpr K kInf1 = std::numeric_limits<K>::max() / 4 - 1;
  static constexpr K kInf2 = std::numeric_limits<K>::max() / 4;

  struct Node {
    tmword<K> key;
    tmword<V> val;
    tmword<Node*> left;   // nullptr in both children <=> leaf
    tmword<Node*> right;
    Node(K k, V v) : key(k), val(v) {}
  };

  explicit TmExternalBst(TM& tm,
                         recl::EbrDomain& ebr = recl::EbrDomain::instance())
      : tm_(tm), ebr_(ebr) {
    // Ellen-style sentinel shape: root(inf2) over leaves inf1, inf2. Real
    // keys (all < inf1) descend into root's left subtree.
    root_ = new Node(kInf2, V{});
    root_->left.setInitial(new Node(kInf1, V{}));
    root_->right.setInitial(new Node(kInf2, V{}));
  }

  ~TmExternalBst() { freeSubtree(root_); }

  TmExternalBst(const TmExternalBst&) = delete;
  TmExternalBst& operator=(const TmExternalBst&) = delete;

  bool contains(K key) {
    PATHCAS_DCHECK(key < kInf1);
    auto guard = ebr_.pin();
    return tm_.atomically([&](auto& tx) {
      int steps = 0;
      Node* leaf = root_;
      Node* next = tx.read(leaf->left);
      while (next != nullptr) {  // descend to a leaf
        if (PATHCAS_UNLIKELY(++steps > kMaxSteps)) tx.abort();
        leaf = next;
        next = (key < tx.read(leaf->key)) ? tx.read(leaf->left)
                                          : tx.read(leaf->right);
      }
      return tx.read(leaf->key) == key;
    });
  }

  bool insert(K key, V val) {
    PATHCAS_DCHECK(key < kInf1);
    auto guard = ebr_.pin();
    Node* newLeaf = new Node(key, val);
    Node* newInternal = new Node(K{}, V{});
    const bool inserted = tm_.atomically([&](auto& tx) {
      int steps = 0;
      Node* parent = root_;
      Node* leaf = tx.read(parent->left);
      while (tx.read(leaf->left) != nullptr) {
        if (PATHCAS_UNLIKELY(++steps > kMaxSteps)) tx.abort();
        parent = leaf;
        leaf = (key < tx.read(leaf->key)) ? tx.read(leaf->left)
                                          : tx.read(leaf->right);
      }
      const K leafKey = tx.read(leaf->key);
      if (leafKey == key) return false;
      // Replace leaf with internal(max) over {newLeaf, leaf} ordered by key.
      newInternal->key.setInitial(std::max(key, leafKey));
      if (key < leafKey) {
        newInternal->left.setInitial(newLeaf);
        newInternal->right.setInitial(leaf);
      } else {
        newInternal->left.setInitial(leaf);
        newInternal->right.setInitial(newLeaf);
      }
      if (tx.read(parent->left) == leaf) {
        tx.write(parent->left, newInternal);
      } else {
        tx.write(parent->right, newInternal);
      }
      return true;
    });
    // Audit: safe direct deletes — the transaction returned false, so
    // neither node was written into the tree (unpublished).
    if (!inserted) {
      delete newLeaf;
      delete newInternal;
    }
    return inserted;
  }

  bool erase(K key) {
    PATHCAS_DCHECK(key < kInf1);
    auto guard = ebr_.pin();
    Node* removedLeaf = nullptr;
    Node* removedParent = nullptr;
    const bool erased = tm_.atomically([&](auto& tx) {
      removedLeaf = removedParent = nullptr;
      int steps = 0;
      Node* gparent = nullptr;
      Node* parent = root_;
      Node* leaf = tx.read(parent->left);
      while (tx.read(leaf->left) != nullptr) {
        if (PATHCAS_UNLIKELY(++steps > kMaxSteps)) tx.abort();
        gparent = parent;
        parent = leaf;
        leaf = (key < tx.read(leaf->key)) ? tx.read(leaf->left)
                                          : tx.read(leaf->right);
      }
      if (tx.read(leaf->key) != key) return false;
      PATHCAS_CHECK(gparent != nullptr);  // sentinels are never deleted
      Node* const sibling = (tx.read(parent->left) == leaf)
                                ? tx.read(parent->right)
                                : tx.read(parent->left);
      if (tx.read(gparent->left) == parent) {
        tx.write(gparent->left, sibling);
      } else {
        tx.write(gparent->right, sibling);
      }
      removedLeaf = leaf;
      removedParent = parent;
      return true;
    });
    if (erased) {
      ebr_.retire(removedLeaf);
      ebr_.retire(removedParent);
    }
    return erased;
  }

  std::uint64_t size() const {
    return countKeys(root_) - 2;  // exclude the two sentinel leaves
  }
  std::int64_t keySum() const { return sumKeys(root_); }

  static std::string name() { return std::string("ext-bst-") + TM::name(); }

 private:
  static constexpr int kMaxSteps = 100000;

  static Node* load(const tmword<Node*>& w) {
    return tmword<Node*>::unpack(w.raw().load());
  }
  std::uint64_t countKeys(Node* n) const {
    if (n == nullptr) return 0;
    if (load(n->left) == nullptr) return 1;  // leaf
    return countKeys(load(n->left)) + countKeys(load(n->right));
  }
  std::int64_t sumKeys(Node* n) const {
    if (n == nullptr) return 0;
    if (load(n->left) == nullptr) {
      const K k = tmword<K>::unpack(n->key.raw().load());
      return (k >= kInf1) ? 0 : static_cast<std::int64_t>(k);
    }
    return sumKeys(load(n->left)) + sumKeys(load(n->right));
  }
  void freeSubtree(Node* n) {
    if (n == nullptr) return;
    freeSubtree(load(n->left));
    freeSubtree(load(n->right));
    delete n;
  }

  TM& tm_;
  recl::EbrDomain& ebr_;
  Node* root_;
};

}  // namespace pathcas::stm
