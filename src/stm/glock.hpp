// Trivial "TM": one per-instance global lock around every operation. This is
// the sanity floor of the evaluation (`coarse` trees) — any algorithm that
// fails to beat it at >1 thread is not exploiting concurrency at all.
//
// Usage: the general contract is in common.hpp. This TM is the one exception
// to the thread-registry requirement — its Tx is stateless and thread_local,
// so unregistered threads may use it; the instance must still outlive every
// operation run under its lock.
#pragma once

#include "stm/common.hpp"
#include "util/locks.hpp"

namespace pathcas::stm {

class GlobalLockTm {
 public:
  class Tx {
   public:
    template <typename T>
    T read(const tmword<T>& w) {
      return tmword<T>::unpack(w.raw().load(std::memory_order_relaxed));
    }
    template <typename T>
    void write(tmword<T>& w, std::type_identity_t<T> v) {
      w.raw().store(tmword<T>::pack(v), std::memory_order_relaxed);
    }
    void abort() { throw AbortTx{}; }
  };

  template <typename Body>
  auto atomically(Body&& body) {
    Tx tx;
    for (;;) {
      lock_.lock();
      try {
        if constexpr (std::is_void_v<decltype(body(tx))>) {
          body(tx);
          lock_.unlock();
          return;
        } else {
          auto r = body(tx);
          lock_.unlock();
          return r;
        }
      } catch (const AbortTx&) {
        lock_.unlock();  // retry (only reachable via explicit tx.abort())
      }
    }
  }

  Tx& myTx() {
    static thread_local Tx tx;
    return tx;
  }

  static constexpr const char* name() { return "coarse"; }

 private:
  TatasLock lock_;
};

}  // namespace pathcas::stm
