// Sequential AVL tree compiled over a TM backend — the paper's int-avl-<tm>
// baselines (int-avl-norec and int-avl-tl2 appear in Figs. 1, 3 and 5).
// Textbook recursive AVL insert/erase with strict rebalancing, all shared
// accesses through tx.read/tx.write. The large read/write sets this creates
// (every node on the path is read AND potentially height-written) are
// exactly the TM overheads the paper measures.
//
// Ownership/lifetime: the tree owns its nodes; erased nodes are retired
// through an injected recl::EbrDomain (default: the process-wide instance),
// so operations must run on registered threads (lazily registered on first
// use; hold a ThreadGuard in worker threads). The destructor frees the
// whole tree and must run after all concurrent operations have quiesced.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>

#include "recl/ebr.hpp"
#include "stm/common.hpp"
#include "util/defs.hpp"

namespace pathcas::stm {

template <typename TM, typename K = std::int64_t, typename V = std::int64_t>
class TmInternalAvl {
 public:
  struct Node {
    tmword<K> key;
    tmword<V> val;
    tmword<Node*> left;
    tmword<Node*> right;
    tmword<std::int64_t> height;
    Node(K k, V v) : key(k), val(v), height(1) {}
  };

  explicit TmInternalAvl(TM& tm,
                         recl::EbrDomain& ebr = recl::EbrDomain::instance())
      : tm_(tm), ebr_(ebr) {}

  ~TmInternalAvl() { freeSubtree(root_.raw().load()); }

  TmInternalAvl(const TmInternalAvl&) = delete;
  TmInternalAvl& operator=(const TmInternalAvl&) = delete;

  bool contains(K key) {
    auto guard = ebr_.pin();
    return tm_.atomically([&](auto& tx) {
      int steps = 0;
      Node* cur = tx.read(root_);
      while (cur != nullptr) {
        if (PATHCAS_UNLIKELY(++steps > kMaxSteps)) tx.abort();
        const K k = tx.read(cur->key);
        if (key == k) return true;
        cur = (key < k) ? tx.read(cur->left) : tx.read(cur->right);
      }
      return false;
    });
  }

  bool insert(K key, V val) {
    auto guard = ebr_.pin();
    Node* leaf = new Node(key, val);
    const bool inserted = tm_.atomically([&](auto& tx) {
      bool didInsert = true;
      Node* newRoot = insertRec(tx, tx.read(root_), key, leaf, didInsert, 0);
      if (didInsert) tx.write(root_, newRoot);
      return didInsert;
    });
    // Audit: safe direct delete — the transaction returned false, so
    // leaf was never written into the tree (unpublished).
    if (!inserted) delete leaf;
    return inserted;
  }

  bool erase(K key) {
    auto guard = ebr_.pin();
    Node* removed = nullptr;
    const bool erased = tm_.atomically([&](auto& tx) {
      removed = nullptr;
      bool didErase = true;
      Node* newRoot = eraseRec(tx, tx.read(root_), key, removed, didErase, 0);
      if (didErase) tx.write(root_, newRoot);
      return didErase;
    });
    if (erased && removed != nullptr) ebr_.retire(removed);
    return erased;
  }

  std::uint64_t size() const { return count(root_.raw().load()); }
  std::int64_t keySum() const { return sum(root_.raw().load()); }

  double avgKeyDepth() const {
    std::uint64_t depthSum = 0, keys = 0;
    depthWalk(tmword<Node*>::unpack(root_.raw().load()), 1, depthSum, keys);
    return keys ? static_cast<double>(depthSum) / static_cast<double>(keys)
                : 0.0;
  }
  std::uint64_t footprintBytes() const {
    return count(root_.raw().load()) * sizeof(Node);
  }

  /// Quiescent check: AVL balance + BST order.
  void checkInvariants() const {
    checkRec(tmword<Node*>::unpack(root_.raw().load()));
  }

  static std::string name() { return std::string("int-avl-") + TM::name(); }

 private:
  static constexpr int kMaxDepth = 96;  // zombie-traversal guard
  static constexpr int kMaxSteps = 100000;

  template <typename Tx>
  static std::int64_t h(Tx& tx, Node* n) {
    return n == nullptr ? 0 : tx.read(n->height);
  }

  template <typename Tx>
  static void setHeight(Tx& tx, Node* n) {
    const std::int64_t want =
        1 + std::max(h(tx, tx.read(n->left)), h(tx, tx.read(n->right)));
    if (tx.read(n->height) != want) tx.write(n->height, want);
  }

  template <typename Tx>
  static Node* rotateRight(Tx& tx, Node* n) {
    Node* l = tx.read(n->left);
    tx.write(n->left, tx.read(l->right));
    tx.write(l->right, n);
    setHeight(tx, n);
    setHeight(tx, l);
    return l;
  }

  template <typename Tx>
  static Node* rotateLeft(Tx& tx, Node* n) {
    Node* r = tx.read(n->right);
    tx.write(n->right, tx.read(r->left));
    tx.write(r->left, n);
    setHeight(tx, n);
    setHeight(tx, r);
    return r;
  }

  template <typename Tx>
  static Node* balance(Tx& tx, Node* n) {
    setHeight(tx, n);
    const std::int64_t bal =
        h(tx, tx.read(n->left)) - h(tx, tx.read(n->right));
    if (bal >= 2) {
      Node* l = tx.read(n->left);
      if (h(tx, tx.read(l->left)) < h(tx, tx.read(l->right)))
        tx.write(n->left, rotateLeft(tx, l));
      return rotateRight(tx, n);
    }
    if (bal <= -2) {
      Node* r = tx.read(n->right);
      if (h(tx, tx.read(r->right)) < h(tx, tx.read(r->left)))
        tx.write(n->right, rotateRight(tx, r));
      return rotateLeft(tx, n);
    }
    return n;
  }

  template <typename Tx>
  Node* insertRec(Tx& tx, Node* n, K key, Node* leaf, bool& didInsert,
                  int depth) {
    if (PATHCAS_UNLIKELY(depth > kMaxDepth)) tx.abort();
    if (n == nullptr) return leaf;
    const K k = tx.read(n->key);
    if (key == k) {
      didInsert = false;
      return n;
    }
    if (key < k) {
      Node* sub = insertRec(tx, tx.read(n->left), key, leaf, didInsert,
                            depth + 1);
      if (!didInsert) return n;
      if (tx.read(n->left) != sub) tx.write(n->left, sub);
    } else {
      Node* sub = insertRec(tx, tx.read(n->right), key, leaf, didInsert,
                            depth + 1);
      if (!didInsert) return n;
      if (tx.read(n->right) != sub) tx.write(n->right, sub);
    }
    return balance(tx, n);
  }

  template <typename Tx>
  Node* eraseRec(Tx& tx, Node* n, K key, Node*& removed, bool& didErase,
                 int depth) {
    if (PATHCAS_UNLIKELY(depth > kMaxDepth)) tx.abort();
    if (n == nullptr) {
      didErase = false;
      return nullptr;
    }
    const K k = tx.read(n->key);
    if (key < k) {
      Node* sub =
          eraseRec(tx, tx.read(n->left), key, removed, didErase, depth + 1);
      if (!didErase) return n;
      if (tx.read(n->left) != sub) tx.write(n->left, sub);
    } else if (key > k) {
      Node* sub =
          eraseRec(tx, tx.read(n->right), key, removed, didErase, depth + 1);
      if (!didErase) return n;
      if (tx.read(n->right) != sub) tx.write(n->right, sub);
    } else {
      Node* const l = tx.read(n->left);
      Node* const r = tx.read(n->right);
      if (l == nullptr || r == nullptr) {
        removed = n;
        return (l != nullptr) ? l : r;
      }
      // Two children: copy successor's key/value into n, remove successor.
      Node* succ = r;
      int steps = depth;
      while (tx.read(succ->left) != nullptr) {
        if (PATHCAS_UNLIKELY(++steps > kMaxSteps)) tx.abort();
        succ = tx.read(succ->left);
      }
      tx.write(n->key, tx.read(succ->key));
      tx.write(n->val, tx.read(succ->val));
      const K succKey = tx.read(succ->key);
      bool subErase = true;
      Node* newR = eraseRec(tx, r, succKey, removed, subErase, depth + 1);
      if (tx.read(n->right) != newR) tx.write(n->right, newR);
    }
    return balance(tx, n);
  }

  void depthWalk(Node* n, std::uint64_t depth, std::uint64_t& depthSum,
                 std::uint64_t& keys) const {
    if (n == nullptr) return;
    depthSum += depth;
    ++keys;
    depthWalk(tmword<Node*>::unpack(n->left.raw().load()), depth + 1,
              depthSum, keys);
    depthWalk(tmword<Node*>::unpack(n->right.raw().load()), depth + 1,
              depthSum, keys);
  }

  std::uint64_t count(std::uint64_t raw) const {
    Node* n = tmword<Node*>::unpack(raw);
    if (n == nullptr) return 0;
    return 1 + count(n->left.raw().load()) + count(n->right.raw().load());
  }
  std::int64_t sum(std::uint64_t raw) const {
    Node* n = tmword<Node*>::unpack(raw);
    if (n == nullptr) return 0;
    return static_cast<std::int64_t>(tmword<K>::unpack(n->key.raw().load())) +
           sum(n->left.raw().load()) + sum(n->right.raw().load());
  }
  struct CheckInfo {
    std::int64_t height;
  };
  CheckInfo checkRec(Node* n) const {
    if (n == nullptr) return {0};
    Node* l = tmword<Node*>::unpack(n->left.raw().load());
    Node* r = tmword<Node*>::unpack(n->right.raw().load());
    const K k = tmword<K>::unpack(n->key.raw().load());
    if (l != nullptr)
      PATHCAS_CHECK(tmword<K>::unpack(l->key.raw().load()) < k);
    if (r != nullptr)
      PATHCAS_CHECK(tmword<K>::unpack(r->key.raw().load()) > k);
    const auto li = checkRec(l);
    const auto ri = checkRec(r);
    PATHCAS_CHECK(std::abs(li.height - ri.height) <= 1);
    const std::int64_t want = 1 + std::max(li.height, ri.height);
    PATHCAS_CHECK(
        tmword<std::int64_t>::unpack(n->height.raw().load()) == want);
    return {want};
  }
  void freeSubtree(std::uint64_t raw) {
    Node* n = tmword<Node*>::unpack(raw);
    if (n == nullptr) return;
    freeSubtree(n->left.raw().load());
    freeSubtree(n->right.raw().load());
    delete n;
  }

  TM& tm_;
  recl::EbrDomain& ebr_;
  tmword<Node*> root_;
};

}  // namespace pathcas::stm
