// Transactional Lock Elision — the paper's `tle` baseline ("HTM + Global
// Lock fallback", Fig. 4, listed as "this work"). Each operation first runs
// as a hardware transaction (which monitors the fallback lock and aborts if
// it is held); after a bounded number of aborts it falls back to acquiring
// the global lock. On this reproduction's emulated-HTM backend both paths
// serialize on the same lock, which matches the paper's observation that
// TLE's "global locking fallback code path degrades performance dramatically
// in workloads with more updates".
//
// Usage: see common.hpp for the shared contract (per-thread Tx slots keyed
// by ThreadRegistry::tid(), one transaction per thread, instance outlives
// all transactions). Bodies must be safe to re-execute after an abort, and —
// like every htm::run() body — must do all their checks before their first
// write, since the emulated backend cannot roll writes back.
#pragma once

#include <type_traits>
#include <utility>

#include "htm/htm.hpp"
#include "stm/common.hpp"

namespace pathcas::stm {

class TLE {
 public:
  class Tx {
   public:
    template <typename T>
    T read(const tmword<T>& w) {
      return tmword<T>::unpack(w.raw().load(std::memory_order_acquire));
    }
    template <typename T>
    void write(tmword<T>& w, std::type_identity_t<T> v) {
      w.raw().store(tmword<T>::pack(v), std::memory_order_release);
    }
    /// TLE has no speculation-level retry semantics; abort() restarts the
    /// whole operation (used by code ported from STM baselines).
    void abort() { throw AbortTx{}; }
  };

  template <typename Body>
  auto atomically(Body&& body) {
    using R = decltype(body(std::declval<Tx&>()));
    Tx tx;
    for (;;) {
      try {
        if constexpr (std::is_void_v<R>) {
          runOnce([&] { body(tx); });
          return;
        } else {
          R result{};
          runOnce([&] { result = body(tx); });
          return result;
        }
      } catch (const AbortTx&) {
        ++stats_[ThreadRegistry::tid()]->aborts;
      }
    }
  }

  Tx& myTx() {
    static thread_local Tx tx;
    return tx;
  }

  TmStats totalStats() const {
    TmStats total;
    for (const auto& s : stats_) {
      total.commits += s->commits;
      total.aborts += s->aborts;
    }
    return total;
  }

  static constexpr const char* name() { return "tle"; }

 private:
  template <typename F>
  void runOnce(F&& f) {
    for (int tries = 0; tries < 5; ++tries) {
      const htm::Abort a = htm::run([&](htm::Tx& htx) {
#if defined(PATHCAS_HAVE_RTM)
        // Real RTM: subscribe to the fallback lock so a fallback writer
        // aborts all speculating transactions. Under emulation run() itself
        // holds that lock, so mutual exclusion is already guaranteed.
        if (htm::globalLock().isLocked()) htx.abort(htm::Abort::kLockHeld);
#else
        (void)htx;
#endif
        f();
      });
      if (a == htm::Abort::kNone) {
        ++stats_[ThreadRegistry::tid()]->commits;
        return;
      }
    }
    // Fallback: global lock.
    htm::noteFallback();
    htm::globalLock().lock();
    try {
      f();
    } catch (...) {
      htm::globalLock().unlock();
      throw;
    }
    htm::globalLock().unlock();
    ++stats_[ThreadRegistry::tid()]->commits;
  }

  Padded<TmStats> stats_[kMaxThreads];
};

}  // namespace pathcas::stm
