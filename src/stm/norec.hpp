// NOrec STM (Dalessandro, Spear, Scott, PPoPP'10) — the paper's `norec`
// baseline. One global sequence lock; no per-location ownership records.
// Reads are value-validated against the whole read set whenever the global
// version moves, which guarantees opacity; commits serialize on the global
// lock. This is the design whose "contention on the global version lock and
// repeated read set validation" the paper's Fig. 5 analysis highlights.
//
// Usage: see common.hpp for the shared contract (per-thread Tx slots keyed
// by ThreadRegistry::tid(), one transaction per thread, instance outlives
// all transactions). Read/write sets grow with transaction footprint and are
// reused across that thread's transactions.
#pragma once

#include "stm/common.hpp"

namespace pathcas::stm {

class NOrec {
 public:
  class Tx {
   public:
    template <typename T>
    T read(const tmword<T>& w) {
      auto* addr = const_cast<std::atomic<std::uint64_t>*>(&w.raw());
      if (const std::uint64_t* v = writeSet_.find(addr))
        return tmword<T>::unpack(*v);
      std::uint64_t v = addr->load(std::memory_order_acquire);
      while (tm_->gv_.load(std::memory_order_acquire) != rv_) {
        rv_ = waitStable();
        validate();
        v = addr->load(std::memory_order_acquire);
      }
      readSet_.push_back({addr, v});
      return tmword<T>::unpack(v);
    }

    template <typename T>
    void write(tmword<T>& w, std::type_identity_t<T> v) {
      writeSet_.put(&w.raw(), tmword<T>::pack(v));
    }

    void abort() { throw AbortTx{}; }

    void begin(NOrec& tm) {
      tm_ = &tm;
      readSet_.clear();
      writeSet_.clear();
      rv_ = waitStable();
    }

    void commit(NOrec& tm) {
      if (writeSet_.empty()) {  // read-only: already consistent (opacity)
        ++tm.stats_[ThreadRegistry::tid()]->commits;
        return;
      }
      std::uint64_t expected = rv_;
      while (!tm.gv_.compare_exchange_strong(expected, rv_ + 1,
                                             std::memory_order_acq_rel)) {
        rv_ = waitStable();
        validate();
        expected = rv_;
      }
      writeSet_.apply();
      tm.gv_.store(rv_ + 2, std::memory_order_release);
      ++tm.stats_[ThreadRegistry::tid()]->commits;
    }

    void rollback(NOrec& tm) { ++tm.stats_[ThreadRegistry::tid()]->aborts; }

   private:
    std::uint64_t waitStable() const {
      std::uint64_t v;
      while ((v = tm_->gv_.load(std::memory_order_acquire)) & 1) cpuRelax();
      return v;
    }
    /// Value-based validation of the entire read set (the NOrec hallmark).
    void validate() const {
      for (const auto& e : readSet_) {
        if (e.addr->load(std::memory_order_acquire) != e.value)
          throw AbortTx{};
      }
    }

    NOrec* tm_ = nullptr;
    std::uint64_t rv_ = 0;
    std::vector<ReadEntry> readSet_;
    WriteSet writeSet_;
  };

  template <typename Body>
  auto atomically(Body&& body) {
    return atomicallyImpl(*this, std::forward<Body>(body));
  }

  Tx& myTx() { return txs_[ThreadRegistry::tid()].value; }

  TmStats totalStats() const {
    TmStats total;
    for (const auto& s : stats_) {
      total.commits += s->commits;
      total.aborts += s->aborts;
    }
    return total;
  }

  static constexpr const char* name() { return "norec"; }

 private:
  friend class Tx;
  alignas(kNoFalseSharing) std::atomic<std::uint64_t> gv_{0};
  Padded<Tx> txs_[kMaxThreads];
  Padded<TmStats> stats_[kMaxThreads];
};

}  // namespace pathcas::stm
