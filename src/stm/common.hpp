// Shared infrastructure for the software-transactional-memory baselines
// (Fig. 4's "Transactional Memory Algorithms"): transactional word type,
// abort signalling, read/write-set containers, and per-TM statistics.
//
// These TMs exist to reproduce the paper's comparisons; they are compiled
// into the data structures (templates), mirroring the paper's force-inlined
// setup ("we compiled each TM in the same compilation unit as the data
// structure").
//
// Usage requirements (all TMs in this directory):
//  * Each TM instance keeps per-thread Tx slots indexed by
//    ThreadRegistry::tid() — callers register lazily on first use and at
//    most kMaxThreads (256) threads may participate; worker threads should
//    hold a ThreadGuard so ids recycle.
//  * The TM object must outlive every transaction run against it and every
//    node whose reclamation it mediates; a thread runs one transaction at a
//    time (no nesting).
//  * tmwords read/written inside a transaction are owned by the enclosing
//    data structure, which must defer node frees past concurrent readers
//    (the TM trees retire via recl::EbrDomain).
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "util/backoff.hpp"
#include "util/defs.hpp"
#include "util/padding.hpp"
#include "util/thread_registry.hpp"

namespace pathcas::stm {

/// Thrown (internally) to roll back a transaction; atomically() retries.
struct AbortTx {};

/// Transactional word: full 64-bit payload (no descriptor tags needed — TMs
/// here use external metadata: a global seqlock or an ownership-record
/// table).
template <typename T>
class tmword {
  static_assert(std::is_pointer_v<T> || std::is_integral_v<T> ||
                std::is_enum_v<T>);

 public:
  tmword() : raw_(pack(T{})) {}
  explicit tmword(T v) : raw_(pack(v)) {}
  tmword(const tmword&) = delete;
  tmword& operator=(const tmword&) = delete;

  static std::uint64_t pack(T v) {
    if constexpr (std::is_pointer_v<T>) {
      return reinterpret_cast<std::uintptr_t>(v);
    } else {
      return static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
    }
  }
  static T unpack(std::uint64_t raw) {
    if constexpr (std::is_pointer_v<T>) {
      return reinterpret_cast<T>(static_cast<std::uintptr_t>(raw));
    } else {
      return static_cast<T>(static_cast<std::int64_t>(raw));
    }
  }

  /// Non-transactional initializing store (unpublished nodes only).
  void setInitial(T v) { raw_.store(pack(v), std::memory_order_release); }

  std::atomic<std::uint64_t>& raw() { return raw_; }
  const std::atomic<std::uint64_t>& raw() const { return raw_; }

 private:
  std::atomic<std::uint64_t> raw_;
};

struct ReadEntry {
  const std::atomic<std::uint64_t>* addr;
  std::uint64_t value;  // NOrec: value observed; TL2: unused
};

struct WriteEntry {
  std::atomic<std::uint64_t>* addr;
  std::uint64_t value;
};

/// Linear-scan write set: tree transactions write O(10) locations, so a
/// vector beats a hash table (one of the overheads the paper calls out).
class WriteSet {
 public:
  std::uint64_t* find(const std::atomic<std::uint64_t>* addr) {
    for (auto& e : entries_) {
      if (e.addr == addr) return &e.value;
    }
    return nullptr;
  }
  void put(std::atomic<std::uint64_t>* addr, std::uint64_t v) {
    if (std::uint64_t* existing = find(addr)) {
      *existing = v;
      return;
    }
    entries_.push_back({addr, v});
  }
  void apply() {
    for (auto& e : entries_) e.addr->store(e.value, std::memory_order_release);
  }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }
  auto begin() { return entries_.begin(); }
  auto end() { return entries_.end(); }

 private:
  std::vector<WriteEntry> entries_;
};

struct TmStats {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
};

/// Retry loop shared by every TM: begin / run body / commit, retrying on
/// AbortTx with bounded exponential backoff.
template <typename Tm, typename Body>
auto atomicallyImpl(Tm& tm, Body&& body) {
  auto& tx = tm.myTx();
  Backoff backoff(4, 4096);
  for (;;) {
    tx.begin(tm);
    try {
      if constexpr (std::is_void_v<decltype(body(tx))>) {
        body(tx);
        tx.commit(tm);
        return;
      } else {
        auto result = body(tx);
        tx.commit(tm);
        return result;
      }
    } catch (const AbortTx&) {
      tx.rollback(tm);
      backoff.pause();
    }
  }
}

}  // namespace pathcas::stm
