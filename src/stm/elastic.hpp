// Simplified elastic transactions (Felber, Gramoli, Guerraoui, DISC'09) —
// the substrate of the paper's §5.2 comparison (`ext-bst-elastic`, the
// "speculation-friendly" tree).
//
// An elastic transaction behaves like a sequence of short sub-transactions:
// while the transaction has not written ("elastic phase"), each read only
// enforces consistency with a sliding window of the most recent kWindow
// reads — reads past a newer clock value slide the view forward instead of
// aborting, so hand-over-hand traversals are not invalidated by updates
// behind them. That relaxation is sound for read-only operations (a search
// in a linked structure is linearizable if each consecutive pair of reads
// is mutually consistent); it is NOT sound for updates, whose writes may
// depend on reads that slid out of the window. Update transactions
// therefore keep the full read set on the side and, on the first write,
// "harden" into a normal TL2-style transaction whose commit re-validates
// every read. (Usage contract: as in common.hpp — per-thread Tx slots keyed
// by ThreadRegistry::tid(), one transaction per thread, instance outlives
// all transactions.)
//
// This is a reduction of the elastic idea onto our TL2 ownership-record
// base: searches get the elastic benefit, updates pay TL2 prices —
// sufficient to reproduce the paper's observation that the elastic tree is
// much slower than hand-crafted lock-free trees.
#pragma once

#include <array>

#include "stm/common.hpp"
#include "stm/tl2.hpp"

namespace pathcas::stm {

class Elastic {
 public:
  static constexpr std::size_t kStripeCountLog2 = 16;
  static constexpr std::size_t kStripeCount = 1u << kStripeCountLog2;
  static constexpr int kWindow = 2;

  class Tx {
   public:
    template <typename T>
    T read(const tmword<T>& w) {
      auto* addr = const_cast<std::atomic<std::uint64_t>*>(&w.raw());
      if (const std::uint64_t* v = writeSet_.find(addr))
        return tmword<T>::unpack(*v);
      auto& stripe = tm_->stripeFor(addr);
      const std::uint64_t l1 = stripe.load(std::memory_order_acquire);
      const std::uint64_t v = addr->load(std::memory_order_acquire);
      const std::uint64_t l2 = stripe.load(std::memory_order_acquire);
      if (l1 != l2 || (l1 & 1)) throw AbortTx{};
      if (elastic_) {
        // Cut point: reads newer than rv_ slide the view forward instead of
        // aborting, and only the window entries must be mutually unchanged
        // (the sub-transaction is atomic). The read is still recorded below:
        // should the transaction turn out to be an update, commit re-validates
        // the whole set — the elastic relaxation is only trusted for
        // read-only transactions (hand-over-hand searches), where pairwise
        // consistency of consecutive reads is what linearizability needs.
        if ((l1 >> 1) > rv_) rv_ = tm_->clock_.load(std::memory_order_acquire);
        window_[windowPos_ % kWindow] = {&stripe, l1};
        ++windowPos_;
        for (int i = 0; i < kWindow && i < windowPos_; ++i) {
          const auto& e = window_[i];
          if (e.stripe != nullptr &&
              e.stripe->load(std::memory_order_acquire) != e.word) {
            throw AbortTx{};
          }
        }
      } else {
        if ((l1 >> 1) > rv_) throw AbortTx{};
      }
      readStripes_.push_back({&stripe, l1});
      return tmword<T>::unpack(v);
    }

    template <typename T>
    void write(tmword<T>& w, std::type_identity_t<T> v) {
      // Harden: from here on this is a TL2-style update transaction. The
      // elastic-phase reads are already in readStripes_ and will be
      // re-validated wholesale at commit.
      elastic_ = false;
      writeSet_.put(&w.raw(), tmword<T>::pack(v));
    }

    void abort() { throw AbortTx{}; }

    void begin(Elastic& tm) {
      tm_ = &tm;
      readStripes_.clear();
      writeSet_.clear();
      owned_.clear();
      elastic_ = true;
      windowPos_ = 0;
      window_.fill({nullptr, 0});
      rv_ = tm.clock_.load(std::memory_order_acquire);
    }

    void commit(Elastic& tm) {
      if (writeSet_.empty()) {
        ++tm.stats_[ThreadRegistry::tid()]->commits;
        return;
      }
      for (auto& e : writeSet_) {
        auto& stripe = tm.stripeFor(e.addr);
        if (isOwned(&stripe)) continue;
        std::uint64_t l = stripe.load(std::memory_order_acquire);
        if ((l & 1) ||
            !stripe.compare_exchange_strong(l, l | 1,
                                            std::memory_order_acq_rel)) {
          releaseOwned();
          throw AbortTx{};
        }
        owned_.push_back({&stripe, l});
      }
      const std::uint64_t wv =
          tm.clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
      for (const auto& e : readStripes_) {
        // For stripes we locked ourselves, compare against the pre-lock word:
        // skipping owned stripes outright would hide a concurrent commit that
        // slipped in between our read and our lock acquisition.
        std::uint64_t cur = e.stripe->load(std::memory_order_acquire);
        for (const auto& o : owned_) {
          if (o.stripe == e.stripe) {
            cur = o.preLockWord;
            break;
          }
        }
        if (cur != e.word) {
          releaseOwned();
          throw AbortTx{};
        }
      }
      writeSet_.apply();
      for (auto& o : owned_)
        o.stripe->store(wv << 1, std::memory_order_release);
      owned_.clear();
      ++tm.stats_[ThreadRegistry::tid()]->commits;
    }

    void rollback(Elastic& tm) {
      releaseOwned();
      ++tm.stats_[ThreadRegistry::tid()]->aborts;
    }

   private:
    struct StripeRead {
      std::atomic<std::uint64_t>* stripe;
      std::uint64_t word;  // stripe word observed at read time
    };
    struct Owned {
      std::atomic<std::uint64_t>* stripe;
      std::uint64_t preLockWord;
    };
    bool isOwned(const std::atomic<std::uint64_t>* stripe) const {
      for (const auto& o : owned_)
        if (o.stripe == stripe) return true;
      return false;
    }
    void releaseOwned() {
      for (auto& o : owned_)
        o.stripe->store(o.preLockWord, std::memory_order_release);
      owned_.clear();
    }

    Elastic* tm_ = nullptr;
    std::uint64_t rv_ = 0;
    bool elastic_ = true;
    int windowPos_ = 0;
    std::array<StripeRead, kWindow> window_{};
    std::vector<StripeRead> readStripes_;
    WriteSet writeSet_;
    std::vector<Owned> owned_;
  };

  template <typename Body>
  auto atomically(Body&& body) {
    return atomicallyImpl(*this, std::forward<Body>(body));
  }

  Tx& myTx() { return txs_[ThreadRegistry::tid()].value; }

  TmStats totalStats() const {
    TmStats total;
    for (const auto& s : stats_) {
      total.commits += s->commits;
      total.aborts += s->aborts;
    }
    return total;
  }

  static constexpr const char* name() { return "elastic"; }

 private:
  friend class Tx;
  std::atomic<std::uint64_t>& stripeFor(const void* addr) {
    const auto bits = reinterpret_cast<std::uintptr_t>(addr);
    const std::size_t idx =
        (bits >> 4) * 0x9e3779b97f4a7c15ULL >> (64 - kStripeCountLog2);
    return stripes_[idx];
  }

  alignas(kNoFalseSharing) std::atomic<std::uint64_t> clock_{0};
  std::vector<std::atomic<std::uint64_t>> stripes_ =
      std::vector<std::atomic<std::uint64_t>>(kStripeCount);
  Padded<Tx> txs_[kMaxThreads];
  Padded<TmStats> stats_[kMaxThreads];
};

}  // namespace pathcas::stm
