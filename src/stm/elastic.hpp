// Simplified elastic transactions (Felber, Gramoli, Guerraoui, DISC'09) —
// the substrate of the paper's §5.2 comparison (`ext-bst-elastic`, the
// "speculation-friendly" tree).
//
// An elastic transaction behaves like a sequence of short sub-transactions:
// while the transaction has not written ("elastic phase"), each read only
// guarantees consistency with a sliding window of the most recent kWindow
// reads — older reads fall out of the read set, so traversals do not pay
// whole-path validation and are not invalidated by updates behind them.
// On the first write the transaction "hardens" into a normal TL2-style
// transaction: the current window is carried into the full read set and
// everything from then on is validated at commit.
//
// This is a faithful reduction of the elastic idea onto our TL2 ownership-
// record base — sufficient to reproduce the paper's observation that the
// elastic tree is much slower than hand-crafted lock-free trees.
#pragma once

#include <array>

#include "stm/common.hpp"
#include "stm/tl2.hpp"

namespace pathcas::stm {

class Elastic {
 public:
  static constexpr std::size_t kStripeCountLog2 = 16;
  static constexpr std::size_t kStripeCount = 1u << kStripeCountLog2;
  static constexpr int kWindow = 2;

  class Tx {
   public:
    template <typename T>
    T read(const tmword<T>& w) {
      auto* addr = const_cast<std::atomic<std::uint64_t>*>(&w.raw());
      if (const std::uint64_t* v = writeSet_.find(addr))
        return tmword<T>::unpack(*v);
      auto& stripe = tm_->stripeFor(addr);
      const std::uint64_t l1 = stripe.load(std::memory_order_acquire);
      const std::uint64_t v = addr->load(std::memory_order_acquire);
      const std::uint64_t l2 = stripe.load(std::memory_order_acquire);
      if (l1 != l2 || (l1 & 1)) throw AbortTx{};
      if (elastic_) {
        // Cut point: drop reads older than the window, then check that the
        // window entries are still unchanged (the sub-transaction is atomic).
        if ((l1 >> 1) > rv_) rv_ = tm_->clock_.load(std::memory_order_acquire);
        window_[windowPos_ % kWindow] = {&stripe, l1};
        ++windowPos_;
        for (int i = 0; i < kWindow && i < windowPos_; ++i) {
          const auto& e = window_[i];
          if (e.stripe != nullptr &&
              e.stripe->load(std::memory_order_acquire) != e.word) {
            throw AbortTx{};
          }
        }
      } else {
        if ((l1 >> 1) > rv_) throw AbortTx{};
        readStripes_.push_back({&stripe, l1});
      }
      return tmword<T>::unpack(v);
    }

    template <typename T>
    void write(tmword<T>& w, std::type_identity_t<T> v) {
      if (elastic_) {
        // Harden: the window becomes the (small) read set — this is exactly
        // what makes elastic traversals cheap: only the last kWindow reads
        // must remain valid through commit.
        elastic_ = false;
        for (int i = 0; i < kWindow && i < windowPos_; ++i) {
          if (window_[i].stripe != nullptr) readStripes_.push_back(window_[i]);
        }
      }
      writeSet_.put(&w.raw(), tmword<T>::pack(v));
    }

    void abort() { throw AbortTx{}; }

    void begin(Elastic& tm) {
      tm_ = &tm;
      readStripes_.clear();
      writeSet_.clear();
      owned_.clear();
      elastic_ = true;
      windowPos_ = 0;
      window_.fill({nullptr, 0});
      rv_ = tm.clock_.load(std::memory_order_acquire);
    }

    void commit(Elastic& tm) {
      if (writeSet_.empty()) {
        ++tm.stats_[ThreadRegistry::tid()]->commits;
        return;
      }
      for (auto& e : writeSet_) {
        auto& stripe = tm.stripeFor(e.addr);
        if (isOwned(&stripe)) continue;
        std::uint64_t l = stripe.load(std::memory_order_acquire);
        if ((l & 1) ||
            !stripe.compare_exchange_strong(l, l | 1,
                                            std::memory_order_acq_rel)) {
          releaseOwned();
          throw AbortTx{};
        }
        owned_.push_back({&stripe, l});
      }
      const std::uint64_t wv =
          tm.clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
      for (const auto& e : readStripes_) {
        const std::uint64_t l = e.stripe->load(std::memory_order_acquire);
        if (l != e.word && !isOwned(e.stripe)) {
          releaseOwned();
          throw AbortTx{};
        }
      }
      writeSet_.apply();
      for (auto& o : owned_)
        o.stripe->store(wv << 1, std::memory_order_release);
      owned_.clear();
      ++tm.stats_[ThreadRegistry::tid()]->commits;
    }

    void rollback(Elastic& tm) {
      releaseOwned();
      ++tm.stats_[ThreadRegistry::tid()]->aborts;
    }

   private:
    struct StripeRead {
      std::atomic<std::uint64_t>* stripe;
      std::uint64_t word;  // stripe word observed at read time
    };
    struct Owned {
      std::atomic<std::uint64_t>* stripe;
      std::uint64_t preLockWord;
    };
    bool isOwned(const std::atomic<std::uint64_t>* stripe) const {
      for (const auto& o : owned_)
        if (o.stripe == stripe) return true;
      return false;
    }
    void releaseOwned() {
      for (auto& o : owned_)
        o.stripe->store(o.preLockWord, std::memory_order_release);
      owned_.clear();
    }

    Elastic* tm_ = nullptr;
    std::uint64_t rv_ = 0;
    bool elastic_ = true;
    int windowPos_ = 0;
    std::array<StripeRead, kWindow> window_{};
    std::vector<StripeRead> readStripes_;
    WriteSet writeSet_;
    std::vector<Owned> owned_;
  };

  template <typename Body>
  auto atomically(Body&& body) {
    return atomicallyImpl(*this, std::forward<Body>(body));
  }

  Tx& myTx() { return txs_[ThreadRegistry::tid()].value; }

  TmStats totalStats() const {
    TmStats total;
    for (const auto& s : stats_) {
      total.commits += s->commits;
      total.aborts += s->aborts;
    }
    return total;
  }

  static constexpr const char* name() { return "elastic"; }

 private:
  friend class Tx;
  std::atomic<std::uint64_t>& stripeFor(const void* addr) {
    const auto bits = reinterpret_cast<std::uintptr_t>(addr);
    const std::size_t idx =
        (bits >> 4) * 0x9e3779b97f4a7c15ULL >> (64 - kStripeCountLog2);
    return stripes_[idx];
  }

  alignas(kNoFalseSharing) std::atomic<std::uint64_t> clock_{0};
  std::vector<std::atomic<std::uint64_t>> stripes_ =
      std::vector<std::atomic<std::uint64_t>>(kStripeCount);
  Padded<Tx> txs_[kMaxThreads];
  Padded<TmStats> stats_[kMaxThreads];
};

}  // namespace pathcas::stm
