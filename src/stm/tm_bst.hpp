// Sequential internal BST compiled over a TM backend (NOrec / TL2 / TLE /
// Elastic) — the paper's int-bst-<tm> baselines. The data-structure code is
// a textbook sequential BST; every shared-field access goes through
// tx.read/tx.write, exactly the "derive concurrent implementations from
// sequential ones" TM workflow the paper contrasts PathCAS against.
//
// Ownership/lifetime: the tree owns its nodes; erased nodes are retired
// through an injected recl::EbrDomain (default: the process-wide instance),
// so operations must run on registered threads (hold a ThreadGuard in
// worker threads). The destructor frees the whole tree and must run after
// all operations have quiesced.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "recl/ebr.hpp"
#include "stm/common.hpp"
#include "util/defs.hpp"

namespace pathcas::stm {

template <typename TM, typename K = std::int64_t, typename V = std::int64_t>
class TmInternalBst {
 public:
  struct Node {
    tmword<K> key;
    tmword<V> val;
    tmword<Node*> left;
    tmword<Node*> right;
    Node(K k, V v) : key(k), val(v) {}
  };

  explicit TmInternalBst(TM& tm,
                         recl::EbrDomain& ebr = recl::EbrDomain::instance())
      : tm_(tm), ebr_(ebr) {}

  ~TmInternalBst() { freeSubtree(root_.raw().load()); }

  TmInternalBst(const TmInternalBst&) = delete;
  TmInternalBst& operator=(const TmInternalBst&) = delete;

  bool contains(K key) {
    auto guard = ebr_.pin();
    return tm_.atomically([&](auto& tx) {
      int steps = 0;
      Node* cur = tx.read(root_);
      while (cur != nullptr) {
        guardSteps(tx, ++steps);
        const K k = tx.read(cur->key);
        if (key == k) return true;
        cur = (key < k) ? tx.read(cur->left) : tx.read(cur->right);
      }
      return false;
    });
  }

  std::optional<V> get(K key) {
    auto guard = ebr_.pin();
    return tm_.atomically([&](auto& tx) -> std::optional<V> {
      int steps = 0;
      Node* cur = tx.read(root_);
      while (cur != nullptr) {
        guardSteps(tx, ++steps);
        const K k = tx.read(cur->key);
        if (key == k) return tx.read(cur->val);
        cur = (key < k) ? tx.read(cur->left) : tx.read(cur->right);
      }
      return std::nullopt;
    });
  }

  bool insert(K key, V val) {
    auto guard = ebr_.pin();
    Node* leaf = new Node(key, val);
    const bool inserted = tm_.atomically([&](auto& tx) {
      int steps = 0;
      Node* cur = tx.read(root_);
      if (cur == nullptr) {
        tx.write(root_, leaf);
        return true;
      }
      for (;;) {
        guardSteps(tx, ++steps);
        const K k = tx.read(cur->key);
        if (key == k) return false;
        auto& childRef = (key < k) ? cur->left : cur->right;
        Node* child = tx.read(childRef);
        if (child == nullptr) {
          tx.write(childRef, leaf);
          return true;
        }
        cur = child;
      }
    });
    // Audit: safe direct delete — the transaction returned false, so
    // leaf was never written into the tree (unpublished).
    if (!inserted) delete leaf;
    return inserted;
  }

  bool erase(K key) {
    auto guard = ebr_.pin();
    Node* removed = nullptr;
    const bool erased = tm_.atomically([&](auto& tx) {
      removed = nullptr;
      int steps = 0;
      Node* parent = nullptr;
      Node* cur = tx.read(root_);
      while (cur != nullptr) {
        guardSteps(tx, ++steps);
        const K k = tx.read(cur->key);
        if (key == k) break;
        parent = cur;
        cur = (key < k) ? tx.read(cur->left) : tx.read(cur->right);
      }
      if (cur == nullptr) return false;
      Node* const l = tx.read(cur->left);
      Node* const r = tx.read(cur->right);
      if (l != nullptr && r != nullptr) {
        // Two children: splice out the successor, pull its key/value here.
        Node* succParent = cur;
        Node* succ = r;
        for (;;) {
          guardSteps(tx, ++steps);
          Node* next = tx.read(succ->left);
          if (next == nullptr) break;
          succParent = succ;
          succ = next;
        }
        tx.write(cur->key, tx.read(succ->key));
        tx.write(cur->val, tx.read(succ->val));
        Node* const succR = tx.read(succ->right);
        if (succParent == cur) {
          tx.write(cur->right, succR);
        } else {
          tx.write(succParent->left, succR);
        }
        removed = succ;
      } else {
        Node* const child = (l != nullptr) ? l : r;
        if (parent == nullptr) {
          tx.write(root_, child);
        } else if (tx.read(parent->left) == cur) {
          tx.write(parent->left, child);
        } else {
          tx.write(parent->right, child);
        }
        removed = cur;
      }
      return true;
    });
    if (erased && removed != nullptr) ebr_.retire(removed);
    return erased;
  }

  // Quiescent-state helpers for tests/benches.
  std::uint64_t size() const { return count(root_.raw().load()); }
  std::int64_t keySum() const { return sum(root_.raw().load()); }

  double avgKeyDepth() const {
    std::uint64_t depthSum = 0, keys = 0;
    depthWalk(unpackNode(root_.raw().load()), 1, depthSum, keys);
    return keys ? static_cast<double>(depthSum) / static_cast<double>(keys)
                : 0.0;
  }
  std::uint64_t footprintBytes() const {
    return count(root_.raw().load()) * sizeof(Node);
  }

  static std::string name() { return std::string("int-bst-") + TM::name(); }

 private:
  /// Non-opaque backends (Elastic) can send a zombie traversal in circles;
  /// bail out to a retry after an implausible number of steps.
  template <typename Tx>
  static void guardSteps(Tx& tx, int steps) {
    if (PATHCAS_UNLIKELY(steps > kMaxSteps)) tx.abort();
  }
  static constexpr int kMaxSteps = 100000;

  static Node* unpackNode(std::uint64_t raw) {
    return tmword<Node*>::unpack(raw);
  }
  void depthWalk(Node* n, std::uint64_t depth, std::uint64_t& depthSum,
                 std::uint64_t& keys) const {
    if (n == nullptr) return;
    depthSum += depth;
    ++keys;
    depthWalk(unpackNode(n->left.raw().load()), depth + 1, depthSum, keys);
    depthWalk(unpackNode(n->right.raw().load()), depth + 1, depthSum, keys);
  }

  std::uint64_t count(std::uint64_t raw) const {
    Node* n = unpackNode(raw);
    if (n == nullptr) return 0;
    return 1 + count(n->left.raw().load()) + count(n->right.raw().load());
  }
  std::int64_t sum(std::uint64_t raw) const {
    Node* n = unpackNode(raw);
    if (n == nullptr) return 0;
    return static_cast<std::int64_t>(tmword<K>::unpack(n->key.raw().load())) +
           sum(n->left.raw().load()) + sum(n->right.raw().load());
  }
  void freeSubtree(std::uint64_t raw) {
    Node* n = unpackNode(raw);
    if (n == nullptr) return;
    freeSubtree(n->left.raw().load());
    freeSubtree(n->right.raw().load());
    delete n;
  }

  TM& tm_;
  recl::EbrDomain& ebr_;
  tmword<Node*> root_;
};

}  // namespace pathcas::stm
