// TL2 STM (Dice, Shalev, Shavit, DISC'06) — the paper's `tl2` baseline.
// A global version clock plus a striped table of versioned write-locks
// (ownership records). Reads are invisible and validated against the clock;
// commits lock the write stripes, validate the read stripes, publish, and
// release with the new version.
//
// Usage: see common.hpp for the shared contract (per-thread Tx slots keyed
// by ThreadRegistry::tid(), one transaction per thread, instance outlives
// all transactions). The ownership-record stripes are per-instance, so
// tmwords from different TL2 instances must never appear in one transaction.
#pragma once

#include "stm/common.hpp"

namespace pathcas::stm {

class TL2 {
 public:
  static constexpr std::size_t kStripeCountLog2 = 16;
  static constexpr std::size_t kStripeCount = 1u << kStripeCountLog2;

  class Tx {
   public:
    template <typename T>
    T read(const tmword<T>& w) {
      auto* addr = const_cast<std::atomic<std::uint64_t>*>(&w.raw());
      if (const std::uint64_t* v = writeSet_.find(addr))
        return tmword<T>::unpack(*v);
      auto& stripe = tm_->stripeFor(addr);
      const std::uint64_t l1 = stripe.load(std::memory_order_acquire);
      const std::uint64_t v = addr->load(std::memory_order_acquire);
      const std::uint64_t l2 = stripe.load(std::memory_order_acquire);
      if (l1 != l2 || (l1 & 1) || (l1 >> 1) > rv_) throw AbortTx{};
      readStripes_.push_back(&stripe);
      return tmword<T>::unpack(v);
    }

    template <typename T>
    void write(tmword<T>& w, std::type_identity_t<T> v) {
      writeSet_.put(&w.raw(), tmword<T>::pack(v));
    }

    void abort() { throw AbortTx{}; }

    void begin(TL2& tm) {
      tm_ = &tm;
      readStripes_.clear();
      writeSet_.clear();
      owned_.clear();
      rv_ = tm.clock_.load(std::memory_order_acquire);
    }

    void commit(TL2& tm) {
      if (writeSet_.empty()) {
        ++tm.stats_[ThreadRegistry::tid()]->commits;
        return;
      }
      // Lock the write stripes (try-lock; failure aborts — no deadlock).
      for (auto& e : writeSet_) {
        auto& stripe = tm.stripeFor(e.addr);
        if (isOwned(&stripe)) continue;
        std::uint64_t l = stripe.load(std::memory_order_acquire);
        if ((l & 1) ||
            !stripe.compare_exchange_strong(l, l | 1,
                                            std::memory_order_acq_rel)) {
          releaseOwned();
          throw AbortTx{};
        }
        owned_.push_back({&stripe, l});
      }
      const std::uint64_t wv =
          tm.clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
      // Validate the read stripes: unlocked (or locked by us) and not newer
      // than our read version.
      for (auto* stripe : readStripes_) {
        const std::uint64_t l = stripe->load(std::memory_order_acquire);
        if ((l & 1) && !isOwned(stripe)) {
          releaseOwned();
          throw AbortTx{};
        }
        if (((l & 1) ? versionOfOwned(stripe) : (l >> 1)) > rv_) {
          releaseOwned();
          throw AbortTx{};
        }
      }
      writeSet_.apply();
      for (auto& o : owned_)
        o.stripe->store(wv << 1, std::memory_order_release);
      owned_.clear();
      ++tm.stats_[ThreadRegistry::tid()]->commits;
    }

    void rollback(TL2& tm) {
      releaseOwned();
      ++tm.stats_[ThreadRegistry::tid()]->aborts;
    }

   private:
    struct Owned {
      std::atomic<std::uint64_t>* stripe;
      std::uint64_t preLockWord;  // restored on abort
    };
    bool isOwned(const std::atomic<std::uint64_t>* stripe) const {
      for (const auto& o : owned_)
        if (o.stripe == stripe) return true;
      return false;
    }
    std::uint64_t versionOfOwned(const std::atomic<std::uint64_t>* stripe)
        const {
      for (const auto& o : owned_)
        if (o.stripe == stripe) return o.preLockWord >> 1;
      return ~0ULL;
    }
    void releaseOwned() {
      for (auto& o : owned_)
        o.stripe->store(o.preLockWord, std::memory_order_release);
      owned_.clear();
    }

    TL2* tm_ = nullptr;
    std::uint64_t rv_ = 0;
    std::vector<std::atomic<std::uint64_t>*> readStripes_;
    WriteSet writeSet_;
    std::vector<Owned> owned_;
  };

  template <typename Body>
  auto atomically(Body&& body) {
    return atomicallyImpl(*this, std::forward<Body>(body));
  }

  Tx& myTx() { return txs_[ThreadRegistry::tid()].value; }

  TmStats totalStats() const {
    TmStats total;
    for (const auto& s : stats_) {
      total.commits += s->commits;
      total.aborts += s->aborts;
    }
    return total;
  }

  static constexpr const char* name() { return "tl2"; }

 private:
  friend class Tx;
  std::atomic<std::uint64_t>& stripeFor(const void* addr) {
    const auto bits = reinterpret_cast<std::uintptr_t>(addr);
    // Mix and fold; shift 4 so adjacent words in one node share a stripe.
    const std::size_t idx =
        (bits >> 4) * 0x9e3779b97f4a7c15ULL >> (64 - kStripeCountLog2);
    return stripes_[idx];
  }

  alignas(kNoFalseSharing) std::atomic<std::uint64_t> clock_{0};
  std::vector<std::atomic<std::uint64_t>> stripes_ =
      std::vector<std::atomic<std::uint64_t>>(kStripeCount);
  Padded<Tx> txs_[kMaxThreads];
  Padded<TmStats> stats_[kMaxThreads];
};

}  // namespace pathcas::stm
