// Lock-free *internal* binary search tree built with PathCAS (§4 of the
// paper, Algorithms 3-6), including the §4.1 validation-reduction
// optimizations (toggleable for the ablation benchmark).
//
// Structure: two sentinels — maxRoot (key +inf) whose left child is minRoot
// (key -inf); all real keys live in minRoot's right subtree. Every node
// carries a PathCAS version word; nodes are unlinked and marked in the same
// atomic PathCAS (so reachability == unmarked), and retired through EBR.
//
// Linearizability follows the paper's appendix E argument: every update
// either performs a successful PathCAS whose validation/entries pin the
// relevant part of the structure, or returns after a validated search
// established an atomic snapshot of the search path.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "pathcas/pathcas.hpp"
#include "recl/ebr.hpp"
#include "recl/pool.hpp"
#include "util/defs.hpp"

namespace pathcas::ds {

/// Aggregate structural statistics (quiescent-state only), used by the
/// benchmark harness for keysum validation and the Fig. 5 factor analysis.
struct TreeStats {
  std::uint64_t size = 0;          // keys logically present
  std::uint64_t nodeCount = 0;     // allocated reachable nodes
  std::uint64_t height = 0;
  double avgKeyDepth = 0.0;
  std::int64_t keySum = 0;
  std::uint64_t footprintBytes = 0;  // nodeCount * sizeof(Node)
};

/// Configuration knobs (the §4.1 ablation).
struct IntBstOptions {
  /// Skip validation when contains/insert finds the key (§4.1) and use exec
  /// instead of vexec for leaf/one-child deletions.
  bool reduceValidation = true;
  /// Route updates through the HTM fast path (the paper's int-bst-pathcas+).
  bool useHtmFastPath = false;
};

template <typename K = std::int64_t, typename V = std::int64_t>
class IntBstPathCas {
 public:
  static_assert(std::is_integral_v<K> && std::is_integral_v<V>);
  /// Exposed for generic frontends (service/sharded_map.hpp).
  using KeyType = K;
  using ValueType = V;
  using OptionsType = IntBstOptions;
  /// Sentinel keys; user keys must lie strictly between them.
  static constexpr K kNegInf = std::numeric_limits<K>::min() / 4;
  static constexpr K kPosInf = std::numeric_limits<K>::max() / 4;

  struct Node {
    casword<Version> ver;
    casword<K> key;
    casword<V> val;
    casword<Node*> left;
    casword<Node*> right;

    Node(K k, V v) {
      key.setInitial(k);
      val.setInitial(v);
    }
  };

  explicit IntBstPathCas(IntBstOptions options = {},
                         recl::EbrDomain& ebr = recl::EbrDomain::instance(),
                         recl::NodePool<Node>* pool = nullptr)
      : opt_(options), ebr_(ebr), pool_(pool ? *pool : recl::defaultPool<Node>()) {
    maxRoot_ = pool_.alloc(kPosInf, V{});
    minRoot_ = pool_.alloc(kNegInf, V{});
    maxRoot_->left.setInitial(minRoot_);
  }

  IntBstPathCas(const IntBstPathCas&) = delete;
  IntBstPathCas& operator=(const IntBstPathCas&) = delete;

  ~IntBstPathCas() {
    // Quiescent-teardown exception: no thread can be pinned on this tree
    // anymore, so reachable nodes go straight back to the pool (no EBR).
    freeSubtree(minRoot_->right.load());
    pool_.destroy(minRoot_);
    pool_.destroy(maxRoot_);
  }

  /// True iff key is in the set. Validation is skipped on found keys when
  /// reduceValidation is on (§4.1: a reachable node was unmarked, hence in
  /// the set at some time during the operation).
  bool contains(K key) {
    PATHCAS_DCHECK(key > kNegInf && key < kPosInf);
    auto guard = ebr_.pin();
    for (;;) {
      start();
      const SearchResult s = search(key);
      if (s.found && (opt_.reduceValidation || validate())) return true;
      if (!s.found && validate()) return false;
    }
  }

  /// Returns the value associated with key, if present (linearized at the
  /// value read).
  std::optional<V> get(K key) {
    PATHCAS_DCHECK(key > kNegInf && key < kPosInf);
    auto guard = ebr_.pin();
    for (;;) {
      start();
      const SearchResult s = search(key);
      if (s.found && (opt_.reduceValidation || validate()))
        return s.curr->val.load();
      if (!s.found && validate()) return std::nullopt;
    }
  }

  /// Linearizable range query: append every (key, value) pair with
  /// lo <= key <= hi to `out`, in ascending key order; returns the number of
  /// pairs appended. The traversal visits every node it examines (the same
  /// ⟨node, version⟩ recording a vexec path uses), then revalidates the whole
  /// visited set: optimistic with bounded retries, escalating to the §3.5
  /// strong path, so scans cannot starve on spurious conflicts. Scans that
  /// would examine more than pathcas::kMaxVisited nodes are out of contract
  /// (footnote 2) — bound the range accordingly.
  std::size_t rangeQuery(K lo, K hi, std::vector<std::pair<K, V>>& out) {
    PATHCAS_DCHECK(lo > kNegInf && hi < kPosInf);
    if (lo > hi) return 0;
    auto guard = ebr_.pin();
    const std::size_t base = out.size();
    for (;;) {
      start();
      visit(minRoot_);  // pins the root pointer (minRoot_->right)
      collectRange(minRoot_->right.load(), lo, hi, out);
      if (vval()) return out.size() - base;
      out.resize(base);  // torn attempt: discard and re-traverse
    }
  }

  /// One validated scan ATTEMPT that additionally hands every visited
  /// ⟨version-word, observed-encoding⟩ pair to `cap(k::AtomicWord*,
  /// k::word_t)` — the raw material for the sharded map's cross-shard
  /// linearization protocol (phase-2 revalidation of all shards' scans
  /// together). The capture necessarily runs BEFORE validation, because
  /// validateVisited may consume the staging area through the §3.5 strong
  /// path; a true return retroactively blesses the captured pairs (they
  /// formed an atomic snapshot), a false return obliges the caller to
  /// discard them (out's tail is already discarded here). Unlike
  /// rangeQuery, this does not retry internally: a multi-shard caller must
  /// redo all shards together, so it owns the retry loop.
  template <typename Cap>
  bool rangeQueryCapture(K lo, K hi, std::vector<std::pair<K, V>>& out,
                         Cap&& cap) {
    PATHCAS_DCHECK(lo > kNegInf && hi < kPosInf);
    if (lo > hi) return true;
    auto guard = ebr_.pin();
    const std::size_t base = out.size();
    start();
    visit(minRoot_);  // pins the root pointer (minRoot_->right)
    collectRange(minRoot_->right.load(), lo, hi, out);
    domain().forEachStagedPath(cap);
    if (vval()) return true;
    out.resize(base);
    return false;
  }

  /// insertIfAbsent (Algorithm 4). Returns false iff key was already present.
  bool insert(K key, V val) {
    PATHCAS_DCHECK(key > kNegInf && key < kPosInf);
    auto guard = ebr_.pin();
    Node* leaf = nullptr;
    for (;;) {
      start();
      const SearchResult s = search(key);
      if (s.found) {
        if (opt_.reduceValidation || validate()) {
          // Never published (no add() committed it): direct recycle is safe.
          if (leaf != nullptr) pool_.destroy(leaf);
          return false;
        }
        continue;
      }
      if (leaf == nullptr) leaf = pool_.alloc(key, val);
      const K parentKey = s.parent->key;
      auto& ptrToChange =
          (key < parentKey) ? s.parent->left : s.parent->right;
      add(ptrToChange, static_cast<Node*>(nullptr), leaf);
      addVer(s.parent->ver, s.parentVer, verBump(s.parentVer));
      if (vex()) return true;
    }
  }

  /// delete(key) (Algorithm 6). Returns false iff key was absent.
  bool erase(K key) {
    PATHCAS_DCHECK(key > kNegInf && key < kPosInf);
    auto guard = ebr_.pin();
    for (;;) {
      start();
      const SearchResult s = search(key);
      if (!s.found) {
        if (validate()) return false;
        continue;
      }
      if (isMarked(s.currVer) || isMarked(s.parentVer)) continue;
      Node* curr = s.curr;
      Node* parent = s.parent;
      Node* const currLeft = curr->left;
      Node* const currRight = curr->right;

      if (currLeft == nullptr && currRight == nullptr) {
        // Leaf deletion: unlink curr and mark it.
        auto& ptrToChange =
            (curr == parent->left.load()) ? parent->left : parent->right;
        add(ptrToChange, curr, static_cast<Node*>(nullptr));
        addVer(parent->ver, s.parentVer, verBump(s.parentVer));
        addVer(curr->ver, s.currVer, verMark(s.currVer));
        if (execOrVex()) {
          ebr_.retire(curr, pool_);
          return true;
        }
      } else if (currLeft == nullptr || currRight == nullptr) {
        // One-child deletion: splice the child into curr's place.
        Node* childToKeep = (currLeft == nullptr) ? currRight : currLeft;
        auto& ptrToChange =
            (curr == parent->left.load()) ? parent->left : parent->right;
        add(ptrToChange, curr, childToKeep);
        addVer(parent->ver, s.parentVer, verBump(s.parentVer));
        addVer(curr->ver, s.currVer, verMark(s.currVer));
        if (execOrVex()) {
          ebr_.retire(curr, pool_);
          return true;
        }
      } else {
        // Two-child deletion: replace curr's key/value with its successor's,
        // then unlink the successor (which has no left child).
        const Successor su = getSuccessor(curr, s.currVer);
        if (su.succ == nullptr || isMarked(su.succVer) ||
            isMarked(su.succPVer)) {
          continue;
        }
        Node* const succR = su.succ->right;
        if (succR != nullptr) {
          const Version succRVer = visit(succR);
          if (isMarked(succRVer)) continue;
        }
        auto& ptrToChange = (su.succP->right.load() == su.succ)
                                ? su.succP->right
                                : su.succP->left;
        add(ptrToChange, su.succ, succR);
        const V currVal = curr->val;
        const V succVal = su.succ->val;
        add(curr->val, currVal, succVal);
        add(curr->key, key, su.succ->key.load());
        addVer(su.succ->ver, su.succVer, verMark(su.succVer));
        addVer(su.succP->ver, su.succPVer, verBump(su.succPVer));
        if (su.succP != curr)
          addVer(curr->ver, s.currVer, verBump(s.currVer));
        if (vex()) {
          ebr_.retire(su.succ, pool_);
          return true;
        }
      }
    }
  }

  // ------------------------------------------------------------------
  // Quiescent-state inspection (tests and the benchmark harness only).
  // ------------------------------------------------------------------

  /// Walk the tree checking BST order, sentinel structure and that no
  /// reachable node is marked. Aborts (PATHCAS_CHECK) on violations.
  /// Returns statistics.
  TreeStats checkInvariants() const {
    PATHCAS_CHECK(maxRoot_->left.load() == minRoot_);
    PATHCAS_CHECK(maxRoot_->right.load() == nullptr);
    PATHCAS_CHECK(minRoot_->left.load() == nullptr);
    TreeStats stats;
    std::uint64_t depthSum = 0;
    walk(minRoot_->right.load(), kNegInf, kPosInf, 1, stats, depthSum);
    stats.avgKeyDepth =
        stats.size ? static_cast<double>(depthSum) / stats.size : 0.0;
    stats.footprintBytes = (stats.nodeCount + 2) * sizeof(Node);
    return stats;
  }

  std::uint64_t size() const { return checkInvariants().size; }
  std::int64_t keySum() const { return checkInvariants().keySum; }

  /// In-order traversal (quiescent), for oracle comparison in tests.
  void forEach(const std::function<void(K, V)>& f) const {
    forEachRec(minRoot_->right.load(), f);
  }

  static constexpr const char* name() { return "int-bst-pathcas"; }

 private:
  struct SearchResult {
    bool found;
    Node* curr;
    Version currVer;
    Node* parent;
    Version parentVer;
  };
  struct Successor {
    Node* succ;
    Version succVer;
    Node* succP;
    Version succPVer;
  };

  /// Algorithm 3: traditional BST search, visiting every node traversed.
  SearchResult search(K key) {
    Node* parent = maxRoot_;
    Version parentVer = visit(parent);
    Node* curr = minRoot_;
    Version currVer = visit(curr);
    while (curr != nullptr) {
      const K currKey = curr->key;
      if (key == currKey) return {true, curr, currVer, parent, parentVer};
      Node* next = (key > currKey) ? curr->right.load() : curr->left.load();
      parent = curr;
      parentVer = currVer;
      curr = next;
      if (curr != nullptr) {
        // Warm the likely-next level while visit() pays this node's
        // validation cost (PATHCAS_PREFETCH: hint only, re-read after).
        prefetch(curr->left);
        prefetch(curr->right);
        currVer = visit(curr);
      }
    }
    return {false, nullptr, 0, parent, parentVer};
  }

  /// Algorithm 5: locate curr's successor, visiting the traversed nodes.
  Successor getSuccessor(Node* start, Version startVer) {
    Node* succP = start;
    Version succPVer = startVer;
    Node* succ = start->right;
    if (succ == nullptr) return {nullptr, 0, nullptr, 0};
    Version succVer = visit(succ);
    for (;;) {
      Node* next = succ->left;
      if (next == nullptr) return {succ, succVer, succP, succPVer};
      succP = succ;
      succPVer = succVer;
      succ = next;
      prefetch(succ->left);
      succVer = visit(next);
    }
  }

  bool vex() { return opt_.useHtmFastPath ? vexecFast() : vexec(); }
  bool vval() {
    return opt_.useHtmFastPath ? validateVisitedFast() : validateVisited();
  }
  /// §4.1: leaf/one-child deletions need no path validation — the entries
  /// themselves pin parent and curr.
  bool execOrVex() {
    if (opt_.reduceValidation)
      return opt_.useHtmFastPath ? execFast() : pathcas::exec();
    return vex();
  }

  /// In-order walk of the subtrees overlapping [lo, hi], visiting every node
  /// examined; collected pairs are only meaningful if validation succeeds.
  void collectRange(Node* n, K lo, K hi, std::vector<std::pair<K, V>>& out) {
    if (n == nullptr) return;
    visit(n);
    const K k = n->key.load();
    if (k > lo) collectRange(n->left.load(), lo, hi, out);
    if (k >= lo && k <= hi) out.emplace_back(k, n->val.load());
    if (k < hi) collectRange(n->right.load(), lo, hi, out);
  }

  void walk(Node* n, K lo, K hi, std::uint64_t depth, TreeStats& stats,
            std::uint64_t& depthSum) const {
    if (n == nullptr) return;
    const K k = n->key.load();
    PATHCAS_CHECK(k > lo && k < hi);
    PATHCAS_CHECK(!isMarked(n->ver.load()));
    ++stats.size;
    ++stats.nodeCount;
    stats.keySum += static_cast<std::int64_t>(k);
    depthSum += depth;
    stats.height = std::max(stats.height, depth);
    walk(n->left.load(), lo, k, depth + 1, stats, depthSum);
    walk(n->right.load(), k, hi, depth + 1, stats, depthSum);
  }

  void forEachRec(Node* n, const std::function<void(K, V)>& f) const {
    if (n == nullptr) return;
    forEachRec(n->left.load(), f);
    f(n->key.load(), n->val.load());
    forEachRec(n->right.load(), f);
  }

  void freeSubtree(Node* n) {
    if (n == nullptr) return;
    freeSubtree(n->left.load());
    freeSubtree(n->right.load());
    pool_.destroy(n);
  }

  IntBstOptions opt_;
  recl::EbrDomain& ebr_;
  recl::NodePool<Node>& pool_;
  Node* maxRoot_;
  Node* minRoot_;
};

}  // namespace pathcas::ds
