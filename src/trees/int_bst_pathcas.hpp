// Lock-free *internal* binary search tree built with PathCAS (§4 of the
// paper, Algorithms 3-6), including the §4.1 validation-reduction
// optimizations (toggleable for the ablation benchmark).
//
// Structure: two sentinels — maxRoot (key +inf) whose left child is minRoot
// (key -inf); all real keys live in minRoot's right subtree. Every node
// carries a PathCAS version word; nodes are unlinked and marked in the same
// atomic PathCAS (so reachability == unmarked), and retired through EBR.
//
// Linearizability follows the paper's appendix E argument: every update
// either performs a successful PathCAS whose validation/entries pin the
// relevant part of the structure, or returns after a validated search
// established an atomic snapshot of the search path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "pathcas/pathcas.hpp"
#include "recl/ebr.hpp"
#include "recl/pool.hpp"
#include "util/defs.hpp"

namespace pathcas::ds {

/// Aggregate structural statistics (quiescent-state only), used by the
/// benchmark harness for keysum validation and the Fig. 5 factor analysis.
struct TreeStats {
  std::uint64_t size = 0;          // keys logically present
  std::uint64_t nodeCount = 0;     // allocated reachable nodes
  std::uint64_t height = 0;
  double avgKeyDepth = 0.0;
  std::int64_t keySum = 0;
  std::uint64_t footprintBytes = 0;  // nodeCount * sizeof(Node)
};

/// Configuration knobs (the §4.1 ablation).
struct IntBstOptions {
  /// Skip validation when contains/insert finds the key (§4.1) and use exec
  /// instead of vexec for leaf/one-child deletions.
  bool reduceValidation = true;
  /// Route updates through the HTM fast path (the paper's int-bst-pathcas+).
  bool useHtmFastPath = false;
  /// Max logical ops staged into one wide KCAS by insertBatch/eraseBatch/
  /// updateBatch before the sorted run is chunked into separate commits.
  /// Values <= 1 degrade batches to per-op commits; small values force
  /// deterministic splits (tests). 32 amortizes the per-commit fixed costs
  /// further than 16 while still fitting the staging budget for trees up to
  /// ~12 levels; deeper trees overflow the budget and split gracefully.
  int batchOpsPerCommit = 32;
};

template <typename K = std::int64_t, typename V = std::int64_t>
class IntBstPathCas {
 public:
  static_assert(std::is_integral_v<K> && std::is_integral_v<V>);
  /// Exposed for generic frontends (service/sharded_map.hpp).
  using KeyType = K;
  using ValueType = V;
  using OptionsType = IntBstOptions;
  /// Sentinel keys; user keys must lie strictly between them.
  static constexpr K kNegInf = std::numeric_limits<K>::min() / 4;
  static constexpr K kPosInf = std::numeric_limits<K>::max() / 4;

  struct Node {
    casword<Version> ver;
    casword<K> key;
    casword<V> val;
    casword<Node*> left;
    casword<Node*> right;

    Node(K k, V v) {
      key.setInitial(k);
      val.setInitial(v);
    }
  };

  explicit IntBstPathCas(IntBstOptions options = {},
                         recl::EbrDomain& ebr = recl::EbrDomain::instance(),
                         recl::NodePool<Node>* pool = nullptr)
      : opt_(options), ebr_(ebr), pool_(pool ? *pool : recl::defaultPool<Node>()) {
    maxRoot_ = pool_.alloc(kPosInf, V{});
    minRoot_ = pool_.alloc(kNegInf, V{});
    maxRoot_->left.setInitial(minRoot_);
  }

  IntBstPathCas(const IntBstPathCas&) = delete;
  IntBstPathCas& operator=(const IntBstPathCas&) = delete;

  ~IntBstPathCas() {
    // Quiescent-teardown exception: no thread can be pinned on this tree
    // anymore, so reachable nodes go straight back to the pool (no EBR).
    freeSubtree(minRoot_->right.load());
    pool_.destroy(minRoot_);
    pool_.destroy(maxRoot_);
  }

  /// True iff key is in the set. Validation is skipped on found keys when
  /// reduceValidation is on (§4.1: a reachable node was unmarked, hence in
  /// the set at some time during the operation).
  bool contains(K key) {
    PATHCAS_DCHECK(key > kNegInf && key < kPosInf);
    auto guard = ebr_.pin();
    for (;;) {
      start();
      const SearchResult s = search(key);
      if (s.found && (opt_.reduceValidation || validate())) return true;
      if (!s.found && validate()) return false;
    }
  }

  /// Returns the value associated with key, if present (linearized at the
  /// value read).
  std::optional<V> get(K key) {
    PATHCAS_DCHECK(key > kNegInf && key < kPosInf);
    auto guard = ebr_.pin();
    for (;;) {
      start();
      const SearchResult s = search(key);
      if (!s.found) {
        if (validate()) return std::nullopt;
        continue;
      }
      if (!opt_.reduceValidation && !validate()) continue;
      // §4.1 covers membership, but not the value: a concurrent two-child
      // erase replaces this node's key AND value in place (successor swap),
      // so a bare val load here could return the successor's value under
      // the searched key. The swap always bumps curr's version, so
      // re-reading the version AFTER the value load (acquire loads — the
      // re-read cannot move before the val load) proves ⟨key, val⟩ was
      // read as one intact pair; a mismatch re-traverses.
      const V val = s.curr->val.load();
      if (s.curr->ver.load() == s.currVer) return val;
    }
  }

  /// Linearizable range query: append every (key, value) pair with
  /// lo <= key <= hi to `out`, in ascending key order; returns the number of
  /// pairs appended. The traversal visits every node it examines (the same
  /// ⟨node, version⟩ recording a vexec path uses), then revalidates the whole
  /// visited set: optimistic with bounded retries, escalating to the §3.5
  /// strong path, so scans cannot starve on spurious conflicts. Scans that
  /// would examine more than pathcas::kMaxVisited nodes are out of contract
  /// (footnote 2) — bound the range accordingly.
  std::size_t rangeQuery(K lo, K hi, std::vector<std::pair<K, V>>& out) {
    PATHCAS_DCHECK(lo > kNegInf && hi < kPosInf);
    if (lo > hi) return 0;
    auto guard = ebr_.pin();
    const std::size_t base = out.size();
    for (;;) {
      start();
      visit(minRoot_);  // pins the root pointer (minRoot_->right)
      collectRange(minRoot_->right.load(), lo, hi, out);
      if (vval()) return out.size() - base;
      out.resize(base);  // torn attempt: discard and re-traverse
    }
  }

  /// One validated scan ATTEMPT that additionally hands every visited
  /// ⟨version-word, observed-encoding⟩ pair to `cap(k::AtomicWord*,
  /// k::word_t)` — the raw material for the sharded map's cross-shard
  /// linearization protocol (phase-2 revalidation of all shards' scans
  /// together). The capture necessarily runs BEFORE validation, because
  /// validateVisited may consume the staging area through the §3.5 strong
  /// path; a true return retroactively blesses the captured pairs (they
  /// formed an atomic snapshot), a false return obliges the caller to
  /// discard them (out's tail is already discarded here). Unlike
  /// rangeQuery, this does not retry internally: a multi-shard caller must
  /// redo all shards together, so it owns the retry loop.
  template <typename Cap>
  bool rangeQueryCapture(K lo, K hi, std::vector<std::pair<K, V>>& out,
                         Cap&& cap) {
    PATHCAS_DCHECK(lo > kNegInf && hi < kPosInf);
    if (lo > hi) return true;
    auto guard = ebr_.pin();
    const std::size_t base = out.size();
    start();
    visit(minRoot_);  // pins the root pointer (minRoot_->right)
    collectRange(minRoot_->right.load(), lo, hi, out);
    domain().forEachStagedPath(cap);
    if (vval()) return true;
    out.resize(base);
    return false;
  }

  /// insertIfAbsent (Algorithm 4). Returns false iff key was already present.
  bool insert(K key, V val) {
    PATHCAS_DCHECK(key > kNegInf && key < kPosInf);
    auto guard = ebr_.pin();
    Node* leaf = nullptr;
    for (;;) {
      start();
      const SearchResult s = search(key);
      if (s.found) {
        if (opt_.reduceValidation || validate()) {
          // Never published (no add() committed it): direct recycle is safe.
          if (leaf != nullptr) pool_.destroy(leaf);
          return false;
        }
        continue;
      }
      if (leaf == nullptr) leaf = pool_.alloc(key, val);
      const K parentKey = s.parent->key;
      auto& ptrToChange =
          (key < parentKey) ? s.parent->left : s.parent->right;
      add(ptrToChange, static_cast<Node*>(nullptr), leaf);
      addVer(s.parent->ver, s.parentVer, verBump(s.parentVer));
      if (vex()) return true;
    }
  }

  /// delete(key) (Algorithm 6). Returns false iff key was absent.
  bool erase(K key) {
    PATHCAS_DCHECK(key > kNegInf && key < kPosInf);
    auto guard = ebr_.pin();
    for (;;) {
      start();
      const SearchResult s = search(key);
      if (!s.found) {
        if (validate()) return false;
        continue;
      }
      if (isMarked(s.currVer) || isMarked(s.parentVer)) continue;
      Node* curr = s.curr;
      Node* parent = s.parent;
      Node* const currLeft = curr->left;
      Node* const currRight = curr->right;

      if (currLeft == nullptr && currRight == nullptr) {
        // Leaf deletion: unlink curr and mark it.
        auto& ptrToChange =
            (curr == parent->left.load()) ? parent->left : parent->right;
        add(ptrToChange, curr, static_cast<Node*>(nullptr));
        addVer(parent->ver, s.parentVer, verBump(s.parentVer));
        addVer(curr->ver, s.currVer, verMark(s.currVer));
        if (execOrVex()) {
          ebr_.retire(curr, pool_);
          return true;
        }
      } else if (currLeft == nullptr || currRight == nullptr) {
        // One-child deletion: splice the child into curr's place.
        Node* childToKeep = (currLeft == nullptr) ? currRight : currLeft;
        auto& ptrToChange =
            (curr == parent->left.load()) ? parent->left : parent->right;
        add(ptrToChange, curr, childToKeep);
        addVer(parent->ver, s.parentVer, verBump(s.parentVer));
        addVer(curr->ver, s.currVer, verMark(s.currVer));
        if (execOrVex()) {
          ebr_.retire(curr, pool_);
          return true;
        }
      } else {
        // Two-child deletion: replace curr's key/value with its successor's,
        // then unlink the successor (which has no left child).
        const Successor su = getSuccessor(curr, s.currVer);
        if (su.succ == nullptr || isMarked(su.succVer) ||
            isMarked(su.succPVer)) {
          continue;
        }
        Node* const succR = su.succ->right;
        if (succR != nullptr) {
          const Version succRVer = visit(succR);
          if (isMarked(succRVer)) continue;
        }
        auto& ptrToChange = (su.succP->right.load() == su.succ)
                                ? su.succP->right
                                : su.succP->left;
        add(ptrToChange, su.succ, succR);
        const V currVal = curr->val;
        const V succVal = su.succ->val;
        add(curr->val, currVal, succVal);
        add(curr->key, key, su.succ->key.load());
        addVer(su.succ->ver, su.succVer, verMark(su.succVer));
        addVer(su.succP->ver, su.succPVer, verBump(su.succPVer));
        if (su.succP != curr)
          addVer(curr->ver, s.currVer, verBump(s.currVer));
        if (vex()) {
          ebr_.retire(su.succ, pool_);
          return true;
        }
      }
    }
  }

  // ------------------------------------------------------------------
  // Batched updates (group commit). One shared traversal stages every op
  // of a sorted key run into a single wide KCAS, amortizing descriptor
  // publication and re-validation of the common path prefix across the
  // run. Chunks wider than batchOpsPerCommit — and chunks that overflow
  // the staging budget or keep losing their commit — are split in half
  // and retried, degrading to per-op insert()/erase() at width 1, so a
  // conflicted batch can never livelock the per-op fast paths.
  // ------------------------------------------------------------------

  /// insertIfAbsent over a strictly-ascending key run. outcomes[i] is set
  /// true iff keys[i] was inserted (false: already present); returns the
  /// number of insertions. All ops of one committed chunk linearize at its
  /// single KCAS; separate chunks linearize independently, in key order.
  std::size_t insertBatch(const K* keys, const V* vals, std::size_t n,
                          bool* outcomes) {
    checkBatchKeys(keys, n);
    for (std::size_t i = 0; i < n; ++i) outcomes[i] = false;
    const std::size_t chunk = batchChunkWidth();
    std::size_t inserted = 0;
    for (std::size_t i = 0; i < n; i += chunk)
      inserted += insertRun(keys + i, vals + i, std::min(chunk, n - i),
                            outcomes + i);
    return inserted;
  }

  /// delete over a strictly-ascending key run. outcomes[i] is set true iff
  /// keys[i] was removed (false: absent); returns the number of removals.
  /// Leaf and one-child removals are staged into the chunk's wide KCAS;
  /// removals whose node was already touched by the same chunk (a child
  /// slot swing staged on it) and two-child removals (successor swap) fall
  /// back to per-op erase() immediately after the chunk commits.
  std::size_t eraseBatch(const K* keys, std::size_t n, bool* outcomes) {
    checkBatchKeys(keys, n);
    for (std::size_t i = 0; i < n; ++i) outcomes[i] = false;
    const std::size_t chunk = batchChunkWidth();
    std::size_t erased = 0;
    for (std::size_t i = 0; i < n; i += chunk)
      erased += eraseRun(keys + i, std::min(chunk, n - i), outcomes + i);
    return erased;
  }

  /// Mixed update over a strictly-ascending key run: op i inserts
  /// (isInsert[i]) or erases keys[i]. One shared traversal stages the whole
  /// chunk — both op kinds — into a single wide KCAS, so a netted
  /// group-commit window pays one descent and one descriptor instead of an
  /// erase pass plus an insert pass. outcomes[i] is set true iff op i took
  /// effect (key inserted / removed); returns the number of effective ops.
  std::size_t updateBatch(const K* keys, const V* vals, const bool* isInsert,
                          std::size_t n, bool* outcomes) {
    checkBatchKeys(keys, n);
    for (std::size_t i = 0; i < n; ++i) outcomes[i] = false;
    const std::size_t chunk = batchChunkWidth();
    std::size_t applied = 0;
    for (std::size_t i = 0; i < n; i += chunk)
      applied += updateRun(keys + i, vals + i, isInsert + i,
                           std::min(chunk, n - i), outcomes + i);
    return applied;
  }

  // ------------------------------------------------------------------
  // Composite staging hooks (structs/multi_index_map.hpp). These stage one
  // logical tree op — search included — into the CALLING thread's current
  // PathCAS op without committing it, so a composite structure can combine
  // staged ops from SEVERAL trees sharing one KCAS domain into a single
  // atomic commit. Contract: the caller ran start(), every tree involved
  // was constructed on the same DomainSet, the calling thread holds a
  // k::ScopedDomain on it and an EBR pin, and the caller finishes with
  // vexec() (or abandons the op by calling start() again).
  // ------------------------------------------------------------------

  enum class Staged {
    kStaged,  // entries staged; on commit the caller owns the follow-up
              // (retireStaged for erases)
    kNoop,    // op has no effect (insert: key present; erase: key absent) —
              // the per-op witness rules apply (see callers)
    kRetry,   // torn/marked neighborhood: re-traverse the whole composite
  };

  /// Stage insertIfAbsent(key, val). On kStaged the new node is `spare`
  /// (allocated here on first use; carried across the caller's retries;
  /// consumed by a successful commit — set it to nullptr then — or released
  /// via discardSpare).
  Staged stageInsert(K key, V val, Node*& spare) {
    PATHCAS_DCHECK(key > kNegInf && key < kPosInf);
    const SearchResult s = search(key);
    if (s.found) return Staged::kNoop;
    if (isMarked(s.parentVer)) return Staged::kRetry;
    if (spare == nullptr) {
      spare = pool_.alloc(key, val);
    } else {
      spare->key.setInitial(key);  // unpublished: reinitialization is safe
      spare->val.setInitial(val);
    }
    const K parentKey = s.parent->key;
    auto& ptrToChange = (key < parentKey) ? s.parent->left : s.parent->right;
    add(ptrToChange, static_cast<Node*>(nullptr), spare);
    addVer(s.parent->ver, s.parentVer, verBump(s.parentVer));
    return Staged::kStaged;
  }

  /// Stage erase(key); mirrors erase()'s three shapes (leaf, one-child,
  /// two-child successor swap). On kStaged, *victim is the node to pass to
  /// retireStaged() once the composite commit succeeds, and *erasedVal the
  /// value removed (read under the staged pins).
  Staged stageErase(K key, Node** victim, V* erasedVal) {
    PATHCAS_DCHECK(key > kNegInf && key < kPosInf);
    const SearchResult s = search(key);
    if (!s.found) return Staged::kNoop;
    if (isMarked(s.currVer) || isMarked(s.parentVer)) return Staged::kRetry;
    Node* const curr = s.curr;
    Node* const parent = s.parent;
    Node* const currLeft = curr->left;
    Node* const currRight = curr->right;
    const V currVal = curr->val;
    if (erasedVal != nullptr) *erasedVal = currVal;
    if (currLeft == nullptr || currRight == nullptr) {
      Node* const childToKeep = (currLeft == nullptr) ? currRight : currLeft;
      auto& ptrToChange =
          (curr == parent->left.load()) ? parent->left : parent->right;
      add(ptrToChange, curr, childToKeep);
      addVer(parent->ver, s.parentVer, verBump(s.parentVer));
      addVer(curr->ver, s.currVer, verMark(s.currVer));
      *victim = curr;
      return Staged::kStaged;
    }
    const Successor su = getSuccessor(curr, s.currVer);
    if (su.succ == nullptr || isMarked(su.succVer) || isMarked(su.succPVer))
      return Staged::kRetry;
    Node* const succR = su.succ->right;
    if (succR != nullptr) {
      const Version succRVer = visit(succR);
      if (isMarked(succRVer)) return Staged::kRetry;
    }
    auto& ptrToChange =
        (su.succP->right.load() == su.succ) ? su.succP->right : su.succP->left;
    add(ptrToChange, su.succ, succR);
    const V succVal = su.succ->val;
    add(curr->val, currVal, succVal);
    add(curr->key, key, su.succ->key.load());
    addVer(su.succ->ver, su.succVer, verMark(su.succVer));
    addVer(su.succP->ver, su.succPVer, verBump(su.succPVer));
    if (su.succP != curr) addVer(curr->ver, s.currVer, verBump(s.currVer));
    *victim = su.succ;
    return Staged::kStaged;
  }

  /// Validated-by-the-caller read: search within the current staged op. The
  /// whole search path lands in the visited set, so a composite caller can
  /// validateVisited() across several trees' searches at once — an atomic
  /// cross-structure snapshot (MultiIndexMap::getChecked).
  bool stageFind(K key, V* out) {
    PATHCAS_DCHECK(key > kNegInf && key < kPosInf);
    const SearchResult s = search(key);
    if (!s.found) return false;
    if (out != nullptr) *out = s.curr->val;
    return true;
  }

  /// The erase follow-up, after the composite commit succeeded.
  void retireStaged(Node* victim) { ebr_.retire(victim, pool_); }
  /// Release an unconsumed insert spare (never published: direct recycle).
  void discardSpare(Node* spare) {
    if (spare != nullptr) pool_.destroy(spare);
  }

  // ------------------------------------------------------------------
  // Quiescent-state inspection (tests and the benchmark harness only).
  // ------------------------------------------------------------------

  /// Walk the tree checking BST order, sentinel structure and that no
  /// reachable node is marked. Aborts (PATHCAS_CHECK) on violations.
  /// Returns statistics.
  TreeStats checkInvariants() const {
    PATHCAS_CHECK(maxRoot_->left.load() == minRoot_);
    PATHCAS_CHECK(maxRoot_->right.load() == nullptr);
    PATHCAS_CHECK(minRoot_->left.load() == nullptr);
    TreeStats stats;
    std::uint64_t depthSum = 0;
    walk(minRoot_->right.load(), kNegInf, kPosInf, 1, stats, depthSum);
    stats.avgKeyDepth =
        stats.size ? static_cast<double>(depthSum) / stats.size : 0.0;
    stats.footprintBytes = (stats.nodeCount + 2) * sizeof(Node);
    return stats;
  }

  std::uint64_t size() const { return checkInvariants().size; }
  std::int64_t keySum() const { return checkInvariants().keySum; }

  /// In-order traversal (quiescent), for oracle comparison in tests.
  void forEach(const std::function<void(K, V)>& f) const {
    forEachRec(minRoot_->right.load(), f);
  }

  static constexpr const char* name() { return "int-bst-pathcas"; }

 private:
  struct SearchResult {
    bool found;
    Node* curr;
    Version currVer;
    Node* parent;
    Version parentVer;
  };
  struct Successor {
    Node* succ;
    Version succVer;
    Node* succP;
    Version succPVer;
  };

  /// Algorithm 3: traditional BST search, visiting every node traversed.
  SearchResult search(K key) {
    Node* parent = maxRoot_;
    Version parentVer = visit(parent);
    Node* curr = minRoot_;
    Version currVer = visit(curr);
    while (curr != nullptr) {
      const K currKey = curr->key;
      if (key == currKey) return {true, curr, currVer, parent, parentVer};
      Node* next = (key > currKey) ? curr->right.load() : curr->left.load();
      parent = curr;
      parentVer = currVer;
      curr = next;
      if (curr != nullptr) {
        // Warm the likely-next level while visit() pays this node's
        // validation cost (PATHCAS_PREFETCH: hint only, re-read after).
        prefetch(curr->left);
        prefetch(curr->right);
        currVer = visit(curr);
      }
    }
    return {false, nullptr, 0, parent, parentVer};
  }

  /// Algorithm 5: locate curr's successor, visiting the traversed nodes.
  Successor getSuccessor(Node* start, Version startVer) {
    Node* succP = start;
    Version succPVer = startVer;
    Node* succ = start->right;
    if (succ == nullptr) return {nullptr, 0, nullptr, 0};
    Version succVer = visit(succ);
    for (;;) {
      Node* next = succ->left;
      if (next == nullptr) return {succ, succVer, succP, succPVer};
      succP = succ;
      succPVer = succVer;
      succ = next;
      prefetch(succ->left);
      succVer = visit(next);
    }
  }

  // --- batched-commit machinery -------------------------------------

  /// Attempts per chunk before splitting; conflicts under contention are
  /// expected, and halving converges to the per-op paths quickly.
  static constexpr int kBatchRetries = 3;
  /// Combined path+entries budget for one chunk. vexec's strong path merges
  /// the visited set into the entry array (cap k::DefaultDomain::kMaxEntries),
  /// so a batch must leave headroom below that cap or the escalation would
  /// overflow.
  static constexpr int kBatchStageBudget =
      static_cast<int>(k::DefaultDomain::kMaxEntries) - 16;

  enum class StageStatus {
    kOk,
    kRetry,    // transient (marked node seen): same width, fresh traversal
    kOverflow  // staging budget: deterministic, split without retrying
  };

  /// `dom` is the run's cached domain reference: the probe runs once per
  /// visited node, and re-resolving the thread-local domain each time costs
  /// more than the comparison itself.
  static bool stageBudgetLeft(k::DefaultDomain& dom, int need = 1) {
    return dom.stagedFootprint() + need <= kBatchStageBudget;
  }

  std::size_t batchChunkWidth() const {
    return opt_.batchOpsPerCommit > 1
               ? static_cast<std::size_t>(opt_.batchOpsPerCommit)
               : 1;
  }

  static void checkBatchKeys(const K* keys, std::size_t n) {
    (void)keys;
    (void)n;
#ifndef NDEBUG
    for (std::size_t i = 0; i < n; ++i) {
      PATHCAS_DCHECK(keys[i] > kNegInf && keys[i] < kPosInf);
      PATHCAS_DCHECK(i == 0 || keys[i - 1] < keys[i]);
    }
#endif
  }

  struct InsertScratch {
    k::DefaultDomain* dom = nullptr;  // cached once per run (budget probes)
    std::vector<Node*> built;  // unpublished subtree roots (freed on abort)
    std::vector<std::pair<std::size_t, std::size_t>> staged;  // outcome ranges
  };

  void discardInsertAttempt(InsertScratch& sc) {
    for (Node* n : sc.built) freeSubtree(n);
    sc.built.clear();
    sc.staged.clear();
  }

  /// Balanced subtree of keys[lo..hi), built privately (setInitial): it only
  /// becomes shared if the staged link to it commits.
  Node* buildSubtree(const K* keys, const V* vals, std::size_t lo,
                     std::size_t hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    Node* n = pool_.alloc(keys[mid], vals[mid]);
    if (lo < mid) n->left.setInitial(buildSubtree(keys, vals, lo, mid));
    if (mid + 1 < hi)
      n->right.setInitial(buildSubtree(keys, vals, mid + 1, hi));
    return n;
  }

  /// Stage the inserts of keys[lo..hi) under `node` (already visited at
  /// nodeVer by the caller). Each key run partitions around node->key; a run
  /// landing on a null child slot becomes one staged link to a prebuilt
  /// subtree. Every node whose child slot changes gets exactly one version
  /// bump, so no address is staged twice.
  StageStatus stageInsertNode(Node* node, Version nodeVer, const K* keys,
                              const V* vals, std::size_t lo, std::size_t hi,
                              InsertScratch& sc) {
    if (isMarked(nodeVer)) return StageStatus::kRetry;
    const K nodeKey = node->key;
    const std::size_t mid = static_cast<std::size_t>(
        std::lower_bound(keys + lo, keys + hi, nodeKey) - keys);
    std::size_t rlo = mid;
    if (rlo < hi && keys[rlo] == nodeKey) ++rlo;  // present: outcome stays false
    bool childStaged = false;
    if (lo < mid) {
      const StageStatus s =
          stageInsertChild(node->left, keys, vals, lo, mid, sc, childStaged);
      if (s != StageStatus::kOk) return s;
    }
    if (rlo < hi) {
      const StageStatus s =
          stageInsertChild(node->right, keys, vals, rlo, hi, sc, childStaged);
      if (s != StageStatus::kOk) return s;
    }
    if (childStaged) {
      if (!stageBudgetLeft(*sc.dom)) return StageStatus::kOverflow;
      addVer(node->ver, nodeVer, verBump(nodeVer));
    }
    return StageStatus::kOk;
  }

  StageStatus stageInsertChild(casword<Node*>& slot, const K* keys,
                               const V* vals, std::size_t lo, std::size_t hi,
                               InsertScratch& sc, bool& childStaged) {
    Node* const child = slot.load();
    if (child != nullptr) {
      if (!stageBudgetLeft(*sc.dom)) return StageStatus::kOverflow;
      const Version childVer = visit(child);
      if (hi - lo == 1) return stageInsertOne(child, childVer, keys, vals, lo, sc);
      return stageInsertNode(child, childVer, keys, vals, lo, hi, sc);
    }
    if (!stageBudgetLeft(*sc.dom, 2)) return StageStatus::kOverflow;
    Node* const sub = buildSubtree(keys, vals, lo, hi);
    sc.built.push_back(sub);
    sc.staged.emplace_back(lo, hi);
    add(slot, static_cast<Node*>(nullptr), sub);
    childStaged = true;
    return StageStatus::kOk;
  }

  /// Tight iterative descent once a partition has narrowed to one key — the
  /// common case for every key below the batch's shared prefix. Matches
  /// search()'s loop body: no partitioning, no recursion, one budget probe
  /// per hop. The node whose null slot takes the link gets the one version
  /// bump; it lies strictly inside this partition's subtree, which no other
  /// partition touches, so no address is staged twice. Sc is InsertScratch
  /// or MixedScratch (same field names).
  template <typename Sc>
  StageStatus stageInsertOne(Node* node, Version nodeVer, const K* keys,
                             const V* vals, std::size_t i, Sc& sc) {
    const K key = keys[i];
    k::DefaultDomain& dom = *sc.dom;
    for (;;) {
      if (isMarked(nodeVer)) return StageStatus::kRetry;
      const K nodeKey = node->key;
      if (key == nodeKey) return StageStatus::kOk;  // present: outcome false
      casword<Node*>& slot = key < nodeKey ? node->left : node->right;
      Node* const child = slot.load();
      if (child == nullptr) {
        if (!stageBudgetLeft(dom, 2)) return StageStatus::kOverflow;
        Node* const leaf = pool_.alloc(key, vals[i]);
        sc.built.push_back(leaf);
        sc.staged.emplace_back(i, i + 1);
        add(slot, static_cast<Node*>(nullptr), leaf);
        addVer(node->ver, nodeVer, verBump(nodeVer));
        return StageStatus::kOk;
      }
      if (!stageBudgetLeft(dom)) return StageStatus::kOverflow;
      prefetch(child->left);
      prefetch(child->right);
      nodeVer = visit(child);
      node = child;
    }
  }

  std::size_t insertRun(const K* keys, const V* vals, std::size_t n,
                        bool* out) {
    if (n == 0) return 0;
    if (n == 1) {  // degraded to the per-op commit (k=1 fast path)
      out[0] = insert(keys[0], vals[0]);
      return out[0] ? 1u : 0u;
    }
    auto guard = ebr_.pin();
    InsertScratch sc;
    sc.dom = &domain();
    for (int attempt = 0; attempt < kBatchRetries; ++attempt) {
      start();
      const Version rootVer = visit(minRoot_);
      const StageStatus s =
          stageInsertNode(minRoot_, rootVer, keys, vals, 0, n, sc);
      if (s == StageStatus::kOverflow) {
        discardInsertAttempt(sc);
        break;  // deterministic: retrying the same width cannot help
      }
      if (s == StageStatus::kRetry) {
        discardInsertAttempt(sc);
        continue;
      }
      if (sc.staged.empty()) {
        // Every key already present; same witness rule as insert().
        if (opt_.reduceValidation || validate()) return 0;
        continue;
      }
      if (vex()) {
        std::size_t inserted = 0;
        for (const auto& range : sc.staged) {
          for (std::size_t i = range.first; i < range.second; ++i) {
            out[i] = true;
            ++inserted;
          }
        }
        return inserted;
      }
      discardInsertAttempt(sc);
    }
    const std::size_t half = n / 2;  // split-and-retry
    return insertRun(keys, vals, half, out) +
           insertRun(keys + half, vals + half, n - half, out + half);
  }

  struct EraseScratch {
    k::DefaultDomain* dom = nullptr;       // cached once per run (budget probes)
    std::vector<Node*> unlink;             // staged-out nodes (retired on commit)
    std::vector<std::size_t> stagedIdx;    // outcome indices of staged removals
    std::vector<std::size_t> deferredIdx;  // per-op erase() after the commit
  };

  struct EraseFrame {
    bool removed = false;
    Node* repl = nullptr;  // what the parent should swing its slot to
  };

  /// Stage the removals of keys[lo..hi) under `node` (already visited at
  /// nodeVer). Bottom-up: a removed child reports its replacement and the
  /// parent stages the slot swing plus its own single version bump. A node
  /// is only removed in-batch when it is a leaf or one-child node AND none
  /// of its child slots were staged by this same batch (otherwise the swing
  /// would race the staged edit — such removals are deferred to per-op
  /// erase()). Keys partitioned into a null child are absent, witnessed by
  /// the commit's validation of the whole visited path.
  StageStatus stageEraseNode(Node* node, Version nodeVer, const K* keys,
                             std::size_t lo, std::size_t hi, EraseScratch& sc,
                             EraseFrame& fr) {
    if (isMarked(nodeVer)) return StageStatus::kRetry;
    const K nodeKey = node->key;
    const std::size_t mid = static_cast<std::size_t>(
        std::lower_bound(keys + lo, keys + hi, nodeKey) - keys);
    const bool matched = mid < hi && keys[mid] == nodeKey;
    const std::size_t rlo = matched ? mid + 1 : mid;
    // Load only the child slots this node actually needs (both for a
    // matched node — leaf test and replacement — one for a pass-through):
    // the DFS touches many pass-through nodes and a second slot load per
    // node is a second cache miss per hop.
    Node* const left = (matched || lo < mid) ? node->left.load() : nullptr;
    Node* const right = (matched || rlo < hi) ? node->right.load() : nullptr;
    bool childStaged = false;
    if (lo < mid && left != nullptr) {
      const StageStatus s = stageEraseEdge(node->left, left, keys, lo, mid,
                                           sc, childStaged);
      if (s != StageStatus::kOk) return s;
    }
    if (rlo < hi && right != nullptr) {
      const StageStatus s = stageEraseEdge(node->right, right, keys, rlo, hi,
                                           sc, childStaged);
      if (s != StageStatus::kOk) return s;
    }
    if (matched) {
      if (childStaged || (left != nullptr && right != nullptr)) {
        sc.deferredIdx.push_back(mid);
      } else {
        if (!stageBudgetLeft(*sc.dom, 2)) return StageStatus::kOverflow;
        // Leaf / one-child: mark node; the parent frame swings its slot and
        // bumps its own version. Matches the per-op entry set exactly.
        addVer(node->ver, nodeVer, verMark(nodeVer));
        fr.removed = true;
        fr.repl = (left != nullptr) ? left : right;
        sc.unlink.push_back(node);
        sc.stagedIdx.push_back(mid);
        return StageStatus::kOk;
      }
    }
    if (childStaged) {
      if (!stageBudgetLeft(*sc.dom)) return StageStatus::kOverflow;
      addVer(node->ver, nodeVer, verBump(nodeVer));
    }
    return StageStatus::kOk;
  }

  StageStatus stageEraseEdge(casword<Node*>& slot, Node* child, const K* keys,
                             std::size_t lo, std::size_t hi, EraseScratch& sc,
                             bool& childStaged) {
    if (!stageBudgetLeft(*sc.dom, 2)) return StageStatus::kOverflow;
    const Version childVer = visit(child);
    EraseFrame cf;
    const StageStatus s = (hi - lo == 1)
        ? stageEraseOne(child, childVer, keys, lo, sc, cf)
        : stageEraseNode(child, childVer, keys, lo, hi, sc, cf);
    if (s != StageStatus::kOk) return s;
    if (cf.removed) {
      add(slot, child, cf.repl);
      childStaged = true;
    }
    return StageStatus::kOk;
  }

  /// Iterative singleton descent for erase, tracking (parent, parentVer)
  /// like the per-op search. A match below the partition root stages the
  /// full per-op entry set — mark, slot swing, parent bump — directly: the
  /// parent lies inside this partition's subtree, which no other partition
  /// touches. A match AT the partition root reports through `fr` instead,
  /// because the caller's node owns that swing and may merge it with a bump
  /// for its other partition (the usual bottom-up rule). Sc is EraseScratch
  /// or MixedScratch (same field names).
  template <typename Sc>
  StageStatus stageEraseOne(Node* node, Version nodeVer, const K* keys,
                            std::size_t i, Sc& sc, EraseFrame& fr) {
    const K key = keys[i];
    k::DefaultDomain& dom = *sc.dom;
    Node* parent = nullptr;
    Version parentVer = 0;
    casword<Node*>* slot = nullptr;  // parent's slot holding `node`
    for (;;) {
      if (isMarked(nodeVer)) return StageStatus::kRetry;
      const K nodeKey = node->key;
      if (key == nodeKey) {
        Node* const left = node->left.load();
        Node* const right = node->right.load();
        if (left != nullptr && right != nullptr)
          return stageEraseTwoChild(node, nodeVer, right, key, i, sc);
        Node* const repl = left != nullptr ? left : right;
        if (parent == nullptr) {
          if (!stageBudgetLeft(dom, 2)) return StageStatus::kOverflow;
          addVer(node->ver, nodeVer, verMark(nodeVer));
          fr.removed = true;
          fr.repl = repl;
        } else {
          if (!stageBudgetLeft(dom, 3)) return StageStatus::kOverflow;
          addVer(node->ver, nodeVer, verMark(nodeVer));
          add(*slot, node, repl);
          addVer(parent->ver, parentVer, verBump(parentVer));
        }
        sc.unlink.push_back(node);
        sc.stagedIdx.push_back(i);
        return StageStatus::kOk;
      }
      casword<Node*>& next = key < nodeKey ? node->left : node->right;
      Node* const child = next.load();
      if (child == nullptr) return StageStatus::kOk;  // absent: path witness
      if (!stageBudgetLeft(dom)) return StageStatus::kOverflow;
      prefetch(child->left);
      prefetch(child->right);
      parent = node;
      parentVer = nodeVer;
      slot = &next;
      nodeVer = visit(child);
      node = child;
    }
  }

  /// Stage a two-child removal in-batch: the per-op successor swap (erase(),
  /// Algorithm 6), entry for entry. Only reachable from the singleton
  /// descent, where the successor — the leftmost node of node's right
  /// subtree — lies strictly inside this partition's private subtree, so
  /// none of its words can already be staged by another partition. The
  /// general DFS still defers its two-child matches to per-op erase(): there
  /// a sibling key may have staged a slot on the successor path.
  template <typename Sc>
  StageStatus stageEraseTwoChild(Node* node, Version nodeVer, Node* right,
                                 K key, std::size_t i, Sc& sc) {
    k::DefaultDomain& dom = *sc.dom;
    Node* succP = node;
    Version succPVer = nodeVer;
    if (!stageBudgetLeft(dom)) return StageStatus::kOverflow;
    Node* succ = right;
    Version succVer = visit(succ);
    for (;;) {
      if (isMarked(succVer)) return StageStatus::kRetry;
      Node* const nl = succ->left.load();
      if (nl == nullptr) break;
      if (!stageBudgetLeft(dom)) return StageStatus::kOverflow;
      prefetch(nl->left);
      succP = succ;
      succPVer = succVer;
      succVer = visit(nl);
      succ = nl;
    }
    Node* const succR = succ->right.load();
    if (succR != nullptr) {
      if (!stageBudgetLeft(dom)) return StageStatus::kOverflow;
      const Version succRVer = visit(succR);
      if (isMarked(succRVer)) return StageStatus::kRetry;
    }
    if (!stageBudgetLeft(dom, 6)) return StageStatus::kOverflow;
    auto& ptrToChange = (succP == node) ? node->right : succP->left;
    add(ptrToChange, succ, succR);
    const V currVal = node->val;
    const V succVal = succ->val;
    add(node->val, currVal, succVal);
    add(node->key, key, succ->key.load());
    addVer(succ->ver, succVer, verMark(succVer));
    addVer(succP->ver, succPVer, verBump(succPVer));
    if (succP != node) addVer(node->ver, nodeVer, verBump(nodeVer));
    sc.unlink.push_back(succ);
    sc.stagedIdx.push_back(i);
    return StageStatus::kOk;
  }

  std::size_t eraseRun(const K* keys, std::size_t n, bool* out) {
    if (n == 0) return 0;
    if (n == 1) {  // degraded to the per-op commit
      out[0] = erase(keys[0]);
      return out[0] ? 1u : 0u;
    }
    auto guard = ebr_.pin();
    EraseScratch sc;
    sc.dom = &domain();
    for (int attempt = 0; attempt < kBatchRetries; ++attempt) {
      start();
      sc.unlink.clear();
      sc.stagedIdx.clear();
      sc.deferredIdx.clear();
      const Version rootVer = visit(minRoot_);
      EraseFrame rootFrame;
      const StageStatus s =
          stageEraseNode(minRoot_, rootVer, keys, 0, n, sc, rootFrame);
      if (s == StageStatus::kOverflow) break;
      if (s == StageStatus::kRetry) continue;
      PATHCAS_DCHECK(!rootFrame.removed);  // minRoot's key is a sentinel
      if (sc.unlink.empty()) {
        // Nothing staged: absent keys still need a validated traversal as
        // their witness (same rule as erase()); deferred ones run per-op.
        if (!validate()) continue;
        return finishEraseRun(keys, out, sc);
      }
      if (vex()) {
        for (Node* dead : sc.unlink) ebr_.retire(dead, pool_);
        return finishEraseRun(keys, out, sc);
      }
    }
    const std::size_t half = n / 2;  // split-and-retry
    return eraseRun(keys, half, out) +
           eraseRun(keys + half, n - half, out + half);
  }

  std::size_t finishEraseRun(const K* keys, bool* out, EraseScratch& sc) {
    std::size_t erased = sc.stagedIdx.size();
    for (std::size_t idx : sc.stagedIdx) out[idx] = true;
    for (std::size_t idx : sc.deferredIdx) {
      out[idx] = erase(keys[idx]);
      if (out[idx]) ++erased;
    }
    return erased;
  }

  /// Scratch for a mixed run: the union of InsertScratch and EraseScratch
  /// (field names match so the templated singleton helpers work on it),
  /// plus compaction buffers for all-null-slot partitions that hold both op
  /// kinds.
  struct MixedScratch {
    k::DefaultDomain* dom = nullptr;
    std::vector<Node*> built;  // unpublished subtree roots (freed on abort)
    std::vector<std::pair<std::size_t, std::size_t>> staged;  // insert ranges
    std::vector<std::size_t> insIdx;  // insert outcomes from filtered builds
    std::vector<Node*> unlink;             // staged-out nodes (retired on commit)
    std::vector<std::size_t> stagedIdx;    // erase outcomes staged
    std::vector<std::size_t> deferredIdx;  // per-op erase() after the commit
    std::vector<K> kTmp;                   // insert-key compaction (null slots)
    std::vector<V> vTmp;
  };

  void discardMixedAttempt(MixedScratch& sc) {
    for (Node* n : sc.built) freeSubtree(n);
    sc.built.clear();
    sc.staged.clear();
    sc.insIdx.clear();
    sc.unlink.clear();
    sc.stagedIdx.clear();
    sc.deferredIdx.clear();
  }

  /// Mixed-run DFS: one partition walk stages inserts AND erases of
  /// keys[lo..hi) under `node`. Same structure as the single-kind DFS's:
  /// partition around node->key, recurse, bump a changed node once. An
  /// erase match follows stageEraseNode's rules, upgraded to the in-batch
  /// successor swap when its partition is a singleton (nothing else staged
  /// in that subtree); an insert match is a present key (outcome false).
  StageStatus stageMixedNode(Node* node, Version nodeVer, const K* keys,
                             const V* vals, const bool* isIns, std::size_t lo,
                             std::size_t hi, MixedScratch& sc,
                             EraseFrame& fr) {
    if (isMarked(nodeVer)) return StageStatus::kRetry;
    const K nodeKey = node->key;
    const std::size_t mid = static_cast<std::size_t>(
        std::lower_bound(keys + lo, keys + hi, nodeKey) - keys);
    const bool matched = mid < hi && keys[mid] == nodeKey;
    const std::size_t rlo = matched ? mid + 1 : mid;
    const bool eraseMatch = matched && !isIns[mid];
    // Lazy child loads, as in stageEraseNode: one cache miss per
    // pass-through hop, both slots only when an erase match needs them.
    Node* const left = (eraseMatch || lo < mid) ? node->left.load() : nullptr;
    Node* const right = (eraseMatch || rlo < hi) ? node->right.load() : nullptr;
    bool childStaged = false;
    if (lo < mid) {
      const StageStatus s = stageMixedChild(node->left, left, keys, vals,
                                            isIns, lo, mid, sc, childStaged);
      if (s != StageStatus::kOk) return s;
    }
    if (rlo < hi) {
      const StageStatus s = stageMixedChild(node->right, right, keys, vals,
                                            isIns, rlo, hi, sc, childStaged);
      if (s != StageStatus::kOk) return s;
    }
    if (eraseMatch) {
      if (childStaged || (left != nullptr && right != nullptr)) {
        if (!childStaged && lo == mid && rlo == hi)
          return stageEraseTwoChild(node, nodeVer, right, nodeKey, mid, sc);
        sc.deferredIdx.push_back(mid);
      } else {
        if (!stageBudgetLeft(*sc.dom, 2)) return StageStatus::kOverflow;
        addVer(node->ver, nodeVer, verMark(nodeVer));
        fr.removed = true;
        fr.repl = (left != nullptr) ? left : right;
        sc.unlink.push_back(node);
        sc.stagedIdx.push_back(mid);
        return StageStatus::kOk;
      }
    }
    if (childStaged) {
      if (!stageBudgetLeft(*sc.dom)) return StageStatus::kOverflow;
      addVer(node->ver, nodeVer, verBump(nodeVer));
    }
    return StageStatus::kOk;
  }

  StageStatus stageMixedChild(casword<Node*>& slot, Node* child, const K* keys,
                              const V* vals, const bool* isIns, std::size_t lo,
                              std::size_t hi, MixedScratch& sc,
                              bool& childStaged) {
    if (child != nullptr) {
      if (!stageBudgetLeft(*sc.dom)) return StageStatus::kOverflow;
      const Version childVer = visit(child);
      EraseFrame cf;
      StageStatus s;
      if (hi - lo == 1) {
        s = isIns[lo] ? stageInsertOne(child, childVer, keys, vals, lo, sc)
                      : stageEraseOne(child, childVer, keys, lo, sc, cf);
      } else {
        s = stageMixedNode(child, childVer, keys, vals, isIns, lo, hi, sc, cf);
      }
      if (s != StageStatus::kOk) return s;
      if (cf.removed) {
        add(slot, child, cf.repl);
        childStaged = true;
      }
      return StageStatus::kOk;
    }
    // Null slot: the partition's insert keys become one prebuilt subtree;
    // its erase keys are absent, witnessed by the validated path.
    sc.kTmp.clear();
    sc.vTmp.clear();
    for (std::size_t j = lo; j < hi; ++j) {
      if (isIns[j]) {
        sc.kTmp.push_back(keys[j]);
        sc.vTmp.push_back(vals[j]);
        sc.insIdx.push_back(j);
      }
    }
    if (sc.kTmp.empty()) return StageStatus::kOk;
    if (!stageBudgetLeft(*sc.dom, 2)) return StageStatus::kOverflow;
    Node* const sub = buildSubtree(sc.kTmp.data(), sc.vTmp.data(), 0,
                                   sc.kTmp.size());
    sc.built.push_back(sub);
    add(slot, static_cast<Node*>(nullptr), sub);
    childStaged = true;
    return StageStatus::kOk;
  }

  std::size_t updateRun(const K* keys, const V* vals, const bool* isIns,
                        std::size_t n, bool* out) {
    if (n == 0) return 0;
    if (n == 1) {  // degraded to the per-op commit (k=1 fast path)
      out[0] = isIns[0] ? insert(keys[0], vals[0]) : erase(keys[0]);
      return out[0] ? 1u : 0u;
    }
    auto guard = ebr_.pin();
    MixedScratch sc;
    sc.dom = &domain();
    for (int attempt = 0; attempt < kBatchRetries; ++attempt) {
      start();
      const Version rootVer = visit(minRoot_);
      EraseFrame rootFrame;
      const StageStatus s =
          stageMixedNode(minRoot_, rootVer, keys, vals, isIns, 0, n, sc,
                         rootFrame);
      if (s == StageStatus::kOverflow) {
        discardMixedAttempt(sc);
        break;  // deterministic: retrying the same width cannot help
      }
      if (s == StageStatus::kRetry) {
        discardMixedAttempt(sc);
        continue;
      }
      PATHCAS_DCHECK(!rootFrame.removed);  // minRoot's key is a sentinel
      if (sc.built.empty() && sc.unlink.empty()) {
        // Nothing staged: absent erases still need the validated traversal
        // as their witness (same rule as erase()); present inserts inherit
        // it for free, deferred removals run per-op below.
        if (!validate()) {
          discardMixedAttempt(sc);
          continue;
        }
        return finishMixedRun(keys, out, sc);
      }
      if (vex()) {
        for (Node* dead : sc.unlink) ebr_.retire(dead, pool_);
        return finishMixedRun(keys, out, sc);
      }
      discardMixedAttempt(sc);
    }
    const std::size_t half = n / 2;  // split-and-retry
    return updateRun(keys, vals, isIns, half, out) +
           updateRun(keys + half, vals + half, isIns + half, n - half,
                     out + half);
  }

  std::size_t finishMixedRun(const K* keys, bool* out, MixedScratch& sc) {
    std::size_t applied = 0;
    for (const auto& range : sc.staged) {
      for (std::size_t i = range.first; i < range.second; ++i) {
        out[i] = true;
        ++applied;
      }
    }
    for (std::size_t idx : sc.insIdx) {
      out[idx] = true;
      ++applied;
    }
    for (std::size_t idx : sc.stagedIdx) {
      out[idx] = true;
      ++applied;
    }
    for (std::size_t idx : sc.deferredIdx) {
      out[idx] = erase(keys[idx]);
      if (out[idx]) ++applied;
    }
    return applied;
  }

  bool vex() { return opt_.useHtmFastPath ? vexecFast() : vexec(); }
  bool vval() {
    return opt_.useHtmFastPath ? validateVisitedFast() : validateVisited();
  }
  /// §4.1: leaf/one-child deletions need no path validation — the entries
  /// themselves pin parent and curr.
  bool execOrVex() {
    if (opt_.reduceValidation)
      return opt_.useHtmFastPath ? execFast() : pathcas::exec();
    return vex();
  }

  /// In-order walk of the subtrees overlapping [lo, hi], visiting every node
  /// examined; collected pairs are only meaningful if validation succeeds.
  void collectRange(Node* n, K lo, K hi, std::vector<std::pair<K, V>>& out) {
    if (n == nullptr) return;
    visit(n);
    const K k = n->key.load();
    if (k > lo) collectRange(n->left.load(), lo, hi, out);
    if (k >= lo && k <= hi) out.emplace_back(k, n->val.load());
    if (k < hi) collectRange(n->right.load(), lo, hi, out);
  }

  void walk(Node* n, K lo, K hi, std::uint64_t depth, TreeStats& stats,
            std::uint64_t& depthSum) const {
    if (n == nullptr) return;
    const K k = n->key.load();
    PATHCAS_CHECK(k > lo && k < hi);
    PATHCAS_CHECK(!isMarked(n->ver.load()));
    ++stats.size;
    ++stats.nodeCount;
    stats.keySum += static_cast<std::int64_t>(k);
    depthSum += depth;
    stats.height = std::max(stats.height, depth);
    walk(n->left.load(), lo, k, depth + 1, stats, depthSum);
    walk(n->right.load(), k, hi, depth + 1, stats, depthSum);
  }

  void forEachRec(Node* n, const std::function<void(K, V)>& f) const {
    if (n == nullptr) return;
    forEachRec(n->left.load(), f);
    f(n->key.load(), n->val.load());
    forEachRec(n->right.load(), f);
  }

  void freeSubtree(Node* n) {
    if (n == nullptr) return;
    freeSubtree(n->left.load());
    freeSubtree(n->right.load());
    pool_.destroy(n);
  }

  IntBstOptions opt_;
  recl::EbrDomain& ebr_;
  recl::NodePool<Node>& pool_;
  Node* maxRoot_;
  Node* minRoot_;
};

}  // namespace pathcas::ds
