// Non-blocking external BST of Ellen, Fatourou, Ruppert & van Breugel
// (PODC'10) — the paper's `ext-bst-lf` baseline, implemented from scratch.
//
// Keys live in leaves; internal nodes carry routing keys and an `update`
// word packing (Info*, state) with state ∈ {CLEAN, IFLAG, DFLAG, MARK}.
// Updates flag the affected internal node(s) with an Info record describing
// the operation, so any thread encountering a flag can help the operation to
// completion — the classic fine-grained helping protocol PathCAS is designed
// to let you avoid writing.
//
// Info records, replaced leaves and unlinked internal nodes are reclaimed
// through EBR into type-segregated NodePools (one for Nodes, one for Info
// records) and recycled; flag words hold stale (never-dereferenced) Info
// pointers in the CLEAN state, exactly as in the original algorithm —
// recycling is safe for the same reason deletion was: by the time a slot is
// reused, no thread can act on a stale reference to it.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "recl/ebr.hpp"
#include "recl/pool.hpp"
#include "util/defs.hpp"

namespace pathcas::ds {

template <typename K = std::int64_t, typename V = std::int64_t>
class EllenBst {
 public:
  static constexpr K kInf1 = std::numeric_limits<K>::max() / 4 - 1;
  static constexpr K kInf2 = std::numeric_limits<K>::max() / 4;

  struct Node;
  /// Operation record for the helping protocol. Public (with Node) so
  /// callers can hand the constructor dedicated pools.
  struct Info {
    Node* gp = nullptr;
    Node* p = nullptr;
    Node* newInternal = nullptr;
    Node* l = nullptr;
    std::uint64_t pupdate = 0;
    std::atomic<bool> retired{false};  // first finisher retires exactly once
  };

  struct Node {
    const K key;
    const V val;
    const bool leaf;
    std::atomic<std::uint64_t> update{0};  // (Info* | state)
    std::atomic<Node*> left{nullptr};
    std::atomic<Node*> right{nullptr};
    Node(K k, V v, bool isLeaf) : key(k), val(v), leaf(isLeaf) {}
  };

  explicit EllenBst(recl::EbrDomain& ebr = recl::EbrDomain::instance(),
                    recl::NodePool<Node>* nodePool = nullptr,
                    recl::NodePool<Info>* infoPool = nullptr)
      : ebr_(ebr),
        nodePool_(nodePool ? *nodePool : recl::defaultPool<Node>()),
        infoPool_(infoPool ? *infoPool : recl::defaultPool<Info>()) {
    root_ = nodePool_.alloc(kInf2, V{}, /*leaf=*/false);
    root_->left.store(nodePool_.alloc(kInf1, V{}, true));
    root_->right.store(nodePool_.alloc(kInf2, V{}, true));
  }

  EllenBst(const EllenBst&) = delete;
  EllenBst& operator=(const EllenBst&) = delete;

  // Quiescent-teardown exception: direct recycle, no EBR needed.
  ~EllenBst() { freeSubtree(root_); }

  bool contains(K key) {
    PATHCAS_DCHECK(key < kInf1);
    auto guard = ebr_.pin();
    const SearchResult s = search(key);
    return s.l->key == key;
  }

  bool insert(K key, V val) {
    PATHCAS_DCHECK(key < kInf1);
    auto guard = ebr_.pin();
    Node* newLeaf = nodePool_.alloc(key, val, true);
    for (;;) {
      const SearchResult s = search(key);
      if (s.l->key == key) {
        // Never published: direct recycle is safe.
        nodePool_.destroy(newLeaf);
        return false;
      }
      if (stateOf(s.pupdate) != kClean) {
        help(s.pupdate);
        continue;
      }
      Node* newSibling = nodePool_.alloc(s.l->key, s.l->val, true);
      Node* newInternal =
          nodePool_.alloc(std::max(key, s.l->key), V{}, /*leaf=*/false);
      if (key < s.l->key) {
        newInternal->left.store(newLeaf);
        newInternal->right.store(newSibling);
      } else {
        newInternal->left.store(newSibling);
        newInternal->right.store(newLeaf);
      }
      Info* op = infoPool_.alloc();
      op->p = s.p;
      op->newInternal = newInternal;
      op->l = s.l;
      std::uint64_t expected = s.pupdate;
      if (s.p->update.compare_exchange_strong(expected,
                                              pack(op, kIFlag))) {
        helpInsert(op);
        return true;
      }
      help(expected);
      // The flag CAS failed, so op/newSibling/newInternal were never
      // published: direct recycle is safe.
      nodePool_.destroy(newSibling);
      nodePool_.destroy(newInternal);
      infoPool_.destroy(op);
    }
  }

  bool erase(K key) {
    PATHCAS_DCHECK(key < kInf1);
    auto guard = ebr_.pin();
    for (;;) {
      const SearchResult s = search(key);
      if (s.l->key != key) return false;
      if (stateOf(s.gpupdate) != kClean) {
        help(s.gpupdate);
        continue;
      }
      if (stateOf(s.pupdate) != kClean) {
        help(s.pupdate);
        continue;
      }
      Info* op = infoPool_.alloc();
      op->gp = s.gp;
      op->p = s.p;
      op->l = s.l;
      op->pupdate = s.pupdate;
      std::uint64_t expected = s.gpupdate;
      if (s.gp->update.compare_exchange_strong(expected,
                                               pack(op, kDFlag))) {
        if (helpDelete(op)) return true;
      } else {
        help(expected);
        infoPool_.destroy(op);  // flag CAS failed: never published
      }
    }
  }

  /// Best-effort range scan: append the (key, value) pairs with
  /// lo <= key <= hi observed during ONE traversal, in ascending key order;
  /// returns the number appended. NOT an atomic snapshot — the helping
  /// protocol gives per-key linearizability only, so a scan racing updates
  /// may mix states (the usual limitation of hand-crafted lock-free BSTs
  /// without versioned snapshots). Included for benchmark comparability with
  /// the validated PathCAS scans; quiescent scans are exact.
  std::size_t rangeQuery(K lo, K hi, std::vector<std::pair<K, V>>& out) {
    PATHCAS_DCHECK(hi < kInf1);
    if (lo > hi) return 0;
    auto guard = ebr_.pin();
    const std::size_t base = out.size();
    collectRange(root_, lo, hi, out);
    return out.size() - base;
  }

  std::uint64_t size() const {
    std::uint64_t n = 0;
    countLeaves(root_, n);
    return n - 2;  // sentinel leaves
  }
  std::int64_t keySum() const { return sumLeaves(root_); }

  /// Average depth of real keys (quiescent), for the Fig. 5 analysis.
  double avgKeyDepth() const {
    std::uint64_t depthSum = 0, keys = 0, nodes = 0;
    depthWalk(root_, 1, depthSum, keys, nodes);
    return keys ? static_cast<double>(depthSum) / static_cast<double>(keys)
                : 0.0;
  }
  /// Memory actually held for this structure's node types, from pool
  /// counters — the Fig. 5 memory column (via EllenAdapter::footprintBytes).
  std::uint64_t poolFootprintBytes() const {
    return nodePool_.footprintBytes() + infoPool_.footprintBytes();
  }

  static constexpr const char* name() { return "ext-bst-lf"; }

 private:
  enum State : std::uint64_t { kClean = 0, kIFlag = 1, kDFlag = 2, kMark = 3 };

  struct SearchResult {
    Node* gp;
    Node* p;
    Node* l;
    std::uint64_t pupdate;
    std::uint64_t gpupdate;
  };

  static std::uint64_t pack(Info* info, State s) {
    return reinterpret_cast<std::uintptr_t>(info) | s;
  }
  static State stateOf(std::uint64_t u) { return static_cast<State>(u & 3); }
  static Info* infoOf(std::uint64_t u) {
    return reinterpret_cast<Info*>(u & ~std::uint64_t{3});
  }

  SearchResult search(K key) const {
    SearchResult s{nullptr, nullptr, root_, 0, 0};
    while (!s.l->leaf) {
      s.gp = s.p;
      s.p = s.l;
      s.gpupdate = s.pupdate;
      s.pupdate = s.p->update.load(std::memory_order_acquire);
      s.l = (key < s.p->key) ? s.p->left.load(std::memory_order_acquire)
                             : s.p->right.load(std::memory_order_acquire);
    }
    return s;
  }

  void help(std::uint64_t u) {
    switch (stateOf(u)) {
      case kIFlag:
        helpInsert(infoOf(u));
        break;
      case kMark:
        helpMarked(infoOf(u));
        break;
      case kDFlag:
        helpDelete(infoOf(u));
        break;
      case kClean:
        break;
    }
  }

  /// Swing the parent's child pointer from `old` to `next` (key-directed).
  static void casChild(Node* parent, Node* old, Node* next) {
    std::atomic<Node*>& child =
        (next->key < parent->key) ? parent->left : parent->right;
    Node* expected = old;
    child.compare_exchange_strong(expected, next);
  }

  void helpInsert(Info* op) {
    casChild(op->p, op->l, op->newInternal);
    std::uint64_t expected = pack(op, kIFlag);
    if (op->p->update.compare_exchange_strong(expected, pack(op, kClean))) {
      // We finished the operation: retire the replaced leaf and the record.
      retireOnce(op, [&] {
        ebr_.retire(op->l, nodePool_);
        ebr_.retire(op, infoPool_);
      });
    }
  }

  bool helpDelete(Info* op) {
    std::uint64_t expected = op->pupdate;
    const std::uint64_t marked = pack(op, kMark);
    if (op->p->update.compare_exchange_strong(expected, marked) ||
        expected == marked) {
      helpMarked(op);
      return true;
    }
    help(op->p->update.load(std::memory_order_acquire));
    std::uint64_t flagged = pack(op, kDFlag);
    if (op->gp->update.compare_exchange_strong(flagged, pack(op, kClean))) {
      // Backtracked: only the record.
      retireOnce(op, [&] { ebr_.retire(op, infoPool_); });
    }
    return false;
  }

  void helpMarked(Info* op) {
    Node* const p = op->p;
    Node* other = p->right.load(std::memory_order_acquire);
    if (other == op->l) other = p->left.load(std::memory_order_acquire);
    // `other` keys may be on either side of gp; direct by comparison with l.
    std::atomic<Node*>& child = (op->p == op->gp->left.load())
                                    ? op->gp->left
                                    : op->gp->right;
    Node* expected = op->p;
    child.compare_exchange_strong(expected, other);
    std::uint64_t flagged = pack(op, kDFlag);
    if (op->gp->update.compare_exchange_strong(flagged, pack(op, kClean))) {
      retireOnce(op, [&] {
        ebr_.retire(op->p, nodePool_);
        ebr_.retire(op->l, nodePool_);
        ebr_.retire(op, infoPool_);
      });
    }
  }

  template <typename F>
  static void retireOnce(Info* op, F&& f) {
    bool expected = false;
    if (op->retired.compare_exchange_strong(expected, true)) f();
  }

  void depthWalk(Node* n, std::uint64_t depth, std::uint64_t& depthSum,
                 std::uint64_t& keys, std::uint64_t& nodes) const {
    if (n == nullptr) return;
    ++nodes;
    if (n->leaf) {
      if (n->key < kInf1) {
        depthSum += depth;
        ++keys;
      }
      return;
    }
    depthWalk(n->left.load(), depth + 1, depthSum, keys, nodes);
    depthWalk(n->right.load(), depth + 1, depthSum, keys, nodes);
  }

  /// Internal node with key k routes keys < k left, >= k right; sentinel
  /// leaves (>= kInf1) are excluded from results.
  void collectRange(Node* n, K lo, K hi,
                    std::vector<std::pair<K, V>>& out) const {
    if (n == nullptr) return;
    if (n->leaf) {
      if (n->key >= lo && n->key <= hi && n->key < kInf1)
        out.emplace_back(n->key, n->val);
      return;
    }
    if (lo < n->key)
      collectRange(n->left.load(std::memory_order_acquire), lo, hi, out);
    if (hi >= n->key)
      collectRange(n->right.load(std::memory_order_acquire), lo, hi, out);
  }

  void countLeaves(Node* n, std::uint64_t& acc) const {
    if (n == nullptr) return;
    if (n->leaf) {
      ++acc;
      return;
    }
    countLeaves(n->left.load(), acc);
    countLeaves(n->right.load(), acc);
  }
  std::int64_t sumLeaves(Node* n) const {
    if (n == nullptr) return 0;
    if (n->leaf) return (n->key >= kInf1) ? 0 : static_cast<std::int64_t>(n->key);
    return sumLeaves(n->left.load()) + sumLeaves(n->right.load());
  }
  void freeSubtree(Node* n) {
    if (n == nullptr) return;
    if (!n->leaf) {
      freeSubtree(n->left.load());
      freeSubtree(n->right.load());
    }
    nodePool_.destroy(n);
  }

  recl::EbrDomain& ebr_;
  recl::NodePool<Node>& nodePool_;
  recl::NodePool<Info>& infoPool_;
  Node* root_;
};

}  // namespace pathcas::ds
