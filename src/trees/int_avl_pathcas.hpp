// Lock-free *internal relaxed AVL tree* built with PathCAS (§4.2 and
// appendix D of the paper). The base is the internal BST of Algorithms 3-6;
// nodes are augmented with parent pointers and logical heights, and every
// successful update triggers Bougé-style relaxed rebalancing: fixHeight and
// the four rotations (Algorithms 8-11 plus mirrors), applied while walking
// parent pointers toward the root until a violation-free node is reached.
//
// Deviations from the paper's pseudocode (which contains typos) are
// normalized to one rule: ANY node whose fields change in a vexec — including
// pure parent-pointer retargeting — has its version incremented in the same
// vexec. This is strictly safer (concurrent validations always observe
// subtree movements) at the cost of a slightly wider KCAS.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "pathcas/pathcas.hpp"
#include "recl/ebr.hpp"
#include "recl/pool.hpp"
#include "trees/int_bst_pathcas.hpp"  // TreeStats, IntBstOptions
#include "util/defs.hpp"

namespace pathcas::ds {

template <typename K = std::int64_t, typename V = std::int64_t>
class IntAvlPathCas {
 public:
  static_assert(std::is_integral_v<K> && std::is_integral_v<V>);
  /// Exposed for generic frontends (service/sharded_map.hpp).
  using KeyType = K;
  using ValueType = V;
  using OptionsType = IntBstOptions;
  static constexpr K kNegInf = std::numeric_limits<K>::min() / 4;
  static constexpr K kPosInf = std::numeric_limits<K>::max() / 4;

  struct Node {
    casword<Version> ver;
    casword<K> key;
    casword<V> val;
    casword<Node*> left;
    casword<Node*> right;
    casword<Node*> parent;
    casword<std::int64_t> height;  // logical height (relaxed)

    Node(K k, V v, Node* p) {
      key.setInitial(k);
      val.setInitial(v);
      parent.setInitial(p);
      height.setInitial(1);
    }
  };

  explicit IntAvlPathCas(IntBstOptions options = {},
                         recl::EbrDomain& ebr = recl::EbrDomain::instance(),
                         recl::NodePool<Node>* pool = nullptr)
      : opt_(options), ebr_(ebr), pool_(pool ? *pool : recl::defaultPool<Node>()) {
    maxRoot_ = pool_.alloc(kPosInf, V{}, nullptr);
    minRoot_ = pool_.alloc(kNegInf, V{}, maxRoot_);
    maxRoot_->left.setInitial(minRoot_);
  }

  IntAvlPathCas(const IntAvlPathCas&) = delete;
  IntAvlPathCas& operator=(const IntAvlPathCas&) = delete;

  ~IntAvlPathCas() {
    // Quiescent-teardown exception: no thread pinned on this tree anymore,
    // so reachable nodes go straight back to the pool (no EBR).
    freeSubtree(minRoot_->right.load());
    pool_.destroy(minRoot_);
    pool_.destroy(maxRoot_);
  }

  bool contains(K key) {
    PATHCAS_DCHECK(key > kNegInf && key < kPosInf);
    auto guard = ebr_.pin();
    for (;;) {
      start();
      const SearchResult s = search(key);
      if (s.found && (opt_.reduceValidation || validate())) return true;
      if (!s.found && validate()) return false;
    }
  }

  std::optional<V> get(K key) {
    PATHCAS_DCHECK(key > kNegInf && key < kPosInf);
    auto guard = ebr_.pin();
    for (;;) {
      start();
      const SearchResult s = search(key);
      if (!s.found) {
        if (validate()) return std::nullopt;
        continue;
      }
      if (!opt_.reduceValidation && !validate()) continue;
      // Same seqlock-style pair check as IntBstPathCas::get — the two-child
      // erase swaps key/value in place and always bumps curr's version, so
      // an unchanged version re-read AFTER the value load proves the pair.
      const V val = s.curr->val.load();
      if (s.curr->ver.load() == s.currVer) return val;
    }
  }

  /// Linearizable range query (see IntBstPathCas::rangeQuery): append every
  /// (key, value) pair with lo <= key <= hi to `out` in ascending key order;
  /// returns the number appended. Rotations retarget pointers of visited
  /// nodes only with a version bump (the normalization rule above), so a
  /// validated scan is an atomic snapshot even while rebalancing runs.
  /// Bounded by pathcas::kMaxVisited examined nodes (footnote 2).
  std::size_t rangeQuery(K lo, K hi, std::vector<std::pair<K, V>>& out) {
    PATHCAS_DCHECK(lo > kNegInf && hi < kPosInf);
    if (lo > hi) return 0;
    auto guard = ebr_.pin();
    const std::size_t base = out.size();
    for (;;) {
      start();
      visit(minRoot_);  // pins the root pointer (minRoot_->right)
      collectRange(minRoot_->right.load(), lo, hi, out);
      if (vval()) return out.size() - base;
      out.resize(base);  // torn attempt: discard and re-traverse
    }
  }

  /// One validated scan attempt with visited-pair capture, for the sharded
  /// map's cross-shard linearization. Contract identical to
  /// IntBstPathCas::rangeQueryCapture: `cap(k::AtomicWord*, k::word_t)` is
  /// called per visited pair BEFORE validation; a false return means the
  /// caller must discard the capture and retry (no internal retry loop).
  template <typename Cap>
  bool rangeQueryCapture(K lo, K hi, std::vector<std::pair<K, V>>& out,
                         Cap&& cap) {
    PATHCAS_DCHECK(lo > kNegInf && hi < kPosInf);
    if (lo > hi) return true;
    auto guard = ebr_.pin();
    const std::size_t base = out.size();
    start();
    visit(minRoot_);  // pins the root pointer (minRoot_->right)
    collectRange(minRoot_->right.load(), lo, hi, out);
    domain().forEachStagedPath(cap);
    if (vval()) return true;
    out.resize(base);
    return false;
  }

  bool insert(K key, V val) {
    PATHCAS_DCHECK(key > kNegInf && key < kPosInf);
    auto guard = ebr_.pin();
    Node* leaf = nullptr;
    for (;;) {
      start();
      const SearchResult s = search(key);
      if (s.found) {
        if (opt_.reduceValidation || validate()) {
          // Never published (no add() committed it): direct recycle is safe.
          if (leaf != nullptr) pool_.destroy(leaf);
          return false;
        }
        continue;
      }
      if (leaf == nullptr) {
        leaf = pool_.alloc(key, val, s.parent);
      } else {
        leaf->parent.setInitial(s.parent);
      }
      const K parentKey = s.parent->key;
      auto& ptrToChange =
          (key < parentKey) ? s.parent->left : s.parent->right;
      add(ptrToChange, static_cast<Node*>(nullptr), leaf);
      addVer(s.parent->ver, s.parentVer, verBump(s.parentVer));
      if (vex()) {
        rebalance(s.parent);
        return true;
      }
    }
  }

  bool erase(K key) {
    PATHCAS_DCHECK(key > kNegInf && key < kPosInf);
    auto guard = ebr_.pin();
    for (;;) {
      start();
      const SearchResult s = search(key);
      if (!s.found) {
        if (validate()) return false;
        continue;
      }
      if (isMarked(s.currVer) || isMarked(s.parentVer)) continue;
      Node* curr = s.curr;
      Node* parent = s.parent;
      Node* const currLeft = curr->left;
      Node* const currRight = curr->right;

      if (currLeft == nullptr && currRight == nullptr) {
        auto& ptrToChange =
            (curr == parent->left.load()) ? parent->left : parent->right;
        add(ptrToChange, curr, static_cast<Node*>(nullptr));
        addVer(parent->ver, s.parentVer, verBump(s.parentVer));
        addVer(curr->ver, s.currVer, verMark(s.currVer));
        if (execOrVex()) {
          ebr_.retire(curr, pool_);
          rebalance(parent);
          return true;
        }
      } else if (currLeft == nullptr || currRight == nullptr) {
        Node* childToKeep = (currLeft == nullptr) ? currRight : currLeft;
        const Version childVer = visit(childToKeep);
        if (isMarked(childVer)) continue;
        auto& ptrToChange =
            (curr == parent->left.load()) ? parent->left : parent->right;
        add(ptrToChange, curr, childToKeep);
        add(childToKeep->parent, curr, parent);
        addVer(childToKeep->ver, childVer, verBump(childVer));
        addVer(parent->ver, s.parentVer, verBump(s.parentVer));
        addVer(curr->ver, s.currVer, verMark(s.currVer));
        if (execOrVex()) {
          ebr_.retire(curr, pool_);
          rebalance(parent);
          return true;
        }
      } else {
        const Successor su = getSuccessor(curr, s.currVer);
        if (su.succ == nullptr || isMarked(su.succVer) ||
            isMarked(su.succPVer)) {
          continue;
        }
        Node* const succR = su.succ->right;
        Version succRVer = 0;
        if (succR != nullptr) {
          succRVer = visit(succR);
          if (isMarked(succRVer)) continue;
        }
        auto& ptrToChange = (su.succP->right.load() == su.succ)
                                ? su.succP->right
                                : su.succP->left;
        add(ptrToChange, su.succ, succR);
        if (succR != nullptr) {
          add(succR->parent, su.succ, su.succP);
          addVer(succR->ver, succRVer, verBump(succRVer));
        }
        const V currVal = curr->val;
        const V succVal = su.succ->val;
        add(curr->val, currVal, succVal);
        add(curr->key, key, su.succ->key.load());
        addVer(su.succ->ver, su.succVer, verMark(su.succVer));
        addVer(su.succP->ver, su.succPVer, verBump(su.succPVer));
        if (su.succP != curr)
          addVer(curr->ver, s.currVer, verBump(s.currVer));
        if (vex()) {
          ebr_.retire(su.succ, pool_);
          rebalance(su.succP);
          return true;
        }
      }
    }
  }

  // ------------------------------------------------------------------
  // Batched updates (group commit). Same contract and split rules as
  // IntBstPathCas::insertBatch/eraseBatch; see the "Batched commits"
  // section of docs/ARCHITECTURE.md. AVL-specific deltas: inserted runs
  // become height-annotated balanced subtrees whose attach points are
  // rebalanced after the commit, and only LEAF removals are staged in the
  // wide KCAS — a one-child splice retargets the kept child's parent word,
  // which may already carry a staged version bump from the child's own
  // subtree in the same batch (an address staged twice is undefined), so
  // one-child and two-child removals defer to per-op erase().
  // ------------------------------------------------------------------

  /// insertIfAbsent over a strictly-ascending key run; see
  /// IntBstPathCas::insertBatch.
  std::size_t insertBatch(const K* keys, const V* vals, std::size_t n,
                          bool* outcomes) {
    checkBatchKeys(keys, n);
    for (std::size_t i = 0; i < n; ++i) outcomes[i] = false;
    const std::size_t chunk = batchChunkWidth();
    std::size_t inserted = 0;
    for (std::size_t i = 0; i < n; i += chunk)
      inserted += insertRun(keys + i, vals + i, std::min(chunk, n - i),
                            outcomes + i);
    return inserted;
  }

  /// delete over a strictly-ascending key run; see IntBstPathCas::eraseBatch.
  std::size_t eraseBatch(const K* keys, std::size_t n, bool* outcomes) {
    checkBatchKeys(keys, n);
    for (std::size_t i = 0; i < n; ++i) outcomes[i] = false;
    const std::size_t chunk = batchChunkWidth();
    std::size_t erased = 0;
    for (std::size_t i = 0; i < n; i += chunk)
      erased += eraseRun(keys + i, std::min(chunk, n - i), outcomes + i);
    return erased;
  }

  // ------------------------------------------------------------------
  // Quiescent-state inspection.
  // ------------------------------------------------------------------

  /// Checks BST order, that no reachable node is marked, parent-pointer
  /// consistency, and that logical heights are self-consistent
  /// (height == 1 + max(child heights)) — the state Bougé's rebalancing
  /// converges to. `requireStrictBalance` additionally asserts every node's
  /// children differ in height by <= 1 (holds after quiescent convergence).
  TreeStats checkInvariants(bool requireStrictBalance = false) const {
    PATHCAS_CHECK(maxRoot_->left.load() == minRoot_);
    TreeStats stats;
    std::uint64_t depthSum = 0;
    Node* root = minRoot_->right.load();
    if (root != nullptr) PATHCAS_CHECK(root->parent.load() == minRoot_);
    walk(root, kNegInf, kPosInf, 1, stats, depthSum, requireStrictBalance);
    stats.avgKeyDepth =
        stats.size ? static_cast<double>(depthSum) / stats.size : 0.0;
    stats.footprintBytes = (stats.nodeCount + 2) * sizeof(Node);
    return stats;
  }

  std::uint64_t size() const { return checkInvariants().size; }
  std::int64_t keySum() const { return checkInvariants().keySum; }

  void forEach(const std::function<void(K, V)>& f) const {
    forEachRec(minRoot_->right.load(), f);
  }

  /// Quiescent helper for tests: repeatedly apply rebalancing at every node
  /// until the tree is a strict AVL tree (Bougé's convergence theorem).
  void rebalanceToConvergence() {
    bool changed = true;
    while (changed) {
      changed = false;
      fixAll(minRoot_->right.load(), changed);
    }
  }

  static constexpr const char* name() { return "int-avl-pathcas"; }

 private:
  struct SearchResult {
    bool found;
    Node* curr;
    Version currVer;
    Node* parent;
    Version parentVer;
  };
  struct Successor {
    Node* succ;
    Version succVer;
    Node* succP;
    Version succPVer;
  };
  enum class FixResult { kSuccess, kFailure, kUnnecessary };

  SearchResult search(K key) {
    Node* parent = maxRoot_;
    Version parentVer = visit(parent);
    Node* curr = minRoot_;
    Version currVer = visit(curr);
    while (curr != nullptr) {
      const K currKey = curr->key;
      if (key == currKey) return {true, curr, currVer, parent, parentVer};
      Node* next = (key > currKey) ? curr->right.load() : curr->left.load();
      parent = curr;
      parentVer = currVer;
      curr = next;
      if (curr != nullptr) {
        // Warm the likely-next level while visit() pays this node's
        // validation cost (PATHCAS_PREFETCH: hint only, re-read after).
        prefetch(curr->left);
        prefetch(curr->right);
        currVer = visit(curr);
      }
    }
    return {false, nullptr, 0, parent, parentVer};
  }

  Successor getSuccessor(Node* start, Version startVer) {
    Node* succP = start;
    Version succPVer = startVer;
    Node* succ = start->right;
    if (succ == nullptr) return {nullptr, 0, nullptr, 0};
    Version succVer = visit(succ);
    for (;;) {
      Node* next = succ->left;
      if (next == nullptr) return {succ, succVer, succP, succPVer};
      succP = succ;
      succPVer = succVer;
      succ = next;
      prefetch(succ->left);
      succVer = visit(next);
    }
  }

  // --- batched-commit machinery (see IntBstPathCas for the protocol) --

  static constexpr int kBatchRetries = 3;
  static constexpr int kBatchStageBudget =
      static_cast<int>(k::DefaultDomain::kMaxEntries) - 16;

  enum class StageStatus { kOk, kRetry, kOverflow };

  static bool stageBudgetLeft(int need = 1) {
    return domain().stagedFootprint() + need <= kBatchStageBudget;
  }

  std::size_t batchChunkWidth() const {
    return opt_.batchOpsPerCommit > 1
               ? static_cast<std::size_t>(opt_.batchOpsPerCommit)
               : 1;
  }

  static void checkBatchKeys(const K* keys, std::size_t n) {
    (void)keys;
    (void)n;
#ifndef NDEBUG
    for (std::size_t i = 0; i < n; ++i) {
      PATHCAS_DCHECK(keys[i] > kNegInf && keys[i] < kPosInf);
      PATHCAS_DCHECK(i == 0 || keys[i - 1] < keys[i]);
    }
#endif
  }

  struct InsertScratch {
    std::vector<Node*> built;   // unpublished subtree roots (freed on abort)
    std::vector<Node*> attach;  // nodes gaining a subtree (rebalance roots)
    std::vector<std::pair<std::size_t, std::size_t>> staged;  // outcome ranges
  };

  void discardInsertAttempt(InsertScratch& sc) {
    for (Node* n : sc.built) freeSubtree(n);
    sc.built.clear();
    sc.attach.clear();
    sc.staged.clear();
  }

  /// Balanced, height-annotated subtree of keys[lo..hi), built privately
  /// under `parent` (setInitial): only shared if the staged link commits.
  Node* buildSubtree(const K* keys, const V* vals, std::size_t lo,
                     std::size_t hi, Node* parent) {
    const std::size_t mid = lo + (hi - lo) / 2;
    Node* const n = pool_.alloc(keys[mid], vals[mid], parent);
    std::int64_t lh = 0, rh = 0;
    if (lo < mid) {
      Node* const l = buildSubtree(keys, vals, lo, mid, n);
      n->left.setInitial(l);
      lh = l->height.load();
    }
    if (mid + 1 < hi) {
      Node* const r = buildSubtree(keys, vals, mid + 1, hi, n);
      n->right.setInitial(r);
      rh = r->height.load();
    }
    if (lh != 0 || rh != 0) n->height.setInitial(1 + std::max(lh, rh));
    return n;
  }

  StageStatus stageInsertNode(Node* node, Version nodeVer, const K* keys,
                              const V* vals, std::size_t lo, std::size_t hi,
                              InsertScratch& sc) {
    if (isMarked(nodeVer)) return StageStatus::kRetry;
    const K nodeKey = node->key;
    const std::size_t mid = static_cast<std::size_t>(
        std::lower_bound(keys + lo, keys + hi, nodeKey) - keys);
    std::size_t rlo = mid;
    if (rlo < hi && keys[rlo] == nodeKey) ++rlo;  // present: outcome stays false
    bool childStaged = false;
    if (lo < mid) {
      const StageStatus s = stageInsertChild(node, node->left, keys, vals, lo,
                                             mid, sc, childStaged);
      if (s != StageStatus::kOk) return s;
    }
    if (rlo < hi) {
      const StageStatus s = stageInsertChild(node, node->right, keys, vals,
                                             rlo, hi, sc, childStaged);
      if (s != StageStatus::kOk) return s;
    }
    if (childStaged) {
      if (!stageBudgetLeft()) return StageStatus::kOverflow;
      addVer(node->ver, nodeVer, verBump(nodeVer));
    }
    return StageStatus::kOk;
  }

  StageStatus stageInsertChild(Node* node, casword<Node*>& slot,
                               const K* keys, const V* vals, std::size_t lo,
                               std::size_t hi, InsertScratch& sc,
                               bool& childStaged) {
    Node* const child = slot.load();
    if (child != nullptr) {
      if (!stageBudgetLeft()) return StageStatus::kOverflow;
      const Version childVer = visit(child);
      return stageInsertNode(child, childVer, keys, vals, lo, hi, sc);
    }
    if (!stageBudgetLeft(2)) return StageStatus::kOverflow;
    Node* const sub = buildSubtree(keys, vals, lo, hi, node);
    sc.built.push_back(sub);
    sc.attach.push_back(node);
    sc.staged.emplace_back(lo, hi);
    add(slot, static_cast<Node*>(nullptr), sub);
    childStaged = true;
    return StageStatus::kOk;
  }

  std::size_t insertRun(const K* keys, const V* vals, std::size_t n,
                        bool* out) {
    if (n == 0) return 0;
    if (n == 1) {  // degraded to the per-op commit (k=1 fast path)
      out[0] = insert(keys[0], vals[0]);
      return out[0] ? 1u : 0u;
    }
    auto guard = ebr_.pin();
    InsertScratch sc;
    for (int attempt = 0; attempt < kBatchRetries; ++attempt) {
      start();
      const Version rootVer = visit(minRoot_);
      const StageStatus s =
          stageInsertNode(minRoot_, rootVer, keys, vals, 0, n, sc);
      if (s == StageStatus::kOverflow) {
        discardInsertAttempt(sc);
        break;  // deterministic: retrying the same width cannot help
      }
      if (s == StageStatus::kRetry) {
        discardInsertAttempt(sc);
        continue;
      }
      if (sc.staged.empty()) {
        if (opt_.reduceValidation || validate()) return 0;
        continue;
      }
      if (vex()) {
        std::size_t inserted = 0;
        for (const auto& range : sc.staged) {
          for (std::size_t i = range.first; i < range.second; ++i) {
            out[i] = true;
            ++inserted;
          }
        }
        // An attached subtree is internally balanced but may unbalance the
        // path above its attach point; repair from there (Bougé walk-up).
        for (Node* at : sc.attach) rebalance(at);
        return inserted;
      }
      discardInsertAttempt(sc);
    }
    const std::size_t half = n / 2;  // split-and-retry
    return insertRun(keys, vals, half, out) +
           insertRun(keys + half, vals + half, n - half, out + half);
  }

  struct EraseScratch {
    std::vector<Node*> unlink;             // staged-out leaves (retired on commit)
    std::vector<Node*> rebal;              // their parents (rebalance roots)
    std::vector<std::size_t> stagedIdx;    // outcome indices of staged removals
    std::vector<std::size_t> deferredIdx;  // per-op erase() after the commit
  };

  struct EraseFrame {
    bool removed = false;
  };

  StageStatus stageEraseNode(Node* node, Version nodeVer, const K* keys,
                             std::size_t lo, std::size_t hi, EraseScratch& sc,
                             EraseFrame& fr) {
    if (isMarked(nodeVer)) return StageStatus::kRetry;
    const K nodeKey = node->key;
    const std::size_t mid = static_cast<std::size_t>(
        std::lower_bound(keys + lo, keys + hi, nodeKey) - keys);
    const bool matched = mid < hi && keys[mid] == nodeKey;
    const std::size_t rlo = matched ? mid + 1 : mid;
    Node* const left = node->left.load();
    Node* const right = node->right.load();
    bool childStaged = false;
    if (lo < mid && left != nullptr) {
      const StageStatus s = stageEraseEdge(node, node->left, left, keys, lo,
                                           mid, sc, childStaged);
      if (s != StageStatus::kOk) return s;
    }
    if (rlo < hi && right != nullptr) {
      const StageStatus s = stageEraseEdge(node, node->right, right, keys,
                                           rlo, hi, sc, childStaged);
      if (s != StageStatus::kOk) return s;
    }
    if (matched) {
      if (!childStaged && left == nullptr && right == nullptr) {
        if (!stageBudgetLeft(2)) return StageStatus::kOverflow;
        // Leaf: mark node; the parent frame swings its slot and bumps its
        // own version. Matches the per-op leaf-deletion entry set exactly.
        addVer(node->ver, nodeVer, verMark(nodeVer));
        fr.removed = true;
        sc.unlink.push_back(node);
        sc.stagedIdx.push_back(mid);
        return StageStatus::kOk;
      }
      // One-child / two-child / touched-by-this-batch: per-op fallback.
      sc.deferredIdx.push_back(mid);
    }
    if (childStaged) {
      if (!stageBudgetLeft()) return StageStatus::kOverflow;
      addVer(node->ver, nodeVer, verBump(nodeVer));
    }
    return StageStatus::kOk;
  }

  StageStatus stageEraseEdge(Node* node, casword<Node*>& slot, Node* child,
                             const K* keys, std::size_t lo, std::size_t hi,
                             EraseScratch& sc, bool& childStaged) {
    if (!stageBudgetLeft(2)) return StageStatus::kOverflow;
    const Version childVer = visit(child);
    EraseFrame cf;
    const StageStatus s =
        stageEraseNode(child, childVer, keys, lo, hi, sc, cf);
    if (s != StageStatus::kOk) return s;
    if (cf.removed) {
      add(slot, child, static_cast<Node*>(nullptr));
      sc.rebal.push_back(node);
      childStaged = true;
    }
    return StageStatus::kOk;
  }

  std::size_t eraseRun(const K* keys, std::size_t n, bool* out) {
    if (n == 0) return 0;
    if (n == 1) {  // degraded to the per-op commit
      out[0] = erase(keys[0]);
      return out[0] ? 1u : 0u;
    }
    auto guard = ebr_.pin();
    EraseScratch sc;
    for (int attempt = 0; attempt < kBatchRetries; ++attempt) {
      start();
      sc.unlink.clear();
      sc.rebal.clear();
      sc.stagedIdx.clear();
      sc.deferredIdx.clear();
      const Version rootVer = visit(minRoot_);
      EraseFrame rootFrame;
      const StageStatus s =
          stageEraseNode(minRoot_, rootVer, keys, 0, n, sc, rootFrame);
      if (s == StageStatus::kOverflow) break;
      if (s == StageStatus::kRetry) continue;
      PATHCAS_DCHECK(!rootFrame.removed);  // minRoot's key is a sentinel
      if (sc.unlink.empty()) {
        if (!validate()) continue;
        return finishEraseRun(keys, out, sc);
      }
      if (vex()) {
        for (Node* dead : sc.unlink) ebr_.retire(dead, pool_);
        for (Node* p : sc.rebal) rebalance(p);
        return finishEraseRun(keys, out, sc);
      }
    }
    const std::size_t half = n / 2;  // split-and-retry
    return eraseRun(keys, half, out) +
           eraseRun(keys + half, n - half, out + half);
  }

  std::size_t finishEraseRun(const K* keys, bool* out, EraseScratch& sc) {
    std::size_t erased = sc.stagedIdx.size();
    for (std::size_t idx : sc.stagedIdx) out[idx] = true;
    for (std::size_t idx : sc.deferredIdx) {
      out[idx] = erase(keys[idx]);
      if (out[idx]) ++erased;
    }
    return erased;
  }

  bool vex() { return opt_.useHtmFastPath ? vexecFast() : vexec(); }
  bool vval() {
    return opt_.useHtmFastPath ? validateVisitedFast() : validateVisited();
  }
  bool execOrVex() {
    if (opt_.reduceValidation)
      return opt_.useHtmFastPath ? execFast() : pathcas::exec();
    return vex();
  }

  /// In-order walk of the subtrees overlapping [lo, hi], visiting every node
  /// examined; collected pairs are only meaningful if validation succeeds.
  void collectRange(Node* n, K lo, K hi, std::vector<std::pair<K, V>>& out) {
    if (n == nullptr) return;
    visit(n);
    const K k = n->key.load();
    if (k > lo) collectRange(n->left.load(), lo, hi, out);
    if (k >= lo && k <= hi) out.emplace_back(k, n->val.load());
    if (k < hi) collectRange(n->right.load(), lo, hi, out);
  }

  static std::int64_t heightOf(Node* n) {
    return n == nullptr ? 0 : n->height.load();
  }

  // ------------------------------------------------------------------
  // Rebalancing (appendix D, Algorithms 8-11 + mirrors).
  // ------------------------------------------------------------------

  /// Walk from n toward the root repairing violations (Algorithm 10). A
  /// thread that created a violation owns it — and any violation its own
  /// repairs create — until it reaches a violation-free or deleted node.
  void rebalance(Node* n) {
    // Bounded retries guard against pathological contention livelock; an
    // abandoned repair leaves a (correct) temporarily-unbalanced tree whose
    // violation the next updater through this region repairs.
    int attempts = 0;
    while (n != nullptr && n != minRoot_ && n != maxRoot_) {
      if (++attempts > kMaxRebalanceAttempts) return;
      start();
      const Version nV = n->ver.load();
      if (isMarked(nV)) return;  // deleted: someone else owns the path up
      Node* p = n->parent;
      if (p == nullptr) return;
      const Version pV = visit(p);
      if (isMarked(pV)) continue;
      Node* const l = n->left;
      Node* const r = n->right;
      Version lV = 0, rV = 0;
      if (l != nullptr) lV = visit(l);
      if (r != nullptr) rV = visit(r);
      if (isMarked(lV) || isMarked(rV)) continue;
      const std::int64_t lh = heightOf(l);
      const std::int64_t rh = heightOf(r);
      const std::int64_t balance = lh - rh;

      if (balance >= 2) {
        // Left-heavy: examine l's children to pick single vs double rotation.
        if (l == nullptr) continue;  // height raced; retry
        Node* const ll = l->left;
        Node* const lr = l->right;
        Version llV = 0, lrV = 0;
        if (ll != nullptr) llV = visit(ll);
        if (lr != nullptr) lrV = visit(lr);
        if (isMarked(llV) || isMarked(lrV)) continue;
        const std::int64_t lBalance = heightOf(ll) - heightOf(lr);
        if (lBalance < 0) {
          if (lr == nullptr) continue;
          if (rotateLeftRight(p, pV, n, nV, l, lV, lr, lrV)) {
            rebalance(n);
            rebalance(l);
            rebalance(lr);
            n = p;
          }
        } else {
          if (rotateRight(p, pV, n, nV, l, lV)) {
            rebalance(n);
            rebalance(l);
            n = p;
          }
        }
      } else if (balance <= -2) {
        if (r == nullptr) continue;
        Node* const rl = r->left;
        Node* const rr = r->right;
        Version rlV = 0, rrV = 0;
        if (rl != nullptr) rlV = visit(rl);
        if (rr != nullptr) rrV = visit(rr);
        if (isMarked(rlV) || isMarked(rrV)) continue;
        const std::int64_t rBalance = heightOf(rl) - heightOf(rr);
        if (rBalance > 0) {
          if (rl == nullptr) continue;
          if (rotateRightLeft(p, pV, n, nV, r, rV, rl, rlV)) {
            rebalance(n);
            rebalance(r);
            rebalance(rl);
            n = p;
          }
        } else {
          if (rotateLeft(p, pV, n, nV, r, rV)) {
            rebalance(n);
            rebalance(r);
            n = p;
          }
        }
      } else {
        const FixResult res = fixHeight(n, nV, l, lV, r, rV);
        if (res == FixResult::kFailure) continue;
        if (res == FixResult::kSuccess) {
          n = p;
          continue;
        }
        return;  // kUnnecessary: no violation here; the walk ends (Alg. 10)
      }
    }
  }

  /// Algorithm 8: set n.height = 1 + max(child heights), locking the
  /// children's versions (add old==new) so the computed height is consistent.
  FixResult fixHeight(Node* n, Version nV, Node* l, Version lV, Node* r,
                      Version rV) {
    // l/r/versions were visited by the caller in this same PathCAS op.
    if (l != nullptr) addVer(l->ver, lV, lV);
    if (r != nullptr) addVer(r->ver, rV, rV);
    const std::int64_t oldHeight = n->height;
    const std::int64_t newHeight = 1 + std::max(heightOf(l), heightOf(r));
    if (oldHeight == newHeight) {
      if (n->ver.load() == nV && (l == nullptr || l->ver.load() == lV) &&
          (r == nullptr || r->ver.load() == rV)) {
        return FixResult::kUnnecessary;
      }
      return FixResult::kFailure;
    }
    add(n->height, oldHeight, newHeight);
    addVer(n->ver, nV, verBump(nV));
    if (vex()) return FixResult::kSuccess;
    return FixResult::kFailure;
  }

  /// Attach l in n's place under p. Returns false if n is not p's child.
  bool addParentSwing(Node* p, Node* n, Node* replacement) {
    if (p->right.load() == n) {
      add(p->right, n, replacement);
    } else if (p->left.load() == n) {
      add(p->left, n, replacement);
    } else {
      return false;
    }
    return true;
  }

  /// Algorithm 11 (and its mirror): single rotation.
  ///        p                p
  ///        n       =>       l
  ///       / \              / \ .
  ///      l   r            ll  n
  ///     / \                  / \ .
  ///    ll  lr               lr  r
  bool rotateRight(Node* p, Version pV, Node* n, Version nV, Node* l,
                   Version lV) {
    if (!addParentSwing(p, n, l)) return false;
    Node* const lr = l->right;
    std::int64_t lrH = 0;
    if (lr != nullptr) {
      const Version lrV = visit(lr);
      if (isMarked(lrV)) return false;
      lrH = lr->height;
      add(lr->parent, l, n);
      addVer(lr->ver, lrV, verBump(lrV));
    }
    Node* const ll = l->left;
    std::int64_t llH = 0;
    if (ll != nullptr) {
      const Version llV = visit(ll);
      if (isMarked(llV)) return false;
      llH = ll->height;
    }
    Node* const r = n->right;
    std::int64_t rH = 0;
    if (r != nullptr) {
      const Version rV = visit(r);
      if (isMarked(rV)) return false;
      rH = r->height;
    }
    const std::int64_t oldNH = n->height;
    const std::int64_t oldLH = l->height;
    const std::int64_t newNH = 1 + std::max(lrH, rH);
    const std::int64_t newLH = 1 + std::max(llH, newNH);
    add(l->parent, n, p);
    add(n->left, l, lr);
    add(l->right, lr, n);
    add(n->parent, p, l);
    add(n->height, oldNH, newNH);
    add(l->height, oldLH, newLH);
    addVer(p->ver, pV, verBump(pV));
    addVer(n->ver, nV, verBump(nV));
    addVer(l->ver, lV, verBump(lV));
    return vex();
  }

  bool rotateLeft(Node* p, Version pV, Node* n, Version nV, Node* r,
                  Version rV) {
    if (!addParentSwing(p, n, r)) return false;
    Node* const rl = r->left;
    std::int64_t rlH = 0;
    if (rl != nullptr) {
      const Version rlV = visit(rl);
      if (isMarked(rlV)) return false;
      rlH = rl->height;
      add(rl->parent, r, n);
      addVer(rl->ver, rlV, verBump(rlV));
    }
    Node* const rr = r->right;
    std::int64_t rrH = 0;
    if (rr != nullptr) {
      const Version rrV = visit(rr);
      if (isMarked(rrV)) return false;
      rrH = rr->height;
    }
    Node* const l = n->left;
    std::int64_t lH = 0;
    if (l != nullptr) {
      const Version lV = visit(l);
      if (isMarked(lV)) return false;
      lH = l->height;
    }
    const std::int64_t oldNH = n->height;
    const std::int64_t oldRH = r->height;
    const std::int64_t newNH = 1 + std::max(rlH, lH);
    const std::int64_t newRH = 1 + std::max(rrH, newNH);
    add(r->parent, n, p);
    add(n->right, r, rl);
    add(r->left, rl, n);
    add(n->parent, p, r);
    add(n->height, oldNH, newNH);
    add(r->height, oldRH, newRH);
    addVer(p->ver, pV, verBump(pV));
    addVer(n->ver, nV, verBump(nV));
    addVer(r->ver, rV, verBump(rV));
    return vex();
  }

  /// Algorithm 9 (and its mirror): double rotation, fused into one PathCAS.
  ///        p                 p
  ///        n                lr
  ///      /   \             /   \ .
  ///     l     r    =>     l     n
  ///    / \               / \   / \ .
  ///   ll  lr            ll lrl lrr r
  ///      /  \ .
  ///    lrl  lrr
  bool rotateLeftRight(Node* p, Version pV, Node* n, Version nV, Node* l,
                       Version lV, Node* lr, Version lrV) {
    if (!addParentSwing(p, n, lr)) return false;
    Node* const lrl = lr->left;
    std::int64_t lrlH = 0;
    if (lrl != nullptr) {
      const Version lrlV = visit(lrl);
      if (isMarked(lrlV)) return false;
      lrlH = lrl->height;
      add(lrl->parent, lr, l);
      addVer(lrl->ver, lrlV, verBump(lrlV));
    }
    Node* const lrr = lr->right;
    std::int64_t lrrH = 0;
    if (lrr != nullptr) {
      const Version lrrV = visit(lrr);
      if (isMarked(lrrV)) return false;
      lrrH = lrr->height;
      add(lrr->parent, lr, n);
      addVer(lrr->ver, lrrV, verBump(lrrV));
    }
    Node* const r = n->right;
    std::int64_t rH = 0;
    if (r != nullptr) {
      const Version rV = visit(r);
      if (isMarked(rV)) return false;
      rH = r->height;
    }
    Node* const ll = l->left;
    std::int64_t llH = 0;
    if (ll != nullptr) {
      const Version llV = visit(ll);
      if (isMarked(llV)) return false;
      llH = ll->height;
    }
    const std::int64_t oldNH = n->height;
    const std::int64_t oldLH = l->height;
    const std::int64_t oldLRH = lr->height;
    const std::int64_t newNH = 1 + std::max(lrrH, rH);
    const std::int64_t newLH = 1 + std::max(llH, lrlH);
    const std::int64_t newLRH = 1 + std::max(newNH, newLH);
    add(lr->parent, l, p);
    add(lr->left, lrl, l);
    add(l->parent, n, lr);
    add(lr->right, lrr, n);
    add(n->parent, p, lr);
    add(l->right, lr, lrl);
    add(n->left, l, lrr);
    add(n->height, oldNH, newNH);
    add(l->height, oldLH, newLH);
    add(lr->height, oldLRH, newLRH);
    addVer(lr->ver, lrV, verBump(lrV));
    addVer(p->ver, pV, verBump(pV));
    addVer(n->ver, nV, verBump(nV));
    addVer(l->ver, lV, verBump(lV));
    return vex();
  }

  bool rotateRightLeft(Node* p, Version pV, Node* n, Version nV, Node* r,
                       Version rV, Node* rl, Version rlV) {
    if (!addParentSwing(p, n, rl)) return false;
    Node* const rlr = rl->right;
    std::int64_t rlrH = 0;
    if (rlr != nullptr) {
      const Version rlrV = visit(rlr);
      if (isMarked(rlrV)) return false;
      rlrH = rlr->height;
      add(rlr->parent, rl, r);
      addVer(rlr->ver, rlrV, verBump(rlrV));
    }
    Node* const rll = rl->left;
    std::int64_t rllH = 0;
    if (rll != nullptr) {
      const Version rllV = visit(rll);
      if (isMarked(rllV)) return false;
      rllH = rll->height;
      add(rll->parent, rl, n);
      addVer(rll->ver, rllV, verBump(rllV));
    }
    Node* const l = n->left;
    std::int64_t lH = 0;
    if (l != nullptr) {
      const Version lV = visit(l);
      if (isMarked(lV)) return false;
      lH = l->height;
    }
    Node* const rr = r->right;
    std::int64_t rrH = 0;
    if (rr != nullptr) {
      const Version rrV = visit(rr);
      if (isMarked(rrV)) return false;
      rrH = rr->height;
    }
    const std::int64_t oldNH = n->height;
    const std::int64_t oldRH = r->height;
    const std::int64_t oldRLH = rl->height;
    const std::int64_t newNH = 1 + std::max(rllH, lH);
    const std::int64_t newRH = 1 + std::max(rrH, rlrH);
    const std::int64_t newRLH = 1 + std::max(newNH, newRH);
    add(rl->parent, r, p);
    add(rl->right, rlr, r);
    add(r->parent, n, rl);
    add(rl->left, rll, n);
    add(n->parent, p, rl);
    add(r->left, rl, rlr);
    add(n->right, r, rll);
    add(n->height, oldNH, newNH);
    add(r->height, oldRH, newRH);
    add(rl->height, oldRLH, newRLH);
    addVer(rl->ver, rlV, verBump(rlV));
    addVer(p->ver, pV, verBump(pV));
    addVer(n->ver, nV, verBump(nV));
    addVer(r->ver, rV, verBump(rV));
    return vex();
  }

  // ------------------------------------------------------------------

  void walk(Node* n, K lo, K hi, std::uint64_t depth, TreeStats& stats,
            std::uint64_t& depthSum, bool strict) const {
    if (n == nullptr) return;
    const K k = n->key.load();
    PATHCAS_CHECK(k > lo && k < hi);
    PATHCAS_CHECK(!isMarked(n->ver.load()));
    Node* const l = n->left.load();
    Node* const r = n->right.load();
    if (l != nullptr) PATHCAS_CHECK(l->parent.load() == n);
    if (r != nullptr) PATHCAS_CHECK(r->parent.load() == n);
    if (strict) {
      PATHCAS_CHECK(n->height.load() ==
                    1 + std::max(heightOf(l), heightOf(r)));
      const std::int64_t bal = heightOf(l) - heightOf(r);
      PATHCAS_CHECK(bal >= -1 && bal <= 1);
    }
    ++stats.size;
    ++stats.nodeCount;
    stats.keySum += static_cast<std::int64_t>(k);
    depthSum += depth;
    stats.height = std::max(stats.height, depth);
    walk(l, lo, k, depth + 1, stats, depthSum, strict);
    walk(r, k, hi, depth + 1, stats, depthSum, strict);
  }

  void fixAll(Node* n, bool& changed) {
    if (n == nullptr) return;
    fixAll(n->left.load(), changed);
    fixAll(n->right.load(), changed);
    // Re-read children: a rotation below may have restructured.
    Node* const l = n->left.load();
    Node* const r = n->right.load();
    const std::int64_t want = 1 + std::max(heightOf(l), heightOf(r));
    const std::int64_t bal = heightOf(l) - heightOf(r);
    if (n->height.load() != want || bal >= 2 || bal <= -2) {
      rebalance(n);
      changed = true;
    }
  }

  void forEachRec(Node* n, const std::function<void(K, V)>& f) const {
    if (n == nullptr) return;
    forEachRec(n->left.load(), f);
    f(n->key.load(), n->val.load());
    forEachRec(n->right.load(), f);
  }

  void freeSubtree(Node* n) {
    if (n == nullptr) return;
    freeSubtree(n->left.load());
    freeSubtree(n->right.load());
    pool_.destroy(n);
  }

  static constexpr int kMaxRebalanceAttempts = 10000;

  IntBstOptions opt_;
  recl::EbrDomain& ebr_;
  recl::NodePool<Node>& pool_;
  Node* maxRoot_;
  Node* minRoot_;
};

}  // namespace pathcas::ds
