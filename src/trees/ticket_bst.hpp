// External BST with per-node ticket locks, in the style of David, Guerraoui
// & Trigonakis's BST-TK (ASPLOS'15) — the paper's `ext-bst-locks` baseline.
// Searches are wait-free and lock-free of any writes; updates lock the
// affected node(s) (parent for insert; grandparent and parent for delete,
// acquired ancestor-first so no deadlock), validate that the structure still
// matches what the search saw, apply, and unlock.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "recl/ebr.hpp"
#include "recl/pool.hpp"
#include "util/defs.hpp"
#include "util/locks.hpp"

namespace pathcas::ds {

template <typename K = std::int64_t, typename V = std::int64_t>
class TicketBst {
 public:
  static constexpr K kInf1 = std::numeric_limits<K>::max() / 4 - 1;
  static constexpr K kInf2 = std::numeric_limits<K>::max() / 4;

  struct Node {
    const K key;
    const V val;
    const bool leaf;
    TicketLock lock;
    std::atomic<bool> removed{false};
    std::atomic<Node*> left{nullptr};
    std::atomic<Node*> right{nullptr};
    Node(K k, V v, bool isLeaf) : key(k), val(v), leaf(isLeaf) {}
  };

  explicit TicketBst(recl::EbrDomain& ebr = recl::EbrDomain::instance(),
                     recl::NodePool<Node>* pool = nullptr)
      : ebr_(ebr), pool_(pool ? *pool : recl::defaultPool<Node>()) {
    root_ = pool_.alloc(kInf2, V{}, false);
    root_->left.store(pool_.alloc(kInf1, V{}, true));
    root_->right.store(pool_.alloc(kInf2, V{}, true));
  }

  TicketBst(const TicketBst&) = delete;
  TicketBst& operator=(const TicketBst&) = delete;

  // Quiescent-teardown exception: direct recycle, no EBR needed.
  ~TicketBst() { freeSubtree(root_); }

  bool contains(K key) {
    PATHCAS_DCHECK(key < kInf1);
    auto guard = ebr_.pin();
    Node* l = root_;
    while (!l->leaf) {
      l = (key < l->key) ? l->left.load(std::memory_order_acquire)
                         : l->right.load(std::memory_order_acquire);
    }
    return l->key == key;
  }

  /// Best-effort range scan: append the (key, value) pairs with
  /// lo <= key <= hi observed during ONE wait-free traversal, in ascending
  /// key order; returns the number appended. NOT an atomic snapshot — a scan
  /// racing updates may miss keys moved across the frontier or report a mix
  /// of states, as is typical for hand-crafted external BSTs without a
  /// snapshot mechanism. Included for benchmark comparability with the
  /// validated PathCAS scans; quiescent scans are exact.
  std::size_t rangeQuery(K lo, K hi, std::vector<std::pair<K, V>>& out) {
    PATHCAS_DCHECK(hi < kInf1);
    if (lo > hi) return 0;
    auto guard = ebr_.pin();
    const std::size_t base = out.size();
    collectRange(root_, lo, hi, out);
    return out.size() - base;
  }

  bool insert(K key, V val) {
    PATHCAS_DCHECK(key < kInf1);
    auto guard = ebr_.pin();
    Node* newLeaf = pool_.alloc(key, val, true);
    for (;;) {
      Node* p = nullptr;
      Node* l = root_;
      while (!l->leaf) {
        p = l;
        l = (key < l->key) ? l->left.load(std::memory_order_acquire)
                           : l->right.load(std::memory_order_acquire);
      }
      if (l->key == key) {
        pool_.destroy(newLeaf);  // never published: direct recycle is safe
        return false;
      }
      p->lock.lock();
      // Validate under the lock: p still in the tree and still points to l.
      std::atomic<Node*>& childRef = (key < p->key) ? p->left : p->right;
      if (p->removed.load(std::memory_order_acquire) ||
          childRef.load(std::memory_order_acquire) != l) {
        p->lock.unlock();
        continue;
      }
      Node* newSibling = pool_.alloc(l->key, l->val, true);
      Node* newInternal = pool_.alloc(std::max(key, l->key), V{}, false);
      if (key < l->key) {
        newInternal->left.store(newLeaf);
        newInternal->right.store(newSibling);
      } else {
        newInternal->left.store(newSibling);
        newInternal->right.store(newLeaf);
      }
      childRef.store(newInternal, std::memory_order_release);
      p->lock.unlock();
      ebr_.retire(l, pool_);
      return true;
    }
  }

  bool erase(K key) {
    PATHCAS_DCHECK(key < kInf1);
    auto guard = ebr_.pin();
    for (;;) {
      Node* gp = nullptr;
      Node* p = nullptr;
      Node* l = root_;
      while (!l->leaf) {
        gp = p;
        p = l;
        l = (key < l->key) ? l->left.load(std::memory_order_acquire)
                           : l->right.load(std::memory_order_acquire);
      }
      if (l->key != key) return false;
      PATHCAS_CHECK(gp != nullptr);
      gp->lock.lock();
      p->lock.lock();
      std::atomic<Node*>& gpChild = (p == gp->left.load()) ? gp->left
                                                           : gp->right;
      std::atomic<Node*>& pChild = (key < p->key) ? p->left : p->right;
      if (gp->removed.load(std::memory_order_acquire) ||
          p->removed.load(std::memory_order_acquire) ||
          gpChild.load(std::memory_order_acquire) != p ||
          pChild.load(std::memory_order_acquire) != l) {
        p->lock.unlock();
        gp->lock.unlock();
        continue;
      }
      Node* const sibling =
          (&pChild == &p->left) ? p->right.load() : p->left.load();
      p->removed.store(true, std::memory_order_release);
      gpChild.store(sibling, std::memory_order_release);
      p->lock.unlock();
      gp->lock.unlock();
      ebr_.retire(p, pool_);
      ebr_.retire(l, pool_);
      return true;
    }
  }

  std::uint64_t size() const {
    std::uint64_t n = 0;
    countLeaves(root_, n);
    return n - 2;
  }
  std::int64_t keySum() const { return sumLeaves(root_); }

  double avgKeyDepth() const {
    std::uint64_t depthSum = 0, keys = 0, nodes = 0;
    depthWalk(root_, 1, depthSum, keys, nodes);
    return keys ? static_cast<double>(depthSum) / static_cast<double>(keys)
                : 0.0;
  }
  /// Memory actually held for this structure's node type, from pool
  /// counters — the Fig. 5 memory column (via TicketAdapter::footprintBytes).
  std::uint64_t poolFootprintBytes() const { return pool_.footprintBytes(); }

  static constexpr const char* name() { return "ext-bst-locks"; }

 private:

  void depthWalk(Node* n, std::uint64_t depth, std::uint64_t& depthSum,
                 std::uint64_t& keys, std::uint64_t& nodes) const {
    if (n == nullptr) return;
    ++nodes;
    if (n->leaf) {
      if (n->key < kInf1) {
        depthSum += depth;
        ++keys;
      }
      return;
    }
    depthWalk(n->left.load(), depth + 1, depthSum, keys, nodes);
    depthWalk(n->right.load(), depth + 1, depthSum, keys, nodes);
  }

  /// Internal node with key k routes keys < k left, >= k right; sentinel
  /// leaves (>= kInf1) are excluded from results.
  void collectRange(Node* n, K lo, K hi,
                    std::vector<std::pair<K, V>>& out) const {
    if (n == nullptr) return;
    if (n->leaf) {
      if (n->key >= lo && n->key <= hi && n->key < kInf1)
        out.emplace_back(n->key, n->val);
      return;
    }
    if (lo < n->key) collectRange(n->left.load(std::memory_order_acquire), lo, hi, out);
    if (hi >= n->key) collectRange(n->right.load(std::memory_order_acquire), lo, hi, out);
  }

  void countLeaves(Node* n, std::uint64_t& acc) const {
    if (n == nullptr) return;
    if (n->leaf) {
      ++acc;
      return;
    }
    countLeaves(n->left.load(), acc);
    countLeaves(n->right.load(), acc);
  }
  std::int64_t sumLeaves(Node* n) const {
    if (n == nullptr) return 0;
    if (n->leaf)
      return (n->key >= kInf1) ? 0 : static_cast<std::int64_t>(n->key);
    return sumLeaves(n->left.load()) + sumLeaves(n->right.load());
  }
  void freeSubtree(Node* n) {
    if (n == nullptr) return;
    if (!n->leaf) {
      freeSubtree(n->left.load());
      freeSubtree(n->right.load());
    }
    pool_.destroy(n);
  }

  recl::EbrDomain& ebr_;
  recl::NodePool<Node>& pool_;
  Node* root_;
};

}  // namespace pathcas::ds
