// Common definitions shared by every module: cache-line geometry, assertion
// macros, and small compile-time helpers.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace pathcas {

/// Cache line size used for padding/alignment decisions. 64 bytes on x86;
/// we pad to 128 to also defeat adjacent-line prefetcher false sharing.
inline constexpr std::size_t kCacheLine = 64;
inline constexpr std::size_t kNoFalseSharing = 128;

/// Maximum number of registered threads. Descriptor tables and epoch
/// announcement arrays are statically sized by this.
inline constexpr int kMaxThreads = 256;

#define PATHCAS_STRINGIFY_(x) #x
#define PATHCAS_STRINGIFY(x) PATHCAS_STRINGIFY_(x)

/// Always-on invariant check (unlike assert(), survives NDEBUG): these guard
/// protocol invariants whose violation would silently corrupt memory.
#define PATHCAS_CHECK(cond)                                                   \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "PATHCAS_CHECK failed: %s at %s:%d\n", #cond,      \
                   __FILE__, __LINE__);                                       \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

/// Debug-only check for hot paths.
#ifndef NDEBUG
#define PATHCAS_DCHECK(cond) PATHCAS_CHECK(cond)
#else
#define PATHCAS_DCHECK(cond) ((void)0)
#endif

#if defined(__GNUC__)
#define PATHCAS_LIKELY(x) __builtin_expect(!!(x), 1)
#define PATHCAS_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define PATHCAS_LIKELY(x) (x)
#define PATHCAS_UNLIKELY(x) (x)
#endif

/// Best-effort read-prefetch of the cache line at p. Traversals issue it for
/// the likely-next node while visit() pays the current node's validation
/// cost. Purely a hint — never faults, carries no memory-ordering semantics
/// — so it is safe on addresses decoded from racy raw loads. Define
/// PATHCAS_NO_PREFETCH to compile it out (the ablation baseline).
#if defined(__GNUC__) && !defined(PATHCAS_NO_PREFETCH)
#define PATHCAS_PREFETCH(p) __builtin_prefetch((p), 0, 3)
#else
#define PATHCAS_PREFETCH(p) ((void)0)
#endif

}  // namespace pathcas
