// Cache-line padded wrappers to prevent false sharing between per-thread
// slots of global arrays (descriptor tables, epoch announcements, counters).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "util/defs.hpp"

namespace pathcas {

/// A value padded out to a full (double) cache line. Used for elements of
/// per-thread arrays so neighbouring threads never share a line.
template <typename T>
struct alignas(kNoFalseSharing) Padded {
  T value{};

  Padded() = default;
  template <typename... Args>
  explicit Padded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }

 private:
  static constexpr std::size_t kPad =
      (sizeof(T) % kNoFalseSharing)
          ? kNoFalseSharing - (sizeof(T) % kNoFalseSharing)
          : 0;
  [[maybe_unused]] char pad_[kPad == 0 ? 1 : kPad];
};

static_assert(sizeof(Padded<int>) % kNoFalseSharing == 0);
static_assert(alignof(Padded<int>) == kNoFalseSharing);

}  // namespace pathcas
