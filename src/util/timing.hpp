// Timing utilities: wall-clock timers for trial durations, the rdtsc tick
// counter, and the one-time tsc→ns calibration that turns raw ticks into
// nanoseconds everywhere results are reported. Raw rdtsc ticks are NOT a
// portable unit — on x86 they are TSC increments at the (invariant) TSC
// frequency, and the non-x86 fallback returns steady_clock ticks — so every
// reported duration goes through TscCal and only `cycles_per_op` survives as
// an explicitly derived, platform-dependent extra.
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace pathcas {

/// Serialized-enough tick counter for per-op measurement (monotone within a
/// thread; convert to nanoseconds with TscCal::toNs before reporting).
inline std::uint64_t rdtsc() {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// One-time tsc→ns calibration against steady_clock. The first call to
/// nsPerTick() anchors (rdtsc, steady_clock) twice, ~20ms apart, taking each
/// anchor as the tightest of a few back-to-back capture attempts (smallest
/// rdtsc span around the clock read), and caches the ratio for the process
/// lifetime. The bench driver forces calibration before any timed window
/// opens so the 20ms spin never lands inside a measurement; tests calling
/// toNs() directly just pay it once on first use.
class TscCal {
 public:
  /// Nanoseconds per rdtsc tick (≈0.3–0.5 on modern x86; exactly the
  /// steady_clock tick length — usually 1.0 — on the non-x86 fallback).
  static double nsPerTick() {
    static const double v = calibrate();
    return v;
  }
  /// Ticks per nanosecond, for converting ns budgets into tick deadlines.
  static double ticksPerNs() { return 1.0 / nsPerTick(); }
  static double toNs(std::uint64_t ticks) {
    return static_cast<double>(ticks) * nsPerTick();
  }

 private:
  struct Anchor {
    std::uint64_t tsc;
    std::chrono::steady_clock::time_point wall;
  };
  /// Tightest (tsc, wall) pair out of a few attempts: read tsc, clock, tsc,
  /// keep the attempt with the smallest tsc span and pair the clock read
  /// with the span's midpoint.
  static Anchor anchor() {
    Anchor best{};
    std::uint64_t bestSpan = ~0ULL;
    for (int i = 0; i < 8; ++i) {
      const std::uint64_t t0 = rdtsc();
      const auto w = std::chrono::steady_clock::now();
      const std::uint64_t t1 = rdtsc();
      if (t1 - t0 < bestSpan) {
        bestSpan = t1 - t0;
        best = {t0 + (t1 - t0) / 2, w};
      }
    }
    return best;
  }
  static double calibrate() {
    const Anchor a = anchor();
    // Busy-wait (not sleep): a descheduled calibration thread can wake late
    // on a different core, and 20ms of spinning is paid once per process.
    while (std::chrono::steady_clock::now() - a.wall <
           std::chrono::milliseconds(20)) {
    }
    const Anchor b = anchor();
    const double ns = std::chrono::duration<double, std::nano>(
                          b.wall - a.wall).count();
    const double ticks = static_cast<double>(b.tsc - a.tsc);
    return ticks > 0.0 ? ns / ticks : 1.0;
  }
};

class StopWatch {
 public:
  StopWatch() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double elapsedSeconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  std::uint64_t elapsedMillis() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(clock::now() -
                                                              start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace pathcas
