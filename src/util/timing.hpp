// Timing utilities: wall-clock timers for trial durations and rdtsc cycle
// counting for the per-operation factor analysis (Fig. 5 / Figs. 26-27).
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace pathcas {

/// Serialized-enough cycle counter for per-op averages (not for ns precision).
inline std::uint64_t rdtsc() {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

class StopWatch {
 public:
  StopWatch() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double elapsedSeconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  std::uint64_t elapsedMillis() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(clock::now() -
                                                              start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace pathcas
