// Timing utilities: wall-clock timers for trial durations, the rdtsc tick
// counter, and the one-time tsc→ns calibration that turns raw ticks into
// nanoseconds everywhere results are reported. Raw rdtsc ticks are NOT a
// portable unit — on x86 they are TSC increments at the (invariant) TSC
// frequency, and the non-x86 fallback returns steady_clock ticks — so every
// reported duration goes through TscCal and only `cycles_per_op` survives as
// an explicitly derived, platform-dependent extra.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace pathcas {

/// Serialized-enough tick counter for per-op measurement (monotone within a
/// thread; convert to nanoseconds with TscCal::toNs before reporting).
inline std::uint64_t rdtsc() {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// One-time tsc→ns calibration against steady_clock. The first call to
/// nsPerTick() anchors (rdtsc, steady_clock) twice, ~20ms apart, taking each
/// anchor as the tightest of a few back-to-back capture attempts (smallest
/// rdtsc span around the clock read), and caches the ratio for the process
/// lifetime. The bench driver forces calibration before any timed window
/// opens so the 20ms spin never lands inside a measurement; tests calling
/// toNs() directly just pay it once on first use.
class TscCal {
 public:
  /// Nanoseconds per rdtsc tick (≈0.3–0.5 on modern x86; exactly the
  /// steady_clock tick length — usually 1.0 — on the non-x86 fallback).
  static double nsPerTick() {
    static const double v = calibrate();
    return v;
  }
  /// Ticks per nanosecond, for converting ns budgets into tick deadlines.
  static double ticksPerNs() { return 1.0 / nsPerTick(); }
  static double toNs(std::uint64_t ticks) {
    return static_cast<double>(ticks) * nsPerTick();
  }

 private:
  struct Anchor {
    std::uint64_t tsc;
    std::chrono::steady_clock::time_point wall;
  };
  /// Tightest (tsc, wall) pair out of a few attempts: read tsc, clock, tsc,
  /// keep the attempt with the smallest tsc span and pair the clock read
  /// with the span's midpoint.
  static Anchor anchor() {
    Anchor best{};
    std::uint64_t bestSpan = ~0ULL;
    for (int i = 0; i < 8; ++i) {
      const std::uint64_t t0 = rdtsc();
      const auto w = std::chrono::steady_clock::now();
      const std::uint64_t t1 = rdtsc();
      if (t1 - t0 < bestSpan) {
        bestSpan = t1 - t0;
        best = {t0 + (t1 - t0) / 2, w};
      }
    }
    return best;
  }
  static double calibrate() {
    const Anchor a = anchor();
    // Busy-wait (not sleep): a descheduled calibration thread can wake late
    // on a different core, and 20ms of spinning is paid once per process.
    while (std::chrono::steady_clock::now() - a.wall <
           std::chrono::milliseconds(20)) {
    }
    const Anchor b = anchor();
    const double ns = std::chrono::duration<double, std::nano>(
                          b.wall - a.wall).count();
    const double ticks = static_cast<double>(b.tsc - a.tsc);
    return ticks > 0.0 ? ns / ticks : 1.0;
  }
};

/// Virtual-clock hook for TTL logic. Everything that compares expiry
/// deadlines (structs/lru_cache.hpp and friends) reads time through
/// TtlClock::nowNs() instead of rdtsc/steady_clock directly, so tests can
/// pin and advance time deterministically — no sleeps, no flaky margins.
///
/// Modes:
///   - real (default): nowNs() = TscCal::toNs(rdtsc()). Monotone per thread,
///     cheap (one rdtsc + one multiply), and the only property TTL needs is
///     "advances roughly with wall time".
///   - virtual: a test called useVirtual(startNs); nowNs() returns the pinned
///     value until advance()/set() moves it. The pinned value is >= 1 so the
///     mode flag and the time share one atomic word (0 = real mode).
///
/// Process-wide by design: TTL deadlines are compared across threads, so a
/// per-thread clock would let one thread expire an entry another thread just
/// wrote with a "later" deadline. Tests that pin the clock must not run
/// concurrently with tests that expect real time (gtest runs serially, and
/// each test restores real mode via useReal()).
class TtlClock {
 public:
  /// Current time in nanoseconds (virtual if pinned, else calibrated tsc).
  static std::uint64_t nowNs() {
    const std::uint64_t v = state().load(std::memory_order_acquire);
    if (v != 0) return v;
    return static_cast<std::uint64_t>(TscCal::toNs(rdtsc()));
  }
  static bool isVirtual() {
    return state().load(std::memory_order_acquire) != 0;
  }
  /// Enter virtual mode at `startNs` (clamped to >= 1; 0 means real mode).
  static void useVirtual(std::uint64_t startNs = 1) {
    state().store(startNs == 0 ? 1 : startNs, std::memory_order_release);
  }
  /// Advance the virtual clock. Undefined in real mode (checked by callers'
  /// tests, not here — this header stays assert-free).
  static void advance(std::uint64_t deltaNs) {
    state().fetch_add(deltaNs, std::memory_order_acq_rel);
  }
  /// Jump the virtual clock to an absolute value (>= 1).
  static void set(std::uint64_t nowNsValue) {
    state().store(nowNsValue == 0 ? 1 : nowNsValue,
                  std::memory_order_release);
  }
  /// Leave virtual mode; nowNs() reads the tsc again.
  static void useReal() { state().store(0, std::memory_order_release); }

 private:
  static std::atomic<std::uint64_t>& state() {
    static std::atomic<std::uint64_t> s{0};
    return s;
  }
};

class StopWatch {
 public:
  StopWatch() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double elapsedSeconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  std::uint64_t elapsedMillis() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(clock::now() -
                                                              start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace pathcas
