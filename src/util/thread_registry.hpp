// Thread registry: assigns each participating thread a small dense id in
// [0, kMaxThreads). Per-thread descriptor tables (KCAS, DCSS, PathCAS) and
// epoch announcement slots are indexed by this id. Registration is RAII and
// ids are recycled when a thread deregisters, so short-lived benchmark/test
// threads do not exhaust the table.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/defs.hpp"
#include "util/padding.hpp"

namespace pathcas {

namespace detail {
/// The calling thread's dense id, or -1 before registration. Lives in the
/// header so tid() inlines to a TLS load plus a never-taken branch — it is
/// on the staging hot path (begin/addEntry/visit resolve it per call).
/// Written only by ThreadRegistry.
inline thread_local int tlsTid = -1;
}  // namespace detail

class ThreadRegistry {
 public:
  static ThreadRegistry& instance();

  /// Register the calling thread if needed; returns its dense id.
  int registerThread();

  /// Release the calling thread's id (called by ThreadGuard destructor).
  void deregisterThread();

  /// Id of the calling thread; registers lazily on first use.
  static int tid() {
    const int t = detail::tlsTid;
    if (PATHCAS_UNLIKELY(t < 0)) return instance().registerThread();
    return t;
  }

  /// Upper bound (exclusive) on ids ever handed out; iterate [0, maxTid())
  /// when scanning announcement arrays.
  int maxTid() const { return maxTid_.load(std::memory_order_acquire); }

 private:
  ThreadRegistry() = default;
  Padded<std::atomic<bool>> used_[kMaxThreads];
  std::atomic<int> maxTid_{0};
};

/// Optional RAII helper: deregisters on scope exit. Benchmark worker threads
/// hold one so ids recycle between trials. Threads that never explicitly
/// create one keep their id for process lifetime (safe, just not recycled).
class ThreadGuard {
 public:
  ThreadGuard() : tid_(ThreadRegistry::instance().registerThread()) {}
  ~ThreadGuard() { ThreadRegistry::instance().deregisterThread(); }
  ThreadGuard(const ThreadGuard&) = delete;
  ThreadGuard& operator=(const ThreadGuard&) = delete;
  int tid() const { return tid_; }

 private:
  int tid_;
};

}  // namespace pathcas
