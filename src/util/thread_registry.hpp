// Thread registry: assigns each participating thread a small dense id in
// [0, kMaxThreads). Per-thread descriptor tables (KCAS, DCSS, PathCAS) and
// epoch announcement slots are indexed by this id. Registration is RAII and
// ids are recycled when a thread deregisters, so short-lived benchmark/test
// threads do not exhaust the table.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/defs.hpp"
#include "util/padding.hpp"

namespace pathcas {

class ThreadRegistry {
 public:
  static ThreadRegistry& instance();

  /// Register the calling thread if needed; returns its dense id.
  int registerThread();

  /// Release the calling thread's id (called by ThreadGuard destructor).
  void deregisterThread();

  /// Id of the calling thread; registers lazily on first use.
  static int tid();

  /// Upper bound (exclusive) on ids ever handed out; iterate [0, maxTid())
  /// when scanning announcement arrays.
  int maxTid() const { return maxTid_.load(std::memory_order_acquire); }

 private:
  ThreadRegistry() = default;
  Padded<std::atomic<bool>> used_[kMaxThreads];
  std::atomic<int> maxTid_{0};
};

/// Optional RAII helper: deregisters on scope exit. Benchmark worker threads
/// hold one so ids recycle between trials. Threads that never explicitly
/// create one keep their id for process lifetime (safe, just not recycled).
class ThreadGuard {
 public:
  ThreadGuard() : tid_(ThreadRegistry::instance().registerThread()) {}
  ~ThreadGuard() { ThreadRegistry::instance().deregisterThread(); }
  ThreadGuard(const ThreadGuard&) = delete;
  ThreadGuard& operator=(const ThreadGuard&) = delete;
  int tid() const { return tid_; }

 private:
  int tid_;
};

}  // namespace pathcas
