#include "util/thread_registry.hpp"

namespace pathcas {

using detail::tlsTid;

ThreadRegistry& ThreadRegistry::instance() {
  static ThreadRegistry registry;
  return registry;
}

int ThreadRegistry::registerThread() {
  if (tlsTid >= 0) return tlsTid;
  for (int i = 0; i < kMaxThreads; ++i) {
    bool expected = false;
    if (used_[i]->compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
      tlsTid = i;
      // Grow the scan bound monotonically.
      int cur = maxTid_.load(std::memory_order_relaxed);
      while (cur < i + 1 && !maxTid_.compare_exchange_weak(
                                cur, i + 1, std::memory_order_acq_rel)) {
      }
      return i;
    }
  }
  PATHCAS_CHECK(!"thread registry exhausted (kMaxThreads)");
  return -1;
}

void ThreadRegistry::deregisterThread() {
  if (tlsTid < 0) return;
  used_[tlsTid]->store(false, std::memory_order_release);
  tlsTid = -1;
}

}  // namespace pathcas
