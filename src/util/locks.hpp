// Lock primitives used by the baseline data structures and the HTM emulation:
//   TatasLock  — test-and-test-and-set spinlock (HTM-emulation global lock,
//                TLE fallback lock)
//   TicketLock — FIFO spinlock (the ticket-lock external BST baseline)
//   SeqLock    — writer-exclusive versioned lock (NOrec's global sequence
//                lock, OCC-AVL per-node version locks)
// All satisfy BasicLockable where sensible so std::lock_guard applies.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/backoff.hpp"
#include "util/defs.hpp"

namespace pathcas {

class TatasLock {
 public:
  void lock() {
    Backoff bo;
    for (;;) {
      if (!locked_.load(std::memory_order_relaxed) &&
          !locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      bo.pause();
    }
  }

  bool try_lock() {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { locked_.store(false, std::memory_order_release); }

  bool isLocked() const { return locked_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> locked_{false};
};

class TicketLock {
 public:
  void lock() {
    const std::uint32_t ticket =
        next_.fetch_add(1, std::memory_order_relaxed);
    while (serving_.load(std::memory_order_acquire) != ticket) cpuRelax();
  }

  bool try_lock() {
    std::uint32_t serving = serving_.load(std::memory_order_acquire);
    std::uint32_t expected = serving;
    // Only take a ticket when nobody is queued: CAS next from serving.
    return next_.compare_exchange_strong(expected, serving + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  void unlock() {
    serving_.store(serving_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
  }

 private:
  std::atomic<std::uint32_t> next_{0};
  std::atomic<std::uint32_t> serving_{0};
};

/// Sequence lock: even = unlocked version, odd = write-locked.
/// Readers: v1 = beginRead(); ...reads...; if (!validateRead(v1)) retry.
class SeqLock {
 public:
  std::uint64_t beginRead() const {
    std::uint64_t v;
    while ((v = ver_.load(std::memory_order_acquire)) & 1) cpuRelax();
    return v;
  }

  bool validateRead(std::uint64_t v1) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return ver_.load(std::memory_order_acquire) == v1;
  }

  /// Try to move even version v to the locked state v+1.
  bool tryLock(std::uint64_t v) {
    return !(v & 1) && ver_.compare_exchange_strong(
                           v, v + 1, std::memory_order_acquire,
                           std::memory_order_relaxed);
  }

  void lock() {
    Backoff bo;
    for (;;) {
      std::uint64_t v = ver_.load(std::memory_order_relaxed);
      if (!(v & 1) && tryLock(v)) return;
      bo.pause();
    }
  }

  /// Release, publishing a new version (v+2 from the pre-lock value).
  void unlock() { ver_.fetch_add(1, std::memory_order_release); }

  std::uint64_t rawVersion() const {
    return ver_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint64_t> ver_{0};
};

}  // namespace pathcas
