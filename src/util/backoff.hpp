// Bounded exponential backoff for retry loops (contention management for
// vexec retries, lock acquisition, and STM aborts).
#pragma once

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace pathcas {

inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  asm volatile("" ::: "memory");
#endif
}

/// Bounded exponential backoff: spin 2^k pause instructions, doubling up to a
/// cap. reset() after success.
class Backoff {
 public:
  explicit Backoff(std::uint32_t minSpins = 1, std::uint32_t maxSpins = 1024)
      : cur_(minSpins), min_(minSpins), max_(maxSpins) {}

  void pause() {
    for (std::uint32_t i = 0; i < cur_; ++i) cpuRelax();
    if (cur_ < max_) cur_ <<= 1;
  }

  void reset() { cur_ = min_; }

 private:
  std::uint32_t cur_, min_, max_;
};

}  // namespace pathcas
