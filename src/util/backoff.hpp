// Bounded exponential backoff for retry loops (contention management for
// vexec retries, lock acquisition, and STM aborts).
#pragma once

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace pathcas {

inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  asm volatile("" ::: "memory");
#endif
}

/// Bounded exponential backoff: spin 2^k pause instructions, doubling up to a
/// cap. reset() after success.
class Backoff {
 public:
  explicit Backoff(std::uint32_t minSpins = 1, std::uint32_t maxSpins = 1024)
      : cur_(minSpins), min_(minSpins), max_(maxSpins) {}

  void pause() {
    for (std::uint32_t i = 0; i < cur_; ++i) cpuRelax();
    if (cur_ < max_) cur_ <<= 1;
  }

  void reset() { cur_ = min_; }

 private:
  std::uint32_t cur_, min_, max_;
};

/// Capped decorrelated-jitter backoff (the AWS "decorrelated jitter"
/// schedule): each pause spins a uniform draw from [base, min(cap, 3*prev)],
/// where prev is the previous draw. Unlike deterministic exponential
/// backoff, two threads that collided once do not retry in lockstep forever
/// — the jitter decorrelates their schedules — while the hard cap keeps the
/// worst-case pause bounded. The RNG is a self-contained xorshift64* seeded
/// by the caller (address, tid, ...), so no global state and no libc rand.
class JitterBackoff {
 public:
  explicit JitterBackoff(std::uint64_t seed, std::uint32_t baseSpins = 16,
                         std::uint32_t capSpins = 4096)
      : base_(baseSpins > 0 ? baseSpins : 1),
        cap_(capSpins > base_ ? capSpins : base_),
        prev_(base_),
        state_(seed | 1) {}  // xorshift state must be nonzero

  void pause() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    const std::uint64_t r = state_ * 0x2545f4914f6cdd1dULL;
    const std::uint64_t hi =
        std::uint64_t{prev_} * 3 < cap_ ? std::uint64_t{prev_} * 3 : cap_;
    const std::uint64_t span = hi > base_ ? hi - base_ + 1 : 1;
    prev_ = static_cast<std::uint32_t>(base_ + r % span);
    for (std::uint32_t i = 0; i < prev_; ++i) cpuRelax();
  }

  void reset() { prev_ = base_; }

 private:
  std::uint32_t base_, cap_, prev_;
  std::uint64_t state_;
};

}  // namespace pathcas
