// Fast per-thread pseudo-random number generation for workload drivers and
// randomized levels (skip list). xoshiro256** seeded via splitmix64, plus a
// rejection-free bounded-uniform helper. Skewed-key distributions (Zipfian,
// hotspot, latest) live in src/bench_fw/workload.hpp, built on top of this.
#pragma once

#include <cstdint>

namespace pathcas {

/// The splitmix64 finalizer: a stateless, bijective 64-bit mixer. Also used
/// on its own as a fixed hash (e.g. scrambling Zipfian ranks across the key
/// space in bench_fw/workload.hpp).
inline std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// splitmix64: used only for seeding (recommended by the xoshiro authors).
inline std::uint64_t splitmix64(std::uint64_t& state) {
  return mix64(state += 0x9e3779b97f4a7c15ULL);
}

/// xoshiro256** 1.0 — fast, high-quality, 2^256-1 period.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) via Lemire's multiply-shift reduction.
  std::uint64_t nextBounded(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double nextDouble() { return (next() >> 11) * 0x1.0p-53; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace pathcas
