// Fast per-thread pseudo-random number generation for workload drivers and
// randomized levels (skip list). xoshiro256** seeded via splitmix64, plus a
// rejection-free bounded-uniform helper and a Zipf generator for skewed keys.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace pathcas {

/// splitmix64: used only for seeding (recommended by the xoshiro authors).
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality, 2^256-1 period.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) via Lemire's multiply-shift reduction.
  std::uint64_t nextBounded(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double nextDouble() { return (next() >> 11) * 0x1.0p-53; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Zipf-distributed integers in [1, n] with parameter theta, using the
/// Gray et al. computation with precomputed constants (fast per-sample).
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed = 1)
      : n_(n), theta_(theta), rng_(seed) {
    zetan_ = zeta(n_, theta_);
    const double zeta2 = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  std::uint64_t next() {
    const double u = rng_.nextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 1;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 2;
    return 1 + static_cast<std::uint64_t>(
                   static_cast<double>(n_) *
                   std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0;
    for (std::uint64_t i = 1; i <= n; ++i)
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
  }
  std::uint64_t n_;
  double theta_, zetan_, alpha_, eta_;
  Xoshiro256 rng_;
};

}  // namespace pathcas
