#include "htm/htm.hpp"

namespace pathcas::htm {
namespace {

TatasLock gLock;
std::atomic<double> gAbortProbability{0.0};
Padded<TxStats> gStats[kMaxThreads];
Padded<Xoshiro256> gRng[kMaxThreads];

TxStats& myStats() { return gStats[ThreadRegistry::tid()].value; }

}  // namespace

namespace detail {

bool injectAbort() {
  const double p = gAbortProbability.load(std::memory_order_relaxed);
  return p > 0.0 && gRng[ThreadRegistry::tid()]->nextDouble() < p;
}

void recordCommit() { ++myStats().commits; }

void recordAbort(Abort code) {
  TxStats& s = myStats();
  ++s.aborts;
  ++s.abortsByCode[static_cast<std::uint32_t>(code)];
}

}  // namespace detail

TatasLock& globalLock() { return gLock; }

void setAbortInjection(double probability) {
  gAbortProbability.store(probability, std::memory_order_relaxed);
}

void noteFallback() { ++myStats().fallbacks; }

TxStats totalStats() {
  TxStats total;
  const int n = ThreadRegistry::instance().maxTid();
  for (int i = 0; i < kMaxThreads && i < n; ++i) {
    const TxStats& s = gStats[i].value;
    total.commits += s.commits;
    total.aborts += s.aborts;
    total.fallbacks += s.fallbacks;
    for (int c = 0; c < 6; ++c) total.abortsByCode[c] += s.abortsByCode[c];
  }
  return total;
}

void resetStats() {
  for (auto& s : gStats) s.value = TxStats{};
}

}  // namespace pathcas::htm
