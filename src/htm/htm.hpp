// Hardware transactional memory facade (Algorithm 7's substrate).
//
// Two backends:
//  * RTM (compile with -DPATHCAS_ENABLE_RTM=ON): Intel TSX _xbegin/_xend.
//    Checked at runtime too (rtmAvailable): on a host without the RTM
//    feature bit the same binary silently uses the emulation instead.
//  * Emulated (default, and the only option on this reproduction's hardware):
//    a single global test-and-test-and-set lock provides transaction
//    atomicity, with optional randomized abort injection so fallback paths
//    are exercised. See docs/ARCHITECTURE.md ("HTM emulation") for why the
//    emulation composes safely
//    with the lock-free software path: every fast-path transaction AND every
//    software fallback of a fast-path-enabled structure serializes on
//    globalLock(), while readers/helpers remain lock-free.
//
// A transaction body is a callable receiving a Tx&; it may call
// tx.abort(code) (modelled as an exception under emulation, _xabort under
// RTM). Bodies must perform all their checks before their first write —
// the emulated backend cannot roll back writes. Algorithm 7 has this shape
// naturally.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#if defined(PATHCAS_HAVE_RTM)
#include <immintrin.h>  // _xbegin/_xend/_xabort; requires -mrtm (set by CMake)
#endif

#include "util/defs.hpp"
#include "util/locks.hpp"
#include "util/padding.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"

namespace pathcas::htm {

/// Explicit abort codes used by PathCAS / MCMS / TLE fast paths.
enum class Abort : std::uint32_t {
  kNone = 0,        // committed
  kOld = 1,         // an address held an unexpected (non-descriptor) value
  kDescriptor = 2,  // an address held a descriptor: must take the slow path
  kLockHeld = 3,    // TLE: fallback lock observed held
  kConflict = 4,    // (RTM) data conflict / (emulated) injected abort
  kCapacity = 5,    // (RTM) capacity abort
};

struct TxStats {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t abortsByCode[6] = {};
  std::uint64_t fallbacks = 0;
};

struct TxAbortException {
  Abort code;
};

#if defined(PATHCAS_HAVE_RTM)
/// Runtime TSX detection: an RTM-enabled build still degrades to the
/// emulation on hosts whose CPU lacks the feature bit (executing _xbegin
/// there would be an illegal instruction, not an abort).
inline bool rtmAvailable() {
  static const bool available = __builtin_cpu_supports("rtm");
  return available;
}

namespace detail {
/// _xabort demands an 8-bit immediate, so the runtime code is dispatched to
/// a constant per enumerator. Inside a transaction this does not return
/// (control resumes at _xbegin with the explicit code); outside one XABORT
/// is an architectural no-op and the caller must still unwind.
inline void xabortWith(Abort code) {
  switch (code) {
    case Abort::kOld: _xabort(1); break;
    case Abort::kDescriptor: _xabort(2); break;
    case Abort::kLockHeld: _xabort(3); break;
    case Abort::kConflict: _xabort(4); break;
    case Abort::kCapacity: _xabort(5); break;
    case Abort::kNone: _xabort(0xff); break;  // tx.abort(kNone): caller bug
  }
}
}  // namespace detail
#endif

class Tx {
 public:
  /// Abort the transaction with an explicit code. Does not return.
  /// Under RTM the abort must be the XABORT instruction itself — throwing
  /// inside a hardware transaction would abort it as a plain conflict (the
  /// unwinder allocates) and lose the code. Under emulation (or outside a
  /// transaction) the exception performs the rollback.
  [[noreturn]] void abort(Abort code) {
#if defined(PATHCAS_HAVE_RTM)
    if (rtmAvailable()) detail::xabortWith(code);
#endif
    throw TxAbortException{code};
  }
};

namespace detail {
bool injectAbort();          // emulation: roll the abort-injection dice
void recordCommit();
void recordAbort(Abort code);
}  // namespace detail

/// The global fallback/emulation lock. Fast-path fallbacks (PathCAS+, MCMS+)
/// and TLE's fallback path acquire it; under emulation, run() holds it for
/// the duration of each transaction.
TatasLock& globalLock();

/// Run one transaction attempt. Returns Abort::kNone on commit, else the
/// abort code. The caller owns the retry policy. Templated so small bodies
/// inline without std::function overhead.
template <typename Body>
Abort run(Body&& body) {
  // Abort injection applies to both backends so fallback paths stay
  // exercisable in tests regardless of the hardware.
  if (detail::injectAbort()) {
    detail::recordAbort(Abort::kConflict);
    return Abort::kConflict;
  }
#if defined(PATHCAS_HAVE_RTM)
  if (PATHCAS_LIKELY(rtmAvailable())) {
    const unsigned status = _xbegin();
    if (status == _XBEGIN_STARTED) {
      Tx tx;
      try {
        body(tx);
      } catch (const TxAbortException& e) {
        detail::xabortWith(e.code);
      }
      _xend();
      detail::recordCommit();
      return Abort::kNone;
    }
    Abort code = Abort::kConflict;
    if (status & _XABORT_CAPACITY) code = Abort::kCapacity;
    if (status & _XABORT_EXPLICIT) {
      // Clamp unknown explicit codes (e.g. xabortWith's 0xff backstop, or a
      // foreign XABORT) to kConflict: recordAbort indexes a 6-entry array.
      const unsigned c = _XABORT_CODE(status);
      code = (c >= 1 && c <= 5) ? static_cast<Abort>(c) : Abort::kConflict;
    }
    detail::recordAbort(code);
    return code;
  }
#endif
  TatasLock& lock = globalLock();
  lock.lock();
  Tx tx;
  try {
    body(tx);
  } catch (const TxAbortException& e) {
    lock.unlock();
    detail::recordAbort(e.code);
    return e.code;
  } catch (...) {
    lock.unlock();  // foreign exception: do not leak the emulation lock
    throw;
  }
  lock.unlock();
  detail::recordCommit();
  return Abort::kNone;
}

/// Probability in [0,1] that an emulated transaction aborts (Abort::kConflict)
/// before running its body. Used by tests/benches to exercise fallbacks.
void setAbortInjection(double probability);

/// Record a fallback-taken event for the calling thread (fast paths call this
/// when they give up on transactions).
void noteFallback();

/// Aggregate statistics across all threads (not linearizable; for reporting).
TxStats totalStats();
void resetStats();

}  // namespace pathcas::htm
