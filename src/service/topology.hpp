// hwloc-free CPU topology discovery for the sharded map's per-socket
// placement policy: parse /sys/devices/system/cpu/cpu<N>/topology/
// physical_package_id to learn which package (socket) each online CPU
// belongs to. When the sysfs tree is unavailable (non-Linux, containers
// with a masked /sys) the topology degrades to a single package, which
// makes every placement decision collapse to round-robin — the documented
// fallback, never an error.
//
// The paper's multi-socket evaluation (2-4 socket machines) motivates this:
// a shard whose KCAS/EBR domains and node pool live on one socket should be
// operated by threads on that socket, or every descriptor CAS pays a
// cross-socket hop. pinShardThread() is the optional enforcement — it is
// advisory (best-effort sched_setaffinity, ignored on failure) and off by
// default in the sharded map.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#endif

namespace pathcas::service {

/// Package (socket) map of the machine's online CPUs.
struct CpuTopology {
  /// packageOf[cpu] = physical package id (dense-renumbered from 0).
  std::vector<int> packageOf;
  int packages = 1;

  int cpus() const { return static_cast<int>(packageOf.size()); }
};

/// Parse /sys. Returns a single-package topology (with at least one CPU) on
/// any failure, so callers never need an error path.
inline CpuTopology detectCpuTopology() {
  CpuTopology topo;
  std::vector<int> rawIds;
  for (int cpu = 0;; ++cpu) {
    char path[128];
    std::snprintf(path, sizeof path,
                  "/sys/devices/system/cpu/cpu%d/topology/physical_package_id",
                  cpu);
    std::FILE* f = std::fopen(path, "r");
    if (f == nullptr) break;
    int pkg = 0;
    const bool ok = std::fscanf(f, "%d", &pkg) == 1;
    std::fclose(f);
    rawIds.push_back(ok ? pkg : 0);
  }
  if (rawIds.empty()) {
    topo.packageOf = {0};
    topo.packages = 1;
    return topo;
  }
  // Dense-renumber package ids (sysfs ids can be sparse, e.g. {0, 2}).
  std::vector<int> seen;
  topo.packageOf.resize(rawIds.size());
  for (std::size_t i = 0; i < rawIds.size(); ++i) {
    int dense = -1;
    for (std::size_t j = 0; j < seen.size(); ++j) {
      if (seen[j] == rawIds[i]) dense = static_cast<int>(j);
    }
    if (dense < 0) {
      dense = static_cast<int>(seen.size());
      seen.push_back(rawIds[i]);
    }
    topo.packageOf[i] = dense;
  }
  topo.packages = static_cast<int>(seen.size());
  return topo;
}

/// Process-lifetime cached topology (detection reads sysfs once).
inline const CpuTopology& cpuTopology() {
  static const CpuTopology topo = detectCpuTopology();
  return topo;
}

/// Package a shard is placed on: shards are dealt round-robin across
/// packages, so with S >= packages every package hosts ~S/packages shards
/// and with S < packages each shard gets a package to itself.
inline int packageForShard(int shard, const CpuTopology& topo = cpuTopology()) {
  return topo.packages > 0 ? shard % topo.packages : 0;
}

/// Best-effort: restrict the calling thread to the CPUs of `shard`'s
/// package. Returns true iff an affinity mask was applied; false (and no
/// side effect) when the platform has no affinity syscall, the topology has
/// a single package (nothing to separate), or the syscall fails — callers
/// treat false as "round-robin placement", never as an error.
inline bool pinShardThread(int shard,
                           const CpuTopology& topo = cpuTopology()) {
#if defined(__linux__)
  if (topo.packages <= 1) return false;
  const int pkg = packageForShard(shard, topo);
  cpu_set_t mask;
  CPU_ZERO(&mask);
  bool any = false;
  for (int cpu = 0; cpu < topo.cpus(); ++cpu) {
    if (topo.packageOf[static_cast<std::size_t>(cpu)] == pkg) {
      CPU_SET(cpu, &mask);
      any = true;
    }
  }
  if (!any) return false;
  return sched_setaffinity(0, sizeof(mask), &mask) == 0;
#else
  (void)shard;
  (void)topo;
  return false;
#endif
}

}  // namespace pathcas::service
