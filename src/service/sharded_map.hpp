// ShardedMap<Tree>: a partitioned ordered-map service over any PathCAS
// ordered structure exposing the tree protocol (KeyType/ValueType typedefs,
// insert/erase/contains/get, rangeQuery + rangeQueryCapture, the quiescent
// inspectors). This is the sharding escape valve for the high-skew regimes
// the skew_sweep bench exposes, and the architectural home for the paper's
// multi-socket setups: N shards, each owning a full private DomainSet
// (KcasDomain + EbrDomain + NodePools, recl/domain_set.hpp), so shards never
// touch each other's descriptor tables, epoch announcements, or free lists.
//
// Key partitioning: the key space [0, keySpace) is range-partitioned into N
// contiguous slices — shardOf(k) = floor(k*N / keySpace) — so range queries
// touch only the shards their window overlaps and per-shard scans
// concatenate in ascending key order. Keys outside [0, keySpace) are legal
// and route (deterministically) to the boundary shards. Note that the bench
// workloads' Zipfian generator *scrambles* ranks across the key space
// (workload.hpp), so range partitioning also splits the hot set across
// shards — exactly the contention relief sharding is for.
//
// Every operation on a shard's tree runs under that shard's
// k::ScopedDomain: a (tid, seq) descriptor reference is only resolvable in
// the domain that produced it, so the map never lets a structure touch the
// wrong domain. One thread may operate on any shard (the scope is per-call);
// thread→shard *affinity* is advisory and used by bulkLoad: workers favor
// their home shard's chunk queue first and can optionally be pinned to the
// shard's socket (service/topology.hpp, Config::pinThreads).
//
// Cross-shard linearizable range query (the stitching protocol):
//   Phase 0  pin the EBR domain of every overlapped shard, and keep the pins
//            across both phases — retired nodes then cannot be RECYCLED, so
//            every captured version word stays mapped and monotonic.
//   Phase 1  per overlapped shard, in ascending order: one validated scan
//            (rangeQueryCapture) that yields the shard's pairs and the
//            visited ⟨version-word, observed⟩ set. A validated scan proves
//            the shard's snapshot was atomic at some instant during phase 1.
//   Phase 2  re-read every captured version word (through the owning
//            shard's domain, helping in-flight operations). Versions only
//            grow while memory is unrecycled, so "equal at recheck" means
//            "unchanged since it was visited" — hence every shard's snapshot
//            still held, simultaneously, at the instant phase 2 began. That
//            common instant is the query's linearization point.
//   Any phase-1 validation failure or phase-2 mismatch discards everything
//   and retries the whole window (with backoff). Single-shard windows skip
//   the protocol and delegate to the tree's own validated scan.
//
// Width contract: each PER-SHARD scan is bounded by pathcas::kMaxVisited
// examined nodes (paper footnote 2) — sharding multiplies the total window
// capacity by N, another practical win of the partitioning.
//
// Flat combining (Config::combineWindow >= 2, or PATHCAS_COMBINE_WINDOW):
// every update routes through its shard's combiner. A thread deposits its op
// in a per-(shard, tid) publication slot and spins; whoever wins the shard's
// combiner lock gathers up to combineWindow pending ops, merges same-key ops
// (duplicate inserts/erases collapse, and an insert+erase pair on one key
// ANNIHILATES — both linearize, zero words staged), and commits the rest via
// the trees' insertBatch/eraseBatch wide KCAS. A combiner that finds only its
// own op falls back to a direct per-op commit, so the low-contention cost is
// one uncontended exchange. The combiner lock is the shard's mutation
// license: combined windows, map-level batch ops, everything that writes the
// shard serializes on it (reads stay direct — they are validated snapshots
// either way). Linearization of a combined window: ops on distinct keys
// linearize at the window's KCAS commits; same-key groups linearize
// back-to-back in deposit order at that same commit (for an annihilated
// pair, at the probe) — legal because every op in the window is concurrent
// with the whole window: each depositor is still spinning in its call until
// the combiner publishes its result.
//
// bulkLoad(sortedKeys, nthreads): parallel construction replacing the serial
// prefill loop. Keys are pre-sorted; each shard's slice is found by binary
// search, reordered median-first (balanced BFS order, so even the plain BST
// lands at logarithmic depth), cut into chunks, and dispensed to workers via
// per-shard atomic cursors. Workers start on their home shard (affinity) and
// steal from the others when theirs drains. Returns the keysum actually
// inserted (duplicates insert once), which is exactly the prefill-sum
// contract the bench driver validates against.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "bench_fw/latency.hpp"
#include "kcas/domain.hpp"
#include "recl/domain_set.hpp"
#include "service/topology.hpp"
#include "util/backoff.hpp"
#include "util/defs.hpp"
#include "util/padding.hpp"
#include "util/thread_registry.hpp"
#include "util/timing.hpp"

namespace pathcas::service {

template <typename Tree>
class ShardedMap {
 public:
  using K = typename Tree::KeyType;
  using V = typename Tree::ValueType;
  using Options = typename Tree::OptionsType;
  using Node = typename Tree::Node;

  struct Config {
    /// Structure options forwarded to every shard's tree.
    Options treeOptions{};
    /// Pin bulkLoad workers to their home shard's package
    /// (service/topology.hpp). Best-effort; a no-op on single-package
    /// machines or when affinity syscalls are unavailable.
    bool pinThreads = false;
    /// Per-shard flat-combining window (header comment). <= 1 (default)
    /// commits every update directly; >= 2 enables combining with at most
    /// this many ops merged per window. Clamped to [0, kMaxCombine].
    /// The PATHCAS_COMBINE_WINDOW environment variable, when set,
    /// overrides this value.
    int combineWindow = 0;
    /// Record per-shard combiner queueing (deposit → completion) into a
    /// per-shard histogram, read back via shardSchedP99Ns(): combiner
    /// queueing becomes attributable shard-by-shard instead of vanishing
    /// into aggregate op latency. Off by default — a recorded op pays two
    /// rdtsc reads. Only meaningful when combining.
    bool combineStats = false;
  };

  /// Hard cap on ops merged into one combined window (bounds the combiner's
  /// stack scratch; well above any useful window — a window is only worth
  /// what fits in one wide KCAS).
  static constexpr int kMaxCombine = 64;

  /// `nshards` >= 1 partitions of the key space [0, keySpace).
  ShardedMap(int nshards, K keySpace, Config config = {})
      : config_(config), nshards_(nshards), keySpace_(keySpace) {
    PATHCAS_CHECK(nshards >= 1);
    PATHCAS_CHECK(keySpace >= 1);
    if (const char* env = std::getenv("PATHCAS_COMBINE_WINDOW"))
      config_.combineWindow = std::atoi(env);
    combineWindow_ = std::clamp(config_.combineWindow, 0, kMaxCombine);
    shards_.reserve(static_cast<std::size_t>(nshards));
    for (int s = 0; s < nshards; ++s) {
      shards_.push_back(std::make_unique<Shard>(config_.treeOptions));
      if (combining())
        shards_.back()->slots =
            std::make_unique<Padded<OpSlot>[]>(kMaxThreads);
    }
  }

  ShardedMap(const ShardedMap&) = delete;
  ShardedMap& operator=(const ShardedMap&) = delete;

  ~ShardedMap() {
    // Quiescent teardown, per shard: recycle limbo first (records name the
    // shard's pools as owners), then Shard's members unwind — tree (nodes
    // back to the pools), then the DomainSet (ebr, pools, kcas).
    for (auto& sh : shards_) sh->set->drain();
  }

  int shardCount() const { return nshards_; }
  K keySpace() const { return keySpace_; }

  /// Owning shard of a key: floor(k*N / keySpace) for k in [0, keySpace);
  /// out-of-range keys clamp to the boundary shards (deterministic, so
  /// every key still has exactly one home).
  int shardOf(K key) const {
    if (key < 0) return 0;
    if (key >= keySpace_) return nshards_ - 1;
    return static_cast<int>(
        (static_cast<unsigned __int128>(static_cast<std::uint64_t>(key)) *
         static_cast<unsigned __int128>(nshards_)) /
        static_cast<unsigned __int128>(static_cast<std::uint64_t>(keySpace_)));
  }

  /// Advisory home shard for a worker: round-robin over shards, which (via
  /// topology.hpp's shard→package dealing) also spreads workers across
  /// sockets when there are several.
  int homeShardForWorker(int worker) const {
    return worker >= 0 ? worker % nshards_ : 0;
  }

  // ----------------------------------------------------------------------
  // Point operations: route to the owning shard under its domain scope.
  // ----------------------------------------------------------------------

  bool insert(K key, V val) {
    Shard& sh = shard(key);
    if (combining()) return combinedUpdate(sh, OpSlot::kInsert, key, val);
    k::ScopedDomain scope(sh.set->kcas());
    return sh.tree->insert(key, val);
  }

  bool erase(K key) {
    Shard& sh = shard(key);
    if (combining()) return combinedUpdate(sh, OpSlot::kErase, key, V{});
    k::ScopedDomain scope(sh.set->kcas());
    return sh.tree->erase(key);
  }

  bool contains(K key) {
    Shard& sh = shard(key);
    k::ScopedDomain scope(sh.set->kcas());
    return sh.tree->contains(key);
  }

  std::optional<V> get(K key) {
    Shard& sh = shard(key);
    k::ScopedDomain scope(sh.set->kcas());
    return sh.tree->get(key);
  }

  // ----------------------------------------------------------------------
  // Batched updates: a strictly-ascending key run is partitioned into
  // per-shard slices (shardOf is monotone in the key) and each slice drives
  // the shard tree's group commit. When combining is on, the shard's
  // combiner lock serializes these with combined windows.
  // ----------------------------------------------------------------------

  /// insertIfAbsent over a strictly-ascending key run; outcomes[i] true iff
  /// keys[i] was inserted. Returns the number of insertions. Atomicity is
  /// per tree-level chunk, not across the whole run.
  std::size_t insertBatch(const K* keys, const V* vals, std::size_t n,
                          bool* outcomes) {
    std::size_t inserted = 0;
    forEachShardSlice(keys, n, [&](int s, std::size_t lo, std::size_t hi) {
      Shard& sh = *shards_[static_cast<std::size_t>(s)];
      CombinerLockGuard lock(*this, sh);
      k::ScopedDomain scope(sh.set->kcas());
      inserted +=
          sh.tree->insertBatch(keys + lo, vals + lo, hi - lo, outcomes + lo);
    });
    return inserted;
  }

  /// delete over a strictly-ascending key run; outcomes[i] true iff keys[i]
  /// was removed. Returns the number of removals.
  std::size_t eraseBatch(const K* keys, std::size_t n, bool* outcomes) {
    std::size_t erased = 0;
    forEachShardSlice(keys, n, [&](int s, std::size_t lo, std::size_t hi) {
      Shard& sh = *shards_[static_cast<std::size_t>(s)];
      CombinerLockGuard lock(*this, sh);
      k::ScopedDomain scope(sh.set->kcas());
      erased += sh.tree->eraseBatch(keys + lo, hi - lo, outcomes + lo);
    });
    return erased;
  }

  // ----------------------------------------------------------------------
  // Linearizable range query across shards (protocol: header comment).
  // ----------------------------------------------------------------------

  std::size_t rangeQuery(K lo, K hi, std::vector<std::pair<K, V>>& out) {
    if (lo > hi) return 0;
    const int s0 = shardOf(lo);
    const int s1 = shardOf(hi);
    if (s0 == s1) {
      // Single-shard window: the tree's own validated scan is the snapshot.
      Shard& sh = *shards_[static_cast<std::size_t>(s0)];
      k::ScopedDomain scope(sh.set->kcas());
      return sh.tree->rangeQuery(lo, hi, out);
    }

    const std::size_t base = out.size();
    // Phase 0: pin every overlapped shard for the WHOLE protocol. While a
    // shard's EBR pin is held, nodes retired from it are never recycled, so
    // captured version words stay mapped and monotonic — the property the
    // phase-2 equality argument rests on.
    std::vector<std::unique_ptr<recl::Guard>> pins;
    pins.reserve(static_cast<std::size_t>(s1 - s0 + 1));
    for (int s = s0; s <= s1; ++s) {
      pins.push_back(std::make_unique<recl::Guard>(
          shards_[static_cast<std::size_t>(s)]->set->ebr()));
    }

    std::vector<std::vector<std::pair<k::AtomicWord*, k::word_t>>> caps(
        static_cast<std::size_t>(s1 - s0 + 1));
    // Capped decorrelated-jitter backoff between whole-window retries: two
    // scanners invalidated by the same churn do not re-collide in lockstep
    // (deterministic exponential schedules can), and the retry count is
    // surfaced (rqRetries) so livelock under churn is observable instead of
    // silent spinning.
    JitterBackoff backoff(
        static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(this)) ^
        (static_cast<std::uint64_t>(ThreadRegistry::tid() + 1) << 32) ^
        static_cast<std::uint64_t>(lo));
    for (;;) {
      // Phase 1: per-shard validated scans, ascending (results concatenate
      // in key order), capturing each scan's visited set.
      bool ok = true;
      for (int s = s0; s <= s1 && ok; ++s) {
        auto& cap = caps[static_cast<std::size_t>(s - s0)];
        Shard& sh = *shards_[static_cast<std::size_t>(s)];
        k::ScopedDomain scope(sh.set->kcas());
        ok = sh.tree->rangeQueryCapture(
            lo, hi, out, [&cap](k::AtomicWord* addr, k::word_t enc) {
              cap.emplace_back(addr, enc);
            });
      }
      if (ok) {
        // Phase 2: re-read every captured version word through its owning
        // shard's domain (helping any in-flight operation). All equal =>
        // no visited node changed between its visit and this recheck, so
        // every shard's snapshot held simultaneously when phase 2 began.
        for (int s = s0; s <= s1 && ok; ++s) {
          Shard& sh = *shards_[static_cast<std::size_t>(s)];
          k::ScopedDomain scope(sh.set->kcas());
          for (const auto& [addr, enc] : caps[static_cast<std::size_t>(s - s0)]) {
            if (sh.set->kcas().readEncoded(addr) != enc) {
              ok = false;
              break;
            }
          }
        }
        if (ok) return out.size() - base;
      }
      out.resize(base);
      for (auto& c : caps) c.clear();
      rqRetries_.fetch_add(1, std::memory_order_relaxed);
      backoff.pause();
    }
  }

  /// Cross-shard range-query retries (phase-1 validation failures plus
  /// phase-2 mismatches) since construction. Relaxed counter: exact when
  /// read quiescent, monotone and approximately current under churn.
  std::uint64_t rqRetries() const {
    return rqRetries_.load(std::memory_order_relaxed);
  }

  // ----------------------------------------------------------------------
  // Parallel bulk load (quiescent: nothing else may run concurrently).
  // ----------------------------------------------------------------------

  /// Build from an ASCENDING key sequence (duplicates legal — inserted
  /// once); each key maps to value static_cast<V>(key), the bench prefill
  /// convention. Returns the keysum actually inserted. Shard slices are
  /// found by binary search, reordered median-first so plain BSTs come out
  /// balanced, and dispensed to `nthreads` workers in ~kBulkChunk-key
  /// chunks via per-shard cursors (home shard first, then stealing).
  std::int64_t bulkLoad(const std::vector<K>& sortedKeys, int nthreads) {
    PATHCAS_DCHECK(std::is_sorted(sortedKeys.begin(), sortedKeys.end()));
    // Slice per shard: shardOf is monotone in the key, so each shard's keys
    // form one contiguous run of the sorted input.
    std::vector<std::vector<K>> orders(static_cast<std::size_t>(nshards_));
    auto sliceBegin = sortedKeys.begin();
    for (int s = 0; s < nshards_; ++s) {
      auto sliceEnd = std::partition_point(
          sliceBegin, sortedKeys.end(),
          [this, s](K k) { return shardOf(k) <= s; });
      orders[static_cast<std::size_t>(s)] =
          medianFirstOrder(sliceBegin, sliceEnd);
      sliceBegin = sliceEnd;
    }

    std::vector<Padded<std::atomic<std::size_t>>> cursors(
        static_cast<std::size_t>(nshards_));
    auto work = [this, &orders, &cursors](int worker) -> std::int64_t {
      const int home = homeShardForWorker(worker);
      if (config_.pinThreads) pinShardThread(home);
      std::int64_t sum = 0;
      for (int i = 0; i < nshards_; ++i) {
        const int s = (home + i) % nshards_;
        const auto& order = orders[static_cast<std::size_t>(s)];
        auto& cursor = *cursors[static_cast<std::size_t>(s)];
        Shard& sh = *shards_[static_cast<std::size_t>(s)];
        for (;;) {
          const std::size_t b = cursor.fetch_add(kBulkChunk);
          if (b >= order.size()) break;
          const std::size_t e = std::min(order.size(), b + kBulkChunk);
          k::ScopedDomain scope(sh.set->kcas());
          for (std::size_t j = b; j < e; ++j) {
            const K k = order[j];
            if (sh.tree->insert(k, static_cast<V>(k))) sum += k;
          }
        }
      }
      return sum;
    };

    if (nthreads <= 1) return work(0);
    std::vector<std::int64_t> sums(static_cast<std::size_t>(nthreads), 0);
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(nthreads));
    for (int w = 0; w < nthreads; ++w) {
      workers.emplace_back([&, w] {
        ThreadGuard tg;  // recycle the dense id when the worker exits
        sums[static_cast<std::size_t>(w)] = work(w);
      });
    }
    for (auto& t : workers) t.join();
    std::int64_t total = 0;
    for (std::int64_t s : sums) total += s;
    return total;
  }

  // ----------------------------------------------------------------------
  // Quiescent inspection (tests / bench validation), aggregated per shard.
  // ----------------------------------------------------------------------

  std::uint64_t size() const {
    std::uint64_t n = 0;
    for (const auto& sh : shards_) {
      k::ScopedDomain scope(sh->set->kcas());
      n += sh->tree->size();
    }
    return n;
  }

  std::int64_t keySum() const {
    std::int64_t sum = 0;
    for (const auto& sh : shards_) {
      k::ScopedDomain scope(sh->set->kcas());
      sum += sh->tree->keySum();
    }
    return sum;
  }

  std::uint64_t shardSize(int s) const {
    const auto& sh = *shards_[static_cast<std::size_t>(s)];
    k::ScopedDomain scope(sh.set->kcas());
    return sh.tree->size();
  }

  /// One shard's structure statistics (the tree's checkInvariants result —
  /// size, keysum, depth metrics). Quiescent; used by tests to assert e.g.
  /// that bulkLoad's median-first order kept the build shallow.
  auto shardStats(int s) const {
    const auto& sh = *shards_[static_cast<std::size_t>(s)];
    k::ScopedDomain scope(sh.set->kcas());
    return sh.tree->checkInvariants();
  }

  /// Per-shard combiner-queueing p99 in calibrated nanoseconds, index =
  /// shard id (quiescent; the histograms are written under the combiner
  /// locks). Empty unless combining with Config::combineStats — the bench
  /// driver's HasShardSched concept skips the JSON column on empty.
  std::vector<double> shardSchedP99Ns() const {
    std::vector<double> out;
    if (!combining() || !config_.combineStats) return out;
    out.reserve(static_cast<std::size_t>(nshards_));
    const double nsPerTick = TscCal::nsPerTick();
    for (const auto& sh : shards_)
      out.push_back(sh->combineWait.quantile(0.99) * nsPerTick);
    return out;
  }

  /// Number of combined ops recorded against shard s (quiescent).
  std::uint64_t shardSchedCount(int s) const {
    return shards_[static_cast<std::size_t>(s)]->combineWait.count();
  }

  /// Per-shard structural invariants PLUS the partition invariant: every
  /// key found in shard s must have shardOf(key) == s.
  void checkInvariants() const {
    for (int s = 0; s < nshards_; ++s) {
      const auto& sh = *shards_[static_cast<std::size_t>(s)];
      k::ScopedDomain scope(sh.set->kcas());
      sh.tree->checkInvariants();
      sh.tree->forEach([this, s](K k, V) { PATHCAS_CHECK(shardOf(k) == s); });
    }
  }

  /// Ascending in-order traversal across shards (quiescent).
  template <typename F>
  void forEach(F&& f) const {
    for (const auto& sh : shards_) {
      k::ScopedDomain scope(sh->set->kcas());
      sh->tree->forEach(f);
    }
  }

  std::uint64_t footprintBytes() const {
    std::uint64_t n = 0;
    for (const auto& sh : shards_) n += sh->set->footprintBytes();
    return n;
  }

  /// Nodes held by the shards' pools and not yet returned. After teardown
  /// of the trees and drain(), this is the leak count (expected 0) — but
  /// note the two sentinels per live tree always count.
  std::uint64_t liveNodes() const {
    std::uint64_t n = 0;
    for (const auto& sh : shards_) n += sh->set->liveNodes();
    return n;
  }

  /// Recycle every shard's limbo (requires quiescence).
  void drain() {
    for (auto& sh : shards_) sh->set->drain();
  }

 private:
  /// One thread's publication slot on one shard. Transitions: kEmpty ->
  /// kPending (owner, release), kPending -> kDone (combiner, under the
  /// combiner lock, release), kDone -> kEmpty (owner, after reading the
  /// result). The combiner only reads fields of kPending slots and only
  /// writes `result` before the kDone store, so slot fields need no atomics
  /// of their own.
  struct OpSlot {
    enum : std::uint8_t { kEmpty = 0, kPending = 1, kDone = 2 };
    enum : std::uint8_t { kInsert = 0, kErase = 1 };
    std::atomic<std::uint8_t> state{kEmpty};
    std::uint8_t op = kInsert;
    K key{};
    V val{};
    bool result = false;
    /// rdtsc at deposit (written by the owner before the kPending store, so
    /// the kPending acquire-load makes it visible to the combiner). Only
    /// stamped when Config::combineStats is on.
    std::uint64_t depositTicks = 0;
  };

  struct Shard {
    explicit Shard(const Options& opts)
        : set(std::make_unique<recl::DomainSet>()) {
      tree = std::make_unique<Tree>(opts, set->ebr(),
                                    &set->template pool<Node>());
    }
    std::unique_ptr<recl::DomainSet> set;
    // Declared after `set` => destroyed first (returns its nodes to the
    // set's pools while they are alive).
    std::unique_ptr<Tree> tree;
    /// Combining state; `slots` is allocated only when the map combines.
    std::atomic<bool> combinerLock{false};
    std::unique_ptr<Padded<OpSlot>[]> slots;
    /// Deposit-to-completion ticks of every combined op served by this
    /// shard (Config::combineStats). Written only under the combiner lock;
    /// read quiescent via shardSchedP99Ns()/shardSchedCount().
    bench::LatencyHistogram combineWait;
  };

  /// Scoped hold of a shard's combiner lock — a no-op when combining is
  /// off (direct commits need no mutation license).
  struct CombinerLockGuard {
    CombinerLockGuard(ShardedMap& m, Shard& sh)
        : lock_(m.combining() ? &sh.combinerLock : nullptr) {
      if (lock_ != nullptr) {
        Backoff backoff;
        while (lock_->exchange(true, std::memory_order_acquire))
          backoff.pause();
      }
    }
    ~CombinerLockGuard() {
      if (lock_ != nullptr) lock_->store(false, std::memory_order_release);
    }
    CombinerLockGuard(const CombinerLockGuard&) = delete;
    CombinerLockGuard& operator=(const CombinerLockGuard&) = delete;

   private:
    std::atomic<bool>* lock_;
  };

  bool combining() const { return combineWindow_ >= 2; }

  /// Deposit-and-spin protocol (header comment). The depositor either finds
  /// its result published, or wins the combiner lock and serves a window
  /// (its own op included) itself.
  bool combinedUpdate(Shard& sh, std::uint8_t op, K key, V val) {
    const int tid = ThreadRegistry::tid();
    OpSlot& my = *sh.slots[static_cast<std::size_t>(tid)];
    my.op = op;
    my.key = key;
    my.val = val;
    if (config_.combineStats) my.depositTicks = rdtsc();
    my.state.store(OpSlot::kPending, std::memory_order_release);
    Backoff backoff;
    for (;;) {
      if (my.state.load(std::memory_order_acquire) == OpSlot::kDone) {
        const bool r = my.result;
        my.state.store(OpSlot::kEmpty, std::memory_order_release);
        return r;
      }
      if (!sh.combinerLock.exchange(true, std::memory_order_acquire)) {
        combineShard(sh, &my);
        sh.combinerLock.store(false, std::memory_order_release);
      } else {
        backoff.pause();
      }
    }
  }

  /// Gather up to combineWindow_ pending ops (the caller's first, so a
  /// combiner always serves itself unless a previous window already did)
  /// and commit them. Runs under the shard's combiner lock.
  void combineShard(Shard& sh, OpSlot* mine) {
    OpSlot* ops[kMaxCombine];
    int n = 0;
    if (mine->state.load(std::memory_order_acquire) == OpSlot::kPending)
      ops[n++] = mine;
    const int maxTid = ThreadRegistry::instance().maxTid();
    for (int t = 0; t < maxTid && n < combineWindow_; ++t) {
      OpSlot& slot = *sh.slots[static_cast<std::size_t>(t)];
      if (&slot == mine) continue;
      if (slot.state.load(std::memory_order_acquire) == OpSlot::kPending)
        ops[n++] = &slot;
    }
    if (n == 0) return;
    // Snapshot deposit stamps BEFORE committing: after an op's kDone store
    // its owner may reset and reuse the slot, so slot fields are unsafe to
    // read once results are published.
    std::uint64_t deposits[kMaxCombine];
    if (config_.combineStats)
      for (int i = 0; i < n; ++i) deposits[i] = ops[i]->depositTicks;
    k::ScopedDomain scope(sh.set->kcas());
    if (n == 1) {
      // Low contention: direct per-op commit (the k=1 fast path), no
      // batching overhead beyond the lock exchange.
      OpSlot& s = *ops[0];
      s.result = (s.op == OpSlot::kInsert) ? sh.tree->insert(s.key, s.val)
                                           : sh.tree->erase(s.key);
      s.state.store(OpSlot::kDone, std::memory_order_release);
    } else {
      combineOps(sh, ops, n);
    }
    if (config_.combineStats) {
      // Still under the combiner lock, so the histogram needs no atomics.
      const std::uint64_t now = rdtsc();
      for (int i = 0; i < n; ++i)
        sh.combineWait.record(now >= deposits[i] ? now - deposits[i] : 0);
    }
  }

  /// Merge a gathered window: group by key, collapse duplicates, annihilate
  /// mixed groups down to their net effect, and commit the survivors as one
  /// eraseBatch + one insertBatch (disjoint key sets). Linearization: see
  /// the header comment.
  void combineOps(Shard& sh, OpSlot** ops, int n) {
    std::stable_sort(ops, ops + n, [](const OpSlot* a, const OpSlot* b) {
      return a->key < b->key;
    });
    K insKeys[kMaxCombine];
    V insVals[kMaxCombine];
    OpSlot* insOwner[kMaxCombine];
    K erKeys[kMaxCombine];
    OpSlot* erOwner[kMaxCombine];
    int ni = 0, ne = 0;
    for (int i = 0; i < n;) {
      int j = i;
      while (j < n && ops[j]->key == ops[i]->key) ++j;
      const K k = ops[i]->key;
      int inserts = 0;
      for (int t = i; t < j; ++t)
        if (ops[t]->op == OpSlot::kInsert) ++inserts;
      if (inserts == j - i) {
        // Duplicate inserts: only the first can succeed; the rest would
        // find the key present whatever the prior state.
        insKeys[ni] = k;
        insVals[ni] = ops[i]->val;
        insOwner[ni] = ops[i];
        ++ni;
        for (int t = i + 1; t < j; ++t) ops[t]->result = false;
      } else if (inserts == 0) {
        erKeys[ne] = k;
        erOwner[ne] = ops[i];
        ++ne;
        for (int t = i + 1; t < j; ++t) ops[t]->result = false;
      } else {
        // Mixed inserts and erases on one key: probe once (stable — the
        // combiner lock excludes every other mutator on this shard),
        // linearize the group in gather order, and stage only the NET
        // effect; a group whose net is a no-op annihilates entirely.
        const bool present = sh.tree->contains(k);
        bool state = present;
        OpSlot* lastIns = nullptr;
        for (int t = i; t < j; ++t) {
          if (ops[t]->op == OpSlot::kInsert) {
            ops[t]->result = !state;
            state = true;
            lastIns = ops[t];
          } else {
            ops[t]->result = state;
            state = false;
          }
        }
        if (state && !present) {
          insKeys[ni] = k;
          insVals[ni] = lastIns->val;
          insOwner[ni] = nullptr;  // results already decided by simulation
          ++ni;
        } else if (!state && present) {
          erKeys[ne] = k;
          erOwner[ne] = nullptr;
          ++ne;
        }
      }
      i = j;
    }
    bool outcomes[kMaxCombine];
    if (ne > 0) {
      sh.tree->eraseBatch(erKeys, static_cast<std::size_t>(ne), outcomes);
      for (int t = 0; t < ne; ++t) {
        if (erOwner[t] != nullptr) erOwner[t]->result = outcomes[t];
        else PATHCAS_DCHECK(outcomes[t]);  // probe said present; no other mutator
      }
    }
    if (ni > 0) {
      sh.tree->insertBatch(insKeys, insVals, static_cast<std::size_t>(ni),
                           outcomes);
      for (int t = 0; t < ni; ++t) {
        if (insOwner[t] != nullptr) insOwner[t]->result = outcomes[t];
        else PATHCAS_DCHECK(outcomes[t]);
      }
    }
    for (int t = 0; t < n; ++t)
      ops[t]->state.store(OpSlot::kDone, std::memory_order_release);
  }

  /// Call f(shard, lo, hi) for each maximal same-shard slice of an
  /// ascending key run (shardOf is monotone, so slices are contiguous).
  template <typename F>
  void forEachShardSlice(const K* keys, std::size_t n, F&& f) {
    std::size_t lo = 0;
    while (lo < n) {
      const int s = shardOf(keys[lo]);
      const K* const end =
          std::partition_point(keys + lo, keys + n,
                               [this, s](K k) { return shardOf(k) <= s; });
      const std::size_t hi = static_cast<std::size_t>(end - keys);
      f(s, lo, hi);
      lo = hi;
    }
  }

  Shard& shard(K key) {
    return *shards_[static_cast<std::size_t>(shardOf(key))];
  }

  /// Balanced (BFS over recursive medians) insertion order for one shard's
  /// sorted slice: parents precede children level by level, so sequential
  /// chunks hold same-depth keys and concurrent workers keep the tree at
  /// logarithmic depth.
  static std::vector<K> medianFirstOrder(
      typename std::vector<K>::const_iterator first,
      typename std::vector<K>::const_iterator last) {
    std::vector<K> out;
    const std::size_t n = static_cast<std::size_t>(last - first);
    out.reserve(n);
    if (n == 0) return out;
    std::vector<std::pair<std::size_t, std::size_t>> level = {{0, n}};
    std::vector<std::pair<std::size_t, std::size_t>> next;
    while (!level.empty()) {
      next.clear();
      for (const auto& [lo, hi] : level) {
        const std::size_t mid = lo + (hi - lo) / 2;
        out.push_back(*(first + static_cast<std::ptrdiff_t>(mid)));
        if (mid > lo) next.emplace_back(lo, mid);
        if (mid + 1 < hi) next.emplace_back(mid + 1, hi);
      }
      level.swap(next);
    }
    return out;
  }

  static constexpr std::size_t kBulkChunk = 1024;

  Config config_;
  int nshards_;
  K keySpace_;
  int combineWindow_ = 0;
  /// Cross-shard range-query whole-window retries (rqRetries()).
  std::atomic<std::uint64_t> rqRetries_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace pathcas::service
