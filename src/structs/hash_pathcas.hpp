// Fixed-capacity chained hash table via PathCAS ("hash-lists" from the
// paper's conclusion): an array of PathCAS sorted-list buckets. Chains stay
// short, so the list's read-set bound is never a constraint.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "recl/pool.hpp"
#include "structs/list_pathcas.hpp"

namespace pathcas::ds {

template <typename K = std::int64_t, typename V = std::int64_t>
class HashMapPathCas {
 public:
  using BucketPool = recl::NodePool<typename ListPathCas<K, V>::Node>;

  /// All buckets share one node pool (per-bucket pools would multiply the
  /// per-thread caches by the bucket count for no benefit).
  explicit HashMapPathCas(std::size_t bucketCount = 1024,
                          recl::EbrDomain& ebr = recl::EbrDomain::instance(),
                          BucketPool* pool = nullptr)
      : mask_(roundUpPow2(bucketCount) - 1) {
    BucketPool& shared =
        pool ? *pool : recl::defaultPool<typename ListPathCas<K, V>::Node>();
    buckets_.reserve(mask_ + 1);
    for (std::size_t i = 0; i <= mask_; ++i)
      buckets_.push_back(std::make_unique<ListPathCas<K, V>>(ebr, &shared));
  }

  bool insert(K key, V val) { return bucket(key).insert(key, val); }
  bool erase(K key) { return bucket(key).erase(key); }
  bool contains(K key) { return bucket(key).contains(key); }
  std::optional<V> get(K key) { return bucket(key).get(key); }

  std::uint64_t size() const {
    std::uint64_t n = 0;
    for (const auto& b : buckets_) n += b->size();
    return n;
  }
  std::int64_t keySum() const {
    std::int64_t s = 0;
    for (const auto& b : buckets_) s += b->keySum();
    return s;
  }

  static constexpr const char* name() { return "hash-pathcas"; }

 private:
  static std::size_t roundUpPow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }
  ListPathCas<K, V>& bucket(K key) {
    const auto h = static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
    return *buckets_[(h >> 32) & mask_];
  }

  std::size_t mask_;
  std::vector<std::unique_ptr<ListPathCas<K, V>>> buckets_;
};

}  // namespace pathcas::ds
