// Skip-list set via PathCAS. A strong demonstration of the primitive's
// expressiveness: an insert links its whole tower — every level's
// predecessor pointer — in ONE atomic vexec, and a delete unlinks all levels
// and marks the node atomically. There are no transient half-linked towers,
// which eliminates the trickiest part of hand-crafted lock-free skip lists.
//
// Searches visit the nodes they traverse (O(log n) expected), so validated
// not-found answers are atomic snapshots of the search path, as in the trees.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "pathcas/pathcas.hpp"
#include "recl/ebr.hpp"
#include "recl/pool.hpp"
#include "util/defs.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"

namespace pathcas::ds {

template <typename K = std::int64_t, typename V = std::int64_t,
          int MaxLevel = 20>
class SkipListPathCas {
 public:
  static constexpr K kNegInf = std::numeric_limits<K>::min() / 4;
  static constexpr K kPosInf = std::numeric_limits<K>::max() / 4;

  struct Node {
    casword<Version> ver;
    casword<K> key;
    casword<V> val;
    const int height;  // levels 0..height-1 are linked
    casword<Node*> next[MaxLevel];

    Node(K k, V v, int h) : height(h) {
      key.setInitial(k);
      val.setInitial(v);
    }
  };

  explicit SkipListPathCas(recl::EbrDomain& ebr = recl::EbrDomain::instance(),
                           recl::NodePool<Node>* pool = nullptr)
      : ebr_(ebr), pool_(pool ? *pool : recl::defaultPool<Node>()) {
    tail_ = pool_.alloc(kPosInf, V{}, MaxLevel);
    head_ = pool_.alloc(kNegInf, V{}, MaxLevel);
    for (int l = 0; l < MaxLevel; ++l) head_->next[l].setInitial(tail_);
  }

  SkipListPathCas(const SkipListPathCas&) = delete;
  SkipListPathCas& operator=(const SkipListPathCas&) = delete;

  ~SkipListPathCas() {
    // Quiescent-teardown exception: direct recycle, no EBR needed.
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0].load();
      pool_.destroy(n);
      n = next;
    }
  }

  bool contains(K key) {
    PATHCAS_DCHECK(key > kNegInf && key < kPosInf);
    auto guard = ebr_.pin();
    for (;;) {
      start();
      Found f;
      searchTo(key, f);
      if (f.found) return true;
      if (validate()) return false;
    }
  }

  std::optional<V> get(K key) {
    PATHCAS_DCHECK(key > kNegInf && key < kPosInf);
    auto guard = ebr_.pin();
    for (;;) {
      start();
      Found f;
      searchTo(key, f);
      if (f.found) return f.node->val.load();
      if (validate()) return std::nullopt;
    }
  }

  /// Linearizable range query: append every (key, value) pair with
  /// lo <= key <= hi to `out` in ascending key order; returns the number
  /// appended. A tower search to `lo` (visiting every node inspected) is
  /// followed by a bottom-level walk through the range, visiting each node
  /// crossed; the whole visited set is then revalidated — optimistic with
  /// bounded retries, strong §3.5 fallback — so a validated scan is an
  /// atomic snapshot of the range. Bounded by pathcas::kMaxVisited examined
  /// nodes (footnote 2).
  std::size_t rangeQuery(K lo, K hi, std::vector<std::pair<K, V>>& out) {
    PATHCAS_DCHECK(lo > kNegInf && hi < kPosInf);
    if (lo > hi) return 0;
    auto guard = ebr_.pin();
    const std::size_t base = out.size();
    for (;;) {
      start();
      Found f;
      searchTo(lo, f);
      Node* c = f.succ[0];  // first node with key >= lo (already visited)
      bool torn = (c == nullptr);
      while (!torn && c != tail_) {
        const K k = c->key;
        if (k > hi) break;
        out.emplace_back(k, c->val.load());
        Node* next = c->next[0];
        if (next == nullptr) {  // racing unlink: torn read
          torn = true;
          break;
        }
        visit(next);
        c = next;
      }
      if (!torn && validateVisited()) return out.size() - base;
      out.resize(base);  // torn attempt: discard and re-traverse
    }
  }

  bool insert(K key, V val) {
    PATHCAS_DCHECK(key > kNegInf && key < kPosInf);
    auto guard = ebr_.pin();
    Node* node = nullptr;
    const int h = randomHeight();
    for (;;) {
      start();
      Found f;
      searchTo(key, f);
      if (f.found) {
        if (!isMarked(f.nodeVer)) {
          // Never published (no add() committed it): direct recycle is safe.
          if (node != nullptr) pool_.destroy(node);
          return false;  // reachable & unmarked: present
        }
        continue;  // marked twin still linked at some level; retry
      }
      if (node == nullptr) node = pool_.alloc(key, val, h);
      bool bad = false;
      for (int l = 0; l < h && !bad; ++l) {
        if (isMarked(f.predVer[l]) || f.succ[l] == nullptr) bad = true;
      }
      if (bad) continue;
      for (int l = 0; l < h; ++l) node->next[l].setInitial(f.succ[l]);
      // Link every level in one atomic step. Each distinct predecessor's
      // version is bumped once (duplicate adds are illegal).
      for (int l = 0; l < h; ++l)
        add(f.pred[l]->next[l], f.succ[l], node);
      addPredVersionBumps(f, h);
      if (vexec()) return true;
    }
  }

  bool erase(K key) {
    PATHCAS_DCHECK(key > kNegInf && key < kPosInf);
    auto guard = ebr_.pin();
    for (;;) {
      start();
      Found f;
      searchTo(key, f);
      if (!f.found) {
        if (validate()) return false;
        continue;
      }
      if (isMarked(f.nodeVer)) continue;
      Node* const n = f.node;
      const int h = n->height;
      bool bad = false;
      for (int l = 0; l < h && !bad; ++l) {
        if (isMarked(f.predVer[l]) || f.succ[l] != n) bad = true;
      }
      if (bad) continue;
      // Unlink every level and mark the node in one atomic step. The node's
      // next pointers are pinned by its version entry.
      for (int l = 0; l < h; ++l)
        add(f.pred[l]->next[l], n, n->next[l].load());
      addPredVersionBumps(f, h);
      addVer(n->ver, f.nodeVer, verMark(f.nodeVer));
      if (vexec()) {
        ebr_.retire(n, pool_);
        return true;
      }
    }
  }

  std::uint64_t size() const {
    std::uint64_t n = 0;
    for (Node* c = head_->next[0].load(); c != tail_; c = c->next[0].load())
      ++n;
    return n;
  }
  std::int64_t keySum() const {
    std::int64_t s = 0;
    for (Node* c = head_->next[0].load(); c != tail_; c = c->next[0].load())
      s += static_cast<std::int64_t>(c->key.load());
    return s;
  }
  /// Quiescent structural check: bottom level sorted; every upper-level link
  /// connects nodes that are adjacent-or-ordered on the bottom level.
  void checkInvariants() const {
    K prev = kNegInf;
    for (Node* c = head_->next[0].load(); c != tail_;
         c = c->next[0].load()) {
      const K k = c->key.load();
      PATHCAS_CHECK(k > prev);
      PATHCAS_CHECK(!isMarked(c->ver.load()));
      prev = k;
    }
    for (int l = 1; l < MaxLevel; ++l) {
      K p = kNegInf;
      for (Node* c = head_->next[l].load(); c != tail_;
           c = c->next[l].load()) {
        const K k = c->key.load();
        PATHCAS_CHECK(k > p);
        PATHCAS_CHECK(l < c->height);
        p = k;
      }
    }
  }

  static constexpr const char* name() { return "skiplist-pathcas"; }

 private:
  struct Found {
    Node* pred[MaxLevel];
    Version predVer[MaxLevel];
    Node* succ[MaxLevel];
    bool found = false;
    Node* node = nullptr;
    Version nodeVer = 0;
  };

  /// Top-down search visiting each node whose pointers we traverse; fills
  /// per-level predecessors/successors (the standard skip-list find, plus
  /// visits).
  void searchTo(K key, Found& f) {
    Node* pred = head_;
    Version predVer = visit(pred);
    for (int l = MaxLevel - 1; l >= 0; --l) {
      Node* curr = pred->next[l];
      for (;;) {
        if (curr == nullptr) break;  // torn read; vexec/validate will fail
        const Version currVer = visit(curr);
        const K ck = curr->key;
        if (ck < key) {
          pred = curr;
          predVer = currVer;
          curr = pred->next[l];
          continue;
        }
        if (ck == key) {
          f.found = true;
          f.node = curr;
          f.nodeVer = currVer;
        }
        break;
      }
      f.pred[l] = pred;
      f.predVer[l] = predVer;
      f.succ[l] = curr;
    }
  }

  /// Bump each *distinct* predecessor's version exactly once.
  void addPredVersionBumps(const Found& f, int h) {
    for (int l = 0; l < h; ++l) {
      bool seen = false;
      for (int m = l + 1; m < h && !seen; ++m) seen = (f.pred[m] == f.pred[l]);
      if (!seen)
        addVer(f.pred[l]->ver, f.predVer[l], verBump(f.predVer[l]));
    }
  }

  int randomHeight() {
    static thread_local Xoshiro256 rng(
        0xabcdef1234567ULL + static_cast<std::uint64_t>(ThreadRegistry::tid()));
    int h = 1;
    while (h < MaxLevel && (rng.next() & 1)) ++h;
    return h;
  }

  recl::EbrDomain& ebr_;
  recl::NodePool<Node>& pool_;
  Node* head_;
  Node* tail_;
};

}  // namespace pathcas::ds
