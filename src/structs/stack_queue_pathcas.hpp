// Stack and queue via PathCAS (the conclusion's remaining containers).
// Both showcase how KCAS-width atomicity removes the classic fine-grained
// contortions: the queue updates tail *and* the last node's next pointer in
// one atomic exec, so there is no Michael-Scott "lagging tail" to repair.
#pragma once

#include <cstdint>
#include <optional>

#include "pathcas/pathcas.hpp"
#include "recl/ebr.hpp"
#include "recl/pool.hpp"
#include "util/defs.hpp"

namespace pathcas::ds {

template <typename T = std::int64_t>
class StackPathCas {
 public:
  static_assert(std::is_integral_v<T>);

  struct Node {
    casword<Version> ver;
    casword<T> val;
    casword<Node*> next;
    explicit Node(T v) { val.setInitial(v); }
  };

  explicit StackPathCas(recl::EbrDomain& ebr = recl::EbrDomain::instance(),
                        recl::NodePool<Node>* pool = nullptr)
      : ebr_(ebr), pool_(pool ? *pool : recl::defaultPool<Node>()) {}

  StackPathCas(const StackPathCas&) = delete;
  StackPathCas& operator=(const StackPathCas&) = delete;

  ~StackPathCas() {
    // Quiescent-teardown exception: direct recycle, no EBR needed.
    Node* n = head_.load();
    while (n != nullptr) {
      Node* next = n->next.load();
      pool_.destroy(n);
      n = next;
    }
  }

  void push(T v) {
    auto guard = ebr_.pin();
    Node* node = pool_.alloc(v);
    for (;;) {
      start();
      Node* const top = head_;
      node->next.setInitial(top);
      add(head_, top, node);
      if (pathcas::exec()) return;
    }
  }

  std::optional<T> pop() {
    auto guard = ebr_.pin();
    for (;;) {
      start();
      Node* const top = head_;
      if (top == nullptr) return std::nullopt;
      const Version tv = visit(top);
      if (isMarked(tv)) continue;
      const T v = top->val.load();
      add(head_, top, top->next.load());
      addVer(top->ver, tv, verMark(tv));
      if (pathcas::exec()) {
        ebr_.retire(top, pool_);
        return v;
      }
    }
  }

  bool empty() const { return head_.load() == nullptr; }
  std::uint64_t size() const {
    std::uint64_t n = 0;
    for (Node* c = head_.load(); c != nullptr; c = c->next.load()) ++n;
    return n;
  }

 private:
  recl::EbrDomain& ebr_;
  recl::NodePool<Node>& pool_;
  casword<Node*> head_;
};

template <typename T = std::int64_t>
class QueuePathCas {
 public:
  static_assert(std::is_integral_v<T>);

  struct Node {
    casword<Version> ver;
    casword<T> val;
    casword<Node*> next;
    explicit Node(T v) { val.setInitial(v); }
  };

  explicit QueuePathCas(recl::EbrDomain& ebr = recl::EbrDomain::instance(),
                        recl::NodePool<Node>* pool = nullptr)
      : ebr_(ebr), pool_(pool ? *pool : recl::defaultPool<Node>()) {
    Node* sentinel = pool_.alloc(T{});
    head_.setInitial(sentinel);
    tail_.setInitial(sentinel);
  }

  QueuePathCas(const QueuePathCas&) = delete;
  QueuePathCas& operator=(const QueuePathCas&) = delete;

  ~QueuePathCas() {
    // Quiescent-teardown exception: direct recycle, no EBR needed.
    Node* n = head_.load();
    while (n != nullptr) {
      Node* next = n->next.load();
      pool_.destroy(n);
      n = next;
    }
  }

  void enqueue(T v) {
    auto guard = ebr_.pin();
    Node* node = pool_.alloc(v);
    for (;;) {
      start();
      Node* const t = tail_;
      // One atomic step links the node AND advances tail: no lagging-tail
      // helping protocol needed.
      add(t->next, static_cast<Node*>(nullptr), node);
      add(tail_, t, node);
      if (pathcas::exec()) return;
    }
  }

  std::optional<T> dequeue() {
    auto guard = ebr_.pin();
    for (;;) {
      start();
      Node* const h = head_;
      const Version hv = visit(h);
      if (isMarked(hv)) continue;
      Node* const first = h->next;
      if (first == nullptr) return std::nullopt;
      const T v = first->val.load();
      add(head_, h, first);
      addVer(h->ver, hv, verMark(hv));
      if (pathcas::exec()) {
        // Old sentinel; `first` becomes the new sentinel.
        ebr_.retire(h, pool_);
        return v;
      }
    }
  }

  bool empty() const { return head_.load()->next.load() == nullptr; }
  std::uint64_t size() const {
    std::uint64_t n = 0;
    for (Node* c = head_.load()->next.load(); c != nullptr;
         c = c->next.load())
      ++n;
    return n;
  }

 private:
  recl::EbrDomain& ebr_;
  recl::NodePool<Node>& pool_;
  casword<Node*> head_;
  casword<Node*> tail_;
};

}  // namespace pathcas::ds
