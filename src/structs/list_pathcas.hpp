// Sorted linked-list set via PathCAS — the first of the conclusion's
// "read phase followed by write phase" extension structures. The operation
// pattern is exactly the paper's recipe: visit each node traversed, then add
// the modification and vexec (or validate, for reads).
//
// The read-set bound applies: lists longer than the PathCAS path capacity
// are out of contract (footnote 2 of the paper); use the hash table for
// large key sets.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "pathcas/pathcas.hpp"
#include "recl/ebr.hpp"
#include "recl/pool.hpp"
#include "util/defs.hpp"

namespace pathcas::ds {

template <typename K = std::int64_t, typename V = std::int64_t>
class ListPathCas {
 public:
  static constexpr K kNegInf = std::numeric_limits<K>::min() / 4;
  static constexpr K kPosInf = std::numeric_limits<K>::max() / 4;

  struct Node {
    casword<Version> ver;
    casword<K> key;  // immutable after publication, casword for uniformity
    casword<V> val;
    casword<Node*> next;
    Node(K k, V v) {
      key.setInitial(k);
      val.setInitial(v);
    }
  };

  explicit ListPathCas(recl::EbrDomain& ebr = recl::EbrDomain::instance(),
                       recl::NodePool<Node>* pool = nullptr)
      : ebr_(ebr), pool_(pool ? *pool : recl::defaultPool<Node>()) {
    tail_ = pool_.alloc(kPosInf, V{});
    head_ = pool_.alloc(kNegInf, V{});
    head_->next.setInitial(tail_);
  }

  ListPathCas(const ListPathCas&) = delete;
  ListPathCas& operator=(const ListPathCas&) = delete;

  ~ListPathCas() {
    // Quiescent-teardown exception: direct recycle, no EBR needed.
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load();
      pool_.destroy(n);
      n = next;
    }
  }

  bool contains(K key) {
    PATHCAS_DCHECK(key > kNegInf && key < kPosInf);
    auto guard = ebr_.pin();
    for (;;) {
      start();
      const Pos pos = find(key);
      if (pos.found) return true;  // §4.1-style: reachable => present
      if (validate()) return false;
    }
  }

  bool insert(K key, V val) {
    PATHCAS_DCHECK(key > kNegInf && key < kPosInf);
    auto guard = ebr_.pin();
    Node* node = nullptr;
    for (;;) {
      start();
      const Pos pos = find(key);
      if (pos.found) {
        // Never published (no add() committed it): direct recycle is safe.
        if (node != nullptr) pool_.destroy(node);
        return false;
      }
      // pred already unlinked (marked): exec would still succeed — the mark
      // changed pred->ver once, before our visit — and link the node into a
      // dead predecessor, silently losing the insert. Re-find instead.
      if (isMarked(pos.predVer)) continue;
      if (node == nullptr) node = pool_.alloc(key, val);
      node->next.setInitial(pos.curr);
      add(pos.pred->next, pos.curr, node);
      addVer(pos.pred->ver, pos.predVer, verBump(pos.predVer));
      // The pred->curr link is pinned by the entries; the earlier path needs
      // no validation for a successful insert (exec suffices, cf. §4.1).
      if (pathcas::exec()) return true;
    }
  }

  bool erase(K key) {
    PATHCAS_DCHECK(key > kNegInf && key < kPosInf);
    auto guard = ebr_.pin();
    for (;;) {
      start();
      const Pos pos = find(key);
      if (!pos.found) {
        if (validate()) return false;
        continue;
      }
      if (isMarked(pos.currVer) || isMarked(pos.predVer)) continue;
      Node* const succ = pos.curr->next;
      add(pos.pred->next, pos.curr, succ);
      addVer(pos.pred->ver, pos.predVer, verBump(pos.predVer));
      addVer(pos.curr->ver, pos.currVer, verMark(pos.currVer));
      if (pathcas::exec()) {
        ebr_.retire(pos.curr, pool_);
        return true;
      }
    }
  }

  std::optional<V> get(K key) {
    auto guard = ebr_.pin();
    for (;;) {
      start();
      const Pos pos = find(key);
      if (pos.found) return pos.curr->val.load();
      if (validate()) return std::nullopt;
    }
  }

  /// Linearizable range query: append every (key, value) pair with
  /// lo <= key <= hi to `out` in ascending key order; returns the number
  /// appended. The traversal visits every node up to the end of the range
  /// and revalidates the visited set (optimistic, then the §3.5 strong
  /// path). The usual list read-set bound applies: the scan visits the whole
  /// prefix of the list, which must fit in pathcas::kMaxVisited.
  std::size_t rangeQuery(K lo, K hi, std::vector<std::pair<K, V>>& out) {
    PATHCAS_DCHECK(lo > kNegInf && hi < kPosInf);
    if (lo > hi) return 0;
    auto guard = ebr_.pin();
    const std::size_t base = out.size();
    for (;;) {
      start();
      const Pos pos = find(lo);  // visits head..curr; curr = first key >= lo
      Node* c = pos.curr;
      for (;;) {
        const K k = c->key;
        if (k > hi) break;  // tail_ (kPosInf) always stops the walk
        out.emplace_back(k, c->val.load());
        c = c->next;
        visit(c);
      }
      if (validateVisited()) return out.size() - base;
      out.resize(base);  // torn attempt: discard and re-traverse
    }
  }

  std::uint64_t size() const {
    std::uint64_t n = 0;
    for (Node* c = head_->next.load(); c != tail_; c = c->next.load()) ++n;
    return n;
  }
  std::int64_t keySum() const {
    std::int64_t s = 0;
    for (Node* c = head_->next.load(); c != tail_; c = c->next.load())
      s += static_cast<std::int64_t>(c->key.load());
    return s;
  }

  static constexpr const char* name() { return "list-pathcas"; }

 private:
  struct Pos {
    bool found;
    Node* pred;
    Version predVer;
    Node* curr;
    Version currVer;
  };

  /// Traverse visiting every node, stopping at the first key >= `key`.
  Pos find(K key) {
    Node* pred = head_;
    Version predVer = visit(pred);
    Node* curr = pred->next;
    Version currVer = visit(curr);
    for (;;) {
      const K ck = curr->key;
      if (ck >= key) {
        return {ck == key, pred, predVer, curr, currVer};
      }
      pred = curr;
      predVer = currVer;
      curr = curr->next;
      currVer = visit(curr);
    }
  }

  recl::EbrDomain& ebr_;
  recl::NodePool<Node>& pool_;
  Node* head_;
  Node* tail_;
};

}  // namespace pathcas::ds
