// Relaxed (a,b)-tree via PathCAS — the "(a,b)-trees" entry in the paper's
// conclusion. Leaf-oriented: up to B key/value pairs per leaf; internal
// nodes hold immutable routing keys and mutable (casword) child pointers.
//
// Update discipline (the PathCAS copy-on-write recipe):
//   * the search path is visited;
//   * an update builds a replacement leaf and swings ONE child pointer in
//     the parent (bumping the parent's version, marking the old leaf);
//   * an insert into a full leaf performs a *blind split*: the leaf is
//     replaced by a one-key internal node over the two halves. This is the
//     relaxed-(a,b)-tree trick (analogous to the paper's relaxed AVL): the
//     tree may temporarily hold underfull internal nodes and non-uniform
//     leaf depths, but remains a correct search tree with O(log n) expected
//     depth, and every operation is a single small PathCAS. (A production
//     version would add Bougé-style rebalancing steps exactly as the AVL
//     does; we document the relaxation instead.)
//   * deletes shrink leaves copy-on-write; an empty leaf simply stays (its
//     parent pointer swings to a fresh empty leaf) — again relaxed.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "pathcas/pathcas.hpp"
#include "recl/ebr.hpp"
#include "recl/pool.hpp"
#include "util/defs.hpp"

namespace pathcas::ds {

template <typename K = std::int64_t, typename V = std::int64_t, int B = 8>
class AbTreePathCas {
  static_assert(B >= 4 && B % 2 == 0);

 public:
  static constexpr K kPosInf = std::numeric_limits<K>::max() / 4;

  struct Node {
    casword<Version> ver;
    const bool leaf;
    const int count;  // number of keys (internal: count+1 children)
    std::array<K, B> keys;
    std::array<V, B> vals;                        // leaves only
    std::array<casword<Node*>, B + 1> children;   // internal only
    Node(bool isLeaf, int n) : leaf(isLeaf), count(n) {}
  };

  explicit AbTreePathCas(recl::EbrDomain& ebr = recl::EbrDomain::instance(),
                         recl::NodePool<Node>* pool = nullptr)
      : ebr_(ebr), pool_(pool ? *pool : recl::defaultPool<Node>()) {
    // Entry node: permanent internal node with a single child (the root),
    // so every replaceable node has a parent pointer to swing.
    entry_ = pool_.alloc(false, 0);
    entry_->children[0].setInitial(pool_.alloc(true, 0));
  }

  AbTreePathCas(const AbTreePathCas&) = delete;
  AbTreePathCas& operator=(const AbTreePathCas&) = delete;

  ~AbTreePathCas() {
    // Quiescent-teardown exception: direct recycle, no EBR needed.
    freeSubtree(entry_->children[0].load());
    pool_.destroy(entry_);
  }

  bool contains(K key) { return get(key).has_value(); }

  std::optional<V> get(K key) {
    PATHCAS_DCHECK(key < kPosInf);
    auto guard = ebr_.pin();
    for (;;) {
      start();
      const Descent d = searchTo(key);
      if (d.torn) continue;
      const int i = indexOfKey(d.leaf, key);
      // §4.1-style: a reachable unmarked leaf holding the key suffices.
      if (i >= 0 && !isMarked(d.leafVer))
        return d.leaf->vals[static_cast<std::size_t>(i)];
      if (validate()) return std::nullopt;
    }
  }

  /// Linearizable range query: append every (key, value) pair with
  /// lo <= key <= hi to `out` in ascending key order; returns the number
  /// appended. Walks the subtrees overlapping the range, visiting every node
  /// examined, and revalidates the visited set (optimistic, then the §3.5
  /// strong path). Leaf content is immutable (copy-on-write updates), so the
  /// visited versions pin both routing and payload. Bounded by
  /// pathcas::kMaxVisited examined nodes (footnote 2).
  std::size_t rangeQuery(K lo, K hi, std::vector<std::pair<K, V>>& out) {
    PATHCAS_DCHECK(hi < kPosInf);
    if (lo > hi) return 0;
    auto guard = ebr_.pin();
    const std::size_t base = out.size();
    for (;;) {
      start();
      bool torn = false;
      visit(entry_);  // pins the root child pointer
      collectRange(entry_->children[0].load(), lo, hi, out, torn);
      if (!torn && validateVisited()) return out.size() - base;
      out.resize(base);  // torn attempt: discard and re-traverse
    }
  }

  bool insert(K key, V val) {
    PATHCAS_DCHECK(key < kPosInf);
    auto guard = ebr_.pin();
    for (;;) {
      start();
      const Descent d = searchTo(key);
      if (d.torn) continue;
      if (indexOfKey(d.leaf, key) >= 0) {
        if (validate()) return false;
        continue;
      }
      if (isMarked(d.leafVer) || isMarked(d.parentVer)) continue;
      Node* replacement;
      if (d.leaf->count < B) {
        replacement = leafWith(d.leaf, key, val);
      } else {
        // Blind split: one-key internal node over the two halves.
        replacement = splitLeafWith(d.leaf, key, val);
      }
      add(d.parent->children[static_cast<std::size_t>(d.slot)], d.leaf,
          replacement);
      addVer(d.parent->ver, d.parentVer, verBump(d.parentVer));
      addVer(d.leaf->ver, d.leafVer, verMark(d.leafVer));
      if (vexec()) {
        ebr_.retire(d.leaf, pool_);
        return true;
      }
      // Failed vexec: the replacement was staged as a new value but never
      // became reachable — direct recycle is safe.
      freeReplacement(replacement);
    }
  }

  bool erase(K key) {
    PATHCAS_DCHECK(key < kPosInf);
    auto guard = ebr_.pin();
    for (;;) {
      start();
      const Descent d = searchTo(key);
      if (d.torn) continue;
      if (indexOfKey(d.leaf, key) < 0) {
        if (validate()) return false;
        continue;
      }
      if (isMarked(d.leafVer) || isMarked(d.parentVer)) continue;
      Node* const newLeaf = leafWithout(d.leaf, key);
      add(d.parent->children[static_cast<std::size_t>(d.slot)], d.leaf,
          newLeaf);
      addVer(d.parent->ver, d.parentVer, verBump(d.parentVer));
      addVer(d.leaf->ver, d.leafVer, verMark(d.leafVer));
      if (vexec()) {
        ebr_.retire(d.leaf, pool_);
        return true;
      }
      pool_.destroy(newLeaf);  // never published: direct recycle is safe
    }
  }

  // Quiescent-state helpers.
  std::uint64_t size() const { return countKeys(entry_->children[0].load()); }
  std::int64_t keySum() const { return sumKeys(entry_->children[0].load()); }

  /// Quiescent structural check: search-tree key order and no reachable
  /// marked nodes. (Leaf depths are NOT uniform — the relaxed invariant.)
  void checkInvariants() const {
    checkRec(entry_->children[0].load(), std::numeric_limits<K>::min() / 2,
             kPosInf);
  }

  static constexpr const char* name() { return "abtree-pathcas"; }

 private:
  struct Descent {
    Node* parent = nullptr;
    Version parentVer = 0;
    int slot = 0;
    Node* leaf = nullptr;
    Version leafVer = 0;
    bool torn = false;
  };

  /// Descend from the entry node to the leaf covering `key`, visiting every
  /// node traversed.
  Descent searchTo(K key) {
    Descent d;
    d.parent = entry_;
    d.parentVer = visit(entry_);
    d.slot = 0;
    Node* cur = entry_->children[0].load();
    for (;;) {
      if (cur == nullptr) {  // racing replacement: torn read
        d.torn = true;
        return d;
      }
      const Version curVer = visit(cur);
      if (cur->leaf) {
        d.leaf = cur;
        d.leafVer = curVer;
        return d;
      }
      const int slot = childSlot(cur, key);
      d.parent = cur;
      d.parentVer = curVer;
      d.slot = slot;
      cur = cur->children[static_cast<std::size_t>(slot)].load();
    }
  }

  static int childSlot(Node* n, K key) {
    int i = 0;
    while (i < n->count && key >= n->keys[static_cast<std::size_t>(i)]) ++i;
    return i;
  }

  /// Left-to-right walk of the subtrees intersecting [lo, hi], visiting
  /// every node examined. Child i of an internal node covers keys in
  /// [keys[i-1], keys[i]) (unbounded at the edges). Leaf keys are sorted, so
  /// appending in walk order yields ascending output.
  void collectRange(Node* n, K lo, K hi, std::vector<std::pair<K, V>>& out,
                    bool& torn) {
    if (n == nullptr) {  // racing replacement: torn read
      torn = true;
      return;
    }
    visit(n);
    if (n->leaf) {
      for (int i = 0; i < n->count; ++i) {
        const K k = n->keys[static_cast<std::size_t>(i)];
        if (k >= lo && k <= hi) out.emplace_back(k, n->vals[static_cast<std::size_t>(i)]);
      }
      return;
    }
    for (int i = 0; i <= n->count && !torn; ++i) {
      const bool chiAboveLo =
          (i == n->count) || (n->keys[static_cast<std::size_t>(i)] > lo);
      const bool cloBelowHi =
          (i == 0) || (n->keys[static_cast<std::size_t>(i - 1)] <= hi);
      if (chiAboveLo && cloBelowHi)
        collectRange(n->children[static_cast<std::size_t>(i)].load(), lo, hi,
                     out, torn);
    }
  }
  static int indexOfKey(Node* leaf, K key) {
    for (int i = 0; i < leaf->count; ++i) {
      if (leaf->keys[static_cast<std::size_t>(i)] == key) return i;
    }
    return -1;
  }

  /// New leaf = old leaf plus (key, val), in key order. count must be < B.
  Node* leafWith(Node* leaf, K key, V val) {
    Node* n = pool_.alloc(true, leaf->count + 1);
    int j = 0;
    bool placed = false;
    for (int i = 0; i < leaf->count; ++i) {
      const K k = leaf->keys[static_cast<std::size_t>(i)];
      if (!placed && key < k) {
        n->keys[static_cast<std::size_t>(j)] = key;
        n->vals[static_cast<std::size_t>(j)] = val;
        ++j;
        placed = true;
      }
      n->keys[static_cast<std::size_t>(j)] = k;
      n->vals[static_cast<std::size_t>(j)] =
          leaf->vals[static_cast<std::size_t>(i)];
      ++j;
    }
    if (!placed) {
      n->keys[static_cast<std::size_t>(j)] = key;
      n->vals[static_cast<std::size_t>(j)] = val;
    }
    return n;
  }

  Node* leafWithout(Node* leaf, K key) {
    Node* n = pool_.alloc(true, leaf->count - 1);
    int j = 0;
    for (int i = 0; i < leaf->count; ++i) {
      if (leaf->keys[static_cast<std::size_t>(i)] == key) continue;
      n->keys[static_cast<std::size_t>(j)] =
          leaf->keys[static_cast<std::size_t>(i)];
      n->vals[static_cast<std::size_t>(j)] =
          leaf->vals[static_cast<std::size_t>(i)];
      ++j;
    }
    return n;
  }

  /// Full leaf + new key -> one-key internal node over two half leaves.
  Node* splitLeafWith(Node* leaf, K key, V val) {
    // Widened sorted content (B+1 entries) on the stack.
    std::array<K, B + 1> keys;
    std::array<V, B + 1> vals;
    int j = 0;
    bool placed = false;
    for (int i = 0; i < leaf->count; ++i) {
      const K k = leaf->keys[static_cast<std::size_t>(i)];
      if (!placed && key < k) {
        keys[static_cast<std::size_t>(j)] = key;
        vals[static_cast<std::size_t>(j)] = val;
        ++j;
        placed = true;
      }
      keys[static_cast<std::size_t>(j)] = k;
      vals[static_cast<std::size_t>(j)] =
          leaf->vals[static_cast<std::size_t>(i)];
      ++j;
    }
    if (!placed) {
      keys[static_cast<std::size_t>(j)] = key;
      vals[static_cast<std::size_t>(j)] = val;
    }
    const int total = B + 1;
    const int lCount = total / 2;
    Node* l = pool_.alloc(true, lCount);
    Node* r = pool_.alloc(true, total - lCount);
    for (int i = 0; i < lCount; ++i) {
      l->keys[static_cast<std::size_t>(i)] = keys[static_cast<std::size_t>(i)];
      l->vals[static_cast<std::size_t>(i)] = vals[static_cast<std::size_t>(i)];
    }
    for (int i = 0; i < r->count; ++i) {
      r->keys[static_cast<std::size_t>(i)] =
          keys[static_cast<std::size_t>(lCount + i)];
      r->vals[static_cast<std::size_t>(i)] =
          vals[static_cast<std::size_t>(lCount + i)];
    }
    Node* mid = pool_.alloc(false, 1);
    mid->keys[0] = r->keys[0];
    mid->children[0].setInitial(l);
    mid->children[1].setInitial(r);
    return mid;
  }

  void freeReplacement(Node* n) {
    if (!n->leaf) {
      pool_.destroy(n->children[0].load());
      pool_.destroy(n->children[1].load());
    }
    pool_.destroy(n);
  }

  std::uint64_t countKeys(Node* n) const {
    if (n == nullptr) return 0;
    if (n->leaf) return static_cast<std::uint64_t>(n->count);
    std::uint64_t total = 0;
    for (int i = 0; i <= n->count; ++i)
      total += countKeys(n->children[static_cast<std::size_t>(i)].load());
    return total;
  }
  std::int64_t sumKeys(Node* n) const {
    if (n == nullptr) return 0;
    if (n->leaf) {
      std::int64_t s = 0;
      for (int i = 0; i < n->count; ++i)
        s += static_cast<std::int64_t>(n->keys[static_cast<std::size_t>(i)]);
      return s;
    }
    std::int64_t s = 0;
    for (int i = 0; i <= n->count; ++i)
      s += sumKeys(n->children[static_cast<std::size_t>(i)].load());
    return s;
  }
  void checkRec(Node* n, K lo, K hi) const {
    PATHCAS_CHECK(n != nullptr);
    PATHCAS_CHECK(!isMarked(n->ver.load()));
    K prev = lo;
    for (int i = 0; i < n->count; ++i) {
      const K k = n->keys[static_cast<std::size_t>(i)];
      PATHCAS_CHECK(k >= prev && k < hi);
      prev = k;
    }
    if (n->leaf) return;
    for (int i = 0; i <= n->count; ++i) {
      const K clo = (i == 0) ? lo : n->keys[static_cast<std::size_t>(i - 1)];
      const K chi =
          (i == n->count) ? hi : n->keys[static_cast<std::size_t>(i)];
      checkRec(n->children[static_cast<std::size_t>(i)].load(), clo, chi);
    }
  }
  void freeSubtree(Node* n) {
    if (n == nullptr) return;
    if (!n->leaf) {
      for (int i = 0; i <= n->count; ++i)
        freeSubtree(n->children[static_cast<std::size_t>(i)].load());
    }
    pool_.destroy(n);
  }

  recl::EbrDomain& ebr_;
  recl::NodePool<Node>& pool_;
  Node* entry_;
};

}  // namespace pathcas::ds
