// Multi-index map — the second cross-structure PathCAS composite: a primary
// ordered index (key → value) and a unique secondary index (value → key),
// each an IntBstPathCas, kept ATOMICALLY consistent. This is the
// examples/session_index.cpp seed promoted to a real structure: where the
// example re-ran two independent tree ops and could observe (and had to
// paper over) windows where the indexes disagreed, here every update stages
// both trees' entries into ONE KCAS — there is no reachable state, not even
// a transient one, in which (k, v) is in the primary but (v, k) missing from
// the secondary, or vice versa.
//
// Mechanics: both trees are built on ONE owned recl::DomainSet, so their
// staged entries and visited paths land in the same KCAS descriptor. The
// tree-level staging hooks (IntBstPathCas::stageInsert/stageErase/stageFind)
// each perform a full search + stage without committing; insert()/erase()
// below chain two of them and vexec() once. The commit's validation covers
// BOTH search paths, and a successful commit is the single linearization
// point of the composite update. A two-child erase on either side stages
// the successor-swap entry set, so a composite erase can reach ~10 entries
// across ~2× tree-depth visited nodes — MCMS-width descriptors on the
// cold staging path, like the LRU cache's eviction.
//
// Secondary uniqueness: insert(k, v) fails if k is taken OR v is taken
// (the secondary is a bijection's inverse, and tests rely on it). There is
// deliberately no in-place "update value" op: it would erase + insert in
// the secondary within one staged op and can collide on staged addresses
// (undefined per the paper); erase-then-insert is the supported idiom.
//
// getChecked() is the composite's checked read: one op visits the primary
// search path for k and the secondary path for the found v, then
// validateVisited() proves the two reads formed an atomic cross-structure
// snapshot — the scanner in tests/test_multi_index_map.cpp drives it
// mid-churn and asserts the indexes NEVER observably diverge.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "kcas/domain.hpp"
#include "pathcas/pathcas.hpp"
#include "recl/domain_set.hpp"
#include "trees/int_bst_pathcas.hpp"
#include "util/defs.hpp"

namespace pathcas::ds {

template <typename K = std::int64_t, typename V = std::int64_t>
class MultiIndexMap {
 public:
  using KeyType = K;
  using ValueType = V;
  using OptionsType = IntBstOptions;
  using Primary = IntBstPathCas<K, V>;
  using Secondary = IntBstPathCas<V, K>;
  using PNode = typename Primary::Node;
  using SNode = typename Secondary::Node;

  explicit MultiIndexMap(IntBstOptions options = {})
      : primary_(std::make_unique<Primary>(options, set_.ebr(),
                                           &set_.pool<PNode>())),
        secondary_(std::make_unique<Secondary>(options, set_.ebr(),
                                               &set_.pool<SNode>())) {}

  MultiIndexMap(const MultiIndexMap&) = delete;
  MultiIndexMap& operator=(const MultiIndexMap&) = delete;

  ~MultiIndexMap() {
    // Built-in zero-leak check: destroy both trees (their destructors
    // recycle every reachable node), drain limbo, then the owned DomainSet
    // must account for every allocation.
    primary_.reset();
    secondary_.reset();
    set_.drain();
    PATHCAS_CHECK(set_.liveNodes() == 0);
  }

  /// Insert (k, v) iff k is absent from the primary AND v is absent from
  /// the secondary; both links commit in one KCAS.
  bool insert(K key, V val) {
    k::ScopedDomain scope(set_.kcas());
    auto guard = set_.ebr().pin();
    PNode* pSpare = nullptr;
    SNode* sSpare = nullptr;
    bool inserted = false;
    for (;;) {
      start();
      const auto ps = primary_->stageInsert(key, val, pSpare);
      if (ps == Primary::Staged::kRetry) continue;
      if (ps == Primary::Staged::kNoop) break;  // key present (§4.1 witness)
      const auto ss = secondary_->stageInsert(val, key, sSpare);
      if (ss == Secondary::Staged::kRetry) continue;
      if (ss == Secondary::Staged::kNoop) break;  // value taken (§4.1)
      if (vexec()) {
        pSpare = nullptr;  // consumed by the commit
        sSpare = nullptr;
        inserted = true;
        break;
      }
    }
    primary_->discardSpare(pSpare);
    secondary_->discardSpare(sSpare);
    return inserted;
  }

  /// Erase by key: both unlinks in one KCAS. The composite invariant
  /// guarantees the secondary holds (v, k) whenever the primary holds
  /// (k, v); a commit that validated both search paths cannot remove a
  /// mismatched pair.
  bool erase(K key) {
    k::ScopedDomain scope(set_.kcas());
    auto guard = set_.ebr().pin();
    for (;;) {
      start();
      PNode* pVictim = nullptr;
      V val{};
      const auto ps = primary_->stageErase(key, &pVictim, &val);
      if (ps == Primary::Staged::kRetry) continue;
      if (ps == Primary::Staged::kNoop) {
        if (validate()) return false;  // absence needs a witness
        continue;
      }
      SNode* sVictim = nullptr;
      K back{};
      const auto ss = secondary_->stageErase(val, &sVictim, &back);
      if (ss == Secondary::Staged::kRetry) continue;
      if (ss == Secondary::Staged::kNoop) continue;  // torn read: re-traverse
      if (vexec()) {
        PATHCAS_DCHECK(back == key);
        primary_->retireStaged(pVictim);
        secondary_->retireStaged(sVictim);
        return true;
      }
    }
  }

  /// Erase by secondary lookup: remove the pair whose value is `val`.
  bool eraseByValue(V val) {
    k::ScopedDomain scope(set_.kcas());
    auto guard = set_.ebr().pin();
    for (;;) {
      start();
      SNode* sVictim = nullptr;
      K key{};
      const auto ss = secondary_->stageErase(val, &sVictim, &key);
      if (ss == Secondary::Staged::kRetry) continue;
      if (ss == Secondary::Staged::kNoop) {
        if (validate()) return false;
        continue;
      }
      PNode* pVictim = nullptr;
      V back{};
      const auto ps = primary_->stageErase(key, &pVictim, &back);
      if (ps == Primary::Staged::kRetry) continue;
      if (ps == Primary::Staged::kNoop) continue;  // torn read: re-traverse
      if (vexec()) {
        PATHCAS_DCHECK(back == val);
        primary_->retireStaged(pVictim);
        secondary_->retireStaged(sVictim);
        return true;
      }
    }
  }

  bool contains(K key) {
    k::ScopedDomain scope(set_.kcas());
    return primary_->contains(key);
  }
  std::optional<V> get(K key) {
    k::ScopedDomain scope(set_.kcas());
    return primary_->get(key);
  }
  /// Reverse lookup through the secondary index.
  std::optional<K> getByValue(V val) {
    k::ScopedDomain scope(set_.kcas());
    return secondary_->get(val);
  }

  /// The checked cross-structure read: one atomic snapshot of BOTH search
  /// paths (validateVisited over the combined visited set). Returns the
  /// value for `key` (nullopt if absent) and ABORTS (PATHCAS_CHECK) if the
  /// snapshot catches the secondary disagreeing with the primary — which
  /// the one-KCAS updates make impossible; the scanner test runs this
  /// mid-churn precisely to prove that.
  std::optional<V> getChecked(K key) {
    k::ScopedDomain scope(set_.kcas());
    auto guard = set_.ebr().pin();
    for (;;) {
      start();
      V val{};
      const bool inPrimary = primary_->stageFind(key, &val);
      K back{};
      bool agree = true;
      if (inPrimary) {
        const bool inSecondary = secondary_->stageFind(val, &back);
        agree = inSecondary && back == key;
      }
      if (!validateVisited()) continue;
      if (!inPrimary) return std::nullopt;
      PATHCAS_CHECK(agree);  // composite invariant, observably
      return val;
    }
  }

  /// Linearizable range query over the primary index.
  std::size_t rangeQuery(K lo, K hi, std::vector<std::pair<K, V>>& out) {
    k::ScopedDomain scope(set_.kcas());
    return primary_->rangeQuery(lo, hi, out);
  }
  /// Linearizable range query over the secondary index ((value, key) pairs).
  std::size_t rangeQueryByValue(V lo, V hi,
                                std::vector<std::pair<V, K>>& out) {
    k::ScopedDomain scope(set_.kcas());
    return secondary_->rangeQuery(lo, hi, out);
  }

  // --- quiescent-state inspection ---
  std::uint64_t size() const { return primary_->size(); }
  std::int64_t keySum() const { return primary_->keySum(); }

  /// Both trees' structural invariants plus the cross-index bijection:
  /// identical pair sets, mirrored. Quiescent-only; aborts on violation.
  TreeStats checkInvariants() const {
    const TreeStats p = primary_->checkInvariants();
    const TreeStats st = secondary_->checkInvariants();
    PATHCAS_CHECK(p.size == st.size);
    std::vector<std::pair<K, V>> fromPrimary;
    primary_->forEach([&](K k, V v) { fromPrimary.emplace_back(k, v); });
    std::vector<std::pair<K, V>> fromSecondary;
    secondary_->forEach([&](V v, K k) { fromSecondary.emplace_back(k, v); });
    std::sort(fromSecondary.begin(), fromSecondary.end());
    PATHCAS_CHECK(fromPrimary == fromSecondary);  // primary walk is sorted
    return p;
  }

  std::uint64_t footprintBytes() const { return set_.footprintBytes(); }
  std::uint64_t liveNodes() const { return set_.liveNodes(); }
  /// Recycle limbo (requires quiescence) — the zero-leak teardown hook.
  void drain() { set_.drain(); }

  static constexpr const char* name() { return "multi-index-map"; }

 private:
  // set_ first: destroyed last, after both trees recycled their nodes.
  recl::DomainSet set_;
  std::unique_ptr<Primary> primary_;
  std::unique_ptr<Secondary> secondary_;
};

}  // namespace pathcas::ds
