// Capacity-bounded LRU/TTL cache — the first cross-structure PathCAS
// composite. Two structures share one set of nodes:
//
//   - a hash index: power-of-two bucket array of unsorted, null-terminated
//     chains (insert-at-head), each bucket carrying its own version word;
//   - an intrusive doubly-linked recency list between two sentinels
//     (head_ = MRU end, tail_ = LRU end).
//
// Every mutation commits as ONE KCAS whose entries span words in both
// structures plus a shared size word:
//
//   get (hit)      — splice the node out of its recency position and in at
//                    MRU: 6 data entries + up to 5 version bumps, all
//                    validated against the hash-chain path walked to find it.
//   put (insert)   — bucket head swing + MRU splice + size+1.
//   put (evict)    — the MCMS-width showcase: new node into its bucket and
//                    the MRU slot, LRU victim out of the recency tail AND out
//                    of its own (possibly different, possibly the same)
//                    bucket, victim marked, size unchanged — up to ~10 data
//                    entries and ~7 version bumps in one descriptor, which is
//                    exactly the cold-staging path the PR 5 hot/cold
//                    descriptor split exists for.
//   TTL expiry     — lazily on get (or via purgeExpired()): the expired
//                    node's full two-structure removal in one KCAS. Expiry
//                    deadlines are read through util/timing.hpp's TtlClock so
//                    tests drive them deterministically.
//
// The one-KCAS structure makes the composite invariants (hash membership ==
// recency membership, size == list length <= capacity) hold in EVERY
// reachable state, not just quiescent ones; tests/test_lru_cache.cpp checks
// them against a sequential oracle and under churn.
//
// Duplicate staged addresses are undefined for the KCAS (kcas.hpp checks
// them), and composite neighborhoods routinely overlap — the victim's chain
// predecessor may be a recency neighbor, the victim may live in the new
// key's bucket, the list may hold one element. All version bumps therefore
// go through a small address-deduplicating collector (Bumps), and the
// aliasing cases have explicit branches below.
//
// Domain rules: the cache owns a private recl::DomainSet; every public
// operation scopes the calling thread to it (k::ScopedDomain) and pins its
// EbrDomain, so callers never touch the process-global domains and two
// caches never contend on descriptor tables or epochs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "kcas/domain.hpp"
#include "pathcas/pathcas.hpp"
#include "recl/domain_set.hpp"
#include "util/defs.hpp"
#include "util/timing.hpp"

namespace pathcas::ds {

enum class CacheGet { kHit, kMiss, kExpired };

template <typename K = std::int64_t, typename V = std::int64_t>
class LruTtlCache {
 public:
  struct Node {
    casword<Version> ver;
    casword<K> key;  // immutable after publication
    casword<V> val;
    casword<std::uint64_t> expiryNs;  // TtlClock deadline; 0 = never expires
    casword<Node*> hnext;             // hash-chain successor (null-terminated)
    casword<Node*> rprev;             // recency link toward the MRU sentinel
    casword<Node*> rnext;             // recency link toward the LRU sentinel
    Node(K k, V v) {
      key.setInitial(k);
      val.setInitial(v);
    }
  };

  struct PutResult {
    bool updated = false;   // key was present: value/TTL refreshed, promoted
    bool inserted = false;  // new entry linked at MRU
    bool evicted = false;   // the insert displaced the LRU victim
    K victim{};             // valid iff evicted
  };

  explicit LruTtlCache(std::size_t capacity, std::size_t bucketCount = 0)
      : capacity_(static_cast<std::int64_t>(capacity)),
        mask_(roundUpPow2(bucketCount != 0 ? bucketCount
                                           : (capacity < 8 ? 8 : capacity)) -
              1),
        buckets_(new Bucket[mask_ + 1]) {
    PATHCAS_CHECK(capacity >= 1);
    head_.rnext.setInitial(&tail_);
    tail_.rprev.setInitial(&head_);
    size_.setInitial(0);
  }

  LruTtlCache(const LruTtlCache&) = delete;
  LruTtlCache& operator=(const LruTtlCache&) = delete;

  ~LruTtlCache() {
    // Quiescent-teardown exception: direct recycle, no EBR needed. set_ is
    // declared first, so its pools (and the EbrDomain draining limbo into
    // them) outlive this walk.
    for (std::size_t i = 0; i <= mask_; ++i) {
      Node* n = buckets_[i].head.load();
      while (n != nullptr) {
        Node* const nx = n->hnext.load();
        pool_.destroy(n);
        n = nx;
      }
    }
    // Built-in zero-leak check: with every reachable node recycled and limbo
    // drained, the owned DomainSet must account for every allocation.
    set_.drain();
    PATHCAS_CHECK(set_.liveNodes() == 0);
  }

  /// Lookup with promotion: a hit splices the node to MRU in one KCAS (no-op
  /// commit-free fast path when it already is MRU); an entry whose TTL
  /// lapsed is collected — removed from BOTH structures in one KCAS — and
  /// reported as kExpired (a miss with attribution).
  CacheGet get(K key, V* out) {
    k::ScopedDomain scope(set_.kcas());
    auto guard = set_.ebr().pin();
    const std::uint64_t now = TtlClock::nowNs();
    for (;;) {
      start();
      const Chain c = findInChain(key);
      if (!c.found) {
        if (validate()) return CacheGet::kMiss;  // absent needs a witness
        continue;
      }
      if (isMarked(c.nodeVer)) continue;
      const std::uint64_t exp = c.node->expiryNs;
      if (exp != 0 && exp <= now) {
        Bumps bumps;
        if (!stageRemoval(c, bumps)) continue;
        bumps.stage();
        if (vexec()) {
          set_.ebr().retire(c.node, pool_);
          return CacheGet::kExpired;
        }
        continue;
      }
      const V v = c.node->val;
      if (head_.rnext.load() == c.node) {
        // Already MRU: reachable + unmarked => present (the paper's §4.1
        // argument); no commit, no validation needed for a hit.
        if (out != nullptr) *out = v;
        return CacheGet::kHit;
      }
      Bumps bumps;
      const Promo p = stagePromotion(c.node, c.nodeVer, bumps);
      if (p == Promo::kRetry) continue;
      if (p == Promo::kAlreadyMru) {
        if (out != nullptr) *out = v;
        return CacheGet::kHit;
      }
      bumps.stage();
      if (vexec()) {
        if (out != nullptr) *out = v;
        return CacheGet::kHit;
      }
    }
  }

  std::optional<V> get(K key) {
    V v{};
    return get(key, &v) == CacheGet::kHit ? std::optional<V>(v) : std::nullopt;
  }

  /// Insert or refresh. Present key (even one whose TTL already lapsed but
  /// was never collected): value + deadline overwritten and the node
  /// promoted, one KCAS. Absent key with room: bucket link + MRU splice +
  /// size+1, one KCAS. Absent key at capacity: the new entry goes in and the
  /// LRU victim comes out of both structures atomically — there is no
  /// intermediate state that is over capacity or missing the victim from
  /// only one index. ttlNs == 0 means no expiry.
  PutResult put(K key, V val, std::uint64_t ttlNs = 0) {
    k::ScopedDomain scope(set_.kcas());
    auto guard = set_.ebr().pin();
    const std::uint64_t now = TtlClock::nowNs();
    const std::uint64_t exp = ttlNs == 0 ? 0 : now + ttlNs;
    PutResult res;
    Node* spare = nullptr;
    for (;;) {
      start();
      const Chain c = findInChain(key);
      if (c.found) {
        if (isMarked(c.nodeVer)) continue;
        const V oldV = c.node->val;
        const std::uint64_t oldExp = c.node->expiryNs;
        if (oldV != val) add(c.node->val, oldV, val);
        if (oldExp != exp) add(c.node->expiryNs, oldExp, exp);
        Bumps bumps;
        const Promo p = stagePromotion(c.node, c.nodeVer, bumps);
        if (p == Promo::kRetry) continue;
        bumps.stage();
        if (vexec()) {
          res.updated = true;
          break;
        }
        continue;
      }
      const std::int64_t sz = size_;
      if (sz < capacity_) {
        if (spare == nullptr) spare = pool_.alloc(key, val);
        spare->val.setInitial(val);
        spare->expiryNs.setInitial(exp);
        const Version hv = visitVer(head_.ver);
        Node* const m = head_.rnext;
        if (m == &head_) continue;  // torn read
        const Version mv = visit(m);
        if (isMarked(mv)) continue;
        spare->hnext.setInitial(c.head);
        spare->rprev.setInitial(&head_);
        spare->rnext.setInitial(m);
        add(c.b->head, c.head, spare);
        add(head_.rnext, m, spare);
        add(m->rprev, &head_, spare);
        add(size_, sz, sz + 1);
        Bumps bumps;
        bumps.note(c.b->ver, c.bVer);
        bumps.note(head_.ver, hv);
        bumps.note(m->ver, mv);
        bumps.stage();
        if (vexec()) {
          spare = nullptr;
          res.inserted = true;
          break;
        }
        continue;
      }
      if (stagePutEvict(c, spare, key, val, exp, sz, res)) break;
    }
    if (spare != nullptr) pool_.destroy(spare);  // never published
    return res;
  }

  /// Remove the entry (expired or not). One KCAS: chain unlink + recency
  /// unlink + size-1 + mark.
  bool erase(K key) {
    k::ScopedDomain scope(set_.kcas());
    auto guard = set_.ebr().pin();
    for (;;) {
      start();
      const Chain c = findInChain(key);
      if (!c.found) {
        if (validate()) return false;
        continue;
      }
      if (isMarked(c.nodeVer)) continue;
      Bumps bumps;
      if (!stageRemoval(c, bumps)) continue;
      bumps.stage();
      if (vexec()) {
        set_.ebr().retire(c.node, pool_);
        return true;
      }
    }
  }

  /// Validated read with NO side effects: no promotion, and an expired entry
  /// is reported (kExpired) rather than collected. The oracle tests use this
  /// to observe state without perturbing recency.
  CacheGet peek(K key, V* out = nullptr) {
    k::ScopedDomain scope(set_.kcas());
    auto guard = set_.ebr().pin();
    const std::uint64_t now = TtlClock::nowNs();
    for (;;) {
      start();
      const Chain c = findInChain(key);
      if (!c.found) {
        if (validate()) return CacheGet::kMiss;
        continue;
      }
      if (isMarked(c.nodeVer)) continue;
      const std::uint64_t exp = c.node->expiryNs;
      if (exp != 0 && exp <= now) return CacheGet::kExpired;
      if (out != nullptr) *out = c.node->val;
      return CacheGet::kHit;
    }
  }

  bool contains(K key) { return peek(key) == CacheGet::kHit; }

  /// Collect up to `maxVictims` expired entries (each removal its own
  /// one-KCAS commit), sweeping the recency list from the LRU end. The sweep
  /// itself is an unvalidated walk — every candidate is re-found and
  /// re-checked under its own validated commit, so false positives are
  /// harmless. Returns the number collected.
  std::size_t purgeExpired(
      std::size_t maxVictims = std::numeric_limits<std::size_t>::max()) {
    k::ScopedDomain scope(set_.kcas());
    auto guard = set_.ebr().pin();
    const std::uint64_t now = TtlClock::nowNs();
    std::vector<K> candidates;
    std::size_t steps = 0;
    const std::size_t maxSteps = static_cast<std::size_t>(capacity_) * 2 + 8;
    for (Node* n = tail_.rprev.load();
         n != &head_ && n != nullptr && steps < maxSteps &&
         candidates.size() < maxVictims;
         n = n->rprev.load(), ++steps) {
      const std::uint64_t exp = n->expiryNs.load();
      if (exp != 0 && exp <= now) candidates.push_back(n->key.load());
    }
    std::size_t collected = 0;
    for (const K key : candidates) {
      for (;;) {
        start();
        const Chain c = findInChain(key);
        if (!c.found) {
          if (validate()) break;
          continue;
        }
        if (isMarked(c.nodeVer)) continue;
        const std::uint64_t exp = c.node->expiryNs;
        if (exp == 0 || exp > now) break;  // refreshed since the sweep
        Bumps bumps;
        if (!stageRemoval(c, bumps)) continue;
        bumps.stage();
        if (vexec()) {
          set_.ebr().retire(c.node, pool_);
          ++collected;
          break;
        }
      }
    }
    return collected;
  }

  std::int64_t size() const { return size_.load(); }
  std::int64_t capacity() const { return capacity_; }
  std::uint64_t footprintBytes() const {
    return set_.footprintBytes() + (mask_ + 1) * sizeof(Bucket);
  }
  std::uint64_t liveNodes() const { return set_.liveNodes(); }
  /// Recycle limbo (requires quiescence) — the zero-leak teardown hook.
  void drain() { set_.drain(); }

  /// Quiescent-only: keys in recency order, MRU first. Tests use this to
  /// assert "hit promotes to MRU" and "evicted key was the true LRU".
  std::vector<K> recencyKeys() const {
    std::vector<K> out;
    for (Node* n = head_.rnext.load(); n != &tail_; n = n->rnext.load())
      out.push_back(n->key.load());
    return out;
  }

  /// Quiescent-only composite invariants: the hash index and the recency
  /// list hold exactly the same nodes, both directions of the list agree,
  /// no reachable node is marked, every node hashes to the bucket holding
  /// it, and size_ == |entries| <= capacity.
  void checkInvariants() const {
    std::vector<const Node*> fromHash;
    for (std::size_t i = 0; i <= mask_; ++i) {
      for (Node* n = buckets_[i].head.load(); n != nullptr;
           n = n->hnext.load()) {
        PATHCAS_CHECK(!isMarked(n->ver.load()));
        PATHCAS_CHECK(&bucketOf(n->key.load()) == &buckets_[i]);
        fromHash.push_back(n);
      }
    }
    std::vector<const Node*> fromList;
    for (Node* n = head_.rnext.load(); n != &tail_; n = n->rnext.load()) {
      PATHCAS_CHECK(n->rnext.load()->rprev.load() == n);
      fromList.push_back(n);
    }
    PATHCAS_CHECK(tail_.rprev.load() == &head_ ||
                  tail_.rprev.load()->rnext.load() == &tail_);
    std::sort(fromHash.begin(), fromHash.end());
    std::sort(fromList.begin(), fromList.end());
    PATHCAS_CHECK(fromHash == fromList);
    PATHCAS_CHECK(size_.load() == static_cast<std::int64_t>(fromHash.size()));
    PATHCAS_CHECK(size_.load() <= capacity_);
  }

  static constexpr const char* name() { return "lru-ttl-cache"; }

 private:
  struct Bucket {
    casword<Version> ver;
    casword<Node*> head;
  };

  struct Chain {
    bool found = false;
    Bucket* b = nullptr;
    Version bVer = 0;
    Node* head = nullptr;  // observed chain head (may be null)
    Node* node = nullptr;  // the match, iff found
    Version nodeVer = 0;
    Node* pred = nullptr;  // chain predecessor of node; null = head slot
    Version predVer = 0;
  };

  /// Address-deduplicating version-bump collector. Staging one word twice is
  /// undefined for the KCAS, and composite neighborhoods overlap (the
  /// victim's chain predecessor may also be a recency neighbor; both keys
  /// may share a bucket). The FIRST observed version per word wins — if a
  /// later observation disagreed, validation fails the commit anyway.
  struct Bumps {
    static constexpr int kMax = 10;
    casword<Version>* w[kMax];
    Version v[kMax];
    int n = 0;
    void note(casword<Version>& word, Version ver) {
      for (int i = 0; i < n; ++i) {
        if (w[i] == &word) return;
      }
      PATHCAS_DCHECK(n < kMax);
      w[n] = &word;
      v[n] = ver;
      ++n;
    }
    void stage() const {
      for (int i = 0; i < n; ++i) addVer(*w[i], v[i], verBump(v[i]));
    }
  };

  enum class Promo { kOk, kAlreadyMru, kRetry };

  static std::size_t roundUpPow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }
  Bucket& bucketOf(K key) const {
    const auto h = static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
    return buckets_[(h >> 32) & mask_];
  }

  /// Visit the bucket's version word, then walk its chain visiting every
  /// node, looking for `key`. The whole walk lands in the op's visited path,
  /// so the eventual vexec()/validate() certifies it.
  Chain findInChain(K key) {
    Chain c;
    c.b = &bucketOf(key);
    c.bVer = visitVer(c.b->ver);
    c.head = c.b->head;
    Node* prev = nullptr;
    Version prevVer = 0;
    Node* n = c.head;
    while (n != nullptr) {
      const Version nv = visit(n);
      const K nk = n->key;
      if (nk == key) {
        c.found = true;
        c.node = n;
        c.nodeVer = nv;
        c.pred = prev;
        c.predVer = prevVer;
        return c;
      }
      prev = n;
      prevVer = nv;
      n = n->hnext;
    }
    return c;
  }

  /// Stage the recency splice that moves `n` (visited at `nv`, unmarked) to
  /// MRU: 6 data entries; version bumps for head_, the displaced MRU, n's
  /// old neighbors, and n itself go into `bumps`. kRetry on any marked or
  /// aliased-torn neighborhood — the caller re-traverses.
  Promo stagePromotion(Node* n, Version nv, Bumps& bumps) {
    const Version hv = visitVer(head_.ver);
    Node* const m = head_.rnext;
    if (m == n) {
      // Raced into MRU between the caller's check and ours. Still bump n so
      // callers changing n's payload words (put-refresh) stay well-formed.
      bumps.note(n->ver, nv);
      return Promo::kAlreadyMru;
    }
    const Version mv = visit(m);
    if (isMarked(mv)) return Promo::kRetry;
    Node* const a = n->rprev;  // reads pinned by n's staged bump below
    Node* const b = n->rnext;
    // Aliases that only arise from torn (will-fail-validation) reads, but
    // must not reach the staging layer as duplicate addresses:
    if (a == n || b == n || a == &head_ || a == &tail_ || b == &head_ ||
        b == m) {
      return Promo::kRetry;
    }
    const Version av = (a == m) ? mv : visit(a);
    if (isMarked(av)) return Promo::kRetry;
    const Version bv = (b == a) ? av : visit(b);
    if (isMarked(bv)) return Promo::kRetry;
    add(a->rnext, n, b);
    add(b->rprev, n, a);
    add(head_.rnext, m, n);
    add(m->rprev, &head_, n);
    add(n->rprev, a, &head_);
    add(n->rnext, b, m);
    bumps.note(head_.ver, hv);
    bumps.note(m->ver, mv);
    bumps.note(a->ver, av);
    bumps.note(b->ver, bv);
    bumps.note(n->ver, nv);
    return Promo::kOk;
  }

  /// Stage the full one-KCAS removal of `c.node`: hash-chain unlink, recency
  /// unlink, size-1, and the node's mark. false = re-traverse.
  bool stageRemoval(const Chain& c, Bumps& bumps) {
    Node* const n = c.node;
    Node* const hs = n->hnext;
    if (c.pred != nullptr) {
      if (isMarked(c.predVer)) return false;
      add(c.pred->hnext, n, hs);
      bumps.note(c.pred->ver, c.predVer);
    } else {
      add(c.b->head, n, hs);
    }
    bumps.note(c.b->ver, c.bVer);
    Node* const a = n->rprev;
    Node* const b = n->rnext;
    if (a == n || b == n || a == &tail_ || b == &head_) return false;
    const Version av = visit(a);
    if (isMarked(av)) return false;
    const Version bv = (b == a) ? av : visit(b);
    if (isMarked(bv)) return false;
    add(a->rnext, n, b);
    add(b->rprev, n, a);
    bumps.note(a->ver, av);
    bumps.note(b->ver, bv);
    addVer(n->ver, c.nodeVer, verMark(c.nodeVer));
    const std::int64_t sz = size_;
    add(size_, sz, sz - 1);
    return true;
  }

  /// The at-capacity put: link the new node (bucket head + MRU) AND unlink
  /// the LRU victim (recency tail + its own bucket) in one KCAS, size
  /// unchanged. Handles the aliasing branches: victim in the same bucket as
  /// the new key (possibly at its chain head), single-element list (victim
  /// IS the MRU), two-element list (victim's recency pred IS the MRU).
  /// Returns true when committed (res filled in); false = caller retries.
  bool stagePutEvict(const Chain& c, Node*& spare, K key, V val,
                     std::uint64_t exp, std::int64_t sz, PutResult& res) {
    if (spare == nullptr) spare = pool_.alloc(key, val);
    spare->val.setInitial(val);
    spare->expiryNs.setInitial(exp);
    const Version tv = visitVer(tail_.ver);
    Node* const v = tail_.rprev;
    if (v == &head_ || v == &tail_) return false;  // raced to empty / torn
    const Version vv = visit(v);
    if (isMarked(vv)) return false;
    const Version hv = visitVer(head_.ver);
    Node* const m = head_.rnext;
    if (m == &head_ || m == &tail_) return false;  // torn: v exists
    const Version mv = (m == v) ? vv : visit(m);
    if (isMarked(mv)) return false;
    Bumps bumps;
    if (m == v) {
      // Single-entry list: [v] becomes [spare].
      add(head_.rnext, v, spare);
      add(tail_.rprev, v, spare);
      spare->rprev.setInitial(&head_);
      spare->rnext.setInitial(&tail_);
    } else {
      Node* const vp = v->rprev;  // vp == m is the normal two-element case
      if (vp == &head_ || vp == &tail_ || vp == v) return false;
      const Version vpv = (vp == m) ? mv : visit(vp);
      if (isMarked(vpv)) return false;
      add(head_.rnext, m, spare);
      add(m->rprev, &head_, spare);
      add(vp->rnext, v, &tail_);
      add(tail_.rprev, v, vp);
      spare->rprev.setInitial(&head_);
      spare->rnext.setInitial(m);
      bumps.note(vp->ver, vpv);
      bumps.note(m->ver, mv);
    }
    bumps.note(head_.ver, hv);
    bumps.note(tail_.ver, tv);
    // Victim's hash-chain unlink: walk its bucket for the predecessor.
    const K vkey = v->key;
    Bucket& vb = bucketOf(vkey);
    const bool sameBucket = (&vb == c.b);
    const Version vbVer = sameBucket ? c.bVer : visitVer(vb.ver);
    Node* vpred = nullptr;
    Version vpredVer = 0;
    bool walkOk = true;
    for (Node* x = vb.head; x != v;) {
      if (x == nullptr) {
        walkOk = false;  // raced: v left the chain
        break;
      }
      const Version xv = visit(x);
      if (isMarked(xv)) {
        walkOk = false;
        break;
      }
      vpred = x;
      vpredVer = xv;
      x = x->hnext;
    }
    if (!walkOk) return false;
    Node* const vhs = v->hnext;
    if (sameBucket && vpred == nullptr) {
      // Victim heads the very chain the new node enters: one head swing
      // replaces it (the chain is unsorted; position is irrelevant).
      spare->hnext.setInitial(vhs);
      add(vb.head, v, spare);
    } else {
      spare->hnext.setInitial(c.head);
      add(c.b->head, c.head, spare);
      if (vpred == nullptr) {
        add(vb.head, v, vhs);
      } else {
        add(vpred->hnext, v, vhs);
        bumps.note(vpred->ver, vpredVer);
      }
    }
    bumps.note(c.b->ver, c.bVer);
    bumps.note(vb.ver, vbVer);
    // Size anchor (old == new): eviction leaves the size unchanged, but
    // staging the word pins "the cache really was full at the linearization
    // point" — a stale full-looking read racing an erase would otherwise
    // commit an eviction below capacity.
    add(size_, sz, sz);
    addVer(v->ver, vv, verMark(vv));
    bumps.stage();
    if (!vexec()) return false;
    set_.ebr().retire(v, pool_);
    spare = nullptr;
    res.inserted = true;
    res.evicted = true;
    res.victim = vkey;
    return true;
  }

  // set_ first: destroyed last, after ~LruTtlCache recycled every node.
  mutable recl::DomainSet set_;
  recl::NodePool<Node>& pool_ = set_.pool<Node>();
  const std::int64_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<Bucket[]> buckets_;
  Node head_{K{}, V{}};  // MRU sentinel (never examined by key)
  Node tail_{K{}, V{}};  // LRU sentinel
  casword<std::int64_t> size_;
};

}  // namespace pathcas::ds
