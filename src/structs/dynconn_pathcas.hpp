// Lock-free dynamic connectivity on undirected acyclic graphs (forests) via
// PathCAS — appendix H of the paper.
//
// Representation: each connected component is an Euler tour stored in a
// doubly-linked "tour list" bracketed by a min and a max sentinel. Each
// graph vertex owns a permanent self-edge list node; each graph edge (v,w)
// contributes two list nodes (VW and WV, one per direction). Every vertex
// also keeps a singly-linked adjacency list of its incident edges, updated
// in the SAME vexec as the tour splice — PathCAS is structure-agnostic, so
// one atomic operation can span both structures.
//
// Serialization: every update increments the version of the component's
// minimum sentinel (appendix H: "a single version number protects the entire
// tour list"), so at most one update commits per component at a time, while
// connected() queries remain read-only validated searches.
//
// Simplification vs the paper: the paper stores tours in skip lists so the
// walk to the minimum sentinel is O(log n); we use the doubly-linked list
// the appendix describes first, making the walk linear in the component
// size. This preserves every concurrency property (what the appendix-H
// proofs argue about) and only changes the traversal complexity — acceptable
// because the PathCAS read-set bound caps component sizes anyway (components
// must fit the visit path; see kcas::KcasDomain::kMaxPath).
#pragma once

#include <cstdint>
#include <vector>

#include "pathcas/pathcas.hpp"
#include "recl/ebr.hpp"
#include "recl/pool.hpp"
#include "util/defs.hpp"

namespace pathcas::ds {

class DynConnPathCas {
 public:
  // Node types are public so callers can hand the constructor dedicated
  // pools.
  struct ListNode {
    casword<Version> ver;
    casword<std::int64_t> tag;  // packed edge id, vertex id, or kSentinel
    casword<ListNode*> prev;
    casword<ListNode*> next;
    ListNode(std::int64_t t, int /*owner*/) { tag.setInitial(t); }
  };
  struct AdjNode {
    casword<Version> ver;
    casword<std::int64_t> nbr;
    casword<ListNode*> out;  // list node for v->w
    casword<ListNode*> in;   // list node for w->v
    casword<AdjNode*> next;
    AdjNode(std::int64_t neighbor, ListNode* outNode, ListNode* inNode) {
      nbr.setInitial(neighbor);
      out.setInitial(outNode);
      in.setInitial(inNode);
    }
  };

  /// Fixed vertex set 0..n-1; edges are fully dynamic.
  explicit DynConnPathCas(int numVertices,
                          recl::EbrDomain& ebr = recl::EbrDomain::instance(),
                          recl::NodePool<ListNode>* listPool = nullptr,
                          recl::NodePool<AdjNode>* adjPool = nullptr)
      : ebr_(ebr),
        listPool_(listPool ? *listPool : recl::defaultPool<ListNode>()),
        adjPool_(adjPool ? *adjPool : recl::defaultPool<AdjNode>()),
        vertices_(static_cast<std::size_t>(numVertices)) {
    for (int v = 0; v < numVertices; ++v) {
      auto* self = listPool_.alloc(v, v);
      auto* smin = listPool_.alloc(kSentinel, v);
      auto* smax = listPool_.alloc(kSentinel, v);
      smin->next.setInitial(self);
      self->prev.setInitial(smin);
      self->next.setInitial(smax);
      smax->prev.setInitial(self);
      vertices_[static_cast<std::size_t>(v)].self = self;
    }
  }

  DynConnPathCas(const DynConnPathCas&) = delete;
  DynConnPathCas& operator=(const DynConnPathCas&) = delete;

  ~DynConnPathCas() {
    // Quiescent-teardown exception: recycle every tour list once (via min
    // sentinels) and all adjacency nodes straight into the pools (no EBR).
    for (auto& vx : vertices_) {
      for (AdjNode* a = vx.adjHead.load(); a != nullptr;) {
        AdjNode* next = a->next.load();
        adjPool_.destroy(a);
        a = next;
      }
    }
    std::vector<ListNode*> mins;
    for (auto& vx : vertices_) {
      ListNode* m = vx.self;
      while (m->prev.load() != nullptr) m = m->prev.load();
      bool dup = false;
      for (auto* seen : mins) dup = dup || (seen == m);
      if (!dup) mins.push_back(m);
    }
    for (auto* m : mins) {
      while (m != nullptr) {
        ListNode* next = m->next.load();
        listPool_.destroy(m);
        m = next;
      }
    }
  }

  /// True iff a path exists between v and w (validated snapshot semantics:
  /// both walks to the minimum sentinels were atomic).
  bool connected(int v, int w) {
    auto guard = ebr_.pin();
    if (v == w) return true;
    for (;;) {
      start();
      ListNode* const mv = walkToMin(self(v));
      ListNode* const mw = walkToMin(self(w));
      if (validate()) return mv == mw;
    }
  }

  /// Add edge (v,w). Returns false if v and w are already connected (adding
  /// the edge would create a cycle — the standard Euler-tour restriction).
  bool link(int v, int w) {
    PATHCAS_CHECK(v != w);
    auto guard = ebr_.pin();
    for (;;) {
      start();
      Splice sv, sw;
      surveyTour(self(v), sv);
      surveyTour(self(w), sw);
      if (sv.smin == sw.smin) {
        if (validate()) return false;  // already connected
        continue;
      }
      // Result tour: [Sv1, L2v, L1v, VW, L4w, L3w, WV, Sw4] — rotate v's
      // tour to end at v's self edge, splice in the new edge nodes around
      // w's similarly-rotated tour, drop v's max and w's min sentinels.
      auto* vw = listPool_.alloc(packEdge(v, w), v);
      auto* wv = listPool_.alloc(packEdge(w, v), v);
      beginStaging({vw, wv});
      Seg segs[6];
      int nsegs = 0;
      if (sv.afterSelfHead != nullptr)  // L2v
        segs[nsegs++] = {sv.afterSelfHead, sv.afterSelfTail};
      segs[nsegs++] = {sv.beforeSelfHead, sv.selfNode};  // L1v (has self)
      segs[nsegs++] = {vw, vw};
      if (sw.afterSelfHead != nullptr)  // L4w
        segs[nsegs++] = {sw.afterSelfHead, sw.afterSelfTail};
      segs[nsegs++] = {sw.beforeSelfHead, sw.selfNode};  // L3w
      segs[nsegs++] = {wv, wv};
      stitch(sv.smin, segs, nsegs, sw.smax);
      // Drop the two interior sentinels.
      markNode(sv.smax);
      markNode(sw.smin);
      // Serialize on v's min sentinel (the surviving one).
      bumpNode(sv.smin);
      flushBumps();
      // Register the edge in both adjacency lists, atomically with the
      // splice.
      auto* av = adjPool_.alloc(w, vw, wv);
      auto* aw = adjPool_.alloc(v, wv, vw);
      AdjNode* const vHead = vertex(v).adjHead.load();
      AdjNode* const wHead = vertex(w).adjHead.load();
      av->next.setInitial(vHead);
      aw->next.setInitial(wHead);
      add(vertex(v).adjHead, vHead, av);
      add(vertex(w).adjHead, wHead, aw);
      if (vexec()) {
        ebr_.retire(sv.smax, listPool_);
        ebr_.retire(sw.smin, listPool_);
        return true;
      }
      // Failed vexec: the four fresh nodes were staged as new values but
      // never became reachable — direct recycle is safe.
      listPool_.destroy(vw);
      listPool_.destroy(wv);
      adjPool_.destroy(av);
      adjPool_.destroy(aw);
    }
  }

  /// Remove edge (v,w). Returns false if the edge does not exist.
  bool cut(int v, int w) {
    PATHCAS_CHECK(v != w);
    auto guard = ebr_.pin();
    for (;;) {
      start();
      // Locate the edge in v's adjacency list (visiting entries).
      AdjFind fv = findAdj(v, w);
      if (fv.node == nullptr) {
        if (validate()) return false;
        continue;
      }
      AdjFind fw = findAdj(w, v);
      if (fw.node == nullptr) continue;  // transient: retry
      ListNode* const vwNode = fv.node->out.load();
      ListNode* const wvNode = fv.node->in.load();
      // Survey the single tour around the two edge nodes:
      //   [S1, L1, X, L2, Y, L3, S2]  ->  [S1, L1, L3, S2] + [S3, L2, S4]
      // where {X, Y} = {VW, WV} in whichever order the (rotated) tour holds
      // them — tour rotations from earlier links can place either one first.
      ListNode* const s1 = walkToMin(vwNode);
      ListNode* first = nullptr;
      ListNode* second = nullptr;
      ListNode* cur = s1;
      for (;;) {
        ListNode* nx = cur->next;
        if (nx == nullptr) break;
        visit(nx);
        if (nx == vwNode || nx == wvNode) {
          (first == nullptr ? first : second) = nx;
        }
        cur = nx;
      }
      if (first == nullptr || second == nullptr) continue;  // torn: retry
      if (cur->tag.load() != kSentinel) continue;
      ListNode* const s2 = cur;
      (void)s2;
      ListNode* const l1tail = first->prev;
      ListNode* const l2head = first->next;
      ListNode* const l2tail = second->prev;
      ListNode* const l3head = second->next;
      PATHCAS_DCHECK(l2head != second &&
                     "the far endpoint's self edge always sits between");

      // Detached tour: wrap L2 in fresh sentinels.
      auto* s3 = listPool_.alloc(kSentinel, v);
      auto* s4 = listPool_.alloc(kSentinel, v);
      beginStaging({s3, s4});
      // Main tour: bridge over [first .. second].
      linkPair(l1tail, l3head);
      s3->next.setInitial(l2head);
      s4->prev.setInitial(l2tail);
      add(l2head->prev, first, s3);
      bumpNode(l2head);
      add(l2tail->next, second, s4);
      bumpNode(l2tail);
      markNode(vwNode);
      markNode(wvNode);
      bumpNode(s1);  // serialize on the (surviving) min sentinel
      flushBumps();
      // Unlink both adjacency entries atomically with the splice.
      unlinkAdj(v, fv);
      unlinkAdj(w, fw);
      if (vexec()) {
        ebr_.retire(vwNode, listPool_);
        ebr_.retire(wvNode, listPool_);
        ebr_.retire(fv.node, adjPool_);
        ebr_.retire(fw.node, adjPool_);
        return true;
      }
      // Failed vexec: the fresh sentinels never became reachable.
      listPool_.destroy(s3);
      listPool_.destroy(s4);
    }
  }

  /// Quiescent check: every component's tour is a consistent doubly-linked
  /// list between sentinels, and self-edges partition across components.
  void checkInvariants() const {
    for (const auto& vx : vertices_) {
      // Walk to min, then forward to max, checking prev/next symmetry.
      ListNode* m = vx.self;
      while (m->prev.load() != nullptr) m = m->prev.load();
      PATHCAS_CHECK(m->tag.load() == kSentinel);
      ListNode* cur = m;
      while (cur->next.load() != nullptr) {
        ListNode* nx = cur->next.load();
        PATHCAS_CHECK(nx->prev.load() == cur);
        PATHCAS_CHECK(!isMarked(nx->ver.load()));
        cur = nx;
      }
      PATHCAS_CHECK(cur->tag.load() == kSentinel);
    }
  }

  static constexpr const char* name() { return "dynconn-pathcas"; }

 private:
  static constexpr std::int64_t kSentinel = -1;

  struct Vertex {
    ListNode* self = nullptr;
    casword<AdjNode*> adjHead;
  };
  struct Seg {
    ListNode* head;
    ListNode* tail;
  };
  struct Splice {
    ListNode* smin = nullptr;
    ListNode* smax = nullptr;
    ListNode* selfNode = nullptr;
    ListNode* beforeSelfHead = nullptr;  // first node after smin (L1 head)
    ListNode* afterSelfHead = nullptr;   // first node after self (L2), or null
    ListNode* afterSelfTail = nullptr;   // last node before smax
  };
  struct AdjFind {
    AdjNode* node = nullptr;
    Version nodeVer = 0;
    AdjNode* pred = nullptr;  // nullptr => entry is the head
    Version predVer = 0;
  };

  static std::int64_t packEdge(int v, int w) {
    return (static_cast<std::int64_t>(v) << 32) | static_cast<std::int64_t>(w);
  }

  Vertex& vertex(int v) { return vertices_[static_cast<std::size_t>(v)]; }
  ListNode* self(int v) { return vertex(v).self; }

  /// Walk prev pointers to the minimum sentinel, visiting every node.
  ListNode* walkToMin(ListNode* from) {
    ListNode* cur = from;
    visit(cur);
    for (;;) {
      ListNode* p = cur->prev;
      if (p == nullptr) return cur;
      visit(p);
      cur = p;
    }
  }

  /// Visit the entire tour containing `selfNode` and record its splice
  /// points relative to the self edge.
  void surveyTour(ListNode* selfNode, Splice& out) {
    out.selfNode = selfNode;
    out.smin = walkToMin(selfNode);
    out.beforeSelfHead = out.smin->next;
    // Forward from self to the max sentinel.
    ListNode* cur = selfNode;
    ListNode* firstAfter = cur->next;
    visit(firstAfter);
    cur = firstAfter;
    while (cur->next.load() != nullptr) {
      ListNode* nx = cur->next;
      visit(nx);
      cur = nx;
    }
    out.smax = cur;
    if (firstAfter == out.smax) {
      out.afterSelfHead = nullptr;  // L2 empty
      out.afterSelfTail = nullptr;
    } else {
      out.afterSelfHead = firstAfter;
      out.afterSelfTail = out.smax->prev;
    }
  }

  // --- staged-write helpers (dedup version bumps across boundary nodes) ---
  // Scratch is thread-local: one DynConn operation per thread at a time.

  struct Bump {
    ListNode* node;
    bool mark;
  };
  static std::vector<Bump>& bumpScratch() {
    static thread_local std::vector<Bump> b;
    return b;
  }
  static std::vector<ListNode*>& freshScratch() {
    static thread_local std::vector<ListNode*> f;
    return f;
  }

  static void beginStaging(std::initializer_list<ListNode*> freshNodes) {
    bumpScratch().clear();
    auto& fresh = freshScratch();
    fresh.clear();
    fresh.insert(fresh.end(), freshNodes.begin(), freshNodes.end());
  }

  void bumpNode(ListNode* n) { queueBump(n, /*mark=*/false); }
  void markNode(ListNode* n) { queueBump(n, /*mark=*/true); }
  void queueBump(ListNode* n, bool mark) {
    if (isFresh(n)) return;  // unpublished: no version discipline needed yet
    for (auto& b : bumpScratch()) {
      if (b.node == n) {
        b.mark = b.mark || mark;
        return;
      }
    }
    bumpScratch().push_back({n, mark});
  }
  /// Emit one version entry per touched node. Uses the freshest logical
  /// version (the node was visited earlier in this op; any interleaving
  /// change fails the vexec anyway).
  void flushBumps() {
    for (const auto& b : bumpScratch()) {
      const Version ver = b.node->ver.load();
      if (isMarked(ver)) {  // already deleted: poison the op so vexec fails
        addVer(b.node->ver, ver + 2, ver);
        continue;
      }
      addVer(b.node->ver, ver, b.mark ? verMark(ver) : verBump(ver));
    }
  }

  /// Stage a->next = b and b->prev = a (with old values read now).
  void linkPair(ListNode* a, ListNode* b) {
    add(a->next, a->next.load(), b);
    bumpNode(a);
    add(b->prev, b->prev.load(), a);
    bumpNode(b);
  }

  /// Stitch head -> segs[0] -> ... -> segs[n-1] -> tailSentinel.
  void stitch(ListNode* head, const Seg* segs, int n, ListNode* tailSent) {
    ListNode* prev = head;
    for (int i = 0; i < n; ++i) {
      stageNeighbors(prev, segs[i].head);
      prev = segs[i].tail;
    }
    stageNeighbors(prev, tailSent);
  }

  /// Like linkPair but tolerates brand-new (unpublished) nodes, whose
  /// pointers can be set directly.
  void stageNeighbors(ListNode* a, ListNode* b) {
    if (isFresh(a)) {
      a->next.setInitial(b);
    } else {
      add(a->next, a->next.load(), b);
      bumpNode(a);
    }
    if (isFresh(b)) {
      b->prev.setInitial(a);
    } else {
      add(b->prev, b->prev.load(), a);
      bumpNode(b);
    }
  }

  /// Fresh = allocated by the in-flight operation, tracked explicitly.
  static bool isFresh(ListNode* n) {
    for (auto* f : freshScratch()) {
      if (f == n) return true;
    }
    return false;
  }

  AdjFind findAdj(int v, int w) {
    AdjFind f;
    AdjNode* pred = nullptr;
    Version predVer = 0;
    AdjNode* cur = vertex(v).adjHead;
    while (cur != nullptr) {
      const Version cv = visit(cur);
      if (cur->nbr.load() == w) {
        f.node = cur;
        f.nodeVer = cv;
        f.pred = pred;
        f.predVer = predVer;
        return f;
      }
      pred = cur;
      predVer = cv;
      cur = cur->next;
    }
    return f;
  }

  void unlinkAdj(int v, const AdjFind& f) {
    AdjNode* const succ = f.node->next.load();
    if (f.pred == nullptr) {
      add(vertex(v).adjHead, f.node, succ);
    } else {
      add(f.pred->next, f.node, succ);
      addVer(f.pred->ver, f.predVer, verBump(f.predVer));
    }
    addVer(f.node->ver, f.nodeVer, verMark(f.nodeVer));
  }

  recl::EbrDomain& ebr_;
  recl::NodePool<ListNode>& listPool_;
  recl::NodePool<AdjNode>& adjPool_;
  std::vector<Vertex> vertices_;
};

}  // namespace pathcas::ds
