// Overload-protection primitives for the bench driver's open loop: a bounded
// admission queue with deadline shedding, and the adaptive flush policy that
// keeps a partially-filled netting window from holding an op past its flush
// deadline at low offered load (the cold-window hang).
//
// Both classes are pure logic over caller-supplied timestamps — they never
// read a clock themselves. The driver feeds them TtlClock::nowNs()
// (util/timing.hpp), so tests pin the virtual clock and every admit/shed/
// flush decision replays deterministically, with no sleeps and no real-time
// margins (tests/test_admission.cpp).
//
// Accounting contract (the identity every trial's JSON row must satisfy):
//
//   offered == admitted + shed + rejected
//
//   offered   every scheduled arrival handed to offer()
//   rejected  arrivals that found the queue at its qdepth bound (never
//             enqueued, never executed)
//   shed      enqueued arrivals whose queue wait exceeded the deadline at
//             dequeue time, plus everything still queued at trial stop
//             (shedRemaining) — the ops a deadline-bound client has already
//             given up on
//   admitted  pops that returned kAdmit; the driver executes exactly one op
//             per admit, so admitted == the trial's executed-op count
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

namespace pathcas::bench {

/// Per-worker bounded admission queue over scheduled arrival instants (ns).
/// qdepth == 0 means unbounded (rejection off); deadlineNs == 0 means never
/// shed. Single-threaded by design: each driver worker owns one.
class AdmissionQueue {
 public:
  AdmissionQueue(int qdepth, std::int64_t deadlineNs)
      : qdepth_(qdepth > 0 ? static_cast<std::size_t>(qdepth) : 0),
        deadlineNs_(deadlineNs > 0 ? static_cast<std::uint64_t>(deadlineNs)
                                   : 0) {}

  enum class Pop { kEmpty, kShed, kAdmit };

  /// Offer one scheduled arrival. Returns false iff the queue was full (the
  /// arrival is counted as rejected and dropped).
  bool offer(std::uint64_t arrivalNs) {
    ++offered_;
    if (qdepth_ != 0 && q_.size() >= qdepth_) {
      ++rejected_;
      return false;
    }
    q_.push_back(arrivalNs);
    return true;
  }

  /// Pop the oldest queued arrival at time `nowNs`. kAdmit stores the op's
  /// scheduled arrival into *arrivalNs (its latency origin); kShed means the
  /// op waited past the deadline and was dropped — the caller should try
  /// again for the next queued op.
  Pop pop(std::uint64_t nowNs, std::uint64_t* arrivalNs) {
    if (q_.empty()) return Pop::kEmpty;
    const std::uint64_t a = q_.front();
    q_.pop_front();
    if (deadlineNs_ != 0 && nowNs > a && nowNs - a > deadlineNs_) {
      ++shed_;
      return Pop::kShed;
    }
    ++admitted_;
    *arrivalNs = a;
    return Pop::kAdmit;
  }

  /// Trial stop: everything still queued is shed (a deadline-bound client
  /// has abandoned it), keeping the accounting identity exact.
  void shedRemaining() {
    shed_ += q_.size();
    q_.clear();
  }

  std::size_t size() const { return q_.size(); }
  std::uint64_t offered() const { return offered_; }
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t shed() const { return shed_; }
  std::uint64_t rejected() const { return rejected_; }

 private:
  std::deque<std::uint64_t> q_;
  std::size_t qdepth_;        // 0 = unbounded
  std::uint64_t deadlineNs_;  // 0 = never shed
  std::uint64_t offered_ = 0, admitted_ = 0, shed_ = 0, rejected_ = 0;
};

/// Latency-aware adaptive batch-flush policy for the driver's netting window
/// (and mirrored conceptually by the sharded map's combiner): track the
/// oldest buffered op's age, demand a flush when it crosses the deadline,
/// and adapt the window width — halve under deadline pressure (the offered
/// rate can't fill the window in time, so stop waiting for it), double back
/// toward the configured maximum when windows fill before their deadline.
class AdaptiveFlushPolicy {
 public:
  AdaptiveFlushPolicy(std::size_t maxWindow, std::uint64_t deadlineNs)
      : maxW_(maxWindow > 0 ? maxWindow : 1),
        curW_(maxW_),
        minW_(maxW_ < 2 ? maxW_ : 2),
        deadlineNs_(deadlineNs) {}

  bool timed() const { return deadlineNs_ != 0; }

  /// The first op of a (previously empty) window was buffered at `nowNs`.
  void windowOpened(std::uint64_t nowNs) { oldestNs_ = nowNs; }

  /// True when the oldest buffered op has aged past the flush deadline.
  /// Meaningless (always false) when untimed or while the window is empty —
  /// the caller gates on a non-empty buffer.
  bool deadlineExpired(std::uint64_t nowNs) const {
    return deadlineNs_ != 0 && nowNs >= oldestNs_ &&
           nowNs - oldestNs_ >= deadlineNs_;
  }

  /// Current adaptive window width (ops buffered before a size-triggered
  /// flush). Always in [min(2, max), max].
  std::size_t window() const { return curW_; }

  /// A window filled to width before its deadline: headroom, regrow.
  void noteFull() {
    curW_ = curW_ * 2 < maxW_ ? curW_ * 2 : maxW_;
    ++fullFlushes_;
  }

  /// A partial window aged out: deadline pressure, shrink.
  void noteDeadline() {
    curW_ = curW_ / 2 > minW_ ? curW_ / 2 : minW_;
    ++deadlineFlushes_;
  }

  std::uint64_t deadlineFlushes() const { return deadlineFlushes_; }
  std::uint64_t fullFlushes() const { return fullFlushes_; }

 private:
  std::size_t maxW_, curW_, minW_;
  std::uint64_t deadlineNs_;
  std::uint64_t oldestNs_ = 0;
  std::uint64_t deadlineFlushes_ = 0, fullFlushes_ = 0;
};

}  // namespace pathcas::bench
