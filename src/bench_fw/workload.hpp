// Workload generation for the benchmark driver: pluggable key-distribution
// generators (uniform, Zipfian, hotspot, latest, sequential-insert) and named
// operation-mix presets (YCSB A/B/C/E plus the paper's update-rate mixes).
//
// Design constraints, in order:
//  1. Determinism — a (seed, thread-id) pair fully determines a generator's
//     key sequence, so trials replay exactly and failures are reproducible.
//     Nothing here reads a global RNG or the clock.
//  2. Cheap per-sample cost — the generators sit inside the measured loop, so
//     sampling is a handful of arithmetic ops (the Zipfian harmonic constants
//     are precomputed once per (keyRange, theta), never per sample).
//  3. No driver dependency — driver.hpp includes this header, not the other
//     way around; everything below is usable standalone (see
//     tests/test_workload.cpp).
//
// The Zipfian sampler follows Gray et al., "Quickly Generating
// Billion-Record Synthetic Databases" (SIGMOD '94), the same method YCSB
// uses: draw u ~ U[0,1) and invert an analytic approximation of the Zipf CDF
// built from the harmonic constants zeta(n, theta). The expensive part,
// zeta(n, theta) = sum_{i=1..n} 1/i^theta, is computed INCREMENTALLY: a
// process-wide table keeps the partial sums already paid for, and a request
// for a larger n only sums the new tail (so a sweep over growing key ranges,
// or many trials at one range, pays the O(n) walk once, not per trial).
#pragma once

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/rand.hpp"

namespace pathcas::bench {

// ---------------------------------------------------------------------------
// Key distributions
// ---------------------------------------------------------------------------

enum class DistKind { kUniform, kZipfian, kHotspot, kLatest, kSequential };

/// A parsed key-distribution spec. `parse()` accepts the PATHCAS_BENCH_DIST
/// grammar; `label()` round-trips it (and is what the JSON `dist` field and
/// the CSV columns carry):
///   uniform                  every key equally likely (the default)
///   zipfian[:theta][:ranked] Zipf-distributed ranks, theta in [0, 1)
///                            (default 0.99). Ranks are scrambled across the
///                            key space by a fixed hash (YCSB's scrambled
///                            Zipfian) unless the `:ranked` suffix asks for
///                            rank i -> key i (hot keys adjacent, so the hot
///                            set collides in one subtree/prefix).
///   hotspot[:keyFrac[:opFrac]]  opFrac of operations (default 0.8) target
///                            the first keyFrac of the key space (default
///                            0.2); the rest are uniform over the cold keys.
///   latest[:theta]           Zipf over recency: keys near the most recently
///                            inserted key (YCSB-D style). The anchor starts
///                            at keyRange/2 and advances with every
///                            successful insert.
///   seq                      per-thread strided sequential keys (thread t of
///                            T emits t, t+T, t+2T, ... mod keyRange) — the
///                            classic sorted-load / log-append pattern.
struct DistSpec {
  DistKind kind = DistKind::kUniform;
  double theta = 0.99;      // zipfian / latest skew parameter, in [0, 1)
  double hotKeyFrac = 0.2;  // hotspot: fraction of the key space that is hot
  double hotOpFrac = 0.8;   // hotspot: fraction of ops aimed at the hot set
  bool scramble = true;     // zipfian: hash ranks across the key space

  /// Canonical text form, e.g. "uniform", "zipfian:0.99",
  /// "hotspot:0.2:0.8", "latest:0.99", "seq". Parameters are rendered with
  /// std::to_chars (shortest representation that parses back to the
  /// bit-identical double), so the label always round-trips through parse()
  /// to the exact distribution — a recorded row can be replayed from its
  /// own label.
  std::string label() const {
    const auto num = [](double v) {
      char b[32];
      const auto res = std::to_chars(b, b + sizeof b, v);
      return std::string(b, res.ptr);
    };
    switch (kind) {
      case DistKind::kUniform:
        return "uniform";
      case DistKind::kZipfian:
        return "zipfian:" + num(theta) + (scramble ? "" : ":ranked");
      case DistKind::kHotspot:
        return "hotspot:" + num(hotKeyFrac) + ":" + num(hotOpFrac);
      case DistKind::kLatest:
        return "latest:" + num(theta);
      case DistKind::kSequential:
        return "seq";
    }
    return "uniform";
  }

  /// Parse the grammar above. Returns false (and leaves *out untouched) on
  /// malformed input — unknown kind, theta outside [0, 1), fractions outside
  /// (0, 1).
  static bool parse(const std::string& s, DistSpec* out);
};

namespace detail {

/// Split "a:b:c" into fields.
inline std::vector<std::string> splitColons(const std::string& s) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = s.find(':', start);
    parts.push_back(s.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  return parts;
}

/// strtod with full-string validation. Rejects non-finite values ("nan",
/// "inf"): NaN in particular passes every range check by comparing false and
/// would poison the zeta cache's std::map ordering.
inline bool parseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || !std::isfinite(v)) return false;
  *out = v;
  return true;
}

/// strtoll with full-string validation (decimal, no sign games beyond what
/// strtoll accepts; rejects trailing junk and empty input).
inline bool parseInt64(const std::string& s, std::int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}

}  // namespace detail

inline bool DistSpec::parse(const std::string& s, DistSpec* out) {
  const std::vector<std::string> f = detail::splitColons(s);
  DistSpec spec;
  if (f[0] == "uniform") {
    if (f.size() != 1) return false;
    spec.kind = DistKind::kUniform;
  } else if (f[0] == "zipfian") {
    spec.kind = DistKind::kZipfian;
    std::size_t i = 1;
    if (i < f.size() && f[i] != "ranked") {
      if (!detail::parseDouble(f[i], &spec.theta)) return false;
      ++i;
    }
    if (i < f.size()) {
      if (f[i] != "ranked") return false;
      spec.scramble = false;
      ++i;
    }
    if (i != f.size()) return false;
    if (spec.theta < 0.0 || spec.theta >= 1.0) return false;
  } else if (f[0] == "hotspot") {
    spec.kind = DistKind::kHotspot;
    if (f.size() > 3) return false;
    if (f.size() >= 2 && !detail::parseDouble(f[1], &spec.hotKeyFrac))
      return false;
    if (f.size() >= 3 && !detail::parseDouble(f[2], &spec.hotOpFrac))
      return false;
    if (spec.hotKeyFrac <= 0.0 || spec.hotKeyFrac >= 1.0) return false;
    if (spec.hotOpFrac <= 0.0 || spec.hotOpFrac > 1.0) return false;
  } else if (f[0] == "latest") {
    spec.kind = DistKind::kLatest;
    if (f.size() > 2) return false;
    if (f.size() == 2 && !detail::parseDouble(f[1], &spec.theta)) return false;
    if (spec.theta < 0.0 || spec.theta >= 1.0) return false;
  } else if (f[0] == "seq" || f[0] == "sequential") {
    if (f.size() != 1) return false;
    spec.kind = DistKind::kSequential;
  } else {
    return false;
  }
  *out = spec;
  return true;
}

// ---------------------------------------------------------------------------
// Zipfian constants (Gray et al.), with the incremental zeta table
// ---------------------------------------------------------------------------

/// The per-(n, theta) constants the Gray sampler needs. Immutable once
/// computed; shared read-only by every worker thread of a trial.
struct ZipfianParams {
  std::uint64_t n = 0;
  double theta = 0.0;
  double zetan = 0.0;  // zeta(n, theta) = sum_{i=1..n} 1/i^theta
  double zeta2 = 0.0;  // zeta(2, theta) = 1 + 0.5^theta (rank-1 CDF cut)
  double alpha = 0.0;  // 1 / (1 - theta)
  double eta = 0.0;    // Gray's eta, from zeta2 and zetan

  /// Direct O(n) computation (the reference the incremental path must match;
  /// see test_workload.cpp's IncrementalZetaMatchesDirect).
  static ZipfianParams compute(std::uint64_t n, double theta) {
    double z = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
      z += 1.0 / std::pow(static_cast<double>(i), theta);
    return fromZeta(n, theta, z);
  }

  /// Cached / incremental lookup: a process-wide table keeps, per theta,
  /// every zeta(n', theta) already computed. A request for a larger n resumes
  /// the partial sum at the largest known n' < n and only adds the tail —
  /// identical floating-point result to compute() because the terms
  /// accumulate in the same order.
  static ZipfianParams forRange(std::uint64_t n, double theta) {
    static std::mutex mu;
    static std::map<double, std::map<std::uint64_t, double>> zetaTable;
    std::lock_guard<std::mutex> g(mu);
    std::map<std::uint64_t, double>& known = zetaTable[theta];
    double z = 0.0;
    std::uint64_t from = 1;
    auto it = known.upper_bound(n);
    if (it != known.begin()) {
      --it;  // largest n' <= n already summed
      z = it->second;
      from = it->first + 1;
    }
    for (std::uint64_t i = from; i <= n; ++i)
      z += 1.0 / std::pow(static_cast<double>(i), theta);
    known[n] = z;
    return fromZeta(n, theta, z);
  }

 private:
  static ZipfianParams fromZeta(std::uint64_t n, double theta, double zetan) {
    ZipfianParams p;
    p.n = n;
    p.theta = theta;
    p.zetan = zetan;
    p.zeta2 = 1.0 + std::pow(0.5, theta);
    p.alpha = 1.0 / (1.0 - theta);
    p.eta = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
            (1.0 - p.zeta2 / zetan);
    return p;
  }
};

/// Per-trial state shared by every worker's KeyGen: the Zipfian constants
/// (computed once, on the coordinating thread, before workers start) and the
/// `latest` distribution's recency anchor, advanced by successful inserts.
struct SharedWorkloadState {
  ZipfianParams zipf;  // valid iff the dist is zipfian or latest
  std::atomic<std::int64_t> latestAnchor;

  SharedWorkloadState(const DistSpec& spec, std::int64_t keyRange)
      : latestAnchor(keyRange / 2) {
    if (spec.kind == DistKind::kZipfian || spec.kind == DistKind::kLatest)
      zipf = ZipfianParams::forRange(static_cast<std::uint64_t>(keyRange),
                                     spec.theta);
  }
};

// ---------------------------------------------------------------------------
// The per-thread key generator
// ---------------------------------------------------------------------------

/// One worker thread's key stream. The (seed, tid) pair fully determines the
/// sequence (except `latest`, whose anchor is fed by racing inserts — by
/// design). The generator owns its RNG so the driver's op-type dice cannot
/// perturb the key stream.
class KeyGen {
 public:
  KeyGen(const DistSpec& spec, std::int64_t keyRange,
         SharedWorkloadState* shared, std::uint64_t seed, int tid,
         int nthreads)
      : spec_(spec),
        n_(static_cast<std::uint64_t>(keyRange)),
        shared_(shared),
        anchor_(shared == nullptr ? nullptr : &shared->latestAnchor),
        rng_(seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(tid)),
        seq_(static_cast<std::uint64_t>(tid)),
        stride_(static_cast<std::uint64_t>(nthreads)) {
    hotKeys_ = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(spec.hotKeyFrac *
                                      static_cast<double>(n_)));
    if (hotKeys_ >= n_) hotKeys_ = n_;  // degenerate: everything is hot
  }

  /// Next key in [0, keyRange).
  std::int64_t next() {
    switch (spec_.kind) {
      case DistKind::kUniform:
        return static_cast<std::int64_t>(rng_.nextBounded(n_));
      case DistKind::kZipfian: {
        // The scrambling hash is fixed (seed-independent): it is part of the
        // distribution's identity, not of a particular run.
        const std::uint64_t rank = zipfRank();
        return static_cast<std::int64_t>(
            spec_.scramble ? mix64(rank) % n_ : rank);
      }
      case DistKind::kHotspot: {
        if (hotKeys_ >= n_ || rng_.nextDouble() < spec_.hotOpFrac)
          return static_cast<std::int64_t>(rng_.nextBounded(hotKeys_));
        return static_cast<std::int64_t>(hotKeys_ +
                                         rng_.nextBounded(n_ - hotKeys_));
      }
      case DistKind::kLatest: {
        const std::uint64_t back = zipfRank();
        const std::uint64_t anchor = static_cast<std::uint64_t>(
            anchor_->load(std::memory_order_relaxed));
        return static_cast<std::int64_t>((anchor + n_ - back % n_) % n_);
      }
      case DistKind::kSequential: {
        const std::uint64_t k = seq_ % n_;
        seq_ += stride_;
        return static_cast<std::int64_t>(k);
      }
    }
    return 0;
  }

  /// Hook for the driver: a successful insert of `k` advances the `latest`
  /// recency anchor. No-op for every other distribution.
  void noteInsert(std::int64_t k) {
    if (spec_.kind == DistKind::kLatest)
      anchor_->store(k, std::memory_order_relaxed);
  }

 private:
  /// Gray's CDF-inversion: rank in [0, n), rank 0 most popular. Pure
  /// arithmetic over the precomputed constants (no zeta work per sample).
  std::uint64_t zipfRank() {
    const ZipfianParams& p = shared_->zipf;
    const double u = rng_.nextDouble();
    const double uz = u * p.zetan;
    if (uz < 1.0) return 0;
    if (uz < p.zeta2) return 1;
    const std::uint64_t r = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(p.eta * u - p.eta + 1.0, p.alpha));
    return r >= n_ ? n_ - 1 : r;
  }

  DistSpec spec_;
  std::uint64_t n_;
  const SharedWorkloadState* shared_;
  std::atomic<std::int64_t>* anchor_;
  std::uint64_t hotKeys_ = 0;
  Xoshiro256 rng_;
  std::uint64_t seq_;     // sequential: next index in this thread's stride
  std::uint64_t stride_;  // sequential: total thread count
};

// ---------------------------------------------------------------------------
// Operation-mix presets
// ---------------------------------------------------------------------------

/// A named operation mix: insert + delete + rq fractions; the remainder (up
/// to 1.0) is point lookups. YCSB's read-modify-write "update" maps to
/// matched insert/delete halves so the structure's size stays stationary
/// (the same convention as the paper's U% mixes = U/2% insert + U/2% delete);
/// YCSB-E's insert share is likewise split so the key range cannot saturate
/// mid-trial. rqSize > 0 also sets TrialConfig::rqSize (YCSB-E scans).
struct MixSpec {
  const char* name = "";
  double insertFrac = 0.0;
  double deleteFrac = 0.0;
  double rqFrac = 0.0;
  std::int64_t rqSize = 0;  // 0 = leave TrialConfig::rqSize alone
};

/// The preset table: YCSB A/B/C/E plus the paper's update-rate mixes
/// (u0/u1/u10/u50/u100, §5's 0/1/10/50/100%-update workloads).
inline const std::vector<MixSpec>& mixPresets() {
  static const std::vector<MixSpec> kPresets = {
      {"ycsb-a", 0.25, 0.25, 0.0, 0},    // 50% reads / 50% updates
      {"ycsb-b", 0.025, 0.025, 0.0, 0},  // 95% reads /  5% updates
      {"ycsb-c", 0.0, 0.0, 0.0, 0},      // 100% reads
      {"ycsb-e", 0.025, 0.025, 0.95, 64},  // 95% scans / 5% updates
      {"u0", 0.0, 0.0, 0.0, 0},
      {"u1", 0.005, 0.005, 0.0, 0},
      {"u10", 0.05, 0.05, 0.0, 0},
      {"u50", 0.25, 0.25, 0.0, 0},
      {"u100", 0.5, 0.5, 0.0, 0},
  };
  return kPresets;
}

/// Look up a preset by name; false if unknown.
inline bool findMix(const std::string& name, MixSpec* out) {
  for (const MixSpec& m : mixPresets()) {
    if (name == m.name) {
      *out = m;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Arrival process (closed loop vs open-loop Poisson)
// ---------------------------------------------------------------------------

/// How requests arrive at the workers. `closed` (the default) is the classic
/// back-to-back loop: each worker issues its next op the instant the
/// previous one returns, so the offered load adapts to the service rate and
/// slow periods are under-sampled (coordinated omission). `poisson:<rate>`
/// is an open loop: ops arrive on a deterministic Poisson schedule at
/// `<rate>` total ops/sec (split evenly across the workers), generated in
/// virtual time — an op whose scheduled arrival has already passed runs
/// immediately and the backlog it waited through is measured as queueing
/// delay, not silently dropped. PATHCAS_BENCH_ARRIVAL carries the same
/// grammar (driver.hpp, applyEnvArrival).
struct ArrivalSpec {
  bool open = false;      // false = closed loop
  double ratePerSec = 0;  // total target throughput across all threads
  /// Admission-queue bound, per worker thread: arrivals finding the queue at
  /// this depth are REJECTED (counted, never executed). 0 = unbounded queue
  /// (the pre-admission open loop). Only meaningful when open.
  int qdepth = 0;
  /// Queue-wait deadline in nanoseconds: an admitted-queue op whose wait
  /// (dequeue time minus scheduled arrival) exceeds this is SHED before
  /// execution. 0 = never shed. Only meaningful when open.
  std::int64_t deadlineNs = 0;

  /// Canonical text form: "closed" or
  /// "poisson:<rate>[:q<qdepth>][:d<deadlineNs>]"; round-trips through
  /// parse() like DistSpec::label().
  std::string label() const {
    if (!open) return "closed";
    char b[48];
    const auto res = std::to_chars(b, b + sizeof b, ratePerSec);
    std::string s = "poisson:" + std::string(b, res.ptr);
    if (qdepth > 0) s += ":q" + std::to_string(qdepth);
    if (deadlineNs > 0) s += ":d" + std::to_string(deadlineNs);
    return s;
  }

  /// Parse "closed" | "poisson:<opsPerSec>[:q<qdepth>][:d<deadlineNs>]"
  /// (rate finite and > 0; qdepth and deadline positive integers, each at
  /// most once). Returns false (leaving *out untouched) on malformed input.
  static bool parse(const std::string& s, ArrivalSpec* out) {
    const std::vector<std::string> f = detail::splitColons(s);
    ArrivalSpec spec;
    if (f[0] == "closed") {
      if (f.size() != 1) return false;
    } else if (f[0] == "poisson") {
      if (f.size() < 2) return false;
      spec.open = true;
      if (!detail::parseDouble(f[1], &spec.ratePerSec)) return false;
      if (spec.ratePerSec <= 0.0) return false;
      for (std::size_t i = 2; i < f.size(); ++i) {
        if (f[i].size() < 2) return false;
        std::int64_t v = 0;
        if (!detail::parseInt64(f[i].substr(1), &v) || v <= 0) return false;
        if (f[i][0] == 'q') {
          if (spec.qdepth != 0 || v > INT32_MAX) return false;
          spec.qdepth = static_cast<int>(v);
        } else if (f[i][0] == 'd') {
          if (spec.deadlineNs != 0) return false;
          spec.deadlineNs = v;
        } else {
          return false;
        }
      }
    } else {
      return false;
    }
    *out = spec;
    return true;
  }
};

/// One worker thread's deterministic Poisson arrival stream: exponential
/// inter-arrival gaps with mean 1/rate, from an RNG stream derived from
/// (seed, tid) exactly like KeyGen's — replaying a trial replays every
/// scheduled arrival instant. Gaps are produced in nanoseconds (double); the
/// driver converts to rdtsc ticks once per sample with TscCal::ticksPerNs.
class ArrivalGen {
 public:
  ArrivalGen(double ratePerSec, std::uint64_t seed, int tid)
      : meanGapNs_(1e9 / ratePerSec),
        rng_(seed * 0xd1342543de82ef95ULL + 0x9e3779b97f4a7c15ULL +
             static_cast<std::uint64_t>(tid)) {}

  /// Next inter-arrival gap in nanoseconds: -ln(1 - u) * mean, u ~ U[0,1).
  /// u = 0 maps to a zero gap; u -> 1 tails off past 20+ means, which is
  /// exactly the burstiness a Poisson process owes us.
  double nextGapNs() {
    return -std::log1p(-rng_.nextDouble()) * meanGapNs_;
  }

  double meanGapNs() const { return meanGapNs_; }

 private:
  double meanGapNs_;
  Xoshiro256 rng_;
};

}  // namespace pathcas::bench
