// Setbench-style benchmark driver (§5 "Our experiments follow the
// methodology of [9]"): prefill the structure to half its key range with a
// random key subset, run T threads issuing a mix of insert/delete/contains —
// plus, when cfg.rqFrac > 0, fixed-width range queries (index-scan style) —
// for a fixed duration, then validate the run with the keysum invariant (sum
// of successfully inserted keys minus successfully deleted keys must equal
// the structure's final keysum) before reporting throughput. Operations are
// counted per category, so RQ-heavy mixes report range-query throughput
// separately from point ops.
//
// Keys are drawn from a pluggable distribution (workload.hpp: uniform,
// Zipfian, hotspot, latest, sequential) selected by TrialConfig::dist, and
// the operation mix can be set from a named preset (TrialConfig::mix records
// which). Both are overridable from the environment (PATHCAS_BENCH_DIST /
// PATHCAS_BENCH_MIX, applied by applyEnvWorkload) and are recorded in every
// trial's JSON object, so a result row is never ambiguous about the workload
// that produced it.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_fw/admission.hpp"
#include "bench_fw/latency.hpp"
#include "bench_fw/workload.hpp"
#include "recl/ebr.hpp"
#include "util/backoff.hpp"
#include "util/defs.hpp"
#include "util/padding.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"
#include "util/timing.hpp"

namespace pathcas::bench {

struct TrialConfig {
  int threads = 1;
  std::int64_t keyRange = 1 << 16;
  /// Shard count for partitioned frontends (service/sharded_map.hpp);
  /// 1 (a single partition) for plain structures. Recorded in CSV/JSON so
  /// shard-sweep rows are self-describing, and consumed by adapters that are
  /// constructible from the TrialConfig (see sweepThreads).
  int shards = 1;
  double insertFrac = 0.05;  // e.g. 10% updates = 5% insert + 5% delete
  double deleteFrac = 0.05;
  /// Fraction of operations that are range queries (the structure must
  /// provide rangeQuery); the remainder after insert/delete/rq is contains.
  double rqFrac = 0.0;
  /// Width of each range query's key window: [k, k + rqSize - 1]. Must keep
  /// the scan's examined-node count within pathcas::kMaxVisited (roughly
  /// rqSize/2 live keys on a half-full range, plus the descent path).
  std::int64_t rqSize = 64;
  int durationMs = 200;
  std::uint64_t seed = 1;
  /// Key distribution the workers draw from (workload.hpp). Defaults to the
  /// paper's uniform-random keys.
  DistSpec dist;
  /// Name of the operation mix the fracs above encode ("u10", "ycsb-b", ...;
  /// "custom" when set by hand). Recorded in CSV/JSON so rows are
  /// self-describing; applyMix / withUpdates keep it in sync.
  std::string mix = "u10";
  /// Per-worker update batch width, for structures with insertBatch/
  /// eraseBatch (HasBatchOps): workers buffer this many updates and submit
  /// each buffer as one sorted, deduplicated group commit. 1 (default) is
  /// per-op commits — the k=1 fast-path baseline. Recorded in CSV/JSON;
  /// PATHCAS_BENCH_BATCH selects the sweep values (bench_helpers.hpp).
  int batch = 1;
  /// Flat-combining window forwarded to sharded frontends
  /// (service/sharded_map.hpp, Config::combineWindow) by adapters that are
  /// TrialConfig-constructible; <= 1 means combining off. Recorded in JSON.
  int combineWindow = 0;
  /// Per-op latency recording (bench_fw/latency.hpp): when on, sampled op
  /// durations land in a per-thread per-category tick histogram and the
  /// trial reports p50/p99/p999/max in calibrated nanoseconds. Off by
  /// default. PATHCAS_BENCH_LATENCY=1 turns it on everywhere
  /// (applyEnvLatency).
  bool latency = false;
  /// Recording samples every 2^latSampleShift-th op per thread (default
  /// 1-in-8): a sampled op pays two rdtsc reads, so on ~250ns ops full
  /// recording costs >10% throughput while 1-in-8 stays under ~2%. Quantile
  /// accuracy is unaffected in distribution (sampling is op-count-strided,
  /// uncorrelated with op cost); per-category `count` fields then report
  /// SAMPLES, not ops. Set 0 to record every op (latency_profile's
  /// high-fidelity mode).
  int latSampleShift = 3;
  /// Arrival process (workload.hpp, ArrivalSpec): closed loop (default) or
  /// open-loop Poisson arrivals at a fixed total rate, where latency is
  /// measured from each op's *scheduled* arrival so coordinated omission
  /// shows up as queueing delay instead of vanishing.
  /// PATHCAS_BENCH_ARRIVAL carries the same grammar (applyEnvArrival).
  /// `arrival.qdepth` / `arrival.deadlineNs` add admission control on top:
  /// a bounded per-worker queue (arrivals rejected at the bound) and a
  /// queue-wait deadline past which queued ops are shed before execution
  /// (bench_fw/admission.hpp). PATHCAS_BENCH_QDEPTH / PATHCAS_BENCH_DEADLINE
  /// override them (applyEnvAdmission).
  ArrivalSpec arrival;
  /// Flush deadline for the batching netting window, in nanoseconds: a
  /// partially filled window is flushed once its oldest buffered op is this
  /// old, and the window width adapts — shrink under deadline pressure,
  /// regrow under headroom (bench_fw/admission.hpp, AdaptiveFlushPolicy).
  /// 0 defers to the admission deadline (arrival.deadlineNs) when one is
  /// set; with neither, windows flush only when full (the pre-adaptive
  /// behavior, where a cold window could hold an op indefinitely at low
  /// offered rate). PATHCAS_BENCH_FLUSH_DEADLINE overrides.
  std::int64_t flushDeadlineNs = 0;
};

struct TrialResult {
  double mops = 0.0;          // million *submitted* ops per second (total)
  /// Ops submitted by the workers. Under window netting (batch > 1) a
  /// buffered update that a later same-key update annihilates is still
  /// submitted — the client issued and completed it — but never executes
  /// against the structure. JSON `total_ops` keeps meaning submitted.
  std::uint64_t totalOps = 0;
  /// Ops that actually executed against the structure: submitted minus
  /// annihilated. Equal to totalOps when batch <= 1. The honest denominator
  /// for per-op structure cost (batch_commit's attribution uses
  /// mopsApplied, not mops).
  std::uint64_t opsApplied = 0;
  double mopsApplied = 0.0;   // million applied ops per second
  /// Mean wall-nanoseconds per submitted op over the timed window, summed
  /// across threads and calibrated via TscCal (tsc→ns). The portable per-op
  /// cost number; in open-loop mode it includes arrival idle time.
  double nsPerOp = 0.0;
  /// Derived: raw rdtsc ticks per submitted op. Platform-dependent units
  /// (TSC increments on x86, steady_clock ticks elsewhere) — kept for
  /// continuity with the paper's cycle counts, but ns_per_op is primary.
  double cyclesPerOp = 0.0;
  /// The timed window, go→stop. Excludes worker join and the post-stop
  /// batch drain (drainSec), which earlier versions folded in — skewing
  /// mops and cycles/op with batch width.
  double elapsedSec = 0.0;
  /// Post-stop wall time: outstanding batch-window drain + thread join.
  /// Reported separately so wide windows can't inflate the timed window.
  double drainSec = 0.0;
  /// Per-category latency quantiles (valid iff TrialConfig::latency).
  LatencySummary lat;
  bool keysumOk = false;
  std::uint64_t inserts = 0, deletes = 0, finds = 0;
  std::uint64_t rqs = 0;      // range queries completed
  std::uint64_t rqKeys = 0;   // keys returned across all range queries
  /// Per-thread op-count extremes: under skewed keys, threads serialize on
  /// the hot set at different rates, and max/min >> 1 makes that imbalance
  /// visible in the output without dumping per-thread rows.
  std::uint64_t minThreadOps = 0, maxThreadOps = 0;
  /// Structure memory at trial end (pool counters), when the structure
  /// exposes footprintBytes(); 0 otherwise.
  std::uint64_t footprintBytes = 0;
  /// Admission accounting (bench_fw/admission.hpp). The identity
  ///   opsOffered == totalOps + opsShed + opsRejected
  /// holds exactly in every trial (checked in runTrial): totalOps IS the
  /// admitted count — one executed op per admit. Closed loop (and open loop
  /// without admission) degenerates to opsOffered == totalOps, rest 0.
  std::uint64_t opsOffered = 0;
  std::uint64_t opsShed = 0;      // queued past the deadline, dropped
  std::uint64_t opsRejected = 0;  // arrived at a full queue, dropped
  /// Million ops/sec that completed within the admission deadline — the
  /// y-axis of a goodput-vs-offered-load curve. Equals mops when no
  /// deadline is configured (every completed op is good).
  double goodputMops = 0.0;
  /// Netting-window flushes by trigger: the flush deadline firing on a
  /// partial window vs. the window filling to its adaptive width.
  std::uint64_t deadlineFlushes = 0, fullFlushes = 0;
  /// Cross-shard range-query retries (HasRqRetries structures); 0 otherwise.
  std::uint64_t rqRetries = 0;
  /// Per-shard combiner queueing p99 in ns (HasShardSched structures, with
  /// latency recording on); empty otherwise. Index = shard id.
  std::vector<double> shardSchedP99Ns;
};

/// Apply a named mix preset to a config (fracs + mix name + rqSize for
/// scan-bearing presets like ycsb-e).
inline void applyMix(TrialConfig& cfg, const MixSpec& m) {
  cfg.insertFrac = m.insertFrac;
  cfg.deleteFrac = m.deleteFrac;
  cfg.rqFrac = m.rqFrac;
  if (m.rqSize > 0) cfg.rqSize = m.rqSize;
  cfg.mix = m.name;
}

inline bool applyMixByName(TrialConfig& cfg, const std::string& name) {
  MixSpec m;
  if (!findMix(name, &m)) return false;
  applyMix(cfg, m);
  return true;
}

/// PATHCAS_BENCH_DIST override (grammar: DistSpec::parse). Returns true iff
/// a well-formed spec was applied; malformed values warn on stderr and leave
/// the config unchanged.
inline bool applyEnvDist(TrialConfig& cfg) {
  const char* d = std::getenv("PATHCAS_BENCH_DIST");
  if (d == nullptr || *d == '\0') return false;
  if (!DistSpec::parse(d, &cfg.dist)) {
    static bool warned = false;  // once per process, not per sweep cell
    if (!warned) {
      warned = true;
      std::fprintf(stderr,
                   "ignoring malformed PATHCAS_BENCH_DIST=\"%s\" (want e.g. "
                   "uniform | zipfian:0.99 | hotspot:0.2:0.8 | latest | seq)\n",
                   d);
    }
    return false;
  }
  return true;
}

/// PATHCAS_BENCH_MIX override (preset names: workload.hpp). Returns true iff
/// a known preset was applied.
inline bool applyEnvMix(TrialConfig& cfg) {
  const char* m = std::getenv("PATHCAS_BENCH_MIX");
  if (m == nullptr || *m == '\0') return false;
  if (!applyMixByName(cfg, m)) {
    static bool warned = false;  // once per process, not per sweep cell
    if (!warned) {
      warned = true;
      std::fprintf(stderr,
                   "ignoring unknown PATHCAS_BENCH_MIX=\"%s\" (presets:", m);
      for (const MixSpec& p : mixPresets())
        std::fprintf(stderr, " %s", p.name);
      std::fprintf(stderr, ")\n");
    }
    return false;
  }
  return true;
}

/// PATHCAS_BENCH_LATENCY override: "1"/"on" enables per-op latency
/// recording, "0"/"off" disables it. Returns true iff the knob was present
/// and well-formed.
inline bool applyEnvLatency(TrialConfig& cfg) {
  const char* v = std::getenv("PATHCAS_BENCH_LATENCY");
  if (v == nullptr || *v == '\0') return false;
  const std::string s(v);
  if (s == "1" || s == "on") {
    cfg.latency = true;
    return true;
  }
  if (s == "0" || s == "off") {
    cfg.latency = false;
    return true;
  }
  static bool warned = false;  // once per process, not per sweep cell
  if (!warned) {
    warned = true;
    std::fprintf(stderr,
                 "ignoring malformed PATHCAS_BENCH_LATENCY=\"%s\" "
                 "(want 1/on or 0/off)\n",
                 v);
  }
  return false;
}

/// PATHCAS_BENCH_ARRIVAL override (grammar: ArrivalSpec::parse — "closed"
/// or "poisson:<opsPerSec>[:q<qdepth>][:d<deadlineNs>]"). Returns true iff a
/// well-formed spec was applied; malformed values warn on stderr and leave
/// the config unchanged.
inline bool applyEnvArrival(TrialConfig& cfg) {
  const char* a = std::getenv("PATHCAS_BENCH_ARRIVAL");
  if (a == nullptr || *a == '\0') return false;
  if (!ArrivalSpec::parse(a, &cfg.arrival)) {
    static bool warned = false;  // once per process, not per sweep cell
    if (!warned) {
      warned = true;
      std::fprintf(stderr,
                   "ignoring malformed PATHCAS_BENCH_ARRIVAL=\"%s\" (want "
                   "closed | poisson:<opsPerSec>[:q<qdepth>][:d<ns>])\n",
                   a);
    }
    return false;
  }
  return true;
}

/// Admission-control knobs: PATHCAS_BENCH_QDEPTH (per-worker queue bound),
/// PATHCAS_BENCH_DEADLINE (queue-wait shed deadline, ns) and
/// PATHCAS_BENCH_FLUSH_DEADLINE (netting-window flush deadline, ns). The
/// first two land in cfg.arrival and take effect only for open-loop
/// arrivals; 0 disables each. Returns true iff any knob was applied;
/// malformed values warn on stderr and are ignored.
inline bool applyEnvAdmission(TrialConfig& cfg) {
  bool any = false;
  const auto knob = [&any](const char* name, auto&& apply) {
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0') return;
    std::int64_t parsed = 0;
    if (detail::parseInt64(v, &parsed) && parsed >= 0) {
      apply(parsed);
      any = true;
    } else {
      static bool warned = false;  // once per process, not per sweep cell
      if (!warned) {
        warned = true;
        std::fprintf(stderr,
                     "ignoring malformed %s=\"%s\" (want a non-negative "
                     "integer)\n",
                     name, v);
      }
    }
  };
  knob("PATHCAS_BENCH_QDEPTH", [&cfg](std::int64_t v) {
    cfg.arrival.qdepth = static_cast<int>(std::min<std::int64_t>(v, INT32_MAX));
  });
  knob("PATHCAS_BENCH_DEADLINE",
       [&cfg](std::int64_t v) { cfg.arrival.deadlineNs = v; });
  knob("PATHCAS_BENCH_FLUSH_DEADLINE",
       [&cfg](std::int64_t v) { cfg.flushDeadlineNs = v; });
  return any;
}

/// All the environment overrides, honoured by every bench that goes
/// through sweepThreads (and applied explicitly by the benches that drive
/// runTrial themselves). Benches whose mix IS the experiment's axis
/// (fig06's update-vs-search columns) apply only applyEnvDist.
inline void applyEnvWorkload(TrialConfig& cfg) {
  applyEnvDist(cfg);
  applyEnvMix(cfg);
  applyEnvLatency(cfg);
  applyEnvArrival(cfg);
  applyEnvAdmission(cfg);
}

/// One-line workload description for bench headers, e.g.
/// "dist=zipfian:0.99 mix=ycsb-b arrival=poisson:500000".
inline std::string describeWorkload(const TrialConfig& cfg) {
  std::string s = "dist=" + cfg.dist.label() + " mix=" + cfg.mix;
  if (cfg.arrival.open) s += " arrival=" + cfg.arrival.label();
  return s;
}

/// Structures that support the range-query mix (rqFrac > 0).
template <typename Set>
concept HasRangeQuery =
    requires(Set s, std::vector<std::pair<std::int64_t, std::int64_t>> buf) {
      { s.rangeQuery(std::int64_t{}, std::int64_t{}, buf) };
    };

/// Structures whose memory use can be read from pool counters; their trials
/// carry footprint_bytes in the JSON output.
template <typename Set>
concept HasFootprint = requires(const Set s) {
  { s.footprintBytes() } -> std::convertible_to<std::uint64_t>;
};

/// Structures that can be built in parallel from a sorted key vector
/// (service/sharded_map.hpp). prefillHalf uses this instead of the serial
/// insert loop; bulkLoad returns the inserted keysum, same contract.
template <typename Set>
concept HasBulkLoad = requires(Set s, std::vector<std::int64_t> keys) {
  { s.bulkLoad(keys, int{}) } -> std::convertible_to<std::int64_t>;
};

/// Structures exposing sorted-run group commits (the trees' and the sharded
/// map's insertBatch/eraseBatch). Only these honour TrialConfig::batch > 1.
template <typename Set>
concept HasBatchOps =
    requires(Set s, const std::int64_t* ks, const std::int64_t* vs,
             std::size_t n, bool* out) {
      { s.insertBatch(ks, vs, n, out) } -> std::convertible_to<std::size_t>;
      { s.eraseBatch(ks, n, out) } -> std::convertible_to<std::size_t>;
    };

/// Structures additionally exposing the mixed-run group commit (int_bst's
/// updateBatch): one sorted run carrying per-op insert/erase flags, staged
/// in a single traversal with one wide KCAS per chunk. When present, the
/// window flush issues one merged run instead of an erase run followed by
/// an insert run — halving the traversals the flush pays.
template <typename Set>
concept HasUpdateBatch =
    requires(Set s, const std::int64_t* ks, const std::int64_t* vs,
             const bool* ins, std::size_t n, bool* out) {
      {
        s.updateBatch(ks, vs, ins, n, out)
      } -> std::convertible_to<std::size_t>;
    };

/// Structures surfacing their cross-shard range-query retry counter
/// (service/sharded_map.hpp): livelock under churn becomes an observable
/// per-trial `rq_retries` column instead of silent spinning.
template <typename Set>
concept HasRqRetries = requires(const Set s) {
  { s.rqRetries() } -> std::convertible_to<std::uint64_t>;
};

/// Structures exposing per-shard combiner-queueing p99s (ns): the driver
/// lifts them into TrialResult::shardSchedP99Ns so combiner queueing is
/// attributable shard-by-shard in the JSON output.
template <typename Set>
concept HasShardSched = requires(const Set s) {
  { s.shardSchedP99Ns() } -> std::convertible_to<std::vector<double>>;
};

/// Benchmark scale, from PATHCAS_BENCH_SCALE ("quick" default, "full" for
/// paper-scale key ranges and durations).
inline bool fullScale() {
  const char* s = std::getenv("PATHCAS_BENCH_SCALE");
  return s != nullptr && std::string(s) == "full";
}
inline int scaledDurationMs(int quickMs, int fullMs) {
  return fullScale() ? fullMs : quickMs;
}
inline std::int64_t scaledKeys(std::int64_t quick, std::int64_t full) {
  return fullScale() ? full : quick;
}

/// Worker count for parallel prefill (HasBulkLoad structures): the machine's
/// concurrency, capped — prefill is bandwidth-bound well before 8 threads.
inline int prefillThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 8u));
}

/// Prefill with a random half of the key range (random insertion order so
/// unbalanced trees get their expected logarithmic depth). Structures with a
/// parallel bulkLoad get the same key subset loaded via sorted bulk build
/// instead of the serial insert loop.
template <typename Set>
std::int64_t prefillHalf(Set& set, std::int64_t keyRange,
                         std::uint64_t seed = 12345) {
  std::vector<std::int64_t> keys(static_cast<std::size_t>(keyRange));
  for (std::int64_t i = 0; i < keyRange; ++i)
    keys[static_cast<std::size_t>(i)] = i;
  Xoshiro256 rng(seed);
  for (std::size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.nextBounded(i)]);
  }
  keys.resize(static_cast<std::size_t>(keyRange / 2));
  if constexpr (HasBulkLoad<Set>) {
    std::sort(keys.begin(), keys.end());
    return set.bulkLoad(keys, prefillThreads());
  } else {
    std::int64_t keysum = 0;
    for (const std::int64_t k : keys) {
      if (set.insert(k, k)) keysum += k;
    }
    return keysum;
  }
}

/// Run one timed trial against a prefilled set. `prefillSum` is the keysum
/// after prefill, used for validation.
template <typename Set>
TrialResult runTrial(Set& set, const TrialConfig& cfg,
                     std::int64_t prefillSum) {
  struct alignas(kNoFalseSharing) PerThread {
    std::uint64_t ops = 0, inserts = 0, deletes = 0, finds = 0;
    std::uint64_t opsApplied = 0;
    std::uint64_t rqs = 0, rqKeys = 0;
    std::int64_t keysumDelta = 0;
    std::uint64_t cycles = 0;
    // Admission accounting (== ops/0/0/ops without admission control) and
    // deadline-good completions; flush counts by trigger.
    std::uint64_t offered = 0, shed = 0, rejected = 0, good = 0;
    std::uint64_t deadlineFlushes = 0, fullFlushes = 0;
  };
  if constexpr (!HasRangeQuery<Set>) {
    PATHCAS_CHECK(cfg.rqFrac == 0.0 &&
                  "rqFrac > 0 requires a structure with rangeQuery()");
  }
  if (cfg.arrival.open)
    PATHCAS_CHECK(cfg.arrival.ratePerSec > 0.0 &&
                  "open-loop arrival needs a positive rate");
  // Force the one-time tsc→ns calibration (a ~20ms spin) before any worker
  // exists, so it can never land inside a timed window. ns_per_op needs it
  // unconditionally; open-loop arrival additionally needs ticks-per-ns to
  // turn nanosecond gaps into rdtsc deadlines.
  const double nsPerTick = TscCal::nsPerTick();
  const double ticksPerNs = 1.0 / nsPerTick;
  std::vector<PerThread> stats(static_cast<std::size_t>(cfg.threads));
  // Per-thread latency recorders live outside PerThread: each is tens of KB
  // of histogram buckets, only allocated when recording is on.
  std::vector<LatencyRecorder> recs(
      cfg.latency ? static_cast<std::size_t>(cfg.threads) : 0);
  std::atomic<bool> go{false}, stop{false};
  std::atomic<int> ready{0};

  // Zipfian constants are computed here, once, before any worker exists (the
  // incremental zeta table makes repeat trials at the same key range free).
  SharedWorkloadState wstate(cfg.dist, cfg.keyRange);

  // Release the registry slot the calling thread lazily acquired during
  // prefill, so a kMaxThreads-wide sweep can register every worker. The
  // caller re-registers automatically on its next structure access (the
  // keysum validation below), after the workers have deregistered.
  ThreadRegistry::instance().deregisterThread();

  const std::uint64_t insertCut =
      static_cast<std::uint64_t>(cfg.insertFrac * 1e9);
  const std::uint64_t deleteCut =
      insertCut + static_cast<std::uint64_t>(cfg.deleteFrac * 1e9);
  const std::uint64_t rqCut =
      deleteCut + static_cast<std::uint64_t>(cfg.rqFrac * 1e9);

  std::vector<std::thread> workers;
  for (int t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      ThreadGuard tg;
      // Two independent deterministic streams per worker: the key generator
      // owns one (so replacing the op-type dice can never perturb the key
      // sequence) and the dice keep the legacy seeding.
      KeyGen keys(cfg.dist, cfg.keyRange, &wstate, cfg.seed, t, cfg.threads);
      Xoshiro256 rng(cfg.seed * 1000003 + static_cast<std::uint64_t>(t));
      PerThread& my = stats[static_cast<std::size_t>(t)];
      std::vector<std::pair<std::int64_t, std::int64_t>> rqBuf;
      rqBuf.reserve(static_cast<std::size_t>(cfg.rqSize));

      // Group-commit mode (cfg.batch > 1 on a HasBatchOps structure):
      // updates are buffered into a window of cfg.batch ops and settled at
      // the flush. All ops in one window are concurrent (the submitter has
      // not observed any of their results yet), so the flush nets them
      // per key — the LAST op on a key decides its final presence, and the
      // earlier ops on that key linearize immediately before it, mutually
      // cancelling — then submits the net ops: one merged sorted run when
      // the structure has updateBatch, else one sorted erase run and one
      // sorted insert run (the same elimination argument as the ShardedMap
      // combiner).
      // Stats and keysum are settled from the net-op outcomes: a key's
      // keysum contribution changes exactly when its net op succeeds.
      // Reads stay immediate.
      struct WinOp {
        std::int64_t key, val;
        std::uint64_t t0Ns;      // latency origin ns (0: not sampled)
        std::uint64_t arrivalNs; // scheduled arrival ns (0: no deadline)
        std::uint32_t seq;  // submission order: tiebreak so last-op-wins
        bool isInsert;
      };
      const bool batching = cfg.batch > 1;
      const std::size_t batchW =
          static_cast<std::size_t>(std::max(cfg.batch, 1));
      std::vector<WinOp> winBuf;
      std::vector<std::int64_t> erKeys, insKeys, insVals;
      std::unique_ptr<bool[]> outBuf, insFlag;
      if (batching) {
        winBuf.reserve(batchW);
        erKeys.reserve(batchW);
        insKeys.reserve(batchW);
        insVals.reserve(batchW);
        outBuf = std::make_unique<bool[]>(batchW);
        insFlag = std::make_unique<bool[]>(batchW);
      }
      // Arrival/admission mode flags. Open-loop time runs in NANOSECONDS
      // through TtlClock (real mode: calibrated tsc; virtual mode: the test
      // clock), so admission and flush-deadline decisions are deterministic
      // under a pinned virtual clock. The closed-loop unbatched hot path
      // keeps its raw-rdtsc timing untouched.
      const bool openLoop = cfg.arrival.open;
      const int qdepth = cfg.arrival.qdepth;
      const std::int64_t deadlineNs = cfg.arrival.deadlineNs;
      const bool admission = openLoop && (qdepth > 0 || deadlineNs > 0);
      const bool trackDeadline = openLoop && deadlineNs > 0;
      // Flush deadline: the explicit knob first, else inherit the admission
      // deadline — an op the client would shed for queue-waiting must not
      // sit just as long in a cold netting window.
      const std::int64_t effFlushDeadlineNs =
          cfg.flushDeadlineNs > 0 ? cfg.flushDeadlineNs
                                  : (trackDeadline ? deadlineNs : 0);
      AdaptiveFlushPolicy flushPol(
          batchW, effFlushDeadlineNs > 0
                      ? static_cast<std::uint64_t>(effFlushDeadlineNs)
                      : 0);
      const bool flushTimed = batching && flushPol.timed();
      enum class FlushCause { kFull, kDeadline, kDrain };
      auto flushBatches = [&](LatencyRecorder* rec, FlushCause cause) {
        if constexpr (HasBatchOps<Set>) {
          if (winBuf.empty()) return;
          // Adapt the window width by what triggered the flush; the stop
          // drain is neither pressure nor headroom and adapts nothing.
          if (cause == FlushCause::kFull) flushPol.noteFull();
          else if (cause == FlushCause::kDeadline) flushPol.noteDeadline();
          // std::sort with a (key, seq) compare: stable_sort's per-call
          // buffer allocation is measurable at small window sizes.
          std::sort(winBuf.begin(), winBuf.end(),
                    [](const WinOp& a, const WinOp& b) {
                      return a.key != b.key ? a.key < b.key : a.seq < b.seq;
                    });
          if constexpr (HasUpdateBatch<Set>) {
            // Merged flush: the net ops stay one sorted run with per-op
            // insert/erase flags, so the structure stages both kinds in a
            // single traversal — one wide KCAS per chunk covers the lot.
            insKeys.clear();
            insVals.clear();
            std::size_t m = 0;
            for (std::size_t i = 0; i < winBuf.size(); ++i) {
              if (i + 1 < winBuf.size() && winBuf[i + 1].key == winBuf[i].key)
                continue;  // not the last op on this key: annihilated
              insKeys.push_back(winBuf[i].key);
              insVals.push_back(winBuf[i].val);
              insFlag[m++] = winBuf[i].isInsert;
            }
            my.opsApplied += m;  // survivors execute; annihilated ops do not
            set.updateBatch(insKeys.data(), insVals.data(), insFlag.get(), m,
                            outBuf.get());
            for (std::size_t i = 0; i < m; ++i) {
              if (!outBuf[i]) continue;
              if (insFlag[i]) {
                my.keysumDelta += insKeys[i];
                keys.noteInsert(insKeys[i]);
              } else {
                my.keysumDelta -= insKeys[i];
              }
            }
          } else {
            erKeys.clear();
            insKeys.clear();
            insVals.clear();
            for (std::size_t i = 0; i < winBuf.size(); ++i) {
              if (i + 1 < winBuf.size() && winBuf[i + 1].key == winBuf[i].key)
                continue;  // not the last op on this key: annihilated
              if (winBuf[i].isInsert) {
                insKeys.push_back(winBuf[i].key);
                insVals.push_back(winBuf[i].val);
              } else {
                erKeys.push_back(winBuf[i].key);
              }
            }
            my.opsApplied += erKeys.size() + insKeys.size();
            if (!erKeys.empty()) {
              set.eraseBatch(erKeys.data(), erKeys.size(), outBuf.get());
              for (std::size_t i = 0; i < erKeys.size(); ++i)
                if (outBuf[i]) my.keysumDelta -= erKeys[i];
            }
            if (!insKeys.empty()) {
              set.insertBatch(insKeys.data(), insVals.data(), insKeys.size(),
                              outBuf.get());
              for (std::size_t i = 0; i < insKeys.size(); ++i) {
                if (outBuf[i]) {
                  my.keysumDelta += insKeys[i];
                  keys.noteInsert(insKeys[i]);
                }
              }
            }
          }
          // Every op in the window — survivor or annihilated — completes at
          // the flush; a sampled op's latency (t0Ns != 0) runs from its
          // submission (closed loop) or scheduled arrival (open loop) to
          // now, so window fill time is measured as the serving latency it
          // really is. Unsampled ops carry t0Ns == 0 and are skipped. With
          // an admission deadline, each op counts toward goodput iff it
          // completed (at this flush) within its deadline.
          if (rec != nullptr || trackDeadline) {
            const std::uint64_t tEndNs = TtlClock::nowNs();
            for (const WinOp& op : winBuf) {
              if (rec != nullptr && op.t0Ns != 0) {
                const std::uint64_t durNs =
                    tEndNs > op.t0Ns ? tEndNs - op.t0Ns : 0;
                rec->record(op.isInsert ? OpCat::kInsert : OpCat::kErase,
                            static_cast<std::uint64_t>(durNs * ticksPerNs));
              }
              if (trackDeadline && tEndNs >= op.arrivalNs &&
                  tEndNs - op.arrivalNs <=
                      static_cast<std::uint64_t>(deadlineNs))
                ++my.good;
            }
          }
          winBuf.clear();
        } else {
          (void)rec;
          (void)cause;
        }
      };

      LatencyRecorder* rec =
          cfg.latency ? &recs[static_cast<std::size_t>(t)] : nullptr;
      ArrivalGen arrivals(
          openLoop ? cfg.arrival.ratePerSec / cfg.threads : 1.0, cfg.seed, t);
      AdmissionQueue aq(qdepth, deadlineNs);

      // Buffer one update into the netting window: stamp the window-open
      // instant for the flush deadline, then flush on width (adaptive) or,
      // for a window whose oldest op just aged out, on the deadline.
      auto bufferUpdate = [&](std::int64_t key, bool isInsert, bool sampled,
                              std::uint64_t arrivalNs) {
        std::uint64_t nowNs = 0;
        if (flushTimed || (sampled && !openLoop)) nowNs = TtlClock::nowNs();
        if (flushTimed && winBuf.empty()) flushPol.windowOpened(nowNs);
        const std::uint64_t t0Ns =
            sampled ? (openLoop ? arrivalNs : nowNs) : 0;
        winBuf.push_back({key, key, t0Ns, trackDeadline ? arrivalNs : 0,
                          static_cast<std::uint32_t>(winBuf.size()),
                          isInsert});
        if (winBuf.size() >= flushPol.window())
          flushBatches(rec, FlushCause::kFull);
        else if (flushTimed && flushPol.deadlineExpired(nowNs))
          flushBatches(rec, FlushCause::kDeadline);
      };

      // Sampled recording: every 2^latSampleShift-th op (per thread) is
      // timed; the rest run untouched. The stride counter is deterministic
      // and uncorrelated with op kind or cost, so the sampled subset is an
      // unbiased draw from the op stream.
      const std::uint64_t sampleMask =
          (1ULL << static_cast<unsigned>(std::max(cfg.latSampleShift, 0))) -
          1;
      std::uint64_t sampleCtr = 0;

      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) cpuRelax();
      const std::uint64_t c0 = rdtsc();
      // Open loop: the next not-yet-consumed scheduled arrival, in
      // TtlClock nanoseconds. Arrivals advance in VIRTUAL time, independent
      // of service progress: a worker that falls behind keeps the (past)
      // scheduled instants as latency origins, so backlog is measured as
      // queueing delay — the coordinated-omission fix — instead of silently
      // stretching the arrival schedule. With admission control, every due
      // arrival is materialized into the bounded queue first, so overload
      // becomes rejections (full queue) and sheds (deadline) instead of an
      // unbounded implicit backlog.
      std::uint64_t pendingArrivalNs = 0;
      if (openLoop)
        pendingArrivalNs = TtlClock::nowNs() +
                           static_cast<std::uint64_t>(arrivals.nextGapNs());
      while (!stop.load(std::memory_order_relaxed)) {
        const std::int64_t k = keys.next();
        const std::uint64_t dice = rng.nextBounded(1000000000ULL);
        const bool sampled =
            rec != nullptr && (sampleCtr++ & sampleMask) == 0;
        // Latency origin: the op's scheduled arrival (ns) in open loop
        // (queueing included), the pre-op rdtsc instant in closed loop.
        std::uint64_t opStartTicks = 0;
        std::uint64_t arrivalNs = 0;
        if (openLoop) {
          bool got = false;
          std::uint64_t nowNs = TtlClock::nowNs();
          while (!got) {
            if (admission) {
              // Materialize every due arrival, then serve the queue front:
              // reject at the bound, shed past the deadline, admit the rest.
              while (pendingArrivalNs <= nowNs) {
                aq.offer(pendingArrivalNs);
                pendingArrivalNs +=
                    static_cast<std::uint64_t>(arrivals.nextGapNs());
              }
              const AdmissionQueue::Pop res = aq.pop(nowNs, &arrivalNs);
              if (res == AdmissionQueue::Pop::kAdmit) {
                got = true;
                break;
              }
              if (res == AdmissionQueue::Pop::kShed) continue;  // next op
            } else if (nowNs >= pendingArrivalNs) {
              arrivalNs = pendingArrivalNs;
              pendingArrivalNs +=
                  static_cast<std::uint64_t>(arrivals.nextGapNs());
              got = true;
              break;
            }
            // Idle until the next scheduled arrival. A timed partial window
            // still flushes when its oldest op ages out — the cold-window
            // hang fix: at 1 op/s a buffered update no longer waits for the
            // window to fill (or the trial to end) to execute.
            if (stop.load(std::memory_order_relaxed)) break;
            if (flushTimed && !winBuf.empty() &&
                flushPol.deadlineExpired(nowNs))
              flushBatches(rec, FlushCause::kDeadline);
            cpuRelax();
            nowNs = TtlClock::nowNs();
          }
          if (!got) break;  // stopped while idle pre-arrival
          if (sampled) {
            const std::uint64_t waitNs =
                nowNs > arrivalNs ? nowNs - arrivalNs : 0;
            rec->record(OpCat::kSched,
                        static_cast<std::uint64_t>(waitNs * ticksPerNs));
          }
        } else if (sampled) {
          opStartTicks = rdtsc();
        }
        OpCat cat = OpCat::kFind;
        bool buffered = false;
        if (dice < insertCut) {
          cat = OpCat::kInsert;
          if constexpr (HasBatchOps<Set>) {
            if (batching) {
              bufferUpdate(k, true, sampled, arrivalNs);
              buffered = true;
            }
          }
          if (!buffered && set.insert(k, k)) {
            my.keysumDelta += k;
            keys.noteInsert(k);
          }
          ++my.inserts;
        } else if (dice < deleteCut) {
          cat = OpCat::kErase;
          if constexpr (HasBatchOps<Set>) {
            if (batching) {
              bufferUpdate(k, false, sampled, arrivalNs);
              buffered = true;
            }
          }
          if (!buffered && set.erase(k)) my.keysumDelta -= k;
          ++my.deletes;
        } else if (dice < rqCut) {
          cat = OpCat::kRq;
          if constexpr (HasRangeQuery<Set>) {
            rqBuf.clear();
            my.rqKeys += static_cast<std::uint64_t>(
                set.rangeQuery(k, k + cfg.rqSize - 1, rqBuf));
            ++my.rqs;
          }
        } else {
          (void)set.contains(k);
          ++my.finds;
        }
        ++my.ops;
        // Buffered submissions complete (record + goodput) at their flush.
        if (!buffered) {
          ++my.opsApplied;
          if (openLoop) {
            if (sampled || trackDeadline) {
              const std::uint64_t endNs = TtlClock::nowNs();
              const std::uint64_t durNs =
                  endNs > arrivalNs ? endNs - arrivalNs : 0;
              if (sampled)
                rec->record(cat,
                            static_cast<std::uint64_t>(durNs * ticksPerNs));
              if (trackDeadline &&
                  durNs <= static_cast<std::uint64_t>(deadlineNs))
                ++my.good;
            }
          } else if (sampled) {
            rec->record(cat, rdtsc() - opStartTicks);
          }
        }
      }
      // Stop the per-thread clock BEFORE the post-stop drain: my.cycles
      // covers exactly the timed window, so ns/op and cycles/op no longer
      // skew with batch width (the drain is reported separately as
      // TrialResult::drainSec).
      my.cycles = rdtsc() - c0;
      // Settle outstanding updates so keysum stays exact.
      flushBatches(rec, FlushCause::kDrain);
      if (admission) {
        // Everything still queued at stop is shed; the accounting identity
        // offered == admitted(executed) + shed + rejected is then exact.
        aq.shedRemaining();
        my.offered = aq.offered();
        my.shed = aq.shed();
        my.rejected = aq.rejected();
      } else {
        my.offered = my.ops;  // closed loop / plain open loop: all executed
      }
      my.deadlineFlushes = flushPol.deadlineFlushes();
      my.fullFlushes = flushPol.fullFlushes();
    });
  }
  while (ready.load() != cfg.threads) std::this_thread::yield();
  StopWatch sw;
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.durationMs));
  stop.store(true, std::memory_order_release);
  // Read the timed window at stop, BEFORE joining: join waits for the
  // workers' post-stop batch drains, and folding that into `elapsed` made
  // mops skew with batch width. The drain + join tail is reported
  // separately.
  const double elapsed = sw.elapsedSeconds();
  for (auto& w : workers) w.join();
  const double drain = sw.elapsedSeconds() - elapsed;

  TrialResult r;
  std::int64_t expected = prefillSum;
  std::uint64_t cycles = 0;
  std::uint64_t goodOps = 0;
  r.minThreadOps = stats.empty() ? 0 : stats.front().ops;
  for (const auto& s : stats) {
    r.totalOps += s.ops;
    r.opsApplied += s.opsApplied;
    r.inserts += s.inserts;
    r.deletes += s.deletes;
    r.finds += s.finds;
    r.rqs += s.rqs;
    r.rqKeys += s.rqKeys;
    r.minThreadOps = std::min(r.minThreadOps, s.ops);
    r.maxThreadOps = std::max(r.maxThreadOps, s.ops);
    expected += s.keysumDelta;
    cycles += s.cycles;
    r.opsOffered += s.offered;
    r.opsShed += s.shed;
    r.opsRejected += s.rejected;
    goodOps += s.good;
    r.deadlineFlushes += s.deadlineFlushes;
    r.fullFlushes += s.fullFlushes;
  }
  // The admission accounting identity holds in every trial — JSON rows are
  // emitted only from results that passed this check.
  PATHCAS_CHECK(r.opsOffered == r.totalOps + r.opsShed + r.opsRejected &&
                "admission accounting identity violated");
  r.elapsedSec = elapsed;
  r.drainSec = drain;
  r.mops = static_cast<double>(r.totalOps) / elapsed / 1e6;
  r.mopsApplied = static_cast<double>(r.opsApplied) / elapsed / 1e6;
  r.nsPerOp = r.totalOps ? TscCal::toNs(cycles) /
                               static_cast<double>(r.totalOps)
                         : 0.0;
  r.cyclesPerOp = r.totalOps ? static_cast<double>(cycles) /
                                   static_cast<double>(r.totalOps)
                             : 0.0;
  // Goodput: without a deadline every completed op is good (goodput ==
  // throughput); with one, only ops that completed within it count.
  const std::uint64_t good =
      (cfg.arrival.open && cfg.arrival.deadlineNs > 0) ? goodOps : r.totalOps;
  r.goodputMops =
      elapsed > 0.0 ? static_cast<double>(good) / elapsed / 1e6 : 0.0;
  if (cfg.latency)
    r.lat = summarizeLatency(recs.data(), cfg.threads, nsPerTick);
  r.keysumOk = (set.keySum() == expected);
  PATHCAS_CHECK(r.keysumOk && "keysum validation failed — correctness bug");
  if constexpr (HasFootprint<Set>) r.footprintBytes = set.footprintBytes();
  if constexpr (HasRqRetries<Set>) r.rqRetries = set.rqRetries();
  if constexpr (HasShardSched<Set>) {
    if (cfg.latency) r.shardSchedP99Ns = set.shardSchedP99Ns();
  }
  return r;
}

/// Convenience: construct, prefill, run, return result (one fresh structure
/// per cell, as in setbench).
template <typename MakeSet>
TrialResult runCell(MakeSet&& makeSet, const TrialConfig& cfg) {
  auto set = makeSet();
  const std::int64_t prefillSum = prefillHalf(*set, cfg.keyRange);
  return runTrial(*set, cfg, prefillSum);
}

// ---------------------------------------------------------------------------
// Output helpers: the benches print paper-style rows plus a CSV block that
// experiment logs can be grepped from (`grep '^csv,'`), and — opt-in via
// PATHCAS_BENCH_JSON=<path> — machine-readable JSON Lines (one object per
// trial, appended) so perf trajectory can be tracked across PRs.
// ---------------------------------------------------------------------------

/// The JSON sink, opened (append mode) on first use from PATHCAS_BENCH_JSON.
/// Returns nullptr when the knob is unset or the file cannot be opened.
inline std::FILE* jsonSink() {
  static std::FILE* sink = []() -> std::FILE* {
    const char* path = std::getenv("PATHCAS_BENCH_JSON");
    if (path == nullptr || *path == '\0') return nullptr;
    std::FILE* f = std::fopen(path, "a");
    if (f == nullptr)
      std::fprintf(stderr, "PATHCAS_BENCH_JSON: cannot open %s\n", path);
    return f;
  }();
  return sink;
}

/// Append one JSON object (one line) describing a completed trial. Every
/// bench emits the same schema — including `dist`, `theta` and `mix` even
/// for the uniform default — so rows from different benches aggregate
/// without per-experiment special cases (schema: docs/BENCHMARKING.md).
inline void jsonAppendTrial(const std::string& experiment,
                            const std::string& algo, const TrialConfig& cfg,
                            const TrialResult& r) {
  std::FILE* f = jsonSink();
  if (f == nullptr) return;
  const double rqMops =
      r.elapsedSec > 0.0 ? static_cast<double>(r.rqs) / r.elapsedSec / 1e6
                         : 0.0;
  const bool skewed = cfg.dist.kind == DistKind::kZipfian ||
                      cfg.dist.kind == DistKind::kLatest;
  std::fprintf(
      f,
      "{\"experiment\":\"%s\",\"algo\":\"%s\",\"threads\":%d,\"shards\":%d,"
      "\"batch\":%d,\"combine_window\":%d,"
      "\"key_range\":%lld,\"dist\":\"%s\",\"theta\":%g,\"mix\":\"%s\","
      "\"arrival\":\"%s\",\"update_pct\":%.1f,\"rq_pct\":%.1f,"
      "\"rq_size\":%lld,\"mops\":%.4f,\"mops_applied\":%.4f,"
      "\"rq_mops\":%.4f,"
      "\"total_ops\":%llu,\"ops_applied\":%llu,"
      "\"ops_min_thread\":%llu,\"ops_max_thread\":%llu,"
      "\"rqs\":%llu,\"rq_keys\":%llu,"
      "\"ns_per_op\":%.1f,\"cycles_per_op\":%.1f,\"footprint_bytes\":%llu,"
      "\"elapsed_sec\":%.4f,\"drain_sec\":%.4f,\"keysum_ok\":%s",
      experiment.c_str(), algo.c_str(), cfg.threads, cfg.shards, cfg.batch,
      cfg.combineWindow, static_cast<long long>(cfg.keyRange),
      cfg.dist.label().c_str(), skewed ? cfg.dist.theta : 0.0,
      cfg.mix.c_str(), cfg.arrival.label().c_str(),
      (cfg.insertFrac + cfg.deleteFrac) * 100.0, cfg.rqFrac * 100.0,
      static_cast<long long>(cfg.rqSize), r.mops, r.mopsApplied, rqMops,
      static_cast<unsigned long long>(r.totalOps),
      static_cast<unsigned long long>(r.opsApplied),
      static_cast<unsigned long long>(r.minThreadOps),
      static_cast<unsigned long long>(r.maxThreadOps),
      static_cast<unsigned long long>(r.rqs),
      static_cast<unsigned long long>(r.rqKeys), r.nsPerOp, r.cyclesPerOp,
      static_cast<unsigned long long>(r.footprintBytes), r.elapsedSec,
      r.drainSec, r.keysumOk ? "true" : "false");
  // Admission / goodput columns (docs/BENCHMARKING.md, "Overload and
  // goodput"). ops_admitted == total_ops by construction; it is emitted
  // explicitly so the identity ops_offered == ops_admitted + ops_shed +
  // ops_rejected can be checked row-by-row without schema knowledge.
  std::fprintf(
      f,
      ",\"qdepth\":%d,\"deadline_ns\":%lld,\"flush_deadline_ns\":%lld,"
      "\"ops_offered\":%llu,\"ops_admitted\":%llu,\"ops_shed\":%llu,"
      "\"ops_rejected\":%llu,\"goodput_mops\":%.4f,"
      "\"deadline_flushes\":%llu,\"full_flushes\":%llu,\"rq_retries\":%llu",
      cfg.arrival.qdepth, static_cast<long long>(cfg.arrival.deadlineNs),
      static_cast<long long>(cfg.flushDeadlineNs),
      static_cast<unsigned long long>(r.opsOffered),
      static_cast<unsigned long long>(r.totalOps),
      static_cast<unsigned long long>(r.opsShed),
      static_cast<unsigned long long>(r.opsRejected), r.goodputMops,
      static_cast<unsigned long long>(r.deadlineFlushes),
      static_cast<unsigned long long>(r.fullFlushes),
      static_cast<unsigned long long>(r.rqRetries));
  if (!r.shardSchedP99Ns.empty()) {
    std::fprintf(f, ",\"shard_sched_p99_ns\":[");
    for (std::size_t i = 0; i < r.shardSchedP99Ns.size(); ++i)
      std::fprintf(f, "%s%.1f", i == 0 ? "" : ",", r.shardSchedP99Ns[i]);
    std::fprintf(f, "]");
  }
  if (r.lat.valid) {
    // Overall op quantiles at the top level (what bench_compare.py gates),
    // the open-loop queueing-delay p99 beside them, and the per-category
    // breakdown nested under "lat" (schema: docs/BENCHMARKING.md).
    std::fprintf(f,
                 ",\"p50_ns\":%.1f,\"p99_ns\":%.1f,\"p999_ns\":%.1f,"
                 "\"max_ns\":%.1f,\"sched_p99_ns\":%.1f,\"lat\":{",
                 r.lat.overall.p50Ns, r.lat.overall.p99Ns,
                 r.lat.overall.p999Ns, r.lat.overall.maxNs,
                 r.lat.of(OpCat::kSched).p99Ns);
    for (int c = 0; c < kNumOpCats; ++c) {
      const LatencySummary::Cat& cat = r.lat.cat[c];
      std::fprintf(f,
                   "%s\"%s\":{\"count\":%llu,\"p50_ns\":%.1f,"
                   "\"p99_ns\":%.1f,\"p999_ns\":%.1f,\"max_ns\":%.1f}",
                   c == 0 ? "" : ",", kOpCatNames[c],
                   static_cast<unsigned long long>(cat.count), cat.p50Ns,
                   cat.p99Ns, cat.p999Ns, cat.maxNs);
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "}\n");
  std::fflush(f);
}

inline void printHeader(const std::string& title,
                        const std::vector<int>& threadCounts) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-22s", "algorithm");
  for (int t : threadCounts) std::printf("  t=%-8d", t);
  std::printf("   (Mops/s per thread count)\n");
}

inline void printRow(const std::string& algo,
                     const std::vector<double>& mops) {
  std::printf("%-22s", algo.c_str());
  for (double m : mops) std::printf("  %-10.3f", m);
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace pathcas::bench
