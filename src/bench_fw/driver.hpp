// Setbench-style benchmark driver (§5 "Our experiments follow the
// methodology of [9]"): prefill the structure to half its key range with a
// random key subset, run T threads issuing a uniform mix of
// insert/delete/contains — plus, when cfg.rqFrac > 0, fixed-width range
// queries (index-scan style) — for a fixed duration, then validate the run
// with the keysum invariant (sum of successfully inserted keys minus
// successfully deleted keys must equal the structure's final keysum) before
// reporting throughput. Operations are counted per category, so RQ-heavy
// mixes report range-query throughput separately from point ops.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "recl/ebr.hpp"
#include "util/backoff.hpp"
#include "util/defs.hpp"
#include "util/padding.hpp"
#include "util/rand.hpp"
#include "util/thread_registry.hpp"
#include "util/timing.hpp"

namespace pathcas::bench {

struct TrialConfig {
  int threads = 1;
  std::int64_t keyRange = 1 << 16;
  double insertFrac = 0.05;  // e.g. 10% updates = 5% insert + 5% delete
  double deleteFrac = 0.05;
  /// Fraction of operations that are range queries (the structure must
  /// provide rangeQuery); the remainder after insert/delete/rq is contains.
  double rqFrac = 0.0;
  /// Width of each range query's key window: [k, k + rqSize - 1]. Must keep
  /// the scan's examined-node count within pathcas::kMaxVisited (roughly
  /// rqSize/2 live keys on a half-full range, plus the descent path).
  std::int64_t rqSize = 64;
  int durationMs = 200;
  std::uint64_t seed = 1;
};

struct TrialResult {
  double mops = 0.0;          // million operations per second (total)
  std::uint64_t totalOps = 0;
  std::uint64_t cyclesPerOp = 0;
  double elapsedSec = 0.0;
  bool keysumOk = false;
  std::uint64_t inserts = 0, deletes = 0, finds = 0;
  std::uint64_t rqs = 0;      // range queries completed
  std::uint64_t rqKeys = 0;   // keys returned across all range queries
};

/// Structures that support the range-query mix (rqFrac > 0).
template <typename Set>
concept HasRangeQuery =
    requires(Set s, std::vector<std::pair<std::int64_t, std::int64_t>> buf) {
      { s.rangeQuery(std::int64_t{}, std::int64_t{}, buf) };
    };

/// Benchmark scale, from PATHCAS_BENCH_SCALE ("quick" default, "full" for
/// paper-scale key ranges and durations).
inline bool fullScale() {
  const char* s = std::getenv("PATHCAS_BENCH_SCALE");
  return s != nullptr && std::string(s) == "full";
}
inline int scaledDurationMs(int quickMs, int fullMs) {
  return fullScale() ? fullMs : quickMs;
}
inline std::int64_t scaledKeys(std::int64_t quick, std::int64_t full) {
  return fullScale() ? full : quick;
}

/// Prefill with a random half of the key range (random insertion order so
/// unbalanced trees get their expected logarithmic depth).
template <typename Set>
std::int64_t prefillHalf(Set& set, std::int64_t keyRange,
                         std::uint64_t seed = 12345) {
  std::vector<std::int64_t> keys(static_cast<std::size_t>(keyRange));
  for (std::int64_t i = 0; i < keyRange; ++i)
    keys[static_cast<std::size_t>(i)] = i;
  Xoshiro256 rng(seed);
  for (std::size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.nextBounded(i)]);
  }
  std::int64_t keysum = 0;
  for (std::int64_t i = 0; i < keyRange / 2; ++i) {
    const std::int64_t k = keys[static_cast<std::size_t>(i)];
    if (set.insert(k, k)) keysum += k;
  }
  return keysum;
}

/// Run one timed trial against a prefilled set. `prefillSum` is the keysum
/// after prefill, used for validation.
template <typename Set>
TrialResult runTrial(Set& set, const TrialConfig& cfg,
                     std::int64_t prefillSum) {
  struct alignas(kNoFalseSharing) PerThread {
    std::uint64_t ops = 0, inserts = 0, deletes = 0, finds = 0;
    std::uint64_t rqs = 0, rqKeys = 0;
    std::int64_t keysumDelta = 0;
    std::uint64_t cycles = 0;
  };
  if constexpr (!HasRangeQuery<Set>) {
    PATHCAS_CHECK(cfg.rqFrac == 0.0 &&
                  "rqFrac > 0 requires a structure with rangeQuery()");
  }
  std::vector<PerThread> stats(static_cast<std::size_t>(cfg.threads));
  std::atomic<bool> go{false}, stop{false};
  std::atomic<int> ready{0};

  // Release the registry slot the calling thread lazily acquired during
  // prefill, so a kMaxThreads-wide sweep can register every worker. The
  // caller re-registers automatically on its next structure access (the
  // keysum validation below), after the workers have deregistered.
  ThreadRegistry::instance().deregisterThread();

  const std::uint64_t insertCut =
      static_cast<std::uint64_t>(cfg.insertFrac * 1e9);
  const std::uint64_t deleteCut =
      insertCut + static_cast<std::uint64_t>(cfg.deleteFrac * 1e9);
  const std::uint64_t rqCut =
      deleteCut + static_cast<std::uint64_t>(cfg.rqFrac * 1e9);

  std::vector<std::thread> workers;
  for (int t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      ThreadGuard tg;
      Xoshiro256 rng(cfg.seed * 1000003 + static_cast<std::uint64_t>(t));
      PerThread& my = stats[static_cast<std::size_t>(t)];
      std::vector<std::pair<std::int64_t, std::int64_t>> rqBuf;
      rqBuf.reserve(static_cast<std::size_t>(cfg.rqSize));
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) cpuRelax();
      const std::uint64_t c0 = rdtsc();
      while (!stop.load(std::memory_order_relaxed)) {
        const std::int64_t k =
            static_cast<std::int64_t>(rng.nextBounded(
                static_cast<std::uint64_t>(cfg.keyRange)));
        const std::uint64_t dice = rng.nextBounded(1000000000ULL);
        if (dice < insertCut) {
          if (set.insert(k, k)) my.keysumDelta += k;
          ++my.inserts;
        } else if (dice < deleteCut) {
          if (set.erase(k)) my.keysumDelta -= k;
          ++my.deletes;
        } else if (dice < rqCut) {
          if constexpr (HasRangeQuery<Set>) {
            rqBuf.clear();
            my.rqKeys += static_cast<std::uint64_t>(
                set.rangeQuery(k, k + cfg.rqSize - 1, rqBuf));
            ++my.rqs;
          }
        } else {
          (void)set.contains(k);
          ++my.finds;
        }
        ++my.ops;
      }
      my.cycles = rdtsc() - c0;
    });
  }
  while (ready.load() != cfg.threads) std::this_thread::yield();
  StopWatch sw;
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.durationMs));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double elapsed = sw.elapsedSeconds();

  TrialResult r;
  std::int64_t expected = prefillSum;
  std::uint64_t cycles = 0;
  for (const auto& s : stats) {
    r.totalOps += s.ops;
    r.inserts += s.inserts;
    r.deletes += s.deletes;
    r.finds += s.finds;
    r.rqs += s.rqs;
    r.rqKeys += s.rqKeys;
    expected += s.keysumDelta;
    cycles += s.cycles;
  }
  r.elapsedSec = elapsed;
  r.mops = static_cast<double>(r.totalOps) / elapsed / 1e6;
  r.cyclesPerOp = r.totalOps ? cycles / r.totalOps : 0;
  r.keysumOk = (set.keySum() == expected);
  PATHCAS_CHECK(r.keysumOk && "keysum validation failed — correctness bug");
  return r;
}

/// Convenience: construct, prefill, run, return result (one fresh structure
/// per cell, as in setbench).
template <typename MakeSet>
TrialResult runCell(MakeSet&& makeSet, const TrialConfig& cfg) {
  auto set = makeSet();
  const std::int64_t prefillSum = prefillHalf(*set, cfg.keyRange);
  return runTrial(*set, cfg, prefillSum);
}

// ---------------------------------------------------------------------------
// Output helpers: the benches print paper-style rows plus a CSV block that
// experiment logs can be grepped from (`grep '^csv,'`), and — opt-in via
// PATHCAS_BENCH_JSON=<path> — machine-readable JSON Lines (one object per
// trial, appended) so perf trajectory can be tracked across PRs.
// ---------------------------------------------------------------------------

/// The JSON sink, opened (append mode) on first use from PATHCAS_BENCH_JSON.
/// Returns nullptr when the knob is unset or the file cannot be opened.
inline std::FILE* jsonSink() {
  static std::FILE* sink = []() -> std::FILE* {
    const char* path = std::getenv("PATHCAS_BENCH_JSON");
    if (path == nullptr || *path == '\0') return nullptr;
    std::FILE* f = std::fopen(path, "a");
    if (f == nullptr)
      std::fprintf(stderr, "PATHCAS_BENCH_JSON: cannot open %s\n", path);
    return f;
  }();
  return sink;
}

/// Append one JSON object (one line) describing a completed trial.
inline void jsonAppendTrial(const std::string& experiment,
                            const std::string& algo, const TrialConfig& cfg,
                            const TrialResult& r) {
  std::FILE* f = jsonSink();
  if (f == nullptr) return;
  const double rqMops =
      r.elapsedSec > 0.0 ? static_cast<double>(r.rqs) / r.elapsedSec / 1e6
                         : 0.0;
  std::fprintf(
      f,
      "{\"experiment\":\"%s\",\"algo\":\"%s\",\"threads\":%d,"
      "\"key_range\":%lld,\"update_pct\":%.1f,\"rq_pct\":%.1f,"
      "\"rq_size\":%lld,\"mops\":%.4f,\"rq_mops\":%.4f,"
      "\"total_ops\":%llu,\"rqs\":%llu,\"rq_keys\":%llu,"
      "\"cycles_per_op\":%llu,\"elapsed_sec\":%.4f,"
      "\"keysum_ok\":%s}\n",
      experiment.c_str(), algo.c_str(), cfg.threads,
      static_cast<long long>(cfg.keyRange),
      (cfg.insertFrac + cfg.deleteFrac) * 100.0, cfg.rqFrac * 100.0,
      static_cast<long long>(cfg.rqSize), r.mops, rqMops,
      static_cast<unsigned long long>(r.totalOps),
      static_cast<unsigned long long>(r.rqs),
      static_cast<unsigned long long>(r.rqKeys),
      static_cast<unsigned long long>(r.cyclesPerOp), r.elapsedSec,
      r.keysumOk ? "true" : "false");
  std::fflush(f);
}

inline void printHeader(const std::string& title,
                        const std::vector<int>& threadCounts) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-22s", "algorithm");
  for (int t : threadCounts) std::printf("  t=%-8d", t);
  std::printf("   (Mops/s per thread count)\n");
}

inline void printRow(const std::string& algo,
                     const std::vector<double>& mops) {
  std::printf("%-22s", algo.c_str());
  for (double m : mops) std::printf("  %-10.3f", m);
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace pathcas::bench
