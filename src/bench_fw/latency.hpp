// Per-operation latency recording for the bench driver: log-bucketed
// power-of-two histograms cheap enough to sit inside the measured loop, one
// histogram per op category per thread, mergeable after the trial, with
// quantile extraction (intra-bucket linear interpolation) reported in
// calibrated nanoseconds (util/timing.hpp, TscCal).
//
// Design constraints, in order:
//  1. Recording cost — the driver samples every 2^latSampleShift-th op
//     (TrialConfig::latSampleShift, default 1-in-8): only a sampled op pays
//     the two rdtsc reads (~25-30ns each on this class of hardware, >10% of
//     a ~250ns tree op if paid every time), the rest run untouched. The
//     record itself is one array increment — no allocation, no branches
//     beyond the bucket index math. Tail quantiles survive sampling: the
//     stride is uncorrelated with op cost, so the sampled stream is an
//     unbiased draw and p99/p999 converge with 1/8 the samples.
//  2. Bounded error — buckets are log-linear: 2^kSubBits linear sub-buckets
//     per power-of-two octave, so a bucket spans at most 1/2^kSubBits
//     (6.25%) of its value, and quantiles interpolate inside the bucket.
//     Values below 2^kSubBits ticks are exact.
//  3. Unit-agnostic storage — histograms store raw tick values (whatever
//     rdtsc returns on this platform); conversion to nanoseconds happens
//     once, at summary time, through the TscCal tsc→ns calibration. Merging
//     histograms recorded on the same machine is therefore exact.
//
// Coordinated omission: in closed-loop mode a slow op delays the *next*
// request, so the recorded stream under-samples exactly the moments the
// structure was slow (Tene's "coordinated omission"). The driver's open-loop
// mode (workload.hpp, ArrivalSpec) fixes the arrival times independently of
// service times and measures each op from its *scheduled* arrival, so time
// spent queued behind a stalled worker lands in the op's latency (and,
// separately, in the kSched category). docs/BENCHMARKING.md has the worked
// explainer.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>

#include "util/defs.hpp"
#include "util/timing.hpp"

namespace pathcas::bench {

/// Latency categories, one histogram each. kSched is the open-loop queueing
/// delay (execution start minus scheduled arrival) — zero-width in closed
/// loop, and the coordinated-omission signal in open loop.
enum class OpCat : int { kInsert = 0, kErase, kFind, kRq, kSched };
inline constexpr int kNumOpCats = 5;
inline constexpr const char* kOpCatNames[kNumOpCats] = {"insert", "erase",
                                                        "find", "rq", "sched"};

/// Log-linear histogram over uint64 values (raw rdtsc ticks in the driver).
/// Bucket layout: values < 2^kSubBits land in exact unit buckets; above
/// that, each power-of-two octave splits into 2^kSubBits linear sub-buckets.
/// Deterministic: the same multiset of samples produces the same counts and
/// the same quantiles regardless of insertion order or thread interleaving
/// (merging is element-wise addition).
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 4;                 // 16 sub-buckets/octave
  static constexpr std::uint64_t kSub = 1ULL << kSubBits;
  // Octave 0 is the exact region [0, 2^kSubBits); octaves 1..60 cover the
  // remaining uint64 range at kSub buckets each.
  static constexpr int kNumBuckets = (64 - kSubBits + 1) << kSubBits;

  /// Bucket index for a value; monotone in v, total over uint64.
  static int bucketIndex(std::uint64_t v) {
    if (v < kSub) return static_cast<int>(v);
    const int e = 63 - std::countl_zero(v);  // floor(log2 v) >= kSubBits
    return ((e - kSubBits + 1) << kSubBits) +
           static_cast<int>((v >> (e - kSubBits)) & (kSub - 1));
  }

  /// Smallest value mapping to bucket i (the bucket spans
  /// [lowerBound(i), lowerBound(i+1))).
  static std::uint64_t bucketLowerBound(int i) {
    const int octave = i >> kSubBits;
    const std::uint64_t sub = static_cast<std::uint64_t>(i) & (kSub - 1);
    if (octave == 0) return sub;
    return (kSub + sub) << (octave - 1);
  }

  void record(std::uint64_t v) {
    ++counts_[static_cast<std::size_t>(bucketIndex(v))];
    ++total_;
    if (v > max_) max_ = v;
  }

  void merge(const LatencyHistogram& other) {
    for (int i = 0; i < kNumBuckets; ++i) counts_[static_cast<std::size_t>(i)] += other.counts_[static_cast<std::size_t>(i)];
    total_ += other.total_;
    max_ = std::max(max_, other.max_);
  }

  std::uint64_t count() const { return total_; }
  /// Exact largest recorded value (tracked beside the buckets, so max_ns
  /// carries no bucket rounding).
  std::uint64_t maxValue() const { return max_; }

  /// Value at quantile q in [0, 1]: walk the cumulative counts to the bucket
  /// holding the q·count-th sample, then interpolate linearly between the
  /// bucket's bounds by the sample's position within the bucket. Returns 0
  /// on an empty histogram. q=1 returns the exact recorded max.
  double quantile(double q) const {
    if (total_ == 0) return 0.0;
    if (q >= 1.0) return static_cast<double>(max_);
    if (q < 0.0) q = 0.0;
    // Rank of the target sample, 1-based: ceil(q * total), clamped to >= 1.
    const double target = q * static_cast<double>(total_);
    std::uint64_t rank = static_cast<std::uint64_t>(target);
    if (static_cast<double>(rank) < target || rank == 0) ++rank;
    std::uint64_t cum = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      const std::uint64_t c = counts_[static_cast<std::size_t>(i)];
      if (cum + c >= rank) {
        const double lo = static_cast<double>(bucketLowerBound(i));
        const double hi = (i + 1 < kNumBuckets)
                              ? static_cast<double>(bucketLowerBound(i + 1))
                              : lo;
        // Position of the target inside this bucket, in (0, 1].
        const double frac =
            static_cast<double>(rank - cum) / static_cast<double>(c);
        const double v = lo + (hi - lo) * frac;
        // The true max bounds every quantile (the top bucket's upper edge
        // can overshoot what was actually recorded).
        return std::min(v, static_cast<double>(max_));
      }
      cum += c;
    }
    return static_cast<double>(max_);
  }

 private:
  std::array<std::uint64_t, kNumBuckets> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t max_ = 0;
};

/// One worker thread's recorder: a histogram per category. Padded so
/// adjacent threads' recorders never share a cache line (the counts are
/// written on every op of the measured loop).
struct alignas(kNoFalseSharing) LatencyRecorder {
  std::array<LatencyHistogram, kNumOpCats> hist;

  void record(OpCat cat, std::uint64_t ticks) {
    hist[static_cast<std::size_t>(cat)].record(ticks);
  }
  void merge(const LatencyRecorder& other) {
    for (int c = 0; c < kNumOpCats; ++c)
      hist[static_cast<std::size_t>(c)].merge(
          other.hist[static_cast<std::size_t>(c)]);
  }
};

/// Trial-level latency summary in calibrated nanoseconds: per-category
/// p50/p99/p999/max plus the same quantiles over all completed ops (insert +
/// erase + find + rq merged; kSched stays separate — queueing delay is not
/// an op).
struct LatencySummary {
  struct Cat {
    std::uint64_t count = 0;
    double p50Ns = 0.0, p99Ns = 0.0, p999Ns = 0.0, maxNs = 0.0;
  };
  Cat cat[kNumOpCats];  // indexed by OpCat
  Cat overall;          // all op categories merged (excludes kSched)
  bool valid = false;   // false when latency recording was off

  const Cat& of(OpCat c) const { return cat[static_cast<int>(c)]; }
};

/// Merge per-thread recorders and extract the summary. `nsPerTick` is the
/// TscCal calibration (passed in so tests can use a synthetic scale).
inline LatencySummary summarizeLatency(const LatencyRecorder* recs, int n,
                                       double nsPerTick) {
  LatencySummary s;
  s.valid = true;
  LatencyRecorder merged;
  for (int t = 0; t < n; ++t) merged.merge(recs[t]);
  LatencyHistogram all;
  const auto fill = [nsPerTick](LatencySummary::Cat* out,
                                const LatencyHistogram& h) {
    out->count = h.count();
    out->p50Ns = h.quantile(0.50) * nsPerTick;
    out->p99Ns = h.quantile(0.99) * nsPerTick;
    out->p999Ns = h.quantile(0.999) * nsPerTick;
    out->maxNs = static_cast<double>(h.maxValue()) * nsPerTick;
  };
  for (int c = 0; c < kNumOpCats; ++c) {
    const LatencyHistogram& h = merged.hist[static_cast<std::size_t>(c)];
    fill(&s.cat[c], h);
    if (static_cast<OpCat>(c) != OpCat::kSched) all.merge(h);
  }
  fill(&s.overall, all);
  return s;
}

}  // namespace pathcas::bench
