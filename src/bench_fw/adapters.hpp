// Uniform adapters over every concurrent-set implementation in the repo, so
// one generic (typed) test suite and one benchmark driver cover them all.
// Each adapter exposes: insert(k,v) / erase(k) / contains(k) -> bool,
// size() / keySum() (quiescent), name(), and footprintBytes() (picked up by
// the driver's HasFootprint concept and recorded per trial in the JSON
// output, alongside rangeQuery via HasRangeQuery). The pooled-tree adapters own
// DEDICATED NodePools (not the shared per-type defaults), so their
// footprintBytes() — read from pool counters rather than a reachable-node
// walk — measures exactly the trial at hand, not cross-trial accumulation.
// Their destructors drain the EbrDomain first (quiescent by contract at
// adapter destruction) so no limbo record outlives the dedicated pool.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_fw/driver.hpp"
#include "recl/ebr.hpp"
#include "recl/pool.hpp"
#include "service/sharded_map.hpp"

#include "mcms/mcms_bst.hpp"
#include "stm/elastic.hpp"
#include "stm/glock.hpp"
#include "stm/norec.hpp"
#include "stm/tl2.hpp"
#include "stm/tle.hpp"
#include "stm/tm_avl.hpp"
#include "stm/tm_bst.hpp"
#include "stm/tm_ext_bst.hpp"
#include "structs/abtree_pathcas.hpp"
#include "structs/list_pathcas.hpp"
#include "structs/multi_index_map.hpp"
#include "structs/skiplist_pathcas.hpp"
#include "trees/ellen_bst.hpp"
#include "trees/int_avl_pathcas.hpp"
#include "trees/int_bst_pathcas.hpp"
#include "trees/ticket_bst.hpp"

namespace pathcas::testing {

using Key = std::int64_t;
using Val = std::int64_t;

/// (key, value) output buffer shared by every adapter's rangeQuery.
using RqOut = std::vector<std::pair<Key, Val>>;

template <bool UseHtm>
struct PathCasBstAdapter {
  recl::NodePool<typename ds::IntBstPathCas<Key, Val>::Node> pool;
  ds::IntBstPathCas<Key, Val> tree{ds::IntBstOptions{.useHtmFastPath = UseHtm},
                                   recl::EbrDomain::instance(), &pool};
  ~PathCasBstAdapter() { recl::EbrDomain::instance().drainAll(); }
  bool insert(Key k, Val v) { return tree.insert(k, v); }
  bool erase(Key k) { return tree.erase(k); }
  std::size_t insertBatch(const Key* ks, const Val* vs, std::size_t n,
                          bool* out) {
    return tree.insertBatch(ks, vs, n, out);
  }
  std::size_t eraseBatch(const Key* ks, std::size_t n, bool* out) {
    return tree.eraseBatch(ks, n, out);
  }
  std::size_t updateBatch(const Key* ks, const Val* vs, const bool* isInsert,
                          std::size_t n, bool* out) {
    return tree.updateBatch(ks, vs, isInsert, n, out);
  }
  bool contains(Key k) { return tree.contains(k); }
  std::size_t rangeQuery(Key lo, Key hi, RqOut& out) {
    return tree.rangeQuery(lo, hi, out);
  }
  std::uint64_t size() const { return tree.size(); }
  std::int64_t keySum() const { return tree.keySum(); }
  void checkInvariants() const { tree.checkInvariants(); }
  double avgKeyDepth() const { return tree.checkInvariants().avgKeyDepth; }
  std::uint64_t footprintBytes() const { return pool.footprintBytes(); }
  static std::string name() {
    return UseHtm ? "int-bst-pathcas+" : "int-bst-pathcas";
  }
};

template <bool UseHtm>
struct PathCasAvlAdapter {
  recl::NodePool<typename ds::IntAvlPathCas<Key, Val>::Node> pool;
  ds::IntAvlPathCas<Key, Val> tree{ds::IntBstOptions{.useHtmFastPath = UseHtm},
                                   recl::EbrDomain::instance(), &pool};
  ~PathCasAvlAdapter() { recl::EbrDomain::instance().drainAll(); }
  bool insert(Key k, Val v) { return tree.insert(k, v); }
  bool erase(Key k) { return tree.erase(k); }
  std::size_t insertBatch(const Key* ks, const Val* vs, std::size_t n,
                          bool* out) {
    return tree.insertBatch(ks, vs, n, out);
  }
  std::size_t eraseBatch(const Key* ks, std::size_t n, bool* out) {
    return tree.eraseBatch(ks, n, out);
  }
  bool contains(Key k) { return tree.contains(k); }
  std::size_t rangeQuery(Key lo, Key hi, RqOut& out) {
    return tree.rangeQuery(lo, hi, out);
  }
  std::uint64_t size() const { return tree.size(); }
  std::int64_t keySum() const { return tree.keySum(); }
  void checkInvariants() const { tree.checkInvariants(false); }
  double avgKeyDepth() const { return tree.checkInvariants().avgKeyDepth; }
  std::uint64_t footprintBytes() const { return pool.footprintBytes(); }
  static std::string name() {
    return UseHtm ? "int-avl-pathcas+" : "int-avl-pathcas";
  }
};

struct EllenAdapter {
  recl::NodePool<typename ds::EllenBst<Key, Val>::Node> nodePool;
  recl::NodePool<typename ds::EllenBst<Key, Val>::Info> infoPool;
  ds::EllenBst<Key, Val> tree{recl::EbrDomain::instance(), &nodePool,
                              &infoPool};
  ~EllenAdapter() { recl::EbrDomain::instance().drainAll(); }
  bool insert(Key k, Val v) { return tree.insert(k, v); }
  bool erase(Key k) { return tree.erase(k); }
  bool contains(Key k) { return tree.contains(k); }
  std::size_t rangeQuery(Key lo, Key hi, RqOut& out) {
    return tree.rangeQuery(lo, hi, out);  // best-effort (see EllenBst)
  }
  std::uint64_t size() const { return tree.size(); }
  std::int64_t keySum() const { return tree.keySum(); }
  void checkInvariants() const {}
  double avgKeyDepth() const { return tree.avgKeyDepth(); }
  std::uint64_t footprintBytes() const { return tree.poolFootprintBytes(); }
  static std::string name() { return "ext-bst-lf"; }
};

struct TicketAdapter {
  recl::NodePool<typename ds::TicketBst<Key, Val>::Node> pool;
  ds::TicketBst<Key, Val> tree{recl::EbrDomain::instance(), &pool};
  ~TicketAdapter() { recl::EbrDomain::instance().drainAll(); }
  bool insert(Key k, Val v) { return tree.insert(k, v); }
  bool erase(Key k) { return tree.erase(k); }
  bool contains(Key k) { return tree.contains(k); }
  std::size_t rangeQuery(Key lo, Key hi, RqOut& out) {
    return tree.rangeQuery(lo, hi, out);  // best-effort (see TicketBst)
  }
  std::uint64_t size() const { return tree.size(); }
  std::int64_t keySum() const { return tree.keySum(); }
  void checkInvariants() const {}
  double avgKeyDepth() const { return tree.avgKeyDepth(); }
  std::uint64_t footprintBytes() const { return tree.poolFootprintBytes(); }
  static std::string name() { return "ext-bst-locks"; }
};

struct SkipListAdapter {
  recl::NodePool<typename ds::SkipListPathCas<Key, Val>::Node> pool;
  ds::SkipListPathCas<Key, Val> list{recl::EbrDomain::instance(), &pool};
  ~SkipListAdapter() { recl::EbrDomain::instance().drainAll(); }
  bool insert(Key k, Val v) { return list.insert(k, v); }
  bool erase(Key k) { return list.erase(k); }
  bool contains(Key k) { return list.contains(k); }
  std::size_t rangeQuery(Key lo, Key hi, RqOut& out) {
    return list.rangeQuery(lo, hi, out);
  }
  std::uint64_t size() const { return list.size(); }
  std::int64_t keySum() const { return list.keySum(); }
  void checkInvariants() const { list.checkInvariants(); }
  double avgKeyDepth() const { return 0.0; }  // not a tree
  std::uint64_t footprintBytes() const { return pool.footprintBytes(); }
  static std::string name() { return "skiplist-pathcas"; }
};

/// NOTE: the list's whole-prefix read sets bound usable key ranges to a few
/// hundred keys (pathcas::kMaxVisited); benches must use a small keyRange.
struct ListAdapter {
  recl::NodePool<typename ds::ListPathCas<Key, Val>::Node> pool;
  ds::ListPathCas<Key, Val> list{recl::EbrDomain::instance(), &pool};
  ~ListAdapter() { recl::EbrDomain::instance().drainAll(); }
  bool insert(Key k, Val v) { return list.insert(k, v); }
  bool erase(Key k) { return list.erase(k); }
  bool contains(Key k) { return list.contains(k); }
  std::size_t rangeQuery(Key lo, Key hi, RqOut& out) {
    return list.rangeQuery(lo, hi, out);
  }
  std::uint64_t size() const { return list.size(); }
  std::int64_t keySum() const { return list.keySum(); }
  void checkInvariants() const {}
  double avgKeyDepth() const { return 0.0; }  // not a tree
  std::uint64_t footprintBytes() const { return pool.footprintBytes(); }
  static std::string name() { return "list-pathcas"; }
};

struct AbTreeAdapter {
  recl::NodePool<typename ds::AbTreePathCas<Key, Val>::Node> pool;
  ds::AbTreePathCas<Key, Val> tree{recl::EbrDomain::instance(), &pool};
  ~AbTreeAdapter() { recl::EbrDomain::instance().drainAll(); }
  bool insert(Key k, Val v) { return tree.insert(k, v); }
  bool erase(Key k) { return tree.erase(k); }
  bool contains(Key k) { return tree.contains(k); }
  std::size_t rangeQuery(Key lo, Key hi, RqOut& out) {
    return tree.rangeQuery(lo, hi, out);
  }
  std::uint64_t size() const { return tree.size(); }
  std::int64_t keySum() const { return tree.keySum(); }
  void checkInvariants() const { tree.checkInvariants(); }
  double avgKeyDepth() const { return 0.0; }  // leaf-oriented; not comparable
  std::uint64_t footprintBytes() const { return pool.footprintBytes(); }
  static std::string name() { return "abtree-pathcas"; }
};

/// Sharded-service frontends (service/sharded_map.hpp). Two construction
/// modes share one template:
///   - NShards > 0: fixed shard count over a small key space — the typed
///     test suite's mode (shard boundaries land inside the tests' key
///     ranges). Default-constructible, like every other adapter.
///   - NShards == 0: shard count and key space come from the TrialConfig
///     (cfg.shards / cfg.keyRange) — the bench mode; sweepThreads detects
///     the TrialConfig constructor and the shard count is recorded in the
///     CSV/JSON `shards` column rather than the algorithm name.
/// The ShardedMap owns a private DomainSet per shard, so unlike the pooled
/// adapters above there is nothing process-global to drain in ~adapter.
template <typename Tree, int NShards>
struct ShardedAdapterBase {
  static constexpr Key kTestKeySpace = 256;
  service::ShardedMap<Tree> map;

  ShardedAdapterBase() : map(NShards > 0 ? NShards : 1, kTestKeySpace) {}
  explicit ShardedAdapterBase(const bench::TrialConfig& cfg)
      : map(cfg.shards > 0 ? cfg.shards : 1, cfg.keyRange > 0 ? cfg.keyRange : 1,
            shardConfig(cfg)) {}

  bool insert(Key k, Val v) { return map.insert(k, v); }
  bool erase(Key k) { return map.erase(k); }
  std::size_t insertBatch(const Key* ks, const Val* vs, std::size_t n,
                          bool* out) {
    return map.insertBatch(ks, vs, n, out);
  }
  std::size_t eraseBatch(const Key* ks, std::size_t n, bool* out) {
    return map.eraseBatch(ks, n, out);
  }
  bool contains(Key k) { return map.contains(k); }
  std::size_t rangeQuery(Key lo, Key hi, RqOut& out) {
    return map.rangeQuery(lo, hi, out);
  }
  std::int64_t bulkLoad(const std::vector<Key>& sortedKeys, int nthreads) {
    return map.bulkLoad(sortedKeys, nthreads);
  }
  std::uint64_t size() const { return map.size(); }
  std::int64_t keySum() const { return map.keySum(); }
  void checkInvariants() const { map.checkInvariants(); }
  double avgKeyDepth() const { return 0.0; }  // per-shard depths, not pooled
  std::uint64_t footprintBytes() const { return map.footprintBytes(); }
  std::uint64_t rqRetries() const { return map.rqRetries(); }
  std::vector<double> shardSchedP99Ns() const { return map.shardSchedP99Ns(); }

 private:
  static typename service::ShardedMap<Tree>::Config shardConfig(
      const bench::TrialConfig& cfg) {
    typename service::ShardedMap<Tree>::Config c;
    c.combineWindow = cfg.combineWindow;
    // Latency trials pay for per-shard combiner-queueing histograms so the
    // sched column can be attributed shard-by-shard.
    c.combineStats = cfg.latency;
    return c;
  }
};

template <int NShards = 0>
struct ShardedBstAdapter
    : ShardedAdapterBase<ds::IntBstPathCas<Key, Val>, NShards> {
  using ShardedAdapterBase<ds::IntBstPathCas<Key, Val>,
                           NShards>::ShardedAdapterBase;
  static std::string name() {
    return NShards > 0 ? "sharded-bst-" + std::to_string(NShards)
                       : "sharded-bst";
  }
};

template <int NShards = 0>
struct ShardedAvlAdapter
    : ShardedAdapterBase<ds::IntAvlPathCas<Key, Val>, NShards> {
  using ShardedAdapterBase<ds::IntAvlPathCas<Key, Val>,
                           NShards>::ShardedAdapterBase;
  static std::string name() {
    return NShards > 0 ? "sharded-avl-" + std::to_string(NShards)
                       : "sharded-avl";
  }
};

template <typename TM>
struct TmBstAdapter {
  std::unique_ptr<TM> tm = std::make_unique<TM>();
  stm::TmInternalBst<TM, Key, Val> tree{*tm};
  bool insert(Key k, Val v) { return tree.insert(k, v); }
  bool erase(Key k) { return tree.erase(k); }
  bool contains(Key k) { return tree.contains(k); }
  std::uint64_t size() const { return tree.size(); }
  std::int64_t keySum() const { return tree.keySum(); }
  void checkInvariants() const {}
  double avgKeyDepth() const { return tree.avgKeyDepth(); }
  std::uint64_t footprintBytes() const { return tree.footprintBytes(); }
  static std::string name() { return "int-bst-" + std::string(TM::name()); }
};

template <typename TM>
struct TmAvlAdapter {
  std::unique_ptr<TM> tm = std::make_unique<TM>();
  stm::TmInternalAvl<TM, Key, Val> tree{*tm};
  bool insert(Key k, Val v) { return tree.insert(k, v); }
  bool erase(Key k) { return tree.erase(k); }
  bool contains(Key k) { return tree.contains(k); }
  std::uint64_t size() const { return tree.size(); }
  std::int64_t keySum() const { return tree.keySum(); }
  void checkInvariants() const { tree.checkInvariants(); }
  double avgKeyDepth() const { return tree.avgKeyDepth(); }
  std::uint64_t footprintBytes() const { return tree.footprintBytes(); }
  static std::string name() { return "int-avl-" + std::string(TM::name()); }
};

template <typename TM>
struct TmExtBstAdapter {
  std::unique_ptr<TM> tm = std::make_unique<TM>();
  stm::TmExternalBst<TM, Key, Val> tree{*tm};
  bool insert(Key k, Val v) { return tree.insert(k, v); }
  bool erase(Key k) { return tree.erase(k); }
  bool contains(Key k) { return tree.contains(k); }
  std::uint64_t size() const { return tree.size(); }
  std::int64_t keySum() const { return tree.keySum(); }
  void checkInvariants() const {}
  double avgKeyDepth() const { return 0.0; }
  std::uint64_t footprintBytes() const { return 0; }
  static std::string name() { return "ext-bst-" + std::string(TM::name()); }
};

template <bool UseHtm>
struct McmsBstAdapter {
  mcms::McmsBst<Key, Val> tree{UseHtm};
  bool insert(Key k, Val v) { return tree.insert(k, v); }
  bool erase(Key k) { return tree.erase(k); }
  bool contains(Key k) { return tree.contains(k); }
  std::uint64_t size() const { return tree.size(); }
  std::int64_t keySum() const { return tree.keySum(); }
  void checkInvariants() const {}
  double avgKeyDepth() const { return 0.0; }
  std::uint64_t footprintBytes() const { return 0; }
  static std::string name() {
    return UseHtm ? "int-bst-mcms+" : "int-bst-mcms-";
  }
};

/// The cross-structure composite (structs/multi_index_map.hpp): primary +
/// secondary tree per instance on an OWNED DomainSet, so like the sharded
/// adapters there is nothing process-global to drain — teardown (and the
/// zero-leak abort) lives in ~MultiIndexMap itself. Point/range ops go
/// through the primary index; every mutation is a two-tree KCAS.
struct MultiIndexMapAdapter {
  ds::MultiIndexMap<Key, Val> map;
  bool insert(Key k, Val v) { return map.insert(k, v); }
  bool erase(Key k) { return map.erase(k); }
  bool contains(Key k) { return map.contains(k); }
  std::size_t rangeQuery(Key lo, Key hi, RqOut& out) {
    return map.rangeQuery(lo, hi, out);
  }
  std::uint64_t size() const { return map.size(); }
  std::int64_t keySum() const { return map.keySum(); }
  void checkInvariants() const { map.checkInvariants(); }
  double avgKeyDepth() const { return map.checkInvariants().avgKeyDepth; }
  std::uint64_t footprintBytes() const { return map.footprintBytes(); }
  static std::string name() { return "multi-index-map"; }
};

}  // namespace pathcas::testing
