// Uniform adapters over every concurrent-set implementation in the repo, so
// one generic (typed) test suite and one benchmark driver cover them all.
// Each adapter exposes: insert(k,v) / erase(k) / contains(k) -> bool,
// size() / keySum() (quiescent), and name().
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "mcms/mcms_bst.hpp"
#include "stm/elastic.hpp"
#include "stm/glock.hpp"
#include "stm/norec.hpp"
#include "stm/tl2.hpp"
#include "stm/tle.hpp"
#include "stm/tm_avl.hpp"
#include "stm/tm_bst.hpp"
#include "stm/tm_ext_bst.hpp"
#include "trees/ellen_bst.hpp"
#include "trees/int_avl_pathcas.hpp"
#include "trees/int_bst_pathcas.hpp"
#include "trees/ticket_bst.hpp"

namespace pathcas::testing {

using Key = std::int64_t;
using Val = std::int64_t;

template <bool UseHtm>
struct PathCasBstAdapter {
  ds::IntBstPathCas<Key, Val> tree{
      ds::IntBstOptions{.useHtmFastPath = UseHtm}};
  bool insert(Key k, Val v) { return tree.insert(k, v); }
  bool erase(Key k) { return tree.erase(k); }
  bool contains(Key k) { return tree.contains(k); }
  std::uint64_t size() const { return tree.size(); }
  std::int64_t keySum() const { return tree.keySum(); }
  void checkInvariants() const { tree.checkInvariants(); }
  double avgKeyDepth() const { return tree.checkInvariants().avgKeyDepth; }
  std::uint64_t footprintBytes() const {
    return tree.checkInvariants().footprintBytes;
  }
  static std::string name() {
    return UseHtm ? "int-bst-pathcas+" : "int-bst-pathcas";
  }
};

template <bool UseHtm>
struct PathCasAvlAdapter {
  ds::IntAvlPathCas<Key, Val> tree{
      ds::IntBstOptions{.useHtmFastPath = UseHtm}};
  bool insert(Key k, Val v) { return tree.insert(k, v); }
  bool erase(Key k) { return tree.erase(k); }
  bool contains(Key k) { return tree.contains(k); }
  std::uint64_t size() const { return tree.size(); }
  std::int64_t keySum() const { return tree.keySum(); }
  void checkInvariants() const { tree.checkInvariants(false); }
  double avgKeyDepth() const { return tree.checkInvariants().avgKeyDepth; }
  std::uint64_t footprintBytes() const {
    return tree.checkInvariants().footprintBytes;
  }
  static std::string name() {
    return UseHtm ? "int-avl-pathcas+" : "int-avl-pathcas";
  }
};

struct EllenAdapter {
  ds::EllenBst<Key, Val> tree;
  bool insert(Key k, Val v) { return tree.insert(k, v); }
  bool erase(Key k) { return tree.erase(k); }
  bool contains(Key k) { return tree.contains(k); }
  std::uint64_t size() const { return tree.size(); }
  std::int64_t keySum() const { return tree.keySum(); }
  void checkInvariants() const {}
  double avgKeyDepth() const { return tree.avgKeyDepth(); }
  std::uint64_t footprintBytes() const { return tree.footprintBytes(); }
  static std::string name() { return "ext-bst-lf"; }
};

struct TicketAdapter {
  ds::TicketBst<Key, Val> tree;
  bool insert(Key k, Val v) { return tree.insert(k, v); }
  bool erase(Key k) { return tree.erase(k); }
  bool contains(Key k) { return tree.contains(k); }
  std::uint64_t size() const { return tree.size(); }
  std::int64_t keySum() const { return tree.keySum(); }
  void checkInvariants() const {}
  double avgKeyDepth() const { return tree.avgKeyDepth(); }
  std::uint64_t footprintBytes() const { return tree.footprintBytes(); }
  static std::string name() { return "ext-bst-locks"; }
};

template <typename TM>
struct TmBstAdapter {
  std::unique_ptr<TM> tm = std::make_unique<TM>();
  stm::TmInternalBst<TM, Key, Val> tree{*tm};
  bool insert(Key k, Val v) { return tree.insert(k, v); }
  bool erase(Key k) { return tree.erase(k); }
  bool contains(Key k) { return tree.contains(k); }
  std::uint64_t size() const { return tree.size(); }
  std::int64_t keySum() const { return tree.keySum(); }
  void checkInvariants() const {}
  double avgKeyDepth() const { return tree.avgKeyDepth(); }
  std::uint64_t footprintBytes() const { return tree.footprintBytes(); }
  static std::string name() { return "int-bst-" + std::string(TM::name()); }
};

template <typename TM>
struct TmAvlAdapter {
  std::unique_ptr<TM> tm = std::make_unique<TM>();
  stm::TmInternalAvl<TM, Key, Val> tree{*tm};
  bool insert(Key k, Val v) { return tree.insert(k, v); }
  bool erase(Key k) { return tree.erase(k); }
  bool contains(Key k) { return tree.contains(k); }
  std::uint64_t size() const { return tree.size(); }
  std::int64_t keySum() const { return tree.keySum(); }
  void checkInvariants() const { tree.checkInvariants(); }
  double avgKeyDepth() const { return tree.avgKeyDepth(); }
  std::uint64_t footprintBytes() const { return tree.footprintBytes(); }
  static std::string name() { return "int-avl-" + std::string(TM::name()); }
};

template <typename TM>
struct TmExtBstAdapter {
  std::unique_ptr<TM> tm = std::make_unique<TM>();
  stm::TmExternalBst<TM, Key, Val> tree{*tm};
  bool insert(Key k, Val v) { return tree.insert(k, v); }
  bool erase(Key k) { return tree.erase(k); }
  bool contains(Key k) { return tree.contains(k); }
  std::uint64_t size() const { return tree.size(); }
  std::int64_t keySum() const { return tree.keySum(); }
  void checkInvariants() const {}
  double avgKeyDepth() const { return 0.0; }
  std::uint64_t footprintBytes() const { return 0; }
  static std::string name() { return "ext-bst-" + std::string(TM::name()); }
};

template <bool UseHtm>
struct McmsBstAdapter {
  mcms::McmsBst<Key, Val> tree{UseHtm};
  bool insert(Key k, Val v) { return tree.insert(k, v); }
  bool erase(Key k) { return tree.erase(k); }
  bool contains(Key k) { return tree.contains(k); }
  std::uint64_t size() const { return tree.size(); }
  std::int64_t keySum() const { return tree.keySum(); }
  void checkInvariants() const {}
  double avgKeyDepth() const { return 0.0; }
  std::uint64_t footprintBytes() const { return 0; }
  static std::string name() {
    return UseHtm ? "int-bst-mcms+" : "int-bst-mcms-";
  }
};

}  // namespace pathcas::testing
