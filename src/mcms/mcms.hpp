// Multi-Compare Multi-Swap (Timnat, Herlihy, Petrank, Euro-Par'15) — the
// §5.1 baseline. MCMS extends KCAS with compare-only entries: fields can be
// *compared* without being swapped.
//
// The crucial property the paper measures: on the software path a compare
// entry is implemented as an old→old swap, i.e. the HFP KCAS *writes a
// descriptor into every compared address* — including every node on a search
// path — turning searches into writers and collapsing under contention
// ("MCMS essentially becomes the HFP KCAS algorithm"). The HTM fast path
// avoids this by checking compares inside a transaction without writing.
#pragma once

#include "pathcas/pathcas.hpp"

namespace pathcas::mcms {

/// Begin staging an MCMS operation for the calling thread.
inline void start() { pathcas::start(); }

/// Compare-only entry: succeed only if w still holds `expected`.
/// Software path: an old→old swap (a descriptor WRITE to w).
template <typename T>
void cmp(casword<T>& w, T expected) {
  pathcas::add(w, expected, expected);
}

/// Compare-and-swap entry.
template <typename T>
void swap(casword<T>& w, T oldV, T newV) {
  pathcas::add(w, oldV, newV);
}

/// MCMS read (the KCASRead analogue).
template <typename T>
T read(const casword<T>& w) {
  return w.load();
}

/// Execute the staged MCMS. useHtm=true is MCMS+ (transaction first: reads
/// validate compares without writing, falling back to the software path);
/// useHtm=false is MCMS- (pure software: every entry, compares included, is
/// descriptor-locked).
inline bool execute(bool useHtm) {
  return useHtm ? pathcas::execFast() : pathcas::exec();
}

}  // namespace pathcas::mcms
