// Internal BST over MCMS — the §5.1 comparison tree. Mirrors the paper's
// setup: the data structure validates the *entire search path* by passing it
// as compare entries to MCMS (versus PathCAS, which only re-reads version
// numbers). Includes the optimizations the paper grants MCMS: searches that
// return true and inserts that return false perform no MCMS at all, and
// successful deletes use small MCMS operations that exclude the search path.
//
// Each traversed node contributes two compare entries (its key word and the
// child pointer followed), so on the software path an update descriptor-
// locks ~2·depth words including the root — the contention bottleneck the
// paper's Fig. 6 demonstrates.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "mcms/mcms.hpp"
#include "recl/ebr.hpp"
#include "util/defs.hpp"

namespace pathcas::mcms {

template <typename K = std::int64_t, typename V = std::int64_t>
class McmsBst {
 public:
  static constexpr K kNegInf = std::numeric_limits<K>::min() / 4;
  static constexpr K kPosInf = std::numeric_limits<K>::max() / 4;

  struct Node {
    casword<Version> ver;  // bit 0: mark (deleted); compared, never visited
    casword<K> key;
    casword<V> val;
    casword<Node*> left;
    casword<Node*> right;
    Node(K k, V v) {
      key.setInitial(k);
      val.setInitial(v);
    }
  };

  explicit McmsBst(bool useHtm = false,
                   recl::EbrDomain& ebr = recl::EbrDomain::instance())
      : useHtm_(useHtm), ebr_(ebr) {
    maxRoot_ = new Node(kPosInf, V{});
    minRoot_ = new Node(kNegInf, V{});
    maxRoot_->left.setInitial(minRoot_);
  }

  McmsBst(const McmsBst&) = delete;
  McmsBst& operator=(const McmsBst&) = delete;

  ~McmsBst() {
    // Quiescent-teardown exception: no thread pinned on this tree anymore,
    // so reachable nodes are deleted directly (this baseline stays on the
    // heap; the eleven PathCAS/hand-crafted structures use recl::NodePool).
    freeSubtree(minRoot_->right.load());
    delete minRoot_;
    delete maxRoot_;
  }

  bool contains(K key) {
    auto guard = ebr_.pin();
    for (;;) {
      start();
      const SearchResult s = search(key);
      if (s.found) return true;  // granted optimization: no MCMS
      cmp(*s.lastEdge, static_cast<Node*>(nullptr));
      if (execute(useHtm_)) return false;  // path compares only
    }
  }

  bool insert(K key, V val) {
    auto guard = ebr_.pin();
    Node* leaf = nullptr;
    for (;;) {
      start();
      const SearchResult s = search(key);
      if (s.found) {
        delete leaf;  // audit: never published (no swap committed it)
        return false;  // granted optimization: no MCMS
      }
      if (leaf == nullptr) leaf = new Node(key, val);
      swap(*s.lastEdge, static_cast<Node*>(nullptr), leaf);
      if (execute(useHtm_)) return true;
    }
  }

  bool erase(K key) {
    auto guard = ebr_.pin();
    for (;;) {
      start();
      const SearchResult s = search(key);
      if (!s.found) {
        cmp(*s.lastEdge, static_cast<Node*>(nullptr));
        if (execute(useHtm_)) return false;  // validated absence
        continue;
      }
      // Successful deletes use small MCMS ops excluding the search path —
      // restart staging with only the local neighbourhood.
      start();
      Node* curr = s.curr;
      Node* parent = s.parent;
      const Version currVer = curr->ver.load();
      const Version parentVer = parent->ver.load();
      if ((currVer & 1) || (parentVer & 1)) continue;
      Node* const currLeft = curr->left;
      Node* const currRight = curr->right;
      if (currLeft == nullptr || currRight == nullptr) {
        Node* const childToKeep =
            (currLeft == nullptr) ? currRight : currLeft;
        auto& ptrToChange =
            (curr == parent->left.load()) ? parent->left : parent->right;
        cmp(parent->ver, parentVer);
        if (childToKeep == nullptr) {
          cmp(curr->left, static_cast<Node*>(nullptr));
          cmp(curr->right, static_cast<Node*>(nullptr));
        } else {
          cmp((currLeft == nullptr) ? curr->right : curr->left, childToKeep);
          cmp((currLeft == nullptr) ? curr->left : curr->right,
              static_cast<Node*>(nullptr));
        }
        swap(ptrToChange, curr, childToKeep);
        swap(curr->ver, currVer, currVer + 1);  // mark
        if (execute(useHtm_)) {
          ebr_.retire(curr);
          return true;
        }
      } else {
        // Two children: promote the successor (its own small search).
        Node* succP = curr;
        Version succPVer = currVer;
        Node* succ = currRight;
        Version succVer = succ->ver.load();
        for (;;) {
          Node* next = succ->left;
          if (next == nullptr) break;
          succP = succ;
          succPVer = succVer;
          succ = next;
          succVer = succ->ver.load();
        }
        if ((succVer & 1) || (succPVer & 1)) continue;
        Node* const succR = succ->right;
        auto& ptrToChange = (succP->right.load() == succ) ? succP->right
                                                          : succP->left;
        cmp(succ->left, static_cast<Node*>(nullptr));
        swap(ptrToChange, succ, succR);
        const V currVal = curr->val;
        const V succVal = succ->val;
        swap(curr->val, currVal, succVal);
        swap(curr->key, key, succ->key.load());
        swap(succ->ver, succVer, succVer + 1);  // mark succ
        swap(succP->ver, succPVer, succPVer + 2);
        if (succP != curr) swap(curr->ver, currVer, currVer + 2);
        if (execute(useHtm_)) {
          ebr_.retire(succ);
          return true;
        }
      }
    }
  }

  std::uint64_t size() const {
    std::uint64_t n = 0;
    countRec(minRoot_->right.load(), n);
    return n;
  }
  std::int64_t keySum() const { return sumRec(minRoot_->right.load()); }

  std::string name() const {
    return useHtm_ ? "int-bst-mcms+" : "int-bst-mcms-";
  }

 private:
  struct SearchResult {
    bool found;
    Node* curr;
    Node* parent;
    casword<Node*>* lastEdge;  // the NIL edge a not-found search ended at
  };

  /// BST search that stages 2 compare entries per traversed node: the key
  /// word (keys mutate under successor promotion) and the child pointer
  /// followed. On the software path these become descriptor writes to the
  /// whole path — the defining MCMS cost. The final NIL edge is returned
  /// *un-compared* so the caller can either cmp it (validated absence) or
  /// swap it (insert) without a conflicting duplicate entry.
  SearchResult search(K key) {
    Node* parent = minRoot_;
    casword<Node*>* edge = &minRoot_->right;
    Node* curr = edge->load();
    while (curr != nullptr) {
      cmp(*edge, curr);  // the edge we followed into curr
      const K currKey = curr->key;
      cmp(curr->key, currKey);
      if (key == currKey) return {true, curr, parent, nullptr};
      parent = curr;
      edge = (key > currKey) ? &curr->right : &curr->left;
      curr = edge->load();
    }
    return {false, nullptr, parent, edge};
  }

  void countRec(Node* n, std::uint64_t& acc) const {
    if (n == nullptr) return;
    ++acc;
    countRec(n->left.load(), acc);
    countRec(n->right.load(), acc);
  }
  std::int64_t sumRec(Node* n) const {
    if (n == nullptr) return 0;
    return static_cast<std::int64_t>(n->key.load()) +
           sumRec(n->left.load()) + sumRec(n->right.load());
  }
  void freeSubtree(Node* n) {
    if (n == nullptr) return;
    freeSubtree(n->left.load());
    freeSubtree(n->right.load());
    delete n;
  }

  bool useHtm_;
  recl::EbrDomain& ebr_;
  Node* maxRoot_;
  Node* minRoot_;
};

}  // namespace pathcas::mcms
