// DomainSet: one self-contained instance of the full memory/synchronization
// stack — a private KcasDomain (descriptor tables + staging), a private
// EbrDomain (epochs + limbo bags), and lazily-created per-node-type NodePools
// — bundled with the teardown ordering the three layers require.
//
// The process-global singletons (k::DefaultDomain::instance(),
// recl::EbrDomain::instance(), recl::defaultPool<N>()) match the paper's
// single-domain experimental setup; a DomainSet is the per-instance
// alternative the sharded service layer (src/service/sharded_map.hpp) builds
// on: each shard owns a DomainSet, so shards never contend on each other's
// descriptor tables, epoch announcements, or pool free lists, and a shard's
// entire memory footprint dies with it.
//
// Ownership / destruction order (why the member order below is load-bearing):
//   1. ebr_ is declared LAST, so it is destroyed FIRST: ~EbrDomain recycles
//      every remaining limbo record into its owning pool, which must still
//      be alive (the pool registry outlives it).
//   2. The pool registry is destroyed next; ~NodePool releases all free
//      slots to the system. Structures allocating from the set must already
//      be gone (they destroy their reachable nodes into the pools).
//   3. kcas_ goes last; by then no descriptor can reference any freed word.
//
// Typical standalone use (examples/session_index.cpp):
//
//   recl::DomainSet set;
//   {
//     ds::IntAvlPathCas<> tree({}, set.ebr(), &set.pool<Node>());
//     // every thread operating on the tree:
//     k::ScopedDomain scope(set.kcas());
//     tree.insert(...);
//   }                      // tree destroyed: nodes back in the pool
//   set.drain();           // limbo recycled (requires quiescence)
//   assert(set.liveNodes() == 0);   // leak check
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <typeindex>
#include <utility>
#include <vector>

#include "kcas/domain.hpp"
#include "recl/ebr.hpp"
#include "recl/pool.hpp"

namespace pathcas::recl {

class DomainSet {
 public:
  /// The KcasDomain is ~12 MB of descriptor tables (sized by kMaxThreads),
  /// so it lives on the heap; everything else is modest.
  DomainSet()
      : kcas_(std::make_unique<k::DefaultDomain>()),
        ebr_(std::make_unique<EbrDomain>()) {}

  DomainSet(const DomainSet&) = delete;
  DomainSet& operator=(const DomainSet&) = delete;

  /// Members are destroyed in reverse declaration order: ebr_ first (limbo
  /// recycled into the still-alive pools), then the pools, then kcas_.
  ~DomainSet() = default;

  k::DefaultDomain& kcas() { return *kcas_; }
  EbrDomain& ebr() { return *ebr_; }

  /// The set's pool for node type N, created on first request. Structures
  /// bound to this set must take their pool from here so the teardown
  /// ordering above covers them.
  template <typename N>
  NodePool<N>& pool() {
    const std::type_index key(typeid(N));
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& h : pools_) {
      if (h->key == key) return static_cast<Holder<N>*>(h.get())->pool;
    }
    pools_.push_back(std::make_unique<Holder<N>>(key));
    return static_cast<Holder<N>*>(pools_.back().get())->pool;
  }

  /// Recycle everything still in limbo. Requires quiescence (no thread
  /// pinned on this set's EbrDomain); checked by EbrDomain::drainAll.
  void drain() { ebr_->drainAll(); }

  /// Nodes handed out by this set's pools and not yet returned (live in
  /// structures or still in limbo). Zero after all structures are destroyed
  /// and drain() has run — the leak-check invariant.
  std::uint64_t liveNodes() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t n = 0;
    for (const auto& h : pools_) n += h->live();
    return n;
  }

  /// Bytes of node memory this set's pools currently hold (live + free).
  std::uint64_t footprintBytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t n = 0;
    for (const auto& h : pools_) n += h->footprint();
    return n;
  }

 private:
  struct HolderBase {
    explicit HolderBase(std::type_index k) : key(k) {}
    virtual ~HolderBase() = default;
    virtual std::uint64_t live() const = 0;
    virtual std::uint64_t footprint() const = 0;
    const std::type_index key;
  };
  template <typename N>
  struct Holder final : HolderBase {
    explicit Holder(std::type_index k) : HolderBase(k) {}
    std::uint64_t live() const override { return pool.liveCount(); }
    std::uint64_t footprint() const override { return pool.footprintBytes(); }
    NodePool<N> pool;
  };

  std::unique_ptr<k::DefaultDomain> kcas_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<HolderBase>> pools_;
  // Declared last => destroyed first; its destructor recycles limbo into the
  // pools above. Do not reorder.
  std::unique_ptr<EbrDomain> ebr_;
};

}  // namespace pathcas::recl
