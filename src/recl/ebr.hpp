// DEBRA-style epoch-based memory reclamation (Brown, PODC'15), the scheme the
// paper uses to free tree nodes (§4.3).
//
// Protocol: each operation pins the calling thread by announcing the current
// global epoch with a "pinned" bit (getGuard() in the paper's API). retire(p)
// places p in the thread's limbo bag for the current epoch. A bag for epoch e
// is freed once the global epoch has advanced twice past e: at that point no
// pinned thread can still hold a pointer read in epoch e. Epoch advancement
// is cooperative and amortized: every kAdvanceInterval pins a thread scans the
// announcement array and advances the global epoch if every pinned thread has
// announced it.
//
// Guarantees: a retired node is never freed while any thread that might have
// a pointer to it remains pinned. Unpinned threads never block reclamation.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/defs.hpp"
#include "util/padding.hpp"
#include "util/thread_registry.hpp"

namespace pathcas::recl {

class EbrDomain;

/// RAII pin. Hold one for the duration of any operation that traverses
/// reclaimed-memory data structures (the paper's getGuard()).
class Guard {
 public:
  explicit Guard(EbrDomain& domain);
  ~Guard();
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

 private:
  EbrDomain& domain_;
  bool engaged_;  // false for nested guards: outermost guard owns the pin
};

class EbrDomain {
 public:
  /// Process-wide domain shared by all data structures (matches the paper's
  /// single-DEBRA-instance setup). Separate domains are possible for tests.
  static EbrDomain& instance();

  EbrDomain();
  ~EbrDomain();

  Guard pin() { return Guard(*this); }

  /// Defer destruction+free of p until no pinned thread can reach it.
  template <typename T>
  void retire(T* p) {
    retireRaw(p, [](void* q) { delete static_cast<T*>(q); });
  }
  void retireRaw(void* p, void (*deleter)(void*));

  /// Statistics for tests and the memory-usage analysis bench.
  std::uint64_t epoch() const {
    return globalEpoch_.load(std::memory_order_acquire);
  }
  std::uint64_t retiredCount() const;
  std::uint64_t freedCount() const;

  /// Free everything immediately. Only callable when no thread is pinned
  /// (e.g. between benchmark trials); checked.
  void drainAll();

 private:
  friend class Guard;
  struct Retired {
    void* p;
    void (*deleter)(void*);
  };
  struct ThreadSlot {
    // Announcement: (epoch << 1) | pinned.
    std::atomic<std::uint64_t> announce{0};
    std::uint64_t pinCount = 0;
    std::uint64_t lastPinEpoch = 0;
    // Limbo bags. Each bag is labeled with the *global epoch at retire time*
    // of its contents (not the retiring thread's pin epoch — the global epoch
    // may have advanced mid-operation, and labeling with the stale pin epoch
    // would free one grace period too early).
    std::vector<Retired> bags[3];
    std::uint64_t bagLabel[3] = {0, 0, 0};
    std::uint64_t retired = 0;
    std::uint64_t freed = 0;
    int nestDepth = 0;
  };

  void doPin(ThreadSlot& slot);
  void doUnpin(ThreadSlot& slot);
  void tryAdvance();
  void freeBag(ThreadSlot& slot, std::vector<Retired>& bag);

  static constexpr std::uint64_t kAdvanceInterval = 32;

  Padded<ThreadSlot> slots_[kMaxThreads];
  alignas(kNoFalseSharing) std::atomic<std::uint64_t> globalEpoch_{1};
};

inline Guard::Guard(EbrDomain& domain) : domain_(domain) {
  auto& slot = *domain_.slots_[ThreadRegistry::tid()];
  engaged_ = (slot.nestDepth++ == 0);
  if (engaged_) domain_.doPin(slot);
}

inline Guard::~Guard() {
  auto& slot = *domain_.slots_[ThreadRegistry::tid()];
  --slot.nestDepth;
  if (engaged_) domain_.doUnpin(slot);
}

}  // namespace pathcas::recl
